# Tier-1 verification entry point. CI (or a reviewer) runs `make check`.
#
# The formatting check is gated on ocamlformat being installed: dune's
# @fmt alias fails hard when the binary is missing, and not every
# development container ships it. When absent we say so and move on —
# the build and the test suite are the non-negotiable part.

DUNE ?= dune

.PHONY: all build test fmt check clean faults-smoke cache-smoke

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# Seeded fault-injection smoke: two campaigns with a fixed seed must
# finish with zero uncaught exceptions (tpdbt faults exits non-zero
# otherwise).  --shadow 1 arms the shadow-execution oracle so injected
# silent corruption is detected instead of classified uncaught.
faults-smoke: build
	$(DUNE) exec bin/tpdbt.exe -- faults gzip --trials 4 --seed 11 --shadow 1
	$(DUNE) exec bin/tpdbt.exe -- faults swim --trials 4 --seed 11 --shadow 1

# Bounded code-cache smoke: at a quarter of each benchmark's translated
# footprint, all three eviction policies must complete with guest
# behaviour identical to the unbounded baseline, and the capacity must
# actually bind (tpdbt cache exits non-zero otherwise).
cache-smoke: build
	$(DUNE) exec bin/tpdbt.exe -- cache gzip --frac 0.25 --expect-evictions
	$(DUNE) exec bin/tpdbt.exe -- cache perlbmk --frac 0.25 --expect-evictions

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		echo "checking formatting (dune build @fmt)"; \
		$(DUNE) build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

check: build test faults-smoke cache-smoke fmt

clean:
	$(DUNE) clean
