# Tier-1 verification entry point. CI (or a reviewer) runs `make check`.
#
# The formatting check is gated on ocamlformat being installed: dune's
# @fmt alias fails hard when the binary is missing, and not every
# development container ships it. When absent we say so and move on —
# the build and the test suite are the non-negotiable part.  CI runs
# `make fmt-strict` instead, which installs nothing but refuses to
# skip: the version pinned in .ocamlformat makes local and CI
# formatting agree exactly.

DUNE ?= dune

# Job count for the parallel leg of par-smoke; CI's matrix overrides it.
PAR_JOBS ?= 4
PAR_SMOKE_DIR := _build/par-smoke

.PHONY: all build test fmt fmt-strict check clean faults-smoke cache-smoke \
	par-smoke par-bench chaos-smoke chaos-serve-smoke serve-smoke \
	profile-smoke fuzz-smoke snapshot-smoke perf-bench perfdiff alloc-gate

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# Seeded fault-injection smoke: two campaigns with a fixed seed must
# finish with zero uncaught exceptions (tpdbt faults exits non-zero
# otherwise).  --shadow 1 arms the shadow-execution oracle so injected
# silent corruption is detected instead of classified uncaught.
faults-smoke: build
	$(DUNE) exec bin/tpdbt.exe -- faults gzip --trials 4 --seed 11 --shadow 1
	$(DUNE) exec bin/tpdbt.exe -- faults swim --trials 4 --seed 11 --shadow 1

# Bounded code-cache smoke: at a quarter of each benchmark's translated
# footprint, all three eviction policies must complete with guest
# behaviour identical to the unbounded baseline, and the capacity must
# actually bind (tpdbt cache exits non-zero otherwise).
cache-smoke: build
	$(DUNE) exec bin/tpdbt.exe -- cache gzip --frac 0.25 --expect-evictions
	$(DUNE) exec bin/tpdbt.exe -- cache perlbmk --frac 0.25 --expect-evictions

# Determinism smoke: the full sweep over two benchmarks, sequential vs
# -j $(PAR_JOBS), must agree byte-for-byte — stdout tables, CSV files
# and checkpoint files alike.  Any scheduling leak into the results
# shows up here as a diff.
par-smoke: build
	rm -rf $(PAR_SMOKE_DIR)
	mkdir -p $(PAR_SMOKE_DIR)
	$(DUNE) exec bin/tpdbt.exe -- sweep -b gzip -b swim --jobs 1 \
		--csv $(PAR_SMOKE_DIR)/seq-csv \
		--checkpoint $(PAR_SMOKE_DIR)/seq-ckpt \
		> $(PAR_SMOKE_DIR)/seq.out
	$(DUNE) exec bin/tpdbt.exe -- sweep -b gzip -b swim --jobs $(PAR_JOBS) \
		--csv $(PAR_SMOKE_DIR)/par-csv \
		--checkpoint $(PAR_SMOKE_DIR)/par-ckpt \
		> $(PAR_SMOKE_DIR)/par.out
	cmp $(PAR_SMOKE_DIR)/seq.out $(PAR_SMOKE_DIR)/par.out
	diff -r $(PAR_SMOKE_DIR)/seq-csv $(PAR_SMOKE_DIR)/par-csv
	diff -r $(PAR_SMOKE_DIR)/seq-ckpt $(PAR_SMOKE_DIR)/par-ckpt
	@echo "par-smoke: sequential and -j $(PAR_JOBS) sweeps are byte-identical"

# Chaos smoke: a supervised checkpointed sweep under injected faults —
# a stalled workload, a worker-domain crash, a panicking task, a kill
# at an arbitrary guest instruction (resumed from its mid-run
# snapshot), and bit-flipped/truncated checkpoint files — run
# sequentially and at -j $(PAR_JOBS) with the same seed.  tpdbt chaos
# exits non-zero unless
# every non-quarantined benchmark ends byte-identical to the fault-free
# reference, and the two deterministic summary JSONs must agree byte
# for byte (CI uploads chaos-summary.json as an artifact).
CHAOS_SMOKE_DIR := _build/chaos-smoke

chaos-smoke: build
	rm -rf $(CHAOS_SMOKE_DIR)
	mkdir -p $(CHAOS_SMOKE_DIR)
	$(DUNE) exec bin/tpdbt.exe -- chaos --seed 23 --jobs 1 \
		--dir $(CHAOS_SMOKE_DIR)/seq-ckpt \
		--summary $(CHAOS_SMOKE_DIR)/chaos-summary.json
	$(DUNE) exec bin/tpdbt.exe -- chaos --seed 23 --jobs $(PAR_JOBS) \
		--dir $(CHAOS_SMOKE_DIR)/par-ckpt \
		--summary $(CHAOS_SMOKE_DIR)/par-summary.json
	cmp $(CHAOS_SMOKE_DIR)/chaos-summary.json \
		$(CHAOS_SMOKE_DIR)/par-summary.json
	@echo "chaos-smoke: survived; summaries identical at -j 1 and -j $(PAR_JOBS)"

# Serving chaos: the same discipline turned on the daemon's state
# machine — framing and protocol damage, overload at a tiny admission
# queue, a client death, a worker crash, a stalled workload, a kill
# mid-sweep with a torn journal, recovery and drain — run twice with
# the same seed; tpdbt chaos --serve exits non-zero unless every
# surviving benchmark is byte-identical to an offline run, and the two
# summaries must agree byte for byte (CI uploads
# chaos-serve-summary.json as an artifact).
CHAOS_SERVE_DIR := _build/chaos-serve-smoke

chaos-serve-smoke: build
	rm -rf $(CHAOS_SERVE_DIR)
	mkdir -p $(CHAOS_SERVE_DIR)
	$(DUNE) exec bin/tpdbt.exe -- chaos --serve --seed 23 \
		--dir $(CHAOS_SERVE_DIR)/run1 \
		--summary $(CHAOS_SERVE_DIR)/chaos-serve-summary.json
	$(DUNE) exec bin/tpdbt.exe -- chaos --serve --seed 23 \
		--dir $(CHAOS_SERVE_DIR)/run2 \
		--summary $(CHAOS_SERVE_DIR)/repeat-summary.json
	cmp $(CHAOS_SERVE_DIR)/chaos-serve-summary.json \
		$(CHAOS_SERVE_DIR)/repeat-summary.json
	@echo "chaos-serve-smoke: served chaos survived; repeat summary identical"

# End-to-end serving smoke, sockets included: start the daemon, sweep
# two benchmarks through the wire protocol, drain it, and byte-diff
# the checkpoints it wrote against an offline `tpdbt sweep` over the
# same benchmarks — the serving path must be invisible in the results.
SERVE_SMOKE_DIR := _build/serve-smoke
TPDBT_BIN := _build/default/bin/tpdbt.exe

serve-smoke: build
	rm -rf $(SERVE_SMOKE_DIR)
	mkdir -p $(SERVE_SMOKE_DIR)
	$(TPDBT_BIN) serve --socket $(SERVE_SMOKE_DIR)/tpdbt.sock \
		--checkpoint $(SERVE_SMOKE_DIR)/serve-ckpt \
		--journal $(SERVE_SMOKE_DIR)/journal \
		--max-steps 200000 --quiet & \
	pid=$$!; \
	up=0; \
	for i in $$(seq 1 100); do \
		test -S $(SERVE_SMOKE_DIR)/tpdbt.sock && { up=1; break; }; \
		sleep 0.1; \
	done; \
	test $$up -eq 1 \
		|| { echo "serve-smoke: daemon never came up"; kill $$pid; exit 1; }; \
	$(TPDBT_BIN) request --socket $(SERVE_SMOKE_DIR)/tpdbt.sock \
		'{"op":"ping"}' > /dev/null \
		|| { echo "serve-smoke: ping failed"; kill $$pid; exit 1; }; \
	$(TPDBT_BIN) request --socket $(SERVE_SMOKE_DIR)/tpdbt.sock \
		'{"op":"sweep","benches":["gzip","swim"],"return_results":false}' \
		> $(SERVE_SMOKE_DIR)/sweep-reply.json \
		|| { echo "serve-smoke: sweep failed"; kill $$pid; exit 1; }; \
	$(TPDBT_BIN) request --socket $(SERVE_SMOKE_DIR)/tpdbt.sock \
		'{"op":"drain"}' > /dev/null \
		|| { echo "serve-smoke: drain refused"; kill $$pid; exit 1; }; \
	wait $$pid
	$(TPDBT_BIN) sweep -b gzip -b swim --jobs 1 --max-steps 200000 \
		--checkpoint $(SERVE_SMOKE_DIR)/offline-ckpt > /dev/null
	diff -r $(SERVE_SMOKE_DIR)/serve-ckpt $(SERVE_SMOKE_DIR)/offline-ckpt
	@echo "serve-smoke: served sweep byte-identical to the offline sweep"

# Profiling smoke: tpdbt profile on one workload must produce a
# non-empty collapsed-stack file, a span-profile JSON and an
# OpenMetrics exposition (the command itself re-validates each artefact
# through its strict parser and exits non-zero on any failure).
PROFILE_SMOKE_DIR := _build/profile-smoke

profile-smoke: build
	rm -rf $(PROFILE_SMOKE_DIR)
	$(DUNE) exec bin/tpdbt.exe -- profile gzip -t 20 \
		--out-dir $(PROFILE_SMOKE_DIR)
	@for f in gzip.folded gzip.profile.json gzip.metrics.prom \
		gzip.attribution.csv gzip.prof; do \
		test -s $(PROFILE_SMOKE_DIR)/$$f \
			|| { echo "profile-smoke: $$f missing or empty"; exit 1; }; \
	done
	@echo "profile-smoke: all profiling artefacts present and validated"

# Differential-fuzzing smoke: a fixed-seed campaign of generated guest
# programs, each run through the pure interpreter and the two-phase
# engine across the threshold/cache/policy config matrix.  tpdbt fuzz
# exits 3 on any state or invariant divergence (the shrunk reproducer
# lands in the corpus dir), and the deterministic summary must be
# byte-identical across a repeat run and a parallel run (CI uploads
# fuzz-summary.json and any reproducers as artifacts).
FUZZ_SMOKE_DIR := _build/fuzz-smoke

fuzz-smoke: build
	rm -rf $(FUZZ_SMOKE_DIR)
	mkdir -p $(FUZZ_SMOKE_DIR)
	$(DUNE) exec bin/tpdbt.exe -- fuzz --budget 40 --seed 42 --jobs 1 \
		--corpus $(FUZZ_SMOKE_DIR)/corpus \
		--summary $(FUZZ_SMOKE_DIR)/fuzz-summary.json
	$(DUNE) exec bin/tpdbt.exe -- fuzz --budget 40 --seed 42 --jobs $(PAR_JOBS) \
		--corpus $(FUZZ_SMOKE_DIR)/corpus-par \
		--summary $(FUZZ_SMOKE_DIR)/par-summary.json
	cmp $(FUZZ_SMOKE_DIR)/fuzz-summary.json $(FUZZ_SMOKE_DIR)/par-summary.json
	@echo "fuzz-smoke: no divergence; summaries identical at -j 1 and -j $(PAR_JOBS)"

# Suspend/resume smoke: a sweep parked at a deadline (snapshotting its
# mid-run engine state into the checkpoint store), then resumed with
# --resume-run, must end with stdout and checkpoint bytes identical to
# a sweep that was never interrupted — the CLI form of the
# docs/snapshots.md guarantee.  `tpdbt snapshot info` must read the
# suspended slot cleanly in between.
SNAPSHOT_SMOKE_DIR := _build/snapshot-smoke

snapshot-smoke: build
	rm -rf $(SNAPSHOT_SMOKE_DIR)
	mkdir -p $(SNAPSHOT_SMOKE_DIR)
	$(DUNE) exec bin/tpdbt.exe -- sweep -b gzip --jobs 1 \
		--checkpoint $(SNAPSHOT_SMOKE_DIR)/ref-ckpt \
		> $(SNAPSHOT_SMOKE_DIR)/ref.out
	$(DUNE) exec bin/tpdbt.exe -- sweep -b gzip --jobs 1 \
		--checkpoint $(SNAPSHOT_SMOKE_DIR)/sus-ckpt \
		--snapshot-every 500000 --deadline 1000000 \
		> $(SNAPSHOT_SMOKE_DIR)/sus.out 2> $(SNAPSHOT_SMOKE_DIR)/sus.err
	grep -q "suspended gzip" $(SNAPSHOT_SMOKE_DIR)/sus.err \
		|| { echo "snapshot-smoke: sweep did not suspend"; exit 1; }
	$(DUNE) exec bin/tpdbt.exe -- snapshot info \
		$(SNAPSHOT_SMOKE_DIR)/sus-ckpt/gzip.ckpt > /dev/null
	$(DUNE) exec bin/tpdbt.exe -- sweep -b gzip --jobs 1 \
		--checkpoint $(SNAPSHOT_SMOKE_DIR)/sus-ckpt --resume-run \
		> $(SNAPSHOT_SMOKE_DIR)/res.out
	cmp $(SNAPSHOT_SMOKE_DIR)/ref.out $(SNAPSHOT_SMOKE_DIR)/res.out
	diff -r $(SNAPSHOT_SMOKE_DIR)/ref-ckpt $(SNAPSHOT_SMOKE_DIR)/sus-ckpt
	@echo "snapshot-smoke: resumed sweep byte-identical to uninterrupted run"

# Wall-clock/allocation perf measurement over the quick set, recorded
# in BENCH_perf.json for perfdiff gating.
perf-bench: build
	$(DUNE) exec bench/main.exe -- --perf-bench

# Judge the current machine against the committed baseline.  Perf on
# shared CI runners is noisy, so this is advisory (warn-only) there;
# drop --warn-only locally for a hard gate.
perfdiff: perf-bench
	$(DUNE) exec bin/tpdbt.exe -- perfdiff bench/BASELINE_perf.json \
		BENCH_perf.json --tolerance 25 --warn-only

# Hard allocation gate (see docs/performance.md).  alloc-words/instr is
# a deterministic property of the code — same compiler, same count on
# any machine — so unlike wall clock it can fail CI at a 1% tolerance.
alloc-gate: perf-bench
	$(DUNE) exec bin/tpdbt.exe -- perfdiff bench/BASELINE_perf.json \
		BENCH_perf.json --alloc-only --tolerance 1

# Parallel-scaling measurement: the quick sweep at -j 1/2/4,
# checksum-guarded, recorded in BENCH_parallel.json (CI uploads it as
# an artifact; use `dune exec bench/main.exe -- --par-bench` without
# --quick for the full suite).
par-bench: build
	$(DUNE) exec bench/main.exe -- --par-bench --quick

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		echo "checking formatting (dune build @fmt)"; \
		$(DUNE) build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# The CI variant: ocamlformat is pinned in .ocamlformat and installed
# by the workflow, so a missing binary is an environment bug, not a
# reason to skip the gate.
fmt-strict:
	@command -v ocamlformat >/dev/null 2>&1 || { \
		echo "ocamlformat not installed (CI must install the version pinned in .ocamlformat)"; \
		exit 1; }
	$(DUNE) build @fmt

check: build test faults-smoke cache-smoke par-smoke chaos-smoke \
	chaos-serve-smoke serve-smoke profile-smoke fuzz-smoke \
	snapshot-smoke fmt

clean:
	$(DUNE) clean
