examples/region_explorer.ml: Format List Printf Tpdbt_dbt Tpdbt_isa Tpdbt_profiles
