examples/phase_detector.ml: Array List Printf Sys Tpdbt_dbt Tpdbt_profiles Tpdbt_workloads
