examples/threshold_sweep.ml: Array List Printf String Sys Tpdbt_dbt Tpdbt_experiments Tpdbt_profiles Tpdbt_workloads
