examples/quickstart.mli:
