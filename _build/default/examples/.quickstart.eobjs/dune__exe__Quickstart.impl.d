examples/quickstart.ml: Format List Printf Tpdbt_dbt Tpdbt_isa Tpdbt_profiles
