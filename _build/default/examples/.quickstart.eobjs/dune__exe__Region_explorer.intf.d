examples/region_explorer.mli:
