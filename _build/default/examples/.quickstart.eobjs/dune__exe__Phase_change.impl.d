examples/phase_change.ml: List Printf Tpdbt_experiments Tpdbt_profiles Tpdbt_workloads
