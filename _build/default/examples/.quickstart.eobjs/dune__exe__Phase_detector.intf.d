examples/phase_detector.mli:
