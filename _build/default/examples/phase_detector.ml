(* Phase detection: finding the change points the initial profile
   cannot see.

   Runs the phase-changing "mcf" benchmark with periodic profile
   checkpoints, differences them into window profiles, and reports
   where adjacent windows' branch behaviour diverges — the change
   points that make Mcf's initial prediction inaccurate at every
   threshold in the paper's Figure 9.

   Run with:  dune exec examples/phase_detector.exe [-- benchmark] *)

module Engine = Tpdbt_dbt.Engine
module Phases = Tpdbt_profiles.Phases

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mcf" in
  let bench =
    match Tpdbt_workloads.Suite.find name with
    | Some b -> b
    | None ->
        Printf.eprintf "unknown benchmark %s\n" name;
        exit 1
  in
  let program, ref_input, _ = Tpdbt_workloads.Spec.build bench in
  let program = Tpdbt_workloads.Spec.apply_input program ref_input in
  let engine =
    Engine.create ~config:Engine.profiling_only
      ~seed:ref_input.Tpdbt_workloads.Spec.seed program
  in
  let checkpoints = ref [] in
  let result =
    Engine.run ~checkpoint_every:100_000
      ~on_checkpoint:(fun ~steps snapshot ->
        checkpoints := (steps, snapshot) :: !checkpoints)
      engine
  in
  let series = List.rev !checkpoints in
  Printf.printf "%s: %d guest instructions, %d checkpoints of 100k \
                 instructions\n\n"
    name result.Engine.steps (List.length series);
  let bmap = result.Engine.snapshot.Tpdbt_dbt.Snapshot.block_map in
  let points = Phases.change_points ~threshold:0.08 ~shift_threshold:0.3 bmap series in
  if points = [] then
    print_endline "no phase changes detected (stable benchmark)"
  else begin
    Printf.printf "detected phase changes (weighted distance > 0.08 or \
                   per-branch shift > 0.3):\n";
    List.iter
      (fun { Phases.steps; distance; shift } ->
        Printf.printf "  around instruction %9d   distance %.3f   max \
                       branch shift %.3f\n"
          steps distance shift)
      points;
    print_endline
      "\nEach point is a boundary where the program's branch behaviour \
       shifted.  An initial profile frozen before a point cannot predict \
       the average behaviour after it — the paper's explanation for Mcf \
       and Gzip (and its motivation for phase-aware, multi-phase \
       profiling)."
  end
