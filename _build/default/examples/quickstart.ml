(* Quickstart: assemble a small guest program, run it under the
   two-phase translator, and compare the initial profile against the
   average profile — the paper's methodology in 60 lines.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 50000      ; outer iterations
loop:
    rnd r3, 1000        ; draw in [0,1000)
    movi r4, 750
    blt r3, r4, likely  ; taken with probability 0.75
    addi r5, r5, 1
    jmp join
likely:
    addi r6, r6, 1
join:
    addi r1, r1, 1
    blt r1, r2, loop
    out r6
    halt
|}

let () =
  let program = Tpdbt_isa.Assembler.assemble_exn source in

  (* Phase 1 + 2: run under the DBT with a retranslation threshold of
     100 — blocks are profiled until they have executed 100 times, then
     grouped into regions and optimised; their counters freeze.  This
     yields INIP(100). *)
  let config = Tpdbt_dbt.Engine.config ~threshold:100 () in
  let engine = Tpdbt_dbt.Engine.create ~config ~seed:7L program in
  let inip = Tpdbt_dbt.Engine.run engine in
  Printf.printf "two-phase run: %d guest instructions, %.0f model cycles\n"
    inip.Tpdbt_dbt.Engine.steps
    inip.Tpdbt_dbt.Engine.counters.Tpdbt_dbt.Perf_model.cycles;
  Printf.printf "regions formed:\n";
  List.iter
    (fun region -> Format.printf "  %a@." Tpdbt_dbt.Region.pp region)
    inip.Tpdbt_dbt.Engine.snapshot.Tpdbt_dbt.Snapshot.regions;

  (* The average profile AVEP: same program and input, profiling only. *)
  let avep_engine =
    Tpdbt_dbt.Engine.create ~config:Tpdbt_dbt.Engine.profiling_only ~seed:7L
      program
  in
  let avep = Tpdbt_dbt.Engine.run avep_engine in
  Printf.printf "profiling-only run: %d profiling operations (vs %d under \
                 the DBT — the initial profile is nearly free)\n"
    avep.Tpdbt_dbt.Engine.profiling_ops inip.Tpdbt_dbt.Engine.profiling_ops;

  (* Compare INIP(100) with AVEP: the paper's Sd and mismatch metrics. *)
  let comparison =
    Tpdbt_profiles.Metrics.compare_snapshots
      ~inip:inip.Tpdbt_dbt.Engine.snapshot
      ~avep:avep.Tpdbt_dbt.Engine.snapshot
  in
  Format.printf "accuracy of the initial prediction: %a@."
    Tpdbt_profiles.Metrics.pp_comparison comparison;
  if comparison.Tpdbt_profiles.Metrics.sd_bp < 0.1 then
    print_endline
      "Sd.BP < 0.1: the first ~100 executions already predict the average \
       branch behaviour well (the paper's headline observation)."
