(* Phase-change study: the Mcf situation of paper §4.

   The synthetic "mcf" benchmark changes branch behaviour twice during
   its run and inverts its loop trip counts.  This example sweeps the
   retranslation threshold over it and prints how Sd.BP and the loop
   trip-count mismatch respond — showing why a single early profiling
   phase cannot capture phase-changing programs.

   Run with:  dune exec examples/phase_change.exe *)

let () =
  let bench =
    match Tpdbt_workloads.Suite.find "mcf" with
    | Some b -> b
    | None -> failwith "mcf benchmark missing"
  in
  print_endline
    "mcf: phase changes early and late in the run, plus loop trip-count \
     inversion\n";
  let thresholds =
    [ ("100", 1); ("1k", 10); ("10k", 100); ("160k", 1600); ("4M", 40000) ]
  in
  let data = Tpdbt_experiments.Runner.run_benchmark ~thresholds bench in
  Printf.printf "%8s  %8s  %8s  %11s  %11s\n" "T(paper)" "Sd.BP" "Sd.LP"
    "BP mismatch" "LP mismatch";
  List.iter
    (fun run ->
      let c = run.Tpdbt_experiments.Runner.comparison in
      Printf.printf "%8s  %8.4f  %8.4f  %11.3f  %11.3f\n"
        run.Tpdbt_experiments.Runner.label c.Tpdbt_profiles.Metrics.sd_bp
        c.Tpdbt_profiles.Metrics.sd_lp c.Tpdbt_profiles.Metrics.bp_mismatch
        c.Tpdbt_profiles.Metrics.lp_mismatch)
    data.Tpdbt_experiments.Runner.runs;
  let train = data.Tpdbt_experiments.Runner.train_flat in
  Printf.printf "%8s  %8.4f  %8s  %11.3f\n" "train"
    train.Tpdbt_profiles.Metrics.sd_bp "-"
    train.Tpdbt_profiles.Metrics.bp_mismatch;
  print_newline ();
  print_endline
    "Reading: the training input (which experiences the same phases, \
     proportionally) predicts the average behaviour well, while the \
     initial profile stays inaccurate even at very large thresholds — \
     the accumulated early-window counters cannot represent a mixture \
     they have not yet seen.  This is the paper's argument for \
     phase-aware (continuous or multi-phase) profiling."
