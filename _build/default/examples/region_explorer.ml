(* Region explorer: inspect what the optimisation phase builds.

   Runs the nested-loop shape of the paper's Figure 1 (an inner loop
   whose body also belongs to the outer loop) under the DBT, prints the
   discovered basic blocks, the regions the optimiser formed — including
   duplicated blocks — and the NAVEP normalisation that redistributes
   the average profile's frequencies over the duplicated copies.

   Run with:  dune exec examples/region_explorer.exe *)

let source =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 5000       ; outer trip count
outer:
    movi r3, 0
    rnd r4, 11
    addi r4, r4, 15     ; inner trip in [15,25]
inner:
    addi r5, r5, 1      ; shared inner block (Fig 1's Load1)
    addi r3, r3, 1
    blt r3, r4, inner
    addi r1, r1, 1
    blt r1, r2, outer
    out r5
    halt
|}

let () =
  let program = Tpdbt_isa.Assembler.assemble_exn source in
  let bmap = Tpdbt_dbt.Block_map.build program in
  print_endline "discovered basic blocks:";
  List.iter
    (fun b -> Format.printf "  %a@." Tpdbt_dbt.Block_map.pp_block b)
    (Tpdbt_dbt.Block_map.blocks bmap);

  let config = Tpdbt_dbt.Engine.config ~threshold:40 () in
  let inip =
    Tpdbt_dbt.Engine.run (Tpdbt_dbt.Engine.create ~config ~seed:9L program)
  in
  let avep =
    Tpdbt_dbt.Engine.run
      (Tpdbt_dbt.Engine.create ~config:Tpdbt_dbt.Engine.profiling_only ~seed:9L
         program)
  in
  print_endline "\nregions formed by the optimisation phase:";
  List.iter
    (fun region ->
      Format.printf "  %a@." Tpdbt_dbt.Region.pp region;
      let prob slot = Tpdbt_dbt.Region.frozen_branch_prob region slot in
      match region.Tpdbt_dbt.Region.kind with
      | Tpdbt_dbt.Region.Loop ->
          Format.printf "    loop-back probability (frozen profile): %.4f@."
            (Tpdbt_profiles.Region_prob.loopback_probability region ~prob)
      | Tpdbt_dbt.Region.Trace ->
          Format.printf "    completion probability (frozen profile): %.4f@."
            (Tpdbt_profiles.Region_prob.completion_probability region ~prob))
    inip.Tpdbt_dbt.Engine.snapshot.Tpdbt_dbt.Snapshot.regions;

  print_endline "\nNAVEP: average-profile frequencies per block copy:";
  let navep =
    Tpdbt_profiles.Navep.build ~inip:inip.Tpdbt_dbt.Engine.snapshot
      ~avep:avep.Tpdbt_dbt.Engine.snapshot
  in
  List.iter
    (fun (c : Tpdbt_profiles.Navep.copy) ->
      let where =
        match c.Tpdbt_profiles.Navep.location with
        | Tpdbt_profiles.Navep.In_region { region; slot } ->
            Printf.sprintf "region %d slot %d" region slot
        | Tpdbt_profiles.Navep.Standalone -> "standalone"
      in
      let freq = Tpdbt_profiles.Navep.freq navep c.Tpdbt_profiles.Navep.node in
      if freq > 0.0 then
        Printf.printf "  B%-3d %-18s freq %12.1f\n" c.Tpdbt_profiles.Navep.block
          where freq)
    (Tpdbt_profiles.Navep.copies navep);
  print_endline
    "\nDuplicated blocks (same B id in several regions) split their AVEP\n\
     frequency between copies via the Markov flow equations — the paper's\n\
     Figure 3/4 normalisation.";
  let comparison =
    Tpdbt_profiles.Metrics.compare_snapshots
      ~inip:inip.Tpdbt_dbt.Engine.snapshot
      ~avep:avep.Tpdbt_dbt.Engine.snapshot
  in
  Format.printf "\nmetrics: %a@." Tpdbt_profiles.Metrics.pp_comparison
    comparison
