(* Adaptive re-optimisation: the paper's §5 proposal in action.

   "A solution would be to continuously monitor the side exits of each
   region and re-optimize the region when its completion probability
   changes significantly."  (paper §4.2)

   This example runs the phase-changing "mcf" benchmark twice at the
   paper's sweet-spot threshold — once as a classic two-phase
   translator, once with adaptive region dissolution — and compares
   side-exit behaviour, accuracy against the average profile, and
   model cycles.  It also demonstrates the continuous loop-back
   instrumentation (paper ref [21]): the live loop-back probability of
   surviving loop regions, measured after their counters froze.

   Run with:  dune exec examples/adaptive_reopt.exe *)

module Engine = Tpdbt_dbt.Engine
module Perf_model = Tpdbt_dbt.Perf_model
module Region = Tpdbt_dbt.Region

let () =
  let bench =
    match Tpdbt_workloads.Suite.find "mcf" with
    | Some b -> b
    | None -> failwith "mcf benchmark missing"
  in
  let avep = Tpdbt_experiments.Runner.run_avep bench in
  let describe name config =
    let result = Tpdbt_experiments.Runner.run_ref bench ~config in
    let c = result.Engine.counters in
    let comparison =
      Tpdbt_profiles.Metrics.compare_snapshots ~inip:result.Engine.snapshot
        ~avep:avep.Engine.snapshot
    in
    Printf.printf "%-16s cycles %12.0f   side exits %7d / %7d entries   \
                   dissolved %3d   Sd.BP %.3f\n"
      name c.Perf_model.cycles c.Perf_model.side_exits
      c.Perf_model.region_entries c.Perf_model.regions_dissolved
      comparison.Tpdbt_profiles.Metrics.sd_bp;
    result
  in
  print_endline "mcf at threshold 2k (paper label), fixed vs adaptive:\n";
  let _fixed = describe "fixed" (Engine.config ~threshold:20 ()) in
  let adaptive =
    describe "adaptive" (Engine.config ~adaptive:true ~threshold:20 ())
  in
  print_endline "\ncontinuous loop-back instrumentation (surviving loop \
                 regions of the adaptive run):";
  Printf.printf "%8s  %10s  %12s  %12s\n" "region" "frozen LP" "live LP"
    "latch visits";
  List.iter
    (fun (id, stats) ->
      if stats.Engine.loop_back_seen > 200 then
        match
          Tpdbt_dbt.Snapshot.find_region adaptive.Engine.snapshot id
        with
        | Some region when region.Region.kind = Region.Loop ->
            let frozen =
              Tpdbt_profiles.Region_prob.loopback_probability region
                ~prob:(Region.frozen_branch_prob region)
            in
            let live =
              float_of_int stats.Engine.loop_back_taken
              /. float_of_int stats.Engine.loop_back_seen
            in
            Printf.printf "%8d  %10.4f  %12.4f  %12d\n" id frozen live
              stats.Engine.loop_back_seen
        | Some _ | None -> ())
    adaptive.Engine.region_stats;
  print_endline
    "\nWhere frozen and live LP diverge, the loop's trip count changed \
     after optimisation — exactly the information the paper says the \
     translator needs for advanced loop optimisations (its ref [21])."
