(* Threshold sweep on one benchmark: accuracy vs overhead vs speed.

   For a single synthetic benchmark (default "gzip", override with the
   first command-line argument) this sweeps the paper's retranslation
   thresholds and prints, per threshold: Sd.BP, the profiling-operation
   cost relative to a training run, and the performance-model speedup
   over the smallest threshold.  It reproduces the central trade-off of
   the paper: optimise early (cheap, slightly wrong) vs late (accurate,
   far too slow).

   Run with:  dune exec examples/threshold_sweep.exe [-- benchmark] *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "gzip" in
  let bench =
    match Tpdbt_workloads.Suite.find name with
    | Some b -> b
    | None ->
        Printf.eprintf "unknown benchmark %s; available: %s\n" name
          (String.concat " " Tpdbt_workloads.Suite.names);
        exit 1
  in
  Printf.printf "threshold sweep on %s\n\n" name;
  let data = Tpdbt_experiments.Runner.run_benchmark bench in
  let train_ops =
    float_of_int
      data.Tpdbt_experiments.Runner.train.Tpdbt_dbt.Engine.profiling_ops
  in
  let base_cycles =
    match data.Tpdbt_experiments.Runner.runs with
    | base :: _ ->
        base.Tpdbt_experiments.Runner.result.Tpdbt_dbt.Engine.counters
          .Tpdbt_dbt.Perf_model.cycles
    | [] -> failwith "no runs"
  in
  Printf.printf "%8s  %8s  %14s  %14s  %8s\n" "T(paper)" "Sd.BP"
    "profile ops" "(vs train)" "speedup";
  List.iter
    (fun run ->
      let result = run.Tpdbt_experiments.Runner.result in
      let c = run.Tpdbt_experiments.Runner.comparison in
      let ops = result.Tpdbt_dbt.Engine.profiling_ops in
      let cycles =
        result.Tpdbt_dbt.Engine.counters.Tpdbt_dbt.Perf_model.cycles
      in
      Printf.printf "%8s  %8.4f  %14d  %13.2f%%  %8.3f\n"
        run.Tpdbt_experiments.Runner.label c.Tpdbt_profiles.Metrics.sd_bp ops
        (100.0 *. float_of_int ops /. train_ops)
        (base_cycles /. cycles))
    data.Tpdbt_experiments.Runner.runs;
  Printf.printf "\ntraining-run profiling operations: %.0f\n" train_ops;
  Printf.printf "Sd.BP(train) reference: %.4f\n"
    data.Tpdbt_experiments.Runner.train_flat.Tpdbt_profiles.Metrics.sd_bp
