(* Tests for the numerics library: matrices, linear solvers, Markov
   propagation, weighted statistics. *)

module Matrix = Tpdbt_numerics.Matrix
module Solver = Tpdbt_numerics.Linear_solver
module Markov = Tpdbt_numerics.Markov
module Stats = Tpdbt_numerics.Stats
module Graph = Tpdbt_cfg.Graph

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let checkf6 msg = Alcotest.check (Alcotest.float 1e-6) msg

(* ------------------------------------------------------------------ *)
(* Matrix                                                               *)
(* ------------------------------------------------------------------ *)

let test_matrix_basics () =
  let m = Matrix.create ~rows:2 ~cols:3 in
  checki "rows" 2 (Matrix.rows m);
  checki "cols" 3 (Matrix.cols m);
  checkf "zero init" 0.0 (Matrix.get m 1 2);
  Matrix.set m 1 2 5.0;
  checkf "set/get" 5.0 (Matrix.get m 1 2);
  Matrix.add_to m 1 2 2.5;
  checkf "add_to" 7.5 (Matrix.get m 1 2);
  Alcotest.check_raises "bounds"
    (Invalid_argument "Matrix: index (2,0) out of 2x3") (fun () ->
      ignore (Matrix.get m 2 0))

let test_matrix_of_arrays () =
  let m = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  checkf "1 1" 4.0 (Matrix.get m 1 1);
  match Matrix.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "ragged accepted"

let test_matrix_mul_vec () =
  let m = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let v = Matrix.mul_vec m [| 1.0; 1.0 |] in
  checkf "row 0" 3.0 v.(0);
  checkf "row 1" 7.0 v.(1)

let test_matrix_identity_swap () =
  let m = Matrix.identity 3 in
  checkf "diag" 1.0 (Matrix.get m 2 2);
  Matrix.swap_rows m 0 2;
  checkf "swapped" 1.0 (Matrix.get m 0 2);
  checkf "swapped2" 1.0 (Matrix.get m 2 0)

(* ------------------------------------------------------------------ *)
(* Linear solvers                                                       *)
(* ------------------------------------------------------------------ *)

let test_gauss_simple () =
  (* 2x + y = 5; x - y = 1  ->  x = 2, y = 1 *)
  let a = Matrix.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  match Solver.gauss a [| 5.0; 1.0 |] with
  | Error msg -> Alcotest.fail msg
  | Ok x ->
      checkf6 "x" 2.0 x.(0);
      checkf6 "y" 1.0 x.(1)

let test_gauss_needs_pivoting () =
  (* Zero on the initial pivot position. *)
  let a = Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  match Solver.gauss a [| 3.0; 4.0 |] with
  | Error msg -> Alcotest.fail msg
  | Ok x ->
      checkf6 "x" 4.0 x.(0);
      checkf6 "y" 3.0 x.(1)

let test_gauss_singular () =
  let a = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  checkb "singular" true (Result.is_error (Solver.gauss a [| 1.0; 2.0 |]));
  let bad = Matrix.create ~rows:2 ~cols:3 in
  checkb "not square" true (Result.is_error (Solver.gauss bad [| 1.0; 2.0 |]));
  let sq = Matrix.identity 2 in
  checkb "dim mismatch" true (Result.is_error (Solver.gauss sq [| 1.0 |]))

let test_jacobi_agrees () =
  (* Diagonally dominant system. *)
  let a =
    Matrix.of_arrays
      [| [| 4.0; 1.0; 0.0 |]; [| 1.0; 5.0; 2.0 |]; [| 0.0; 2.0; 6.0 |] |]
  in
  let b = [| 9.0; 20.0; 22.0 |] in
  match (Solver.gauss a b, Solver.jacobi a b) with
  | Ok g, Ok j ->
      Array.iteri (fun i gv -> checkf6 (Printf.sprintf "x%d" i) gv j.(i)) g
  | Error msg, _ | _, Error msg -> Alcotest.fail msg

let test_jacobi_zero_diag () =
  let a = Matrix.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  checkb "zero diag" true (Result.is_error (Solver.jacobi a [| 1.0; 1.0 |]))

let test_residual () =
  let a = Matrix.identity 2 in
  checkf "exact" 0.0 (Solver.residual_norm a [| 1.0; 2.0 |] [| 1.0; 2.0 |]);
  checkf "off" 1.0 (Solver.residual_norm a [| 1.0; 2.0 |] [| 1.0; 3.0 |])

let test_gauss_1x1 () =
  let a = Matrix.of_arrays [| [| 4.0 |] |] in
  match Solver.gauss a [| 8.0 |] with
  | Ok x -> checkf6 "trivial" 2.0 x.(0)
  | Error msg -> Alcotest.fail msg

let test_markov_no_inflow_zero () =
  (* An unknown node with no predecessors solves to zero. *)
  let g = Graph.create () in
  Graph.add_node g 3;
  match Markov.solve ~graph:g ~prob:(fun _ _ -> 0.0) ~known:[] with
  | Ok freq -> checkf "isolated unknown" 0.0 (Hashtbl.find freq 3)
  | Error msg -> Alcotest.fail msg

let test_markov_flow_conservation () =
  (* A known source splitting 0.3/0.7 into two unknowns: they sum to the
     source. *)
  let g = Graph.of_edges [ (0, 1); (0, 2) ] in
  let prob src dst =
    match (src, dst) with 0, 1 -> 0.3 | 0, 2 -> 0.7 | _ -> 0.0
  in
  match Markov.solve ~graph:g ~prob ~known:[ (0, 1000.0) ] with
  | Ok freq ->
      checkf6 "split conserves flow" 1000.0
        (Hashtbl.find freq 1 +. Hashtbl.find freq 2)
  | Error msg -> Alcotest.fail msg

(* Property: gauss solution satisfies A x = b (residual small) for
   random diagonally dominant systems; jacobi agrees. *)
let prop_solvers_agree =
  let open QCheck in
  let gen =
    Gen.(
      int_range 1 8 >>= fun n ->
      list_size (return (n * n)) (float_range (-2.0) 2.0) >>= fun entries ->
      list_size (return n) (float_range (-10.0) 10.0) >>= fun rhs ->
      return (n, entries, rhs))
  in
  Test.make ~name:"gauss and jacobi agree on dominant systems" ~count:100
    (make gen) (fun (n, entries, rhs) ->
      let a = Matrix.create ~rows:n ~cols:n in
      List.iteri
        (fun k v ->
          let i = k / n and j = k mod n in
          Matrix.set a i j v)
        entries;
      (* Force strict diagonal dominance. *)
      for i = 0 to n - 1 do
        let sum = ref 0.0 in
        for j = 0 to n - 1 do
          if j <> i then sum := !sum +. abs_float (Matrix.get a i j)
        done;
        Matrix.set a i i (!sum +. 1.0)
      done;
      let b = Array.of_list rhs in
      match (Solver.gauss a b, Solver.jacobi a b) with
      | Ok g, Ok j ->
          Solver.residual_norm a g b < 1e-6
          && Array.for_all2 (fun x y -> abs_float (x -. y) < 1e-6) g j
      | Error _, _ | _, Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Markov propagation                                                   *)
(* ------------------------------------------------------------------ *)

let test_markov_solve_paper_shape () =
  (* The Fig 4 situation: block b2 duplicated into three copies fed by
     known-frequency blocks.  Nodes: 1=b1(1000), 3=b3(6000), 4=b4(44000)
     known; 20,21,22 = copies of b2, unknown.
       b1 -> copy20 with prob 1.0
       b4 -> copy21 with prob 1.0
       b3 -> copy22 with prob 5/6 (say)
     Expect copy frequencies 1000, 44000, 5000. *)
  let g = Graph.of_edges [ (1, 20); (4, 21); (3, 22) ] in
  let prob src dst =
    match (src, dst) with
    | 1, 20 -> 1.0
    | 4, 21 -> 1.0
    | 3, 22 -> 5.0 /. 6.0
    | _ -> 0.0
  in
  match
    Markov.solve ~graph:g ~prob
      ~known:[ (1, 1000.0); (3, 6000.0); (4, 44000.0) ]
  with
  | Error msg -> Alcotest.fail msg
  | Ok freq ->
      checkf6 "copy 20" 1000.0 (Hashtbl.find freq 20);
      checkf6 "copy 21" 44000.0 (Hashtbl.find freq 21);
      checkf6 "copy 22" 5000.0 (Hashtbl.find freq 22);
      checkf6 "copies sum to b2 AVEP freq" 50000.0
        (Hashtbl.find freq 20 +. Hashtbl.find freq 21 +. Hashtbl.find freq 22)

let test_markov_solve_cycle () =
  (* Unknown with a self loop: x = 1000 + 0.5 x  ->  x = 2000. *)
  let g = Graph.of_edges [ (0, 1); (1, 1) ] in
  let prob src dst =
    match (src, dst) with 0, 1 -> 1.0 | 1, 1 -> 0.5 | _ -> 0.0
  in
  match Markov.solve ~graph:g ~prob ~known:[ (0, 1000.0) ] with
  | Error msg -> Alcotest.fail msg
  | Ok freq -> checkf6 "geometric" 2000.0 (Hashtbl.find freq 1)

let test_markov_mutual_unknowns () =
  (* Two unknowns feeding each other:
       x = 100 + 0.5 y ; y = 0.5 x  ->  x = 400/3, y = 200/3. *)
  let g = Graph.of_edges [ (9, 1); (1, 2); (2, 1) ] in
  let prob src dst =
    match (src, dst) with
    | 9, 1 -> 1.0
    | 1, 2 -> 0.5
    | 2, 1 -> 0.5
    | _ -> 0.0
  in
  match Markov.solve ~graph:g ~prob ~known:[ (9, 100.0) ] with
  | Error msg -> Alcotest.fail msg
  | Ok freq ->
      checkf6 "x" (400.0 /. 3.0) (Hashtbl.find freq 1);
      checkf6 "y" (200.0 /. 3.0) (Hashtbl.find freq 2)

let test_markov_all_known () =
  let g = Graph.of_edges [ (0, 1) ] in
  match Markov.solve ~graph:g ~prob:(fun _ _ -> 1.0) ~known:[ (0, 5.0); (1, 7.0) ] with
  | Error msg -> Alcotest.fail msg
  | Ok freq ->
      checkf "knowns preserved" 5.0 (Hashtbl.find freq 0);
      checkf "knowns preserved 2" 7.0 (Hashtbl.find freq 1)

let test_propagate_acyclic_fig6 () =
  (* Paper Fig 6: b5 -(0.4)-> b6 -(0.8)-> b8, b5 -(0.6)-> b7 -(0.9)-> b8.
     Completion probability = 0.86. *)
  let g = Graph.of_edges [ (5, 6); (5, 7); (6, 8); (7, 8) ] in
  let prob src dst =
    match (src, dst) with
    | 5, 6 -> 0.4
    | 5, 7 -> 0.6
    | 6, 8 -> 0.8
    | 7, 8 -> 0.9
    | _ -> 0.0
  in
  match Markov.propagate_acyclic ~graph:g ~prob ~entry:5 ~entry_freq:1.0 with
  | Error msg -> Alcotest.fail msg
  | Ok freq ->
      checkf6 "b6" 0.4 (Hashtbl.find freq 6);
      checkf6 "b7" 0.6 (Hashtbl.find freq 7);
      checkf6 "completion = 0.86" 0.86 (Hashtbl.find freq 8)

let test_propagate_acyclic_rejects_cycle () =
  let g = Graph.of_edges [ (0, 1); (1, 0) ] in
  checkb "cycle rejected" true
    (Result.is_error
       (Markov.propagate_acyclic ~graph:g ~prob:(fun _ _ -> 1.0) ~entry:0
          ~entry_freq:1.0))

let test_propagate_unreachable_zero () =
  let g = Graph.of_edges [ (0, 1) ] in
  Graph.add_node g 7;
  match Markov.propagate_acyclic ~graph:g ~prob:(fun _ _ -> 1.0) ~entry:0 ~entry_freq:2.0 with
  | Error msg -> Alcotest.fail msg
  | Ok freq ->
      checkf "unreachable" 0.0 (Hashtbl.find freq 7);
      checkf "reachable" 2.0 (Hashtbl.find freq 1)

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let test_weighted_sd_formula () =
  (* Hand check of the paper's formula:
     sqrt(((0.2)^2*10 + (0.1)^2*30) / 40). *)
  let samples =
    [
      { Stats.predicted = 0.5; actual = 0.3; weight = 10.0 };
      { Stats.predicted = 0.6; actual = 0.7; weight = 30.0 };
    ]
  in
  let expected = sqrt (((0.04 *. 10.0) +. (0.01 *. 30.0)) /. 40.0) in
  checkf6 "weighted sd" expected (Stats.weighted_sd samples)

let test_weighted_sd_degenerate () =
  checkf "empty" 0.0 (Stats.weighted_sd []);
  checkf "zero weight" 0.0
    (Stats.weighted_sd [ { Stats.predicted = 1.0; actual = 0.0; weight = 0.0 } ]);
  checkf "perfect prediction" 0.0
    (Stats.weighted_sd [ { Stats.predicted = 0.7; actual = 0.7; weight = 5.0 } ])

let test_weighted_mean () =
  checkf6 "mean" 0.25 (Stats.weighted_mean [ (0.1, 3.0); (0.7, 1.0) ]);
  checkf "empty" 0.0 (Stats.weighted_mean [])

let test_mismatch_rate () =
  let ranges p = if p < 0.3 then 0 else if p <= 0.7 then 1 else 2 in
  let samples =
    [
      { Stats.predicted = 0.99; actual = 0.76; weight = 1.0 };  (* match *)
      { Stats.predicted = 0.68; actual = 0.78; weight = 3.0 };  (* mismatch *)
    ]
  in
  checkf6 "paper example rates" 0.75 (Stats.mismatch_rate ~ranges samples);
  checkf "empty" 0.0 (Stats.mismatch_rate ~ranges [])

let test_mean () =
  checkf6 "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  checkf "empty" 0.0 (Stats.mean [])

(* Property: Sd is scale-invariant in weights and bounded by max |diff|. *)
let prop_sd_bounds =
  let open QCheck in
  let sample =
    Gen.(
      triple (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)
        (float_range 0.1 10.0))
  in
  Test.make ~name:"weighted sd bounded by max deviation" ~count:300
    (make Gen.(list_size (int_range 1 20) sample))
    (fun samples ->
      let samples =
        List.map
          (fun (p, a, w) -> { Stats.predicted = p; actual = a; weight = w })
          samples
      in
      let sd = Stats.weighted_sd samples in
      let max_dev =
        List.fold_left
          (fun acc s -> max acc (abs_float (s.Stats.predicted -. s.Stats.actual)))
          0.0 samples
      in
      sd >= -1e-12 && sd <= max_dev +. 1e-9)

let suite =
  [
    ("matrix basics", `Quick, test_matrix_basics);
    ("matrix of_arrays", `Quick, test_matrix_of_arrays);
    ("matrix mul_vec", `Quick, test_matrix_mul_vec);
    ("matrix identity/swap", `Quick, test_matrix_identity_swap);
    ("gauss simple", `Quick, test_gauss_simple);
    ("gauss pivoting", `Quick, test_gauss_needs_pivoting);
    ("gauss singular", `Quick, test_gauss_singular);
    ("jacobi agrees", `Quick, test_jacobi_agrees);
    ("jacobi zero diag", `Quick, test_jacobi_zero_diag);
    ("residual", `Quick, test_residual);
    ("gauss 1x1", `Quick, test_gauss_1x1);
    ("markov no inflow", `Quick, test_markov_no_inflow_zero);
    ("markov flow conservation", `Quick, test_markov_flow_conservation);
    ("markov paper shape", `Quick, test_markov_solve_paper_shape);
    ("markov cycle", `Quick, test_markov_solve_cycle);
    ("markov mutual unknowns", `Quick, test_markov_mutual_unknowns);
    ("markov all known", `Quick, test_markov_all_known);
    ("propagate fig6", `Quick, test_propagate_acyclic_fig6);
    ("propagate rejects cycle", `Quick, test_propagate_acyclic_rejects_cycle);
    ("propagate unreachable", `Quick, test_propagate_unreachable_zero);
    ("weighted sd formula", `Quick, test_weighted_sd_formula);
    ("weighted sd degenerate", `Quick, test_weighted_sd_degenerate);
    ("weighted mean", `Quick, test_weighted_mean);
    ("mismatch rate", `Quick, test_mismatch_rate);
    ("mean", `Quick, test_mean);
    QCheck_alcotest.to_alcotest prop_solvers_agree;
    QCheck_alcotest.to_alcotest prop_sd_bounds;
  ]
