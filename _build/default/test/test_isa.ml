(* Tests for the G32 ISA layer: registers, instructions, encoding,
   assembler, disassembler. *)

module Reg = Tpdbt_isa.Reg
module Instr = Tpdbt_isa.Instr
module Program = Tpdbt_isa.Program
module Encode = Tpdbt_isa.Encode
module Assembler = Tpdbt_isa.Assembler
module Disasm = Tpdbt_isa.Disasm
module Lexer = Tpdbt_isa.Lexer

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Registers                                                            *)
(* ------------------------------------------------------------------ *)

let test_reg_roundtrip () =
  List.iter
    (fun r ->
      checki "to_int/of_int" (Reg.to_int r) (Reg.to_int (Reg.of_int (Reg.to_int r))))
    Reg.all;
  checki "count" 16 Reg.count;
  checki "all length" 16 (List.length Reg.all)

let test_reg_bounds () =
  checkb "of_int_opt -1" true (Reg.of_int_opt (-1) = None);
  checkb "of_int_opt 16" true (Reg.of_int_opt 16 = None);
  checkb "of_int_opt 15" true (Reg.of_int_opt 15 <> None);
  Alcotest.check_raises "of_int 16"
    (Invalid_argument "Reg.of_int: 16 out of range") (fun () ->
      ignore (Reg.of_int 16))

let test_reg_strings () =
  check Alcotest.string "to_string" "r7" (Reg.to_string (Reg.of_int 7));
  checkb "of_string r15" true
    (Reg.of_string_opt "r15" = Some (Reg.of_int 15));
  checkb "of_string r16" true (Reg.of_string_opt "r16" = None);
  checkb "of_string x3" true (Reg.of_string_opt "x3" = None);
  checkb "of_string empty" true (Reg.of_string_opt "" = None);
  checkb "of_string r" true (Reg.of_string_opt "r" = None)

(* ------------------------------------------------------------------ *)
(* Instructions                                                         *)
(* ------------------------------------------------------------------ *)

let r n = Reg.of_int n

let test_terminators () =
  checkb "br" true (Instr.is_terminator (Instr.Br (Instr.Eq, r 0, r 1, 5)));
  checkb "jmp" true (Instr.is_terminator (Instr.Jmp 3));
  checkb "call" true (Instr.is_terminator (Instr.Call 3));
  checkb "ret" true (Instr.is_terminator Instr.Ret);
  checkb "halt" true (Instr.is_terminator Instr.Halt);
  checkb "movi" false (Instr.is_terminator (Instr.Movi (r 1, 5)));
  checkb "load" false (Instr.is_terminator (Instr.Load (r 1, r 2, 0)))

let test_branch_targets () =
  check
    Alcotest.(list int)
    "br targets" [ 7; 4 ]
    (Instr.branch_targets ~pc:3 (Instr.Br (Instr.Lt, r 0, r 1, 7)));
  check Alcotest.(list int) "jmp" [ 9 ] (Instr.branch_targets ~pc:3 (Instr.Jmp 9));
  check Alcotest.(list int) "ret" [] (Instr.branch_targets ~pc:3 Instr.Ret);
  check
    Alcotest.(list int)
    "call" [ 11; 4 ]
    (Instr.branch_targets ~pc:3 (Instr.Call 11));
  check
    Alcotest.(list int)
    "straight" [ 4 ]
    (Instr.branch_targets ~pc:3 (Instr.Movi (r 0, 1)))

let test_eval_cond () =
  checkb "eq" true (Instr.eval_cond Instr.Eq 3 3);
  checkb "ne" true (Instr.eval_cond Instr.Ne 3 4);
  checkb "lt neg" true (Instr.eval_cond Instr.Lt (-1) 0);
  checkb "ge" true (Instr.eval_cond Instr.Ge 5 5);
  checkb "le" false (Instr.eval_cond Instr.Le 6 5);
  checkb "gt" true (Instr.eval_cond Instr.Gt 6 5)

let test_negate_cond () =
  let conds = [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Ge; Instr.Le; Instr.Gt ] in
  List.iter
    (fun c ->
      List.iter
        (fun (a, b) ->
          checkb "negation flips" (Instr.eval_cond c a b)
            (not (Instr.eval_cond (Instr.negate_cond c) a b)))
        [ (0, 0); (1, 2); (2, 1); (-5, 5); (5, -5) ])
    conds

(* ------------------------------------------------------------------ *)
(* Program construction                                                 *)
(* ------------------------------------------------------------------ *)

let test_program_validate () =
  let ok = Program.make [| Instr.Movi (r 0, 1); Instr.Halt |] in
  checki "length" 2 (Program.length ok);
  checkb "validate" true (Result.is_ok (Program.validate ok));
  Alcotest.check_raises "empty"
    (Invalid_argument "Program.make: empty code")
    (fun () -> ignore (Program.make [||]));
  (match Program.make [| Instr.Jmp 5; Instr.Halt |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range target accepted");
  match Program.make ~entry:9 [| Instr.Halt |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad entry accepted"

(* ------------------------------------------------------------------ *)
(* Encoding                                                             *)
(* ------------------------------------------------------------------ *)

let sample_instrs =
  [
    Instr.Nop;
    Instr.Halt;
    Instr.Movi (r 3, -42);
    Instr.Mov (r 15, r 0);
    Instr.Binop (Instr.Add, r 1, r 2, r 3);
    Instr.Binop (Instr.Shr, r 4, r 5, r 6);
    Instr.Binopi (Instr.Mul, r 7, r 8, 1 lsl 30);
    Instr.Binopi (Instr.Xor, r 9, r 10, -7);
    Instr.Load (r 11, r 12, 4095);
    Instr.Store (r 13, r 14, -16);
    Instr.Br (Instr.Le, r 1, r 2, 123456);
    Instr.Jmp 0;
    Instr.Call 777;
    Instr.Ret;
    Instr.Rnd (r 2, 1000);
    Instr.Out (r 5);
  ]

let test_encode_roundtrip () =
  List.iter
    (fun instr ->
      let bytes = Encode.encode_instr instr in
      checki "size" Encode.instr_size (Bytes.length bytes);
      match Encode.decode_instr bytes ~pos:0 with
      | Ok decoded ->
          checkb (Instr.to_string instr) true (Instr.equal instr decoded)
      | Error msg -> Alcotest.fail msg)
    sample_instrs

let test_encode_program_roundtrip () =
  let p =
    Program.make ~entry:1
      ~data_init:[ (0, 99); (500, -3) ]
      [| Instr.Nop; Instr.Movi (r 1, 7); Instr.Jmp 1; Instr.Halt |]
  in
  match Encode.decode_program (Encode.encode_program p) with
  | Error msg -> Alcotest.fail msg
  | Ok q ->
      checki "entry" p.Program.entry q.Program.entry;
      checki "len" (Program.length p) (Program.length q);
      checkb "data" true (p.Program.data_init = q.Program.data_init);
      checkb "code" true (p.Program.code = q.Program.code)

let test_decode_garbage () =
  checkb "truncated" true
    (Result.is_error (Encode.decode_program (Bytes.create 3)));
  let bad = Bytes.make 16 '\255' in
  checkb "bad magic" true (Result.is_error (Encode.decode_program bad));
  checkb "bad opcode" true
    (Result.is_error (Encode.decode_instr (Bytes.make 8 '\255') ~pos:0))

let test_encode_file_roundtrip () =
  let p = Program.make [| Instr.Movi (r 1, 5); Instr.Out (r 1); Instr.Halt |] in
  let path = Filename.temp_file "tpdbt" ".g32" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Encode.write_file path p;
      match Encode.read_file path with
      | Ok q -> checkb "roundtrip" true (p.Program.code = q.Program.code)
      | Error msg -> Alcotest.fail msg)

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

let tokens_of src =
  match Lexer.tokenize src with
  | Ok toks -> List.map (fun t -> t.Lexer.token) toks
  | Error msg -> Alcotest.fail msg

let test_lexer_basic () =
  checkb "mnemonic and operands" true
    (tokens_of "movi r1, 42"
    = [ Lexer.Ident "movi"; Lexer.Ident "r1"; Lexer.Comma; Lexer.Int 42; Lexer.Eof ]);
  checkb "negative" true
    (tokens_of "-7" = [ Lexer.Int (-7); Lexer.Eof ]);
  checkb "label" true
    (tokens_of "loop:" = [ Lexer.Ident "loop"; Lexer.Colon; Lexer.Eof ]);
  checkb "comment" true (tokens_of "; hi there" = [ Lexer.Eof ]);
  checkb "directive" true
    (tokens_of ".entry main"
    = [ Lexer.Directive "entry"; Lexer.Ident "main"; Lexer.Eof ]);
  checkb "mem operand" true
    (tokens_of "[r3+8]"
    = [ Lexer.Lbracket; Lexer.Ident "r3"; Lexer.Int 8; Lexer.Rbracket; Lexer.Eof ])

let test_lexer_lines () =
  match Lexer.tokenize "a\nb\nc" with
  | Error msg -> Alcotest.fail msg
  | Ok toks ->
      let lines =
        List.filter_map
          (fun t ->
            match t.Lexer.token with
            | Lexer.Ident _ -> Some t.Lexer.line
            | _ -> None)
          toks
      in
      checkb "line numbers" true (lines = [ 1; 2; 3 ])

let test_lexer_errors () =
  checkb "stray char" true (Result.is_error (Lexer.tokenize "mov @"));
  checkb "bare dot" true (Result.is_error (Lexer.tokenize ". foo"));
  checkb "dangling sign" true (Result.is_error (Lexer.tokenize "movi r1, -"))

(* ------------------------------------------------------------------ *)
(* Assembler                                                            *)
(* ------------------------------------------------------------------ *)

let test_assemble_basic () =
  let p =
    Assembler.assemble_exn
      {|
.entry main
main:
    movi r1, 10
loop:
    subi r1, r1, 1
    bgt r1, r0, loop
    halt
|}
  in
  checki "length" 4 (Program.length p);
  checki "entry" 0 p.Program.entry;
  checkb "branch resolved" true
    (Program.instr p 2 = Instr.Br (Instr.Gt, r 1, r 0, 1))

let test_assemble_forward_refs () =
  let p =
    Assembler.assemble_exn
      {|
    jmp end
    nop
end:
    halt
|}
  in
  checkb "forward jmp" true (Program.instr p 0 = Instr.Jmp 2)

let test_assemble_mem_and_data () =
  let p =
    Assembler.assemble_exn
      {|
.data 5 42
.data 6 -1
    ld r1, [r0+5]
    st r1, [r2]
    halt
|}
  in
  checkb "data" true (p.Program.data_init = [ (5, 42); (6, -1) ]);
  checkb "ld" true (Program.instr p 0 = Instr.Load (r 1, r 0, 5));
  checkb "st offset 0" true (Program.instr p 1 = Instr.Store (r 1, r 2, 0))

let test_assemble_errors () =
  let expect_error src = checkb src true (Result.is_error (Assembler.assemble src)) in
  expect_error "jmp nowhere\nhalt";
  expect_error "foo r1, r2";
  expect_error "main:\nmain:\nhalt";
  expect_error ".entry missing\nhalt";
  expect_error "movi r99, 1\nhalt";
  expect_error "rnd r1, 0\nhalt";
  expect_error ".entry a\n.entry b\na:\nb:\nhalt"

let test_assemble_all_mnemonics () =
  let p =
    Assembler.assemble_exn
      {|
start:
    add r1, r2, r3
    subi r4, r5, -2
    mul r6, r7, r8
    divi r9, r10, 2
    rem r11, r12, r13
    andi r1, r1, 255
    or r2, r2, r3
    xori r4, r4, 1
    shl r5, r5, r6
    shri r7, r7, 3
    mov r8, r9
    rnd r10, 6
    out r10
    beq r1, r2, start
    bne r1, r2, start
    blt r1, r2, start
    bge r1, r2, start
    ble r1, r2, start
    bgt r1, r2, start
    call start
    ret
    nop
    halt
|}
  in
  checki "all mnemonics" 23 (Program.length p)

(* ------------------------------------------------------------------ *)
(* Disassembler                                                         *)
(* ------------------------------------------------------------------ *)

let test_disasm_roundtrip () =
  let src =
    {|
.entry main
.data 3 17
main:
    movi r1, 5
    rnd r2, 10
loop:
    subi r1, r1, 1
    ld r3, [r1+100]
    st r3, [r1-1]
    beq r1, r0, done
    jmp loop
done:
    call fn
    out r2
    halt
fn:
    addi r2, r2, 1
    ret
|}
  in
  let p = Assembler.assemble_exn src in
  let text = Disasm.disassemble p in
  let q = Assembler.assemble_exn text in
  checkb "code roundtrip" true (p.Program.code = q.Program.code);
  checki "entry roundtrip" p.Program.entry q.Program.entry;
  checkb "data roundtrip" true (p.Program.data_init = q.Program.data_init)

(* ------------------------------------------------------------------ *)
(* Static checker                                                       *)
(* ------------------------------------------------------------------ *)

module Check = Tpdbt_isa.Check

let issues_of src = Check.check (Assembler.assemble_exn src)

let test_check_clean_program () =
  checkb "clean loop" true
    (issues_of
       {|
main:
    movi r1, 0
    movi r2, 10
loop:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
|}
    = [])

let test_check_unreachable () =
  match issues_of "main:\n    jmp end\n    nop\n    nop\nend:\n    halt" with
  | [ Check.Unreachable_code { start_pc = 1; count = 2 } ] -> ()
  | issues ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Check.pp_issue) issues))

let test_check_read_before_write () =
  match issues_of "main:\n    addi r5, r5, 1\n    halt" with
  | [ Check.Read_before_write { pc = 0; reg } ] ->
      checki "register r5" 5 (Reg.to_int reg)
  | _ -> Alcotest.fail "expected a read-before-write issue"

let test_check_branch_paths_meet () =
  (* r3 written on only one arm of a branch: reading it afterwards is
     flagged; writing it on both arms is clean. *)
  let one_arm =
    {|
main:
    movi r1, 1
    beq r1, r1, a
    movi r3, 5
a:
    out r3
    halt
|}
  in
  checkb "one-arm write flagged" true
    (List.exists
       (function Check.Read_before_write _ -> true | _ -> false)
       (issues_of one_arm));
  let both_arms =
    {|
main:
    movi r1, 1
    beq r1, r1, a
    movi r3, 5
    jmp b
a:
    movi r3, 6
b:
    out r3
    halt
|}
  in
  checkb "both-arm write clean" true (issues_of both_arms = [])

let test_check_no_halt () =
  match issues_of "main:\nloop:\n    jmp loop" with
  | [ Check.No_reachable_halt ] -> ()
  | _ -> Alcotest.fail "expected no-reachable-halt"

let test_check_unreachable_halt_still_flagged () =
  (* A halt exists but is unreachable. *)
  let issues = issues_of "main:\nloop:\n    jmp loop\n    halt" in
  checkb "halt unreachable" true (List.mem Check.No_reachable_halt issues)

let test_check_loop_back_init () =
  (* A register written only inside a loop body then read at the top of
     the next iteration is fine (written on every path that reaches the
     read after the first write... here it is read before the first
     write on the entry path, so it must be flagged). *)
  let src =
    {|
main:
    movi r1, 0
loop:
    addi r2, r3, 1      ; r3 never initialised before first iteration
    mov r3, r2
    addi r1, r1, 1
    movi r4, 3
    blt r1, r4, loop
    halt
|}
  in
  checkb "loop-carried uninitialised read flagged" true
    (List.exists
       (function
         | Check.Read_before_write { reg; _ } -> Reg.to_int reg = 3
         | _ -> false)
       (issues_of src))

(* ------------------------------------------------------------------ *)
(* Property tests                                                       *)
(* ------------------------------------------------------------------ *)

let instr_gen =
  let open QCheck.Gen in
  let reg = map Reg.of_int (int_bound 15) in
  let imm = int_range (-1_000_000) 1_000_000 in
  let target = int_bound 1000 in
  let binop =
    oneofl
      [
        Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
        Instr.Or; Instr.Xor; Instr.Shl; Instr.Shr;
      ]
  in
  let cond =
    oneofl [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Ge; Instr.Le; Instr.Gt ]
  in
  oneof
    [
      return Instr.Nop;
      return Instr.Halt;
      return Instr.Ret;
      map2 (fun r i -> Instr.Movi (r, i)) reg imm;
      map2 (fun a b -> Instr.Mov (a, b)) reg reg;
      map (fun ((op, a), (b, c)) -> Instr.Binop (op, a, b, c)) (pair (pair binop reg) (pair reg reg));
      map (fun ((op, a), (b, i)) -> Instr.Binopi (op, a, b, i)) (pair (pair binop reg) (pair reg imm));
      map (fun ((a, b), i) -> Instr.Load (a, b, i)) (pair (pair reg reg) imm);
      map (fun ((a, b), i) -> Instr.Store (a, b, i)) (pair (pair reg reg) imm);
      map (fun ((c, a), (b, t)) -> Instr.Br (c, a, b, t)) (pair (pair cond reg) (pair reg target));
      map (fun t -> Instr.Jmp t) target;
      map (fun t -> Instr.Call t) target;
      map2 (fun a b -> Instr.Rnd (a, b + 1)) reg (int_bound 10_000);
      map (fun a -> Instr.Out a) reg;
    ]

let instr_arbitrary = QCheck.make ~print:Instr.to_string instr_gen

let prop_encode_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:500 instr_arbitrary
    (fun instr ->
      match Encode.decode_instr (Encode.encode_instr instr) ~pos:0 with
      | Ok decoded -> Instr.equal instr decoded
      | Error _ -> false)

let prop_pp_parses =
  (* Pretty-printed straight-line instructions re-assemble to themselves. *)
  let straight =
    QCheck.make ~print:Instr.to_string
      (QCheck.Gen.map
         (fun i ->
           match i with
           | Instr.Br _ | Instr.Jmp _ | Instr.Call _ -> Instr.Nop
           | other -> other)
         instr_gen)
  in
  QCheck.Test.make ~name:"pp output reassembles" ~count:300 straight
    (fun instr ->
      let src = Instr.to_string instr ^ "\nhalt\n" in
      match Assembler.assemble src with
      | Ok p -> Instr.equal (Program.instr p 0) instr
      | Error _ -> false)

(* Fuzz: the assembler never raises on arbitrary text — it returns
   Ok or Error. *)
let prop_assembler_total =
  let open QCheck in
  let fragment =
    Gen.oneofl
      [
        "movi"; "add"; "ld"; "st"; "beq"; "jmp"; "call"; "ret"; "halt";
        "r1"; "r99"; "loop:"; ".entry"; ".data"; ","; "["; "]"; "+"; "-42";
        "12345"; ";comment"; "\n"; " "; "@"; ":"; "loop"; "....";
      ]
  in
  let gen = Gen.(map (String.concat " ") (list_size (int_range 0 30) fragment)) in
  Test.make ~name:"assembler is total on garbage" ~count:500
    (make ~print:(fun s -> s) gen)
    (fun src ->
      match Assembler.assemble src with Ok _ | Error _ -> true)

(* Fuzz: the binary decoder never raises on arbitrary bytes. *)
let prop_decoder_total =
  let open QCheck in
  let gen = Gen.(map Bytes.of_string (string_size (int_range 0 200))) in
  Test.make ~name:"decoder is total on garbage" ~count:500
    (make gen)
    (fun bytes ->
      match Encode.decode_program bytes with Ok _ | Error _ -> true)

let suite =
  [
    ("reg roundtrip", `Quick, test_reg_roundtrip);
    ("reg bounds", `Quick, test_reg_bounds);
    ("reg strings", `Quick, test_reg_strings);
    ("terminators", `Quick, test_terminators);
    ("branch targets", `Quick, test_branch_targets);
    ("eval cond", `Quick, test_eval_cond);
    ("negate cond", `Quick, test_negate_cond);
    ("program validate", `Quick, test_program_validate);
    ("encode roundtrip", `Quick, test_encode_roundtrip);
    ("encode program roundtrip", `Quick, test_encode_program_roundtrip);
    ("decode garbage", `Quick, test_decode_garbage);
    ("encode file roundtrip", `Quick, test_encode_file_roundtrip);
    ("lexer basic", `Quick, test_lexer_basic);
    ("lexer lines", `Quick, test_lexer_lines);
    ("lexer errors", `Quick, test_lexer_errors);
    ("assemble basic", `Quick, test_assemble_basic);
    ("assemble forward refs", `Quick, test_assemble_forward_refs);
    ("assemble mem and data", `Quick, test_assemble_mem_and_data);
    ("assemble errors", `Quick, test_assemble_errors);
    ("assemble all mnemonics", `Quick, test_assemble_all_mnemonics);
    ("disasm roundtrip", `Quick, test_disasm_roundtrip);
    ("check clean program", `Quick, test_check_clean_program);
    ("check unreachable", `Quick, test_check_unreachable);
    ("check read before write", `Quick, test_check_read_before_write);
    ("check branch paths meet", `Quick, test_check_branch_paths_meet);
    ("check no halt", `Quick, test_check_no_halt);
    ("check unreachable halt", `Quick, test_check_unreachable_halt_still_flagged);
    ("check loop-carried init", `Quick, test_check_loop_back_init);
    QCheck_alcotest.to_alcotest prop_assembler_total;
    QCheck_alcotest.to_alcotest prop_decoder_total;
    QCheck_alcotest.to_alcotest prop_encode_roundtrip;
    QCheck_alcotest.to_alcotest prop_pp_parses;
  ]
