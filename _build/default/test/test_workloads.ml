(* Tests for the workload generator and the synthetic SPEC2000 suite. *)

module Spec = Tpdbt_workloads.Spec
module Suite = Tpdbt_workloads.Suite
module Codegen = Tpdbt_workloads.Codegen
module Program = Tpdbt_isa.Program
module Machine = Tpdbt_vm.Machine
module Engine = Tpdbt_dbt.Engine
module Snapshot = Tpdbt_dbt.Snapshot
module Block_map = Tpdbt_dbt.Block_map

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Codegen                                                              *)
(* ------------------------------------------------------------------ *)

let test_codegen_labels_unique () =
  let ctx = Codegen.create () in
  let a = Codegen.fresh_label ctx "x" and b = Codegen.fresh_label ctx "x" in
  checkb "unique" true (a <> b)

let test_codegen_params () =
  let ctx = Codegen.create () in
  let a = Codegen.param ctx ~ref_value:10 ~train_value:20 in
  let b = Codegen.param ctx ~ref_value:30 ~train_value:40 in
  checkb "distinct addresses" true (a <> b);
  checkb "recorded" true
    (Codegen.params ctx = [ (a, 10, 20); (b, 30, 40) ]);
  let s = Codegen.scratch_addr ctx in
  checkb "scratch disjoint from params" true (s > b)

let test_codegen_filler_assembles () =
  let ctx = Codegen.create () in
  Codegen.emit ctx ".entry main";
  Codegen.emit ctx "main:";
  Codegen.filler ctx 20;
  Codegen.emit ctx "    halt";
  match Tpdbt_isa.Assembler.assemble (Codegen.contents ctx) with
  | Ok p -> checki "filler instrs + halt" 21 (Program.length p)
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Spec construction                                                    *)
(* ------------------------------------------------------------------ *)

let test_prob_per_mille () =
  let p = Spec.prob 0.7 in
  checki "ref" 700 p.Spec.base_ref;
  checki "train defaults to ref" 700 p.Spec.base_train;
  let q = Spec.prob ~train:0.2 ~phases:[ (0.5, 0.9) ] 0.7 in
  checki "train" 200 q.Spec.base_train;
  (match q.Spec.phases with
  | [ { Spec.at = 0.5; value = 900 } ] -> ()
  | _ -> Alcotest.fail "phases wrong");
  let clamped = Spec.prob 1.5 in
  checki "clamped" 1000 clamped.Spec.base_ref

let mini_spec =
  {
    Spec.name = "mini";
    suite = `Int;
    units =
      [
        Spec.Branch { prob = Spec.prob 0.8 ~train:0.3; straight = 2; copies = 2 };
        Spec.Loop { trip = Spec.trip 5; jitter = 1; body = 2; copies = 1 };
        Spec.Nest2
          {
            outer = Spec.trip 3;
            inner = Spec.trip 4;
            jitter = 1;
            body = 2;
            copies = 1;
          };
        Spec.Call_fn { prob = Spec.prob 0.6; body = 2; copies = 1 };
        Spec.Loop_branch
          {
            trip = Spec.trip 4;
            jitter = 0;
            prob = Spec.prob 0.5;
            body = 2;
            copies = 1;
          };
      ];
    ref_iters = 2000;
    train_iters = 500;
    ref_seed = 11L;
    train_seed = 12L;
  }

let test_spec_builds_and_runs () =
  let program, ref_input, train_input = Spec.build mini_spec in
  checkb "validates" true (Result.is_ok (Program.validate program));
  (* Both inputs run to completion. *)
  List.iter
    (fun (input : Spec.input) ->
      let p = Spec.apply_input program input in
      let m = Machine.create ~seed:input.Spec.seed p in
      match Machine.run ~max_steps:10_000_000 m with
      | Ok () -> checkb "halted" true (Machine.halted m)
      | Error trap -> Alcotest.failf "trap: %a" Machine.pp_trap trap)
    [ ref_input; train_input ]

let test_spec_inputs_differ () =
  let _, ref_input, train_input = Spec.build mini_spec in
  checkb "iters differ" true
    (List.assoc 0 ref_input.Spec.data <> List.assoc 0 train_input.Spec.data);
  checkb "seeds differ" true (ref_input.Spec.seed <> train_input.Spec.seed)

let test_spec_deterministic () =
  let a, _, _ = Spec.build mini_spec in
  let b, _, _ = Spec.build mini_spec in
  checkb "same program" true (a.Program.code = b.Program.code)

let test_spec_source_parses () =
  checkb "source assembles" true
    (Result.is_ok (Tpdbt_isa.Assembler.assemble (Spec.source mini_spec)))

(* Realised branch probability matches the descriptor. *)
let test_spec_branch_probability_realised () =
  let spec =
    {
      mini_spec with
      Spec.units =
        [ Spec.Branch { prob = Spec.prob 0.8; straight = 2; copies = 1 } ];
      ref_iters = 20000;
    }
  in
  let program, ref_input, _ = Spec.build spec in
  let p = Spec.apply_input program ref_input in
  let engine =
    Engine.create ~config:Engine.profiling_only ~seed:ref_input.Spec.seed p
  in
  let result = Engine.run engine in
  let snap = result.Engine.snapshot in
  (* Find the measured branch: a conditional block with taken ratio near
     0.8 and use = 20000. *)
  let found =
    List.exists
      (fun block ->
        match Snapshot.branch_prob snap block with
        | Some prob ->
            snap.Snapshot.use.(block) = 20000 && abs_float (prob -. 0.8) < 0.02
        | None -> false)
      (Snapshot.executed_blocks snap)
  in
  checkb "80% branch realised" true found

(* Realised loop trip count matches the descriptor. *)
let test_spec_trip_count_realised () =
  let spec =
    {
      mini_spec with
      Spec.units = [ Spec.Loop { trip = Spec.trip 10; jitter = 0; body = 2; copies = 1 } ];
      ref_iters = 5000;
    }
  in
  let program, ref_input, _ = Spec.build spec in
  let p = Spec.apply_input program ref_input in
  let engine =
    Engine.create ~config:Engine.profiling_only ~seed:ref_input.Spec.seed p
  in
  let result = Engine.run engine in
  let snap = result.Engine.snapshot in
  (* The loop-back branch executes 10 * 5000 times with ~0.9 taken. *)
  let found =
    List.exists
      (fun block ->
        snap.Snapshot.use.(block) = 50000
        &&
        match Snapshot.branch_prob snap block with
        | Some prob -> abs_float (prob -. 0.9) < 0.01
        | None -> false)
      (Snapshot.executed_blocks snap)
  in
  checkb "trip-10 loop realised" true found

(* Phase switches actually change behaviour mid-run. *)
let test_spec_phase_applies () =
  let spec =
    {
      mini_spec with
      Spec.units =
        [
          Spec.Branch
            { prob = Spec.prob 0.1 ~phases:[ (0.5, 0.9) ]; straight = 2; copies = 1 };
        ];
      ref_iters = 20000;
    }
  in
  let program, ref_input, _ = Spec.build spec in
  let p = Spec.apply_input program ref_input in
  let engine =
    Engine.create ~config:Engine.profiling_only ~seed:ref_input.Spec.seed p
  in
  let snap = (Engine.run engine).Engine.snapshot in
  (* AVEP sees the 50/50 mixture of 0.1 and 0.9: about 0.5. *)
  let found =
    List.exists
      (fun block ->
        snap.Snapshot.use.(block) = 20000
        &&
        match Snapshot.branch_prob snap block with
        | Some prob -> abs_float (prob -. 0.5) < 0.03
        | None -> false)
      (Snapshot.executed_blocks snap)
  in
  checkb "phase mixture observed" true found

(* ------------------------------------------------------------------ *)
(* Suite                                                                *)
(* ------------------------------------------------------------------ *)

let test_spec_describe () =
  let text = Spec.describe mini_spec in
  checkb "mentions name" true
    (String.length text > 0 && String.sub text 0 4 = "mini");
  (* One line per unit plus the header. *)
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  checki "header + units" (1 + List.length mini_spec.Spec.units)
    (List.length lines)

let test_suite_composition () =
  checki "12 INT" 12 (List.length Suite.int_benchmarks);
  checki "14 FP" 14 (List.length Suite.fp_benchmarks);
  checki "26 total" 26 (List.length Suite.all);
  let names = Suite.names in
  checki "unique names" 26
    (List.length (List.sort_uniq compare names));
  checkb "find" true (Suite.find "mcf" <> None);
  checkb "find missing" true (Suite.find "nope" = None)

let test_suite_thresholds_scaled () =
  checki "13 thresholds" 13 (List.length Suite.thresholds);
  checki "scale" 100 Suite.scale;
  (* Labels correspond to scaled values * 100. *)
  List.iter
    (fun (label, scaled) ->
      let paper =
        match label with
        | "1k" -> 1_000
        | "2k" -> 2_000
        | "5k" -> 5_000
        | "10k" -> 10_000
        | "20k" -> 20_000
        | "40k" -> 40_000
        | "80k" -> 80_000
        | "160k" -> 160_000
        | "1M" -> 1_000_000
        | "4M" -> 4_000_000
        | n -> int_of_string n
      in
      checki label paper (scaled * Suite.scale))
    Suite.thresholds

let test_suite_programs_build () =
  List.iter
    (fun bench ->
      let program, ref_input, train_input = Spec.build bench in
      checkb (bench.Spec.name ^ " validates") true
        (Result.is_ok (Program.validate program));
      checkb (bench.Spec.name ^ " has data") true (ref_input.Spec.data <> []);
      checkb (bench.Spec.name ^ " train shorter") true
        (List.assoc 0 train_input.Spec.data < List.assoc 0 ref_input.Spec.data);
      let bmap = Block_map.build program in
      checkb
        (Printf.sprintf "%s has enough blocks (%d)" bench.Spec.name
           (Block_map.block_count bmap))
        true
        (Block_map.block_count bmap >= 20))
    Suite.all

let test_suite_programs_statically_clean () =
  (* Every generated benchmark passes the static checker: no unreachable
     code, no read-before-write, a reachable halt, valid rnd bounds. *)
  List.iter
    (fun bench ->
      let program, _, _ = Spec.build bench in
      match Tpdbt_isa.Check.check program with
      | [] -> ()
      | issues ->
          Alcotest.failf "%s: %s" bench.Spec.name
            (String.concat "; "
               (List.map
                  (Format.asprintf "%a" Tpdbt_isa.Check.pp_issue)
                  issues)))
    Suite.all

let test_suite_programs_halt () =
  (* Run each benchmark with a tiny iteration count: must halt cleanly. *)
  List.iter
    (fun bench ->
      let short = { bench with Spec.ref_iters = 20 } in
      let program, ref_input, _ = Spec.build short in
      let p = Spec.apply_input program ref_input in
      let m = Machine.create ~seed:ref_input.Spec.seed p in
      match Machine.run ~max_steps:5_000_000 m with
      | Ok () ->
          checkb (bench.Spec.name ^ " halts") true (Machine.halted m)
      | Error trap ->
          Alcotest.failf "%s trapped: %a" bench.Spec.name Machine.pp_trap trap)
    Suite.all

let suite =
  [
    ("codegen labels unique", `Quick, test_codegen_labels_unique);
    ("codegen params", `Quick, test_codegen_params);
    ("codegen filler assembles", `Quick, test_codegen_filler_assembles);
    ("prob per-mille", `Quick, test_prob_per_mille);
    ("spec builds and runs", `Quick, test_spec_builds_and_runs);
    ("spec inputs differ", `Quick, test_spec_inputs_differ);
    ("spec deterministic", `Quick, test_spec_deterministic);
    ("spec source parses", `Quick, test_spec_source_parses);
    ("spec branch probability realised", `Quick,
     test_spec_branch_probability_realised);
    ("spec trip count realised", `Quick, test_spec_trip_count_realised);
    ("spec phase applies", `Quick, test_spec_phase_applies);
    ("spec describe", `Quick, test_spec_describe);
    ("suite composition", `Quick, test_suite_composition);
    ("suite thresholds scaled", `Quick, test_suite_thresholds_scaled);
    ("suite programs build", `Quick, test_suite_programs_build);
    ("suite programs statically clean", `Quick, test_suite_programs_statically_clean);
    ("suite programs halt", `Quick, test_suite_programs_halt);
  ]
