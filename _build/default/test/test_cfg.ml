(* Tests for the CFG library: graph, traversals, dominators, loops, SCC. *)

module Graph = Tpdbt_cfg.Graph
module Traverse = Tpdbt_cfg.Traverse
module Dominators = Tpdbt_cfg.Dominators
module Loops = Tpdbt_cfg.Loops
module Scc = Tpdbt_cfg.Scc

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check_ints = Alcotest.check Alcotest.(list int)

(* A natural loop with a diamond body:
     0 -> 1 (header) -> {2, 3} -> 4
     4 -> 1  (back edge)
     4 -> 5  (exit)           *)
let diamond_loop () =
  Graph.of_edges [ (0, 1); (1, 2); (1, 3); (2, 4); (3, 4); (4, 1); (4, 5) ]

let test_graph_basics () =
  let g = diamond_loop () in
  checki "nodes" 6 (Graph.node_count g);
  checki "edges" 7 (Graph.edge_count g);
  checkb "mem_edge" true (Graph.mem_edge g 0 1);
  checkb "no reverse edge" false (Graph.mem_edge g 1 0);
  check_ints "succs 1" [ 2; 3 ] (Graph.succs g 1);
  check_ints "preds 4" [ 2; 3 ] (Graph.preds g 4);
  check_ints "preds 1" [ 0; 4 ] (Graph.preds g 1);
  check_ints "succs unknown" [] (Graph.succs g 42)

let test_graph_dedup_edges () =
  let g = Graph.create () in
  Graph.add_edge g 1 2;
  Graph.add_edge g 1 2;
  checki "parallel edges collapse" 1 (Graph.edge_count g)

let test_graph_remove_edge () =
  let g = diamond_loop () in
  Graph.remove_edge g 4 1;
  checkb "removed" false (Graph.mem_edge g 4 1);
  checki "edges" 6 (Graph.edge_count g);
  Graph.remove_edge g 4 1;
  checki "idempotent" 6 (Graph.edge_count g)

let test_graph_copy_independent () =
  let g = diamond_loop () in
  let h = Graph.copy g in
  Graph.remove_edge h 0 1;
  checkb "original intact" true (Graph.mem_edge g 0 1);
  checkb "copy modified" false (Graph.mem_edge h 0 1)

let test_postorder () =
  let g = diamond_loop () in
  let po = Traverse.postorder g ~root:0 in
  checki "visits all reachable" 6 (List.length po);
  (* Root is last in postorder. *)
  checki "root last" 0 (List.nth po (List.length po - 1));
  let rpo = Traverse.reverse_postorder g ~root:0 in
  checki "root first in rpo" 0 (List.hd rpo)

let test_reachable () =
  let g = Graph.of_edges [ (0, 1); (1, 2); (3, 4) ] in
  let r = Traverse.reachable g ~root:0 in
  checki "three reachable" 3 (Hashtbl.length r);
  checkb "4 not reachable" false (Hashtbl.mem r 4)

let test_topological_sort () =
  let g = Graph.of_edges [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  (match Traverse.topological_sort g with
  | Error msg -> Alcotest.fail msg
  | Ok order ->
      let pos = Hashtbl.create 8 in
      List.iteri (fun i n -> Hashtbl.replace pos n i) order;
      Graph.iter_edges g (fun a b ->
          checkb "edge respects order" true
            (Hashtbl.find pos a < Hashtbl.find pos b)));
  checkb "cycle detected" true
    (Result.is_error (Traverse.topological_sort (diamond_loop ())));
  checkb "acyclic" true
    (Traverse.is_acyclic (Graph.of_edges [ (0, 1); (1, 2) ]));
  checkb "cyclic" false (Traverse.is_acyclic (diamond_loop ()))

let test_dominators_diamond () =
  let g = diamond_loop () in
  let dom = Dominators.compute g ~root:0 in
  checkb "idom root" true (Dominators.idom dom 0 = None);
  checkb "idom 1" true (Dominators.idom dom 1 = Some 0);
  checkb "idom 3" true (Dominators.idom dom 3 = Some 1);
  checkb "idom 4" true (Dominators.idom dom 4 = Some 1);
  checkb "0 dominates all" true (Dominators.dominates dom 0 5);
  checkb "1 dominates 4" true (Dominators.dominates dom 1 4);
  checkb "2 not dominate 4" false (Dominators.dominates dom 2 4);
  checkb "reflexive" true (Dominators.dominates dom 3 3);
  checkb "unreachable" false (Dominators.dominates dom 0 99)

let test_dominators_chain () =
  let g = Graph.of_edges [ (10, 20); (20, 30); (30, 40) ] in
  let dom = Dominators.compute g ~root:10 in
  checkb "chain idom" true (Dominators.idom dom 40 = Some 30);
  checkb "transitive dominance" true (Dominators.dominates dom 10 40)

let test_back_edges_and_loops () =
  let g = diamond_loop () in
  checkb "back edge 4->1" true (Loops.back_edges g ~root:0 = [ (4, 1) ]);
  match Loops.detect g ~root:0 with
  | [ l ] ->
      checki "header" 1 l.Loops.header;
      check_ints "body" [ 1; 2; 3; 4 ] l.Loops.body;
      checkb "back edges" true (l.Loops.back_edges = [ (4, 1) ])
  | other -> Alcotest.failf "expected 1 loop, got %d" (List.length other)

let test_nested_loops () =
  (* 0 -> 1 -> 2 -> 1 (inner), 2 -> 3 -> 0?? no: outer 1..3 -> 1.
     Build: 0->1, 1->2, 2->2 (self inner), 2->3, 3->1 (outer back), 3->4. *)
  let g = Graph.of_edges [ (0, 1); (1, 2); (2, 2); (2, 3); (3, 1); (3, 4) ] in
  let loops = Loops.detect g ~root:0 in
  checki "two loops" 2 (List.length loops);
  let inner = List.find (fun l -> l.Loops.header = 2) loops in
  let outer = List.find (fun l -> l.Loops.header = 1) loops in
  check_ints "inner body" [ 2 ] inner.Loops.body;
  check_ints "outer body" [ 1; 2; 3 ] outer.Loops.body

let test_self_loop () =
  let g = Graph.of_edges [ (0, 1); (1, 1); (1, 2) ] in
  match Loops.detect g ~root:0 with
  | [ l ] ->
      checki "self loop header" 1 l.Loops.header;
      check_ints "self loop body" [ 1 ] l.Loops.body
  | other -> Alcotest.failf "expected 1 loop, got %d" (List.length other)

let test_scc () =
  let g = Graph.of_edges [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 3) ] in
  let comps = List.map (List.sort compare) (Scc.compute g) in
  checkb "012 component" true (List.mem [ 0; 1; 2 ] comps);
  checkb "34 component" true (List.mem [ 3; 4 ] comps);
  checki "two components" 2 (List.length comps)

let test_scc_trivial () =
  let g = Graph.of_edges [ (0, 1); (1, 2) ] in
  let comps = Scc.compute g in
  checki "three singletons" 3 (List.length comps);
  List.iter (fun c -> checkb "trivial" true (Scc.is_trivial g c)) comps;
  let h = Graph.of_edges [ (5, 5) ] in
  checkb "self loop not trivial" false (Scc.is_trivial h [ 5 ])

(* Property: random DAG -> topological_sort succeeds and respects edges. *)
let prop_topo_on_dags =
  let open QCheck in
  let gen =
    Gen.(
      list_size (int_range 0 40)
        (pair (int_bound 20) (int_bound 20))
      |> map (fun pairs ->
             (* Orient edges from lower to higher id: guarantees a DAG. *)
             List.filter_map
               (fun (a, b) ->
                 if a < b then Some (a, b) else if b < a then Some (b, a) else None)
               pairs))
  in
  Test.make ~name:"topological sort on random DAGs" ~count:200 (make gen)
    (fun edges ->
      let g = Graph.of_edges edges in
      match Traverse.topological_sort g with
      | Error _ -> false
      | Ok order ->
          let pos = Hashtbl.create 16 in
          List.iteri (fun i n -> Hashtbl.replace pos n i) order;
          List.for_all (fun (a, b) -> Hashtbl.find pos a < Hashtbl.find pos b) edges)

(* Property: every loop detected has its header dominating all body
   nodes. *)
let prop_loop_headers_dominate =
  let open QCheck in
  let gen =
    Gen.(list_size (int_range 1 40) (pair (int_bound 12) (int_bound 12)))
  in
  Test.make ~name:"loop headers dominate bodies" ~count:200 (make gen)
    (fun edges ->
      let g = Graph.of_edges ((99, 0) :: edges) in
      let dom = Dominators.compute g ~root:99 in
      let reach = Traverse.reachable g ~root:99 in
      Loops.detect g ~root:99
      |> List.for_all (fun l ->
             List.for_all
               (fun n ->
                 (not (Hashtbl.mem reach n))
                 || Dominators.dominates dom l.Loops.header n)
               l.Loops.body))

let suite =
  [
    ("graph basics", `Quick, test_graph_basics);
    ("graph dedup edges", `Quick, test_graph_dedup_edges);
    ("graph remove edge", `Quick, test_graph_remove_edge);
    ("graph copy independent", `Quick, test_graph_copy_independent);
    ("postorder", `Quick, test_postorder);
    ("reachable", `Quick, test_reachable);
    ("topological sort", `Quick, test_topological_sort);
    ("dominators diamond", `Quick, test_dominators_diamond);
    ("dominators chain", `Quick, test_dominators_chain);
    ("back edges and loops", `Quick, test_back_edges_and_loops);
    ("nested loops", `Quick, test_nested_loops);
    ("self loop", `Quick, test_self_loop);
    ("scc", `Quick, test_scc);
    ("scc trivial", `Quick, test_scc_trivial);
    QCheck_alcotest.to_alcotest prop_topo_on_dags;
    QCheck_alcotest.to_alcotest prop_loop_headers_dominate;
  ]
