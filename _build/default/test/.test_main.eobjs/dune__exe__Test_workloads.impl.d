test/test_workloads.ml: Alcotest Array Format List Printf Result String Tpdbt_dbt Tpdbt_isa Tpdbt_vm Tpdbt_workloads
