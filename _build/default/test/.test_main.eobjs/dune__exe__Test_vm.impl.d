test/test_vm.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest Test Tpdbt_isa Tpdbt_vm
