test/test_profiles.ml: Alcotest Array Filename Fun List Printf Result String Sys Tpdbt_dbt Tpdbt_isa Tpdbt_profiles
