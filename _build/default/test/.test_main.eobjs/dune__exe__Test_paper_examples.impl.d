test/test_paper_examples.ml: Alcotest Array List Tpdbt_dbt Tpdbt_numerics Tpdbt_profiles
