test/test_cfg.ml: Alcotest Gen Hashtbl List QCheck QCheck_alcotest Result Test Tpdbt_cfg
