test/test_experiments.ml: Alcotest Fun Lazy List Printf String Tpdbt_dbt Tpdbt_experiments Tpdbt_profiles Tpdbt_workloads
