test/test_numerics.ml: Alcotest Array Gen Hashtbl List Printf QCheck QCheck_alcotest Result Test Tpdbt_cfg Tpdbt_numerics
