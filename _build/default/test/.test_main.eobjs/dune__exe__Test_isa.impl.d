test/test_isa.ml: Alcotest Bytes Filename Format Fun Gen List QCheck QCheck_alcotest Result String Sys Test Tpdbt_isa
