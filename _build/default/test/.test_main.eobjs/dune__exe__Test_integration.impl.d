test/test_integration.ml: Array Int64 List Printf QCheck QCheck_alcotest Result Tpdbt_dbt Tpdbt_profiles Tpdbt_workloads
