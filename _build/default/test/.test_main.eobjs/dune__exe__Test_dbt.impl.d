test/test_dbt.ml: Alcotest Array Format List Printf QCheck QCheck_alcotest Result String Tpdbt_dbt Tpdbt_isa Tpdbt_vm
