(* Tests for the guest VM: semantics of every instruction, 32-bit
   wrapping, traps, determinism. *)

module Instr = Tpdbt_isa.Instr
module Program = Tpdbt_isa.Program
module Assembler = Tpdbt_isa.Assembler
module Machine = Tpdbt_vm.Machine
module Prng = Tpdbt_vm.Prng
module Reg = Tpdbt_isa.Reg

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let r = Reg.of_int

let run_src ?(seed = 1L) ?(mem_words = 1 lsl 16) src =
  let p = Assembler.assemble_exn src in
  let m = Machine.create ~mem_words ~seed p in
  match Machine.run m with
  | Ok () -> m
  | Error trap -> Alcotest.failf "trap: %a" Machine.pp_trap trap

let run_expect_trap src =
  let p = Assembler.assemble_exn src in
  let m = Machine.create ~seed:1L p in
  match Machine.run m with
  | Ok () -> Alcotest.fail "expected a trap"
  | Error trap -> trap

(* ------------------------------------------------------------------ *)
(* Prng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7L and b = Prng.create ~seed:7L in
  for _ = 1 to 100 do
    checkb "same stream" true (Prng.next_int64 a = Prng.next_int64 b)
  done;
  let c = Prng.create ~seed:8L in
  checkb "different seed differs" true
    (Prng.next_int64 (Prng.create ~seed:7L) <> Prng.next_int64 c)

let test_prng_below_range () =
  let p = Prng.create ~seed:3L in
  for _ = 1 to 1000 do
    let v = Prng.below p 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.below: bound must be positive")
    (fun () -> ignore (Prng.below p 0))

let test_prng_below_uniformish () =
  let p = Prng.create ~seed:11L in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.below p 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      checkb (Printf.sprintf "bucket %d near 10%%" i) true
        (abs (c - (n / 10)) < n / 50))
    counts

let test_prng_float_range () =
  let p = Prng.create ~seed:5L in
  for _ = 1 to 1000 do
    let v = Prng.float p in
    checkb "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_copy () =
  let a = Prng.create ~seed:99L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  checkb "copy continues identically" true (Prng.next_int64 a = Prng.next_int64 b)

(* ------------------------------------------------------------------ *)
(* Arithmetic semantics                                                 *)
(* ------------------------------------------------------------------ *)

let test_arith () =
  let m =
    run_src
      {|
    movi r1, 7
    movi r2, 3
    add r3, r1, r2
    sub r4, r1, r2
    mul r5, r1, r2
    div r6, r1, r2
    rem r7, r1, r2
    and r8, r1, r2
    or r9, r1, r2
    xor r10, r1, r2
    shl r11, r1, r2
    shr r12, r1, r2
    halt
|}
  in
  checki "add" 10 (Machine.reg m (r 3));
  checki "sub" 4 (Machine.reg m (r 4));
  checki "mul" 21 (Machine.reg m (r 5));
  checki "div" 2 (Machine.reg m (r 6));
  checki "rem" 1 (Machine.reg m (r 7));
  checki "and" 3 (Machine.reg m (r 8));
  checki "or" 7 (Machine.reg m (r 9));
  checki "xor" 4 (Machine.reg m (r 10));
  checki "shl" 56 (Machine.reg m (r 11));
  checki "shr" 0 (Machine.reg m (r 12))

let test_immediate_forms () =
  let m =
    run_src
      {|
    movi r1, 10
    addi r2, r1, -4
    subi r3, r1, 4
    muli r4, r1, 5
    divi r5, r1, 3
    remi r6, r1, 3
    andi r7, r1, 2
    ori r8, r1, 5
    xori r9, r1, 15
    shli r10, r1, 2
    shri r11, r1, 1
    halt
|}
  in
  checki "addi" 6 (Machine.reg m (r 2));
  checki "subi" 6 (Machine.reg m (r 3));
  checki "muli" 50 (Machine.reg m (r 4));
  checki "divi" 3 (Machine.reg m (r 5));
  checki "remi" 1 (Machine.reg m (r 6));
  checki "andi" 2 (Machine.reg m (r 7));
  checki "ori" 15 (Machine.reg m (r 8));
  checki "xori" 5 (Machine.reg m (r 9));
  checki "shli" 40 (Machine.reg m (r 10));
  checki "shri" 5 (Machine.reg m (r 11))

let test_wrap32 () =
  let m =
    run_src
      {|
    movi r1, 2147483647
    addi r2, r1, 1
    movi r3, -2147483648
    subi r4, r3, 1
    muli r5, r1, 2
    halt
|}
  in
  checki "int32 max + 1 wraps" (-2147483648) (Machine.reg m (r 2));
  checki "int32 min - 1 wraps" 2147483647 (Machine.reg m (r 4));
  checki "mul wraps" (-2) (Machine.reg m (r 5))

let test_negative_div_rem () =
  let m =
    run_src
      {|
    movi r1, -7
    movi r2, 2
    div r3, r1, r2
    rem r4, r1, r2
    halt
|}
  in
  checki "trunc div" (-3) (Machine.reg m (r 3));
  checki "rem sign" (-1) (Machine.reg m (r 4))

(* ------------------------------------------------------------------ *)
(* Memory                                                               *)
(* ------------------------------------------------------------------ *)

let test_load_store () =
  let m =
    run_src
      {|
.data 100 55
    ld r1, [r0+100]
    movi r2, 200
    st r1, [r2+1]
    ld r3, [r2+1]
    halt
|}
  in
  checki "ld" 55 (Machine.reg m (r 1));
  checki "st/ld" 55 (Machine.reg m (r 3));
  checki "mem direct" 55 (Machine.mem m 201)

let test_memory_fault () =
  match run_expect_trap "movi r1, -5\nld r2, [r1]\nhalt" with
  | Machine.Memory_fault { addr = -5; _ } -> ()
  | other -> Alcotest.failf "wrong trap: %a" Machine.pp_trap other

let test_store_fault () =
  let src =
    Printf.sprintf "movi r1, %d\nst r0, [r1]\nhalt" (1 lsl 21)
  in
  match run_expect_trap src with
  | Machine.Memory_fault _ -> ()
  | other -> Alcotest.failf "wrong trap: %a" Machine.pp_trap other

(* ------------------------------------------------------------------ *)
(* Control flow                                                         *)
(* ------------------------------------------------------------------ *)

let test_loop_counts () =
  let m =
    run_src
      {|
    movi r1, 0
    movi r2, 1000
loop:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
|}
  in
  checki "loop result" 1000 (Machine.reg m (r 1));
  checki "steps" (2 + (2 * 1000) + 1) (Machine.steps m)

let test_call_ret () =
  let m =
    run_src
      {|
.entry main
main:
    movi r1, 5
    call double
    call double
    halt
double:
    add r1, r1, r1
    ret
|}
  in
  checki "nested calls" 20 (Machine.reg m (r 1))

let test_recursion () =
  (* Recursive sum 1..10 via the call stack. *)
  let m =
    run_src
      {|
.entry main
main:
    movi r1, 10
    movi r2, 0
    call sum
    halt
sum:
    ble r1, r0, base
    add r2, r2, r1
    subi r1, r1, 1
    call sum
base:
    ret
|}
  in
  checki "sum 1..10" 55 (Machine.reg m (r 2))

let test_ret_without_call () =
  match run_expect_trap "ret\nhalt" with
  | Machine.Return_without_call 0 -> ()
  | other -> Alcotest.failf "wrong trap: %a" Machine.pp_trap other

let test_stack_overflow () =
  match run_expect_trap ".entry f\nf:\ncall f\nhalt" with
  | Machine.Call_stack_overflow _ -> ()
  | other -> Alcotest.failf "wrong trap: %a" Machine.pp_trap other

let test_div_by_zero () =
  match run_expect_trap "movi r1, 4\nmovi r2, 0\ndiv r3, r1, r2\nhalt" with
  | Machine.Division_by_zero 2 -> ()
  | other -> Alcotest.failf "wrong trap: %a" Machine.pp_trap other

let test_trap_sticky () =
  let p = Assembler.assemble_exn "ret\nhalt" in
  let m = Machine.create ~seed:1L p in
  (match Machine.step m with
  | Error (Machine.Return_without_call _) -> ()
  | _ -> Alcotest.fail "expected trap");
  match Machine.step m with
  | Error (Machine.Return_without_call _) -> ()
  | _ -> Alcotest.fail "trap should persist"

(* ------------------------------------------------------------------ *)
(* Events, outputs, rnd, limits                                         *)
(* ------------------------------------------------------------------ *)

let test_events () =
  let p =
    Assembler.assemble_exn
      {|
    movi r1, 1
    beq r1, r0, skip
    jmp next
skip:
    nop
next:
    call fn
    halt
fn:
    ret
|}
  in
  let m = Machine.create ~seed:1L p in
  let step () = match Machine.step m with Ok e -> e | Error _ -> Alcotest.fail "trap" in
  checkb "stepped" true (step () = Machine.Stepped);
  checkb "branch not taken" true (step () = Machine.Branched { taken = false });
  checkb "jumped" true (step () = Machine.Jumped);
  checkb "called" true (step () = Machine.Called);
  checkb "returned" true (step () = Machine.Returned);
  checkb "halted" true (step () = Machine.Halted);
  checkb "halted flag" true (Machine.halted m)

let test_outputs_order () =
  let m = run_src "movi r1, 1\nout r1\nmovi r1, 2\nout r1\nmovi r1, 3\nout r1\nhalt" in
  checkb "outputs oldest first" true (Machine.outputs m = [ 1; 2; 3 ])

let test_rnd_determinism () =
  let src = "rnd r1, 1000\nrnd r2, 1000\nout r1\nout r2\nhalt" in
  let a = run_src ~seed:42L src and b = run_src ~seed:42L src in
  checkb "same seed same stream" true (Machine.outputs a = Machine.outputs b);
  let c = run_src ~seed:43L src in
  checkb "diff seed diff stream" true (Machine.outputs a <> Machine.outputs c)

let test_rnd_probability () =
  (* A 30% branch should be taken roughly 30% of the time. *)
  let m =
    run_src ~seed:7L
      {|
    movi r1, 0
    movi r2, 100000
    movi r5, 0
loop:
    rnd r3, 1000
    movi r4, 300
    bge r3, r4, skip
    addi r5, r5, 1
skip:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
|}
  in
  let taken = Machine.reg m (r 5) in
  checkb (Printf.sprintf "30%% branch (got %d/100000)" taken) true
    (taken > 28_500 && taken < 31_500)

let test_max_steps () =
  let p = Assembler.assemble_exn "loop:\njmp loop" in
  let m = Machine.create ~seed:1L p in
  (match Machine.run ~max_steps:500 m with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "no trap expected");
  checkb "not halted" false (Machine.halted m);
  checki "stopped at budget" 500 (Machine.steps m)

let test_fall_off_end () =
  (* A program whose last instruction is not a terminator halts cleanly. *)
  let p = Tpdbt_isa.Program.make [| Instr.Movi (r 1, 3); Instr.Nop |] in
  let m = Machine.create ~seed:1L p in
  (match Machine.run m with Ok () -> () | Error _ -> Alcotest.fail "trap");
  checkb "halted" true (Machine.halted m);
  checki "r1" 3 (Machine.reg m (r 1))

let test_data_init_out_of_range () =
  let p = Tpdbt_isa.Program.make ~data_init:[ (1 lsl 30, 1) ] [| Instr.Halt |] in
  match Machine.create ~mem_words:1024 ~seed:1L p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_shift_masking () =
  (* Shift amounts are masked to 5 bits (land 31), as on real 32-bit
     hardware. *)
  let m =
    run_src
      {|
    movi r1, 1
    movi r2, 33
    shl r3, r1, r2
    movi r4, -8
    movi r5, 34
    shr r6, r4, r5
    halt
|}
  in
  checki "shl by 33 = shl by 1" 2 (Machine.reg m (r 3));
  checki "shr by 34 = asr by 2" (-2) (Machine.reg m (r 6))

let test_arithmetic_shift_right () =
  let m = run_src "movi r1, -1\nshri r2, r1, 31\nmovi r3, 8\nshri r4, r3, 2\nhalt" in
  checki "asr keeps sign" (-1) (Machine.reg m (r 2));
  checki "asr positive" 2 (Machine.reg m (r 4))

let test_machines_independent () =
  let p = Assembler.assemble_exn "main:\n  rnd r1, 1000\n  out r1\n  halt" in
  let a = Machine.create ~seed:5L p and b = Machine.create ~seed:5L p in
  (match (Machine.run a, Machine.run b) with
  | Ok (), Ok () -> ()
  | _ -> Alcotest.fail "trap");
  checkb "machines don't share PRNG state" true
    (Machine.outputs a = Machine.outputs b)

(* Machine semantics equal a reference one-liner evaluation: property
   test over random straight-line arithmetic programs. *)
let prop_machine_matches_reference =
  let open QCheck in
  let binops =
    [ Instr.Add; Instr.Sub; Instr.Mul; Instr.And; Instr.Or; Instr.Xor ]
  in
  let gen =
    Gen.(list_size (int_range 1 30) (triple (oneofl binops) (int_bound 7) (int_bound 7)))
  in
  Test.make ~name:"machine matches reference interpreter" ~count:200
    (make gen) (fun ops ->
      let wrap32 v = ((v land 0xFFFFFFFF) lxor 0x80000000) - 0x80000000 in
      let code =
        List.map (fun (op, a, b) -> Instr.Binop (op, r ((a mod 4) + 1), r ((a mod 4) + 1), r ((b mod 4) + 1))) ops
        @ [ Instr.Halt ]
      in
      (* Seed registers deterministically. *)
      let prelude =
        [ Instr.Movi (r 1, 3); Instr.Movi (r 2, -5); Instr.Movi (r 3, 1 lsl 20); Instr.Movi (r 4, 7) ]
      in
      let p = Program.make (Array.of_list (prelude @ code)) in
      let m = Machine.create ~seed:1L p in
      (match Machine.run m with Ok () -> () | Error _ -> ());
      (* Reference evaluation. *)
      let regs = Array.make 16 0 in
      regs.(1) <- 3;
      regs.(2) <- -5;
      regs.(3) <- 1 lsl 20;
      regs.(4) <- 7;
      List.iter
        (fun (op, a, b) ->
          let d = (a mod 4) + 1 and s = (b mod 4) + 1 in
          let v =
            match op with
            | Instr.Add -> regs.(d) + regs.(s)
            | Instr.Sub -> regs.(d) - regs.(s)
            | Instr.Mul -> regs.(d) * regs.(s)
            | Instr.And -> regs.(d) land regs.(s)
            | Instr.Or -> regs.(d) lor regs.(s)
            | Instr.Xor -> regs.(d) lxor regs.(s)
            | Instr.Div | Instr.Rem | Instr.Shl | Instr.Shr -> assert false
          in
          regs.(d) <- wrap32 v)
        ops;
      List.for_all (fun i -> regs.(i) = Machine.reg m (r i)) [ 1; 2; 3; 4 ])

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng below range", `Quick, test_prng_below_range);
    ("prng below uniform-ish", `Quick, test_prng_below_uniformish);
    ("prng float range", `Quick, test_prng_float_range);
    ("prng copy", `Quick, test_prng_copy);
    ("arith", `Quick, test_arith);
    ("immediate forms", `Quick, test_immediate_forms);
    ("wrap32", `Quick, test_wrap32);
    ("negative div/rem", `Quick, test_negative_div_rem);
    ("load/store", `Quick, test_load_store);
    ("memory fault", `Quick, test_memory_fault);
    ("store fault", `Quick, test_store_fault);
    ("loop counts", `Quick, test_loop_counts);
    ("call/ret", `Quick, test_call_ret);
    ("recursion", `Quick, test_recursion);
    ("ret without call", `Quick, test_ret_without_call);
    ("stack overflow", `Quick, test_stack_overflow);
    ("div by zero", `Quick, test_div_by_zero);
    ("trap sticky", `Quick, test_trap_sticky);
    ("events", `Quick, test_events);
    ("outputs order", `Quick, test_outputs_order);
    ("rnd determinism", `Quick, test_rnd_determinism);
    ("rnd probability", `Quick, test_rnd_probability);
    ("max steps", `Quick, test_max_steps);
    ("fall off end", `Quick, test_fall_off_end);
    ("data init out of range", `Quick, test_data_init_out_of_range);
    ("shift masking", `Quick, test_shift_masking);
    ("arithmetic shift right", `Quick, test_arithmetic_shift_right);
    ("machines independent", `Quick, test_machines_independent);
    QCheck_alcotest.to_alcotest prop_machine_matches_reference;
  ]
