(* Reconstructions of the paper's worked examples (Figures 5, 6, 7).

   Where the paper's printed arithmetic is internally inconsistent we
   assert the value its own formula produces and note the discrepancy:
   - Fig 7 prints "0.38*0.9 + 0.6*0.9 = 0.886"; the products sum to 0.882.
   - Fig 5's Sd.LP prints sqrt(0.076) = 0.27; its own numbers give
     sqrt(0.102) = 0.319. *)

module Region = Tpdbt_dbt.Region
module Region_prob = Tpdbt_profiles.Region_prob
module Stats = Tpdbt_numerics.Stats

let checkf eps msg = Alcotest.check (Alcotest.float eps) msg

let mk_region ?(kind = Region.Trace) ?(edges = []) ?(back_edges = []) n =
  {
    Region.id = 0;
    kind;
    slots = Array.init n (fun i -> i);
    edges;
    back_edges;
    frozen_use = Array.make n 0;
    frozen_taken = Array.make n 0;
  }

(* ---- Figure 6: completion probability of a hammock ----------------- *)

let test_fig6_completion () =
  (* b5 branches to b6 (0.4) and b7 (0.6); b6 reaches b8 with 0.8, b7
     with 0.9.  Completion probability = 0.4*0.8 + 0.6*0.9 = 0.86. *)
  let region =
    mk_region 4
      ~edges:
        [
          { Region.src = 0; dst = 1; role = Region.Taken };
          { Region.src = 0; dst = 2; role = Region.Not_taken };
          { Region.src = 1; dst = 3; role = Region.Taken };
          { Region.src = 2; dst = 3; role = Region.Taken };
        ]
  in
  let prob = function
    | 0 -> Some 0.4
    | 1 -> Some 0.8
    | 2 -> Some 0.9
    | _ -> None
  in
  checkf 1e-9 "Fig 6: CP = 0.86" 0.86
    (Region_prob.completion_probability region ~prob)

(* ---- Figure 7: loop-back probability via the dummy node ------------ *)

let test_fig7_loopback () =
  (* Loop entry b5 branches 0.6 to b7 and 0.4 to b6; b6 reaches b8 with
     0.95 (so b8 has frequency 0.38); b7 and b8 branch back to the entry
     with probability 0.9 each.  The paper propagates to a dummy node:
     LP = 0.6*0.9 + 0.38*0.9 = 0.882 (printed as 0.886 — arithmetic slip
     in the paper). *)
  let region =
    mk_region ~kind:Region.Loop 4
      ~edges:
        [
          { Region.src = 0; dst = 1; role = Region.Taken };     (* b5->b7 *)
          { Region.src = 0; dst = 2; role = Region.Not_taken }; (* b5->b6 *)
          { Region.src = 2; dst = 3; role = Region.Taken };     (* b6->b8 *)
        ]
      ~back_edges:
        [
          { Region.src = 1; dst = 0; role = Region.Taken };
          { Region.src = 3; dst = 0; role = Region.Taken };
        ]
  in
  let prob = function
    | 0 -> Some 0.6
    | 1 -> Some 0.9
    | 2 -> Some 0.95
    | 3 -> Some 0.9
    | _ -> None
  in
  checkf 1e-9 "Fig 7: LP = 0.882" 0.882
    (Region_prob.loopback_probability region ~prob)

(* ---- Figure 5: the three standard deviations ------------------------ *)

let test_fig5_sd_bp () =
  (* Six NAVEP copies; two predict perfectly, four deviate.  The paper:
     Sd.BP = sqrt((0.23^2*1000 + 0.077^2*44000 + 0.18^2*43000 +
                   0.68^2*6000) / 101000) = sqrt(0.0444) ~= 0.21. *)
  let samples =
    [
      { Stats.predicted = 0.88; actual = 0.65; weight = 1000.0 };
      { Stats.predicted = 0.977; actual = 0.90; weight = 44000.0 };
      { Stats.predicted = 0.88; actual = 0.70; weight = 43000.0 };
      { Stats.predicted = 0.88; actual = 0.20; weight = 6000.0 };
      (* zero-deviation copies contribute only weight *)
      { Stats.predicted = 0.5; actual = 0.5; weight = 1000.0 };
      { Stats.predicted = 0.9; actual = 0.9; weight = 6000.0 };
    ]
  in
  checkf 5e-3 "Fig 5: Sd.BP ~= 0.21" 0.2106 (Stats.weighted_sd samples)

let test_fig5_sd_cp () =
  (* The single non-loop region completes with probability 1 in both
     profiles: Sd.CP = 0. *)
  let samples = [ { Stats.predicted = 1.0; actual = 1.0; weight = 1000.0 } ] in
  checkf 1e-12 "Fig 5: Sd.CP = 0" 0.0 (Stats.weighted_sd samples)

let test_fig5_sd_lp () =
  (* Two loop regions.  Loop 1: INIP loop-back 0.977*0.88, AVEP
     0.90*0.70, weight 44000.  Loop 2: INIP 0.12, AVEP 0.80, weight
     6000.  The paper's own formula gives sqrt(0.102) = 0.319 (the
     printed intermediate 0.076 is inconsistent with its inputs). *)
  let lt1 = 0.977 *. 0.88 and lm1 = 0.90 *. 0.70 in
  let samples =
    [
      { Stats.predicted = lt1; actual = lm1; weight = 44000.0 };
      { Stats.predicted = 0.12; actual = 0.80; weight = 6000.0 };
    ]
  in
  checkf 5e-3 "Fig 5: Sd.LP = 0.319 by the formula" 0.3193
    (Stats.weighted_sd samples)

let test_fig5_loopback_products_from_regions () =
  (* The LP inputs above are products of chained branch probabilities;
     check the region propagation produces exactly those products for a
     two-block loop (entry -T-> latch -T-> entry). *)
  let region =
    mk_region ~kind:Region.Loop 2
      ~edges:[ { Region.src = 0; dst = 1; role = Region.Taken } ]
      ~back_edges:[ { Region.src = 1; dst = 0; role = Region.Taken } ]
  in
  let inip = function 0 -> Some 0.977 | 1 -> Some 0.88 | _ -> None in
  let avep = function 0 -> Some 0.90 | 1 -> Some 0.70 | _ -> None in
  checkf 1e-9 "INIP loop-back" (0.977 *. 0.88)
    (Region_prob.loopback_probability region ~prob:inip);
  checkf 1e-9 "AVEP loop-back" (0.90 *. 0.70)
    (Region_prob.loopback_probability region ~prob:avep)

(* ---- §2.1: the statistical interpretation of Sd.BP ------------------ *)

let test_sd_interpretation () =
  (* "When Sd.BP(T) is small, e.g. around 0.1 ... the majority of
     predicted branch probabilities are within 10%": a profile whose
     every prediction is off by exactly 0.1 has Sd.BP = 0.1. *)
  let samples =
    List.init 10 (fun i ->
        {
          Stats.predicted = (float_of_int i /. 20.0) +. 0.1;
          actual = float_of_int i /. 20.0;
          weight = float_of_int (1 + i);
        })
  in
  checkf 1e-9 "uniform 0.1 deviation" 0.1 (Stats.weighted_sd samples)

let suite =
  [
    ("fig 6 completion probability", `Quick, test_fig6_completion);
    ("fig 7 loop-back probability", `Quick, test_fig7_loopback);
    ("fig 5 Sd.BP", `Quick, test_fig5_sd_bp);
    ("fig 5 Sd.CP", `Quick, test_fig5_sd_cp);
    ("fig 5 Sd.LP", `Quick, test_fig5_sd_lp);
    ("fig 5 loop-back products", `Quick, test_fig5_loopback_products_from_regions);
    ("Sd interpretation", `Quick, test_sd_interpretation);
  ]
