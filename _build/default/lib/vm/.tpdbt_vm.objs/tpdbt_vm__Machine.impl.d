lib/vm/machine.ml: Array Format List Printf Prng Tpdbt_isa
