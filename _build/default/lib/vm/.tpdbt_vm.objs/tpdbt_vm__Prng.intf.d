lib/vm/prng.mli:
