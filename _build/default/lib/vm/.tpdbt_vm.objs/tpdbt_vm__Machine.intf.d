lib/vm/machine.mli: Format Tpdbt_isa
