type t = { mutable state : int64 }

let create ~seed = { state = seed }
let copy t = { state = t.state }

(* SplitMix64 (Steele, Lea, Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let below t bound =
  if bound <= 0 then invalid_arg "Prng.below: bound must be positive";
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let float t =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  raw /. 9007199254740992.0 (* 2^53 *)
