(** Deterministic pseudo-random stream (SplitMix64).

    The guest-visible [rnd] instruction draws from this stream, so a run
    is fully determined by the program, its initial data, and the seed.
    Distinct inputs of a synthetic benchmark use distinct seeds. *)

type t

val create : seed:int64 -> t
val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val below : t -> int -> int
(** [below t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)
