(** Weighted statistics used by the paper's accuracy metrics (§2).

    Every comparison in the paper is a weighted standard deviation of a
    predicted probability from an actual probability:

    {v Sd = sqrt( sum_i (P(i) - A(i))^2 * W(i)  /  sum_i W(i) ) v}

    and every "mismatch rate" is a weighted fraction of samples whose
    predicted and actual values fall in different ranges. *)

type sample = { predicted : float; actual : float; weight : float }

val weighted_sd : sample list -> float
(** The paper's Sd formula; [0.] on an empty list or zero total weight. *)

val weighted_mean : (float * float) list -> float
(** [(value, weight)] pairs; [0.] on zero total weight. *)

val mismatch_rate : ranges:(float -> int) -> sample list -> float
(** Fraction (by weight) of samples with
    [ranges predicted <> ranges actual]. *)

val mean : float list -> float
(** Unweighted mean; [0.] on an empty list. *)
