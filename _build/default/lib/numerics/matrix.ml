type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows m = m.rows
let cols m = m.cols

let check m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg (Printf.sprintf "Matrix: index (%d,%d) out of %dx%d" i j m.rows m.cols)

let get m i j =
  check m i j;
  m.data.((i * m.cols) + j)

let set m i j v =
  check m i j;
  m.data.((i * m.cols) + j) <- v

let add_to m i j v =
  check m i j;
  m.data.((i * m.cols) + j) <- m.data.((i * m.cols) + j) +. v

let of_arrays arr =
  let rows = Array.length arr in
  let cols = if rows = 0 then 0 else Array.length arr.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> cols then invalid_arg "Matrix.of_arrays: ragged input")
    arr;
  let m = create ~rows ~cols in
  Array.iteri (fun i row -> Array.iteri (fun j v -> set m i j v) row) arr;
  m

let copy m = { m with data = Array.copy m.data }

let identity n =
  let m = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    set m i i 1.0
  done;
  m

let mul_vec m v =
  if Array.length v <> m.cols then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.((i * m.cols) + j) *. v.(j))
      done;
      !acc)

let swap_rows m i j =
  if i <> j then
    for k = 0 to m.cols - 1 do
      let tmp = m.data.((i * m.cols) + k) in
      m.data.((i * m.cols) + k) <- m.data.((j * m.cols) + k);
      m.data.((j * m.cols) + k) <- tmp
    done

let pp ppf m =
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%10.4f " (get m i j)
    done;
    Format.pp_print_newline ppf ()
  done
