(** Solvers for systems of linear equations [A x = b].

    Replaces the paper's use of the Intel MKL solver (see DESIGN.md §2).
    The direct solver is Gaussian elimination with partial pivoting; a
    Jacobi iteration is provided as an independent cross-check for the
    diagonally-dominant systems NAVEP produces. *)

val gauss : Matrix.t -> float array -> (float array, string) result
(** Gaussian elimination with partial pivoting.  The matrix and vector
    are not modified.  [Error] on non-square input, dimension mismatch,
    or a (numerically) singular matrix. *)

val jacobi :
  ?max_iters:int ->
  ?tolerance:float ->
  Matrix.t ->
  float array ->
  (float array, string) result
(** Jacobi iteration from the zero vector.  Converges for strictly
    diagonally dominant systems; [Error] if a diagonal entry is zero or
    the iteration fails to reach [tolerance] (default [1e-12]) within
    [max_iters] (default [10_000]). *)

val residual_norm : Matrix.t -> float array -> float array -> float
(** Max-norm of [A x - b]; used by tests to validate solutions. *)
