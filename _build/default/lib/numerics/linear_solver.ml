let gauss a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then Error "gauss: matrix not square"
  else if Array.length b <> n then Error "gauss: dimension mismatch"
  else begin
    let m = Matrix.copy a in
    let rhs = Array.copy b in
    let singular = ref false in
    (try
       for col = 0 to n - 1 do
         (* Partial pivoting: pick the row with the largest magnitude. *)
         let pivot_row = ref col in
         for row = col + 1 to n - 1 do
           if abs_float (Matrix.get m row col) > abs_float (Matrix.get m !pivot_row col)
           then pivot_row := row
         done;
         if abs_float (Matrix.get m !pivot_row col) < 1e-12 then begin
           singular := true;
           raise Exit
         end;
         Matrix.swap_rows m col !pivot_row;
         let tmp = rhs.(col) in
         rhs.(col) <- rhs.(!pivot_row);
         rhs.(!pivot_row) <- tmp;
         let pivot = Matrix.get m col col in
         for row = col + 1 to n - 1 do
           let factor = Matrix.get m row col /. pivot in
           if factor <> 0.0 then begin
             for k = col to n - 1 do
               Matrix.set m row k (Matrix.get m row k -. (factor *. Matrix.get m col k))
             done;
             rhs.(row) <- rhs.(row) -. (factor *. rhs.(col))
           end
         done
       done
     with Exit -> ());
    if !singular then Error "gauss: singular matrix"
    else begin
      let x = Array.make n 0.0 in
      for row = n - 1 downto 0 do
        let acc = ref rhs.(row) in
        for k = row + 1 to n - 1 do
          acc := !acc -. (Matrix.get m row k *. x.(k))
        done;
        x.(row) <- !acc /. Matrix.get m row row
      done;
      Ok x
    end
  end

let jacobi ?(max_iters = 10_000) ?(tolerance = 1e-12) a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then Error "jacobi: matrix not square"
  else if Array.length b <> n then Error "jacobi: dimension mismatch"
  else begin
    let diag_ok = ref true in
    for i = 0 to n - 1 do
      if abs_float (Matrix.get a i i) < 1e-15 then diag_ok := false
    done;
    if not !diag_ok then Error "jacobi: zero diagonal entry"
    else begin
      let x = Array.make n 0.0 in
      let next = Array.make n 0.0 in
      let rec iterate remaining =
        if remaining = 0 then Error "jacobi: did not converge"
        else begin
          let delta = ref 0.0 in
          for i = 0 to n - 1 do
            let acc = ref b.(i) in
            for j = 0 to n - 1 do
              if j <> i then acc := !acc -. (Matrix.get a i j *. x.(j))
            done;
            next.(i) <- !acc /. Matrix.get a i i;
            delta := max !delta (abs_float (next.(i) -. x.(i)))
          done;
          Array.blit next 0 x 0 n;
          if !delta <= tolerance then Ok (Array.copy x)
          else iterate (remaining - 1)
        end
      in
      iterate max_iters
    end
  end

let residual_norm a x b =
  let ax = Matrix.mul_vec a x in
  let norm = ref 0.0 in
  Array.iteri (fun i v -> norm := max !norm (abs_float (v -. b.(i)))) ax;
  !norm
