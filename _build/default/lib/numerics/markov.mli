(** Markov modelling of control flow (Wagner et al., PLDI'94).

    Given a CFG whose edges carry branch probabilities and whose
    frequencies are known at some nodes, recover the frequencies of the
    remaining nodes from the flow equations

    {v freq(n) = sum over predecessors p of freq(p) * prob(p -> n) v}

    where each [freq(p)] is either a known constant or another unknown.
    This is exactly the computation NAVEP needs for blocks duplicated by
    region formation (paper §3.1). *)

val solve :
  graph:Tpdbt_cfg.Graph.t ->
  prob:(int -> int -> float) ->
  known:(int * float) list ->
  ((int, float) Hashtbl.t, string) result
(** Frequencies for every node of [graph].  Nodes listed in [known] keep
    their given frequency; all others are solved for.  [prob src dst] is
    the probability of the edge — it is only consulted for edges present
    in the graph.  [Error] if the induced linear system is singular. *)

val propagate_acyclic :
  graph:Tpdbt_cfg.Graph.t ->
  prob:(int -> int -> float) ->
  entry:int ->
  entry_freq:float ->
  ((int, float) Hashtbl.t, string) result
(** Forward propagation over an acyclic graph: the entry gets
    [entry_freq], every other node the probability-weighted sum of its
    predecessors.  Nodes not reachable from [entry] get frequency [0].
    [Error] if the graph has a cycle.  This is the completion- and
    loop-back-probability computation of paper §3.2–3.3. *)
