(** Small dense matrices of floats (row-major).

    Sized for NAVEP's region-local linear systems: tens of unknowns, not
    thousands — a dense representation is simplest and fastest here. *)

type t

val create : rows:int -> cols:int -> t
(** All-zero matrix. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val add_to : t -> int -> int -> float -> unit
(** [add_to m i j v] is [set m i j (get m i j +. v)]. *)

val of_arrays : float array array -> t
(** @raise Invalid_argument on ragged input. *)

val copy : t -> t
val identity : int -> t
val mul_vec : t -> float array -> float array
(** Matrix-vector product.
    @raise Invalid_argument on dimension mismatch. *)

val swap_rows : t -> int -> int -> unit
val pp : Format.formatter -> t -> unit
