module Graph = Tpdbt_cfg.Graph
module Traverse = Tpdbt_cfg.Traverse

let solve ~graph ~prob ~known =
  let known_tbl = Hashtbl.create 16 in
  List.iter (fun (n, f) -> Hashtbl.replace known_tbl n f) known;
  let unknowns =
    List.filter (fun n -> not (Hashtbl.mem known_tbl n)) (Graph.nodes graph)
  in
  let index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace index n i) unknowns;
  let n = List.length unknowns in
  let result = Hashtbl.create 16 in
  Hashtbl.iter (fun node f -> Hashtbl.replace result node f) known_tbl;
  if n = 0 then Ok result
  else begin
    (* Row i:  x_i - sum_{p unknown} prob(p,node_i) x_p
               = sum_{p known} freq(p) * prob(p,node_i). *)
    let a = Matrix.create ~rows:n ~cols:n in
    let b = Array.make n 0.0 in
    List.iteri
      (fun i node ->
        Matrix.set a i i 1.0;
        List.iter
          (fun p ->
            let weight = prob p node in
            match Hashtbl.find_opt known_tbl p with
            | Some freq -> b.(i) <- b.(i) +. (freq *. weight)
            | None ->
                let j = Hashtbl.find index p in
                Matrix.add_to a i j (-.weight))
          (Graph.preds graph node))
      unknowns;
    match Linear_solver.gauss a b with
    | Error _ as e -> e
    | Ok x ->
        List.iteri (fun i node -> Hashtbl.replace result node x.(i)) unknowns;
        Ok result
  end

let propagate_acyclic ~graph ~prob ~entry ~entry_freq =
  match Traverse.topological_sort graph with
  | Error _ -> Error "propagate_acyclic: graph has a cycle"
  | Ok order ->
      let freq = Hashtbl.create 16 in
      List.iter (fun node -> Hashtbl.replace freq node 0.0) (Graph.nodes graph);
      Hashtbl.replace freq entry entry_freq;
      List.iter
        (fun node ->
          if node <> entry then begin
            let inflow =
              List.fold_left
                (fun acc p -> acc +. (Hashtbl.find freq p *. prob p node))
                0.0 (Graph.preds graph node)
            in
            Hashtbl.replace freq node inflow
          end)
        order;
      Ok freq
