type sample = { predicted : float; actual : float; weight : float }

let weighted_sd samples =
  let num, den =
    List.fold_left
      (fun (num, den) { predicted; actual; weight } ->
        let d = predicted -. actual in
        (num +. (d *. d *. weight), den +. weight))
      (0.0, 0.0) samples
  in
  if den <= 0.0 then 0.0 else sqrt (num /. den)

let weighted_mean pairs =
  let num, den =
    List.fold_left
      (fun (num, den) (v, w) -> (num +. (v *. w), den +. w))
      (0.0, 0.0) pairs
  in
  if den <= 0.0 then 0.0 else num /. den

let mismatch_rate ~ranges samples =
  let num, den =
    List.fold_left
      (fun (num, den) { predicted; actual; weight } ->
        let mismatched = ranges predicted <> ranges actual in
        ((if mismatched then num +. weight else num), den +. weight))
      (0.0, 0.0) samples
  in
  if den <= 0.0 then 0.0 else num /. den

let mean = function
  | [] -> 0.0
  | values -> List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)
