lib/numerics/stats.mli:
