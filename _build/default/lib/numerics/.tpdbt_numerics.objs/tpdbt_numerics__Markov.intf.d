lib/numerics/markov.mli: Hashtbl Tpdbt_cfg
