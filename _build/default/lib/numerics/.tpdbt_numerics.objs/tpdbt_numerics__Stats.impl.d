lib/numerics/stats.ml: List
