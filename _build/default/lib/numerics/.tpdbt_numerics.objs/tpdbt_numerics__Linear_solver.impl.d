lib/numerics/linear_solver.ml: Array Matrix
