lib/numerics/linear_solver.mli: Matrix
