lib/numerics/markov.ml: Array Hashtbl Linear_solver List Matrix Tpdbt_cfg
