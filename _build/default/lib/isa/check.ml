type issue =
  | Unreachable_code of { start_pc : int; count : int }
  | Read_before_write of { pc : int; reg : Reg.t }
  | No_reachable_halt
  | Bad_rnd_bound of { pc : int; bound : int }

let reachable (p : Program.t) =
  let n = Array.length p.Program.code in
  let seen = Array.make n false in
  let rec visit pc =
    if pc >= 0 && pc < n && not (seen.(pc)) then begin
      seen.(pc) <- true;
      List.iter visit (Instr.branch_targets ~pc p.Program.code.(pc))
    end
  in
  visit p.Program.entry;
  seen

(* Forward must-analysis: bitmask of registers definitely written on
   every path from the entry to (before) each instruction. *)
let initialized (p : Program.t) reachable =
  let n = Array.length p.Program.code in
  let all = (1 lsl Reg.count) - 1 in
  let before = Array.make n all in
  before.(p.Program.entry) <- 0;
  let changed = ref true in
  while !changed do
    changed := false;
    for pc = 0 to n - 1 do
      if reachable.(pc) then begin
        let instr = p.Program.code.(pc) in
        let after =
          List.fold_left
            (fun mask r -> mask lor (1 lsl Reg.to_int r))
            before.(pc) (Instr.defs instr)
        in
        List.iter
          (fun target ->
            if target >= 0 && target < n then begin
              let met = before.(target) land after in
              if met <> before.(target) then begin
                before.(target) <- met;
                changed := true
              end
            end)
          (Instr.branch_targets ~pc instr)
      end
    done
  done;
  before

let check (p : Program.t) =
  let n = Array.length p.Program.code in
  let seen = reachable p in
  let before = initialized p seen in
  let issues = ref [] in
  (* Unreachable runs. *)
  let pc = ref 0 in
  while !pc < n do
    if not seen.(!pc) then begin
      let start_pc = !pc in
      while !pc < n && not seen.(!pc) do
        incr pc
      done;
      issues := Unreachable_code { start_pc; count = !pc - start_pc } :: !issues
    end
    else incr pc
  done;
  (* Per-instruction checks. *)
  let has_halt = ref false in
  for pc = 0 to n - 1 do
    if seen.(pc) then begin
      let instr = p.Program.code.(pc) in
      (match instr with
      | Instr.Halt -> has_halt := true
      | Instr.Rnd (_, bound) when bound <= 0 ->
          issues := Bad_rnd_bound { pc; bound } :: !issues
      | Instr.Movi _ | Instr.Mov _ | Instr.Binop _ | Instr.Binopi _
      | Instr.Load _ | Instr.Store _ | Instr.Br _ | Instr.Jmp _
      | Instr.Call _ | Instr.Ret | Instr.Rnd _ | Instr.Out _ | Instr.Nop ->
          ());
      List.iter
        (fun reg ->
          if before.(pc) land (1 lsl Reg.to_int reg) = 0 then
            issues := Read_before_write { pc; reg } :: !issues)
        (Instr.uses instr)
    end
  done;
  let positional =
    List.sort
      (fun a b ->
        let pos = function
          | Unreachable_code { start_pc; _ } -> start_pc
          | Read_before_write { pc; _ } -> pc
          | Bad_rnd_bound { pc; _ } -> pc
          | No_reachable_halt -> max_int
        in
        compare (pos a) (pos b))
      !issues
  in
  if !has_halt then positional else positional @ [ No_reachable_halt ]

let is_clean p = check p = []

let pp_issue ppf = function
  | Unreachable_code { start_pc; count } ->
      Format.fprintf ppf "unreachable code: %d instruction(s) from pc %d" count
        start_pc
  | Read_before_write { pc; reg } ->
      Format.fprintf ppf "register %a may be read before written at pc %d"
        Reg.pp reg pc
  | No_reachable_halt ->
      Format.fprintf ppf "no reachable halt: the program cannot stop cleanly"
  | Bad_rnd_bound { pc; bound } ->
      Format.fprintf ppf "rnd with non-positive bound %d at pc %d" bound pc
