type t = { code : Instr.t array; entry : int; data_init : (int * int) list }

let validate_exn code entry =
  let n = Array.length code in
  if n = 0 then invalid_arg "Program.make: empty code";
  if entry < 0 || entry >= n then invalid_arg "Program.make: entry out of range";
  Array.iteri
    (fun pc instr ->
      let check t =
        if t < 0 || t >= n then
          invalid_arg
            (Printf.sprintf "Program.make: target %d of instruction %d (%s) out of range"
               t pc (Instr.to_string instr))
      in
      match instr with
      | Instr.Br (_, _, _, t) | Instr.Jmp t | Instr.Call t -> check t
      | Instr.Movi _ | Instr.Mov _ | Instr.Binop _ | Instr.Binopi _
      | Instr.Load _ | Instr.Store _ | Instr.Ret | Instr.Rnd _ | Instr.Out _
      | Instr.Halt | Instr.Nop ->
          ())
    code

let make ?(entry = 0) ?(data_init = []) code =
  validate_exn code entry;
  { code; entry; data_init }

let length p = Array.length p.code

let instr p pc =
  if pc < 0 || pc >= Array.length p.code then
    invalid_arg (Printf.sprintf "Program.instr: pc %d out of range" pc)
  else p.code.(pc)

let validate p =
  match validate_exn p.code p.entry with
  | () -> Ok ()
  | exception Invalid_argument msg -> Error msg

let with_data p data_init = { p with data_init }

let pp ppf p =
  Format.fprintf ppf "; entry = %d@." p.entry;
  Array.iteri
    (fun pc instr -> Format.fprintf ppf "%4d: %a@." pc Instr.pp instr)
    p.code
