(** Disassembler: {!Program.t} -> assembly text that {!Assembler.assemble}
    accepts and that round-trips to the same program. *)

val disassemble : Program.t -> string
(** Renders the program with generated labels ([L0], [L1], ...) at every
    branch target and the [.entry] / [.data] directives needed to
    reconstruct the image. *)
