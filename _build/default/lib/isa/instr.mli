(** G32 guest instructions.

    Instructions operate on 16 registers and a word-addressed data memory.
    Code addresses are instruction indices into the program's code array.
    Values are native OCaml integers interpreted as 32-bit two's-complement
    quantities by the VM (arithmetic wraps at 32 bits).

    Control flow:
    - [Br] is the only conditional branch (two-way: taken target or
      fall-through to the next instruction);
    - [Jmp]/[Call]/[Ret]/[Halt] are unconditional block terminators.

    The [Rnd] instruction draws from the VM's deterministic pseudo-random
    stream; synthetic workloads use it to realise controlled branch
    probabilities. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** Traps on division by zero. *)
  | Rem  (** Traps on division by zero. *)
  | And
  | Or
  | Xor
  | Shl
  | Shr

type cond = Eq | Ne | Lt | Ge | Le | Gt
(** Signed comparisons between two registers. *)

type t =
  | Movi of Reg.t * int  (** [rd <- imm] *)
  | Mov of Reg.t * Reg.t  (** [rd <- rs] *)
  | Binop of binop * Reg.t * Reg.t * Reg.t  (** [rd <- rs1 op rs2] *)
  | Binopi of binop * Reg.t * Reg.t * int  (** [rd <- rs op imm] *)
  | Load of Reg.t * Reg.t * int  (** [rd <- mem.(rs + off)] *)
  | Store of Reg.t * Reg.t * int  (** [mem.(rbase + off) <- rsrc] *)
  | Br of cond * Reg.t * Reg.t * int  (** [if cond rs1 rs2 then goto addr] *)
  | Jmp of int  (** [goto addr] *)
  | Call of int  (** push return address; [goto addr] *)
  | Ret  (** pop return address and jump to it *)
  | Rnd of Reg.t * int  (** [rd <- uniform \[0, imm)]; imm must be > 0 *)
  | Out of Reg.t  (** append register value to the VM output channel *)
  | Halt
  | Nop

val is_terminator : t -> bool
(** True for instructions that end a basic block:
    [Br], [Jmp], [Call], [Ret], [Halt]. *)

val branch_targets : pc:int -> t -> int list
(** Possible successor addresses of the instruction at [pc], excluding
    returns (whose target is dynamic).  [Call] reports both the callee
    entry and the fall-through return site. *)

val defs : t -> Reg.t list
(** Registers the instruction writes. *)

val uses : t -> Reg.t list
(** Registers the instruction reads. *)

val negate_cond : cond -> cond

val eval_cond : cond -> int -> int -> bool
(** [eval_cond c a b] evaluates the signed comparison [a c b]. *)

val binop_name : binop -> string
val cond_name : cond -> string

val pp : Format.formatter -> t -> unit
(** Assembly-like rendering with numeric branch targets. *)

val to_string : t -> string
val equal : t -> t -> bool
