(** Parser for G32 assembly: token stream -> statement list.

    Branch targets at this stage are symbolic (label names) or absolute
    addresses; the {!Assembler} resolves them. *)

type target = Name of string | Addr of int

(** An instruction whose control-flow targets may still be symbolic. *)
type pseudo =
  | Movi of Reg.t * int
  | Mov of Reg.t * Reg.t
  | Binop of Instr.binop * Reg.t * Reg.t * Reg.t
  | Binopi of Instr.binop * Reg.t * Reg.t * int
  | Load of Reg.t * Reg.t * int
  | Store of Reg.t * Reg.t * int
  | Br of Instr.cond * Reg.t * Reg.t * target
  | Jmp of target
  | Call of target
  | Ret
  | Rnd of Reg.t * int
  | Out of Reg.t
  | Halt
  | Nop

type stmt =
  | Label_def of string
  | Entry of string  (** [.entry name] *)
  | Data of int * int  (** [.data addr value] *)
  | Ins of pseudo

type located_stmt = { stmt : stmt; line : int }

val parse : Lexer.located list -> (located_stmt list, string) result
(** Parse a token stream produced by {!Lexer.tokenize}.  Errors carry a
    [line N: ...] prefix. *)
