(** Static checks on guest programs.

    A small linter used to validate generated workloads and hand-written
    assembly before running them:

    - {e unreachable code}: instructions no control path from the entry
      reaches (calls are assumed to return for reachability purposes);
    - {e read-before-write}: a register read on some path before any
      instruction wrote it (the VM zero-initialises registers, so this
      is a lint, not an error — generated code should still never do
      it);
    - {e no reachable halt}: no [halt] is reachable, so the program can
      only stop by trap or budget;
    - {e bad rnd bound}: a reachable [rnd] with a non-positive bound
      (traps at runtime). *)

type issue =
  | Unreachable_code of { start_pc : int; count : int }
      (** a maximal run of unreachable instructions *)
  | Read_before_write of { pc : int; reg : Reg.t }
  | No_reachable_halt
  | Bad_rnd_bound of { pc : int; bound : int }

val check : Program.t -> issue list
(** All issues, ordered by program position ([No_reachable_halt]
    last). *)

val is_clean : Program.t -> bool
val pp_issue : Format.formatter -> issue -> unit
