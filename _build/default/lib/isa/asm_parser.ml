type target = Name of string | Addr of int

type pseudo =
  | Movi of Reg.t * int
  | Mov of Reg.t * Reg.t
  | Binop of Instr.binop * Reg.t * Reg.t * Reg.t
  | Binopi of Instr.binop * Reg.t * Reg.t * int
  | Load of Reg.t * Reg.t * int
  | Store of Reg.t * Reg.t * int
  | Br of Instr.cond * Reg.t * Reg.t * target
  | Jmp of target
  | Call of target
  | Ret
  | Rnd of Reg.t * int
  | Out of Reg.t
  | Halt
  | Nop

type stmt =
  | Label_def of string
  | Entry of string
  | Data of int * int
  | Ins of pseudo

type located_stmt = { stmt : stmt; line : int }

exception Parse_error of int * string

(* Mutable cursor over the token list. *)
type state = { mutable rest : Lexer.located list }

let error line fmt = Format.kasprintf (fun msg -> raise (Parse_error (line, msg))) fmt

let peek st =
  match st.rest with
  | [] -> { Lexer.token = Lexer.Eof; line = 0 }
  | tok :: _ -> tok

let advance st =
  match st.rest with [] -> () | _ :: rest -> st.rest <- rest

let next st =
  let tok = peek st in
  advance st;
  tok

let expect st expected describe =
  let tok = next st in
  if tok.Lexer.token <> expected then
    error tok.Lexer.line "expected %s, found %a" describe Lexer.pp_token
      tok.Lexer.token

let parse_reg st =
  let tok = next st in
  match tok.Lexer.token with
  | Lexer.Ident name -> (
      match Reg.of_string_opt name with
      | Some r -> r
      | None -> error tok.Lexer.line "expected register, found %S" name)
  | other -> error tok.Lexer.line "expected register, found %a" Lexer.pp_token other

let parse_int st =
  let tok = next st in
  match tok.Lexer.token with
  | Lexer.Int v -> v
  | other -> error tok.Lexer.line "expected integer, found %a" Lexer.pp_token other

let parse_target st =
  let tok = next st in
  match tok.Lexer.token with
  | Lexer.Ident name -> Name name
  | Lexer.Int addr -> Addr addr
  | other ->
      error tok.Lexer.line "expected label or address, found %a" Lexer.pp_token
        other

(* Memory operand: [rN] or [rN+off] (the lexer folds the sign into the
   integer, so [rN-4] arrives as Lbracket Ident Int(-4) Rbracket). *)
let parse_mem st =
  expect st Lexer.Lbracket "'['";
  let base = parse_reg st in
  let off =
    match (peek st).Lexer.token with
    | Lexer.Rbracket -> 0
    | Lexer.Int v ->
        advance st;
        v
    | other -> error (peek st).Lexer.line "expected offset or ']', found %a" Lexer.pp_token other
  in
  expect st Lexer.Rbracket "']'";
  (base, off)

let comma st = expect st Lexer.Comma "','"

let binop_of_mnemonic = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "div" -> Some Instr.Div
  | "rem" -> Some Instr.Rem
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl
  | "shr" -> Some Instr.Shr
  | _ -> None

let cond_of_mnemonic = function
  | "beq" -> Some Instr.Eq
  | "bne" -> Some Instr.Ne
  | "blt" -> Some Instr.Lt
  | "bge" -> Some Instr.Ge
  | "ble" -> Some Instr.Le
  | "bgt" -> Some Instr.Gt
  | _ -> None

let strip_i_suffix name =
  let n = String.length name in
  if n > 1 && name.[n - 1] = 'i' then Some (String.sub name 0 (n - 1)) else None

let parse_instr st line mnemonic =
  match mnemonic with
  | "movi" ->
      let rd = parse_reg st in
      comma st;
      let imm = parse_int st in
      Movi (rd, imm)
  | "mov" ->
      let rd = parse_reg st in
      comma st;
      let rs = parse_reg st in
      Mov (rd, rs)
  | "ld" ->
      let rd = parse_reg st in
      comma st;
      let base, off = parse_mem st in
      Load (rd, base, off)
  | "st" ->
      let rsrc = parse_reg st in
      comma st;
      let base, off = parse_mem st in
      Store (rsrc, base, off)
  | "jmp" -> Jmp (parse_target st)
  | "call" -> Call (parse_target st)
  | "ret" -> Ret
  | "rnd" ->
      let rd = parse_reg st in
      comma st;
      let bound = parse_int st in
      Rnd (rd, bound)
  | "out" -> Out (parse_reg st)
  | "halt" -> Halt
  | "nop" -> Nop
  | name -> (
      match cond_of_mnemonic name with
      | Some c ->
          let rs1 = parse_reg st in
          comma st;
          let rs2 = parse_reg st in
          comma st;
          let target = parse_target st in
          Br (c, rs1, rs2, target)
      | None -> (
          match binop_of_mnemonic name with
          | Some op ->
              let rd = parse_reg st in
              comma st;
              let rs1 = parse_reg st in
              comma st;
              let rs2 = parse_reg st in
              Binop (op, rd, rs1, rs2)
          | None -> (
              match Option.bind (strip_i_suffix name) binop_of_mnemonic with
              | Some op ->
                  let rd = parse_reg st in
                  comma st;
                  let rs = parse_reg st in
                  comma st;
                  let imm = parse_int st in
                  Binopi (op, rd, rs, imm)
              | None -> error line "unknown mnemonic %S" name)))

let parse_directive st line = function
  | "entry" -> (
      let tok = next st in
      match tok.Lexer.token with
      | Lexer.Ident name -> Entry name
      | other ->
          error tok.Lexer.line "expected label after .entry, found %a"
            Lexer.pp_token other)
  | "data" ->
      let addr = parse_int st in
      let value = parse_int st in
      Data (addr, value)
  | name -> error line "unknown directive .%s" name

let parse tokens =
  let st = { rest = tokens } in
  let stmts = ref [] in
  let emit stmt line = stmts := { stmt; line } :: !stmts in
  let rec loop () =
    let tok = next st in
    match tok.Lexer.token with
    | Lexer.Eof -> ()
    | Lexer.Newline -> loop ()
    | Lexer.Directive name ->
        emit (parse_directive st tok.Lexer.line name) tok.Lexer.line;
        loop ()
    | Lexer.Ident name -> (
        match (peek st).Lexer.token with
        | Lexer.Colon ->
            advance st;
            emit (Label_def name) tok.Lexer.line;
            loop ()
        | Lexer.Ident _ | Lexer.Int _ | Lexer.Newline | Lexer.Eof
        | Lexer.Lbracket ->
            emit (Ins (parse_instr st tok.Lexer.line name)) tok.Lexer.line;
            loop ()
        | (Lexer.Comma | Lexer.Rbracket | Lexer.Directive _) as other ->
            error tok.Lexer.line "unexpected %a after %S" Lexer.pp_token other
              name)
    | other -> error tok.Lexer.line "unexpected %a" Lexer.pp_token other
  in
  match loop () with
  | () -> Ok (List.rev !stmts)
  | exception Parse_error (line, msg) ->
      Error (Printf.sprintf "line %d: %s" line msg)
