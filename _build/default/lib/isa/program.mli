(** Guest program images.

    A program is a code array (instruction-indexed), an entry point, and
    an optional set of initial data-memory bindings (the "input" of a
    run is expressed as initial memory contents plus a PRNG seed; see
    {!Tpdbt_vm.Machine}). *)

type t = {
  code : Instr.t array;
  entry : int;  (** Entry instruction index. *)
  data_init : (int * int) list;
      (** [(address, value)] pairs written to data memory before the run. *)
}

val make : ?entry:int -> ?data_init:(int * int) list -> Instr.t array -> t
(** [make code] builds a program.  [entry] defaults to [0]; [data_init]
    defaults to empty.
    @raise Invalid_argument if [entry] is out of bounds or any branch
    target points outside the code array. *)

val length : t -> int
(** Number of instructions. *)

val instr : t -> int -> Instr.t
(** [instr p pc] is the instruction at [pc].
    @raise Invalid_argument on out-of-range [pc]. *)

val validate : t -> (unit, string) result
(** Checks entry and all static branch targets are in range. *)

val with_data : t -> (int * int) list -> t
(** Replace the initial data bindings (used to switch inputs). *)

val pp : Format.formatter -> t -> unit
(** Disassembly-style listing. *)
