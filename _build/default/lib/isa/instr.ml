type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cond = Eq | Ne | Lt | Ge | Le | Gt

type t =
  | Movi of Reg.t * int
  | Mov of Reg.t * Reg.t
  | Binop of binop * Reg.t * Reg.t * Reg.t
  | Binopi of binop * Reg.t * Reg.t * int
  | Load of Reg.t * Reg.t * int
  | Store of Reg.t * Reg.t * int
  | Br of cond * Reg.t * Reg.t * int
  | Jmp of int
  | Call of int
  | Ret
  | Rnd of Reg.t * int
  | Out of Reg.t
  | Halt
  | Nop

let is_terminator = function
  | Br _ | Jmp _ | Call _ | Ret | Halt -> true
  | Movi _ | Mov _ | Binop _ | Binopi _ | Load _ | Store _ | Rnd _ | Out _
  | Nop ->
      false

let branch_targets ~pc = function
  | Br (_, _, _, target) -> [ target; pc + 1 ]
  | Jmp target -> [ target ]
  | Call target -> [ target; pc + 1 ]
  | Ret | Halt -> []
  | Movi _ | Mov _ | Binop _ | Binopi _ | Load _ | Store _ | Rnd _ | Out _
  | Nop ->
      [ pc + 1 ]

let defs = function
  | Movi (rd, _) | Mov (rd, _) | Binop (_, rd, _, _) | Binopi (_, rd, _, _)
  | Load (rd, _, _)
  | Rnd (rd, _) ->
      [ rd ]
  | Store _ | Br _ | Jmp _ | Call _ | Ret | Out _ | Halt | Nop -> []

let uses = function
  | Movi _ | Jmp _ | Call _ | Ret | Rnd _ | Halt | Nop -> []
  | Mov (_, rs) | Binopi (_, _, rs, _) | Load (_, rs, _) | Out rs -> [ rs ]
  | Binop (_, _, rs1, rs2) | Store (rs1, rs2, _) | Br (_, rs1, rs2, _) ->
      [ rs1; rs2 ]

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Ge -> Lt
  | Le -> Gt
  | Gt -> Le

let eval_cond c a b =
  match c with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Le -> a <= b
  | Gt -> a > b

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Le -> "le"
  | Gt -> "gt"

let pp ppf instr =
  match instr with
  | Movi (rd, imm) -> Format.fprintf ppf "movi %a, %d" Reg.pp rd imm
  | Mov (rd, rs) -> Format.fprintf ppf "mov %a, %a" Reg.pp rd Reg.pp rs
  | Binop (op, rd, rs1, rs2) ->
      Format.fprintf ppf "%s %a, %a, %a" (binop_name op) Reg.pp rd Reg.pp rs1
        Reg.pp rs2
  | Binopi (op, rd, rs, imm) ->
      Format.fprintf ppf "%si %a, %a, %d" (binop_name op) Reg.pp rd Reg.pp rs
        imm
  | Load (rd, rs, off) ->
      Format.fprintf ppf "ld %a, [%a%+d]" Reg.pp rd Reg.pp rs off
  | Store (rsrc, rbase, off) ->
      Format.fprintf ppf "st %a, [%a%+d]" Reg.pp rsrc Reg.pp rbase off
  | Br (c, rs1, rs2, target) ->
      Format.fprintf ppf "b%s %a, %a, %d" (cond_name c) Reg.pp rs1 Reg.pp rs2
        target
  | Jmp target -> Format.fprintf ppf "jmp %d" target
  | Call target -> Format.fprintf ppf "call %d" target
  | Ret -> Format.fprintf ppf "ret"
  | Rnd (rd, bound) -> Format.fprintf ppf "rnd %a, %d" Reg.pp rd bound
  | Out rs -> Format.fprintf ppf "out %a" Reg.pp rs
  | Halt -> Format.fprintf ppf "halt"
  | Nop -> Format.fprintf ppf "nop"

let to_string instr = Format.asprintf "%a" pp instr
let equal (a : t) (b : t) = a = b
