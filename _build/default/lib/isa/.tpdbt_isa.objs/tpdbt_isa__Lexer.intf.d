lib/isa/lexer.mli: Format
