lib/isa/check.ml: Array Format Instr List Program Reg
