lib/isa/asm_parser.ml: Format Instr Lexer List Option Printf Reg String
