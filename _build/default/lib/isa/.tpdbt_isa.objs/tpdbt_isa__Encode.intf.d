lib/isa/encode.mli: Bytes Instr Program
