lib/isa/encode.ml: Array Bytes Fun Instr Int32 List Printf Program Reg Result
