lib/isa/assembler.ml: Array Asm_parser Instr Lexer List Map Printf Program Result String
