lib/isa/program.ml: Array Format Instr Printf
