lib/isa/disasm.mli: Program
