lib/isa/lexer.ml: Format List Printf String
