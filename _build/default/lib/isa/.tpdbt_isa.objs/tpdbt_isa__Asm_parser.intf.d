lib/isa/asm_parser.mli: Instr Lexer Reg
