lib/isa/disasm.ml: Array Buffer Instr Int List Map Printf Program Reg Seq
