(** Guest general-purpose registers.

    The G32 guest machine has 16 general-purpose registers [r0] .. [r15].
    [r0] is an ordinary register (not hardwired to zero); the code
    generator conventionally uses [r0] as a scratch zero register. *)

type t
(** A register. Abstract so that only valid indices [0..15] exist. *)

val count : int
(** Number of registers (16). *)

val of_int : int -> t
(** [of_int i] is register [ri].
    @raise Invalid_argument if [i] is outside [0..count-1]. *)

val of_int_opt : int -> t option
(** [of_int_opt i] is [Some ri], or [None] if out of range. *)

val to_int : t -> int
(** Index of the register, in [0..count-1]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints in assembly syntax, e.g. [r7]. *)

val to_string : t -> string

val of_string_opt : string -> t option
(** Parses assembly syntax ["r7"]; [None] on anything else. *)

val all : t list
(** All registers, in index order. *)
