(** Binary encoding of G32 programs.

    Fixed-width encoding: each instruction occupies 8 bytes
    (opcode, rd, rs1, rs2, 32-bit little-endian immediate).  A program
    image is a small header (magic ["G32B"], entry point, code length,
    data-binding count) followed by the code and the initial data
    bindings.  Immediates are restricted to the signed 32-bit range. *)

val encode_instr : Instr.t -> Bytes.t
(** 8-byte encoding of one instruction.
    @raise Invalid_argument if an immediate exceeds 32 bits. *)

val decode_instr : Bytes.t -> pos:int -> (Instr.t, string) result
(** Decode the 8-byte instruction at [pos]. *)

val encode_program : Program.t -> Bytes.t
val decode_program : Bytes.t -> (Program.t, string) result

val write_file : string -> Program.t -> unit
val read_file : string -> (Program.t, string) result

val instr_size : int
(** Bytes per encoded instruction (8). *)
