(** Two-pass assembler: G32 assembly text -> {!Program.t}.

    Pass 1 assigns instruction indices to labels; pass 2 resolves
    symbolic branch targets.  The entry point is the label named by
    [.entry] (default: the first instruction). *)

val assemble : string -> (Program.t, string) result
(** Assemble a full source string. *)

val assemble_exn : string -> Program.t
(** @raise Failure with the error message on any assembly error. *)
