type token =
  | Ident of string
  | Int of int
  | Directive of string
  | Comma
  | Colon
  | Lbracket
  | Rbracket
  | Newline
  | Eof

type located = { token : token; line : int }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

exception Lex_error of string

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit token = tokens := { token; line = !line } :: !tokens in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let read_while pred =
    let start = !pos in
    while !pos < n && pred src.[!pos] do
      advance ()
    done;
    String.sub src start (!pos - start)
  in
  let lex_int () =
    let negative =
      match peek () with
      | Some ('-' | '+') ->
          let neg = src.[!pos] = '-' in
          advance ();
          neg
      | Some _ | None -> false
    in
    let digits = read_while is_digit in
    if digits = "" then raise (Lex_error "expected digits after sign");
    match int_of_string_opt digits with
    | Some v -> emit (Int (if negative then -v else v))
    | None -> raise (Lex_error (Printf.sprintf "integer %s out of range" digits))
  in
  try
    while !pos < n do
      match src.[!pos] with
      | ' ' | '\t' | '\r' -> advance ()
      | '\n' ->
          emit Newline;
          advance ();
          incr line
      | ';' ->
          let _ = read_while (fun c -> c <> '\n') in
          ()
      | ',' ->
          emit Comma;
          advance ()
      | ':' ->
          emit Colon;
          advance ()
      | '[' ->
          emit Lbracket;
          advance ()
      | ']' ->
          emit Rbracket;
          advance ()
      | '.' ->
          advance ();
          let name = read_while is_ident_char in
          if name = "" then raise (Lex_error "empty directive name");
          emit (Directive name)
      | ('-' | '+' | '0' .. '9') -> lex_int ()
      | c when is_ident_start c -> emit (Ident (read_while is_ident_char))
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c))
    done;
    emit Eof;
    Ok (List.rev !tokens)
  with Lex_error msg -> Error (Printf.sprintf "line %d: %s" !line msg)

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Int i -> Format.fprintf ppf "integer %d" i
  | Directive s -> Format.fprintf ppf "directive .%s" s
  | Comma -> Format.pp_print_string ppf "','"
  | Colon -> Format.pp_print_string ppf "':'"
  | Lbracket -> Format.pp_print_string ppf "'['"
  | Rbracket -> Format.pp_print_string ppf "']'"
  | Newline -> Format.pp_print_string ppf "newline"
  | Eof -> Format.pp_print_string ppf "end of input"
