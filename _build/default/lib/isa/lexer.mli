(** Tokeniser for the G32 assembly text format.

    The format is line-oriented: [;] starts a comment that runs to end of
    line; labels are [name:]; directives start with [.] (e.g. [.entry],
    [.data]); memory operands are written [\[rN+off\]]. *)

type token =
  | Ident of string  (** mnemonic, register or label name *)
  | Int of int
  | Directive of string  (** without the leading dot *)
  | Comma
  | Colon
  | Lbracket
  | Rbracket
  | Newline
  | Eof

type located = { token : token; line : int }

val tokenize : string -> (located list, string) result
(** Tokenise a whole source string.  The resulting list always ends with
    [Eof]; every physical line break yields a [Newline].  Errors carry a
    [line N: ...] prefix. *)

val pp_token : Format.formatter -> token -> unit
