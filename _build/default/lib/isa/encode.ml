let instr_size = 8
let magic = "G32B"

let binop_code = function
  | Instr.Add -> 0
  | Instr.Sub -> 1
  | Instr.Mul -> 2
  | Instr.Div -> 3
  | Instr.Rem -> 4
  | Instr.And -> 5
  | Instr.Or -> 6
  | Instr.Xor -> 7
  | Instr.Shl -> 8
  | Instr.Shr -> 9

let binop_of_code = function
  | 0 -> Some Instr.Add
  | 1 -> Some Instr.Sub
  | 2 -> Some Instr.Mul
  | 3 -> Some Instr.Div
  | 4 -> Some Instr.Rem
  | 5 -> Some Instr.And
  | 6 -> Some Instr.Or
  | 7 -> Some Instr.Xor
  | 8 -> Some Instr.Shl
  | 9 -> Some Instr.Shr
  | _ -> None

let cond_code = function
  | Instr.Eq -> 0
  | Instr.Ne -> 1
  | Instr.Lt -> 2
  | Instr.Ge -> 3
  | Instr.Le -> 4
  | Instr.Gt -> 5

let cond_of_code = function
  | 0 -> Some Instr.Eq
  | 1 -> Some Instr.Ne
  | 2 -> Some Instr.Lt
  | 3 -> Some Instr.Ge
  | 4 -> Some Instr.Le
  | 5 -> Some Instr.Gt
  | _ -> None

(* Opcode layout: 0 nop, 1 halt, 2 movi, 3 mov, 4-13 binop, 14-23 binopi,
   24 ld, 25 st, 26-31 br, 32 jmp, 33 call, 34 ret, 35 rnd, 36 out. *)

let check_imm imm =
  if imm < Int32.to_int Int32.min_int || imm > Int32.to_int Int32.max_int then
    invalid_arg (Printf.sprintf "Encode: immediate %d exceeds 32 bits" imm)

let fill buf ~op ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(imm = 0) () =
  check_imm imm;
  Bytes.set_uint8 buf 0 op;
  Bytes.set_uint8 buf 1 rd;
  Bytes.set_uint8 buf 2 rs1;
  Bytes.set_uint8 buf 3 rs2;
  Bytes.set_int32_le buf 4 (Int32.of_int imm)

let encode_instr instr =
  let buf = Bytes.make instr_size '\000' in
  let ri = Reg.to_int in
  (match instr with
  | Instr.Nop -> fill buf ~op:0 ()
  | Instr.Halt -> fill buf ~op:1 ()
  | Instr.Movi (rd, imm) -> fill buf ~op:2 ~rd:(ri rd) ~imm ()
  | Instr.Mov (rd, rs) -> fill buf ~op:3 ~rd:(ri rd) ~rs1:(ri rs) ()
  | Instr.Binop (op, rd, rs1, rs2) ->
      fill buf ~op:(4 + binop_code op) ~rd:(ri rd) ~rs1:(ri rs1) ~rs2:(ri rs2)
        ()
  | Instr.Binopi (op, rd, rs, imm) ->
      fill buf ~op:(14 + binop_code op) ~rd:(ri rd) ~rs1:(ri rs) ~imm ()
  | Instr.Load (rd, rs, off) ->
      fill buf ~op:24 ~rd:(ri rd) ~rs1:(ri rs) ~imm:off ()
  | Instr.Store (rsrc, rbase, off) ->
      fill buf ~op:25 ~rd:(ri rsrc) ~rs1:(ri rbase) ~imm:off ()
  | Instr.Br (c, rs1, rs2, target) ->
      fill buf ~op:(26 + cond_code c) ~rs1:(ri rs1) ~rs2:(ri rs2) ~imm:target
        ()
  | Instr.Jmp target -> fill buf ~op:32 ~imm:target ()
  | Instr.Call target -> fill buf ~op:33 ~imm:target ()
  | Instr.Ret -> fill buf ~op:34 ()
  | Instr.Rnd (rd, bound) -> fill buf ~op:35 ~rd:(ri rd) ~imm:bound ()
  | Instr.Out rs -> fill buf ~op:36 ~rd:(ri rs) ());
  buf

let decode_instr bytes ~pos =
  if pos < 0 || pos + instr_size > Bytes.length bytes then
    Error (Printf.sprintf "decode_instr: position %d out of range" pos)
  else
    let op = Bytes.get_uint8 bytes pos in
    let rd = Bytes.get_uint8 bytes (pos + 1) in
    let rs1 = Bytes.get_uint8 bytes (pos + 2) in
    let rs2 = Bytes.get_uint8 bytes (pos + 3) in
    let imm = Int32.to_int (Bytes.get_int32_le bytes (pos + 4)) in
    let reg i =
      match Reg.of_int_opt i with
      | Some r -> Ok r
      | None -> Error (Printf.sprintf "decode_instr: bad register %d" i)
    in
    let ( let* ) = Result.bind in
    match op with
    | 0 -> Ok Instr.Nop
    | 1 -> Ok Instr.Halt
    | 2 ->
        let* rd = reg rd in
        Ok (Instr.Movi (rd, imm))
    | 3 ->
        let* rd = reg rd in
        let* rs = reg rs1 in
        Ok (Instr.Mov (rd, rs))
    | n when n >= 4 && n <= 13 -> (
        match binop_of_code (n - 4) with
        | None -> Error "decode_instr: bad binop"
        | Some bop ->
            let* rd = reg rd in
            let* r1 = reg rs1 in
            let* r2 = reg rs2 in
            Ok (Instr.Binop (bop, rd, r1, r2)))
    | n when n >= 14 && n <= 23 -> (
        match binop_of_code (n - 14) with
        | None -> Error "decode_instr: bad binopi"
        | Some bop ->
            let* rd = reg rd in
            let* r1 = reg rs1 in
            Ok (Instr.Binopi (bop, rd, r1, imm)))
    | 24 ->
        let* rd = reg rd in
        let* rs = reg rs1 in
        Ok (Instr.Load (rd, rs, imm))
    | 25 ->
        let* rsrc = reg rd in
        let* rbase = reg rs1 in
        Ok (Instr.Store (rsrc, rbase, imm))
    | n when n >= 26 && n <= 31 -> (
        match cond_of_code (n - 26) with
        | None -> Error "decode_instr: bad branch condition"
        | Some c ->
            let* r1 = reg rs1 in
            let* r2 = reg rs2 in
            Ok (Instr.Br (c, r1, r2, imm)))
    | 32 -> Ok (Instr.Jmp imm)
    | 33 -> Ok (Instr.Call imm)
    | 34 -> Ok Instr.Ret
    | 35 ->
        let* rd = reg rd in
        Ok (Instr.Rnd (rd, imm))
    | 36 ->
        let* rs = reg rd in
        Ok (Instr.Out rs)
    | n -> Error (Printf.sprintf "decode_instr: unknown opcode %d" n)

let header_size = 4 + 4 + 4 + 4

let encode_program (p : Program.t) =
  let ncode = Array.length p.code in
  let ndata = List.length p.data_init in
  let total = header_size + (ncode * instr_size) + (ndata * 8) in
  let buf = Bytes.make total '\000' in
  Bytes.blit_string magic 0 buf 0 4;
  Bytes.set_int32_le buf 4 (Int32.of_int p.entry);
  Bytes.set_int32_le buf 8 (Int32.of_int ncode);
  Bytes.set_int32_le buf 12 (Int32.of_int ndata);
  Array.iteri
    (fun i instr ->
      Bytes.blit (encode_instr instr) 0 buf (header_size + (i * instr_size))
        instr_size)
    p.code;
  List.iteri
    (fun i (addr, value) ->
      let pos = header_size + (ncode * instr_size) + (i * 8) in
      Bytes.set_int32_le buf pos (Int32.of_int addr);
      Bytes.set_int32_le buf (pos + 4) (Int32.of_int value))
    p.data_init;
  buf

let decode_program bytes =
  let ( let* ) = Result.bind in
  if Bytes.length bytes < header_size then Error "decode_program: truncated"
  else if Bytes.sub_string bytes 0 4 <> magic then
    Error "decode_program: bad magic"
  else
    let entry = Int32.to_int (Bytes.get_int32_le bytes 4) in
    let ncode = Int32.to_int (Bytes.get_int32_le bytes 8) in
    let ndata = Int32.to_int (Bytes.get_int32_le bytes 12) in
    let expected = header_size + (ncode * instr_size) + (ndata * 8) in
    if ncode < 0 || ndata < 0 || Bytes.length bytes <> expected then
      Error "decode_program: size mismatch"
    else
      let rec decode_code i acc =
        if i = ncode then Ok (List.rev acc)
        else
          let* instr = decode_instr bytes ~pos:(header_size + (i * instr_size)) in
          decode_code (i + 1) (instr :: acc)
      in
      let* code = decode_code 0 [] in
      let data_base = header_size + (ncode * instr_size) in
      let data_init =
        List.init ndata (fun i ->
            let pos = data_base + (i * 8) in
            ( Int32.to_int (Bytes.get_int32_le bytes pos),
              Int32.to_int (Bytes.get_int32_le bytes (pos + 4)) ))
      in
      match Program.make ~entry ~data_init (Array.of_list code) with
      | p -> Ok p
      | exception Invalid_argument msg -> Error msg

let write_file path p =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (encode_program p))

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          let buf = Bytes.create len in
          really_input ic buf 0 len;
          decode_program buf)
