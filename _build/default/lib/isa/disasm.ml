module Int_map = Map.Make (Int)

(* Collect every static branch target so each gets a label. *)
let label_table (p : Program.t) =
  let add targets map =
    List.fold_left
      (fun map t ->
        if Int_map.mem t map then map
        else Int_map.add t (Printf.sprintf "L%d" (Int_map.cardinal map)) map)
      map targets
  in
  let map =
    Array.to_seqi p.code
    |> Seq.fold_left
         (fun map (_pc, instr) ->
           match instr with
           | Instr.Br (_, _, _, t) | Instr.Jmp t | Instr.Call t -> add [ t ] map
           | Instr.Movi _ | Instr.Mov _ | Instr.Binop _ | Instr.Binopi _
           | Instr.Load _ | Instr.Store _ | Instr.Ret | Instr.Rnd _
           | Instr.Out _ | Instr.Halt | Instr.Nop ->
               map)
         Int_map.empty
  in
  add [ p.entry ] map

let disassemble (p : Program.t) =
  let labels = label_table p in
  let buf = Buffer.create 1024 in
  let label_of pc = Int_map.find pc labels in
  Buffer.add_string buf (Printf.sprintf ".entry %s\n" (label_of p.entry));
  List.iter
    (fun (addr, value) ->
      Buffer.add_string buf (Printf.sprintf ".data %d %d\n" addr value))
    p.data_init;
  Array.iteri
    (fun pc instr ->
      (match Int_map.find_opt pc labels with
      | Some l -> Buffer.add_string buf (l ^ ":\n")
      | None -> ());
      let text =
        match instr with
        | Instr.Br (c, rs1, rs2, t) ->
            Printf.sprintf "b%s %s, %s, %s" (Instr.cond_name c)
              (Reg.to_string rs1) (Reg.to_string rs2) (label_of t)
        | Instr.Jmp t -> Printf.sprintf "jmp %s" (label_of t)
        | Instr.Call t -> Printf.sprintf "call %s" (label_of t)
        | Instr.Load (rd, base, off) ->
            Printf.sprintf "ld %s, [%s%+d]" (Reg.to_string rd)
              (Reg.to_string base) off
        | Instr.Store (rsrc, base, off) ->
            Printf.sprintf "st %s, [%s%+d]" (Reg.to_string rsrc)
              (Reg.to_string base) off
        | Instr.Binopi (op, rd, rs, imm) ->
            Printf.sprintf "%si %s, %s, %d" (Instr.binop_name op)
              (Reg.to_string rd) (Reg.to_string rs) imm
        | Instr.Movi _ | Instr.Mov _ | Instr.Binop _ | Instr.Ret
        | Instr.Rnd _ | Instr.Out _ | Instr.Halt | Instr.Nop ->
            Instr.to_string instr
      in
      Buffer.add_string buf ("    " ^ text ^ "\n"))
    p.code;
  Buffer.contents buf
