type t = int

let count = 16

let of_int i =
  if i < 0 || i >= count then
    invalid_arg (Printf.sprintf "Reg.of_int: %d out of range" i)
  else i

let of_int_opt i = if i < 0 || i >= count then None else Some i
let to_int r = r
let equal = Int.equal
let compare = Int.compare
let pp ppf r = Format.fprintf ppf "r%d" r
let to_string r = Printf.sprintf "r%d" r

let of_string_opt s =
  let n = String.length s in
  if n < 2 || n > 3 || s.[0] <> 'r' then None
  else
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | Some i when i >= 0 && i < count -> Some i
    | Some _ | None -> None

let all = List.init count (fun i -> i)
