module Snapshot = Tpdbt_dbt.Snapshot
module Block_map = Tpdbt_dbt.Block_map
module Region = Tpdbt_dbt.Region

let magic = "TPDBT-PROFILE 1"

let term_to_string = function
  | Block_map.Cond { taken; fallthrough } ->
      Printf.sprintf "cond %d %d" taken fallthrough
  | Block_map.Goto b -> Printf.sprintf "goto %d" b
  | Block_map.Call_to { callee; retsite } ->
      Printf.sprintf "call %d %d" callee retsite
  | Block_map.Return -> "return"
  | Block_map.Stop -> "stop"
  | Block_map.Fallthrough b -> Printf.sprintf "fall %d" b

let term_of_words = function
  | [ "cond"; a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some taken, Some fallthrough -> Ok (Block_map.Cond { taken; fallthrough })
      | _ -> Error "bad cond")
  | [ "goto"; a ] -> (
      match int_of_string_opt a with
      | Some b -> Ok (Block_map.Goto b)
      | None -> Error "bad goto")
  | [ "call"; a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some callee, Some retsite -> Ok (Block_map.Call_to { callee; retsite })
      | _ -> Error "bad call")
  | [ "return" ] -> Ok Block_map.Return
  | [ "stop" ] -> Ok Block_map.Stop
  | [ "fall"; a ] -> (
      match int_of_string_opt a with
      | Some b -> Ok (Block_map.Fallthrough b)
      | None -> Error "bad fall")
  | _ -> Error "bad terminator"

let role_to_char = function
  | Region.Taken -> 'T'
  | Region.Not_taken -> 'N'
  | Region.Always -> 'A'

let role_of_string = function
  | "T" -> Ok Region.Taken
  | "N" -> Ok Region.Not_taken
  | "A" -> Ok Region.Always
  | s -> Error ("bad role " ^ s)

let to_string (snapshot : Snapshot.t) =
  let buf = Buffer.create 4096 in
  let bmap = snapshot.Snapshot.block_map in
  let n = Block_map.block_count bmap in
  Buffer.add_string buf (magic ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "blocks %d entry %d\n" n (Block_map.entry_block bmap));
  for id = 0 to n - 1 do
    let b = Block_map.block bmap id in
    Buffer.add_string buf
      (Printf.sprintf "block %d %d %d %s\n" id b.Block_map.start_pc
         b.Block_map.end_pc
         (term_to_string b.Block_map.terminator))
  done;
  Buffer.add_string buf "counters\n";
  for id = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%d %d %d\n" id snapshot.Snapshot.use.(id)
         snapshot.Snapshot.taken.(id))
  done;
  Buffer.add_string buf
    (Printf.sprintf "regions %d\n" (List.length snapshot.Snapshot.regions));
  List.iter
    (fun r ->
      let kind = match r.Region.kind with Region.Trace -> "trace" | Region.Loop -> "loop" in
      Buffer.add_string buf
        (Printf.sprintf "region %d %s %d\n" r.Region.id kind
           (Array.length r.Region.slots));
      Array.iteri
        (fun slot block ->
          Buffer.add_string buf
            (Printf.sprintf "slot %d %d %d %d\n" slot block
               r.Region.frozen_use.(slot) r.Region.frozen_taken.(slot)))
        r.Region.slots;
      let emit_edge tag e =
        Buffer.add_string buf
          (Printf.sprintf "%s %d %d %c\n" tag e.Region.src e.Region.dst
             (role_to_char e.Region.role))
      in
      List.iter (emit_edge "edge") r.Region.edges;
      List.iter (emit_edge "back") r.Region.back_edges)
    snapshot.Snapshot.regions;
  Buffer.contents buf

exception Bad of string

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map String.trim
  in
  let fail msg = raise (Bad msg) in
  let int_exn s =
    match int_of_string_opt s with Some v -> v | None -> fail ("bad int " ^ s)
  in
  try
    match lines with
    | header :: rest when header = magic -> (
        match rest with
        | blocks_line :: rest ->
            let nblocks, entry =
              match String.split_on_char ' ' blocks_line with
              | [ "blocks"; n; "entry"; e ] -> (int_exn n, int_exn e)
              | _ -> fail "bad blocks header"
            in
            (* blocks *)
            let rec read_blocks i acc rest =
              if i = nblocks then (List.rev acc, rest)
              else
                match rest with
                | line :: rest -> (
                    match String.split_on_char ' ' line with
                    | "block" :: id :: start_pc :: end_pc :: term_words ->
                        let id = int_exn id in
                        let start_pc = int_exn start_pc in
                        let end_pc = int_exn end_pc in
                        let terminator =
                          match term_of_words term_words with
                          | Ok t -> t
                          | Error msg -> fail msg
                        in
                        let b =
                          {
                            Block_map.id;
                            start_pc;
                            end_pc;
                            size = end_pc - start_pc + 1;
                            terminator;
                          }
                        in
                        read_blocks (i + 1) (b :: acc) rest
                    | _ -> fail "expected block line")
                | [] -> fail "truncated blocks"
            in
            let blocks, rest = read_blocks 0 [] rest in
            let bmap =
              match Block_map.of_blocks ~entry_block:entry blocks with
              | Ok m -> m
              | Error msg -> fail msg
            in
            (* counters *)
            let rest =
              match rest with
              | "counters" :: rest -> rest
              | _ -> fail "expected counters"
            in
            let use = Array.make nblocks 0 and taken = Array.make nblocks 0 in
            let rec read_counters i rest =
              if i = nblocks then rest
              else
                match rest with
                | line :: rest -> (
                    match String.split_on_char ' ' line with
                    | [ id; u; t ] ->
                        let id = int_exn id in
                        if id < 0 || id >= nblocks then fail "counter id range";
                        use.(id) <- int_exn u;
                        taken.(id) <- int_exn t;
                        read_counters (i + 1) rest
                    | _ -> fail "bad counter line")
                | [] -> fail "truncated counters"
            in
            let rest = read_counters 0 rest in
            (* regions *)
            let nregions, rest =
              match rest with
              | line :: rest -> (
                  match String.split_on_char ' ' line with
                  | [ "regions"; n ] -> (int_exn n, rest)
                  | _ -> fail "expected regions header")
              | [] -> fail "truncated before regions"
            in
            let read_region rest =
              match rest with
              | line :: rest -> (
                  match String.split_on_char ' ' line with
                  | [ "region"; id; kind; nslots ] ->
                      let id = int_exn id in
                      let kind =
                        match kind with
                        | "trace" -> Region.Trace
                        | "loop" -> Region.Loop
                        | k -> fail ("bad region kind " ^ k)
                      in
                      let nslots = int_exn nslots in
                      let slots = Array.make nslots 0 in
                      let frozen_use = Array.make nslots 0 in
                      let frozen_taken = Array.make nslots 0 in
                      let rec read_slots i rest =
                        if i = nslots then rest
                        else
                          match rest with
                          | line :: rest -> (
                              match String.split_on_char ' ' line with
                              | [ "slot"; slot; block; fu; ft ] ->
                                  let slot = int_exn slot in
                                  if slot <> i then fail "slot order";
                                  slots.(i) <- int_exn block;
                                  frozen_use.(i) <- int_exn fu;
                                  frozen_taken.(i) <- int_exn ft;
                                  read_slots (i + 1) rest
                              | _ -> fail "bad slot line")
                          | [] -> fail "truncated slots"
                      in
                      let rest = read_slots 0 rest in
                      (* edges until a non-edge line *)
                      let rec read_edges edges backs rest =
                        match rest with
                        | line :: tail -> (
                            match String.split_on_char ' ' line with
                            | [ ("edge" | "back") as tag; src; dst; role ] ->
                                let e =
                                  {
                                    Region.src = int_exn src;
                                    dst = int_exn dst;
                                    role =
                                      (match role_of_string role with
                                      | Ok r -> r
                                      | Error msg -> fail msg);
                                  }
                                in
                                if tag = "edge" then
                                  read_edges (e :: edges) backs tail
                                else read_edges edges (e :: backs) tail
                            | _ -> (List.rev edges, List.rev backs, rest))
                        | [] -> (List.rev edges, List.rev backs, [])
                      in
                      let edges, back_edges, rest = read_edges [] [] rest in
                      let region =
                        {
                          Region.id;
                          kind;
                          slots;
                          edges;
                          back_edges;
                          frozen_use;
                          frozen_taken;
                        }
                      in
                      (match Region.validate region with
                      | Ok () -> ()
                      | Error msg -> fail ("invalid region: " ^ msg));
                      (region, rest)
                  | _ -> fail "expected region line")
              | [] -> fail "truncated regions"
            in
            let rec read_regions i acc rest =
              if i = nregions then (List.rev acc, rest)
              else
                let region, rest = read_region rest in
                read_regions (i + 1) (region :: acc) rest
            in
            let regions, rest = read_regions 0 [] rest in
            if rest <> [] then fail "trailing garbage";
            (* Region slots must reference existing blocks. *)
            List.iter
              (fun r ->
                Array.iter
                  (fun b ->
                    if b < 0 || b >= nblocks then fail "region block out of range")
                  r.Region.slots)
              regions;
            Ok { Snapshot.block_map = bmap; use; taken; regions }
        | [] -> Error "empty profile")
    | _ :: _ -> Error "bad magic"
    | [] -> Error "empty file"
  with Bad msg -> Error ("Profile_io: " ^ msg)

let save path snapshot =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string snapshot))

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          of_string (really_input_string ic len))
