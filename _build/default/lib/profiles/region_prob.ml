module Region = Tpdbt_dbt.Region
module Graph = Tpdbt_cfg.Graph
module Markov = Tpdbt_numerics.Markov

let edge_probability role ~branch_prob =
  let p = match branch_prob with Some p -> p | None -> 0.5 in
  match role with
  | Region.Taken -> p
  | Region.Not_taken -> 1.0 -. p
  | Region.Always -> 1.0

(* Propagate frequency 1 from slot 0 through the region's forward edges
   (plus, optionally, back edges redirected to a dummy node) and return
   the resulting per-node frequency table. *)
let propagate region ~prob ~with_dummy =
  let nslots = Region.slot_count region in
  let dummy = nslots in
  let g = Graph.create () in
  for slot = 0 to nslots - 1 do
    Graph.add_node g slot
  done;
  let edge_prob = Hashtbl.create 16 in
  let record src dst p =
    (* Accumulate in case two parallel roles connect the same slots. *)
    let key = (src, dst) in
    let existing =
      match Hashtbl.find_opt edge_prob key with Some v -> v | None -> 0.0
    in
    Hashtbl.replace edge_prob key (existing +. p);
    Graph.add_edge g src dst
  in
  List.iter
    (fun e ->
      record e.Region.src e.Region.dst
        (edge_probability e.Region.role ~branch_prob:(prob e.Region.src)))
    region.Region.edges;
  if with_dummy then begin
    Graph.add_node g dummy;
    List.iter
      (fun e ->
        record e.Region.src dummy
          (edge_probability e.Region.role ~branch_prob:(prob e.Region.src)))
      region.Region.back_edges
  end;
  let prob_of src dst =
    match Hashtbl.find_opt edge_prob (src, dst) with
    | Some p -> p
    | None -> 0.0
  in
  match Markov.propagate_acyclic ~graph:g ~prob:prob_of ~entry:0 ~entry_freq:1.0 with
  | Ok freq -> freq
  | Error msg ->
      (* Region forward edges are acyclic by construction. *)
      invalid_arg ("Region_prob.propagate: " ^ msg)

let completion_probability region ~prob =
  let freq = propagate region ~prob ~with_dummy:false in
  match Hashtbl.find_opt freq (Region.tail_slot region) with
  | Some f -> f
  | None -> 0.0

let loopback_probability region ~prob =
  if region.Region.back_edges = [] then 0.0
  else begin
    let freq = propagate region ~prob ~with_dummy:true in
    match Hashtbl.find_opt freq (Region.slot_count region) with
    | Some f -> f
    | None -> 0.0
  end

let trip_count_of_loopback lp =
  if lp >= 1.0 -. 1e-9 then 1e9 else 1.0 /. (1.0 -. lp)

type trip_class = Low | Medium | High

let classify_loopback lp =
  if lp < 0.9 then Low else if lp <= 0.98 then Medium else High

let classify_trip_count t =
  if t < 10.0 then Low else if t <= 50.0 then Medium else High
