(** Offline region formation over a completed profile.

    Paper §5, future work: "apply region formation algorithms [5][11] to
    construct regions in INIP(train) and compute Sd.CP(train) and
    Sd.LP(train) between INIP(train) and AVEP".

    Given a profiling-only snapshot (full-run counters, no regions) this
    runs the same region former the translator uses — seeded at the
    hottest blocks, with the final counters as the profile — and returns
    a snapshot carrying those regions, which {!Metrics.compare_snapshots}
    can then evaluate against AVEP. *)

val form :
  ?config:Tpdbt_dbt.Region_former.config ->
  ?hot_fraction:float ->
  Tpdbt_dbt.Snapshot.t ->
  Tpdbt_dbt.Snapshot.t
(** [form snapshot] returns [snapshot] with regions formed from its
    counters.  Blocks whose [use] count is at least [hot_fraction]
    (default 0.001) of the hottest block's count are candidates; any
    existing regions are discarded.  [config]'s [threshold] field is
    overridden by the computed hotness cut-off. *)

val train_cp_lp :
  train:Tpdbt_dbt.Snapshot.t ->
  avep:Tpdbt_dbt.Snapshot.t ->
  Metrics.comparison
(** Convenience: form regions offline in the training profile and run
    the full region comparison against AVEP — the paper's missing
    Sd.CP(train) / Sd.LP(train) reference. *)
