module Snapshot = Tpdbt_dbt.Snapshot
module Region = Tpdbt_dbt.Region
module Block_map = Tpdbt_dbt.Block_map

let hottest_blocks ?(limit = 10) (snapshot : Snapshot.t) =
  let blocks =
    Snapshot.executed_blocks snapshot
    |> List.map (fun id ->
           (id, snapshot.Snapshot.use.(id), Snapshot.branch_prob snapshot id))
  in
  let sorted =
    List.sort (fun (_, a, _) (_, b, _) -> compare b a) blocks
  in
  List.filteri (fun i _ -> i < limit) sorted

let class_name = function
  | Region_prob.Low -> "low-trip (<10)"
  | Region_prob.Medium -> "medium-trip (10-50)"
  | Region_prob.High -> "high-trip (>50)"

let region_summary ?avep (snapshot : Snapshot.t) region =
  ignore snapshot;
  let buf = Buffer.create 256 in
  let members =
    Array.to_list region.Region.slots
    |> List.map (Printf.sprintf "B%d")
    |> String.concat " "
  in
  let frozen slot = Region.frozen_branch_prob region slot in
  (match region.Region.kind with
  | Region.Trace ->
      let cp = Region_prob.completion_probability region ~prob:frozen in
      Buffer.add_string buf
        (Printf.sprintf "trace region %d [%s]: completion probability %.4f"
           region.Region.id members cp);
      (match avep with
      | None -> ()
      | Some avep ->
          let avep_prob slot =
            Snapshot.branch_prob avep region.Region.slots.(slot)
          in
          let cm =
            Region_prob.completion_probability region ~prob:avep_prob
          in
          Buffer.add_string buf
            (Printf.sprintf " (average profile: %.4f, |diff| %.4f)" cm
               (abs_float (cp -. cm))))
  | Region.Loop ->
      let lp = Region_prob.loopback_probability region ~prob:frozen in
      Buffer.add_string buf
        (Printf.sprintf
           "loop region %d [%s]: loop-back probability %.4f, trip ~%.1f, %s"
           region.Region.id members lp
           (Region_prob.trip_count_of_loopback lp)
           (class_name (Region_prob.classify_loopback lp)));
      match avep with
      | None -> ()
      | Some avep ->
          let avep_prob slot =
            Snapshot.branch_prob avep region.Region.slots.(slot)
          in
          let lm = Region_prob.loopback_probability region ~prob:avep_prob in
          let same =
            Region_prob.classify_loopback lp = Region_prob.classify_loopback lm
          in
          Buffer.add_string buf
            (Printf.sprintf " (average: %.4f, %s — class %s)" lm
               (class_name (Region_prob.classify_loopback lm))
               (if same then "match" else "MISMATCH")));
  Buffer.contents buf

let render ?avep (snapshot : Snapshot.t) =
  let buf = Buffer.create 1024 in
  let bmap = snapshot.Snapshot.block_map in
  let executed = Snapshot.executed_blocks snapshot in
  Buffer.add_string buf
    (Printf.sprintf
       "profile: %d/%d blocks executed, %d profiling operations, %d regions\n"
       (List.length executed)
       (Block_map.block_count bmap)
       (Snapshot.profiling_ops snapshot)
       (List.length snapshot.Snapshot.regions));
  Buffer.add_string buf "\nhottest blocks:\n";
  List.iter
    (fun (id, use, prob) ->
      let b = Block_map.block bmap id in
      Buffer.add_string buf
        (Printf.sprintf "  B%-4d pc %4d..%-4d use %10d%s\n" id
           b.Block_map.start_pc b.Block_map.end_pc use
           (match prob with
           | Some p -> Printf.sprintf "  taken %.4f" p
           | None -> "")))
    (hottest_blocks snapshot);
  if snapshot.Snapshot.regions <> [] then begin
    Buffer.add_string buf "\nregions:\n";
    List.iter
      (fun region ->
        Buffer.add_string buf "  ";
        Buffer.add_string buf (region_summary ?avep snapshot region);
        Buffer.add_char buf '\n')
      snapshot.Snapshot.regions
  end;
  Buffer.contents buf
