module Snapshot = Tpdbt_dbt.Snapshot
module Region = Tpdbt_dbt.Region
module Block_map = Tpdbt_dbt.Block_map
module Stats = Tpdbt_numerics.Stats

type comparison = {
  sd_bp : float;
  sd_cp : float;
  sd_lp : float;
  bp_mismatch : float;
  lp_mismatch : float;
  bp_samples : int;
  cp_samples : int;
  lp_samples : int;
  navep_fallback : bool;
}

type flat = { sd_bp : float; bp_mismatch : float; bp_samples : int }

let bp_range p = if p < 0.3 then 0 else if p <= 0.7 then 1 else 2
let lp_range p = if p < 0.9 then 0 else if p <= 0.98 then 1 else 2

let is_cond bmap block =
  match (Block_map.block bmap block).Block_map.terminator with
  | Block_map.Cond _ -> true
  | Block_map.Goto _ | Block_map.Call_to _ | Block_map.Return | Block_map.Stop
  | Block_map.Fallthrough _ ->
      false

(* Branch-probability samples: one per NAVEP copy of a conditional block
   executed in both profiles. *)
let bp_samples_of navep ~inip ~avep =
  let bmap = inip.Snapshot.block_map in
  let region_of id =
    List.find (fun r -> r.Region.id = id) inip.Snapshot.regions
  in
  List.filter_map
    (fun (c : Navep.copy) ->
      if not (is_cond bmap c.Navep.block) then None
      else
        let actual = Snapshot.branch_prob avep c.Navep.block in
        let predicted =
          match c.Navep.location with
          | Navep.In_region { region; slot } ->
              Region.frozen_branch_prob (region_of region) slot
          | Navep.Standalone -> Snapshot.branch_prob inip c.Navep.block
        in
        match (predicted, actual) with
        | Some predicted, Some actual ->
            let weight = Navep.freq navep c.Navep.node in
            if weight <= 0.0 then None
            else Some { Stats.predicted; actual; weight }
        | (None, _ | _, None) -> None)
    (Navep.copies navep)

(* Per-slot branch probabilities for region propagation. *)
let frozen_prob region slot = Region.frozen_branch_prob region slot

let avep_prob avep region slot =
  Snapshot.branch_prob avep region.Region.slots.(slot)

let compare_snapshots ~inip ~avep =
  let navep = Navep.build ~inip ~avep in
  let bp = bp_samples_of navep ~inip ~avep in
  let cp =
    List.filter_map
      (fun r ->
        if r.Region.kind <> Region.Trace || Region.slot_count r < 2 then None
        else begin
          let ct = Region_prob.completion_probability r ~prob:(frozen_prob r) in
          let cm =
            Region_prob.completion_probability r ~prob:(avep_prob avep r)
          in
          let weight = Snapshot.block_freq avep (Region.entry_block r) in
          if weight <= 0.0 then None
          else Some { Stats.predicted = ct; actual = cm; weight }
        end)
      inip.Snapshot.regions
  in
  let lp =
    List.filter_map
      (fun r ->
        if r.Region.kind <> Region.Loop then None
        else begin
          let lt = Region_prob.loopback_probability r ~prob:(frozen_prob r) in
          let lm =
            Region_prob.loopback_probability r ~prob:(avep_prob avep r)
          in
          let weight = Snapshot.block_freq avep (Region.entry_block r) in
          if weight <= 0.0 then None
          else Some { Stats.predicted = lt; actual = lm; weight }
        end)
      inip.Snapshot.regions
  in
  {
    sd_bp = Stats.weighted_sd bp;
    sd_cp = Stats.weighted_sd cp;
    sd_lp = Stats.weighted_sd lp;
    bp_mismatch = Stats.mismatch_rate ~ranges:bp_range bp;
    lp_mismatch = Stats.mismatch_rate ~ranges:lp_range lp;
    bp_samples = List.length bp;
    cp_samples = List.length cp;
    lp_samples = List.length lp;
    navep_fallback = Navep.used_fallback navep;
  }

let compare_flat ~predicted ~avep =
  let bmap = avep.Snapshot.block_map in
  let samples =
    List.filter_map
      (fun block ->
        if not (is_cond bmap block) then None
        else
          match
            (Snapshot.branch_prob predicted block, Snapshot.branch_prob avep block)
          with
          | Some p, Some a ->
              let weight = Snapshot.block_freq avep block in
              if weight <= 0.0 then None
              else Some { Stats.predicted = p; actual = a; weight }
          | (None, _ | _, None) -> None)
      (Snapshot.executed_blocks avep)
  in
  {
    sd_bp = Stats.weighted_sd samples;
    bp_mismatch = Stats.mismatch_rate ~ranges:bp_range samples;
    bp_samples = List.length samples;
  }

let pp_comparison ppf (c : comparison) =
  Format.fprintf ppf
    "Sd.BP=%.4f Sd.CP=%.4f Sd.LP=%.4f bp_mis=%.3f lp_mis=%.3f (bp=%d cp=%d \
     lp=%d%s)"
    c.sd_bp c.sd_cp c.sd_lp c.bp_mismatch c.lp_mismatch c.bp_samples
    c.cp_samples c.lp_samples
    (if c.navep_fallback then ", navep-fallback" else "")
