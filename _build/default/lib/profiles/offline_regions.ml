module Snapshot = Tpdbt_dbt.Snapshot
module Region_former = Tpdbt_dbt.Region_former

let form ?(config = Region_former.default_config) ?(hot_fraction = 0.001)
    (snapshot : Snapshot.t) =
  let use = snapshot.Snapshot.use in
  let hottest = Array.fold_left max 0 use in
  if hottest = 0 then { snapshot with Snapshot.regions = [] }
  else begin
    let threshold =
      max 1 (int_of_float (hot_fraction *. float_of_int hottest))
    in
    let seeds =
      Array.to_list (Array.mapi (fun id u -> (id, u)) use)
      |> List.filter (fun (_, u) -> u >= threshold)
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      |> List.map fst
    in
    let regions =
      Region_former.form
        { config with Region_former.threshold }
        ~block_map:snapshot.Snapshot.block_map ~use
        ~taken:snapshot.Snapshot.taken
        ~owner:(fun _ -> Region_former.Unowned)
        ~seeds ~first_id:0
    in
    { snapshot with Snapshot.regions = regions }
  end

let train_cp_lp ~train ~avep =
  Metrics.compare_snapshots ~inip:(form train) ~avep
