lib/profiles/metrics.mli: Format Tpdbt_dbt
