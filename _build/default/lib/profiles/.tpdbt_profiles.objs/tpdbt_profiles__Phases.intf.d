lib/profiles/phases.mli: Tpdbt_dbt
