lib/profiles/region_prob.ml: Hashtbl List Tpdbt_cfg Tpdbt_dbt Tpdbt_numerics
