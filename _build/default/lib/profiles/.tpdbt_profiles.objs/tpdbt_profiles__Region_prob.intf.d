lib/profiles/region_prob.mli: Tpdbt_dbt
