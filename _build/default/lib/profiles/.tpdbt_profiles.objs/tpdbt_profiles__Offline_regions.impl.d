lib/profiles/offline_regions.ml: Array List Metrics Tpdbt_dbt
