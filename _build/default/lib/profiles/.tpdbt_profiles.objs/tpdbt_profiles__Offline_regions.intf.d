lib/profiles/offline_regions.mli: Metrics Tpdbt_dbt
