lib/profiles/metrics.ml: Array Format List Navep Region_prob Tpdbt_dbt Tpdbt_numerics
