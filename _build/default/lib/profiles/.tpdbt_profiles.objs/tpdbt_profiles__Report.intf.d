lib/profiles/report.mli: Tpdbt_dbt
