lib/profiles/navep.mli: Tpdbt_dbt
