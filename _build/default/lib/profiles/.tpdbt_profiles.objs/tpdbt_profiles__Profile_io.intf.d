lib/profiles/profile_io.mli: Tpdbt_dbt
