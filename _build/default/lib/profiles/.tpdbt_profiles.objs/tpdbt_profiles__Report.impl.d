lib/profiles/report.ml: Array Buffer List Printf Region_prob String Tpdbt_dbt
