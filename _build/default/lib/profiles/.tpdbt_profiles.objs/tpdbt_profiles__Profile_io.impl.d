lib/profiles/profile_io.ml: Array Buffer Fun List Printf String Tpdbt_dbt
