lib/profiles/phases.ml: Array List Tpdbt_dbt
