lib/profiles/navep.ml: Array Hashtbl List Tpdbt_cfg Tpdbt_dbt Tpdbt_numerics
