(** Phase detection over checkpointed profiles.

    The paper (§1, §5) attributes most initial-prediction failures to
    programs with {e phases}: intervals whose branch behaviour differs
    from the whole-run average.  This module detects such phases
    offline from a series of cumulative profile checkpoints
    ({!Tpdbt_dbt.Engine.run}'s [on_checkpoint]):

    - consecutive checkpoints are differenced into {e window} profiles
      (per-block use/taken deltas);
    - the distance between adjacent windows is the weighted mean
      absolute difference of their branch probabilities (weights:
      window execution counts);
    - a window boundary whose distance exceeds a threshold is a
      {e change point}. *)

type window = {
  start_steps : int;
  end_steps : int;
  use : int array;  (** per-block executions within the window *)
  taken : int array;
}

val windows : (int * Tpdbt_dbt.Snapshot.t) list -> window list
(** Difference a chronological [(steps, cumulative snapshot)] series
    (an initial implicit all-zero checkpoint at step 0 is assumed).
    @raise Invalid_argument if the series is not strictly increasing in
    steps or the snapshots disagree on block count. *)

val window_branch_prob : window -> int -> float option
(** Branch probability of a block within one window ([None] if the
    block did not execute there). *)

val distance : Tpdbt_dbt.Block_map.t -> window -> window -> float
(** Weighted mean absolute branch-probability difference between two
    windows, over conditional blocks executed in both; weight is the
    combined window execution count.  0 when nothing is comparable. *)

val max_shift :
  ?min_executions:int -> Tpdbt_dbt.Block_map.t -> window -> window -> float
(** Largest per-block branch-probability change between two windows,
    over conditional blocks executed at least [min_executions] (default
    16) times in each — robust against dilution by stable
    high-frequency blocks. *)

type change_point = { steps : int; distance : float; shift : float }

val change_points :
  ?threshold:float ->
  ?shift_threshold:float ->
  Tpdbt_dbt.Block_map.t ->
  (int * Tpdbt_dbt.Snapshot.t) list ->
  change_point list
(** Boundaries between adjacent windows whose weighted {!distance}
    exceeds [threshold] (default 0.1) {e or} whose {!max_shift} exceeds
    [shift_threshold] (default 0.3); chronological.  The latter
    criterion catches a phase change in a moderately-hot branch that
    the frequency-weighted mean would drown out. *)
