(** Completion and loop-back probabilities of regions (paper §3.2–3.3).

    Both are computed by assigning the region entry a frequency of 1 and
    propagating it along internal edges weighted by branch
    probabilities.  The completion probability of a non-loop region is
    the propagated frequency of its tail block; the loop-back
    probability of a loop region is the propagated frequency of a dummy
    node that the back edges are redirected to. *)

val edge_probability : Tpdbt_dbt.Region.role -> branch_prob:float option -> float
(** Probability of following an edge with the given role out of a block
    whose (taken) branch probability is [branch_prob]:
    [Taken] -> p, [Not_taken] -> 1-p, [Always] -> 1.  A missing branch
    probability defaults to 0.5. *)

val completion_probability :
  Tpdbt_dbt.Region.t -> prob:(int -> float option) -> float
(** [prob slot] is the (taken) branch probability of the block at
    [slot].  For a loop region this is the probability of reaching the
    tail, which callers normally don't need. *)

val loopback_probability :
  Tpdbt_dbt.Region.t -> prob:(int -> float option) -> float
(** 0 for a region without back edges. *)

val trip_count_of_loopback : float -> float
(** LP = (T-1)/T, so T = 1/(1-LP); capped at 1e9 for LP ~ 1. *)

type trip_class = Low | Medium | High
(** <10, 10..50, >50 iterations — the paper's Fig 15 classification. *)

val classify_loopback : float -> trip_class
val classify_trip_count : float -> trip_class
