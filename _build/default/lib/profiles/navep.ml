module Snapshot = Tpdbt_dbt.Snapshot
module Region = Tpdbt_dbt.Region
module Block_map = Tpdbt_dbt.Block_map
module Graph = Tpdbt_cfg.Graph
module Markov = Tpdbt_numerics.Markov

type location = In_region of { region : int; slot : int } | Standalone
type copy = { node : int; block : int; location : location }

type t = {
  copies : copy array;
  freqs : float array;
  slot_node : (int * int, int) Hashtbl.t;  (* (region id, slot) -> node *)
  standalone_node : (int, int) Hashtbl.t;  (* block -> node *)
  block_copies : (int, copy list) Hashtbl.t;
  fallback : bool;
}

(* CFG out-edges of a block with AVEP probabilities:
   (role, successor block, probability). *)
let out_flow avep block =
  let bmap = avep.Snapshot.block_map in
  match (Block_map.block bmap block).Block_map.terminator with
  | Block_map.Cond { taken; fallthrough } ->
      let p =
        match Snapshot.branch_prob avep block with Some p -> p | None -> 0.5
      in
      [ (Region.Taken, taken, p); (Region.Not_taken, fallthrough, 1.0 -. p) ]
  | Block_map.Goto dst | Block_map.Fallthrough dst ->
      [ (Region.Always, dst, 1.0) ]
  | Block_map.Call_to { callee; retsite = _ } ->
      [ (Region.Always, callee, 1.0) ]
  | Block_map.Return | Block_map.Stop -> []

let build ~inip ~avep =
  let bmap = inip.Snapshot.block_map in
  let nblocks = Block_map.block_count bmap in
  (* 1. Enumerate copies. *)
  let copies_rev = ref [] in
  let ncopies = ref 0 in
  let slot_node = Hashtbl.create 64 in
  let standalone_node = Hashtbl.create 64 in
  let block_copies = Hashtbl.create 64 in
  let in_region = Array.make nblocks false in
  let add_copy block location =
    let node = !ncopies in
    incr ncopies;
    let c = { node; block; location } in
    copies_rev := c :: !copies_rev;
    (match location with
    | In_region { region; slot } -> Hashtbl.replace slot_node (region, slot) node
    | Standalone -> Hashtbl.replace standalone_node block node);
    let existing =
      match Hashtbl.find_opt block_copies block with Some l -> l | None -> []
    in
    Hashtbl.replace block_copies block (existing @ [ c ])
  in
  List.iter
    (fun r ->
      Array.iteri
        (fun slot block ->
          in_region.(block) <- true;
          add_copy block (In_region { region = r.Region.id; slot }))
        r.Region.slots)
    inip.Snapshot.regions;
  for block = 0 to nblocks - 1 do
    if not in_region.(block) then add_copy block Standalone
  done;
  let copies = Array.of_list (List.rev !copies_rev) in
  (* Entry copies of a block: slot-0 nodes of regions it heads, plus its
     standalone node; used as targets for cross (non-region) edges. *)
  let entry_targets block =
    let from_regions =
      List.filter_map
        (fun c ->
          match c.location with
          | In_region { slot = 0; _ } -> Some c.node
          | In_region _ | Standalone -> None)
        (match Hashtbl.find_opt block_copies block with
        | Some l -> l
        | None -> [])
    in
    let standalone =
      match Hashtbl.find_opt standalone_node block with
      | Some n -> [ n ]
      | None -> []
    in
    match from_regions @ standalone with
    | [] ->
        (* Only non-entry region copies exist: split between all of them
           (documented approximation). *)
        List.map
          (fun c -> c.node)
          (match Hashtbl.find_opt block_copies block with
          | Some l -> l
          | None -> [])
    | targets -> targets
  in
  (* 2. Build the NAVEP flow graph with edge probabilities. *)
  let g = Graph.create () in
  Array.iter (fun c -> Graph.add_node g c.node) copies;
  let edge_prob : (int * int, float) Hashtbl.t = Hashtbl.create 256 in
  let add_flow src dst p =
    if p > 0.0 then begin
      let key = (src, dst) in
      let existing =
        match Hashtbl.find_opt edge_prob key with Some v -> v | None -> 0.0
      in
      Hashtbl.replace edge_prob key (existing +. p);
      Graph.add_edge g src dst
    end
  in
  let region_of_id id =
    List.find (fun r -> r.Region.id = id) inip.Snapshot.regions
  in
  let route_external src succ p =
    match entry_targets succ with
    | [] -> ()
    | targets ->
        let share = p /. float_of_int (List.length targets) in
        List.iter (fun dst -> add_flow src dst share) targets
  in
  Array.iter
    (fun c ->
      let flows = out_flow avep c.block in
      match c.location with
      | Standalone ->
          List.iter (fun (_role, succ, p) -> route_external c.node succ p) flows
      | In_region { region = rid; slot } ->
          let r = region_of_id rid in
          let internal = Region.out_edges r slot in
          List.iter
            (fun (role, succ, p) ->
              match
                List.find_opt (fun e -> e.Region.role = role) internal
              with
              | Some e ->
                  let dst = Hashtbl.find slot_node (rid, e.Region.dst) in
                  add_flow c.node dst p
              | None -> route_external c.node succ p)
            flows)
    copies;
  (* 3. Known constants: blocks with a single copy keep their AVEP
     frequency. *)
  let copy_count block =
    match Hashtbl.find_opt block_copies block with
    | Some l -> List.length l
    | None -> 0
  in
  let known =
    Array.to_list copies
    |> List.filter_map (fun c ->
           if copy_count c.block = 1 then
             Some (c.node, Snapshot.block_freq avep c.block)
           else None)
  in
  let prob_of src dst =
    match Hashtbl.find_opt edge_prob (src, dst) with Some p -> p | None -> 0.0
  in
  let freqs = Array.make (Array.length copies) 0.0 in
  let fallback = ref false in
  (match Markov.solve ~graph:g ~prob:prob_of ~known with
  | Ok table ->
      Array.iter
        (fun c ->
          freqs.(c.node) <-
            (match Hashtbl.find_opt table c.node with
            | Some f -> max 0.0 f
            | None -> 0.0))
        copies
  | Error _ ->
      fallback := true;
      Array.iter
        (fun c ->
          let k = copy_count c.block in
          freqs.(c.node) <- Snapshot.block_freq avep c.block /. float_of_int k)
        copies);
  (* 4. Renormalise the copies of each duplicated block so they sum to
     the block's AVEP frequency: the solver fixes the split ratios, AVEP
     fixes the total (paper §3.1 invariant). *)
  Hashtbl.iter
    (fun block cs ->
      match cs with
      | [] | [ _ ] -> ()
      | _ :: _ :: _ ->
          let total = List.fold_left (fun acc c -> acc +. freqs.(c.node)) 0.0 cs in
          let target = Snapshot.block_freq avep block in
          if total > 1e-9 then
            List.iter
              (fun c -> freqs.(c.node) <- freqs.(c.node) *. target /. total)
              cs
          else begin
            let k = float_of_int (List.length cs) in
            List.iter (fun c -> freqs.(c.node) <- target /. k) cs
          end)
    block_copies;
  {
    copies;
    freqs;
    slot_node;
    standalone_node;
    block_copies;
    fallback = !fallback;
  }

let copies t = Array.to_list t.copies

let copies_of_block t block =
  match Hashtbl.find_opt t.block_copies block with Some l -> l | None -> []

let freq t node =
  if node < 0 || node >= Array.length t.freqs then 0.0 else t.freqs.(node)

let node_of_slot t ~region ~slot = Hashtbl.find_opt t.slot_node (region, slot)
let node_of_standalone t block = Hashtbl.find_opt t.standalone_node block
let used_fallback t = t.fallback

let total_block_freq t block =
  List.fold_left (fun acc c -> acc +. t.freqs.(c.node)) 0.0 (copies_of_block t block)
