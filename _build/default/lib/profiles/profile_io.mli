(** Profile files.

    The paper's workflow (§4): "After the information for INIP(T),
    INIP(train) and AVEP are collected into files, we use an off-line
    tool to analyze the data."  This module is that file format — a
    line-oriented text serialisation of {!Tpdbt_dbt.Snapshot.t}
    (block structure, use/taken counters, regions with frozen counters)
    — so profiles can be collected by one `tpdbt profile` invocation and
    analysed by another.

    The format is versioned and self-describing; [load] rejects files
    whose structure is inconsistent (bad block extents, region slots out
    of range, counter arrays of the wrong length). *)

val save : string -> Tpdbt_dbt.Snapshot.t -> unit
(** Write a profile file.
    @raise Sys_error on I/O failure. *)

val load : string -> (Tpdbt_dbt.Snapshot.t, string) result

val to_string : Tpdbt_dbt.Snapshot.t -> string
val of_string : string -> (Tpdbt_dbt.Snapshot.t, string) result
