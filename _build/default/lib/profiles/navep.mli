(** NAVEP: the average profile normalised onto INIP(T)'s duplicated CFG
    (paper §3.1).

    Region formation may copy one block into several regions.  AVEP only
    has one frequency per block, so to weight the per-copy comparisons
    we rebuild INIP's view of the CFG — one node per (region, slot) copy
    plus one node per block outside every region — give every copy its
    original block's AVEP branch probability, and recover per-copy
    frequencies with Markov modelling of control flow: non-duplicated
    nodes keep their AVEP frequency as constants, duplicated copies are
    solved from the flow equations ({!Tpdbt_numerics.Markov.solve}).

    Approximations (documented in DESIGN.md): a CFG edge into a block
    that only exists as non-entry region copies is split equally between
    those copies, and if the linear system is singular the block's AVEP
    frequency is split equally between its copies ([used_fallback]). *)

type location = In_region of { region : int; slot : int } | Standalone

type copy = { node : int; block : int; location : location }

type t

val build : inip:Tpdbt_dbt.Snapshot.t -> avep:Tpdbt_dbt.Snapshot.t -> t
(** [inip] supplies the region structure, [avep] the probabilities and
    frequencies. *)

val copies : t -> copy list
(** Every NAVEP node, in node order. *)

val copies_of_block : t -> int -> copy list

val freq : t -> int -> float
(** NAVEP frequency of a node. *)

val node_of_slot : t -> region:int -> slot:int -> int option
val node_of_standalone : t -> int -> int option
val used_fallback : t -> bool
(** True if the equal-split fallback replaced the linear solve. *)

val total_block_freq : t -> int -> float
(** Sum of the frequencies of a block's copies — should equal the
    block's AVEP frequency (a tested invariant). *)
