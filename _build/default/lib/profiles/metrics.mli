(** The paper's accuracy metrics (§2): weighted standard deviations of
    branch / completion / loop-back probabilities between an initial
    profile INIP(T) and the average profile AVEP, plus the range-based
    mismatch rates of §4.

    All weights come from AVEP (via NAVEP for duplicated blocks), so a
    comparison says "how far is the prediction from average behaviour,
    counting each prediction as often as it actually matters". *)

type comparison = {
  sd_bp : float;  (** Sd.BP(T) — branch probabilities *)
  sd_cp : float;  (** Sd.CP(T) — completion probabilities, non-loop regions *)
  sd_lp : float;  (** Sd.LP(T) — loop-back probabilities, loop regions *)
  bp_mismatch : float;  (** range mismatch rate of branch probabilities *)
  lp_mismatch : float;  (** trip-count-range mismatch rate of loops *)
  bp_samples : int;
  cp_samples : int;
  lp_samples : int;
  navep_fallback : bool;  (** NAVEP used its equal-split fallback *)
}

type flat = { sd_bp : float; bp_mismatch : float; bp_samples : int }
(** Comparison of two profiling-only snapshots (no regions) — the
    INIP(train)-vs-AVEP reference. *)

val bp_range : float -> int
(** Paper ranges [0,.3) -> 0, [.3,.7] -> 1, (.7,1] -> 2. *)

val lp_range : float -> int
(** Trip-count ranges via LP: [0,.9) -> 0, [.9,.98] -> 1, (.98,1] -> 2. *)

val compare_snapshots :
  inip:Tpdbt_dbt.Snapshot.t -> avep:Tpdbt_dbt.Snapshot.t -> comparison
(** Full INIP(T)-vs-AVEP comparison.  CP is measured over non-loop
    regions with at least two slots (a singleton trace has no side
    exits); LP over all loop regions. *)

val compare_flat :
  predicted:Tpdbt_dbt.Snapshot.t -> avep:Tpdbt_dbt.Snapshot.t -> flat
(** Block-by-block branch-probability comparison without any region
    normalisation; used for Sd.BP(train). *)

val pp_comparison : Format.formatter -> comparison -> unit
