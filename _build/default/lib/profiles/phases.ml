module Snapshot = Tpdbt_dbt.Snapshot
module Block_map = Tpdbt_dbt.Block_map

type window = {
  start_steps : int;
  end_steps : int;
  use : int array;
  taken : int array;
}

let windows series =
  match series with
  | [] -> []
  | (_, first) :: _ ->
      let n = Array.length first.Snapshot.use in
      let rec go prev_steps prev_use prev_taken acc = function
        | [] -> List.rev acc
        | (steps, snap) :: rest ->
            if steps <= prev_steps then
              invalid_arg "Phases.windows: steps not strictly increasing";
            if Array.length snap.Snapshot.use <> n then
              invalid_arg "Phases.windows: block count mismatch";
            let use = Array.init n (fun i -> snap.Snapshot.use.(i) - prev_use.(i)) in
            let taken =
              Array.init n (fun i -> snap.Snapshot.taken.(i) - prev_taken.(i))
            in
            let w = { start_steps = prev_steps; end_steps = steps; use; taken } in
            go steps snap.Snapshot.use snap.Snapshot.taken (w :: acc) rest
      in
      go 0 (Array.make n 0) (Array.make n 0) [] series

let window_branch_prob w block =
  if block < 0 || block >= Array.length w.use || w.use.(block) <= 0 then None
  else Some (float_of_int w.taken.(block) /. float_of_int w.use.(block))

let is_cond bmap block =
  match (Block_map.block bmap block).Block_map.terminator with
  | Block_map.Cond _ -> true
  | Block_map.Goto _ | Block_map.Call_to _ | Block_map.Return | Block_map.Stop
  | Block_map.Fallthrough _ ->
      false

let distance bmap a b =
  let n = min (Array.length a.use) (Array.length b.use) in
  let num = ref 0.0 and den = ref 0.0 in
  for block = 0 to n - 1 do
    if is_cond bmap block then
      match (window_branch_prob a block, window_branch_prob b block) with
      | Some pa, Some pb ->
          let weight = float_of_int (a.use.(block) + b.use.(block)) in
          num := !num +. (abs_float (pa -. pb) *. weight);
          den := !den +. weight
      | (None, _ | _, None) -> ()
  done;
  if !den <= 0.0 then 0.0 else !num /. !den

let max_shift ?(min_executions = 16) bmap a b =
  let n = min (Array.length a.use) (Array.length b.use) in
  let worst = ref 0.0 in
  for block = 0 to n - 1 do
    if
      is_cond bmap block
      && a.use.(block) >= min_executions
      && b.use.(block) >= min_executions
    then
      match (window_branch_prob a block, window_branch_prob b block) with
      | Some pa, Some pb -> worst := max !worst (abs_float (pa -. pb))
      | (None, _ | _, None) -> ()
  done;
  !worst

type change_point = { steps : int; distance : float; shift : float }

let change_points ?(threshold = 0.1) ?(shift_threshold = 0.3) bmap series =
  let ws = windows series in
  let rec scan acc = function
    | a :: (b :: _ as rest) ->
        let d = distance bmap a b in
        let s = max_shift bmap a b in
        let acc =
          if d > threshold || s > shift_threshold then
            { steps = b.start_steps; distance = d; shift = s } :: acc
          else acc
        in
        scan acc rest
    | [ _ ] | [] -> List.rev acc
  in
  scan [] ws
