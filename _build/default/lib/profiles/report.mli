(** Human-readable summaries of profiles and comparisons.

    Formats the contents of a {!Tpdbt_dbt.Snapshot.t} the way the
    paper's prose discusses them: hottest blocks with their branch
    probabilities, regions with completion / loop-back probabilities
    from their frozen profiles, and — when an average profile is
    supplied — the side-by-side INIP-vs-AVEP view per region. *)

val hottest_blocks :
  ?limit:int -> Tpdbt_dbt.Snapshot.t -> (int * int * float option) list
(** [(block id, use, branch probability)] for the [limit] (default 10)
    most-executed blocks, hottest first. *)

val region_summary :
  ?avep:Tpdbt_dbt.Snapshot.t ->
  Tpdbt_dbt.Snapshot.t ->
  Tpdbt_dbt.Region.t ->
  string
(** One paragraph for a region: kind, members, frozen CP or LP, and —
    with [avep] — the AVEP-side CP/LP and trip-count classes. *)

val render : ?avep:Tpdbt_dbt.Snapshot.t -> Tpdbt_dbt.Snapshot.t -> string
(** Full report: totals, hottest blocks, every region. *)
