(** The synthetic SPEC2000 suite: 12 INT and 14 FP benchmarks.

    Each descriptor is tuned so that the profile-accuracy study
    reproduces the per-benchmark findings of the paper's §4 (see
    DESIGN.md §5 for the tuning table): Mcf's phase changes and loop
    trip-count inversion, Gzip's startup phase, Perlbmk's
    unrepresentative training input, Crafty's threshold-straddling
    branches, Vpr/Gcc's late loop-class flips, Wupwise's late branch
    phase, Lucas/Apsi's unrepresentative training inputs, and the
    generally stable, loop-dominated FP behaviour. *)

val int_benchmarks : Spec.t list
(** gzip vpr gcc mcf crafty parser eon perlbmk gap vortex bzip2 twolf. *)

val fp_benchmarks : Spec.t list
(** wupwise swim mgrid applu mesa galgel art equake facerec ammp lucas
    fma3d sixtrack apsi. *)

val all : Spec.t list
val find : string -> Spec.t option
val names : string list

val scale : int
(** Threshold scale factor vs the paper: 100.  A paper threshold label
    of 2k corresponds to a scaled threshold of 20 here (run lengths are
    scaled identically, see DESIGN.md §2). *)

val thresholds : (string * int) list
(** The paper's 13 retranslation thresholds as [(paper label, scaled
    value)]: 100 -> 1 ... 4M -> 40000. *)
