type t = {
  buf : Buffer.t;
  mutable next_label : int;
  mutable next_param : int;
  mutable next_scratch : int;
  mutable params_rev : (int * int * int) list;
  mutable filler_rot : int;
}

let param_base = 8
let scratch_base = 4096

let create () =
  {
    buf = Buffer.create 4096;
    next_label = 0;
    next_param = param_base;
    next_scratch = scratch_base;
    params_rev = [];
    filler_rot = 0;
  }

let emit t line =
  Buffer.add_string t.buf line;
  Buffer.add_char t.buf '\n'

let emitf t fmt = Printf.ksprintf (emit t) fmt

let fresh_label t prefix =
  let n = t.next_label in
  t.next_label <- n + 1;
  Printf.sprintf "%s_%d" prefix n

let param t ~ref_value ~train_value =
  let addr = t.next_param in
  t.next_param <- addr + 1;
  t.params_rev <- (addr, ref_value, train_value) :: t.params_rev;
  addr

let scratch_addr t =
  let addr = t.next_scratch in
  t.next_scratch <- addr + 1;
  addr

let params t = List.rev t.params_rev
let contents t = Buffer.contents t.buf

(* Straight-line filler: rotates through a few instruction shapes so the
   optimiser and scheduler see varied blocks. *)
let filler t n =
  for _ = 1 to n do
    let k = t.filler_rot in
    t.filler_rot <- k + 1;
    match k mod 6 with
    | 0 -> emit t "    addi r10, r10, 1"
    | 1 -> emit t "    xor r11, r11, r10"
    | 2 -> emit t "    muli r12, r10, 3"
    | 3 -> emitf t "    st r11, [r0+%d]" (scratch_base - 1)
    | 4 -> emitf t "    ld r13, [r0+%d]" (scratch_base - 1)
    | _ -> emit t "    addi r13, r13, 7"
  done
