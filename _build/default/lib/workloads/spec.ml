type phase = { at : float; value : int }

type scaled_param = {
  base_ref : int;
  base_train : int;
  phases : phase list;
}

type unit_spec =
  | Branch of { prob : scaled_param; straight : int; copies : int }
  | Loop of { trip : scaled_param; jitter : int; body : int; copies : int }
  | Nest2 of {
      outer : scaled_param;
      inner : scaled_param;
      jitter : int;
      body : int;
      copies : int;
    }
  | Call_fn of { prob : scaled_param; body : int; copies : int }
  | Loop_branch of {
      trip : scaled_param;
      jitter : int;
      prob : scaled_param;
      body : int;
      copies : int;
    }

type t = {
  name : string;
  suite : [ `Int | `Fp ];
  units : unit_spec list;
  ref_iters : int;
  train_iters : int;
  ref_seed : int64;
  train_seed : int64;
}

type input = { data : (int * int) list; seed : int64 }

let const v = { base_ref = v; base_train = v; phases = [] }

let per_mille p =
  let v = int_of_float ((p *. 1000.0) +. 0.5) in
  if v < 0 then 0 else if v > 1000 then 1000 else v

let prob ?train ?(phases = []) p =
  {
    base_ref = per_mille p;
    base_train = per_mille (Option.value train ~default:p);
    phases = List.map (fun (at, v) -> { at; value = per_mille v }) phases;
  }

let trip ?train ?(phases = []) mean =
  {
    base_ref = mean;
    base_train = Option.value train ~default:mean;
    phases = List.map (fun (at, v) -> { at; value = v }) phases;
  }

(* Emit code selecting the current value of [p] into [rdst].

   Phase selection is branchless (sign-bit masking) so the selector does
   not itself contribute phase-flipping conditional branches to the
   profile: for each phase, [rdst] is replaced by the phase value once
   the outer counter r1 passes the boundary:

     mask  = (r1 - boundary) asr 31        (-1 before, 0 after)
     rdst ^= (value ^ rdst) land (lnot mask)

   Scratch registers: r5, r7, r9 (disjoint from loop counters r3/r4/r6
   and the accumulators). *)
let emit_select ctx spec ~rdst (p : scaled_param) =
  let value_addr ~ref_value ~train_value =
    Codegen.param ctx ~ref_value ~train_value
  in
  let base =
    value_addr ~ref_value:p.base_ref ~train_value:p.base_train
  in
  Codegen.emitf ctx "    ld %s, [r0+%d]" rdst base;
  List.iter
    (fun ph ->
      (* Phases are program-inherent behaviour changes: the training
         input goes through them too, at the same fraction of its
         (shorter) run. *)
      let boundary =
        Codegen.param ctx
          ~ref_value:(int_of_float (ph.at *. float_of_int spec.ref_iters))
          ~train_value:(int_of_float (ph.at *. float_of_int spec.train_iters))
      in
      let value = value_addr ~ref_value:ph.value ~train_value:ph.value in
      Codegen.emitf ctx "    ld r9, [r0+%d]" boundary;
      Codegen.emit ctx "    sub r9, r1, r9";
      Codegen.emit ctx "    shri r9, r9, 31";
      Codegen.emitf ctx "    ld r5, [r0+%d]" value;
      Codegen.emitf ctx "    xor r5, r5, %s" rdst;
      Codegen.emit ctx "    movi r7, -1";
      Codegen.emit ctx "    xor r7, r9, r7";
      Codegen.emit ctx "    and r5, r5, r7";
      Codegen.emitf ctx "    xor %s, %s, r5" rdst rdst)
    p.phases

(* A probabilistic branch: r8 holds the per-mille threshold. *)
let emit_branch ctx spec ~prob ~straight =
  emit_select ctx spec ~rdst:"r8" prob;
  let taken = Codegen.fresh_label ctx "take" in
  let join = Codegen.fresh_label ctx "join" in
  Codegen.emit ctx "    rnd r7, 1000";
  Codegen.emitf ctx "    blt r7, r8, %s" taken;
  Codegen.filler ctx (max 1 (straight / 2));
  Codegen.emitf ctx "    jmp %s" join;
  Codegen.emitf ctx "%s:" taken;
  Codegen.filler ctx (max 1 (straight / 2));
  Codegen.emitf ctx "%s:" join

(* Draw a trip count into [rdst]: mean (phase-selected) +- jitter. *)
let emit_trip_draw ctx spec ~rdst ~trip ~jitter =
  emit_select ctx spec ~rdst trip;
  if jitter > 0 then begin
    Codegen.emitf ctx "    rnd r7, %d" ((2 * jitter) + 1);
    Codegen.emitf ctx "    add %s, %s, r7" rdst rdst;
    Codegen.emitf ctx "    subi %s, %s, %d" rdst rdst jitter
  end

let emit_loop ctx spec ~trip ~jitter ~body =
  emit_trip_draw ctx spec ~rdst:"r4" ~trip ~jitter;
  let head = Codegen.fresh_label ctx "loop" in
  Codegen.emit ctx "    movi r3, 0";
  Codegen.emitf ctx "%s:" head;
  Codegen.filler ctx (max 1 body);
  Codegen.emit ctx "    addi r3, r3, 1";
  Codegen.emitf ctx "    blt r3, r4, %s" head

let emit_nest2 ctx spec ~outer ~inner ~jitter ~body =
  emit_trip_draw ctx spec ~rdst:"r4" ~trip:outer ~jitter:0;
  let outer_head = Codegen.fresh_label ctx "outer" in
  let inner_head = Codegen.fresh_label ctx "inner" in
  Codegen.emit ctx "    movi r3, 0";
  Codegen.emitf ctx "%s:" outer_head;
  emit_trip_draw ctx spec ~rdst:"r6" ~trip:inner ~jitter;
  Codegen.emit ctx "    movi r5, 0";
  Codegen.emitf ctx "%s:" inner_head;
  Codegen.filler ctx (max 1 body);
  Codegen.emit ctx "    addi r5, r5, 1";
  Codegen.emitf ctx "    blt r5, r6, %s" inner_head;
  Codegen.emit ctx "    addi r3, r3, 1";
  Codegen.emitf ctx "    blt r3, r4, %s" outer_head

let generate spec =
  let ctx = Codegen.create () in
  let pending_functions = ref [] in
  Codegen.emit ctx ".entry main";
  Codegen.emit ctx "main:";
  Codegen.emit ctx "    movi r0, 0";
  Codegen.emit ctx "    ld r2, [r0+0]";
  Codegen.emit ctx "    movi r1, 0";
  Codegen.emit ctx "    movi r10, 0";
  Codegen.emit ctx "    movi r11, 0";
  Codegen.emit ctx "    movi r12, 0";
  Codegen.emit ctx "    movi r13, 0";
  Codegen.emit ctx "outer_loop:";
  List.iter
    (fun unit_spec ->
      let copies =
        match unit_spec with
        | Branch { copies; _ }
        | Loop { copies; _ }
        | Nest2 { copies; _ }
        | Call_fn { copies; _ }
        | Loop_branch { copies; _ } ->
            copies
      in
      for _ = 1 to max 1 copies do
        match unit_spec with
        | Branch { prob; straight; _ } -> emit_branch ctx spec ~prob ~straight
        | Loop { trip; jitter; body; _ } -> emit_loop ctx spec ~trip ~jitter ~body
        | Nest2 { outer; inner; jitter; body; _ } ->
            emit_nest2 ctx spec ~outer ~inner ~jitter ~body
        | Call_fn { prob; body; _ } ->
            let fn = Codegen.fresh_label ctx "fn" in
            Codegen.emitf ctx "    call %s" fn;
            pending_functions := (fn, prob, body) :: !pending_functions
        | Loop_branch { trip; jitter; prob; body; _ } ->
            emit_trip_draw ctx spec ~rdst:"r4" ~trip ~jitter;
            let head = Codegen.fresh_label ctx "loopb" in
            Codegen.emit ctx "    movi r3, 0";
            Codegen.emitf ctx "%s:" head;
            emit_branch ctx spec ~prob ~straight:body;
            Codegen.emit ctx "    addi r3, r3, 1";
            Codegen.emitf ctx "    blt r3, r4, %s" head
      done)
    spec.units;
  Codegen.emit ctx "    addi r1, r1, 1";
  Codegen.emit ctx "    blt r1, r2, outer_loop";
  Codegen.emit ctx "    out r10";
  Codegen.emit ctx "    out r11";
  Codegen.emit ctx "    out r12";
  Codegen.emit ctx "    out r13";
  Codegen.emit ctx "    halt";
  List.iter
    (fun (fn, prob, body) ->
      Codegen.emitf ctx "%s:" fn;
      emit_branch ctx spec ~prob ~straight:body;
      Codegen.emit ctx "    ret")
    (List.rev !pending_functions);
  ctx

let source spec = Codegen.contents (generate spec)

let build spec =
  let ctx = generate spec in
  let program =
    match Tpdbt_isa.Assembler.assemble (Codegen.contents ctx) with
    | Ok p -> p
    | Error msg ->
        invalid_arg (Printf.sprintf "Spec.build (%s): %s" spec.name msg)
  in
  let params = Codegen.params ctx in
  let ref_data =
    (0, spec.ref_iters) :: List.map (fun (addr, rv, _) -> (addr, rv)) params
  in
  let train_data =
    (0, spec.train_iters) :: List.map (fun (addr, _, tv) -> (addr, tv)) params
  in
  ( program,
    { data = ref_data; seed = spec.ref_seed },
    { data = train_data; seed = spec.train_seed } )

let apply_input program input =
  Tpdbt_isa.Program.with_data program input.data

let describe_param ~unit_label (p : scaled_param) =
  let base =
    if unit_label = "prob" then
      Printf.sprintf "%.3f" (float_of_int p.base_ref /. 1000.0)
    else string_of_int p.base_ref
  in
  let train =
    if p.base_train = p.base_ref then ""
    else if unit_label = "prob" then
      Printf.sprintf " (train %.3f)" (float_of_int p.base_train /. 1000.0)
    else Printf.sprintf " (train %d)" p.base_train
  in
  let phases =
    match p.phases with
    | [] -> ""
    | phases ->
        let one ph =
          if unit_label = "prob" then
            Printf.sprintf "%.3f@%.4f" (float_of_int ph.value /. 1000.0) ph.at
          else Printf.sprintf "%d@%.4f" ph.value ph.at
        in
        Printf.sprintf " [phases: %s]" (String.concat ", " (List.map one phases))
  in
  base ^ train ^ phases

let describe spec =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s (%s): %d reference / %d training iterations\n"
       spec.name
       (match spec.suite with `Int -> "INT" | `Fp -> "FP")
       spec.ref_iters spec.train_iters);
  List.iter
    (fun unit_spec ->
      let line =
        match unit_spec with
        | Branch { prob; straight; copies } ->
            Printf.sprintf "branch      p=%s straight=%d x%d"
              (describe_param ~unit_label:"prob" prob)
              straight copies
        | Loop { trip; jitter; body; copies } ->
            Printf.sprintf "loop        trip=%s +-%d body=%d x%d"
              (describe_param ~unit_label:"trip" trip)
              jitter body copies
        | Nest2 { outer; inner; jitter; body; copies } ->
            Printf.sprintf "nest2       outer=%s inner=%s +-%d body=%d x%d"
              (describe_param ~unit_label:"trip" outer)
              (describe_param ~unit_label:"trip" inner)
              jitter body copies
        | Call_fn { prob; body; copies } ->
            Printf.sprintf "call        p=%s body=%d x%d"
              (describe_param ~unit_label:"prob" prob)
              body copies
        | Loop_branch { trip; jitter; prob; body; copies } ->
            Printf.sprintf "loop-branch trip=%s +-%d p=%s body=%d x%d"
              (describe_param ~unit_label:"trip" trip)
              jitter
              (describe_param ~unit_label:"prob" prob)
              body copies
      in
      Buffer.add_string buf ("  " ^ line ^ "\n"))
    spec.units;
  Buffer.contents buf
