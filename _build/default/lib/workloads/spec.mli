(** Synthetic benchmark descriptors and their realisation.

    A benchmark is an outer loop over a list of {e units}; each unit
    contributes one or more static code copies of a behavioural pattern:

    - [Branch]: a conditional branch with a controlled taken
      probability (possibly input-dependent and phase-dependent);
    - [Loop]: an inner loop with a controlled trip-count distribution;
    - [Nest2]: a two-level loop nest (the inner block belongs to both
      loops — the Mcf situation of paper Fig 1 that leads to block
      duplication);
    - [Call_fn]: a call to a branchy out-of-line function.

    Every controlled quantity is a {!scaled_param}: a reference-input
    value, a training-input value, and an optional list of {e phases}
    that change the value mid-run under the reference input (this is how
    phase-change benchmarks like Mcf and startup-phase benchmarks like
    Gzip are realised).  Probabilities are expressed in per-mille. *)

type phase = { at : float; value : int }
(** Switch to [value] once the outer iteration counter passes
    [at *. iters] — phases are program-inherent behaviour changes, so
    they apply under {e both} inputs, scaled to each input's run length.
    Phases apply in list order. *)

type scaled_param = {
  base_ref : int;  (** pre-phase value under the reference input *)
  base_train : int;  (** pre-phase value under the training input *)
  phases : phase list;
}

type unit_spec =
  | Branch of { prob : scaled_param; straight : int; copies : int }
      (** [straight]: filler instructions on each arm; [copies]: number
          of distinct static instances. *)
  | Loop of { trip : scaled_param; jitter : int; body : int; copies : int }
      (** Trip count drawn uniformly from [mean - jitter, mean + jitter]
          (at least 1 iteration). *)
  | Nest2 of {
      outer : scaled_param;
      inner : scaled_param;
      jitter : int;
      body : int;
      copies : int;
    }
  | Call_fn of { prob : scaled_param; body : int; copies : int }
  | Loop_branch of {
      trip : scaled_param;
      jitter : int;
      prob : scaled_param;
      body : int;
      copies : int;
    }
      (** A loop whose body contains a probabilistic branch — the
          branch's [use] count grows [trip] times faster than the outer
          counter, which is how late-phase FP branches (Wupwise) are
          realised. *)

type t = {
  name : string;
  suite : [ `Int | `Fp ];
  units : unit_spec list;
  ref_iters : int;
  train_iters : int;
  ref_seed : int64;
  train_seed : int64;
}

type input = { data : (int * int) list; seed : int64 }

val const : int -> scaled_param
(** Same value for both inputs, no phases. *)

val prob : ?train:float -> ?phases:(float * float) list -> float -> scaled_param
(** Probabilities as floats in [0,1]; [train] defaults to the reference
    value; [phases] are [(fraction, new probability)]. *)

val trip : ?train:int -> ?phases:(float * int) list -> int -> scaled_param

val source : t -> string
(** The generated assembly text. *)

val describe : t -> string
(** Human-readable summary of the descriptor: one line per unit with its
    controlled quantities, phases and training divergence. *)

val build : t -> Tpdbt_isa.Program.t * input * input
(** [(program, ref_input, train_input)].  The program reads its outer
    iteration bound and all parameters from data memory, so the two
    inputs share the code image. *)

val apply_input : Tpdbt_isa.Program.t -> input -> Tpdbt_isa.Program.t
(** Program with the input's data bindings installed. *)
