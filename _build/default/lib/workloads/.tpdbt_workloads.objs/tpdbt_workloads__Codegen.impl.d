lib/workloads/codegen.ml: Buffer List Printf
