lib/workloads/suite.mli: Spec
