lib/workloads/spec.ml: Buffer Codegen List Option Printf String Tpdbt_isa
