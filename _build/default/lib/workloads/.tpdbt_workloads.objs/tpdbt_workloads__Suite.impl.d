lib/workloads/suite.ml: Int64 List Spec
