lib/workloads/codegen.mli:
