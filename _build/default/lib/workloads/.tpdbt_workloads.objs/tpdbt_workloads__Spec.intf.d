lib/workloads/spec.mli: Tpdbt_isa
