let scale = 100

let thresholds =
  [
    ("100", 1);
    ("200", 2);
    ("500", 5);
    ("1k", 10);
    ("2k", 20);
    ("5k", 50);
    ("10k", 100);
    ("20k", 200);
    ("40k", 400);
    ("80k", 800);
    ("160k", 1600);
    ("1M", 10000);
    ("4M", 40000);
  ]

let int_iters = 60_000
let int_train_iters = 20_000
let fp_iters = 2_500
let fp_train_iters = 800

let int_bench ~seed name units =
  {
    Spec.name;
    suite = `Int;
    units;
    ref_iters = int_iters;
    train_iters = int_train_iters;
    ref_seed = Int64.of_int (seed * 7919);
    train_seed = Int64.of_int ((seed * 7919) + 13);
  }

let fp_bench ~seed name units =
  {
    Spec.name;
    suite = `Fp;
    units;
    ref_iters = fp_iters;
    train_iters = fp_train_iters;
    ref_seed = Int64.of_int (seed * 104729);
    train_seed = Int64.of_int ((seed * 104729) + 29);
  }

open Spec

(* ------------------------------------------------------------------ *)
(* INT                                                                  *)
(* ------------------------------------------------------------------ *)

(* Gzip: strong startup phase — branches flip at ~8 executions (paper:
   between thresholds 500 and 1k), plus a later drift that only very
   large thresholds capture. *)
let gzip =
  int_bench ~seed:1 "gzip"
    [
      Branch
        { prob = prob 0.15 ~phases:[ (0.00005, 0.85) ]; straight = 4; copies = 4 };
      Branch
        { prob = prob 0.25 ~phases:[ (0.00005, 0.6) ]; straight = 4; copies = 2 };
      Branch
        { prob = prob 0.2 ~phases:[ (0.015, 0.8) ]; straight = 4; copies = 3 };
      Branch { prob = prob 0.9 ~train:0.85; straight = 4; copies = 3 };
      Loop { trip = trip 6; jitter = 2; body = 3; copies = 2 };
    ]

(* Vpr: loop trip class flips once loop bodies have run ~800 times
   (paper: classification incorrect until T >= 80k). *)
let vpr =
  int_bench ~seed:2 "vpr"
    [
      Loop
        {
          trip = trip 30 ~phases:[ (0.0002, 150) ];
          jitter = 0;
          body = 4;
          copies = 3;
        };
      Loop
        {
          trip = trip 120 ~phases:[ (0.0002, 6) ];
          jitter = 2;
          body = 4;
          copies = 2;
        };
      Branch { prob = prob 0.75 ~train:0.7; straight = 4; copies = 4 };
      Branch { prob = prob 0.45; straight = 4; copies = 2 };
    ]

(* Gcc (cc1): many blocks, moderate accuracy, loop classes also flip
   late. *)
let gcc =
  int_bench ~seed:3 "gcc"
    [
      Branch { prob = prob 0.65 ~train:0.5; straight = 3; copies = 6 };
      Branch { prob = prob 0.85; straight = 3; copies = 5 };
      Branch { prob = prob 0.35 ~phases:[ (0.01, 0.5) ]; straight = 3; copies = 4 };
      Loop
        {
          trip = trip 40 ~phases:[ (0.00025, 180) ];
          jitter = 0;
          body = 3;
          copies = 3;
        };
      Call_fn { prob = prob 0.8; body = 4; copies = 3 };
    ]

(* Mcf: phase changes early (paper 5k–10k) and late (paper 160k–4M) plus
   trip-count inversion: initially-high-trip loops go low and vice
   versa.  The nested unit reproduces Fig 1's shared inner block. *)
let mcf =
  int_bench ~seed:4 "mcf"
    [
      (* Branches at loop frequency with two phase changes: one at ~60
         executions (the paper's 5k-10k change) and one at ~15000 (its
         160k-4M change). *)
      Loop_branch
        {
          trip = trip 25;
          jitter = 2;
          prob = prob 0.85 ~train:0.6 ~phases:[ (0.00004, 0.25); (0.01, 0.6) ];
          body = 3;
          copies = 2;
        };
      (* A phase change so late (past 60% of the run) that even the
         largest threshold's accumulated window cannot represent the
         average: mcf stays mispredicted at 4M. *)
      Loop_branch
        {
          trip = trip 25;
          jitter = 2;
          prob = prob 0.4 ~train:0.5 ~phases:[ (0.00004, 0.75); (0.6, 0.15) ];
          body = 3;
          copies = 2;
        };
      Loop
        {
          trip = trip 150 ~phases:[ (0.00002, 4) ];
          jitter = 1;
          body = 3;
          copies = 2;
        };
      Loop
        {
          trip = trip 4 ~phases:[ (0.00002, 150) ];
          jitter = 1;
          body = 3;
          copies = 2;
        };
      Nest2
        {
          outer = trip 8;
          inner = trip 40 ~phases:[ (0.00005, 5) ];
          jitter = 2;
          body = 3;
          copies = 1;
        };
    ]

(* Crafty: branches sitting exactly on the 0.3 / 0.7 range boundaries —
   sampling noise keeps flipping their range at every threshold. *)
let crafty =
  int_bench ~seed:5 "crafty"
    [
      Branch { prob = prob 0.70; straight = 3; copies = 4 };
      Branch { prob = prob 0.30; straight = 3; copies = 4 };
      Branch { prob = prob 0.695; straight = 3; copies = 2 };
      Branch { prob = prob 0.305; straight = 3; copies = 2 };
      Branch { prob = prob 0.9 ~train:0.8; straight = 3; copies = 3 };
      Loop { trip = trip 12; jitter = 4; body = 3; copies = 2 };
    ]

(* Parser: accuracy improves steadily with T — several drifts spread
   across the run. *)
let parser =
  int_bench ~seed:6 "parser"
    [
      Branch
        {
          prob = prob 0.2 ~phases:[ (0.002, 0.45); (0.05, 0.6) ];
          straight = 3;
          copies = 4;
        };
      Branch
        { prob = prob 0.45 ~phases:[ (0.3, 0.15) ]; straight = 3; copies = 3 };
      Branch { prob = prob 0.75 ~train:0.7; straight = 3; copies = 3 };
      Loop { trip = trip 10; jitter = 3; body = 3; copies = 2 };
    ]

(* Eon: very stable reference behaviour, training input slightly off —
   the initial profile beats the training input from T = 100 on. *)
let eon =
  int_bench ~seed:7 "eon"
    [
      Branch { prob = prob 0.9 ~train:0.65; straight = 4; copies = 4 };
      Branch { prob = prob 0.15 ~train:0.4; straight = 4; copies = 3 };
      Branch { prob = prob 0.8 ~train:0.6; straight = 4; copies = 3 };
      Loop { trip = trip 20 ~train:9; jitter = 2; body = 4; copies = 2 };
    ]

(* Perlbmk: reference branches rock-stable; the training input exercises
   entirely different paths (paper: train mismatch ~50%). *)
let perlbmk =
  int_bench ~seed:8 "perlbmk"
    [
      Branch { prob = prob 0.95 ~train:0.25; straight = 8; copies = 5 };
      Branch { prob = prob 0.05 ~train:0.75; straight = 8; copies = 4 };
      Branch { prob = prob 0.9 ~train:0.4; straight = 8; copies = 3 };
      Loop { trip = trip 6 ~train:45; jitter = 1; body = 3; copies = 1 };
    ]

(* Gap: like parser, steady improvement with T. *)
let gap =
  int_bench ~seed:9 "gap"
    [
      Branch
        {
          prob = prob 0.25 ~phases:[ (0.005, 0.45); (0.15, 0.6) ];
          straight = 3;
          copies = 4;
        };
      Branch
        { prob = prob 0.5 ~phases:[ (0.02, 0.8) ]; straight = 3; copies = 3 };
      Branch { prob = prob 0.88; straight = 3; copies = 3 };
      Loop { trip = trip 25; jitter = 5; body = 3; copies = 2 };
    ]

(* Vortex: call-heavy, flat and reasonably accurate. *)
let vortex =
  int_bench ~seed:10 "vortex"
    [
      Call_fn { prob = prob 0.82; body = 4; copies = 4 };
      Call_fn { prob = prob 0.25 ~train:0.35; body = 4; copies = 3 };
      Branch { prob = prob 0.75; straight = 3; copies = 4 };
      Loop { trip = trip 8; jitter = 2; body = 3; copies = 2 };
    ]

(* Bzip2: stable, initial profile better than train from the start. *)
let bzip2 =
  int_bench ~seed:11 "bzip2"
    [
      Branch { prob = prob 0.85 ~train:0.6; straight = 4; copies = 4 };
      Branch { prob = prob 0.2 ~train:0.45; straight = 4; copies = 3 };
      Loop { trip = trip 30 ~train:12; jitter = 3; body = 4; copies = 3 };
      Branch { prob = prob 0.55; straight = 4; copies = 2 };
    ]

(* Twolf: stable with mild training skew. *)
let twolf =
  int_bench ~seed:12 "twolf"
    [
      Branch { prob = prob 0.78 ~train:0.55; straight = 4; copies = 4 };
      Branch { prob = prob 0.4 ~train:0.3; straight = 4; copies = 3 };
      Branch { prob = prob 0.95; straight = 4; copies = 3 };
      Loop { trip = trip 18; jitter = 3; body = 3; copies = 2 };
    ]

let int_benchmarks =
  [ gzip; vpr; gcc; mcf; crafty; parser; eon; perlbmk; gap; vortex; bzip2; twolf ]

(* ------------------------------------------------------------------ *)
(* FP                                                                   *)
(* ------------------------------------------------------------------ *)

(* Wupwise: a branch deep inside a hot loop changes phase once the loop
   body has run ~30k times (paper: mismatch ~20% until T reaches 1M). *)
let wupwise =
  fp_bench ~seed:21 "wupwise"
    [
      Loop_branch
        {
          trip = trip 120;
          jitter = 4;
          prob = prob 0.3 ~phases:[ (0.01, 0.9) ];
          body = 3;
          copies = 2;
        };
      Loop { trip = trip 200; jitter = 5; body = 4; copies = 2 };
      Branch { prob = prob 0.9; straight = 4; copies = 2 };
    ]

let stable_fp ~seed name ~trips ~branch_prob ~train_delta =
  fp_bench ~seed name
    [
      Loop { trip = trip (List.nth trips 0); jitter = 3; body = 4; copies = 2 };
      Loop { trip = trip (List.nth trips 1); jitter = 4; body = 4; copies = 2 };
      Nest2
        {
          outer = trip 10;
          inner = trip (List.nth trips 2);
          jitter = 3;
          body = 3;
          copies = 1;
        };
      (* A boundary-condition branch inside a hot loop whose behaviour
         shifts under the training input (different problem size): this
         is what makes Sd.BP(train) visible for FP while the reference
         run itself is rock-stable. *)
      Loop_branch
        {
          trip = trip 60;
          jitter = 3;
          prob = prob branch_prob ~train:(branch_prob -. train_delta -. 0.1);
          body = 3;
          copies = 1;
        };
      Branch
        {
          prob = prob branch_prob ~train:(branch_prob -. train_delta);
          straight = 4;
          copies = 2;
        };
    ]

let swim = stable_fp ~seed:22 "swim" ~trips:[ 300; 150; 80 ] ~branch_prob:0.92 ~train_delta:0.1
let mgrid = stable_fp ~seed:23 "mgrid" ~trips:[ 250; 120; 60 ] ~branch_prob:0.9 ~train_delta:0.08
let applu = stable_fp ~seed:24 "applu" ~trips:[ 180; 220; 100 ] ~branch_prob:0.88 ~train_delta:0.1
let mesa = stable_fp ~seed:25 "mesa" ~trips:[ 90; 60; 40 ] ~branch_prob:0.8 ~train_delta:0.08
let galgel = stable_fp ~seed:26 "galgel" ~trips:[ 320; 200; 120 ] ~branch_prob:0.93 ~train_delta:0.08
let art = stable_fp ~seed:27 "art" ~trips:[ 150; 100; 70 ] ~branch_prob:0.85 ~train_delta:0.06
let equake = stable_fp ~seed:28 "equake" ~trips:[ 200; 130; 90 ] ~branch_prob:0.87 ~train_delta:0.05
let facerec = stable_fp ~seed:29 "facerec" ~trips:[ 170; 110; 60 ] ~branch_prob:0.89 ~train_delta:0.04
let ammp = stable_fp ~seed:30 "ammp" ~trips:[ 140; 95; 55 ] ~branch_prob:0.84 ~train_delta:0.07

(* Lucas / Apsi: stable reference behaviour but a training input that
   predicts it badly (paper: train mismatch 25% / 20%). *)
let lucas =
  fp_bench ~seed:31 "lucas"
    [
      Loop { trip = trip 260 ~train:25; jitter = 3; body = 4; copies = 2 };
      Branch { prob = prob 0.9 ~train:0.35; straight = 4; copies = 3 };
      Branch { prob = prob 0.2 ~train:0.65; straight = 4; copies = 2 };
      Loop { trip = trip 120; jitter = 4; body = 4; copies = 1 };
    ]

let apsi =
  fp_bench ~seed:32 "apsi"
    [
      Loop { trip = trip 180 ~train:30; jitter = 4; body = 4; copies = 2 };
      Branch { prob = prob 0.85 ~train:0.45; straight = 4; copies = 3 };
      Branch { prob = prob 0.75; straight = 4; copies = 2 };
      Nest2
        { outer = trip 12; inner = trip 70; jitter = 2; body = 3; copies = 1 };
    ]

let fma3d = stable_fp ~seed:33 "fma3d" ~trips:[ 160; 105; 75 ] ~branch_prob:0.86 ~train_delta:0.05
let sixtrack = stable_fp ~seed:34 "sixtrack" ~trips:[ 280; 190; 110 ] ~branch_prob:0.91 ~train_delta:0.04

let fp_benchmarks =
  [
    wupwise; swim; mgrid; applu; mesa; galgel; art; equake; facerec; ammp;
    lucas; fma3d; sixtrack; apsi;
  ]

let all = int_benchmarks @ fp_benchmarks
let find name = List.find_opt (fun b -> b.Spec.name = name) all
let names = List.map (fun b -> b.Spec.name) all
