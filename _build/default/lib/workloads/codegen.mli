(** Assembly-emission context for the synthetic benchmark generator.

    The generator produces G32 assembly text plus a parameter table:
    every input-dependent quantity (branch-probability thresholds, loop
    trip means, phase-switch boundaries) is read by the generated code
    from a data-memory cell, so the same program runs with a reference
    or a training input purely by changing the initial data bindings.

    Register conventions of generated code:
    - [r0] constant zero (parameter/scratch base),
    - [r1] outer-iteration counter, [r2] outer bound,
    - [r3]–[r9] unit-local scratch,
    - [r10]–[r13] live accumulators (reported via [out] at the end). *)

type t

val create : unit -> t
val emit : t -> string -> unit
(** Append one line of assembly. *)

val emitf : t -> ('a, unit, string, unit) format4 -> 'a
val fresh_label : t -> string -> string
(** [fresh_label t "sel"] returns a unique label like [sel_17]. *)

val param : t -> ref_value:int -> train_value:int -> int
(** Allocate a parameter cell; returns its data-memory address. *)

val scratch_addr : t -> int
(** Allocate a scratch data cell (disjoint from parameters). *)

val params : t -> (int * int * int) list
(** [(address, ref value, train value)] for every allocated parameter. *)

val contents : t -> string
(** The assembly text emitted so far. *)

val filler : t -> int -> unit
(** Emit [n] straight-line filler instructions (mixed ALU and memory
    traffic on the accumulator registers). *)
