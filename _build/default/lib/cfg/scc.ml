(* Iterative Tarjan SCC. *)
let compute g =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !next_index;
    Hashtbl.replace lowlink v !next_index;
    incr next_index;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Graph.succs g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter
    (fun v -> if not (Hashtbl.mem index v) then strongconnect v)
    (Graph.nodes g);
  List.rev !components

let is_trivial g = function
  | [ n ] -> not (Graph.mem_edge g n n)
  | [] | _ :: _ :: _ -> false
