(** Dominator trees (Cooper–Harvey–Kennedy iterative algorithm).

    Used to identify back edges (and hence natural loops) in discovered
    control-flow graphs. *)

type t

val compute : Graph.t -> root:int -> t
(** Only nodes reachable from [root] are considered. *)

val idom : t -> int -> int option
(** Immediate dominator; [None] for the root or unreachable nodes. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does [a] dominate [b]?  Reflexive.  [false] if
    either node is unreachable. *)
