type t = {
  succs : (int, int list ref) Hashtbl.t;
  preds : (int, int list ref) Hashtbl.t;
  mutable nodes_rev : int list;
  mutable edge_count : int;
}

let create () =
  {
    succs = Hashtbl.create 16;
    preds = Hashtbl.create 16;
    nodes_rev = [];
    edge_count = 0;
  }

let mem_node t n = Hashtbl.mem t.succs n

let add_node t n =
  if not (mem_node t n) then begin
    Hashtbl.replace t.succs n (ref []);
    Hashtbl.replace t.preds n (ref []);
    t.nodes_rev <- n :: t.nodes_rev
  end

let adjacency table n = match Hashtbl.find_opt table n with
  | Some l -> !l
  | None -> []

let mem_edge t a b = List.mem b (adjacency t.succs a)

let add_edge t a b =
  add_node t a;
  add_node t b;
  if not (mem_edge t a b) then begin
    let sa = Hashtbl.find t.succs a and pb = Hashtbl.find t.preds b in
    sa := b :: !sa;
    pb := a :: !pb;
    t.edge_count <- t.edge_count + 1
  end

let of_edges edges =
  let t = create () in
  List.iter (fun (a, b) -> add_edge t a b) edges;
  t

let succs t n = List.rev (adjacency t.succs n)
let preds t n = List.rev (adjacency t.preds n)
let nodes t = List.rev t.nodes_rev
let node_count t = List.length t.nodes_rev
let edge_count t = t.edge_count

let iter_edges t f =
  List.iter (fun a -> List.iter (fun b -> f a b) (succs t a)) (nodes t)

let copy t =
  let fresh = create () in
  List.iter (add_node fresh) (nodes t);
  iter_edges t (add_edge fresh);
  fresh

let remove_edge t a b =
  if mem_edge t a b then begin
    let sa = Hashtbl.find t.succs a and pb = Hashtbl.find t.preds b in
    sa := List.filter (fun x -> x <> b) !sa;
    pb := List.filter (fun x -> x <> a) !pb;
    t.edge_count <- t.edge_count - 1
  end
