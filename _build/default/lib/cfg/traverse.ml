let postorder g ~root =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  (* Explicit stack with a "children pending" marker to avoid deep
     recursion on long traces. *)
  let rec visit n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.replace visited n ();
      List.iter visit (Graph.succs g n);
      order := n :: !order
    end
  in
  if Graph.mem_node g root then visit root;
  List.rev !order

let reverse_postorder g ~root = List.rev (postorder g ~root)

let reachable g ~root =
  let visited = Hashtbl.create 16 in
  let rec visit n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.replace visited n ();
      List.iter visit (Graph.succs g n)
    end
  in
  if Graph.mem_node g root then visit root;
  visited

let topological_sort g =
  let nodes = Graph.nodes g in
  let indegree = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace indegree n (List.length (Graph.preds g n))) nodes;
  let ready = Queue.create () in
  List.iter (fun n -> if Hashtbl.find indegree n = 0 then Queue.add n ready) nodes;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty ready) do
    let n = Queue.pop ready in
    order := n :: !order;
    incr count;
    List.iter
      (fun s ->
        let d = Hashtbl.find indegree s - 1 in
        Hashtbl.replace indegree s d;
        if d = 0 then Queue.add s ready)
      (Graph.succs g n)
  done;
  if !count = List.length nodes then Ok (List.rev !order)
  else Error "topological_sort: graph has a cycle"

let is_acyclic g = Result.is_ok (topological_sort g)
