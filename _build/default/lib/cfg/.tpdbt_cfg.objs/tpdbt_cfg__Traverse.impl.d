lib/cfg/traverse.ml: Graph Hashtbl List Queue Result
