lib/cfg/graph.ml: Hashtbl List
