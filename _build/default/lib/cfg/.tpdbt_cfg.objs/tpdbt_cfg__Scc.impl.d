lib/cfg/scc.ml: Graph Hashtbl List
