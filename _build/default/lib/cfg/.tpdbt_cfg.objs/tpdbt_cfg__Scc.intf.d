lib/cfg/scc.mli: Graph
