lib/cfg/graph.mli:
