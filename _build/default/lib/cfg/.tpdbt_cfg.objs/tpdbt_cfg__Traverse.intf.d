lib/cfg/traverse.mli: Graph Hashtbl
