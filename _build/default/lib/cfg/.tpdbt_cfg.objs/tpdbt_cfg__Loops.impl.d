lib/cfg/loops.ml: Dominators Graph Hashtbl List Traverse
