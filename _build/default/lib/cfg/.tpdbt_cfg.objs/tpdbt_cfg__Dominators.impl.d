lib/cfg/dominators.ml: Graph Hashtbl List Traverse
