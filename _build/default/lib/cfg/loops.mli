(** Natural-loop detection from back edges.

    A back edge is an edge [t -> h] where [h] dominates [t]; the natural
    loop of that edge is [h] plus all nodes that reach [t] without
    passing through [h]. *)

type loop = {
  header : int;
  body : int list;  (** includes the header *)
  back_edges : (int * int) list;  (** latch -> header *)
}

val detect : Graph.t -> root:int -> loop list
(** One entry per loop header (back edges sharing a header are merged),
    ordered by header node id. *)

val back_edges : Graph.t -> root:int -> (int * int) list
