type loop = {
  header : int;
  body : int list;
  back_edges : (int * int) list;
}

let back_edges g ~root =
  let dom = Dominators.compute g ~root in
  let reach = Traverse.reachable g ~root in
  let edges = ref [] in
  List.iter
    (fun n ->
      if Hashtbl.mem reach n then
        List.iter
          (fun s -> if Dominators.dominates dom s n then edges := (n, s) :: !edges)
          (Graph.succs g n))
    (Graph.nodes g);
  List.rev !edges

(* Natural loop of back edge (latch, header): header + everything that
   reaches latch backwards without going through header. *)
let natural_loop g ~header ~latch =
  let body = Hashtbl.create 8 in
  Hashtbl.replace body header ();
  let rec grow n =
    if not (Hashtbl.mem body n) then begin
      Hashtbl.replace body n ();
      List.iter grow (Graph.preds g n)
    end
  in
  grow latch;
  body

let detect g ~root =
  let edges = back_edges g ~root in
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let existing =
        match Hashtbl.find_opt by_header header with Some l -> l | None -> []
      in
      Hashtbl.replace by_header header ((latch, header) :: existing))
    edges;
  Hashtbl.fold
    (fun header back_edges acc ->
      let body = Hashtbl.create 8 in
      List.iter
        (fun (latch, _) ->
          Hashtbl.iter
            (fun n () -> Hashtbl.replace body n ())
            (natural_loop g ~header ~latch))
        back_edges;
      let members = Hashtbl.fold (fun n () l -> n :: l) body [] in
      { header; body = List.sort compare members; back_edges } :: acc)
    by_header []
  |> List.sort (fun a b -> compare a.header b.header)
