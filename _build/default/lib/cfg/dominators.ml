type t = { root : int; idom : (int, int) Hashtbl.t; rpo_index : (int, int) Hashtbl.t }

(* Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm". *)
let compute g ~root =
  let rpo = Traverse.reverse_postorder g ~root in
  let rpo_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace rpo_index n i) rpo;
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom root root;
  let intersect a b =
    let rec climb a b =
      if a = b then a
      else
        let ia = Hashtbl.find rpo_index a and ib = Hashtbl.find rpo_index b in
        if ia > ib then climb (Hashtbl.find idom a) b
        else climb a (Hashtbl.find idom b)
    in
    climb a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if n <> root then begin
          let processed_preds =
            List.filter
              (fun p -> Hashtbl.mem idom p && Hashtbl.mem rpo_index p)
              (Graph.preds g n)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if Hashtbl.find_opt idom n <> Some new_idom then begin
                Hashtbl.replace idom n new_idom;
                changed := true
              end
        end)
      rpo
  done;
  { root; idom; rpo_index }

let idom t n =
  if n = t.root then None
  else Hashtbl.find_opt t.idom n

let dominates t a b =
  if not (Hashtbl.mem t.rpo_index a && Hashtbl.mem t.rpo_index b) then false
  else
    let rec climb n = if n = a then true else if n = t.root then a = t.root else climb (Hashtbl.find t.idom n) in
    climb b
