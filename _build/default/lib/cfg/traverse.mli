(** Graph traversals: depth-first order, reverse postorder, reachability,
    and topological sorting of acyclic graphs. *)

val postorder : Graph.t -> root:int -> int list
(** Depth-first postorder of the nodes reachable from [root]. *)

val reverse_postorder : Graph.t -> root:int -> int list

val reachable : Graph.t -> root:int -> (int, unit) Hashtbl.t
(** Set of nodes reachable from [root] (including [root]). *)

val topological_sort : Graph.t -> (int list, string) result
(** Kahn's algorithm over the whole graph; [Error] if the graph has a
    cycle. *)

val is_acyclic : Graph.t -> bool
