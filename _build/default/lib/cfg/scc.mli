(** Strongly connected components (Tarjan, iterative). *)

val compute : Graph.t -> int list list
(** Components in reverse topological order (callees before callers);
    singleton components without a self edge are trivial. *)

val is_trivial : Graph.t -> int list -> bool
(** True for a singleton component whose node has no self edge. *)
