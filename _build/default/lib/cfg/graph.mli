(** Directed graphs over integer node identifiers.

    A thin mutable adjacency structure used for control-flow graphs:
    region-local CFGs, NAVEP normalisation graphs, and workload
    skeletons.  Nodes are arbitrary non-negative integers; parallel
    edges are collapsed. *)

type t

val create : unit -> t
val add_node : t -> int -> unit
val add_edge : t -> int -> int -> unit
(** Adds both endpoints as nodes. *)

val of_edges : (int * int) list -> t
val mem_node : t -> int -> bool
val mem_edge : t -> int -> int -> bool
val succs : t -> int -> int list
(** Successors in insertion order; [] for unknown nodes. *)

val preds : t -> int -> int list
val nodes : t -> int list
(** All nodes in insertion order. *)

val node_count : t -> int
val edge_count : t -> int
val iter_edges : t -> (int -> int -> unit) -> unit
val copy : t -> t

val remove_edge : t -> int -> int -> unit
(** No-op if the edge is absent. *)
