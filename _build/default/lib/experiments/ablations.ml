module Engine = Tpdbt_dbt.Engine
module Perf_model = Tpdbt_dbt.Perf_model
module Metrics = Tpdbt_profiles.Metrics
module Suite = Tpdbt_workloads.Suite

let default_benchmarks = [ "gzip"; "mcf"; "perlbmk"; "crafty"; "swim"; "wupwise" ]

(* Threshold: the paper's sweet spot, label 2k (scaled 20). *)
let sweet_spot = 20

let metric_columns =
  [ "Sd.BP"; "Sd.CP"; "Sd.LP"; "side-exit rate"; "dissolved"; "cycles (rel)" ]

let resolve names =
  List.filter_map
    (fun name ->
      match Suite.find name with
      | Some b -> Some b
      | None -> invalid_arg ("Ablations: unknown benchmark " ^ name))
    names

(* Run every (variant, benchmark) pair; produce one row per variant with
   benchmark-averaged metrics and cycles relative to the first variant. *)
let study ~title ~variants ~benchmarks =
  let benches = resolve benchmarks in
  let mean values =
    match values with
    | [] -> None
    | l -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))
  in
  (* One AVEP run per benchmark, shared across variants. *)
  let aveps = List.map (fun b -> (b, Runner.run_avep b)) benches in
  let measured =
    List.map
      (fun (name, config) ->
        let per_bench =
          List.map
            (fun (bench, avep) ->
              let result = Runner.run_ref bench ~config in
              let comparison =
                Metrics.compare_snapshots ~inip:result.Engine.snapshot
                  ~avep:avep.Engine.snapshot
              in
              (result, avep, comparison))
            aveps
        in
        (name, per_bench))
      variants
  in
  let base_cycles =
    match measured with
    | (_, per_bench) :: _ ->
        List.map
          (fun ((result : Engine.result), _, _) ->
            result.Engine.counters.Perf_model.cycles)
          per_bench
    | [] -> []
  in
  List.fold_left
    (fun table (name, per_bench) ->
      let comparisons : Metrics.comparison list =
        List.map (fun (_, _, c) -> c) per_bench
      in
      let results = List.map (fun (r, _, _) -> r) per_bench in
      let sd_bp =
        mean (List.map (fun (c : Metrics.comparison) -> c.Metrics.sd_bp) comparisons)
      in
      let sd_cp = mean (List.map (fun c -> c.Metrics.sd_cp) comparisons) in
      let sd_lp = mean (List.map (fun c -> c.Metrics.sd_lp) comparisons) in
      let side_exit_rate =
        mean
          (List.map
             (fun (r : Engine.result) ->
               let entries = r.Engine.counters.Perf_model.region_entries in
               if entries = 0 then 0.0
               else
                 float_of_int r.Engine.counters.Perf_model.side_exits
                 /. float_of_int entries)
             results)
      in
      let dissolved =
        mean
          (List.map
             (fun (r : Engine.result) ->
               float_of_int r.Engine.counters.Perf_model.regions_dissolved)
             results)
      in
      let rel_cycles =
        mean
          (List.map2
             (fun (r : Engine.result) base ->
               let c = r.Engine.counters.Perf_model.cycles in
               if c > 0.0 then base /. c else 0.0)
             results base_cycles)
      in
      Table.add_row table name
        [ sd_bp; sd_cp; sd_lp; side_exit_rate; dissolved; rel_cycles ])
    (Table.make ~title ~columns:metric_columns)
    measured

let base_config = Engine.config ~threshold:sweet_spot ()

let region_formation ?(benchmarks = default_benchmarks) () =
  study
    ~title:
      "Ablation: region formation mechanisms (threshold = paper 2k; cycles \
       relative to the full former)"
    ~variants:
      [
        ("full former", base_config);
        ("no duplication", { base_config with Engine.enable_duplication = false });
        ("no diamonds", { base_config with Engine.enable_diamonds = false });
        ("inlined calls", { base_config with Engine.regions_across_calls = true });
        ("singleton regions", { base_config with Engine.max_region_slots = 1 });
      ]
    ~benchmarks

let min_branch_prob ?(benchmarks = default_benchmarks) () =
  study
    ~title:
      "Ablation: minimum branch probability for trace growing (paper uses \
       0.7)"
    ~variants:
      (List.map
         (fun p ->
           ( Printf.sprintf "min prob %.2f" p,
             { base_config with Engine.min_branch_prob = p } ))
         [ 0.5; 0.6; 0.7; 0.85; 0.95 ])
    ~benchmarks

let pool_trigger ?(benchmarks = default_benchmarks) () =
  study
    ~title:"Ablation: candidate-pool trigger size (IA32EL-style batching)"
    ~variants:
      (List.map
         (fun n ->
           (Printf.sprintf "pool %d" n, { base_config with Engine.pool_trigger = n }))
         [ 1; 4; 16; 64; 256 ])
    ~benchmarks

let scheduling ?(benchmarks = default_benchmarks) () =
  study
    ~title:
      "Ablation: per-block vs trace scheduling of optimised regions \
       (latency overlap across region edges)"
    ~variants:
      [
        ("per-block", base_config);
        ("trace-pipelined", { base_config with Engine.trace_scheduling = true });
      ]
    ~benchmarks

let adaptive ?(benchmarks = [ "gzip"; "mcf"; "wupwise" ]) () =
  study
    ~title:
      "Extension: adaptive region dissolution on phase-changing benchmarks \
       (paper \xc2\xa75 future work)"
    ~variants:
      [
        ("fixed two-phase", base_config);
        ("adaptive", { base_config with Engine.adaptive = true });
        ( "adaptive, eager",
          {
            base_config with
            Engine.adaptive = true;
            reopt_side_exit_rate = 0.15;
            reopt_min_entries = 32;
          } );
      ]
    ~benchmarks

let all ?benchmarks () =
  [
    ("region-formation", region_formation ?benchmarks ());
    ("min-branch-prob", min_branch_prob ?benchmarks ());
    ("pool-trigger", pool_trigger ?benchmarks ());
    ("scheduling", scheduling ?benchmarks ());
    ("adaptive", adaptive ());
  ]
