lib/experiments/ablations.ml: List Printf Runner Table Tpdbt_dbt Tpdbt_profiles Tpdbt_workloads
