lib/experiments/table.mli:
