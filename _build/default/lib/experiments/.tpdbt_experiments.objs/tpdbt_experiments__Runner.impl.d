lib/experiments/runner.ml: Format List Tpdbt_dbt Tpdbt_profiles Tpdbt_vm Tpdbt_workloads
