lib/experiments/table.ml: Buffer List Printf String
