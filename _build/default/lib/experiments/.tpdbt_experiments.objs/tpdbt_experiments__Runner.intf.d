lib/experiments/runner.mli: Tpdbt_dbt Tpdbt_profiles Tpdbt_workloads
