lib/experiments/figures.ml: List Runner Table Tpdbt_dbt Tpdbt_profiles Tpdbt_workloads
