lib/experiments/figures.mli: Runner Table
