(** Plain-text and CSV rendering of experiment tables.

    A table is a titled grid: one label column followed by one float
    column per series point (e.g. per retranslation threshold). *)

type t = {
  title : string;
  columns : string list;  (** column headers, excluding the label column *)
  rows : (string * float option list) list;
      (** row label, one optional value per column ([None] renders
          blank) *)
}

val make : title:string -> columns:string list -> t
val add_row : t -> string -> float option list -> t
(** Appends; pads or truncates the values to the column count. *)

val render : ?precision:int -> t -> string
(** Aligned plain text (default 4 decimal places). *)

val to_csv : t -> string
val print : ?precision:int -> t -> unit
