(** Ablation studies for the design choices DESIGN.md calls out.

    Each study fixes the retranslation threshold at the paper's sweet
    spot (label 2k, scaled 20) and varies one mechanism of the
    translator, reporting — averaged over a set of benchmarks —
    the accuracy metrics, the side-exit rate, and the performance-model
    cycles relative to the study's first variant. *)

val default_benchmarks : string list
(** gzip, mcf, perlbmk, crafty (INT) and swim, wupwise (FP): a mix of
    stable, phase-changing and boundary-straddling behaviour. *)

val region_formation : ?benchmarks:string list -> unit -> Table.t
(** Variants: full former / no tail duplication / no hammock diamonds /
    regions inlined across calls / singleton regions only (max 1 slot). *)

val min_branch_prob : ?benchmarks:string list -> unit -> Table.t
(** The trace-grower's "minimum branch probability": 0.5 / 0.6 / 0.7
    (the paper's [5]) / 0.85 / 0.95. *)

val pool_trigger : ?benchmarks:string list -> unit -> Table.t
(** Candidate-pool size that triggers the optimisation phase:
    1 / 4 / 16 / 64 / 256. *)

val scheduling : ?benchmarks:string list -> unit -> Table.t
(** Per-block scheduling of region members vs trace scheduling with
    cross-edge latency overlap. *)

val adaptive : ?benchmarks:string list -> unit -> Table.t
(** Fixed two-phase translation vs adaptive region dissolution
    (side-exit monitoring, the paper's §5 proposal), on the
    phase-changing benchmarks where it should matter. *)

val all : ?benchmarks:string list -> unit -> (string * Table.t) list
