type t = {
  title : string;
  columns : string list;
  rows : (string * float option list) list;
}

let make ~title ~columns = { title; columns; rows = [] }

let add_row t label values =
  let n = List.length t.columns in
  let len = List.length values in
  let values =
    if len = n then values
    else if len < n then values @ List.init (n - len) (fun _ -> None)
    else List.filteri (fun i _ -> i < n) values
  in
  { t with rows = t.rows @ [ (label, values) ] }

let render ?(precision = 4) t =
  let cell = function
    | None -> ""
    | Some v -> Printf.sprintf "%.*f" precision v
  in
  let label_width =
    List.fold_left
      (fun acc (label, _) -> max acc (String.length label))
      (String.length "") t.rows
  in
  let col_widths =
    List.map
      (fun header ->
        List.fold_left
          (fun acc (_, values) ->
            List.fold_left (fun a v -> max a (String.length (cell v))) acc values)
          (String.length header) t.rows
        |> max (String.length header))
      t.columns
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length t.title) '-');
  Buffer.add_char buf '\n';
  let pad width s = Printf.sprintf "%*s" width s in
  Buffer.add_string buf (pad label_width "");
  List.iter2
    (fun header width ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (pad width header))
    t.columns col_widths;
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, values) ->
      Buffer.add_string buf (pad label_width label);
      List.iteri
        (fun i v ->
          let width = List.nth col_widths i in
          Buffer.add_string buf "  ";
          Buffer.add_string buf (pad width (cell v)))
        values;
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (escape_csv t.title);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (String.concat "," ("" :: List.map escape_csv t.columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, values) ->
      let cells =
        List.map
          (function None -> "" | Some v -> Printf.sprintf "%.6f" v)
          values
      in
      Buffer.add_string buf (String.concat "," (escape_csv label :: cells));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let print ?precision t = print_string (render ?precision t)
