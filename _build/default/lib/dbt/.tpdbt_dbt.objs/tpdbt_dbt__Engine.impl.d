lib/dbt/engine.ml: Array Block_map Hashtbl List Optimizer Perf_model Region Region_former Snapshot Tpdbt_isa Tpdbt_vm
