lib/dbt/optimizer.ml: Array Block_map Hashtbl Ir List Region Tpdbt_isa
