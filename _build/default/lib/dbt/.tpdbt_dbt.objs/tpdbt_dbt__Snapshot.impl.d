lib/dbt/snapshot.ml: Array Block_map List Region
