lib/dbt/engine.mli: Block_map Perf_model Snapshot Tpdbt_isa Tpdbt_vm
