lib/dbt/region.ml: Array Format Hashtbl List Tpdbt_cfg
