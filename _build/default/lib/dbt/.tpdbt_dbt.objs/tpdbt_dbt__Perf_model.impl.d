lib/dbt/perf_model.ml:
