lib/dbt/block_map.mli: Format Tpdbt_isa
