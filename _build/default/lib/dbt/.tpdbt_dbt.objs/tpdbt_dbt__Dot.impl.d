lib/dbt/dot.ml: Array Block_map Buffer List Printf Region
