lib/dbt/region_former.mli: Block_map Region
