lib/dbt/ir.ml: Array Format List Tpdbt_isa
