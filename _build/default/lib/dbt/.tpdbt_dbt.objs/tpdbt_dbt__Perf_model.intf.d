lib/dbt/perf_model.mli:
