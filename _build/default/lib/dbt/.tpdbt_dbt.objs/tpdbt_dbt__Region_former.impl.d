lib/dbt/region_former.ml: Array Block_map Hashtbl List Region
