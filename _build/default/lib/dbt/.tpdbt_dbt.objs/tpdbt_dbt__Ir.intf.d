lib/dbt/ir.mli: Format Tpdbt_isa
