lib/dbt/optimizer.mli: Block_map Ir Region Tpdbt_isa
