lib/dbt/block_map.ml: Array Format Hashtbl Printf Tpdbt_isa
