lib/dbt/snapshot.mli: Block_map Region
