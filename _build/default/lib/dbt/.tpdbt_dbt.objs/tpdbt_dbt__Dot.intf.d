lib/dbt/dot.mli: Block_map Region
