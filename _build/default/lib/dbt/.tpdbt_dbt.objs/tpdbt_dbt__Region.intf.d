lib/dbt/region.mli: Format
