type config = {
  threshold : int;
  min_branch_prob : float;
  max_slots : int;
  enable_duplication : bool;
  enable_diamonds : bool;
  across_calls : bool;
}

let default_config =
  {
    threshold = 0;
    min_branch_prob = 0.7;
    max_slots = 16;
    enable_duplication = true;
    enable_diamonds = true;
    across_calls = false;
  }

type owner = Unowned | Owned

(* State of one growing region. *)
type growing = {
  mutable slots_rev : int list;
  mutable nslots : int;
  mutable edges : Region.edge list;
  mutable back_edges : Region.edge list;
  mutable kind : Region.kind;
  seen : (int, unit) Hashtbl.t;  (* block ids already used as slots *)
}

let branch_prob ~use ~taken block =
  if use.(block) <= 0 then 0.5
  else float_of_int taken.(block) /. float_of_int use.(block)

let form config ~block_map ~use ~taken ~owner ~seeds ~first_id =
  let taken_this_round = Hashtbl.create 16 in
  let hot block = use.(block) >= config.threshold in
  (* A block may join a growing region if it is hot and either unowned
     (fresh) or duplicable. *)
  let eligible block =
    hot block
    &&
    let owned =
      Hashtbl.mem taken_this_round block
      || match owner block with Owned -> true | Unowned -> false
    in
    (not owned) || config.enable_duplication
  in
  let unconditional_successor block =
    match (Block_map.block block_map block).Block_map.terminator with
    | Block_map.Goto dst | Block_map.Fallthrough dst -> Some dst
    | Block_map.Cond _ | Block_map.Call_to _ | Block_map.Return
    | Block_map.Stop ->
        None
  in
  let grow seed =
    let g =
      {
        slots_rev = [ seed ];
        nslots = 1;
        edges = [];
        back_edges = [];
        kind = Region.Trace;
        seen = Hashtbl.create 8;
      }
    in
    Hashtbl.replace g.seen seed ();
    let add_slot block =
      let slot = g.nslots in
      g.slots_rev <- block :: g.slots_rev;
      g.nslots <- g.nslots + 1;
      Hashtbl.replace g.seen block ();
      slot
    in
    let add_edge src dst role = g.edges <- { Region.src; dst; role } :: g.edges in
    (* Try to extend from [cur_slot] (holding [cur_block]) along an edge
       with [role] to [dst].  Returns the new slot to continue from, or
       None when growth stops. *)
    let extend cur_slot dst role =
      if dst = seed then begin
        g.back_edges <- { Region.src = cur_slot; dst = 0; role } :: g.back_edges;
        g.kind <- Region.Loop;
        None
      end
      else if Hashtbl.mem g.seen dst then None
      else if g.nslots >= config.max_slots then None
      else if not (eligible dst) then None
      else begin
        let slot = add_slot dst in
        add_edge cur_slot slot role;
        Some slot
      end
    in
    let rec step cur_slot cur_block =
      let b = Block_map.block block_map cur_block in
      match b.Block_map.terminator with
      | Block_map.Return | Block_map.Stop -> ()
      | Block_map.Call_to { callee; retsite = _ } ->
          if config.across_calls then follow cur_slot callee Region.Always
      | Block_map.Goto dst | Block_map.Fallthrough dst -> follow cur_slot dst Region.Always
      | Block_map.Cond { taken = t_dst; fallthrough = f_dst } ->
          let p = branch_prob ~use ~taken cur_block in
          if p >= config.min_branch_prob then follow cur_slot t_dst Region.Taken
          else if 1.0 -. p >= config.min_branch_prob then
            follow cur_slot f_dst Region.Not_taken
          else if config.enable_diamonds then try_diamond cur_slot t_dst f_dst
          else ()
    and follow cur_slot dst role =
      match extend cur_slot dst role with
      | Some slot -> step slot dst
      | None -> ()
    and try_diamond cur_slot t_dst f_dst =
      (* Grow a hammock: cur -> {t_dst, f_dst} -> join, then continue
         from the join block. *)
      let rejoin =
        match
          (unconditional_successor t_dst, unconditional_successor f_dst)
        with
        | Some jt, Some jf when jt = jf -> Some jt
        | Some _, Some _ | Some _, None | None, Some _ | None, None -> None
      in
      match rejoin with
      | None -> ()
      | Some join ->
          let room = g.nslots + 3 <= config.max_slots in
          let distinct =
            t_dst <> f_dst && t_dst <> seed && f_dst <> seed
            && (not (Hashtbl.mem g.seen t_dst))
            && not (Hashtbl.mem g.seen f_dst)
          in
          let join_ok =
            join = seed
            || ((not (Hashtbl.mem g.seen join))
               && g.nslots + 3 <= config.max_slots
               && eligible join)
          in
          if room && distinct && join_ok && eligible t_dst && eligible f_dst
          then begin
            let st = add_slot t_dst in
            add_edge cur_slot st Region.Taken;
            let sf = add_slot f_dst in
            add_edge cur_slot sf Region.Not_taken;
            if join = seed then begin
              g.back_edges <-
                { Region.src = st; dst = 0; role = Region.Always }
                :: { Region.src = sf; dst = 0; role = Region.Always }
                :: g.back_edges;
              g.kind <- Region.Loop
            end
            else begin
              let sj = add_slot join in
              add_edge st sj Region.Always;
              add_edge sf sj Region.Always;
              step sj join
            end
          end
    in
    step 0 seed;
    let slots = Array.of_list (List.rev g.slots_rev) in
    ( slots,
      List.rev g.edges,
      List.rev g.back_edges,
      g.kind )
  in
  let next_id = ref first_id in
  List.filter_map
    (fun seed ->
      if Hashtbl.mem taken_this_round seed then None
      else if not (hot seed) then None
      else begin
        let slots, edges, back_edges, kind = grow seed in
        Array.iter (fun b -> Hashtbl.replace taken_this_round b ()) slots;
        let frozen_use = Array.map (fun b -> use.(b)) slots in
        let frozen_taken = Array.map (fun b -> taken.(b)) slots in
        let region =
          {
            Region.id = !next_id;
            kind;
            slots;
            edges;
            back_edges;
            frozen_use;
            frozen_taken;
          }
        in
        incr next_id;
        Some region
      end)
    seeds
