(** Graphviz (DOT) export of discovered CFGs and regions.

    Handy for inspecting what the translator built:
    {v tpdbt dbt prog.s --regions | ... v} gives text; these give
    pictures. *)

val block_map :
  ?use:int array -> ?taken:int array -> Block_map.t -> string
(** The whole-program block CFG.  With [use]/[taken], nodes carry
    execution counts and conditional edges their probabilities. *)

val region : Region.t -> string
(** One region: slots as nodes (labelled with their block id and frozen
    branch probability), solid forward edges, dashed back edges. *)
