module Instr = Tpdbt_isa.Instr

type block_result = { ops_before : int; ops_after : int; cycles : int }

(* ------------------------------------------------------------------ *)
(* Constant propagation / folding                                      *)
(* ------------------------------------------------------------------ *)

let wrap32 v = ((v land 0xFFFFFFFF) lxor 0x80000000) - 0x80000000

let eval_const op a b =
  match op with
  | Instr.Add -> Some (wrap32 (a + b))
  | Instr.Sub -> Some (wrap32 (a - b))
  | Instr.Mul -> Some (wrap32 (a * b))
  | Instr.Div -> if b = 0 then None else Some (wrap32 (a / b))
  | Instr.Rem -> if b = 0 then None else Some (wrap32 (a mod b))
  | Instr.And -> Some (a land b)
  | Instr.Or -> Some (a lor b)
  | Instr.Xor -> Some (wrap32 (a lxor b))
  | Instr.Shl -> Some (wrap32 (a lsl (b land 31)))
  | Instr.Shr -> Some (a asr (b land 31))

let const_fold ops =
  let consts : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let subst operand =
    match operand with
    | Ir.Imm _ -> operand
    | Ir.Reg r -> (
        match Hashtbl.find_opt consts r with
        | Some v -> Ir.Imm v
        | None -> operand)
  in
  let kill r = Hashtbl.remove consts r in
  List.map
    (fun op ->
      match op with
      | Ir.Move (dst, src) -> (
          let src = subst src in
          match src with
          | Ir.Imm v ->
              Hashtbl.replace consts dst v;
              Ir.Move (dst, src)
          | Ir.Reg _ ->
              kill dst;
              Ir.Move (dst, src))
      | Ir.Arith (bop, dst, a, b) -> (
          let a = subst a and b = subst b in
          match (a, b) with
          | Ir.Imm va, Ir.Imm vb -> (
              match eval_const bop va vb with
              | Some v ->
                  Hashtbl.replace consts dst v;
                  Ir.Move (dst, Ir.Imm v)
              | None ->
                  kill dst;
                  Ir.Arith (bop, dst, a, b))
          | (Ir.Imm _ | Ir.Reg _), (Ir.Imm _ | Ir.Reg _) ->
              kill dst;
              Ir.Arith (bop, dst, a, b))
      | Ir.Load (dst, base, off) ->
          let base = subst base in
          kill dst;
          Ir.Load (dst, base, off)
      | Ir.Store (src, base, off) -> Ir.Store (subst src, subst base, off)
      | Ir.Rnd (dst, bound) ->
          kill dst;
          Ir.Rnd (dst, bound)
      | Ir.Out src -> Ir.Out (subst src)
      | Ir.Branch -> Ir.Branch)
    ops

(* ------------------------------------------------------------------ *)
(* Dead definition elimination                                         *)
(* ------------------------------------------------------------------ *)

let dead_def_elim ops =
  (* Backward scan.  [pending_overwrite] holds registers whose next
     access (looking backwards means: later in program order) is a
     redefinition with no use in between — a def of such a register is
     dead within the block. *)
  let pending = Hashtbl.create 8 in
  let keep_rev =
    List.fold_left
      (fun acc op ->
        let dead =
          (not (Ir.has_side_effect op))
          && (match Ir.defs op with
             | [ dst ] -> Hashtbl.mem pending dst
             | [] | _ :: _ :: _ -> false)
        in
        if dead then acc
        else begin
          List.iter (fun d -> Hashtbl.replace pending d ()) (Ir.defs op);
          List.iter (fun u -> Hashtbl.remove pending u) (Ir.uses op);
          op :: acc
        end)
      []
      (List.rev ops)
  in
  keep_rev

(* ------------------------------------------------------------------ *)
(* List scheduling                                                     *)
(* ------------------------------------------------------------------ *)

let issue_width = 2

(* Returns (finish, issue_span): [finish] includes trailing result
   latencies, [issue_span] is the cycle after the last issue. *)
let schedule_internal ops =
  let ops = Array.of_list ops in
  let n = Array.length ops in
  if n = 0 then (0, 0)
  else begin
    (* Dependence edges i -> j (i before j) with latency of i. *)
    let preds = Array.make n [] in
    let last_def = Hashtbl.create 8 in
    let last_uses = Hashtbl.create 8 in
    let last_mem = ref (-1) in
    let last_effect = ref (-1) in
    for j = 0 to n - 1 do
      let op = ops.(j) in
      let add_dep i lat = if i >= 0 && i <> j then preds.(j) <- (i, lat) :: preds.(j) in
      (* RAW: use after def. *)
      List.iter
        (fun u ->
          match Hashtbl.find_opt last_def u with
          | Some i -> add_dep i (Ir.latency ops.(i))
          | None -> ())
        (Ir.uses op);
      (* WAW and WAR: zero-latency ordering edges. *)
      List.iter
        (fun d ->
          (match Hashtbl.find_opt last_def d with
          | Some i -> add_dep i 1
          | None -> ());
          match Hashtbl.find_opt last_uses d with
          | Some users -> List.iter (fun i -> add_dep i 1) users
          | None -> ())
        (Ir.defs op);
      (* Memory ops stay ordered with each other; side effects too. *)
      if Ir.touches_memory op then begin
        add_dep !last_mem 1;
        last_mem := j
      end;
      if Ir.has_side_effect op then begin
        add_dep !last_effect 1;
        last_effect := j
      end;
      (* Branch must come last: depend on everything earlier. *)
      (match op with
      | Ir.Branch ->
          for i = 0 to j - 1 do
            add_dep i 1
          done
      | Ir.Arith _ | Ir.Move _ | Ir.Load _ | Ir.Store _ | Ir.Rnd _ | Ir.Out _
        ->
          ());
      List.iter
        (fun d -> Hashtbl.replace last_def d j)
        (Ir.defs op);
      List.iter
        (fun u ->
          let existing =
            match Hashtbl.find_opt last_uses u with Some l -> l | None -> []
          in
          Hashtbl.replace last_uses u (j :: existing))
        (Ir.uses op)
    done;
    (* earliest.(j): first cycle op j may issue. *)
    let earliest = Array.make n 0 in
    for j = 0 to n - 1 do
      List.iter
        (fun (i, lat) -> earliest.(j) <- max earliest.(j) (earliest.(i) + lat))
        preds.(j)
    done;
    (* Greedy issue respecting width: ops in dependence-consistent order
       (original order is one), each placed at the first cycle >= its
       earliest with a free issue slot; track per-cycle usage. *)
    let usage = Hashtbl.create 16 in
    let finish = ref 0 in
    let issue_span = ref 0 in
    let place = Array.make n 0 in
    for j = 0 to n - 1 do
      (* Recompute the dependence-ready time using actual placements. *)
      let ready =
        List.fold_left
          (fun acc (i, lat) -> max acc (place.(i) + lat))
          0 preds.(j)
      in
      let rec find cycle =
        let used =
          match Hashtbl.find_opt usage cycle with Some u -> u | None -> 0
        in
        if used < issue_width then cycle else find (cycle + 1)
      in
      let cycle = find ready in
      let used =
        match Hashtbl.find_opt usage cycle with Some u -> u | None -> 0
      in
      Hashtbl.replace usage cycle (used + 1);
      place.(j) <- cycle;
      issue_span := max !issue_span (cycle + 1);
      finish := max !finish (cycle + Ir.latency ops.(j))
    done;
    (!finish, !issue_span)
  end

let schedule_cycles ops = fst (schedule_internal ops)

let optimize_block instrs =
  let lowered = Ir.lower_block instrs in
  let ops_before = List.length lowered in
  let optimized = dead_def_elim (const_fold lowered) in
  let ops_after = List.length optimized in
  { ops_before; ops_after; cycles = schedule_cycles optimized }

let region_slot_cycles block_map ~code region =
  Array.map
    (fun block_id ->
      let b = Block_map.block block_map block_id in
      let instrs = Array.sub code b.Block_map.start_pc b.Block_map.size in
      float_of_int (optimize_block instrs).cycles)
    region.Region.slots

let region_slot_cycles_pipelined block_map ~code region =
  (* A slot with a region-internal successor only pays its issue span:
     the latency drain of its last results is hidden by the successor's
     independent instructions.  Slots without an internal successor (the
     trace tail and side-exit-only slots) pay the full schedule. *)
  let has_internal_successor = Array.make (Array.length region.Region.slots) false in
  List.iter
    (fun e -> has_internal_successor.(e.Region.src) <- true)
    (region.Region.edges @ region.Region.back_edges);
  Array.mapi
    (fun slot block_id ->
      let b = Block_map.block block_map block_id in
      let instrs = Array.sub code b.Block_map.start_pc b.Block_map.size in
      let lowered = Ir.lower_block instrs in
      let optimized = dead_def_elim (const_fold lowered) in
      let finish, issue_span = schedule_internal optimized in
      float_of_int (if has_internal_successor.(slot) then issue_span else finish))
    region.Region.slots
