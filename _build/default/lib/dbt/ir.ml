module Instr = Tpdbt_isa.Instr
module Reg = Tpdbt_isa.Reg

type operand = Reg of int | Imm of int

type op =
  | Arith of Instr.binop * int * operand * operand
  | Move of int * operand
  | Load of int * operand * int
  | Store of operand * operand * int
  | Rnd of int * int
  | Out of operand
  | Branch

let lower_instr instr =
  let r = Reg.to_int in
  match instr with
  | Instr.Movi (rd, imm) -> Some (Move (r rd, Imm imm))
  | Instr.Mov (rd, rs) -> Some (Move (r rd, Reg (r rs)))
  | Instr.Binop (op, rd, rs1, rs2) ->
      Some (Arith (op, r rd, Reg (r rs1), Reg (r rs2)))
  | Instr.Binopi (op, rd, rs, imm) -> Some (Arith (op, r rd, Reg (r rs), Imm imm))
  | Instr.Load (rd, base, off) -> Some (Load (r rd, Reg (r base), off))
  | Instr.Store (rsrc, base, off) ->
      Some (Store (Reg (r rsrc), Reg (r base), off))
  | Instr.Rnd (rd, bound) -> Some (Rnd (r rd, bound))
  | Instr.Out rs -> Some (Out (Reg (r rs)))
  | Instr.Br _ | Instr.Jmp _ | Instr.Call _ | Instr.Ret | Instr.Halt ->
      Some Branch
  | Instr.Nop -> None

let lower_block instrs =
  Array.to_list instrs |> List.filter_map lower_instr

let operand_uses = function Reg r -> [ r ] | Imm _ -> []

let defs = function
  | Arith (_, dst, _, _) | Move (dst, _) | Load (dst, _, _) | Rnd (dst, _) ->
      [ dst ]
  | Store _ | Out _ | Branch -> []

let uses = function
  | Arith (_, _, a, b) -> operand_uses a @ operand_uses b
  | Move (_, src) -> operand_uses src
  | Load (_, base, _) -> operand_uses base
  | Store (src, base, _) -> operand_uses src @ operand_uses base
  | Rnd _ -> []
  | Out src -> operand_uses src
  | Branch -> []

let latency = function
  | Arith ((Instr.Mul), _, _, _) -> 3
  | Arith ((Instr.Div | Instr.Rem), _, _, _) -> 8
  | Load _ -> 2
  | Arith _ | Move _ | Store _ | Rnd _ | Out _ | Branch -> 1

let has_side_effect = function
  | Store _ | Out _ | Rnd _ | Branch -> true
  | Arith _ | Move _ | Load _ -> false

let touches_memory = function
  | Load _ | Store _ -> true
  | Arith _ | Move _ | Rnd _ | Out _ | Branch -> false

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm v -> Format.fprintf ppf "#%d" v

let pp_op ppf = function
  | Arith (op, dst, a, b) ->
      Format.fprintf ppf "r%d <- %a %s %a" dst pp_operand a
        (Instr.binop_name op) pp_operand b
  | Move (dst, src) -> Format.fprintf ppf "r%d <- %a" dst pp_operand src
  | Load (dst, base, off) ->
      Format.fprintf ppf "r%d <- mem(%a + %d)" dst pp_operand base off
  | Store (src, base, off) ->
      Format.fprintf ppf "mem(%a + %d) <- %a" pp_operand base off pp_operand src
  | Rnd (dst, bound) -> Format.fprintf ppf "r%d <- rnd(%d)" dst bound
  | Out src -> Format.fprintf ppf "out %a" pp_operand src
  | Branch -> Format.pp_print_string ppf "branch"
