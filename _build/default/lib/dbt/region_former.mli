(** Region formation over candidate (hot) blocks.

    Chang–Hwu-style trace growing seeded at the hottest candidates:
    from the seed, repeatedly follow the most likely successor while its
    branch probability meets [min_branch_prob] (the paper's "minimum
    branch probability", 0.7 in [5]) and the successor is hot.  A
    successor equal to the seed closes the trace into a {e loop region}.
    Balanced branches (both arms in [1-p, p] with p < min) whose arms
    rejoin immediately grow a hammock diamond when [enable_diamonds].
    A hot successor already owned by an earlier region is copied into
    the growing region when [enable_duplication] — this is the block
    duplication that NAVEP later has to normalise.

    Every candidate block ends up optimised: candidates not swallowed by
    another region seed their own (possibly singleton) region. *)

type config = {
  threshold : int;  (** hotness requirement for members *)
  min_branch_prob : float;
  max_slots : int;
  enable_duplication : bool;
  enable_diamonds : bool;
  across_calls : bool;
      (** follow call edges into hot callees (partial inlining): the
          callee's hot path joins the region and a [ret] ends it *)
}

val default_config : config
(** threshold 0 (caller overrides), min prob 0.7, 16 slots,
    duplication and diamonds on, across_calls off. *)

type owner = Unowned | Owned
(** Whether a block is already a member of some earlier region. *)

val form :
  config ->
  block_map:Block_map.t ->
  use:int array ->
  taken:int array ->
  owner:(int -> owner) ->
  seeds:int list ->
  first_id:int ->
  Region.t list
(** Grow one region per seed (in the given order; seeds swallowed by an
    earlier region of this round are skipped).  [use]/[taken] are the
    live profiling counters — they are copied into the regions' frozen
    counters.  Region ids are assigned from [first_id]. *)
