(** Target IR for the optimisation phase.

    The retranslator lowers each guest block to this three-address form,
    runs the optimisation passes over it, and schedules the result; the
    scheduled cycle count is what the performance model charges for an
    optimised execution of the block.  (Execution semantics always come
    from the guest interpreter — the IR exists to make the optimisation
    phase and its cost model concrete, as in IA32EL's retranslation.) *)

type operand = Reg of int | Imm of int

type op =
  | Arith of Tpdbt_isa.Instr.binop * int * operand * operand
      (** [dst <- a op b] *)
  | Move of int * operand
  | Load of int * operand * int  (** [dst <- mem(base + off)] *)
  | Store of operand * operand * int  (** [mem(base + off) <- src] *)
  | Rnd of int * int
  | Out of operand
  | Branch  (** block terminator placeholder (1 cycle, must stay last) *)

val lower_block : Tpdbt_isa.Instr.t array -> op list
(** Lower the guest instructions of one block (terminators become
    [Branch]; [Nop] disappears). *)

val defs : op -> int list
(** Registers written. *)

val uses : op -> int list
(** Registers read. *)

val latency : op -> int
(** Result latency in cycles: mul 3, div/rem 8, load 2, others 1. *)

val has_side_effect : op -> bool
(** Stores, [Out], [Rnd] (PRNG stream order) and [Branch]. *)

val touches_memory : op -> bool
val pp_op : Format.formatter -> op -> unit
