(** Profile snapshots — the data the paper's off-line analysis consumes.

    A snapshot captures, at end of run, the per-block [use]/[taken]
    counters (frozen at optimisation time for blocks that entered a
    region — this is what makes an INIP(T) snapshot an {e initial}
    profile) together with the regions the optimisation phase formed.
    An AVEP or INIP(train) snapshot is simply a snapshot from a
    profiling-only run: full-run counters, no regions. *)

type t = {
  block_map : Block_map.t;
  use : int array;  (** indexed by block id *)
  taken : int array;
  regions : Region.t list;  (** in formation order *)
}

val branch_prob : t -> int -> float option
(** taken/use for a block with a conditional terminator and [use > 0];
    [None] otherwise. *)

val block_freq : t -> int -> float
(** The block's [use] count as a float (0 for out-of-range ids). *)

val profiling_ops : t -> int
(** Total number of counter updates the run performed: sum over blocks
    of [use + taken] (paper Fig 18's "profiling operations"). *)

val executed_blocks : t -> int list
(** Ids of blocks with [use > 0]. *)

val find_region : t -> int -> Region.t option
(** Region by id. *)
