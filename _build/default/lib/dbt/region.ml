type role = Taken | Not_taken | Always
type edge = { src : int; dst : int; role : role }
type kind = Trace | Loop

type t = {
  id : int;
  kind : kind;
  slots : int array;
  edges : edge list;
  back_edges : edge list;
  frozen_use : int array;
  frozen_taken : int array;
}

let entry_block r = r.slots.(0)
let slot_count r = Array.length r.slots

let slots_of_block r block =
  let acc = ref [] in
  Array.iteri (fun slot b -> if b = block then acc := slot :: !acc) r.slots;
  List.rev !acc

let tail_slot r =
  let has_out = Array.make (Array.length r.slots) false in
  List.iter (fun e -> has_out.(e.src) <- true) r.edges;
  let rec find slot =
    if slot < 0 then 0
    else if not has_out.(slot) then slot
    else find (slot - 1)
  in
  find (Array.length r.slots - 1)

let out_edges r slot =
  List.filter (fun e -> e.src = slot) r.edges
  @ List.filter (fun e -> e.src = slot) r.back_edges

let frozen_branch_prob r slot =
  let use = r.frozen_use.(slot) in
  if use <= 0 then None
  else Some (float_of_int r.frozen_taken.(slot) /. float_of_int use)

let forward_graph r =
  let g = Tpdbt_cfg.Graph.create () in
  Array.iteri (fun slot _ -> Tpdbt_cfg.Graph.add_node g slot) r.slots;
  List.iter (fun e -> Tpdbt_cfg.Graph.add_edge g e.src e.dst) r.edges;
  g

let validate r =
  let n = Array.length r.slots in
  let in_range slot = slot >= 0 && slot < n in
  let bad_edge =
    List.find_opt
      (fun e -> not (in_range e.src && in_range e.dst))
      (r.edges @ r.back_edges)
  in
  if n = 0 then Error "region has no slots"
  else if Array.length r.frozen_use <> n || Array.length r.frozen_taken <> n
  then Error "frozen counter arrays do not match slot count"
  else
    match bad_edge with
    | Some _ -> Error "edge slot out of range"
    | None ->
        if List.exists (fun e -> e.dst <> 0) r.back_edges then
          Error "back edge not targeting slot 0"
        else if (r.kind = Loop) <> (r.back_edges <> []) then
          Error "kind/back-edge mismatch"
        else
          let g = forward_graph r in
          if not (Tpdbt_cfg.Traverse.is_acyclic g) then
            Error "forward edges contain a cycle"
          else
            let reach = Tpdbt_cfg.Traverse.reachable g ~root:0 in
            if Hashtbl.length reach <> n then
              Error "not all slots reachable from entry"
            else Ok ()

let pp_role ppf = function
  | Taken -> Format.pp_print_string ppf "T"
  | Not_taken -> Format.pp_print_string ppf "N"
  | Always -> Format.pp_print_string ppf "A"

let pp ppf r =
  let kind = match r.kind with Trace -> "trace" | Loop -> "loop" in
  Format.fprintf ppf "region %d (%s): slots" r.id kind;
  Array.iteri (fun slot b -> Format.fprintf ppf " %d:B%d" slot b) r.slots;
  Format.fprintf ppf "; edges";
  List.iter
    (fun e -> Format.fprintf ppf " %d-%a->%d" e.src pp_role e.role e.dst)
    (r.edges @ r.back_edges)
