(** Optimisation regions.

    A region is a small control-flow subgraph over {e slots}; each slot
    is a (possibly duplicated) copy of a basic block.  Slot 0 is the
    region entry.  Non-loop regions ("traces", possibly containing
    hammock diamonds) are DAGs; loop regions additionally have back
    edges to slot 0.

    Each internal edge is labelled with the {!role} it plays at its
    source block's terminator, which is what lets both the runtime
    (match the actual branch outcome against the region) and the
    analyses (assign a probability to the edge from a block's branch
    probability) interpret it. *)

type role =
  | Taken  (** the conditional branch's taken edge *)
  | Not_taken  (** the conditional branch's fall-through edge *)
  | Always  (** unconditional (goto / fallthrough) *)

type edge = { src : int; dst : int; role : role }
(** Slot indices. *)

type kind = Trace | Loop

type t = {
  id : int;
  kind : kind;
  slots : int array;  (** slot -> block id; slot 0 is the entry *)
  edges : edge list;  (** forward (acyclic) internal edges *)
  back_edges : edge list;  (** edges to slot 0; non-empty iff [kind = Loop] *)
  frozen_use : int array;  (** per-slot block [use] count at formation *)
  frozen_taken : int array;  (** per-slot block [taken] count at formation *)
}

val entry_block : t -> int
val slot_count : t -> int

val slots_of_block : t -> int -> int list
(** All slots holding copies of the given block. *)

val tail_slot : t -> int
(** The unique slot with no outgoing forward edge (for a [Trace], the
    block whose execution completes the region). *)

val out_edges : t -> int -> edge list
(** Forward and back edges leaving a slot. *)

val frozen_branch_prob : t -> int -> float option
(** [frozen_branch_prob r slot]: taken/use of the slot's block as frozen
    at region-formation time; [None] if the block never executed or has
    no conditional terminator recorded (use = 0). *)

val validate : t -> (unit, string) result
(** Structural sanity: edge slots in range, forward edges acyclic,
    [Loop] iff back edges present, unique tail reachable from slot 0. *)

val pp : Format.formatter -> t -> unit
