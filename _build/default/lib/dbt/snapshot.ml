type t = {
  block_map : Block_map.t;
  use : int array;
  taken : int array;
  regions : Region.t list;
}

let branch_prob t block =
  if block < 0 || block >= Array.length t.use then None
  else
    match (Block_map.block t.block_map block).Block_map.terminator with
    | Block_map.Cond _ ->
        let use = t.use.(block) in
        if use <= 0 then None
        else Some (float_of_int t.taken.(block) /. float_of_int use)
    | Block_map.Goto _ | Block_map.Call_to _ | Block_map.Return
    | Block_map.Stop | Block_map.Fallthrough _ ->
        None

let block_freq t block =
  if block < 0 || block >= Array.length t.use then 0.0
  else float_of_int t.use.(block)

let profiling_ops t =
  let total = ref 0 in
  Array.iter (fun u -> total := !total + u) t.use;
  Array.iter (fun k -> total := !total + k) t.taken;
  !total

let executed_blocks t =
  let acc = ref [] in
  Array.iteri (fun id u -> if u > 0 then acc := id :: !acc) t.use;
  List.rev !acc

let find_region t id = List.find_opt (fun r -> r.Region.id = id) t.regions
