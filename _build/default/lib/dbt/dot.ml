let block_map ?use ?taken (bmap : Block_map.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n";
  let count id = match use with Some u when id < Array.length u -> Some u.(id) | _ -> None in
  let prob id =
    match (use, taken) with
    | Some u, Some t when id < Array.length u && u.(id) > 0 ->
        Some (float_of_int t.(id) /. float_of_int u.(id))
    | _ -> None
  in
  List.iter
    (fun (b : Block_map.block) ->
      let label =
        Printf.sprintf "B%d\\npc %d..%d%s" b.Block_map.id b.Block_map.start_pc
          b.Block_map.end_pc
          (match count b.Block_map.id with
          | Some c -> Printf.sprintf "\\nuse %d" c
          | None -> "")
      in
      Buffer.add_string buf
        (Printf.sprintf "  b%d [label=\"%s\"];\n" b.Block_map.id label);
      let edge ?label dst =
        Buffer.add_string buf
          (Printf.sprintf "  b%d -> b%d%s;\n" b.Block_map.id dst
             (match label with
             | Some l -> Printf.sprintf " [label=\"%s\"]" l
             | None -> ""))
      in
      match b.Block_map.terminator with
      | Block_map.Cond { taken = t_dst; fallthrough } ->
          let t_label, f_label =
            match prob b.Block_map.id with
            | Some p -> (Printf.sprintf "T %.2f" p, Printf.sprintf "N %.2f" (1.0 -. p))
            | None -> ("T", "N")
          in
          edge ~label:t_label t_dst;
          edge ~label:f_label fallthrough
      | Block_map.Goto dst -> edge dst
      | Block_map.Fallthrough dst -> edge dst
      | Block_map.Call_to { callee; retsite } ->
          edge ~label:"call" callee;
          edge ~label:"ret-site" retsite
      | Block_map.Return | Block_map.Stop -> ())
    (Block_map.blocks bmap);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let region (r : Region.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "digraph region%d {\n  node [shape=box];\n" r.Region.id);
  Array.iteri
    (fun slot block ->
      let prob =
        match Region.frozen_branch_prob r slot with
        | Some p -> Printf.sprintf "\\np(taken) %.3f" p
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  s%d [label=\"slot %d: B%d%s\"%s];\n" slot slot block
           prob
           (if slot = 0 then ", style=bold" else "")))
    r.Region.slots;
  let role_label = function
    | Region.Taken -> "T"
    | Region.Not_taken -> "N"
    | Region.Always -> ""
  in
  List.iter
    (fun (e : Region.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  s%d -> s%d [label=\"%s\"];\n" e.Region.src
           e.Region.dst (role_label e.Region.role)))
    r.Region.edges;
  List.iter
    (fun (e : Region.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  s%d -> s%d [label=\"%s\", style=dashed];\n"
           e.Region.src e.Region.dst (role_label e.Region.role)))
    r.Region.back_edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
