(** Retranslation-time optimisation passes and the block scheduler.

    Pipeline per block: lower to IR, local constant propagation and
    folding, dead-definition elimination, then list scheduling onto a
    2-issue machine with result latencies (see {!Ir.latency}).  The
    scheduled length is the cycle cost the performance model charges for
    one optimised execution of the block. *)

type block_result = {
  ops_before : int;  (** IR ops after lowering *)
  ops_after : int;  (** IR ops surviving the scalar passes *)
  cycles : int;  (** scheduled length (2-issue, with latencies) *)
}

val const_fold : Ir.op list -> Ir.op list
(** Forward pass: propagate register constants within the block and fold
    arithmetic on constants (division by a zero constant is left
    untouched so the runtime still traps). *)

val dead_def_elim : Ir.op list -> Ir.op list
(** Remove a definition that is overwritten later in the same block
    without an intervening use.  Side-effecting ops are never removed;
    registers are conservatively assumed live out of the block. *)

val schedule_cycles : Ir.op list -> int
(** List-schedule the ops (respecting register, memory and side-effect
    dependences) on a 2-issue machine; returns the number of cycles. *)

val optimize_block : Tpdbt_isa.Instr.t array -> block_result

val region_slot_cycles : Block_map.t -> code:Tpdbt_isa.Instr.t array -> Region.t -> float array
(** Per-slot optimised cycle cost for a region (each slot's block run
    through {!optimize_block}). *)

val region_slot_cycles_pipelined :
  Block_map.t -> code:Tpdbt_isa.Instr.t array -> Region.t -> float array
(** Trace scheduling (region-based compilation, Hank/Hwu/Rau):
    instructions still issue within their own block (no speculation
    across branches), but result latencies overlap across region edges —
    a block's tail-latency "drain" cycles are hidden by its successor's
    independent instructions.  Each slot's cost is its share of the
    pipelined schedule of the region's hot path through that slot; costs
    are never higher than {!region_slot_cycles}'s. *)
