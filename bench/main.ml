(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Figures 8-18) from a full threshold sweep over the synthetic
   SPEC2000 suite, prints the worked examples of Figures 5-7, and then
   runs Bechamel micro-benchmarks — one Test.make per figure (the cost
   of regenerating that figure's analysis from the sweep data) plus the
   core computational kernels.

   Usage:  dune exec bench/main.exe                    (full run, ~10 minutes)
           dune exec bench/main.exe -- --quick         (3 benchmarks only)
           dune exec bench/main.exe -- --no-micro      (skip Bechamel part)
           dune exec bench/main.exe -- --no-ablations  (skip design studies)
           dune exec bench/main.exe -- --jobs 4        (parallel sweep domains)
           dune exec bench/main.exe -- --par-bench     (parallel-scaling run
                                                        only; writes
                                                        BENCH_parallel.json)
           dune exec bench/main.exe -- --perf-bench    (wall-clock/allocation
                                                        perf run only; writes
                                                        BENCH_perf.json) *)

module Suite = Tpdbt_workloads.Suite
module Runner = Tpdbt_experiments.Runner
module Figures = Tpdbt_experiments.Figures
module Table = Tpdbt_experiments.Table
module Region = Tpdbt_dbt.Region
module Region_prob = Tpdbt_profiles.Region_prob
module Stats = Tpdbt_numerics.Stats

(* ------------------------------------------------------------------ *)
(* Worked examples (Figures 5-7)                                        *)
(* ------------------------------------------------------------------ *)

let mk_region ?(kind = Region.Trace) ?(edges = []) ?(back_edges = []) n =
  {
    Region.id = 0;
    kind;
    slots = Array.init n (fun i -> i);
    edges;
    back_edges;
    frozen_use = Array.make n 0;
    frozen_taken = Array.make n 0;
  }

let worked_examples () =
  print_endline "Worked examples (paper Figures 5-7)";
  print_endline "-----------------------------------";
  let fig6 =
    mk_region 4
      ~edges:
        [
          { Region.src = 0; dst = 1; role = Region.Taken };
          { Region.src = 0; dst = 2; role = Region.Not_taken };
          { Region.src = 1; dst = 3; role = Region.Taken };
          { Region.src = 2; dst = 3; role = Region.Taken };
        ]
  in
  let prob6 = function 0 -> Some 0.4 | 1 -> Some 0.8 | 2 -> Some 0.9 | _ -> None in
  Printf.printf "Fig 6 completion probability: %.3f (paper: 0.86)\n"
    (Region_prob.completion_probability fig6 ~prob:prob6);
  let fig7 =
    mk_region ~kind:Region.Loop 4
      ~edges:
        [
          { Region.src = 0; dst = 1; role = Region.Taken };
          { Region.src = 0; dst = 2; role = Region.Not_taken };
          { Region.src = 2; dst = 3; role = Region.Taken };
        ]
      ~back_edges:
        [
          { Region.src = 1; dst = 0; role = Region.Taken };
          { Region.src = 3; dst = 0; role = Region.Taken };
        ]
  in
  let prob7 = function
    | 0 -> Some 0.6
    | 1 -> Some 0.9
    | 2 -> Some 0.95
    | 3 -> Some 0.9
    | _ -> None
  in
  Printf.printf
    "Fig 7 loop-back probability:  %.3f (paper prints 0.886; its own \
     products sum to 0.882)\n"
    (Region_prob.loopback_probability fig7 ~prob:prob7);
  let sd_bp =
    Stats.weighted_sd
      [
        { Stats.predicted = 0.88; actual = 0.65; weight = 1000.0 };
        { Stats.predicted = 0.977; actual = 0.90; weight = 44000.0 };
        { Stats.predicted = 0.88; actual = 0.70; weight = 43000.0 };
        { Stats.predicted = 0.88; actual = 0.20; weight = 6000.0 };
        { Stats.predicted = 0.5; actual = 0.5; weight = 1000.0 };
        { Stats.predicted = 0.9; actual = 0.9; weight = 6000.0 };
      ]
  in
  Printf.printf "Fig 5 Sd.BP: %.2f (paper: 0.21)\n" sd_bp;
  let sd_lp =
    Stats.weighted_sd
      [
        { Stats.predicted = 0.977 *. 0.88; actual = 0.90 *. 0.70; weight = 44000.0 };
        { Stats.predicted = 0.12; actual = 0.80; weight = 6000.0 };
      ]
  in
  Printf.printf
    "Fig 5 Sd.LP: %.2f by its formula (paper prints 0.27 from an \
     inconsistent intermediate)\n"
    sd_lp;
  Printf.printf "Fig 5 Sd.CP: %.2f (paper: 0)\n\n"
    (Stats.weighted_sd
       [ { Stats.predicted = 1.0; actual = 1.0; weight = 1000.0 } ])

(* ------------------------------------------------------------------ *)
(* Figure sweep                                                         *)
(* ------------------------------------------------------------------ *)

let results_dir = "results"

let write_csv id table =
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755;
  let path = Filename.concat results_dir (id ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Table.to_csv table))

let run_sweep ~quick ~jobs =
  let benches =
    if quick then List.filter_map Suite.find [ "gzip"; "mcf"; "swim" ]
    else Suite.all
  in
  Printf.eprintf "running the threshold sweep over %d benchmarks (%d jobs)...\n%!"
    (List.length benches) jobs;
  let t0 = Unix.gettimeofday () in
  let sweep =
    Runner.run_many_par ~jobs
      ~progress:(fun n status ->
        Printf.eprintf "  %s (%s)\n%!" n (Runner.status_name status))
      ~report:(fun stats ->
        Printf.eprintf "  parallel: %d jobs, %d steals, speedup %.2fx\n%!"
          stats.Tpdbt_parallel.Pool.jobs stats.Tpdbt_parallel.Pool.steals
          (Tpdbt_parallel.Pool.speedup stats))
      benches
  in
  List.iter
    (fun { Runner.failed; error } ->
      Printf.eprintf "  failed %s: %s\n%!" failed.Tpdbt_workloads.Spec.name
        (Tpdbt_dbt.Error.to_string error))
    sweep.Runner.failures;
  Printf.eprintf "sweep done in %.1fs\n%!" (Unix.gettimeofday () -. t0);
  sweep.Runner.data

let print_figures data =
  List.iter
    (fun (id, table) ->
      print_endline id;
      Table.print ~precision:3 table;
      print_newline ();
      write_csv id table)
    (Figures.all data)

(* ------------------------------------------------------------------ *)
(* Cache-size axis (bounded code cache, Fig-17-style)                   *)
(* ------------------------------------------------------------------ *)

(* Bounded runs thrash by design, so this axis sweeps the two cheap
   benchmarks only — the full-suite version is `tpdbt cache`. *)
let cache_axis () =
  print_endline "Cache-size axis (cycles vs unbounded cache)";
  print_endline "-------------------------------------------";
  let benches = List.filter_map Suite.find [ "gzip"; "perlbmk" ] in
  let t0 = Unix.gettimeofday () in
  let sweeps =
    List.map (fun b -> Runner.run_cache_sweep ~fracs:[ 0.25; 0.5; 1.0 ] b)
      benches
  in
  let table = Figures.cache_sweep sweeps in
  Table.print ~precision:3 table;
  write_csv "cache-sweep" table;
  Printf.eprintf "cache axis done in %.1fs\n%!" (Unix.gettimeofday () -. t0);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Parallel scaling (BENCH_parallel.json)                               *)
(* ------------------------------------------------------------------ *)

(* Times the same sweep at -j 1/2/4 and records wall seconds + speedup.
   Each pass also checksums the serialized sweep data, so the scaling
   run doubles as a determinism guard: any cross-job divergence fails
   the bench before it writes numbers. *)
let parallel_bench ~quick () =
  let module Json = Tpdbt_telemetry.Json in
  let module Checkpoint = Tpdbt_experiments.Checkpoint in
  print_endline "Parallel sweep scaling";
  print_endline "----------------------";
  let benches =
    if quick then List.filter_map Suite.find [ "gzip"; "swim" ] else Suite.all
  in
  let job_counts = [ 1; 2; 4 ] in
  let measure jobs =
    Printf.eprintf "  sweep at -j %d...\n%!" jobs;
    let t0 = Unix.gettimeofday () in
    let sweep = Runner.run_many_par ~jobs benches in
    let seconds = Unix.gettimeofday () -. t0 in
    List.iter
      (fun { Runner.failed; error } ->
        Printf.eprintf "  failed %s: %s\n%!" failed.Tpdbt_workloads.Spec.name
          (Tpdbt_dbt.Error.to_string error))
      sweep.Runner.failures;
    let checksum =
      Digest.to_hex
        (Digest.string
           (String.concat "" (List.map Checkpoint.data_to_string sweep.Runner.data)))
    in
    (jobs, seconds, checksum)
  in
  let measurements = List.map measure job_counts in
  (match measurements with
  | (_, _, reference) :: rest ->
      List.iter
        (fun (jobs, _, checksum) ->
          if checksum <> reference then begin
            Printf.eprintf
              "DETERMINISM VIOLATION: -j %d sweep diverged from -j 1\n%!" jobs;
            exit 1
          end)
        rest
  | [] -> ());
  let timings = List.map (fun (j, s, _) -> (j, s)) measurements in
  Table.print ~precision:3 (Figures.parallel_scaling timings);
  let base = match timings with (_, s) :: _ -> s | [] -> 0.0 in
  let json =
    Json.obj
      [
        ( "host",
          Tpdbt_experiments.Host_info.to_json
            (Tpdbt_experiments.Host_info.capture ()) );
        ("suite", Json.arr
           (List.map
              (fun b -> Json.quote b.Tpdbt_workloads.Spec.name)
              benches));
        ( "checksum",
          Json.quote (match measurements with (_, _, c) :: _ -> c | [] -> "") );
        ( "runs",
          Json.arr
            (List.map
               (fun (jobs, seconds, _) ->
                 Json.obj
                   [
                     ("jobs", string_of_int jobs);
                     ("seconds", Printf.sprintf "%.3f" seconds);
                     ( "speedup",
                       Printf.sprintf "%.3f"
                         (if seconds > 0.0 && base > 0.0 then base /. seconds
                          else 1.0) );
                   ])
               measurements) );
      ]
  in
  (match Json.validate json with
  | Ok () -> ()
  | Error msg ->
      prerr_endline ("internal error: BENCH_parallel.json " ^ msg);
      exit 2);
  let oc = open_out "BENCH_parallel.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n');
  print_endline "wrote BENCH_parallel.json"

(* ------------------------------------------------------------------ *)
(* Perf regression benchmark (BENCH_perf.json)                          *)
(* ------------------------------------------------------------------ *)

(* Wall-clock throughput (guest instrs/second) and allocation cost
   (words/guest instr) per benchmark, written with host metadata so
   [tpdbt perfdiff] can judge a later run against a committed
   baseline.  The set matches the sweep's quick set; each benchmark
   gets one warm-up run before the measured one. *)
let perf_threshold = 50

let perf_bench () =
  let module Json = Tpdbt_telemetry.Json in
  let module Host_info = Tpdbt_experiments.Host_info in
  print_endline "Perf benchmark (wall clock + allocation)";
  print_endline "----------------------------------------";
  let host = Host_info.capture () in
  Printf.printf "host: %s\n" (Host_info.render host);
  let benches = List.filter_map Suite.find [ "gzip"; "mcf"; "swim" ] in
  let config = Tpdbt_dbt.Engine.config ~threshold:perf_threshold () in
  let measure bench =
    let name = bench.Tpdbt_workloads.Spec.name in
    Printf.eprintf "  %s...\n%!" name;
    ignore (Runner.run_ref bench ~config);
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let result = Runner.run_ref bench ~config in
    let seconds = Unix.gettimeofday () -. t0 in
    let g1 = Gc.quick_stat () in
    let steps = result.Tpdbt_dbt.Engine.steps in
    (* promoted words are already counted as minor: don't double-count *)
    let words =
      g1.Gc.minor_words -. g0.Gc.minor_words
      +. (g1.Gc.major_words -. g0.Gc.major_words)
      -. (g1.Gc.promoted_words -. g0.Gc.promoted_words)
    in
    let per_instr v = if steps > 0 then v /. float_of_int steps else 0.0 in
    let guest_ips =
      if seconds > 0.0 then float_of_int steps /. seconds else 0.0
    in
    ( name,
      steps,
      seconds,
      guest_ips,
      per_instr words,
      result.Tpdbt_dbt.Engine.counters.Tpdbt_dbt.Perf_model.cycles )
  in
  let rows = List.map measure benches in
  Printf.printf "%-10s %12s %10s %14s %16s %16s\n" "bench" "steps" "seconds"
    "guest-instrs/s" "alloc-words/instr" "model-cycles";
  List.iter
    (fun (name, steps, seconds, ips, alloc, cycles) ->
      Printf.printf "%-10s %12d %10.3f %14.0f %16.3f %16.0f\n" name steps
        seconds ips alloc cycles)
    rows;
  let json =
    Json.obj
      [
        ("host", Host_info.to_json host);
        ("threshold", string_of_int perf_threshold);
        ( "benches",
          Json.arr
            (List.map
               (fun (name, steps, seconds, ips, alloc, cycles) ->
                 Json.obj
                   [
                     ("name", Json.quote name);
                     ("steps", string_of_int steps);
                     ("seconds", Json.number seconds);
                     ("guest_ips", Json.number ips);
                     ("alloc_per_instr", Json.number alloc);
                     ("cycles", Json.number cycles);
                   ])
               rows) );
      ]
  in
  (match Json.validate json with
  | Ok () -> ()
  | Error msg ->
      prerr_endline ("internal error: BENCH_perf.json " ^ msg);
      exit 2);
  let oc = open_out "BENCH_perf.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n');
  print_endline "wrote BENCH_perf.json"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks data =
  let open Bechamel in
  let open Toolkit in
  (* One Test.make per figure: the analysis cost of regenerating that
     figure from the sweep data. *)
  let figure_tests =
    List.map
      (fun (id, f) -> Test.make ~name:id (Staged.stage (fun () -> f data)))
      [
        ("fig8", Figures.fig8);
        ("fig9", Figures.fig9);
        ("fig10", Figures.fig10);
        ("fig11", Figures.fig11);
        ("fig12", Figures.fig12);
        ("fig13", Figures.fig13);
        ("fig14", Figures.fig14);
        ("fig15", Figures.fig15);
        ("fig16", Figures.fig16);
        ("fig17", Figures.fig17);
        ("fig18", Figures.fig18);
      ]
  in
  let quickstart_program =
    Tpdbt_isa.Assembler.assemble_exn
      {|
.entry main
main:
    movi r1, 0
    movi r2, 2000
loop:
    rnd r3, 100
    movi r4, 70
    blt r3, r4, hot
    addi r5, r5, 1
    jmp join
hot:
    addi r6, r6, 1
join:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
|}
  in
  let engine_run () =
    let config = Tpdbt_dbt.Engine.config ~threshold:50 () in
    let engine = Tpdbt_dbt.Engine.create ~config ~seed:1L quickstart_program in
    ignore (Tpdbt_dbt.Engine.run engine)
  in
  (* Same run with telemetry flowing into a metrics collector: the
     difference against the run above is the cost of enabling the
     tracer (the null-sink run must stay at the undisturbed cost). *)
  let engine_run_traced () =
    let registry = Tpdbt_telemetry.Metrics.create () in
    let sink = Tpdbt_telemetry.Sink.collect ~into:registry in
    let config = Tpdbt_dbt.Engine.config ~threshold:50 ~sink () in
    let engine = Tpdbt_dbt.Engine.create ~config ~seed:1L quickstart_program in
    ignore (Tpdbt_dbt.Engine.run engine);
    sink.Tpdbt_telemetry.Sink.close ()
  in
  let gauss_solve =
    let n = 20 in
    let a = Tpdbt_numerics.Matrix.create ~rows:n ~cols:n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Tpdbt_numerics.Matrix.set a i j
          (if i = j then 10.0 else 1.0 /. float_of_int (1 + i + j))
      done
    done;
    let b = Array.init n float_of_int in
    fun () -> ignore (Tpdbt_numerics.Linear_solver.gauss a b)
  in
  let schedule =
    let instrs =
      Array.init 16 (fun i ->
          if i mod 3 = 0 then
            Tpdbt_isa.Instr.Binop
              ( Tpdbt_isa.Instr.Mul,
                Tpdbt_isa.Reg.of_int (i mod 8),
                Tpdbt_isa.Reg.of_int ((i + 1) mod 8),
                Tpdbt_isa.Reg.of_int 2 )
          else
            Tpdbt_isa.Instr.Binopi
              ( Tpdbt_isa.Instr.Add,
                Tpdbt_isa.Reg.of_int (i mod 8),
                Tpdbt_isa.Reg.of_int ((i + 1) mod 8),
                i ))
    in
    fun () -> ignore (Tpdbt_dbt.Optimizer.optimize_block instrs)
  in
  (* Same run again under a tight code cache: the delta against the
     unbounded run is the eviction/retranslation machinery's own cost. *)
  let engine_run_bounded () =
    let config =
      Tpdbt_dbt.Engine.config ~threshold:50 ~cache_capacity:8
        ~cache_backoff:100 ()
    in
    let engine = Tpdbt_dbt.Engine.create ~config ~seed:1L quickstart_program in
    ignore (Tpdbt_dbt.Engine.run engine)
  in
  let kernel_tests =
    [
      Test.make ~name:"engine:two-phase-run-2k-iters" (Staged.stage engine_run);
      Test.make ~name:"engine:two-phase-run-2k-iters-traced"
        (Staged.stage engine_run_traced);
      Test.make ~name:"engine:two-phase-run-2k-iters-bounded-cache"
        (Staged.stage engine_run_bounded);
      Test.make ~name:"solver:gauss-20x20" (Staged.stage gauss_solve);
      Test.make ~name:"optimizer:block-16-instrs" (Staged.stage schedule);
    ]
  in
  let grouped =
    Test.make_grouped ~name:"tpdbt" ~fmt:"%s/%s" (figure_tests @ kernel_tests)
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "Bechamel micro-benchmarks (monotonic clock, ns/run)";
  print_endline "---------------------------------------------------";
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ estimate ] -> (name, estimate) :: acc
        | Some _ | None -> (name, nan) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns) -> Printf.printf "%-40s %14.1f ns/run\n" name ns)
    rows

(* ------------------------------------------------------------------ *)

let ablation_studies ~quick =
  print_endline "Ablation studies (design choices; DESIGN.md §3)";
  print_endline "-----------------------------------------------";
  let benchmarks = if quick then Some [ "gzip"; "mcf" ] else None in
  List.iter
    (fun (id, table) ->
      print_endline id;
      Table.print ~precision:3 table;
      print_newline ();
      write_csv ("ablation-" ^ id) table)
    (Tpdbt_experiments.Ablations.all ?benchmarks ())

let usage () =
  prerr_endline
    "usage: main.exe [--quick] [--no-micro] [--no-ablations] [--no-cache]\n\
    \                [--jobs N] [--par-bench]\n\n\
    \  --quick          run 3 benchmarks instead of the full suite\n\
    \  --no-micro       skip the Bechamel micro-benchmarks\n\
    \  --no-ablations   skip the design-choice ablation studies\n\
    \  --no-cache       skip the bounded code-cache size axis\n\
    \  --jobs N         worker domains for the figure sweep (default:\n\
    \                   the machine's recommended domain count)\n\
    \  --par-bench      run only the parallel-scaling benchmark (sweep\n\
    \                   at -j 1/2/4, checksum-guarded) and write\n\
    \                   BENCH_parallel.json\n\
    \  --perf-bench     run only the wall-clock/allocation perf benchmark\n\
    \                   and write BENCH_perf.json (for tpdbt perfdiff)"

type options = {
  quick : bool;
  no_micro : bool;
  no_ablations : bool;
  no_cache : bool;
  jobs : int;
  par_bench : bool;
  perf_bench : bool;
}

let parse_args () =
  let default =
    {
      quick = false;
      no_micro = false;
      no_ablations = false;
      no_cache = false;
      jobs = Tpdbt_parallel.Pool.default_jobs ();
      par_bench = false;
      perf_bench = false;
    }
  in
  let bad a =
    prerr_endline ("unknown argument: " ^ a);
    usage ();
    exit 2
  in
  let rec go opts = function
    | [] -> opts
    | "--quick" :: tl -> go { opts with quick = true } tl
    | "--no-micro" :: tl -> go { opts with no_micro = true } tl
    | "--no-ablations" :: tl -> go { opts with no_ablations = true } tl
    | "--no-cache" :: tl -> go { opts with no_cache = true } tl
    | "--par-bench" :: tl -> go { opts with par_bench = true } tl
    | "--perf-bench" :: tl -> go { opts with perf_bench = true } tl
    | "--jobs" :: n :: tl -> (
        match int_of_string_opt n with
        | Some jobs when jobs >= 1 -> go { opts with jobs } tl
        | Some _ | None -> bad ("--jobs " ^ n))
    | a :: _ -> bad a
  in
  go default (List.tl (Array.to_list Sys.argv))

let () =
  let opts = parse_args () in
  if opts.par_bench then parallel_bench ~quick:opts.quick ()
  else if opts.perf_bench then perf_bench ()
  else begin
    worked_examples ();
    let data = run_sweep ~quick:opts.quick ~jobs:opts.jobs in
    print_figures data;
    if not opts.no_cache then cache_axis ();
    if not opts.no_ablations then ablation_studies ~quick:opts.quick;
    if not opts.no_micro then micro_benchmarks data;
    Printf.printf "\nCSV copies of every table are in %s/\n" results_dir
  end
