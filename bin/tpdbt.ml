(* tpdbt — command-line driver for the two-phase DBT reproduction.

   Subcommands: asm, dis, check, run, dbt, bench, sweep, profile,
   perfdiff, analyze, report, ablate, trace, faults, cache, chaos,
   fuzz, serve, request. *)

open Cmdliner

(* Exit-code taxonomy, uniform across subcommands (see README):
   0 success; 1 usage (bad invocation, unknown benchmark/fault/file);
   2 validation or corruption (malformed or damaged input, failed
   self-check); 3 regression or divergence (everything ran, the
   answer is bad). *)
let exit_usage = 1
let exit_invalid = 2
let exit_regression = 3

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit exit_invalid

(* Same, for operations whose failures are typed engine errors. *)
let or_die_err = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("error: " ^ Tpdbt_dbt.Error.to_string e);
      exit exit_invalid

let warn_error = function
  | None -> ()
  | Some e ->
      let label = if Tpdbt_dbt.Error.fatal e then "error" else "note" in
      Format.eprintf "%s: %s@." label (Tpdbt_dbt.Error.to_string e)

(* ------------------------------------------------------------------ *)
(* asm                                                                  *)
(* ------------------------------------------------------------------ *)

let asm_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Output binary path.")
  in
  let run file output =
    let program = or_die (Tpdbt_isa.Assembler.assemble (read_file file)) in
    let out =
      match output with
      | Some o -> o
      | None -> Filename.remove_extension file ^ ".g32"
    in
    Tpdbt_isa.Encode.write_file out program;
    Printf.printf "assembled %d instructions -> %s\n"
      (Tpdbt_isa.Program.length program)
      out
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble G32 assembly text into a binary image.")
    Term.(const run $ file $ output)

(* ------------------------------------------------------------------ *)
(* dis                                                                  *)
(* ------------------------------------------------------------------ *)

let dis_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.g32")
  in
  let run file =
    let program = or_die (Tpdbt_isa.Encode.read_file file) in
    print_string (Tpdbt_isa.Disasm.disassemble program)
  in
  Cmd.v
    (Cmd.info "dis" ~doc:"Disassemble a G32 binary image.")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* check                                                                *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file =
    let program =
      if Filename.check_suffix file ".s" then
        or_die (Tpdbt_isa.Assembler.assemble (read_file file))
      else or_die (Tpdbt_isa.Encode.read_file file)
    in
    match Tpdbt_isa.Check.check program with
    | [] -> print_endline "clean: no issues found"
    | issues ->
        List.iter
          (fun issue -> Format.printf "%a@." Tpdbt_isa.Check.pp_issue issue)
          issues;
        exit exit_invalid
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically check a guest program (unreachable code, \
          read-before-write, missing halt, bad rnd bounds).")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* shared run options                                                   *)
(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(
    value & opt int64 1L
    & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed for the guest rnd stream.")

let max_steps_arg =
  Arg.(
    value
    & opt int 200_000_000
    & info [ "max-steps" ] ~docv:"N" ~doc:"Guest instruction budget.")

let load_program file =
  if Filename.check_suffix file ".s" then
    or_die (Tpdbt_isa.Assembler.assemble (read_file file))
  else or_die (Tpdbt_isa.Encode.read_file file)

(* ------------------------------------------------------------------ *)
(* run (plain interpreter)                                              *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file seed max_steps =
    let program = load_program file in
    let machine = Tpdbt_vm.Machine.create ~seed program in
    (match Tpdbt_vm.Machine.run ~max_steps machine with
    | Ok () -> ()
    | Error trap ->
        Format.eprintf "trap: %a@." Tpdbt_vm.Machine.pp_trap trap);
    Printf.printf "steps: %d\n" (Tpdbt_vm.Machine.steps machine);
    List.iter
      (fun v -> Printf.printf "out: %d\n" v)
      (Tpdbt_vm.Machine.outputs machine)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Interpret a guest program directly (no DBT).")
    Term.(const run $ file $ seed_arg $ max_steps_arg)

(* ------------------------------------------------------------------ *)
(* dbt (two-phase translator)                                           *)
(* ------------------------------------------------------------------ *)

let policy_arg =
  let parse s =
    match Tpdbt_dbt.Code_cache.policy_of_name s with
    | Some p -> Ok p
    | None -> Error (`Msg ("unknown eviction policy: " ^ s))
  in
  let print ppf p =
    Format.pp_print_string ppf (Tpdbt_dbt.Code_cache.policy_name p)
  in
  Arg.conv (parse, print)

let jobs_arg =
  Arg.(
    value
    & opt int (Tpdbt_parallel.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for independent runs (default: the machine's \
           recommended domain count).  1 runs sequentially in-process; any \
           value produces byte-identical results.")

let report_parallel jobs stats =
  if jobs > 1 then
    Printf.eprintf "parallel: %d jobs, %d tasks, %d steals, speedup %.2fx\n%!"
      stats.Tpdbt_parallel.Pool.jobs stats.Tpdbt_parallel.Pool.tasks
      stats.Tpdbt_parallel.Pool.steals
      (Tpdbt_parallel.Pool.speedup stats)

let shadow_arg =
  Arg.(
    value & opt int 0
    & info [ "shadow" ] ~docv:"N"
        ~doc:
          "Shadow-execution oracle sampling period: replay every Nth region \
           entry on the cold path and compare architectural state \
           (0 = off).")

let dbt_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let threshold =
    Arg.(
      value & opt int 1000
      & info [ "threshold"; "t" ] ~docv:"T"
          ~doc:"Retranslation threshold (0 = profiling only).")
  in
  let show_regions =
    Arg.(value & flag & info [ "regions" ] ~doc:"Print formed regions.")
  in
  let dot =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:"Print the CFG and every region as Graphviz digraphs.")
  in
  let cache_capacity =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-capacity" ] ~docv:"INSTRS"
          ~doc:
            "Bound the code cache to this many translated guest \
             instructions (default: unbounded).")
  in
  let policy =
    Arg.(
      value
      & opt policy_arg Tpdbt_dbt.Code_cache.Lru
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Eviction policy for a bounded cache: flush_all, lru or \
             hot_protect.")
  in
  let snapshot_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Write mid-run execution snapshots to FILE (rewritten at each \
             trigger).  Required with $(b,--snapshot-every) or \
             $(b,--suspend-after).")
  in
  let snapshot_every =
    Arg.(
      value & opt int 0
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Snapshot every N guest instructions and keep running — a \
             crash loses at most N instructions of work (0 = off).")
  in
  let suspend_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "suspend-after" ] ~docv:"N"
          ~doc:
            "Suspend the run at guest instruction N, write the snapshot \
             and exit 0; continue later with $(b,--resume-run).")
  in
  let resume_run =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume-run" ] ~docv:"FILE"
          ~doc:
            "Resume from a snapshot written by $(b,--snapshot)/\
             $(b,--suspend-after) instead of starting fresh.  The engine \
             flags must match the original run (digest-checked); \
             $(b,--seed) is ignored — the PRNG state lives in the \
             snapshot.  The completed run is byte-identical to an \
             uninterrupted one.")
  in
  let run file threshold seed max_steps show_regions dot cache_capacity policy
      shadow_sample snapshot_file snapshot_every suspend_after resume_run =
    let module Engine = Tpdbt_dbt.Engine in
    let module Snap = Tpdbt_dbt.Exec_snapshot in
    let program = load_program file in
    let config =
      {
        (Tpdbt_dbt.Engine.config ~threshold ?cache_capacity
           ~cache_policy:policy ~shadow_sample ~snapshot_every
           ?deadline:suspend_after
           ~suspend_on_deadline:(suspend_after <> None) ())
        with
        max_steps;
      }
    in
    if snapshot_file = None && (snapshot_every > 0 || suspend_after <> None)
    then begin
      prerr_endline
        "--snapshot FILE is required with --snapshot-every/--suspend-after";
      exit exit_usage
    end;
    let engine =
      match resume_run with
      | None -> Engine.create ~config ~seed program
      | Some snap_file -> (
          match Snap.of_string (read_file snap_file) with
          | Snap.Corrupt reason ->
              prerr_endline ("corrupt snapshot: " ^ reason);
              exit exit_invalid
          | Snap.Stale_version line ->
              prerr_endline ("stale snapshot version: " ^ line);
              exit exit_invalid
          | Snap.Snapshot parsed -> (
              match Snap.restore ~config ~program parsed with
              | Ok engine -> engine
              | Error msg ->
                  prerr_endline ("snapshot rejected: " ^ msg);
                  exit exit_invalid))
    in
    let write_snapshot steps =
      match snapshot_file with
      | None -> ()
      | Some f ->
          write_file f
            (Snap.to_string ~config ~program (Engine.capture engine));
          Printf.eprintf "snapshot: %d steps -> %s\n%!" steps f
    in
    let rec go () =
      let r = Tpdbt_dbt.Engine.run engine in
      match r.Tpdbt_dbt.Engine.error with
      | Some (Tpdbt_dbt.Error.Suspended { steps; deadline }) ->
          write_snapshot steps;
          if deadline then begin
            Printf.printf "suspended after %d guest instructions%s\n" steps
              (match snapshot_file with
              | Some f -> " -> " ^ f
              | None -> "");
            exit 0
          end
          else go ()
      | _ -> r
    in
    let r = go () in
    let c = r.Tpdbt_dbt.Engine.counters in
    warn_error r.Tpdbt_dbt.Engine.error;
    Printf.printf "steps:              %d\n" r.Tpdbt_dbt.Engine.steps;
    Printf.printf "cycles:             %.0f\n" c.Tpdbt_dbt.Perf_model.cycles;
    Printf.printf "profiling ops:      %d\n" r.Tpdbt_dbt.Engine.profiling_ops;
    Printf.printf "blocks translated:  %d\n"
      c.Tpdbt_dbt.Perf_model.blocks_translated;
    Printf.printf "regions formed:     %d (in %d rounds)\n"
      c.Tpdbt_dbt.Perf_model.regions_formed
      c.Tpdbt_dbt.Perf_model.optimization_rounds;
    Printf.printf "region entries:     %d\n"
      c.Tpdbt_dbt.Perf_model.region_entries;
    Printf.printf "loop-backs:         %d\n" c.Tpdbt_dbt.Perf_model.loop_backs;
    Printf.printf "completions:        %d\n"
      c.Tpdbt_dbt.Perf_model.region_completions;
    Printf.printf "side exits:         %d\n" c.Tpdbt_dbt.Perf_model.side_exits;
    Printf.printf "cache peak:         %d instrs\n"
      c.Tpdbt_dbt.Perf_model.cache_peak_instrs;
    if cache_capacity <> None then
      Printf.printf "cache evictions:    %d (%d instrs, %d flushes)\n"
        c.Tpdbt_dbt.Perf_model.cache_evictions
        c.Tpdbt_dbt.Perf_model.cache_evicted_instrs
        c.Tpdbt_dbt.Perf_model.cache_flushes;
    if shadow_sample > 0 then
      Printf.printf "shadow replays:     %d (%d divergences, %d quarantined)\n"
        c.Tpdbt_dbt.Perf_model.shadow_replays
        c.Tpdbt_dbt.Perf_model.shadow_divergences
        c.Tpdbt_dbt.Perf_model.regions_quarantined;
    List.iter
      (fun v -> Printf.printf "out: %d\n" v)
      r.Tpdbt_dbt.Engine.outputs;
    if show_regions then
      List.iter
        (fun region -> Format.printf "%a@." Tpdbt_dbt.Region.pp region)
        r.Tpdbt_dbt.Engine.snapshot.Tpdbt_dbt.Snapshot.regions;
    if dot then begin
      let snap = r.Tpdbt_dbt.Engine.snapshot in
      print_string
        (Tpdbt_dbt.Dot.block_map ~use:snap.Tpdbt_dbt.Snapshot.use
           ~taken:snap.Tpdbt_dbt.Snapshot.taken
           snap.Tpdbt_dbt.Snapshot.block_map);
      List.iter
        (fun region -> print_string (Tpdbt_dbt.Dot.region region))
        snap.Tpdbt_dbt.Snapshot.regions
    end
  in
  Cmd.v
    (Cmd.info "dbt"
       ~doc:
         "Run a guest program under the two-phase translator.  With \
          $(b,--suspend-after)/$(b,--snapshot-every) the run can be \
          suspended mid-flight at guest-instruction granularity and \
          continued with $(b,--resume-run), byte-identical to an \
          uninterrupted run.")
    Term.(
      const run $ file $ threshold $ seed_arg $ max_steps_arg $ show_regions
      $ dot $ cache_capacity $ policy $ shadow_arg $ snapshot_file
      $ snapshot_every $ suspend_after $ resume_run)

(* ------------------------------------------------------------------ *)
(* bench (suite inspection)                                             *)
(* ------------------------------------------------------------------ *)

let bench_cmd =
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let dump_asm =
    Arg.(value & flag & info [ "dump-asm" ] ~doc:"Print the generated assembly.")
  in
  let run name dump_asm =
    match name with
    | None ->
        List.iter print_endline Tpdbt_workloads.Suite.names
    | Some name -> (
        match Tpdbt_workloads.Suite.find name with
        | None ->
            prerr_endline ("unknown benchmark: " ^ name);
            exit exit_usage
        | Some bench ->
            if dump_asm then print_string (Tpdbt_workloads.Spec.source bench)
            else begin
              let program, _, _ = Tpdbt_workloads.Spec.build bench in
              let bmap = Tpdbt_dbt.Block_map.build program in
              print_string (Tpdbt_workloads.Spec.describe bench);
              Printf.printf "  => %d instructions, %d basic blocks\n"
                (Tpdbt_isa.Program.length program)
                (Tpdbt_dbt.Block_map.block_count bmap)
            end)
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"List the synthetic SPEC2000 suite or inspect one benchmark.")
    Term.(const run $ name_arg $ dump_asm)

(* ------------------------------------------------------------------ *)
(* sweep (the paper's experiments)                                      *)
(* ------------------------------------------------------------------ *)

(* An optional budget override, unlike [max_steps_arg] whose default
   (the engine's own 200M) is always applied. *)
let budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"N"
        ~doc:
          "Cap every constituent run at N guest instructions (default: the \
           engine's 200M budget).  A capped run is kept as a partial \
           result, not an error.")

let sweep_cmd =
  let benches =
    Arg.(
      value & opt_all string []
      & info [ "bench"; "b" ] ~docv:"NAME"
          ~doc:"Benchmark to include (repeatable; default: all 26).")
  in
  let figures =
    Arg.(
      value & opt_all string []
      & info [ "figure"; "f" ] ~docv:"ID"
          ~doc:"Figure to print, e.g. fig8 (repeatable; default: all).")
  in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as CSV into DIR.")
  in
  let checkpoint_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"DIR"
          ~doc:
            "Checkpoint each completed benchmark into DIR and resume from \
             any checkpoints already there — a killed sweep restarted with \
             the same DIR re-runs only what it hadn't finished.")
  in
  let supervise =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Run the sweep under the supervisor: per-task deadlines, bounded \
             retry with deterministic backoff, circuit breakers and graceful \
             degradation when worker domains die.  Failing benchmarks are \
             quarantined instead of just skipped.")
  in
  let deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"N"
          ~doc:
            "With $(b,--supervise): fail any constituent run that executes \
             more than N guest instructions with a fatal deadline error \
             (default: no deadline).  With $(b,--snapshot-every) armed, the \
             blown deadline instead suspends the run resumably (also \
             honoured without $(b,--supervise)).")
  in
  let retries =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "With $(b,--supervise): total attempts per benchmark before it \
             is quarantined (default: 4).")
  in
  let snapshot_every =
    Arg.(
      value & opt int 0
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "With $(b,--checkpoint): snapshot each benchmark's mid-run \
             state into its checkpoint slot every N guest instructions, so \
             a killed sweep loses at most N instructions per benchmark \
             (0 = off).  With $(b,--deadline), a blown deadline suspends \
             the run resumably instead of failing it.")
  in
  let resume_run =
    Arg.(
      value & flag
      & info [ "resume-run" ]
          ~doc:
            "With $(b,--checkpoint): continue suspended benchmarks from \
             their mid-run snapshots instead of re-running them from \
             scratch.  Results are byte-identical either way.")
  in
  let run benches figures csv_dir checkpoint_dir jobs max_steps supervise
      deadline retries snapshot_every resume_run =
    let module Runner = Tpdbt_experiments.Runner in
    let module Sup = Tpdbt_parallel.Supervisor in
    let selected =
      match benches with
      | [] -> Tpdbt_workloads.Suite.all
      | names ->
          List.map
            (fun n ->
              match Tpdbt_workloads.Suite.find n with
              | Some b -> b
              | None ->
                  prerr_endline ("unknown benchmark: " ^ n);
                  exit exit_usage)
            names
    in
    let progress n = function
      | Runner.Started -> Printf.eprintf "running %s...\n%!" n
      | status -> Printf.eprintf "%s: %s\n%!" n (Runner.status_name status)
    in
    if (snapshot_every > 0 || resume_run) && checkpoint_dir = None then begin
      prerr_endline "--snapshot-every/--resume-run require --checkpoint DIR";
      exit exit_usage
    end;
    (* With snapshots armed, a blown deadline parks the benchmark
       resumably instead of failing it. *)
    let suspend_on_deadline = snapshot_every > 0 && deadline <> None in
    let on_snapshot_saved name =
      Printf.eprintf "snapshot: %s\n%!" name
    in
    let report = report_parallel jobs in
    let sweep =
      if supervise then begin
        let policy =
          match retries with
          | None -> Sup.default_policy
          | Some n -> { Sup.default_policy with Sup.max_attempts = max 1 n }
        in
        let report (s : Sup.stats) =
          if jobs > 1 || s.Sup.retries > 0 || s.Sup.poisoned > 0 then
            Printf.eprintf
              "supervised: %d tasks, %d attempts, %d retries, %d poisoned, \
               %d crashes%s\n\
               %!"
              s.Sup.tasks s.Sup.attempts s.Sup.retries s.Sup.poisoned
              s.Sup.crashes
              (if s.Sup.degraded then " (pool degraded)" else "")
        in
        let sweep, supervision =
          match checkpoint_dir with
          | Some dir ->
              Tpdbt_experiments.Checkpoint.run_many_supervised ?max_steps
                ?deadline ~snapshot_every ~suspend_on_deadline
                ~resume_suspended:resume_run ~on_snapshot_saved ~jobs ~policy
                ~progress ~report ~dir selected
          | None ->
              Runner.run_many_supervised ?max_steps ?deadline ~jobs ~policy
                ~progress ~report selected
        in
        List.iter
          (fun (name, reason) ->
            Printf.eprintf "corrupt checkpoint %s: %s (re-ran)\n%!" name reason)
          supervision.Runner.corrupt;
        List.iter
          (fun ((b : Tpdbt_workloads.Spec.t), reason) ->
            Printf.eprintf "quarantined %s: %s\n%!" b.Tpdbt_workloads.Spec.name
              reason)
          supervision.Runner.poisoned;
        sweep
      end
      else
        match checkpoint_dir with
        | Some dir ->
            Tpdbt_experiments.Checkpoint.run_many_par ?max_steps
              ?deadline:(if suspend_on_deadline then deadline else None)
              ~snapshot_every ~suspend_on_deadline
              ~resume_suspended:resume_run ~on_snapshot_saved ~jobs ~progress
              ~report ~dir selected
        | None ->
            Runner.run_many_par ?max_steps ~jobs ~progress ~report selected
    in
    let suspended, fatal =
      List.partition Runner.suspended_failure sweep.Runner.failures
    in
    List.iter
      (fun { Runner.failed; error } ->
        Printf.eprintf "failed %s: %s\n%!" failed.Tpdbt_workloads.Spec.name
          (Tpdbt_dbt.Error.to_string error))
      fatal;
    List.iter
      (fun { Runner.failed; _ } ->
        Printf.eprintf
          "suspended %s: mid-run snapshot saved; rerun with --resume-run to \
           continue\n\
           %!"
          failed.Tpdbt_workloads.Spec.name)
      suspended;
    let tables = Tpdbt_experiments.Figures.all sweep.Runner.data in
    let tables =
      match figures with
      | [] -> tables
      | wanted -> List.filter (fun (id, _) -> List.mem id wanted) tables
    in
    List.iter
      (fun (id, table) ->
        print_endline id;
        Tpdbt_experiments.Table.print ~precision:3 table;
        print_newline ();
        match csv_dir with
        | None -> ()
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let path = Filename.concat dir (id ^ ".csv") in
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc (Tpdbt_experiments.Table.to_csv table)))
      tables;
    if fatal <> [] then exit exit_regression
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run the paper's threshold sweep and print the figures' tables \
          (Figures 8-18).  Benchmarks run in parallel across worker domains \
          ($(b,--jobs)); output is byte-identical at every job count.  \
          Benchmarks that fail with a typed error are reported and skipped; \
          the rest of the sweep still runs.  With $(b,--supervise), failing \
          benchmarks are retried with deterministic backoff and quarantined \
          by a circuit breaker, and worker-domain crashes degrade the pool \
          instead of killing the sweep.  With $(b,--checkpoint) and \
          $(b,--snapshot-every), benchmarks snapshot mid-run and a killed \
          sweep restarted with $(b,--resume-run) continues each from its \
          exact guest instruction.")
    Term.(
      const run $ benches $ figures $ csv_dir $ checkpoint_dir $ jobs_arg
      $ budget_arg $ supervise $ deadline $ retries $ snapshot_every
      $ resume_run)

(* ------------------------------------------------------------------ *)
(* profile / analyze (the paper's collect-then-analyse workflow)        *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let module Tel = Tpdbt_telemetry in
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "Suite benchmark name (see $(b,tpdbt bench)) or a guest program \
             file (.s or .g32).")
  in
  let threshold =
    Arg.(
      value & opt int 0
      & info [ "threshold"; "t" ] ~docv:"T"
          ~doc:
            "Retranslation threshold; 0 collects an AVEP-style full-run \
             profile.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT"
          ~doc:
            "Path for the profile snapshot (.prof); default \
             $(b,OUT_DIR/NAME.prof).")
  in
  let out_dir =
    Arg.(
      value & opt string "profile-out"
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Directory for the emitted files (created if missing).")
  in
  let run workload threshold seed max_steps output out_dir =
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    let name = Filename.remove_extension (Filename.basename workload) in
    let config = { (Tpdbt_dbt.Engine.config ~threshold ()) with max_steps } in
    (* The profiler and the attribution tables consume only the span
       and cost events — a few per optimisation round, not one per
       guest step — so keep exactly those and stream everything else
       straight into the metrics registry.  Unlike [trace], nothing
       here buffers the full event stream, so long runs never
       truncate. *)
    let metrics = Tel.Metrics.create () in
    let span_events = ref [] in
    let keep =
      Tel.Sink.of_fun (fun ~step event ->
          match event with
          | Tel.Event.Span_begin _ | Tel.Event.Span_end _
          | Tel.Event.Stage_cost _ | Tel.Event.Region_cost _ ->
              span_events := { Tel.Event.step; event } :: !span_events
          | _ -> ())
    in
    let collector = Tel.Sink.collect ~into:metrics in
    let sink = Tel.Sink.tee [ keep; collector ] in
    let result =
      match Tpdbt_workloads.Suite.find workload with
      | Some bench -> Tpdbt_experiments.Runner.run_ref ~sink bench ~config
      | None ->
          if not (Sys.file_exists workload) then begin
            prerr_endline
              ("unknown workload (neither a suite benchmark nor a file): "
             ^ workload);
            exit exit_usage
          end;
          let program = load_program workload in
          let config = { config with Tpdbt_dbt.Engine.sink } in
          let engine = Tpdbt_dbt.Engine.create ~config ~seed program in
          Tpdbt_dbt.Engine.run engine
    in
    sink.Tel.Sink.close ();
    Tpdbt_dbt.Perf_model.record result.Tpdbt_dbt.Engine.counters metrics;
    warn_error result.Tpdbt_dbt.Engine.error;
    let events = List.rev !span_events in
    (* Every export is re-checked through its own strict parser before
       it is reported as written — a malformed artefact is a bug here,
       not in the consumer. *)
    let profiler = Tel.Profiler.of_events events in
    let profile_json = Tel.Profiler.to_json profiler in
    (match Tel.Json.validate profile_json with
    | Ok () -> ()
    | Error msg ->
        prerr_endline ("internal error: profile export " ^ msg);
        exit exit_invalid);
    let prom = Tel.Openmetrics.render metrics in
    (match Tel.Openmetrics.validate prom with
    | Ok () -> ()
    | Error msg ->
        prerr_endline ("internal error: openmetrics export " ^ msg);
        exit exit_invalid);
    let folded_path = Filename.concat out_dir (name ^ ".folded") in
    let json_path = Filename.concat out_dir (name ^ ".profile.json") in
    let prom_path = Filename.concat out_dir (name ^ ".metrics.prom") in
    let csv_path = Filename.concat out_dir (name ^ ".attribution.csv") in
    write_file folded_path (Tel.Profiler.to_folded profiler);
    write_file json_path profile_json;
    write_file prom_path prom;
    let attribution = Tel.Attribution.of_events events in
    write_file csv_path (Tel.Attribution.to_csv attribution);
    let prof_path =
      match output with
      | Some o -> o
      | None -> Filename.concat out_dir (name ^ ".prof")
    in
    Tpdbt_profiles.Profile_io.save prof_path result.Tpdbt_dbt.Engine.snapshot;
    if not (Tel.Attribution.is_empty attribution) then begin
      print_string (Tel.Attribution.render attribution);
      print_newline ()
    end;
    Printf.printf
      "profile written to %s (%d profiling operations, %d regions)\n\
       wrote %s\nwrote %s\nwrote %s\nwrote %s\n"
      prof_path result.Tpdbt_dbt.Engine.profiling_ops
      (List.length result.Tpdbt_dbt.Engine.snapshot.Tpdbt_dbt.Snapshot.regions)
      folded_path json_path prom_path csv_path
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a workload under the profiler: write its profile snapshot \
          (INIP(T) or AVEP), a collapsed-stack file for flamegraphs, a JSON \
          span profile, an OpenMetrics exposition and a stage-attribution \
          CSV, and print the attribution table.")
    Term.(
      const run $ workload $ threshold $ seed_arg $ max_steps_arg $ output
      $ out_dir)

(* ------------------------------------------------------------------ *)
(* perfdiff (perf-regression gate)                                      *)
(* ------------------------------------------------------------------ *)

let perfdiff_cmd =
  let old_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD.json")
  in
  let new_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW.json")
  in
  let tolerance =
    Arg.(
      value & opt float 5.0
      & info [ "tolerance" ] ~docv:"PCT"
          ~doc:"Allowed change per metric, in percent.")
  in
  let warn_only =
    Arg.(
      value & flag
      & info [ "warn-only" ]
          ~doc:"Report regressions but exit 0 (CI advisory mode).")
  in
  let alloc_only =
    Arg.(
      value & flag
      & info [ "alloc-only" ]
          ~doc:
            "Judge only alloc_per_instr. Allocation per guest instruction is \
             deterministic where wall clock is not, so this is the metric a \
             hard CI gate can hold to a tight tolerance.")
  in
  let run old_file new_file tolerance warn_only alloc_only =
    let module Perfdiff = Tpdbt_experiments.Perfdiff in
    let tolerance = tolerance /. 100.0 in
    let only = if alloc_only then Some "alloc_per_instr" else None in
    match
      Perfdiff.of_strings ?only ~tolerance (read_file old_file)
        (read_file new_file)
    with
    | Error msg ->
        prerr_endline ("error: " ^ msg);
        exit exit_invalid
    | Ok report ->
        print_string (Perfdiff.render report);
        if Perfdiff.regressions report <> [] && not warn_only then
          exit exit_regression
  in
  Cmd.v
    (Cmd.info "perfdiff"
       ~doc:
         "Compare two BENCH_perf.json files metric by metric and exit \
          nonzero on any regression beyond the tolerance.")
    Term.(const run $ old_file $ new_file $ tolerance $ warn_only $ alloc_only)

let report_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PROFILE.prof")
  in
  let avep_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "avep" ] ~docv:"AVEP.prof"
          ~doc:"Average profile to compare region probabilities against.")
  in
  let run file avep_file =
    let snapshot = or_die_err (Tpdbt_profiles.Profile_io.load file) in
    let avep =
      Option.map (fun f -> or_die_err (Tpdbt_profiles.Profile_io.load f)) avep_file
    in
    print_string (Tpdbt_profiles.Report.render ?avep snapshot)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Summarise a profile file: hottest blocks and region details.")
    Term.(const run $ file $ avep_file)

let analyze_cmd =
  let inip_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INIP.prof")
  in
  let avep_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"AVEP.prof")
  in
  let run inip_file avep_file =
    let inip = or_die_err (Tpdbt_profiles.Profile_io.load inip_file) in
    let avep = or_die_err (Tpdbt_profiles.Profile_io.load avep_file) in
    if inip.Tpdbt_dbt.Snapshot.regions = [] then
      (* Two flat profiles: the train-vs-AVEP comparison. *)
      let f = Tpdbt_profiles.Metrics.compare_flat ~predicted:inip ~avep in
      Printf.printf "flat comparison: Sd.BP=%.4f bp_mismatch=%.3f (%d samples)\n"
        f.Tpdbt_profiles.Metrics.sd_bp f.Tpdbt_profiles.Metrics.bp_mismatch
        f.Tpdbt_profiles.Metrics.bp_samples
    else
      let c = Tpdbt_profiles.Metrics.compare_snapshots ~inip ~avep in
      Format.printf "%a@." Tpdbt_profiles.Metrics.pp_comparison c
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Off-line analysis: compare an initial profile against an average \
          profile (the paper's Sd and mismatch metrics).")
    Term.(const run $ inip_file $ avep_file)

(* ------------------------------------------------------------------ *)
(* trace (telemetry capture)                                            *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let module Tel = Tpdbt_telemetry in
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "Suite benchmark name (see $(b,tpdbt bench)) or a guest program \
             file (.s or .g32).")
  in
  let threshold =
    Arg.(
      value & opt int 50
      & info [ "threshold"; "t" ] ~docv:"T"
          ~doc:"Retranslation threshold for the traced run.")
  in
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:"Enable adaptive region dissolution (paper \194\1675).")
  in
  let out_dir =
    Arg.(
      value & opt string "trace-out"
      & info [ "o"; "out-dir" ] ~docv:"DIR"
          ~doc:"Directory for the emitted files (created if missing).")
  in
  let max_events =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-events" ] ~docv:"N"
          ~doc:
            "Cap on events kept in memory for the summary and the Chrome \
             trace; the JSONL log always streams the full run.")
  in
  let run workload threshold adaptive seed max_steps out_dir max_events =
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    let name =
      Filename.remove_extension (Filename.basename workload)
    in
    let events_path = Filename.concat out_dir (name ^ ".events.jsonl") in
    let trace_path = Filename.concat out_dir (name ^ ".trace.json") in
    let metrics_path = Filename.concat out_dir (name ^ ".metrics.json") in
    let events_oc = open_out events_path in
    let result, buffer, metrics =
      Fun.protect
        ~finally:(fun () -> close_out events_oc)
        (fun () ->
          let jsonl = Tel.Sink.jsonl events_oc in
          let config =
            {
              (Tpdbt_dbt.Engine.config ~threshold ~adaptive ()) with
              max_steps;
            }
          in
          match Tpdbt_workloads.Suite.find workload with
          | Some bench ->
              Tpdbt_experiments.Runner.run_traced ~limit:max_events
                ~extra_sinks:[ jsonl ] bench ~config
          | None ->
              if not (Sys.file_exists workload) then begin
                prerr_endline
                  ("unknown workload (neither a suite benchmark nor a file): "
                 ^ workload);
                exit exit_usage
              end;
              let program = load_program workload in
              let metrics = Tel.Metrics.create () in
              let mem_sink, buffer = Tel.Sink.memory ~limit:max_events () in
              let collector = Tel.Sink.collect ~into:metrics in
              let sink = Tel.Sink.tee [ mem_sink; collector; jsonl ] in
              let config = { config with Tpdbt_dbt.Engine.sink } in
              let engine = Tpdbt_dbt.Engine.create ~config ~seed program in
              let result = Tpdbt_dbt.Engine.run engine in
              sink.Tel.Sink.close ();
              Tpdbt_dbt.Perf_model.record
                result.Tpdbt_dbt.Engine.counters metrics;
              (result, buffer, metrics))
    in
    let events = Tel.Sink.contents buffer in
    if Tel.Sink.dropped buffer > 0 then
      Printf.eprintf
        "note: kept the first %d events in memory (%d more dropped); the \
         summary and Chrome trace are truncated, the JSONL log is complete\n"
        (List.length events)
        (Tel.Sink.dropped buffer);
    warn_error result.Tpdbt_dbt.Engine.error;
    let trace_json = Tel.Chrome_trace.to_json ~process_name:name events in
    (match Tel.Json.validate trace_json with
    | Ok () -> ()
    | Error msg ->
        prerr_endline ("internal error: trace export " ^ msg);
        exit exit_invalid);
    write_file trace_path trace_json;
    write_file metrics_path (Tel.Metrics.to_json metrics);
    print_string (Tel.Summary.render events);
    print_newline ();
    print_string (Tel.Metrics.render metrics);
    Printf.printf "\nwrote %s (%d events)\nwrote %s\nwrote %s\n" events_path
      (List.length events) trace_path metrics_path
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload with full telemetry: write a JSONL event log, a \
          Chrome trace_event file (chrome://tracing / Perfetto) and a \
          metrics dump, and print a run summary.")
    Term.(
      const run $ workload $ threshold $ adaptive $ seed_arg $ max_steps_arg
      $ out_dir $ max_events)

(* ------------------------------------------------------------------ *)
(* ablate (design-choice studies)                                       *)
(* ------------------------------------------------------------------ *)

let ablate_cmd =
  let studies =
    Arg.(
      value & opt_all string []
      & info [ "study"; "s" ] ~docv:"NAME"
          ~doc:
            "Study to run: region-formation, min-branch-prob, pool-trigger, \
             adaptive (repeatable; default: all).")
  in
  let benches =
    Arg.(
      value & opt_all string []
      & info [ "bench"; "b" ] ~docv:"NAME"
          ~doc:"Benchmark to include (repeatable).")
  in
  let run studies benches =
    let benchmarks = match benches with [] -> None | l -> Some l in
    let tables = Tpdbt_experiments.Ablations.all ?benchmarks () in
    let tables =
      match studies with
      | [] -> tables
      | wanted -> List.filter (fun (id, _) -> List.mem id wanted) tables
    in
    List.iter
      (fun (id, table) ->
        print_endline id;
        Tpdbt_experiments.Table.print ~precision:3 table;
        print_newline ())
      tables
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:"Run the ablation studies over the translator's design choices.")
    Term.(const run $ studies $ benches)

(* ------------------------------------------------------------------ *)
(* faults (seeded fault-injection campaign)                             *)
(* ------------------------------------------------------------------ *)

let faults_cmd =
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:"Suite benchmark name (see $(b,tpdbt bench)).")
  in
  let threshold =
    Arg.(
      value & opt int 20
      & info [ "threshold"; "t" ] ~docv:"T"
          ~doc:"Retranslation threshold for the campaign runs.")
  in
  let trials =
    Arg.(
      value & opt int 8
      & info [ "trials"; "n" ] ~docv:"N" ~doc:"Number of faulty runs.")
  in
  let arms =
    Arg.(
      value & opt int 4
      & info [ "arms" ] ~docv:"N" ~doc:"Fault arms per trial plan.")
  in
  let kinds =
    Arg.(
      value & opt_all string []
      & info [ "kind"; "k" ] ~docv:"KIND"
          ~doc:
            "Fault kind to draw from: retranslate_fail, block_corrupt, \
             region_abort, guest_trap, silent_corruption, cache_thrash \
             (repeatable; default: all).")
  in
  let show_plans =
    Arg.(
      value & flag
      & info [ "plans" ] ~doc:"Also print each trial's fault plan.")
  in
  let run workload threshold trials arms kinds seed shadow_sample show_plans
      jobs =
    let module Campaign = Tpdbt_experiments.Campaign in
    let module Fault = Tpdbt_faults.Fault in
    let bench =
      match Tpdbt_workloads.Suite.find workload with
      | Some b -> b
      | None ->
          prerr_endline ("unknown benchmark: " ^ workload);
          exit exit_usage
    in
    let kinds =
      match kinds with
      | [] -> None
      | names ->
          Some
            (List.map
               (fun n ->
                 match Fault.kind_of_name n with
                 | Some k -> k
                 | None ->
                     prerr_endline ("unknown fault kind: " ^ n);
                     exit exit_usage)
               names)
    in
    let campaign =
      try
        Campaign.run ?kinds ~jobs ~threshold ~trials ~arms ~shadow_sample ~seed
          bench
      with Tpdbt_dbt.Error.Error e ->
        prerr_endline
          ("error: clean run failed: " ^ Tpdbt_dbt.Error.to_string e);
        exit exit_invalid
    in
    Format.printf "%a@." Campaign.render campaign;
    if show_plans then
      List.iter
        (fun tr ->
          Format.printf "trial %d plan: %a@." tr.Campaign.index
            Tpdbt_faults.Plan.pp tr.Campaign.plan)
        campaign.Campaign.trials;
    if not (Campaign.ok campaign) then exit exit_regression
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run a seeded fault-injection campaign against a benchmark and \
          print the survival/recovery summary.  Exits non-zero if any \
          trial let an exception escape the engine or executed silently \
          corrupted code undetected (run with $(b,--shadow) to arm the \
          oracle).")
    Term.(
      const run $ workload $ threshold $ trials $ arms $ kinds $ seed_arg
      $ shadow_arg $ show_plans $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* cache (bounded code-cache sweep)                                     *)
(* ------------------------------------------------------------------ *)

let cache_cmd =
  let module Runner = Tpdbt_experiments.Runner in
  let benches =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Suite benchmark names (default: gzip).")
  in
  let threshold =
    Arg.(
      value & opt int 20
      & info [ "threshold"; "t" ] ~docv:"T"
          ~doc:"Retranslation threshold for the sweep runs.")
  in
  let fracs =
    Arg.(
      value
      & opt_all float []
      & info [ "frac" ] ~docv:"F"
          ~doc:
            "Cache capacity as a fraction of the benchmark's translated \
             footprint (repeatable; default: 0.125 0.25 0.5 1.0).")
  in
  let policies =
    Arg.(
      value
      & opt_all policy_arg []
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Eviction policy to sweep: flush_all, lru or hot_protect \
             (repeatable; default: all three).")
  in
  let expect_evictions =
    Arg.(
      value & flag
      & info [ "expect-evictions" ]
          ~doc:
            "Fail unless the sweep actually evicted something — guards a \
             smoke test against capacities that never bind.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV.")
  in
  let run benches threshold fracs policies shadow_sample expect_evictions csv
      jobs max_steps =
    let benches = match benches with [] -> [ "gzip" ] | l -> l in
    let selected =
      List.map
        (fun n ->
          match Tpdbt_workloads.Suite.find n with
          | Some b -> b
          | None ->
              prerr_endline ("unknown benchmark: " ^ n);
              exit exit_usage)
        benches
    in
    let fracs = match fracs with [] -> None | l -> Some l in
    let policies = match policies with [] -> None | l -> Some l in
    let sweeps =
      List.map
        (fun bench ->
          Runner.run_cache_sweep ~jobs ~threshold ?fracs ?policies
            ~shadow_sample ?max_steps bench)
        selected
    in
    (* Invariant first: a bounded cache costs cycles, never behaviour.
       Only meaningful between runs that actually completed: a binding
       --max-steps cap cuts runs off mid-flight at (legitimately)
       slightly different points. *)
    let budget_limited (r : Tpdbt_dbt.Engine.result) =
      match r.Tpdbt_dbt.Engine.error with
      | Some (Tpdbt_dbt.Error.Limit_exceeded _) -> true
      | _ -> false
    in
    let violations = ref 0 in
    let evictions = ref 0 in
    List.iter
      (fun (s : Runner.cache_data) ->
        let base = s.Runner.baseline in
        List.iter
          (fun (p : Runner.cache_point) ->
            let r = p.Runner.bounded in
            let c = r.Tpdbt_dbt.Engine.counters in
            evictions := !evictions + c.Tpdbt_dbt.Perf_model.cache_evictions;
            warn_error r.Tpdbt_dbt.Engine.error;
            if
              (not (budget_limited base || budget_limited r))
              && (r.Tpdbt_dbt.Engine.outputs <> base.Tpdbt_dbt.Engine.outputs
                 || r.Tpdbt_dbt.Engine.steps <> base.Tpdbt_dbt.Engine.steps)
            then begin
              incr violations;
              Printf.eprintf
                "BEHAVIOUR DIVERGED: %s policy %s frac %g (capacity %d)\n%!"
                s.Runner.cache_bench.Tpdbt_workloads.Spec.name
                (Tpdbt_dbt.Code_cache.policy_name p.Runner.policy)
                p.Runner.frac p.Runner.capacity
            end)
          s.Runner.points;
        Printf.printf "%s: footprint %d instrs, baseline %.0f cycles\n"
          s.Runner.cache_bench.Tpdbt_workloads.Spec.name s.Runner.footprint
          s.Runner.baseline.Tpdbt_dbt.Engine.counters.Tpdbt_dbt.Perf_model
            .cycles)
      sweeps;
    let table = Tpdbt_experiments.Figures.cache_sweep sweeps in
    Tpdbt_experiments.Table.print ~precision:3 table;
    (match csv with
    | None -> ()
    | Some path -> (
        let path =
          (* Accept a directory (the sweep command's --csv convention)
             as well as a file path. *)
          if Sys.file_exists path && Sys.is_directory path then
            Filename.concat path "cache_sweep.csv"
          else path
        in
        try
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Tpdbt_experiments.Table.to_csv table))
        with Sys_error msg ->
          Printf.eprintf "cannot write CSV: %s\n%!" msg;
          exit exit_usage));
    Printf.printf "total evictions across sweep: %d\n" !evictions;
    if !violations > 0 then begin
      Printf.eprintf "%d sweep point(s) changed guest behaviour\n%!"
        !violations;
      exit exit_regression
    end;
    if expect_evictions && !evictions = 0 then begin
      prerr_endline "expected evictions, saw none (capacity never bound)";
      exit exit_regression
    end
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Sweep bounded code-cache capacities over eviction policies and \
          print cycles relative to an unbounded cache.  Exits non-zero if \
          any bounded run changes guest behaviour (outputs or step count) \
          relative to the unbounded baseline.")
    Term.(
      const run $ benches $ threshold $ fracs $ policies $ shadow_arg
      $ expect_evictions $ csv $ jobs_arg $ budget_arg)

(* ------------------------------------------------------------------ *)
(* chaos (supervised-sweep chaos harness)                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let module Campaign = Tpdbt_experiments.Campaign in
  let module Runner = Tpdbt_experiments.Runner in
  let benches =
    Arg.(
      value & opt_all string []
      & info [ "bench"; "b" ] ~docv:"NAME"
          ~doc:
            "Benchmark to include (repeatable; default: gzip swim mgrid \
             art mcf).  The first few, in seed-shuffled order, each receive \
             one fault: stall, worker crash, checkpoint bit-flip, task \
             panic, kill at a seeded mid-run guest instruction (resumed \
             from its snapshot), checkpoint truncation.")
  in
  let dir =
    Arg.(
      value & opt string "chaos-out"
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Checkpoint directory for the chaos sweep (created if missing; \
             existing *.ckpt files in it are deleted — the harness owns \
             the directory).")
  in
  let summary =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE"
          ~doc:
            "Also write the deterministic JSON summary to FILE — \
             byte-identical across job counts and repeated same-seed runs.")
  in
  let chaos_steps =
    Arg.(
      value & opt int 200_000
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Cap every constituent run at N guest instructions; capped runs \
             are kept as partial results, so the harness stays fast while \
             still exercising every fault path.")
  in
  let serve_mode =
    Arg.(
      value & flag
      & info [ "serve" ]
          ~doc:
            "Attack the serving path instead of the batch sweep: drive the \
             $(b,tpdbt serve) state machine through framing/protocol \
             damage, overload, a client death, a worker crash, a stall, a \
             kill mid-sweep with a torn journal, recovery and drain — then \
             byte-diff every surviving benchmark against an offline run.")
  in
  let write_summary summary json =
    match summary with
    | None -> ()
    | Some file ->
        (match Tpdbt_telemetry.Json.validate json with
        | Ok () -> ()
        | Error msg ->
            prerr_endline ("internal error: chaos summary " ^ msg);
            exit exit_invalid);
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc json;
            output_char oc '\n');
        Printf.printf "wrote %s\n" file
  in
  let run benches seed jobs dir summary max_steps serve_mode =
    let benches =
      match benches with
      | [] -> None
      | names ->
          Some
            (List.map
               (fun n ->
                 match Tpdbt_workloads.Suite.find n with
                 | Some b -> b
                 | None ->
                     prerr_endline ("unknown benchmark: " ^ n);
                     exit exit_usage)
               names)
    in
    if serve_mode then begin
      let module Chaos_serve = Tpdbt_serve.Chaos_serve in
      let c =
        try Chaos_serve.run ?benches ~max_steps ~dir ~seed ()
        with Invalid_argument msg ->
          prerr_endline ("error: " ^ msg);
          exit exit_invalid
      in
      Format.printf "%a@." Chaos_serve.render c;
      write_summary summary (Chaos_serve.to_json c);
      if not (Chaos_serve.ok c) then exit exit_regression
    end
    else begin
      let progress n = function
        | Runner.Started -> Printf.eprintf "running %s...\n%!" n
        | status -> Printf.eprintf "%s: %s\n%!" n (Runner.status_name status)
      in
      let c =
        try Campaign.chaos ~jobs ?benches ~max_steps ~progress ~dir ~seed ()
        with Invalid_argument msg ->
          prerr_endline ("error: " ^ msg);
          exit exit_invalid
      in
      Format.printf "%a@." Campaign.render_chaos c;
      write_summary summary (Campaign.chaos_to_json c);
      if not (Campaign.chaos_ok c) then exit exit_regression
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Attack a supervised checkpointed sweep with injected faults — a \
          stalled workload, a worker-domain crash, a panicking task, a kill \
          at an arbitrary guest instruction (resumed from its mid-run \
          snapshot), and bit-flipped/truncated checkpoint files — then \
          resume and verify that every non-quarantined benchmark's results \
          are byte-identical to a fault-free sequential run.  With \
          $(b,--serve), attack the serving path instead.  Exits non-zero \
          unless the system survives with exactly the expected casualties.")
    Term.(
      const run $ benches $ seed_arg $ jobs_arg $ dir $ summary $ chaos_steps
      $ serve_mode)

(* ------------------------------------------------------------------ *)
(* fuzz (differential fuzzing)                                          *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let module Driver = Tpdbt_fuzz.Driver in
  let module Oracle = Tpdbt_fuzz.Oracle in
  let budget =
    Arg.(
      value & opt int 100
      & info [ "budget" ] ~docv:"N"
          ~doc:"Number of generated programs to judge.")
  in
  let size =
    Arg.(
      value & opt int 48
      & info [ "size" ] ~docv:"N"
          ~doc:"Target main-line instruction count per generated program.")
  in
  let corpus =
    Arg.(
      value & opt string "fuzz-corpus"
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Directory shrunk reproducers are written to (created if \
             missing; files appear only when a case diverges).")
  in
  let summary =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE"
          ~doc:
            "Also write the deterministic JSON summary to FILE — \
             byte-identical across job counts and repeated same-seed runs.")
  in
  let run budget size seed jobs corpus summary_file =
    if budget <= 0 || size <= 0 then begin
      prerr_endline "error: --budget and --size must be positive";
      exit exit_usage
    end;
    let config =
      {
        Driver.budget;
        size;
        seed;
        jobs = Some jobs;
        corpus_dir = Some corpus;
      }
    in
    let s = Driver.run config in
    let json = Driver.summary_json s in
    (match Tpdbt_telemetry.Json.validate json with
    | Ok () -> ()
    | Error msg ->
        prerr_endline ("internal error: fuzz summary " ^ msg);
        exit exit_invalid);
    Printf.printf
      "fuzz: %d cases (%d skipped), %d checks across %d arms, %d divergent\n"
      s.Driver.budget s.Driver.skipped s.Driver.checks
      (List.length Oracle.arm_labels)
      (List.length s.Driver.failures);
    List.iter
      (fun (f : Driver.failure) ->
        Printf.printf "case %d (guest seed %Ld): shrunk %d -> %d instrs\n"
          f.Driver.case f.Driver.guest_seed f.Driver.original_active
          f.Driver.shrunk_active;
        List.iter
          (fun (d : Oracle.divergence) ->
            Printf.printf "  [%s] %s: %s\n" d.Oracle.arm d.Oracle.kind
              d.Oracle.detail)
          f.Driver.divergences;
        List.iter (fun p -> Printf.printf "  wrote %s\n" p) f.Driver.saved)
      s.Driver.failures;
    (match summary_file with
    | None -> ()
    | Some file ->
        write_file file (json ^ "\n");
        Printf.printf "wrote %s\n" file);
    if s.Driver.failures <> [] then exit exit_regression
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate seeded random (terminating) guest \
          programs, run each through the pure interpreter and the two-phase \
          engine across a threshold/cache/policy/optimizer config matrix, \
          and compare end-state fingerprints plus perf-counter invariants.  \
          Any divergence is delta-debugged down to a minimal reproducer and \
          written to the corpus directory with its seed.  Same seed, same \
          campaign, byte for byte — at any $(b,--jobs).  Exits 3 on \
          divergence.")
    Term.(const run $ budget $ size $ seed_arg $ jobs_arg $ corpus $ summary)

(* ------------------------------------------------------------------ *)
(* serve / request (translation service)                                *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt string Tpdbt_serve.Daemon.default_options.Tpdbt_serve.Daemon.socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path the daemon listens on.")

let serve_cmd =
  let module Serve = Tpdbt_serve in
  let queue_limit =
    Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.queue_limit
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Admission bound: expensive requests beyond N queued jobs are \
             refused with an $(i,overloaded) reply instead of buffered.")
  in
  let deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"STEPS"
          ~doc:
            "Per-run guest-step deadline (supervisor budget) applied to \
             every engine run the daemon performs.")
  in
  let serve_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Server-wide guest-instruction cap; a request's own max_steps \
             wins when smaller.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"DIR"
          ~doc:
            "Checkpoint sweeps into DIR — also the recovery substrate a \
             restarted daemon resumes from.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Crash-only session journal: in-flight sweeps of a killed \
             daemon are re-run on restart.")
  in
  let warm =
    Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.warm_capacity
      & info [ "warm-capacity" ] ~docv:"INSTRS"
          ~doc:
            "Warm reply cache budget, in translated guest instructions \
             (shared across requests, LRU).")
  in
  let idle_timeout =
    Arg.(
      value
      & opt float Serve.Daemon.default_options.Serve.Daemon.idle_timeout
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Drop clients silent for this long.")
  in
  let snapshot_every =
    Arg.(
      value & opt int 0
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "With $(b,--checkpoint): every N guest instructions each sweep \
             benchmark publishes a mid-run snapshot into the store (and a \
             breadcrumb into the journal), so a killed daemon's orphaned \
             sweeps resume from the exact guest instruction on restart.  \
             0 disables.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No lifecycle logging.")
  in
  let run socket queue_limit jobs deadline max_steps checkpoint journal warm
      snapshot_every idle_timeout quiet =
    if snapshot_every > 0 && checkpoint = None then begin
      prerr_endline "error: --snapshot-every requires --checkpoint DIR";
      exit exit_usage
    end;
    let options =
      {
        Serve.Daemon.socket;
        idle_timeout;
        server =
          {
            Serve.Server.default_config with
            Serve.Server.queue_limit;
            jobs;
            deadline;
            max_steps;
            warm_capacity = warm;
            checkpoint_dir = checkpoint;
            journal_path = journal;
            snapshot_every;
          };
      }
    in
    let log = if quiet then fun _ -> () else Printf.eprintf "serve: %s\n%!" in
    try Serve.Daemon.run ~log options
    with Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "error: %s %s: %s\n%!" fn arg (Unix.error_message e);
      exit exit_usage
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the fault-tolerant translation daemon on a Unix-domain \
          socket: bounded admission queue with explicit backpressure, \
          strict request validation, a shared warm translation cache, \
          per-request deadlines, health probes, OpenMetrics, graceful \
          drain on SIGTERM or a $(i,drain) request, and crash-only \
          journal recovery (see docs/serve.md for the protocol).")
    Term.(
      const run $ socket_arg $ queue_limit $ jobs_arg $ deadline
      $ serve_steps $ checkpoint $ journal $ warm $ snapshot_every
      $ idle_timeout $ quiet)

let request_cmd =
  let payload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JSON"
          ~doc:
            "The request object, e.g. '{\"op\":\"status\"}' or \
             '{\"op\":\"run\",\"workload\":\"gzip\",\"threshold\":20}'.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry an $(i,overloaded) reply up to N times with \
             deterministic seeded exponential backoff (50 ms base, \
             jittered by $(b,--backoff)).  Only backpressure is retried; \
             $(i,invalid) and $(i,draining) refusals are final.")
  in
  let backoff =
    Arg.(
      value & opt int64 7L
      & info [ "backoff" ] ~docv:"SEED"
          ~doc:
            "Seed for the backoff jitter — the delay schedule is a pure \
             function of (retries, seed), so a retrying client is \
             reproducible while distinct seeds decorrelate a fleet.")
  in
  let overloaded reply =
    match Tpdbt_telemetry.Json.parse reply with
    | Ok doc ->
        Tpdbt_telemetry.Json.member "kind" doc
        = Some (Tpdbt_telemetry.Json.Str "overloaded")
    | Error _ -> false
  in
  let refused reply =
    match Tpdbt_telemetry.Json.parse reply with
    | Ok doc ->
        Tpdbt_telemetry.Json.member "ok" doc
        = Some (Tpdbt_telemetry.Json.Bool false)
    | Error _ -> false
  in
  let run socket payload retries backoff =
    (* Delay schedule is precomputed (pure in retries+seed); attempt k
       sleeps delays.(k) before resending, and the last reply — whatever
       it is — is the one printed and classified. *)
    let delays = Tpdbt_serve.Daemon.retry_delays ~retries ~seed:backoff in
    let rec attempt delays =
      match Tpdbt_serve.Daemon.request ~socket payload with
      | Error msg ->
          prerr_endline ("error: " ^ msg);
          exit exit_usage
      | Ok reply when overloaded reply -> (
          match delays with
          | d :: rest ->
              Printf.eprintf "overloaded; retrying in %.3fs\n%!" d;
              Unix.sleepf d;
              attempt rest
          | [] -> reply)
      | Ok reply -> reply
    in
    let reply = attempt delays in
    print_endline reply;
    if refused reply then exit exit_invalid
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one JSON request to a running $(b,tpdbt serve) daemon and \
          print the reply.  With $(b,--retries), $(i,overloaded) \
          (backpressure) replies are retried on a deterministic seeded \
          backoff schedule before giving up.  Exit status: 0 — the daemon \
          answered ok; 1 — usage or transport failure (bad flags, connect \
          refused, connection dropped, framing damage); 2 — the daemon \
          refused the request ($(i,invalid), $(i,draining), or \
          $(i,overloaded) after retries were exhausted).")
    Term.(const run $ socket_arg $ payload $ retries $ backoff)

let snapshot_cmd =
  let module Snap = Tpdbt_dbt.Exec_snapshot in
  let module Checkpoint = Tpdbt_experiments.Checkpoint in
  let module Runner = Tpdbt_experiments.Runner in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "A mid-run engine snapshot ($(i,TPDBT-SNAP)) or a checkpoint \
             store entry ($(i,TPDBT-CKPT), finished or suspended).")
  in
  let print_snap_info (i : Snap.info) =
    Printf.printf "steps              %d\n" i.Snap.steps;
    Printf.printf "halted             %b\n" i.Snap.halted;
    Printf.printf "pc                 %d\n" i.Snap.pc;
    Printf.printf "blocks             %d (%d optimized)\n" i.Snap.blocks
      i.Snap.optimized_blocks;
    Printf.printf "regions            %d\n" i.Snap.regions;
    Printf.printf "candidate pool     %d\n" i.Snap.pool;
    Printf.printf "cache entries      %d\n" i.Snap.cache_entries;
    Printf.printf "quarantines        %d%s\n" i.Snap.quarantines
      (if i.Snap.degraded then " (degraded)" else "");
    Printf.printf "faults             %d pending, %d fired\n"
      i.Snap.pending_faults i.Snap.fired_faults;
    Printf.printf "cycles             %.1f\n" i.Snap.cycles;
    Printf.printf "config digest      %s\n" i.Snap.config_digest;
    Printf.printf "program digest     %s\n" i.Snap.program_digest
  in
  let embedded_info text =
    match Snap.of_string text with
    | Snap.Snapshot parsed -> print_snap_info (Snap.info parsed)
    | Snap.Stale_version v ->
        Printf.eprintf "error: embedded snapshot has stale version %s\n" v;
        exit exit_invalid
    | Snap.Corrupt reason ->
        Printf.eprintf "error: embedded snapshot corrupt: %s\n" reason;
        exit exit_invalid
  in
  let ckpt_bench text =
    (* Checkpoints reference the benchmark by name; recover the spec
       from the suite so the full validation path can run. *)
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           match String.split_on_char ' ' line with
           | [ "bench"; name ] -> Tpdbt_workloads.Suite.find name
           | _ -> None)
  in
  let run file =
    let text =
      try read_file file
      with Sys_error msg ->
        prerr_endline ("error: " ^ msg);
        exit exit_usage
    in
    let starts prefix =
      String.length text >= String.length prefix
      && String.sub text 0 (String.length prefix) = prefix
    in
    if starts "TPDBT-SNAP" then begin
      Printf.printf "file               %s\n" file;
      Printf.printf "kind               engine snapshot\n";
      match Snap.of_string text with
      | Snap.Snapshot parsed -> print_snap_info (Snap.info parsed)
      | Snap.Stale_version v ->
          Printf.eprintf "error: stale snapshot version %s\n" v;
          exit exit_invalid
      | Snap.Corrupt reason ->
          Printf.eprintf "error: corrupt snapshot: %s\n" reason;
          exit exit_invalid
    end
    else if starts "TPDBT-CKPT" then begin
      let spec =
        match ckpt_bench text with
        | Some spec -> spec
        | None ->
            prerr_endline
              "error: checkpoint names no benchmark known to the suite";
            exit exit_invalid
      in
      Printf.printf "file               %s\n" file;
      Printf.printf "bench              %s\n" spec.Tpdbt_workloads.Spec.name;
      (* No ~thresholds: accept whatever list the file was recorded
         under — info inspects, it does not resume. *)
      match Checkpoint.data_of_string spec text with
      | Checkpoint.Valid (Checkpoint.Finished data) ->
          Printf.printf "kind               finished checkpoint\n";
          Printf.printf "thresholds         %d\n"
            (List.length data.Runner.runs);
          Printf.printf "avep steps         %d\n"
            data.Runner.avep.Tpdbt_dbt.Engine.steps
      | Checkpoint.Valid (Checkpoint.Suspended partial) ->
          Printf.printf "kind               suspended checkpoint\n";
          Printf.printf "stages done        %d\n"
            (List.length partial.Runner.p_done);
          Printf.printf "next stage         %s\n"
            (Runner.stage_label partial.Runner.p_next);
          embedded_info partial.Runner.p_snapshot
      | Checkpoint.Missing ->
          (* data_of_string never returns Missing; keep the match total. *)
          prerr_endline "error: empty checkpoint";
          exit exit_invalid
      | Checkpoint.Stale_version v ->
          Printf.eprintf "error: stale checkpoint version %s\n" v;
          exit exit_invalid
      | Checkpoint.Corrupt reason ->
          Printf.eprintf "error: corrupt checkpoint: %s\n" reason;
          exit exit_invalid
    end
    else begin
      prerr_endline
        "error: unrecognised file (expected TPDBT-SNAP or TPDBT-CKPT)";
      exit exit_invalid
    end
  in
  let info_cmd =
    Cmd.v
      (Cmd.info "info"
         ~doc:
           "Validate a snapshot or checkpoint file (magic, CRC, payload \
            grammar) and print what it holds.  Exits 2 on stale versions \
            or corruption — the same classification resume would apply.")
      Term.(const run $ file)
  in
  Cmd.group
    (Cmd.info "snapshot"
       ~doc:
         "Inspect serialized execution state: mid-run engine snapshots \
          ($(i,TPDBT-SNAP), see docs/snapshots.md) and checkpoint store \
          entries ($(i,TPDBT-CKPT), finished or suspended).")
    [ info_cmd ]

let () =
  let doc = "two-phase dynamic binary translator profile-accuracy testbed" in
  let info = Cmd.info "tpdbt" ~version:"1.0.0" ~doc in
  let code =
    Cmd.eval
      (Cmd.group info
         [
           asm_cmd; dis_cmd; check_cmd; run_cmd; dbt_cmd; bench_cmd; sweep_cmd;
           profile_cmd; perfdiff_cmd; analyze_cmd; report_cmd; ablate_cmd;
           trace_cmd; faults_cmd; cache_cmd; chaos_cmd; fuzz_cmd; serve_cmd;
           request_cmd; snapshot_cmd;
         ])
  in
  (* Fold cmdliner's CLI-error code (124) into the taxonomy's usage
     class; subcommand exits pass through untouched. *)
  exit (if code = Cmd.Exit.cli_error then exit_usage else code)
