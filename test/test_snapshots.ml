(* Mid-run snapshot/suspend/resume: the engine's capture/restore
   byte-identity, the serialized snapshot's corruption matrix, the v4
   suspended-checkpoint store's corruption matrix, the journal's
   snapshot breadcrumbs and damaged-header recovery, and the request
   client's deterministic backoff schedule. *)

module Engine = Tpdbt_dbt.Engine
module Snap = Tpdbt_dbt.Exec_snapshot
module Error = Tpdbt_dbt.Error
module Perf_model = Tpdbt_dbt.Perf_model
module Runner = Tpdbt_experiments.Runner
module Checkpoint = Tpdbt_experiments.Checkpoint
module Journal = Tpdbt_serve.Journal
module Spec = Tpdbt_workloads.Spec

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let with_temp_dir f =
  let dir = Filename.temp_file "tpdbt-snap" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> Sys.remove (Filename.concat dir file))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* A guest program busy enough to cross the optimisation phase (two
   loops, a branchy body) yet cheap enough for a unit test. *)
let program =
  Tpdbt_isa.Assembler.assemble_exn
    {|
.entry main
main:
    movi r1, 400
    movi r2, 0
outer:
    movi r3, 12
inner:
    addi r2, r2, 3
    andi r4, r2, 7
    bgt r4, r0, skip
    addi r2, r2, 1
skip:
    subi r3, r3, 1
    bgt r3, r0, inner
    subi r1, r1, 1
    bgt r1, r0, outer
    out r2
    halt
|}

let config = Engine.config ~pool_trigger:4 ~threshold:2 ()
let seed = 11L

let uninterrupted () =
  let eng = Engine.create ~config ~seed program in
  (Engine.run eng, eng)

(* Re-enter [run] over every [Suspended], giving [f] the engine at each
   suspension; returns the final (non-suspended) result. *)
let run_through f eng =
  let rec go () =
    let r = Engine.run eng in
    match r.Engine.error with
    | Some (Error.Suspended _) ->
        f eng;
        go ()
    | _ -> r
  in
  go ()

let same_result what (a : Engine.result) (b : Engine.result) =
  checki (what ^ ": steps") a.Engine.steps b.Engine.steps;
  checkb (what ^ ": cycles") true
    (Float.equal a.Engine.counters.Perf_model.cycles
       b.Engine.counters.Perf_model.cycles);
  checkb (what ^ ": outputs") true (a.Engine.outputs = b.Engine.outputs);
  checki (what ^ ": regions formed")
    a.Engine.counters.Perf_model.regions_formed
    b.Engine.counters.Perf_model.regions_formed;
  checki (what ^ ": region entries")
    a.Engine.counters.Perf_model.region_entries
    b.Engine.counters.Perf_model.region_entries;
  checkb (what ^ ": error" ) true (a.Engine.error = b.Engine.error)

(* ------------------------------------------------------------------ *)
(* Engine capture/restore                                               *)
(* ------------------------------------------------------------------ *)

let test_snapshot_trigger_invisible () =
  let reference, _ = uninterrupted () in
  let sus_config = { config with Engine.snapshot_every = 1_000 } in
  let eng = Engine.create ~config:sus_config ~seed program in
  let suspensions = ref 0 in
  let final = run_through (fun _ -> incr suspensions) eng in
  checkb "the trigger actually fired" true (!suspensions > 2);
  same_result "snapshot trigger" reference final

let test_serialized_resume_identity () =
  let reference, _ = uninterrupted () in
  let sus_config =
    { config with Engine.deadline = Some 2_000; suspend_on_deadline = true }
  in
  let eng = Engine.create ~config:sus_config ~seed program in
  let first = Engine.run eng in
  checkb "suspended at the deadline" true (Engine.suspended first);
  (* Full round trip: capture -> text -> parse -> restore (without the
     trigger) -> complete. *)
  let text = Snap.to_string ~config:sus_config ~program (Engine.capture eng) in
  let resumed =
    match Snap.of_string text with
    | Snap.Snapshot parsed -> (
        match Snap.restore ~config ~program parsed with
        | Ok eng2 -> eng2
        | Error msg -> Alcotest.fail ("restore rejected: " ^ msg))
    | Snap.Stale_version v -> Alcotest.fail ("stale: " ^ v)
    | Snap.Corrupt reason -> Alcotest.fail ("corrupt: " ^ reason)
  in
  same_result "serialized resume" reference (Engine.run resumed)

let test_restore_refuses_mismatch () =
  let sus_config =
    { config with Engine.deadline = Some 2_000; suspend_on_deadline = true }
  in
  let eng = Engine.create ~config:sus_config ~seed program in
  ignore (Engine.run eng);
  let parsed =
    match
      Snap.of_string
        (Snap.to_string ~config:sus_config ~program (Engine.capture eng))
    with
    | Snap.Snapshot p -> p
    | _ -> Alcotest.fail "round trip failed"
  in
  (* A config that steers execution differently must be refused... *)
  let other = Engine.config ~pool_trigger:4 ~threshold:50 () in
  checkb "different threshold refused" true
    (Result.is_error (Snap.restore ~config:other ~program parsed));
  (* ...while trigger-only differences are accepted by design (the
     resume re-arms its own triggers). *)
  checkb "trigger-only change accepted" true
    (Result.is_ok (Snap.restore ~config ~program parsed));
  let other_program =
    Tpdbt_isa.Assembler.assemble_exn "movi r1, 1\nout r1\nhalt\n"
  in
  checkb "different program refused" true
    (Result.is_error (Snap.restore ~config ~program:other_program parsed))

(* ------------------------------------------------------------------ *)
(* Snapshot text corruption matrix                                      *)
(* ------------------------------------------------------------------ *)

let snapshot_text () =
  let sus_config =
    { config with Engine.deadline = Some 2_000; suspend_on_deadline = true }
  in
  let eng = Engine.create ~config:sus_config ~seed program in
  ignore (Engine.run eng);
  Snap.to_string ~config:sus_config ~program (Engine.capture eng)

let corrupt_of = function
  | Snap.Corrupt _ -> true
  | Snap.Snapshot _ | Snap.Stale_version _ -> false

let test_snapshot_text_corruption_matrix () =
  let text = snapshot_text () in
  (match Snap.of_string text with
  | Snap.Snapshot parsed ->
      let i = Snap.info parsed in
      checkb "info reports the suspension point" true (i.Snap.steps > 0);
      checkb "not halted mid-run" false i.Snap.halted
  | _ -> Alcotest.fail "intact snapshot rejected");
  checkb "zero-length is corrupt" true (corrupt_of (Snap.of_string ""));
  checkb "truncated is corrupt" true
    (corrupt_of
       (Snap.of_string (String.sub text 0 (String.length text * 2 / 3))));
  let flipped =
    let b = Bytes.of_string text in
    let i = (Bytes.length b * 3 / 4) + 1 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x08));
    Bytes.to_string b
  in
  checkb "bit flip is corrupt" true (corrupt_of (Snap.of_string flipped));
  checkb "trailing garbage is corrupt" true
    (corrupt_of (Snap.of_string (text ^ "tail")));
  let stale =
    "TPDBT-SNAP 0"
    ^ String.sub text (String.length "TPDBT-SNAP 1")
        (String.length text - String.length "TPDBT-SNAP 1")
  in
  checkb "older version is stale, not corrupt" true
    (match Snap.of_string stale with
    | Snap.Stale_version _ -> true
    | Snap.Snapshot _ | Snap.Corrupt _ -> false)

(* ------------------------------------------------------------------ *)
(* v4 suspended-checkpoint corruption matrix                            *)
(* ------------------------------------------------------------------ *)

let mini =
  {
    Spec.name = "snap-mini";
    suite = `Int;
    units =
      [
        Spec.Branch
          { prob = Spec.prob 0.8 ~train:0.6; straight = 2; copies = 2 };
        Spec.Loop { trip = Spec.trip 6; jitter = 1; body = 2; copies = 1 };
      ];
    ref_iters = 3000;
    train_iters = 800;
    ref_seed = 3L;
    train_seed = 4L;
  }

let mini_thresholds = [ ("100", 1); ("1k", 10) ]

let suspended_partial () =
  let captured = ref None in
  match
    Runner.run_benchmark_result ~thresholds:mini_thresholds ~deadline:2_000
      ~suspend_on_deadline:true
      ~on_snapshot:(fun p -> captured := Some p)
      mini
  with
  | Error (Error.Suspended _) -> (
      match !captured with
      | Some p -> p
      | None -> Alcotest.fail "suspension published no partial")
  | Ok _ -> Alcotest.fail "benchmark finished under a 2k deadline"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Error.to_string e)

let classify_text text =
  Checkpoint.data_of_string ~thresholds:mini_thresholds mini text

let test_suspended_store_corruption_matrix () =
  with_temp_dir (fun dir ->
      let partial = suspended_partial () in
      Checkpoint.save_suspended ~dir partial;
      let path = Checkpoint.path ~dir mini in
      let text = read_file path in
      (match Checkpoint.classify ~thresholds:mini_thresholds ~dir mini with
      | Checkpoint.Valid (Checkpoint.Suspended p) ->
          checks "round-tripped snapshot text" partial.Runner.p_snapshot
            p.Runner.p_snapshot;
          checkb "interrupted stage preserved" true
            (p.Runner.p_next = partial.Runner.p_next)
      | _ -> Alcotest.fail "intact suspended checkpoint rejected");
      checkb "load_suspended sees it" true
        (Option.is_some
           (Checkpoint.load_suspended ~thresholds:mini_thresholds ~dir mini));
      checkb "load (finished) refuses it" true
        (Option.is_none
           (Checkpoint.load ~thresholds:mini_thresholds ~dir mini));
      let damage name text expect_stale =
        (match classify_text text with
        | Checkpoint.Corrupt _ ->
            checkb (name ^ " classified corrupt") false expect_stale
        | Checkpoint.Stale_version _ ->
            checkb (name ^ " classified stale") true expect_stale
        | Checkpoint.Valid _ -> Alcotest.fail (name ^ " accepted")
        | Checkpoint.Missing -> Alcotest.fail (name ^ " reported missing"));
        write_file path text;
        checkb (name ^ ": load_suspended refuses") true
          (Option.is_none
             (Checkpoint.load_suspended ~thresholds:mini_thresholds ~dir mini))
      in
      damage "zero-length" "" false;
      damage "truncation" (String.sub text 0 (String.length text / 2)) false;
      let flipped =
        let b = Bytes.of_string text in
        let i = Bytes.length b * 2 / 3 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x04));
        Bytes.to_string b
      in
      damage "bit flip" flipped false;
      damage "trailing garbage" (text ^ "x") false;
      let v3 =
        "TPDBT-CKPT 3"
        ^ String.sub text (String.length "TPDBT-CKPT 4")
            (String.length text - String.length "TPDBT-CKPT 4")
      in
      damage "stale v3 magic" v3 true)

let test_suspended_resume_byte_identity () =
  with_temp_dir (fun dir ->
      let partial = suspended_partial () in
      Checkpoint.save_suspended ~dir partial;
      let resumed =
        match
          Runner.run_benchmark_result ~thresholds:mini_thresholds
            ?resume:
              (Checkpoint.load_suspended ~thresholds:mini_thresholds ~dir mini)
            mini
        with
        | Ok d -> d
        | Error e -> Alcotest.fail ("resume failed: " ^ Error.to_string e)
      in
      let straight =
        match
          Runner.run_benchmark_result ~thresholds:mini_thresholds mini
        with
        | Ok d -> d
        | Error e -> Alcotest.fail ("straight run failed: " ^ Error.to_string e)
      in
      checks "resumed data serializes byte-identically"
        (Checkpoint.data_to_string straight)
        (Checkpoint.data_to_string resumed))

(* ------------------------------------------------------------------ *)
(* Journal: snapshot refs and damaged-header recovery                   *)
(* ------------------------------------------------------------------ *)

let test_journal_snapshot_refs () =
  let r = Journal.Snapshot_ref { id = 7; bench = "gzip" } in
  checkb "snapshot_ref round trip" true
    (Journal.record_of_string (Journal.record_to_string r) = Some r);
  checkb "snapshot_ref without bench rejected" true
    (Journal.record_of_string "snapshot_ref 7" = None);
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "journal" in
      let j, _ = Journal.open_ ~path in
      Journal.append j (Journal.Sweep_begin { id = 1; benches = [ "a"; "b" ] });
      Journal.append j (Journal.Snapshot_ref { id = 1; bench = "a" });
      Journal.append j (Journal.Snapshot_ref { id = 1; bench = "b" });
      (* A second snapshot of the same bench dedups to one ref. *)
      Journal.append j (Journal.Snapshot_ref { id = 1; bench = "a" });
      Journal.append j (Journal.Sweep_begin { id = 2; benches = [ "c" ] });
      Journal.append j (Journal.Snapshot_ref { id = 2; bench = "c" });
      Journal.close j;
      let j, r = Journal.open_ ~path in
      checkb "refs of in-flight sweeps survive, deduped, first-ref order"
        true
        (r.Journal.snapshot_refs = [ (1, "a"); (1, "b"); (2, "c") ]);
      (* Ending sweep 1 drops its refs... *)
      Journal.append j (Journal.Sweep_end { id = 1 });
      Journal.close j;
      let j, r = Journal.open_ ~path in
      checkb "ended sweep's refs dropped" true
        (r.Journal.snapshot_refs = [ (2, "c") ]);
      (* ...and a drain clears everything. *)
      Journal.append j Journal.Drained;
      Journal.close j;
      let j, r = Journal.open_ ~path in
      checkb "drain clears refs" true (r.Journal.snapshot_refs = []);
      checkb "drain clears inflight" true (r.Journal.inflight = []);
      Journal.close j)

let test_journal_zero_length_and_torn_header () =
  with_temp_dir (fun dir ->
      (* Zero-length file: not a valid journal (no header could have
         been written durably) — crash-only recovery starts over. *)
      let path = Filename.concat dir "empty" in
      write_file path "";
      let j, r = Journal.open_ ~path in
      checki "zero-length: nothing recovered" 0 r.Journal.records;
      checki "zero-length: reported as damage" 1 r.Journal.torn;
      Journal.append j (Journal.Sweep_begin { id = 1; benches = [ "x" ] });
      Journal.close j;
      let j, r = Journal.open_ ~path in
      checki "restarted journal is healthy" 1 r.Journal.records;
      checki "no damage after restart" 0 r.Journal.torn;
      Journal.close j;
      (* Torn header: a crash mid-write of the magic line itself. *)
      let torn = Filename.concat dir "torn" in
      write_file torn "TPDBT-JR";
      let j, r = Journal.open_ ~path:torn in
      checki "torn header: nothing recovered" 0 r.Journal.records;
      checki "torn header: reported as damage" 1 r.Journal.torn;
      checkb "torn header: inflight empty" true (r.Journal.inflight = []);
      Journal.close j)

(* ------------------------------------------------------------------ *)
(* Client backoff schedule                                              *)
(* ------------------------------------------------------------------ *)

let test_retry_delays_deterministic () =
  let a = Tpdbt_serve.Daemon.retry_delays ~retries:5 ~seed:42L in
  let b = Tpdbt_serve.Daemon.retry_delays ~retries:5 ~seed:42L in
  checkb "same seed, same schedule" true (a = b);
  checki "one delay per retry" 5 (List.length a);
  List.iteri
    (fun k d ->
      let base = 0.05 *. (2. ** float_of_int k) in
      checkb
        (Printf.sprintf "delay %d within jitter band" k)
        true
        (d >= 0.5 *. base && d < 1.5 *. base))
    a;
  checkb "distinct seeds decorrelate" true
    (a <> Tpdbt_serve.Daemon.retry_delays ~retries:5 ~seed:43L);
  checkb "no retries, no delays" true
    (Tpdbt_serve.Daemon.retry_delays ~retries:0 ~seed:42L = []);
  checkb "negative retries, no delays" true
    (Tpdbt_serve.Daemon.retry_delays ~retries:(-3) ~seed:42L = [])

let suite =
  [
    Alcotest.test_case "snapshot trigger is invisible" `Quick
      test_snapshot_trigger_invisible;
    Alcotest.test_case "serialized resume is byte-identical" `Quick
      test_serialized_resume_identity;
    Alcotest.test_case "restore refuses config/program mismatch" `Quick
      test_restore_refuses_mismatch;
    Alcotest.test_case "snapshot text corruption matrix" `Quick
      test_snapshot_text_corruption_matrix;
    Alcotest.test_case "suspended store corruption matrix" `Quick
      test_suspended_store_corruption_matrix;
    Alcotest.test_case "suspended resume byte identity" `Quick
      test_suspended_resume_byte_identity;
    Alcotest.test_case "journal snapshot refs" `Quick
      test_journal_snapshot_refs;
    Alcotest.test_case "journal zero-length and torn header" `Quick
      test_journal_zero_length_and_torn_header;
    Alcotest.test_case "retry delays deterministic" `Quick
      test_retry_delays_deterministic;
  ]
