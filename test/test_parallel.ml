(* Tests for the domain-parallel sweep scheduler: pool mechanics, the
   byte-identical-at-every-job-count guarantee for threshold sweeps,
   cache sweeps and fault campaigns, checkpoint bytes and
   crash-mid-sweep resume, and the collector's single-writer
   invariant. *)

module Pool = Tpdbt_parallel.Pool
module Sup = Tpdbt_parallel.Supervisor
module Runner = Tpdbt_experiments.Runner
module Checkpoint = Tpdbt_experiments.Checkpoint
module Campaign = Tpdbt_experiments.Campaign
module Figures = Tpdbt_experiments.Figures
module Table = Tpdbt_experiments.Table
module Spec = Tpdbt_workloads.Spec
module Tel = Tpdbt_telemetry

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* Exercise the real parallel machinery even where the public default
   would short-circuit: every determinism test compares j = 1 (the
   sequential reference) against j = 2 and j = 4. *)
let job_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pool_map_identity () =
  let tasks = Array.init 37 (fun i -> i) in
  let expected = Array.map (fun i -> (i * i) + 1) tasks in
  List.iter
    (fun jobs ->
      let results, stats = Pool.map ~jobs (fun i -> (i * i) + 1) tasks in
      checkb
        (Printf.sprintf "results identical at -j %d" jobs)
        true
        (results = expected);
      checki "all tasks accounted" 37 stats.Pool.tasks)
    job_counts

let test_pool_empty_and_singleton () =
  let results, stats = Pool.map ~jobs:4 (fun i -> i) [||] in
  checkb "empty input" true (results = [||]);
  checki "no tasks" 0 stats.Pool.tasks;
  let results, stats = Pool.map ~jobs:4 (fun i -> i + 1) [| 41 |] in
  checkb "singleton" true (results = [| 42 |]);
  (* One task can never use more than one worker. *)
  checki "jobs clamped to task count" 1 stats.Pool.jobs

let test_pool_exception_deterministic () =
  (* Several tasks fail; the pool must re-raise the lowest-indexed
     failure whatever the completion order. *)
  let tasks = Array.init 16 (fun i -> i) in
  List.iter
    (fun jobs ->
      match
        Pool.map ~jobs
          (fun i -> if i mod 5 = 3 then failwith (string_of_int i) else i)
          tasks
      with
      | _ -> Alcotest.fail "expected a raise"
      | exception Failure msg ->
          checks
            (Printf.sprintf "lowest-indexed failure at -j %d" jobs)
            "3" msg)
    job_counts

let test_pool_events_account () =
  let tasks = Array.init 12 (fun i -> i) in
  List.iter
    (fun jobs ->
      let started = Hashtbl.create 16 and finished = Hashtbl.create 16 in
      let stolen = ref 0 in
      let results_seen = ref 0 in
      let _, stats =
        Pool.map ~jobs
          ~on_event:(function
            | Pool.Start { task; _ } ->
                checkb "started once" false (Hashtbl.mem started task);
                Hashtbl.replace started task ()
            | Pool.Finish { task; _ } ->
                checkb "start before finish" true (Hashtbl.mem started task);
                Hashtbl.replace finished task ()
            | Pool.Steal { worker; victim; task } ->
                incr stolen;
                checkb "no self-steal" true (worker <> victim);
                checkb "stolen before start" false (Hashtbl.mem started task))
          ~on_result:(fun task v ->
            incr results_seen;
            checki "result matches task" (task * 2) v)
          (fun i -> i * 2)
          tasks
      in
      checki "every task started" 12 (Hashtbl.length started);
      checki "every task finished" 12 (Hashtbl.length finished);
      checki "every result delivered" 12 !results_seen;
      checki "steal events counted" !stolen stats.Pool.steals;
      if jobs = 1 then checki "sequential never steals" 0 stats.Pool.steals)
    job_counts

let test_pool_jobs_exceed_tasks () =
  (* More workers than tasks: jobs clamp to the task count, results
     stay canonical, and error propagation stays lowest-index even
     when the failing task is stolen. *)
  let tasks = [| 10; 20; 30 |] in
  let results, stats = Pool.map ~jobs:8 (fun i -> i + 1) tasks in
  checkb "results canonical" true (results = [| 11; 21; 31 |]);
  checki "jobs clamped to task count" 3 stats.Pool.jobs;
  (match
     Pool.map ~jobs:8 (fun i -> if i = 10 then failwith "t0" else i) tasks
   with
  | _ -> Alcotest.fail "expected a raise"
  | exception Failure msg -> checks "lowest-index failure wins" "t0" msg);
  (* With steals in play (8 workers over 32 tasks, several failing —
     including each worker's first steal candidates at the deque
     backs), the raise is still the lowest-indexed one and no failed
     task ever reaches on_result. *)
  let tasks = Array.init 32 (fun i -> i) in
  let delivered = ref [] in
  (match
     Pool.map ~jobs:8
       ~on_result:(fun task _ -> delivered := task :: !delivered)
       (fun i -> if i mod 7 = 3 then failwith (string_of_int i) else i)
       tasks
   with
  | _ -> Alcotest.fail "expected a raise"
  | exception Failure msg -> checks "lowest-index under steals" "3" msg);
  List.iter
    (fun task -> checkb "failed task never delivered" true (task mod 7 <> 3))
    !delivered

(* ------------------------------------------------------------------ *)
(* Supervisor                                                           *)
(* ------------------------------------------------------------------ *)

let sup_counts (stats : Sup.stats) =
  (stats.attempts, stats.retries, stats.poisoned, stats.crashes)

(* Retry/poison/crash counts must not depend on scheduling: compare
   them against the first job count exercised. *)
let check_counts_stable reference stats =
  match !reference with
  | None -> reference := Some (sup_counts stats)
  | Some c -> checkb "counts identical across jobs" true (c = sup_counts stats)

let test_supervisor_all_ok () =
  let tasks = Array.init 9 (fun i -> i) in
  let collector = (Domain.self () :> int) in
  List.iter
    (fun jobs ->
      let violations = ref 0 in
      let observe () =
        if (Domain.self () :> int) <> collector then incr violations
      in
      let outs, (stats : Sup.stats) =
        Sup.run ~jobs
          ~on_event:(fun _ -> observe ())
          ~on_result:(fun _ _ -> observe ())
          (fun ~attempt:_ i -> i * 3)
          tasks
      in
      checkb "all done" true
        (outs = Array.map (fun i -> Sup.Done (i * 3)) tasks);
      checki "one attempt each" 9 stats.attempts;
      checki "no retries" 0 stats.retries;
      checki "none poisoned" 0 stats.poisoned;
      checkb "never degraded" false stats.degraded;
      checki "callbacks on the collector domain" 0 !violations)
    job_counts

let test_supervisor_retry_then_succeed () =
  (* Tasks 1 and 4 fail on attempts 1-2 and land on attempt 3 — under
     the default breaker (3 consecutive failures) they just squeak
     through. *)
  let tasks = Array.init 6 (fun i -> i) in
  let f ~attempt i =
    if i mod 3 = 1 && attempt <= 2 then failwith "flaky" else i + attempt
  in
  let reference = ref None in
  List.iter
    (fun jobs ->
      let retry_events = ref 0 in
      let outs, (stats : Sup.stats) =
        Sup.run ~jobs
          ~on_event:(function Sup.Retry _ -> incr retry_events | _ -> ())
          f tasks
      in
      checkb "flaky tasks recovered" true
        (outs
        = [| Done 1; Done 4; Done 3; Done 4; Done 7; Done 6 |]);
      checki "attempts" 10 stats.attempts;
      checki "retries" 4 stats.retries;
      checki "retry events" 4 !retry_events;
      checki "none poisoned" 0 stats.poisoned;
      check_counts_stable reference stats)
    job_counts

let test_supervisor_poison_breaker_vs_giveup () =
  let tasks = [| 0; 1; 2 |] in
  let f ~attempt:_ i = if i = 1 then failwith "always broken" else i in
  (* Default policy: the breaker (3 consecutive failures) trips before
     the 4-attempt budget runs out. *)
  List.iter
    (fun jobs ->
      let breaker = ref 0 and gaveup = ref 0 in
      let outs, (stats : Sup.stats) =
        Sup.run ~jobs
          ~on_event:(function
            | Sup.Breaker_opened _ -> incr breaker
            | Sup.Gave_up _ -> incr gaveup
            | _ -> ())
          f tasks
      in
      (match outs.(1) with
      | Sup.Poisoned { attempts; reason } ->
          checki "breaker after 3 attempts" 3 attempts;
          checkb "reason recorded" true
            (String.length reason > 0)
      | _ -> Alcotest.fail "task 1 should be poisoned");
      checki "breaker fired once" 1 !breaker;
      checki "no giveup" 0 !gaveup;
      checki "one poisoned" 1 stats.poisoned;
      checkb "others unaffected" true
        (outs.(0) = Sup.Done 0 && outs.(2) = Sup.Done 2))
    job_counts;
  (* Breaker effectively disabled: the retry budget gives up instead. *)
  let policy = { Sup.default_policy with breaker_after = 99 } in
  let gaveup = ref 0 in
  let outs, (stats : Sup.stats) =
    Sup.run ~jobs:2 ~policy
      ~on_event:(function Sup.Gave_up _ -> incr gaveup | _ -> ())
      f tasks
  in
  (match outs.(1) with
  | Sup.Poisoned { attempts; _ } -> checki "budget exhausted" 4 attempts
  | _ -> Alcotest.fail "task 1 should be poisoned");
  checki "giveup fired once" 1 !gaveup;
  checki "three retries" 3 stats.retries

let test_supervisor_crash_recovers () =
  (* Task 2 kills the first worker that touches it, then succeeds on
     requeue: the sweep completes with no poisoning at every -j. *)
  let tasks = Array.init 5 (fun i -> i) in
  let f ~attempt i =
    if i = 2 && attempt = 1 then raise Sup.Crash_worker else i * 2
  in
  let reference = ref None in
  List.iter
    (fun jobs ->
      let lost = ref 0 in
      let outs, (stats : Sup.stats) =
        Sup.run ~jobs
          ~on_event:(function Sup.Worker_lost _ -> incr lost | _ -> ())
          f tasks
      in
      checkb "all done despite the crash" true
        (outs = Array.map (fun i -> Sup.Done (i * 2)) tasks);
      checki "one crash absorbed" 1 stats.crashes;
      checki "worker_lost observed" 1 !lost;
      checki "no poisoning" 0 stats.poisoned;
      check_counts_stable reference stats)
    job_counts

let test_supervisor_crash_storm_terminates () =
  (* Task 0 kills every worker it touches: crashes consume attempt
     numbers, so it poisons after the 4-attempt budget, the pool
     degrades below 2 live workers, and every other task completes. *)
  let tasks = Array.init 4 (fun i -> i) in
  let f ~attempt:_ i = if i = 0 then raise Sup.Crash_worker else i in
  let reference = ref None in
  List.iter
    (fun jobs ->
      let degraded_events = ref 0 in
      let outs, (stats : Sup.stats) =
        Sup.run ~jobs
          ~on_event:(function Sup.Degraded _ -> incr degraded_events | _ -> ())
          f tasks
      in
      (match outs.(0) with
      | Sup.Poisoned { attempts; reason } ->
          checki "crashes bounded by the attempt budget" 4 attempts;
          checks "crash reason" "worker crashed" reason
      | _ -> Alcotest.fail "task 0 should be poisoned");
      checkb "survivors done" true
        (outs.(1) = Sup.Done 1 && outs.(2) = Sup.Done 2
        && outs.(3) = Sup.Done 3);
      checki "four crashes" 4 stats.crashes;
      check_counts_stable reference stats;
      if jobs >= 2 then begin
        checkb "pool degraded" true stats.degraded;
        checki "degraded exactly once" 1 !degraded_events
      end
      else checkb "sequential never degrades" false stats.degraded)
    job_counts

let test_supervisor_failed_classifier () =
  (* A value can be rejected after the fact; the classifier's verdict
     feeds the same retry machinery as a raise. *)
  let tasks = Array.init 4 (fun i -> i) in
  let f ~attempt i = (i, attempt) in
  let failed _task (_, attempt) =
    if attempt < 2 then Some "first attempt rejected" else None
  in
  List.iter
    (fun jobs ->
      let outs, (stats : Sup.stats) = Sup.run ~jobs ~failed f tasks in
      checkb "all accepted on attempt 2" true
        (outs = Array.init 4 (fun i -> Sup.Done (i, 2)));
      checki "one retry per task" 4 stats.retries;
      checki "two attempts per task" 8 stats.attempts)
    job_counts

let test_supervisor_zero_tasks () =
  let outs, (stats : Sup.stats) =
    Sup.run ~jobs:4 (fun ~attempt:_ i -> i) [||]
  in
  checkb "empty output" true (outs = [||]);
  checki "no tasks" 0 stats.tasks;
  checki "no attempts" 0 stats.attempts

(* ------------------------------------------------------------------ *)
(* Sweep determinism across job counts                                  *)
(* ------------------------------------------------------------------ *)

let mini ?(iters = 3000) name =
  {
    Spec.name;
    suite = `Int;
    units =
      [
        Spec.Branch { prob = Spec.prob 0.8 ~train:0.6; straight = 2; copies = 2 };
        Spec.Loop { trip = Spec.trip 6; jitter = 1; body = 2; copies = 1 };
      ];
    ref_iters = iters;
    train_iters = 800;
    ref_seed = 3L;
    train_seed = 4L;
  }

let mini_thresholds = [ ("100", 1); ("1k", 10) ]

let mini_benches () =
  [
    mini "par-a";
    mini ~iters:4000 "par-b";
    mini ~iters:2000 "par-c";
    mini ~iters:3500 "par-d";
  ]

let serialize_sweep sweep =
  String.concat "\n" (List.map Checkpoint.data_to_string sweep.Runner.data)

let figures_csv sweep =
  String.concat "\n"
    (List.map (fun (_, t) -> Table.to_csv t) (Figures.all sweep.Runner.data))

let test_sweep_identical_across_jobs () =
  let benches = mini_benches () in
  let reference =
    Runner.run_many_par ~thresholds:mini_thresholds ~jobs:1 benches
  in
  checkb "reference has data" true (reference.Runner.data <> []);
  List.iter
    (fun jobs ->
      let sweep =
        Runner.run_many_par ~thresholds:mini_thresholds ~jobs benches
      in
      checks
        (Printf.sprintf "serialized results identical at -j %d" jobs)
        (serialize_sweep reference) (serialize_sweep sweep);
      checks
        (Printf.sprintf "derived tables identical at -j %d" jobs)
        (figures_csv reference) (figures_csv sweep))
    (List.tl job_counts)

let with_temp_dir f =
  let dir = Filename.temp_file "tpdbt-par" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> Sys.remove (Filename.concat dir file))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let checkpoint_bytes dir benches =
  String.concat "\x00"
    (List.map (fun b -> read_file (Checkpoint.path ~dir b)) benches)

let test_checkpoint_bytes_identical_across_jobs () =
  let benches = mini_benches () in
  with_temp_dir (fun seq_dir ->
      let _ =
        Checkpoint.run_many_par ~thresholds:mini_thresholds ~jobs:1
          ~dir:seq_dir benches
      in
      let reference = checkpoint_bytes seq_dir benches in
      List.iter
        (fun jobs ->
          with_temp_dir (fun par_dir ->
              let _ =
                Checkpoint.run_many_par ~thresholds:mini_thresholds ~jobs
                  ~dir:par_dir benches
              in
              checks
                (Printf.sprintf "checkpoint files identical at -j %d" jobs)
                reference
                (checkpoint_bytes par_dir benches)))
        (List.tl job_counts))

let test_resume_mid_sweep_parallel () =
  (* A sweep killed after completing half its benchmarks leaves their
     checkpoints behind; restarting at -j 4 must resume those, run only
     the rest, and end byte-identical to an uninterrupted sequential
     sweep. *)
  let benches = mini_benches () in
  let half = [ List.nth benches 0; List.nth benches 2 ] in
  with_temp_dir (fun dir ->
      let _ =
        Checkpoint.run_many_par ~thresholds:mini_thresholds ~jobs:4 ~dir half
      in
      let statuses = ref [] in
      let progress n s = statuses := (n, Runner.status_name s) :: !statuses in
      let resumed =
        Checkpoint.run_many_par ~thresholds:mini_thresholds ~jobs:4 ~progress
          ~dir benches
      in
      List.iter
        (fun b ->
          checkb
            (b.Spec.name ^ " resumed, not re-run")
            true
            (List.mem (b.Spec.name, "resumed") !statuses))
        half;
      checki "both fresh benchmarks ran" 2
        (List.length (List.filter (fun (_, s) -> s = "ok") !statuses));
      let uninterrupted =
        Runner.run_many_par ~thresholds:mini_thresholds ~jobs:1 benches
      in
      checks "resumed sweep byte-identical to uninterrupted"
        (serialize_sweep uninterrupted)
        (serialize_sweep resumed);
      checks "checkpoint set byte-identical"
        (with_temp_dir (fun d2 ->
             let _ =
               Checkpoint.run_many_par ~thresholds:mini_thresholds ~jobs:1
                 ~dir:d2 benches
             in
             checkpoint_bytes d2 benches))
        (checkpoint_bytes dir benches))

(* ------------------------------------------------------------------ *)
(* Single-writer invariant                                              *)
(* ------------------------------------------------------------------ *)

let test_callbacks_single_writer () =
  (* Every callback — progress, save, sink, report — must run on the
     calling (collector) domain, with no overlap possible: record the
     executing domain id at each callback and require it to be the
     collector's, mutex-free. *)
  let collector = (Domain.self () :> int) in
  let benches = mini_benches () in
  let violations = ref 0 in
  let observe () =
    if (Domain.self () :> int) <> collector then incr violations
  in
  let progress_log = ref [] in
  let sink =
    Tel.Sink.of_fun (fun ~step:_ _ -> observe ())
  in
  let _ =
    Runner.run_many_par ~thresholds:mini_thresholds ~jobs:4
      ~progress:(fun n s ->
        observe ();
        progress_log := (n, Runner.status_name s) :: !progress_log)
      ~save:(fun _ -> observe ())
      ~sink
      ~report:(fun _ -> observe ())
      benches
  in
  checki "all callbacks ran on the collector domain" 0 !violations;
  (* Well-formed progress stream: exactly one start and one terminal
     status per benchmark, start first. *)
  List.iter
    (fun b ->
      let mine =
        List.rev
          (List.filter_map
             (fun (n, s) -> if n = b.Spec.name then Some s else None)
             !progress_log)
      in
      checkb
        (b.Spec.name ^ " progress well-formed")
        true
        (mine = [ "started"; "ok" ]))
    benches

(* ------------------------------------------------------------------ *)
(* Cache sweep and campaign determinism                                 *)
(* ------------------------------------------------------------------ *)

let test_cache_sweep_identical_across_jobs () =
  let bench = mini "par-cache" in
  let table jobs =
    Table.to_csv
      (Figures.cache_sweep
         [ Runner.run_cache_sweep ~jobs ~threshold:5 ~fracs:[ 0.25; 0.5 ] bench ])
  in
  let reference = table 1 in
  List.iter
    (fun jobs ->
      checks
        (Printf.sprintf "cache sweep identical at -j %d" jobs)
        reference (table jobs))
    (List.tl job_counts)

let campaign_render c =
  Format.asprintf "%a" Campaign.render c

let test_campaign_identical_across_jobs () =
  let bench = mini "par-faults" in
  let run jobs =
    Campaign.run ~jobs ~threshold:5 ~trials:6 ~seed:17L ~shadow_sample:1 bench
  in
  let reference = campaign_render (run 1) in
  List.iter
    (fun jobs ->
      checks
        (Printf.sprintf "campaign identical at -j %d" jobs)
        reference
        (campaign_render (run jobs)))
    (List.tl job_counts)

(* ------------------------------------------------------------------ *)
(* Telemetry                                                            *)
(* ------------------------------------------------------------------ *)

let test_worker_telemetry () =
  let benches = mini_benches () in
  let metrics = Tel.Metrics.create () in
  let events = ref [] in
  let sink = Tel.Sink.of_fun (fun ~step event -> events := (step, event) :: !events) in
  let _ = Runner.run_many_par ~thresholds:mini_thresholds ~jobs:2 ~sink ~metrics benches in
  let kinds = List.map (fun (_, e) -> Tel.Event.kind_name e) !events in
  checki "one start per task" 4
    (List.length (List.filter (( = ) "worker.start") kinds));
  checki "one finish per task" 4
    (List.length (List.filter (( = ) "worker.finish") kinds));
  checki "one span begin per task" 4
    (List.length (List.filter (( = ) "span.begin") kinds));
  checki "one span end per task" 4
    (List.length (List.filter (( = ) "span.end") kinds));
  List.iter
    (fun k ->
      checkb ("only worker/span events, got " ^ k) true
        (List.mem k
           [
             "worker.start"; "worker.steal"; "worker.finish"; "span.begin";
             "span.end";
           ]))
    kinds;
  (* Worker spans name their worker and report a sane wall clock. *)
  List.iter
    (fun (_, e) ->
      match e with
      | Tel.Event.Span_begin { span } | Tel.Event.Span_end { span; _ } ->
          checkb ("span named for a worker: " ^ span) true
            (String.length span > 6 && String.sub span 0 6 = "worker");
          (match e with
          | Tel.Event.Span_end { wall_ns; minor_words; major_words; _ } ->
              checkb "span wall non-negative" true (wall_ns >= 0);
              checki "span minor words" 0 minor_words;
              checki "span major words" 0 major_words
          | _ -> ())
      | _ -> ())
    !events;
  (* Scheduler stamps are a strictly increasing sequence. *)
  let steps = List.rev_map fst !events in
  checkb "scheduler sequence increases" true
    (List.for_all2 ( < ) steps (List.tl steps @ [ max_int ]));
  let names = Tel.Metrics.names metrics in
  List.iter
    (fun n -> checkb (n ^ " recorded") true (List.mem n names))
    [
      "parallel.speedup"; "parallel.jobs"; "parallel.steals"; "parallel.tasks";
      "parallel.busy_seconds"; "parallel.idle_seconds";
    ];
  checkb "speedup gauge positive" true
    (Tel.Metrics.gauge_value (Tel.Metrics.gauge metrics "parallel.speedup")
    > 0.0);
  checkb "jobs gauge is 2" true
    (Tel.Metrics.gauge_value (Tel.Metrics.gauge metrics "parallel.jobs") = 2.0)

let suite =
  [
    ("pool map identity", `Quick, test_pool_map_identity);
    ("pool empty and singleton", `Quick, test_pool_empty_and_singleton);
    ("pool exception deterministic", `Quick, test_pool_exception_deterministic);
    ("pool events account", `Quick, test_pool_events_account);
    ("pool jobs exceed tasks", `Quick, test_pool_jobs_exceed_tasks);
    ("supervisor all ok", `Quick, test_supervisor_all_ok);
    ("supervisor retry then succeed", `Quick, test_supervisor_retry_then_succeed);
    ( "supervisor breaker vs giveup",
      `Quick,
      test_supervisor_poison_breaker_vs_giveup );
    ("supervisor crash recovers", `Quick, test_supervisor_crash_recovers);
    ( "supervisor crash storm terminates",
      `Quick,
      test_supervisor_crash_storm_terminates );
    ("supervisor failed classifier", `Quick, test_supervisor_failed_classifier);
    ("supervisor zero tasks", `Quick, test_supervisor_zero_tasks);
    ("sweep identical across jobs", `Quick, test_sweep_identical_across_jobs);
    ( "checkpoint bytes identical across jobs",
      `Quick,
      test_checkpoint_bytes_identical_across_jobs );
    ("resume mid-sweep parallel", `Quick, test_resume_mid_sweep_parallel);
    ("callbacks single writer", `Quick, test_callbacks_single_writer);
    ( "cache sweep identical across jobs",
      `Quick,
      test_cache_sweep_identical_across_jobs );
    ( "campaign identical across jobs",
      `Quick,
      test_campaign_identical_across_jobs );
    ("worker telemetry", `Quick, test_worker_telemetry);
  ]
