(* Tests for the profile-analysis layer: region probabilities, NAVEP
   normalisation and the paper's metrics. *)

module Assembler = Tpdbt_isa.Assembler
module Engine = Tpdbt_dbt.Engine
module Snapshot = Tpdbt_dbt.Snapshot
module Region = Tpdbt_dbt.Region
module Block_map = Tpdbt_dbt.Block_map
module Region_prob = Tpdbt_profiles.Region_prob
module Navep = Tpdbt_profiles.Navep
module Metrics = Tpdbt_profiles.Metrics

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg
let checkf2 msg = Alcotest.check (Alcotest.float 1e-2) msg

(* ------------------------------------------------------------------ *)
(* Region probabilities                                                 *)
(* ------------------------------------------------------------------ *)

let test_edge_probability () =
  checkf "taken" 0.8 (Region_prob.edge_probability Region.Taken ~branch_prob:(Some 0.8));
  checkf "not taken" 0.2
    (Region_prob.edge_probability Region.Not_taken ~branch_prob:(Some 0.8));
  checkf "always" 1.0
    (Region_prob.edge_probability Region.Always ~branch_prob:(Some 0.8));
  checkf "missing prob defaults" 0.5
    (Region_prob.edge_probability Region.Taken ~branch_prob:None)

let mk_region ?(kind = Region.Trace) ?(edges = []) ?(back_edges = []) n =
  {
    Region.id = 0;
    kind;
    slots = Array.init n (fun i -> 100 + i);
    edges;
    back_edges;
    frozen_use = Array.make n 0;
    frozen_taken = Array.make n 0;
  }

let test_completion_singleton () =
  let region = mk_region 1 in
  checkf "singleton completes" 1.0
    (Region_prob.completion_probability region ~prob:(fun _ -> None))

let test_completion_chain () =
  (* Two-block trace taken with probability 0.9: CP = 0.9. *)
  let region =
    mk_region 2 ~edges:[ { Region.src = 0; dst = 1; role = Region.Taken } ]
  in
  let prob slot = if slot = 0 then Some 0.9 else None in
  checkf "chain" 0.9 (Region_prob.completion_probability region ~prob)

let test_loopback_singleton () =
  (* Self loop with back probability 0.95. *)
  let region =
    mk_region ~kind:Region.Loop 1
      ~back_edges:[ { Region.src = 0; dst = 0; role = Region.Taken } ]
  in
  checkf "self loop" 0.95
    (Region_prob.loopback_probability region ~prob:(fun _ -> Some 0.95))

let test_loopback_no_back_edges () =
  let region = mk_region 2 ~edges:[ { Region.src = 0; dst = 1; role = Region.Always } ] in
  checkf "no back edges" 0.0
    (Region_prob.loopback_probability region ~prob:(fun _ -> Some 0.5))

let test_loopback_two_paths () =
  (* entry -T(0.6)-> a, entry -N(0.4)-> b; a loops back with 0.9, b with
     0.95: LP = 0.6*0.9 + 0.4*0.95 = 0.92. *)
  let region =
    mk_region ~kind:Region.Loop 3
      ~edges:
        [
          { Region.src = 0; dst = 1; role = Region.Taken };
          { Region.src = 0; dst = 2; role = Region.Not_taken };
        ]
      ~back_edges:
        [
          { Region.src = 1; dst = 0; role = Region.Taken };
          { Region.src = 2; dst = 0; role = Region.Taken };
        ]
  in
  let prob = function 0 -> Some 0.6 | 1 -> Some 0.9 | 2 -> Some 0.95 | _ -> None in
  checkf "two-path loop-back" 0.92
    (Region_prob.loopback_probability region ~prob)

let test_trip_count_conversion () =
  checkf "lp .9 -> 10" 10.0 (Region_prob.trip_count_of_loopback 0.9);
  checkf "lp .98 -> 50" 50.0 (Region_prob.trip_count_of_loopback 0.98);
  checkf "lp 1 capped" 1e9 (Region_prob.trip_count_of_loopback 1.0);
  checkb "low" true (Region_prob.classify_loopback 0.5 = Region_prob.Low);
  checkb "medium" true (Region_prob.classify_loopback 0.95 = Region_prob.Medium);
  checkb "high" true (Region_prob.classify_loopback 0.99 = Region_prob.High);
  checkb "classify trips" true
    (Region_prob.classify_trip_count 9.0 = Region_prob.Low
    && Region_prob.classify_trip_count 10.0 = Region_prob.Medium
    && Region_prob.classify_trip_count 51.0 = Region_prob.High)

(* ------------------------------------------------------------------ *)
(* Ranges                                                               *)
(* ------------------------------------------------------------------ *)

let test_bp_ranges () =
  checki "low" 0 (Metrics.bp_range 0.0);
  checki "low edge" 0 (Metrics.bp_range 0.29);
  checki "mid" 1 (Metrics.bp_range 0.3);
  checki "mid high" 1 (Metrics.bp_range 0.7);
  checki "high" 2 (Metrics.bp_range 0.71);
  (* The paper's example: 0.99 vs 0.76 match, 0.68 vs 0.78 mismatch. *)
  checkb "paper match" true (Metrics.bp_range 0.99 = Metrics.bp_range 0.76);
  checkb "paper mismatch" true (Metrics.bp_range 0.68 <> Metrics.bp_range 0.78)

let test_lp_ranges () =
  checki "low trip" 0 (Metrics.lp_range 0.5);
  checki "medium trip" 1 (Metrics.lp_range 0.9);
  checki "medium trip high" 1 (Metrics.lp_range 0.98);
  checki "high trip" 2 (Metrics.lp_range 0.99)

(* ------------------------------------------------------------------ *)
(* NAVEP on a real nested-loop program (the paper's Fig 1 situation)    *)
(* ------------------------------------------------------------------ *)

(* Nested loops sharing the inner block: the outer loop region and inner
   loop region can both contain the inner body, giving duplication. *)
let nested_loop_src =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 3000
outer:
    movi r3, 0
    movi r4, 20
inner:
    addi r5, r5, 1
    addi r3, r3, 1
    blt r3, r4, inner
    addi r1, r1, 1
    blt r1, r2, outer
    out r5
    halt
|}

let nested_profiles threshold =
  let p = Assembler.assemble_exn nested_loop_src in
  let inip =
    Engine.run (Engine.create ~config:(Engine.config ~threshold ()) ~seed:5L p)
  in
  let avep = Engine.run (Engine.create ~config:Engine.profiling_only ~seed:5L p) in
  (inip.Engine.snapshot, avep.Engine.snapshot)

let test_navep_nested_loops () =
  let inip, avep = nested_profiles 30 in
  checkb "regions formed" true (inip.Snapshot.regions <> []);
  let navep = Navep.build ~inip ~avep in
  (* Invariant: for every block, the copies' frequencies sum to the
     block's AVEP frequency. *)
  let bmap = inip.Snapshot.block_map in
  for block = 0 to Block_map.block_count bmap - 1 do
    let copies = Navep.copies_of_block navep block in
    if copies <> [] && Snapshot.block_freq avep block > 0.0 then begin
      let total = Navep.total_block_freq navep block in
      let expected = Snapshot.block_freq avep block in
      checkf2
        (Printf.sprintf "block %d copies sum to AVEP freq" block)
        1.0
        (total /. expected)
    end
  done

let test_navep_every_slot_has_node () =
  let inip, avep = nested_profiles 30 in
  let navep = Navep.build ~inip ~avep in
  List.iter
    (fun region ->
      Array.iteri
        (fun slot _ ->
          checkb "slot node exists" true
            (Navep.node_of_slot navep ~region:region.Region.id ~slot <> None))
        region.Region.slots)
    inip.Snapshot.regions

let test_navep_nonnegative_freqs () =
  let inip, avep = nested_profiles 30 in
  let navep = Navep.build ~inip ~avep in
  List.iter
    (fun (c : Navep.copy) ->
      checkb "freq >= 0" true (Navep.freq navep c.Navep.node >= 0.0))
    (Navep.copies navep)

let test_navep_no_regions_is_identity () =
  (* With a profiling-only INIP, every block is standalone and NAVEP
     frequencies equal AVEP frequencies. *)
  let _, avep = nested_profiles 30 in
  let navep = Navep.build ~inip:avep ~avep in
  checkb "no fallback" true (not (Navep.used_fallback navep));
  let bmap = avep.Snapshot.block_map in
  for block = 0 to Block_map.block_count bmap - 1 do
    match Navep.node_of_standalone navep block with
    | None -> Alcotest.fail "standalone node missing"
    | Some node ->
        checkf
          (Printf.sprintf "block %d identity" block)
          (Snapshot.block_freq avep block)
          (Navep.freq navep node)
  done

(* ------------------------------------------------------------------ *)
(* Metrics end-to-end sanity                                            *)
(* ------------------------------------------------------------------ *)

let stable_branch_src =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 30000
loop:
    rnd r3, 1000
    movi r4, 800
    blt r3, r4, hot
    addi r5, r5, 1
    jmp join
hot:
    addi r6, r6, 1
join:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
|}

let profiles_of src threshold seed =
  let p = Assembler.assemble_exn src in
  let inip =
    Engine.run (Engine.create ~config:(Engine.config ~threshold ()) ~seed p)
  in
  let avep = Engine.run (Engine.create ~config:Engine.profiling_only ~seed p) in
  (inip.Engine.snapshot, avep.Engine.snapshot)

let test_metrics_stable_program_accurate () =
  let inip, avep = profiles_of stable_branch_src 100 7L in
  let c = Metrics.compare_snapshots ~inip ~avep in
  checkb "sd_bp small for stable branches"
    true (c.Metrics.sd_bp < 0.1);
  checkb "no bp mismatch" true (c.Metrics.bp_mismatch < 0.05);
  checkb "samples present" true (c.Metrics.bp_samples > 0)

let test_metrics_self_comparison_zero () =
  let _, avep = profiles_of stable_branch_src 100 7L in
  let c = Metrics.compare_snapshots ~inip:avep ~avep in
  checkf "sd zero vs self" 0.0 c.Metrics.sd_bp;
  checkf "mismatch zero vs self" 0.0 c.Metrics.bp_mismatch

let phase_flip_src =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 30000
    movi r7, 1000
loop:
    blt r1, r7, early
    addi r5, r5, 1
    jmp join
early:
    addi r6, r6, 1
join:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
|}

let test_metrics_phase_change_detected () =
  (* A branch taken 100% early and 0% late: a small-threshold profile
     must disagree strongly with AVEP. *)
  let inip, avep = profiles_of phase_flip_src 50 7L in
  let c = Metrics.compare_snapshots ~inip ~avep in
  checkb
    (Printf.sprintf "sd_bp large on phase change (%.3f)" c.Metrics.sd_bp)
    true (c.Metrics.sd_bp > 0.3);
  checkb "mismatch too" true (c.Metrics.bp_mismatch > 0.1)

let test_metrics_accuracy_improves_with_threshold () =
  let _, avep = profiles_of phase_flip_src 50 7L in
  let sd_at threshold =
    let inip, _ = profiles_of phase_flip_src threshold 7L in
    (Metrics.compare_snapshots ~inip ~avep).Metrics.sd_bp
  in
  checkb "longer profile more accurate" true (sd_at 8000 < sd_at 50)

let test_metrics_flat_train () =
  let _, avep = profiles_of stable_branch_src 100 7L in
  let train, _ = profiles_of stable_branch_src 0 99L in
  let f = Metrics.compare_flat ~predicted:train ~avep in
  checkb "train flat sd small" true (f.Metrics.sd_bp < 0.1);
  checkb "train samples" true (f.Metrics.bp_samples > 0)

let test_metrics_lp_on_loops () =
  let inip, avep = nested_profiles 30 in
  let c = Metrics.compare_snapshots ~inip ~avep in
  checkb "has loop regions" true (c.Metrics.lp_samples > 0);
  checkb "stable loop lp accurate" true (c.Metrics.sd_lp < 0.1)

(* -- Offline region formation (paper §5 future work) ----------------- *)

let test_offline_regions_formed () =
  let _, avep = nested_profiles 30 in
  let with_regions = Tpdbt_profiles.Offline_regions.form avep in
  checkb "regions formed offline" true
    (with_regions.Snapshot.regions <> []);
  List.iter
    (fun region ->
      checkb "offline region valid" true (Result.is_ok (Region.validate region)))
    with_regions.Snapshot.regions;
  (* Counters are untouched. *)
  checkb "counters preserved" true
    (with_regions.Snapshot.use = avep.Snapshot.use)

let test_offline_regions_find_the_loop () =
  let _, avep = nested_profiles 30 in
  let with_regions = Tpdbt_profiles.Offline_regions.form avep in
  checkb "a loop region exists" true
    (List.exists
       (fun r -> r.Region.kind = Region.Loop)
       with_regions.Snapshot.regions)

let test_offline_regions_empty_profile () =
  let program =
    Tpdbt_isa.Assembler.assemble_exn "main:\n    halt\n"
  in
  let snapshot =
    {
      Snapshot.block_map = Block_map.build program;
      use = [| 0 |];
      taken = [| 0 |];
      regions = [];
    }
  in
  let formed = Tpdbt_profiles.Offline_regions.form snapshot in
  checkb "no regions from an empty profile" true
    (formed.Snapshot.regions = [])

let test_train_cp_lp () =
  (* Offline train regions against AVEP on a stable program: CP/LP must
     be predicted accurately. *)
  let inip, avep = nested_profiles 0 in
  ignore inip;
  let c =
    Tpdbt_profiles.Offline_regions.train_cp_lp ~train:avep ~avep
  in
  checkb "train regions comparable" true (c.Metrics.lp_samples > 0);
  Alcotest.check (Alcotest.float 1e-9) "self train sd_lp" 0.0 c.Metrics.sd_lp;
  Alcotest.check (Alcotest.float 1e-9) "self train sd_cp" 0.0 c.Metrics.sd_cp

(* -- Report ------------------------------------------------------------ *)

(* Minimal substring search so the test does not need extra deps. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_report_render () =
  let inip, avep = nested_profiles 30 in
  let text = Tpdbt_profiles.Report.render ~avep inip in
  checkb "mentions regions" true
    (List.exists
       (fun line ->
         String.length line > 8 && String.sub (String.trim line) 0 4 = "loop")
       (String.split_on_char '\n' text));
  checkb "mentions hottest" true
    (String.length text > 100)

let test_report_hottest_sorted () =
  let _, avep = nested_profiles 30 in
  let hot = Tpdbt_profiles.Report.hottest_blocks ~limit:5 avep in
  checkb "limited" true (List.length hot <= 5);
  let rec descending = function
    | (_, a, _) :: ((_, b, _) :: _ as rest) -> a >= b && descending rest
    | [ _ ] | [] -> true
  in
  checkb "descending use" true (descending hot)

let test_report_region_mismatch_flagged () =
  (* A loop region whose frozen trip class differs from AVEP's must
     render the word MISMATCH. *)
  let region =
    {
      Region.id = 9;
      kind = Region.Loop;
      slots = [| 0 |];
      edges = [];
      back_edges = [ { Region.src = 0; dst = 0; role = Region.Taken } ];
      frozen_use = [| 1000 |];
      frozen_taken = [| 995 |];  (* trip ~200: high *)
    }
  in
  let program = Tpdbt_isa.Assembler.assemble_exn "a:\n beq r1, r1, a\n halt" in
  let bmap = Block_map.build program in
  let snapshot =
    { Snapshot.block_map = bmap; use = [| 1000; 0 |]; taken = [| 995; 0 |]; regions = [ region ] }
  in
  let avep =
    (* AVEP sees the loop back only half the time: low trip. *)
    { Snapshot.block_map = bmap; use = [| 1000; 0 |]; taken = [| 500; 0 |]; regions = [] }
  in
  let text = Tpdbt_profiles.Report.region_summary ~avep snapshot region in
  checkb "mismatch flagged" true (contains text "MISMATCH")

(* -- Phase detection --------------------------------------------------- *)

module Phases = Tpdbt_profiles.Phases

let checkpoint_series src ~every =
  let p = Assembler.assemble_exn src in
  let engine = Engine.create ~config:Engine.profiling_only ~seed:11L p in
  let acc = ref [] in
  let result =
    Engine.run ~checkpoint_every:every
      ~on_checkpoint:(fun ~steps snapshot -> acc := (steps, snapshot) :: !acc)
      engine
  in
  (result, List.rev !acc)

let test_checkpoints_emitted () =
  let result, series = checkpoint_series stable_branch_src ~every:20_000 in
  checkb "several checkpoints" true (List.length series > 5);
  (* Steps strictly increasing, counters monotone. *)
  let rec check_mono prev_steps prev_use = function
    | [] -> ()
    | (steps, snap) :: rest ->
        checkb "steps increase" true (steps > prev_steps);
        Array.iteri
          (fun i u -> checkb "use monotone" true (u >= prev_use.(i)))
          snap.Snapshot.use;
        check_mono steps snap.Snapshot.use rest
  in
  let n = Array.length result.Engine.snapshot.Snapshot.use in
  check_mono 0 (Array.make n 0) series

let test_phases_windows () =
  let _, series = checkpoint_series stable_branch_src ~every:20_000 in
  let ws = Phases.windows series in
  checki "one window per checkpoint" (List.length series) (List.length ws);
  List.iter
    (fun w ->
      checkb "window extent" true (w.Phases.end_steps > w.Phases.start_steps);
      Array.iter (fun u -> checkb "window use nonneg" true (u >= 0)) w.Phases.use)
    ws

let test_phases_stable_program_quiet () =
  let result, series = checkpoint_series stable_branch_src ~every:20_000 in
  let bmap = result.Engine.snapshot.Snapshot.block_map in
  checkb "no change points in a stable program" true
    (Phases.change_points ~threshold:0.1 ~shift_threshold:0.45 bmap series = [])

let test_phases_detects_flip () =
  let result, series = checkpoint_series phase_flip_src ~every:20_000 in
  let bmap = result.Engine.snapshot.Snapshot.block_map in
  let points = Phases.change_points ~threshold:0.1 bmap series in
  checkb "flip detected" true (points <> []);
  (* The flip is at iteration 1000 of 30000 (~7 instrs/iter). *)
  let flip_zone steps = steps > 2_000 && steps < 60_000 in
  checkb "detected near the actual flip" true
    (List.exists (fun cp -> flip_zone cp.Phases.steps) points)

let test_phases_windows_reject_bad_series () =
  let _, series = checkpoint_series stable_branch_src ~every:50_000 in
  match series with
  | (s1, snap1) :: _ -> (
      match Phases.windows [ (s1, snap1); (s1, snap1) ] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "non-increasing steps accepted")
  | [] -> Alcotest.fail "no checkpoints"

(* -- Profile files ---------------------------------------------------- *)

let test_profile_io_roundtrip () =
  let inip, avep = nested_profiles 30 in
  List.iter
    (fun snapshot ->
      match
        Tpdbt_profiles.Profile_io.of_string
          (Tpdbt_profiles.Profile_io.to_string snapshot)
      with
      | Error e -> Alcotest.fail (Tpdbt_dbt.Error.to_string e)
      | Ok loaded ->
          checkb "use roundtrip" true (loaded.Snapshot.use = snapshot.Snapshot.use);
          checkb "taken roundtrip" true
            (loaded.Snapshot.taken = snapshot.Snapshot.taken);
          checki "region count"
            (List.length snapshot.Snapshot.regions)
            (List.length loaded.Snapshot.regions);
          List.iter2
            (fun (a : Region.t) (b : Region.t) ->
              checkb "region slots" true (a.Region.slots = b.Region.slots);
              checkb "region kind" true (a.Region.kind = b.Region.kind);
              checkb "region edges" true (a.Region.edges = b.Region.edges);
              checkb "region backs" true
                (a.Region.back_edges = b.Region.back_edges);
              checkb "frozen" true
                (a.Region.frozen_use = b.Region.frozen_use
                && a.Region.frozen_taken = b.Region.frozen_taken))
            snapshot.Snapshot.regions loaded.Snapshot.regions;
          checki "block count"
            (Block_map.block_count snapshot.Snapshot.block_map)
            (Block_map.block_count loaded.Snapshot.block_map))
    [ inip; avep ]

let test_profile_io_file_roundtrip () =
  let inip, _ = nested_profiles 30 in
  let path = Filename.temp_file "tpdbt" ".prof" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tpdbt_profiles.Profile_io.save path inip;
      match Tpdbt_profiles.Profile_io.load path with
      | Ok loaded -> checkb "file roundtrip" true (loaded.Snapshot.use = inip.Snapshot.use)
      | Error e -> Alcotest.fail (Tpdbt_dbt.Error.to_string e))

let test_profile_io_metrics_preserved () =
  (* Analysing loaded profiles must give the same metrics as in-memory
     snapshots. *)
  let inip, avep = nested_profiles 30 in
  let reload s =
    match
      Tpdbt_profiles.Profile_io.of_string (Tpdbt_profiles.Profile_io.to_string s)
    with
    | Ok s -> s
    | Error e -> Alcotest.fail (Tpdbt_dbt.Error.to_string e)
  in
  let direct = Metrics.compare_snapshots ~inip ~avep in
  let loaded =
    Metrics.compare_snapshots ~inip:(reload inip) ~avep:(reload avep)
  in
  checkf "sd_bp preserved" direct.Metrics.sd_bp loaded.Metrics.sd_bp;
  checkf "sd_lp preserved" direct.Metrics.sd_lp loaded.Metrics.sd_lp;
  checkf "sd_cp preserved" direct.Metrics.sd_cp loaded.Metrics.sd_cp

let test_profile_io_rejects_garbage () =
  let reject text =
    checkb (String.escaped (String.sub text 0 (min 25 (String.length text))))
      true
      (Result.is_error (Tpdbt_profiles.Profile_io.of_string text))
  in
  reject "";
  reject "NOT A PROFILE\n";
  reject "TPDBT-PROFILE 1\nblocks 1 entry 0\n";
  (* truncated *)
  reject
    "TPDBT-PROFILE 1\nblocks 1 entry 5\nblock 0 0 0 stop\ncounters\n0 1 0\nregions 0\n";
  (* entry out of range *)
  reject
    "TPDBT-PROFILE 1\nblocks 1 entry 0\nblock 0 0 0 stop\ncounters\n0 1 0\nregions 1\nregion 0 loop 1\nslot 0 0 5 3\n"
  (* loop without back edges fails region validation *)

let test_profile_io_typed_rejections () =
  (* Each malformed class must surface as a typed Corrupt_profile
     naming the offending field and line (0 = end of file). *)
  let expect_field text field line =
    match Tpdbt_profiles.Profile_io.of_string text with
    | Ok _ -> Alcotest.failf "accepted malformed profile (%s)" field
    | Error (Tpdbt_dbt.Error.Corrupt_profile c) ->
        Alcotest.(check string) ("field for " ^ field) field c.field;
        Alcotest.(check int) ("line for " ^ field) line c.line
    | Error other ->
        Alcotest.failf "wrong error class: %s" (Tpdbt_dbt.Error.to_string other)
  in
  (* truncated: counters section missing entries *)
  expect_field "TPDBT-PROFILE 1\nblocks 1 entry 0\nblock 0 0 0 stop\ncounters\n"
    "counter" 0;
  (* negative counter *)
  expect_field
    "TPDBT-PROFILE 1\nblocks 1 entry 0\nblock 0 0 0 stop\ncounters\n0 -3 0\nregions 0\n"
    "counter.use" 5;
  (* NaN / non-numeric counter *)
  expect_field
    "TPDBT-PROFILE 1\nblocks 1 entry 0\nblock 0 0 0 stop\ncounters\n0 nan 0\nregions 0\n"
    "counter.use" 5;
  (* taken exceeding use is impossible in a real profile *)
  expect_field
    "TPDBT-PROFILE 1\nblocks 1 entry 0\nblock 0 0 0 stop\ncounters\n0 1 2\nregions 0\n"
    "counter.taken" 5;
  (* out-of-range block id in the counter section *)
  expect_field
    "TPDBT-PROFILE 1\nblocks 1 entry 0\nblock 0 0 0 stop\ncounters\n7 1 0\nregions 0\n"
    "counter.id" 5;
  (* hostile block count: must be rejected, not handed to Array.make *)
  expect_field "TPDBT-PROFILE 1\nblocks 99999999999 entry 0\n" "blocks" 2;
  (* hostile slot count inside a region *)
  expect_field
    "TPDBT-PROFILE 1\nblocks 1 entry 0\nblock 0 0 0 stop\ncounters\n0 1 0\nregions 1\nregion 0 trace 2000001\n"
    "region.slots" 7;
  (* region slot referencing a nonexistent block *)
  expect_field
    "TPDBT-PROFILE 1\nblocks 1 entry 0\nblock 0 0 0 stop\ncounters\n0 1 0\nregions 1\nregion 0 trace 1\nslot 0 9 1 0\n"
    "slot.block" 8;
  (* load of a missing file is a typed I/O error *)
  match Tpdbt_profiles.Profile_io.load "/nonexistent/tpdbt.prof" with
  | Error (Tpdbt_dbt.Error.Io_error _) -> ()
  | Error other ->
      Alcotest.failf "wrong error class: %s" (Tpdbt_dbt.Error.to_string other)
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"

let suite =
  [
    ("edge probability", `Quick, test_edge_probability);
    ("completion singleton", `Quick, test_completion_singleton);
    ("completion chain", `Quick, test_completion_chain);
    ("loopback singleton", `Quick, test_loopback_singleton);
    ("loopback no back edges", `Quick, test_loopback_no_back_edges);
    ("loopback two paths", `Quick, test_loopback_two_paths);
    ("trip count conversion", `Quick, test_trip_count_conversion);
    ("bp ranges", `Quick, test_bp_ranges);
    ("lp ranges", `Quick, test_lp_ranges);
    ("navep nested loops", `Quick, test_navep_nested_loops);
    ("navep slots have nodes", `Quick, test_navep_every_slot_has_node);
    ("navep nonnegative", `Quick, test_navep_nonnegative_freqs);
    ("navep identity without regions", `Quick, test_navep_no_regions_is_identity);
    ("metrics stable accurate", `Quick, test_metrics_stable_program_accurate);
    ("metrics self comparison", `Quick, test_metrics_self_comparison_zero);
    ("metrics phase change", `Quick, test_metrics_phase_change_detected);
    ("metrics improve with threshold", `Quick,
     test_metrics_accuracy_improves_with_threshold);
    ("metrics flat train", `Quick, test_metrics_flat_train);
    ("metrics lp on loops", `Quick, test_metrics_lp_on_loops);
    ("offline regions formed", `Quick, test_offline_regions_formed);
    ("offline regions find the loop", `Quick, test_offline_regions_find_the_loop);
    ("offline regions empty profile", `Quick, test_offline_regions_empty_profile);
    ("offline train cp/lp", `Quick, test_train_cp_lp);
    ("report render", `Quick, test_report_render);
    ("report hottest sorted", `Quick, test_report_hottest_sorted);
    ("report region mismatch flagged", `Quick, test_report_region_mismatch_flagged);
    ("checkpoints emitted", `Quick, test_checkpoints_emitted);
    ("phases windows", `Quick, test_phases_windows);
    ("phases stable quiet", `Quick, test_phases_stable_program_quiet);
    ("phases detects flip", `Quick, test_phases_detects_flip);
    ("phases rejects bad series", `Quick, test_phases_windows_reject_bad_series);
    ("profile io roundtrip", `Quick, test_profile_io_roundtrip);
    ("profile io file roundtrip", `Quick, test_profile_io_file_roundtrip);
    ("profile io metrics preserved", `Quick, test_profile_io_metrics_preserved);
    ("profile io rejects garbage", `Quick, test_profile_io_rejects_garbage);
    ("profile io typed rejections", `Quick, test_profile_io_typed_rejections);
  ]
