(* The serving subsystem: framing, strict protocol validation, the
   session journal, the warm reply cache, the server state machine
   (admission, backpressure, drain, disconnects, journal recovery),
   and the CLI's exit-code taxonomy. *)

module Frame = Tpdbt_serve.Frame
module Protocol = Tpdbt_serve.Protocol
module Journal = Tpdbt_serve.Journal
module Warm_cache = Tpdbt_serve.Warm_cache
module Server = Tpdbt_serve.Server
module Json = Tpdbt_telemetry.Json

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let rec rm_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_tree (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "tpdbt-serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_tree dir) (fun () -> f dir)

let member name payload =
  match Json.parse payload with
  | Error msg -> Alcotest.fail ("reply not JSON: " ^ msg)
  | Ok doc -> Json.member name doc

let kind_of payload =
  match member "kind" payload with
  | Some (Json.Str s) -> s
  | _ -> ""

let is_ok payload = member "ok" payload = Some (Json.Bool true)

(* ------------------------------------------------------------------ *)
(* Framing                                                              *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; "{\"op\":\"ping\"}"; String.make 1000 'z' ] in
  let dec = Frame.decoder () in
  List.iter (fun p -> Frame.feed dec (Frame.encode p)) payloads;
  List.iter
    (fun p ->
      match Frame.next dec with
      | Ok (Some got) -> checks "frame payload" p got
      | Ok None -> Alcotest.fail "frame missing"
      | Error e -> Alcotest.fail (Frame.error_to_string e))
    payloads;
  checkb "drained" true (Frame.next dec = Ok None);
  checki "no residue" 0 (Frame.buffered dec)

let test_frame_byte_at_a_time () =
  let wire = Frame.encode "hello" ^ Frame.encode "" in
  let dec = Frame.decoder () in
  let got = ref [] in
  String.iter
    (fun ch ->
      Frame.feed dec (String.make 1 ch);
      match Frame.next dec with
      | Ok (Some p) -> got := p :: !got
      | Ok None -> ()
      | Error e -> Alcotest.fail (Frame.error_to_string e))
    wire;
  checkb "both frames, in order" true (List.rev !got = [ "hello"; "" ])

let test_frame_damage_is_sticky () =
  let dec = Frame.decoder () in
  Frame.feed dec "not-a-length\n";
  (match Frame.next dec with
  | Error (Frame.Bad_header _) -> ()
  | _ -> Alcotest.fail "garbage header accepted");
  (* Poisoned: even well-formed bytes fed later are refused. *)
  Frame.feed dec (Frame.encode "{}");
  (match Frame.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decoder resynchronised after damage");
  let big = Frame.decoder ~max_frame:64 () in
  Frame.feed big "65\n";
  match Frame.next big with
  | Error (Frame.Oversize 65) -> ()
  | _ -> Alcotest.fail "oversize declaration accepted"

(* ------------------------------------------------------------------ *)
(* Protocol strictness                                                  *)
(* ------------------------------------------------------------------ *)

let test_protocol_accepts () =
  (match Protocol.parse_request "{\"op\":\"ping\"}" with
  | Ok Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping rejected");
  (match
     Protocol.parse_request
       "{\"op\":\"run\",\"workload\":\"gzip\",\"threshold\":7}"
   with
  | Ok (Protocol.Run { workload = "gzip"; threshold = 7; max_steps = None })
    ->
      ()
  | _ -> Alcotest.fail "run rejected");
  (match Protocol.parse_request "{\"op\":\"sweep\"}" with
  | Ok (Protocol.Sweep { benches = []; max_steps = None; return_results })
    ->
      checkb "return_results defaults on" true return_results
  | _ -> Alcotest.fail "bare sweep rejected");
  match
    Protocol.parse_request
      "{\"op\":\"translate\",\"program\":\"halt\",\"seed\":9}"
  with
  | Ok (Protocol.Translate { seed = 9L; threshold = 1000; _ }) -> ()
  | _ -> Alcotest.fail "translate rejected"

let test_protocol_rejects () =
  let rejected s =
    match Protocol.parse_request s with
    | Error _ -> true
    | Ok _ -> false
  in
  List.iter
    (fun (label, s) -> checkb label true (rejected s))
    [
      ("not json", "{");
      ("not an object", "[1,2]");
      ("no op", "{}");
      ("unknown op", "{\"op\":\"launch\"}");
      ("fuzz is cli-only", "{\"op\":\"fuzz\"}");
      ( "fuzz with params is still cli-only",
        "{\"op\":\"fuzz\",\"budget\":10}" );
      ("unknown member", "{\"op\":\"ping\",\"extra\":1}");
      ("duplicate member", "{\"op\":\"ping\",\"op\":\"ping\"}");
      ("missing workload", "{\"op\":\"run\"}");
      ("empty workload", "{\"op\":\"run\",\"workload\":\"\"}");
      ("wrong type", "{\"op\":\"run\",\"workload\":5}");
      ( "negative threshold",
        "{\"op\":\"run\",\"workload\":\"gzip\",\"threshold\":-1}" );
      ( "fractional max_steps",
        "{\"op\":\"run\",\"workload\":\"gzip\",\"max_steps\":1.5}" );
      ( "zero max_steps",
        "{\"op\":\"run\",\"workload\":\"gzip\",\"max_steps\":0}" );
      ( "empty bench name",
        "{\"op\":\"sweep\",\"benches\":[\"gzip\",\"\"]}" );
      ("empty program", "{\"op\":\"translate\",\"program\":\"  \"}")
    ]

let test_cache_keys () =
  let parse s =
    match Protocol.parse_request s with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  let a =
    parse "{\"op\":\"run\",\"workload\":\"gzip\",\"threshold\":20}"
  in
  let b =
    parse "{\"op\":\"run\",\"threshold\":20,\"workload\":\"gzip\"}"
  in
  checkb "member order does not change the key" true
    (Protocol.cache_key a = Protocol.cache_key b);
  let c =
    parse "{\"op\":\"run\",\"workload\":\"gzip\",\"threshold\":21}"
  in
  checkb "parameters change the key" true
    (Protocol.cache_key a <> Protocol.cache_key c);
  checkb "probes are uncacheable" true
    (Protocol.cache_key Protocol.Ping = None);
  checkb "sweeps are uncacheable" true
    (Protocol.cache_key
       (parse "{\"op\":\"sweep\",\"benches\":[\"gzip\"]}")
    = None)

(* ------------------------------------------------------------------ *)
(* Journal                                                              *)
(* ------------------------------------------------------------------ *)

let test_journal_roundtrip_and_torn_tail () =
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "journal" in
      let j, r0 = Journal.open_ ~path in
      checki "fresh journal is empty" 0 r0.Journal.records;
      Journal.append j
        (Journal.Sweep_begin { id = 1; benches = [ "gzip"; "art" ] });
      Journal.append j (Journal.Sweep_end { id = 1 });
      Journal.append j (Journal.Sweep_begin { id = 2; benches = [ "swim" ] });
      Journal.close j;
      (* Damage the tail the way a crash mid-append would. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "R 0000 garbage";
      close_out oc;
      let j2, r = Journal.open_ ~path in
      Journal.close j2;
      checki "intact records survive" 3 r.Journal.records;
      checki "torn tail truncated" 1 r.Journal.torn;
      checkb "sweep 2 still in flight" true
        (r.Journal.inflight = [ (2, [ "swim" ]) ]);
      (* The truncation repaired the file: reopening is clean. *)
      let j3, r2 = Journal.open_ ~path in
      Journal.append j3 Journal.Drained;
      Journal.close j3;
      checki "no damage on reopen" 0 r2.Journal.torn;
      let j4, r3 = Journal.open_ ~path in
      Journal.close j4;
      checkb "drained clears in-flight" true (r3.Journal.inflight = []))

let test_journal_record_encoding () =
  List.iter
    (fun r ->
      match Journal.record_of_string (Journal.record_to_string r) with
      | Some r' -> checkb "record roundtrips" true (r = r')
      | None -> Alcotest.fail "record did not roundtrip")
    [
      Journal.Sweep_begin { id = 3; benches = [ "a"; "b" ] };
      Journal.Sweep_begin { id = 0; benches = [] };
      Journal.Sweep_end { id = 12 };
      Journal.Drained;
    ];
  checkb "garbage rejected" true (Journal.record_of_string "launch 1" = None)

(* ------------------------------------------------------------------ *)
(* Warm cache                                                           *)
(* ------------------------------------------------------------------ *)

let test_warm_cache_bounded_lru () =
  let c = Warm_cache.create ~capacity:10 in
  Warm_cache.add c ~now:1 ~key:"a" ~size:4 "ra";
  Warm_cache.add c ~now:2 ~key:"b" ~size:4 "rb";
  checkb "hit a" true (Warm_cache.find c ~now:3 "a" = Some "ra");
  (* b is now least recent; an insert over budget evicts it. *)
  Warm_cache.add c ~now:4 ~key:"c" ~size:4 "rc";
  checkb "b evicted" true (Warm_cache.find c ~now:5 "b" = None);
  checkb "a survives" true (Warm_cache.find c ~now:6 "a" = Some "ra");
  checki "evictions counted" 1 (Warm_cache.evictions c);
  checkb "usage bounded" true (Warm_cache.used c <= 10);
  Warm_cache.add c ~now:7 ~key:"a" ~size:4 "ra2";
  checkb "replacement visible" true (Warm_cache.find c ~now:8 "a" = Some "ra2")

(* ------------------------------------------------------------------ *)
(* Server state machine                                                 *)
(* ------------------------------------------------------------------ *)

let small_config queue_limit =
  { Server.default_config with Server.queue_limit; max_steps = Some 20_000 }

let run_req ?(threshold = 20) workload =
  Json.obj
    [
      ("op", Json.quote "run");
      ("workload", Json.quote workload);
      ("threshold", string_of_int threshold);
    ]

let test_server_probes_and_validation () =
  let s = Server.create (small_config 4) in
  (match Server.offer s ~client:0 "{\"op\":\"ping\"}" with
  | Server.Reply r -> checkb "ready" true (is_ok r)
  | Server.Enqueued _ -> Alcotest.fail "ping queued");
  (match Server.offer s ~client:0 "garbage" with
  | Server.Reply r -> checks "invalid kind" "invalid" (kind_of r)
  | Server.Enqueued _ -> Alcotest.fail "garbage queued");
  (* The fuzz op is deliberately not served: a campaign would pin the
     worker for unbounded time.  The refusal must be a clean protocol
     rejection that names the CLI alternative — not an internal error. *)
  (match Server.offer s ~client:0 "{\"op\":\"fuzz\"}" with
  | Server.Reply r ->
      checks "fuzz refusal kind" "invalid" (kind_of r);
      let mentions_cli =
        match Protocol.parse_request "{\"op\":\"fuzz\"}" with
        | Error msg ->
            let needle = "tpdbt fuzz" in
            let n = String.length needle and m = String.length msg in
            let rec at i =
              i + n <= m && (String.sub msg i n = needle || at (i + 1))
            in
            at 0
        | Ok _ -> false
      in
      checkb "refusal points at the subcommand" true mentions_cli
  | Server.Enqueued _ -> Alcotest.fail "fuzz queued");
  (* Unknown benchmark: admitted (the schema cannot know the suite),
     rejected at execution, never fatal. *)
  (match Server.offer s ~client:0 (run_req "no-such") with
  | Server.Enqueued _ -> (
      match Server.step s with
      | Some { Server.reply; delivered; _ } ->
          checks "semantic rejection" "invalid" (kind_of reply);
          checkb "still delivered" true delivered
      | None -> Alcotest.fail "job vanished")
  | Server.Reply _ -> Alcotest.fail "expensive request answered inline");
  checkb "server is idle again" true (Server.idle s);
  Server.close s

let test_server_backpressure_and_disconnect () =
  let s = Server.create (small_config 2) in
  let offers =
    List.map
      (fun t -> Server.offer s ~client:1 (run_req ~threshold:t "gzip"))
      [ 20; 21; 22; 23 ]
  in
  let enqueued =
    List.length
      (List.filter (function Server.Enqueued _ -> true | _ -> false) offers)
  in
  let overloaded =
    List.length
      (List.filter
         (function
           | Server.Reply r -> kind_of r = "overloaded"
           | Server.Enqueued _ -> false)
         offers)
  in
  checki "bounded admission" 2 enqueued;
  checki "the rest get backpressure" 2 overloaded;
  checki "queue never exceeds the limit" 2 (Server.queue_peak s);
  Server.disconnect s ~client:1;
  (match Server.step s with
  | Some { Server.delivered; reply; _ } ->
      checkb "dead client's reply dropped" false delivered;
      checkb "the work itself succeeded" true (is_ok reply)
  | None -> Alcotest.fail "job vanished");
  ignore (Server.step s);
  checkb "queue drained" true (Server.idle s);
  Server.close s

let test_server_drain_refuses_new_work () =
  let s = Server.create (small_config 2) in
  (match Server.offer s ~client:0 (run_req "gzip") with
  | Server.Enqueued _ -> ()
  | Server.Reply _ -> Alcotest.fail "admission refused while accepting");
  (match Server.offer s ~client:0 "{\"op\":\"drain\"}" with
  | Server.Reply r -> checkb "drain acknowledged" true (is_ok r)
  | Server.Enqueued _ -> Alcotest.fail "drain queued");
  (match Server.offer s ~client:0 (run_req "swim") with
  | Server.Reply r -> checks "draining refusal" "draining" (kind_of r)
  | Server.Enqueued _ -> Alcotest.fail "admitted while draining");
  (match Server.offer s ~client:0 "{\"op\":\"ping\"}" with
  | Server.Reply r ->
      checkb "probes still served, not ready" true
        (is_ok r && member "ready" r = Some (Json.Bool false))
  | Server.Enqueued _ -> Alcotest.fail "ping queued");
  (* The queued job still completes before shutdown. *)
  (match Server.step s with
  | Some { Server.reply; _ } -> checkb "queued job finished" true (is_ok reply)
  | None -> Alcotest.fail "queued job discarded");
  checkb "drained and idle" true (Server.draining s && Server.idle s);
  Server.close s

let test_server_sweep_journal_recovery () =
  (* A sweep that is journalled but never marked complete (the server
     "dies" without close) must be re-enqueued as an orphan by the
     next server over the same journal, and its results must land in
     the checkpoint store. *)
  with_temp_dir (fun dir ->
      let ckpt = Filename.concat dir "ckpt" in
      let config =
        {
          (small_config 4) with
          Server.checkpoint_dir = Some ckpt;
          journal_path = Some (Filename.concat dir "journal");
        }
      in
      let s = Server.create config in
      let sweep_req =
        Json.obj
          [
            ("op", Json.quote "sweep");
            ("benches", Json.arr [ Json.quote "gzip" ]);
            ("return_results", "false");
          ]
      in
      (match Server.offer s ~client:0 sweep_req with
      | Server.Enqueued _ -> ()
      | Server.Reply _ -> Alcotest.fail "sweep refused");
      (* Simulated kill: the admitted sweep never runs; the journal
         keeps its Sweep_begin only if it started.  Run it, then fake
         the missing Sweep_end by re-opening the journal and
         re-appending a begin. *)
      (match Server.step s with
      | Some { Server.reply; _ } -> checkb "sweep ran" true (is_ok reply)
      | None -> Alcotest.fail "sweep vanished");
      (* Orphan: journal says a sweep began and never ended. *)
      let j, _ = Journal.open_ ~path:(Filename.concat dir "journal") in
      Journal.append j (Journal.Sweep_begin { id = 99; benches = [ "gzip" ] });
      Journal.close j;
      let s2 = Server.create config in
      checkb "in-flight sweep recovered" true
        (Server.recovered s2 = [ (99, [ "gzip" ]) ]);
      checki "recovery job queued" 1 (Server.pending s2);
      (match Server.step s2 with
      | Some { Server.client = None; reply; delivered; _ } ->
          checkb "orphan reply undeliverable" false delivered;
          checkb "orphan sweep resumed from checkpoints" true (is_ok reply)
      | Some _ -> Alcotest.fail "orphan has a client"
      | None -> Alcotest.fail "orphan never ran");
      Server.drain s2;
      Server.close s2;
      (* The clean shutdown is journalled: a third server recovers
         nothing. *)
      let s3 = Server.create config in
      checkb "nothing to recover after drain" true (Server.recovered s3 = []);
      Server.close s3)

let test_server_warm_cache_byte_identical () =
  let s = Server.create (small_config 4) in
  let exec () =
    match Server.offer s ~client:0 (run_req "gzip") with
    | Server.Enqueued _ -> (
        match Server.step s with
        | Some { Server.reply; _ } -> reply
        | None -> Alcotest.fail "job vanished")
    | Server.Reply _ -> Alcotest.fail "refused"
  in
  let cold = exec () in
  let warm = exec () in
  checks "warm reply byte-identical to cold" cold warm;
  (match Server.offer s ~client:0 "{\"op\":\"status\"}" with
  | Server.Reply r ->
      checkb "served from the cache" true
        (member "cache_hits" r = Some (Json.Num 1.0))
  | Server.Enqueued _ -> Alcotest.fail "status queued");
  Server.close s

(* ------------------------------------------------------------------ *)
(* CLI exit-code taxonomy                                               *)
(* ------------------------------------------------------------------ *)

let tpdbt = Filename.concat (Filename.concat ".." "bin") "tpdbt.exe"

let exit_of args =
  match
    Unix.system
      (Filename.quote_command tpdbt args ~stdout:Filename.null
         ~stderr:Filename.null)
  with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> Alcotest.fail "tpdbt killed"

let test_cli_exit_taxonomy () =
  if not (Sys.file_exists tpdbt) then
    Alcotest.skip ()
  else begin
    checki "success is 0" 0 (exit_of [ "--version" ]);
    checki "unknown subcommand is usage (1)" 1 (exit_of [ "no-such-cmd" ]);
    checki "unknown benchmark is usage (1)" 1
      (exit_of [ "bench"; "no-such-bench" ]);
    with_temp_dir (fun dir ->
        let bad = Filename.concat dir "bad.s" in
        let oc = open_out bad in
        output_string oc "this is not assembly\n";
        close_out oc;
        checki "malformed input is validation (2)" 2 (exit_of [ "asm"; bad ]);
        let old_json = Filename.concat dir "old.json" in
        let new_json = Filename.concat dir "new.json" in
        let write path ips =
          let oc = open_out path in
          output_string oc
            (Printf.sprintf
               "{\"host\":{\"cores\":1},\"benches\":[{\"name\":\"g\",\
                \"guest_ips\":%s,\"alloc_per_instr\":1.0,\"cycles\":100}]}"
               ips);
          close_out oc
        in
        write old_json "1000.0";
        write new_json "10.0";
        checki "perf regression is 3" 3
          (exit_of [ "perfdiff"; old_json; new_json ]);
        checki "garbage perfdiff input is validation (2)" 2
          (exit_of [ "perfdiff"; bad; new_json ]))
  end

let suite =
  [
    Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame byte-at-a-time" `Quick test_frame_byte_at_a_time;
    Alcotest.test_case "frame damage is sticky" `Quick
      test_frame_damage_is_sticky;
    Alcotest.test_case "protocol accepts" `Quick test_protocol_accepts;
    Alcotest.test_case "protocol rejects" `Quick test_protocol_rejects;
    Alcotest.test_case "cache keys canonical" `Quick test_cache_keys;
    Alcotest.test_case "journal roundtrip and torn tail" `Quick
      test_journal_roundtrip_and_torn_tail;
    Alcotest.test_case "journal record encoding" `Quick
      test_journal_record_encoding;
    Alcotest.test_case "warm cache bounded lru" `Quick
      test_warm_cache_bounded_lru;
    Alcotest.test_case "server probes and validation" `Quick
      test_server_probes_and_validation;
    Alcotest.test_case "server backpressure and disconnect" `Quick
      test_server_backpressure_and_disconnect;
    Alcotest.test_case "server drain refuses new work" `Quick
      test_server_drain_refuses_new_work;
    Alcotest.test_case "server sweep journal recovery" `Quick
      test_server_sweep_journal_recovery;
    Alcotest.test_case "server warm cache byte-identical" `Quick
      test_server_warm_cache_byte_identical;
    Alcotest.test_case "cli exit taxonomy" `Quick test_cli_exit_taxonomy;
  ]
