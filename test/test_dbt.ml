(* Tests for the DBT layer: block discovery, regions, the optimiser and
   the two-phase engine. *)

module Assembler = Tpdbt_isa.Assembler
module Instr = Tpdbt_isa.Instr
module Reg = Tpdbt_isa.Reg
module Machine = Tpdbt_vm.Machine
module Block_map = Tpdbt_dbt.Block_map
module Region = Tpdbt_dbt.Region
module Region_former = Tpdbt_dbt.Region_former
module Ir = Tpdbt_dbt.Ir
module Optimizer = Tpdbt_dbt.Optimizer
module Engine = Tpdbt_dbt.Engine
module Error = Tpdbt_dbt.Error
module Snapshot = Tpdbt_dbt.Snapshot
module Perf_model = Tpdbt_dbt.Perf_model

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let r = Reg.of_int

(* ------------------------------------------------------------------ *)
(* Block map                                                            *)
(* ------------------------------------------------------------------ *)

let simple_loop_src =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 10
loop:
    addi r1, r1, 1
    blt r1, r2, loop
    out r1
    halt
|}

let test_block_map_simple_loop () =
  let p = Assembler.assemble_exn simple_loop_src in
  let bmap = Block_map.build p in
  checki "three blocks" 3 (Block_map.block_count bmap);
  let b0 = Block_map.block bmap 0 in
  checki "b0 start" 0 b0.Block_map.start_pc;
  checki "b0 size" 2 b0.Block_map.size;
  (match b0.Block_map.terminator with
  | Block_map.Fallthrough 1 -> ()
  | _ -> Alcotest.fail "b0 should fall through to the loop");
  let b1 = Block_map.block bmap 1 in
  (match b1.Block_map.terminator with
  | Block_map.Cond { taken = 1; fallthrough = 2 } -> ()
  | _ -> Alcotest.fail "b1 should be the loop branch");
  let b2 = Block_map.block bmap 2 in
  (match b2.Block_map.terminator with
  | Block_map.Stop -> ()
  | _ -> Alcotest.fail "b2 should halt");
  checki "entry block" 0 (Block_map.entry_block bmap)

let test_block_map_lookup () =
  let p = Assembler.assemble_exn simple_loop_src in
  let bmap = Block_map.build p in
  checkb "block_at leader" true (Block_map.block_at bmap 2 = Some 1);
  checkb "block_at mid-block" true (Block_map.block_at bmap 1 = None);
  checkb "block_containing" true (Block_map.block_containing bmap 1 = Some 0);
  checkb "block_at out of range" true (Block_map.block_at bmap 99 = None)

let test_block_map_successors () =
  let p = Assembler.assemble_exn simple_loop_src in
  let bmap = Block_map.build p in
  checkb "loop succs" true (Block_map.successors bmap 1 = [ 1; 2 ]);
  checkb "fall succ" true (Block_map.successors bmap 0 = [ 1 ]);
  checkb "halt succs" true (Block_map.successors bmap 2 = [])

let test_block_map_call () =
  let p =
    Assembler.assemble_exn
      {|
main:
    call fn
    halt
fn:
    ret
|}
  in
  let bmap = Block_map.build p in
  checki "three blocks" 3 (Block_map.block_count bmap);
  match (Block_map.block bmap 0).Block_map.terminator with
  | Block_map.Call_to { callee = 2; retsite = 1 } -> ()
  | _ -> Alcotest.fail "call terminator wrong"

let test_block_map_every_pc_covered () =
  let p = Assembler.assemble_exn simple_loop_src in
  let bmap = Block_map.build p in
  for pc = 0 to Tpdbt_isa.Program.length p - 1 do
    match Block_map.block_containing bmap pc with
    | None -> Alcotest.failf "pc %d not covered" pc
    | Some id ->
        let b = Block_map.block bmap id in
        checkb "pc within block" true
          (pc >= b.Block_map.start_pc && pc <= b.Block_map.end_pc)
  done

let test_block_map_of_blocks () =
  let p = Assembler.assemble_exn simple_loop_src in
  let bmap = Block_map.build p in
  (* Round trip through the serialisable representation. *)
  (match
     Block_map.of_blocks ~entry_block:(Block_map.entry_block bmap)
       (Block_map.blocks bmap)
   with
  | Ok rebuilt ->
      checki "count" (Block_map.block_count bmap) (Block_map.block_count rebuilt);
      checkb "same successors" true
        (List.for_all
           (fun b ->
             Block_map.successors bmap b.Block_map.id
             = Block_map.successors rebuilt b.Block_map.id)
           (Block_map.blocks bmap))
  | Error msg -> Alcotest.fail msg);
  (* Error paths. *)
  let blk id start_pc end_pc =
    {
      Block_map.id;
      start_pc;
      end_pc;
      size = end_pc - start_pc + 1;
      terminator = Block_map.Stop;
    }
  in
  checkb "empty rejected" true
    (Result.is_error (Block_map.of_blocks ~entry_block:0 []));
  checkb "gap rejected" true
    (Result.is_error
       (Block_map.of_blocks ~entry_block:0 [ blk 0 0 1; blk 1 3 4 ]));
  checkb "bad ids rejected" true
    (Result.is_error
       (Block_map.of_blocks ~entry_block:0 [ blk 1 0 1 ]));
  checkb "bad entry rejected" true
    (Result.is_error (Block_map.of_blocks ~entry_block:5 [ blk 0 0 1 ]))

(* ------------------------------------------------------------------ *)
(* Region structure                                                     *)
(* ------------------------------------------------------------------ *)

let mk_region ?(kind = Region.Trace) ?(edges = []) ?(back_edges = []) slots =
  let n = Array.length slots in
  {
    Region.id = 0;
    kind;
    slots;
    edges;
    back_edges;
    frozen_use = Array.make n 100;
    frozen_taken = Array.make n 70;
  }

let test_region_accessors () =
  let region =
    mk_region [| 5; 6; 7 |]
      ~edges:
        [
          { Region.src = 0; dst = 1; role = Region.Taken };
          { Region.src = 1; dst = 2; role = Region.Always };
        ]
  in
  checki "entry" 5 (Region.entry_block region);
  checki "slots" 3 (Region.slot_count region);
  checki "tail" 2 (Region.tail_slot region);
  checkb "slots_of_block" true (Region.slots_of_block region 6 = [ 1 ]);
  checkb "validate" true (Result.is_ok (Region.validate region));
  match Region.frozen_branch_prob region 0 with
  | Some p -> Alcotest.check (Alcotest.float 1e-9) "frozen prob" 0.7 p
  | None -> Alcotest.fail "expected prob"

let test_region_validate_rejects () =
  let bad_edge =
    mk_region [| 1 |] ~edges:[ { Region.src = 0; dst = 5; role = Region.Always } ]
  in
  checkb "bad edge" true (Result.is_error (Region.validate bad_edge));
  let bad_kind =
    mk_region ~kind:Region.Loop [| 1 |]
  in
  checkb "loop without back edge" true (Result.is_error (Region.validate bad_kind));
  let unreachable =
    mk_region [| 1; 2 |]  (* no edge to slot 1 *)
  in
  checkb "unreachable slot" true (Result.is_error (Region.validate unreachable))

let test_region_duplicated_block () =
  let region =
    mk_region [| 5; 6; 5 |]
      ~edges:
        [
          { Region.src = 0; dst = 1; role = Region.Taken };
          { Region.src = 1; dst = 2; role = Region.Always };
        ]
  in
  checkb "two copies of block 5" true (Region.slots_of_block region 5 = [ 0; 2 ])

(* ------------------------------------------------------------------ *)
(* Region former                                                        *)
(* ------------------------------------------------------------------ *)

(* Hot loop followed by a cold exit: former should build a loop region. *)
let test_former_loop_region () =
  let p = Assembler.assemble_exn simple_loop_src in
  let bmap = Block_map.build p in
  let use = [| 1; 1000; 1 |] and taken = [| 0; 900; 0 |] in
  let config = { Region_former.default_config with threshold = 100 } in
  match
    Region_former.form config ~block_map:bmap ~use ~taken
      ~owner:(fun _ -> Region_former.Unowned)
      ~seeds:[ 1 ] ~first_id:7
  with
  | [ region ] ->
      checki "id assigned" 7 region.Region.id;
      checkb "loop kind" true (region.Region.kind = Region.Loop);
      checkb "single slot" true (region.Region.slots = [| 1 |]);
      checkb "back edge taken role" true
        (region.Region.back_edges
        = [ { Region.src = 0; dst = 0; role = Region.Taken } ]);
      checki "frozen use" 1000 region.Region.frozen_use.(0);
      checkb "valid" true (Result.is_ok (Region.validate region))
  | other -> Alcotest.failf "expected one region, got %d" (List.length other)

(* Straight hot chain: b0 -> b1 -> b2 via highly-taken branches. *)
let chain_src =
  {|
.entry a
a:
    movi r1, 1
    beq r1, r1, b     ; always taken
x:
    halt
b:
    movi r2, 2
    beq r2, r2, c
y:
    halt
c:
    out r2
    halt
|}

let test_former_trace () =
  let p = Assembler.assemble_exn chain_src in
  let bmap = Block_map.build p in
  let n = Block_map.block_count bmap in
  let use = Array.make n 500 and taken = Array.make n 500 in
  (* Block ids: a=0, x=1, b=2, y=3, c=4.  a and b always take. *)
  let config = { Region_former.default_config with threshold = 100 } in
  match
    Region_former.form config ~block_map:bmap ~use ~taken
      ~owner:(fun _ -> Region_former.Unowned)
      ~seeds:[ 0 ] ~first_id:0
  with
  | [ region ] ->
      checkb "trace kind" true (region.Region.kind = Region.Trace);
      checkb "chain slots" true (region.Region.slots = [| 0; 2; 4 |]);
      checkb "roles" true
        (region.Region.edges
        = [
            { Region.src = 0; dst = 1; role = Region.Taken };
            { Region.src = 1; dst = 2; role = Region.Taken };
          ]);
      checki "tail" 2 (Region.tail_slot region)
  | other -> Alcotest.failf "expected one region, got %d" (List.length other)

let test_former_stops_at_cold () =
  let p = Assembler.assemble_exn chain_src in
  let bmap = Block_map.build p in
  let n = Block_map.block_count bmap in
  let use = Array.make n 500 and taken = Array.make n 500 in
  use.(4) <- 10;
  (* c is cold *)
  let config = { Region_former.default_config with threshold = 100 } in
  match
    Region_former.form config ~block_map:bmap ~use ~taken
      ~owner:(fun _ -> Region_former.Unowned)
      ~seeds:[ 0 ] ~first_id:0
  with
  | [ region ] -> checkb "stops before cold" true (region.Region.slots = [| 0; 2 |])
  | other -> Alcotest.failf "expected one region, got %d" (List.length other)

let test_former_low_prob_stops () =
  let p = Assembler.assemble_exn chain_src in
  let bmap = Block_map.build p in
  let n = Block_map.block_count bmap in
  let use = Array.make n 500 in
  let taken = Array.make n 300 in
  (* 60% taken < 0.7: no extension, and the 40% fallthrough also < 0.7;
     diamonds need both arms hot and rejoining, which doesn't hold here. *)
  let config =
    { Region_former.default_config with threshold = 100; enable_diamonds = false }
  in
  match
    Region_former.form config ~block_map:bmap ~use ~taken
      ~owner:(fun _ -> Region_former.Unowned)
      ~seeds:[ 0 ] ~first_id:0
  with
  | [ region ] -> checkb "singleton" true (region.Region.slots = [| 0 |])
  | other -> Alcotest.failf "expected one region, got %d" (List.length other)

let test_former_duplication () =
  let p = Assembler.assemble_exn chain_src in
  let bmap = Block_map.build p in
  let n = Block_map.block_count bmap in
  let use = Array.make n 500 and taken = Array.make n 500 in
  let config = { Region_former.default_config with threshold = 100 } in
  (* Block 2 is already owned; with duplication on it is copied, with
     duplication off growth stops. *)
  let owner b = if b = 2 then Region_former.Owned else Region_former.Unowned in
  (match
     Region_former.form config ~block_map:bmap ~use ~taken ~owner ~seeds:[ 0 ]
       ~first_id:0
   with
  | [ region ] -> checkb "duplicated" true (region.Region.slots = [| 0; 2; 4 |])
  | other -> Alcotest.failf "dup: expected one region, got %d" (List.length other));
  let config = { config with enable_duplication = false } in
  match
    Region_former.form config ~block_map:bmap ~use ~taken ~owner ~seeds:[ 0 ]
      ~first_id:0
  with
  | [ region ] -> checkb "no duplication" true (region.Region.slots = [| 0 |])
  | other -> Alcotest.failf "nodup: expected one region, got %d" (List.length other)

let test_former_max_slots () =
  let p = Assembler.assemble_exn chain_src in
  let bmap = Block_map.build p in
  let n = Block_map.block_count bmap in
  let use = Array.make n 500 and taken = Array.make n 500 in
  let config = { Region_former.default_config with threshold = 100; max_slots = 2 } in
  match
    Region_former.form config ~block_map:bmap ~use ~taken
      ~owner:(fun _ -> Region_former.Unowned)
      ~seeds:[ 0 ] ~first_id:0
  with
  | [ region ] -> checki "capped" 2 (Region.slot_count region)
  | other -> Alcotest.failf "expected one region, got %d" (List.length other)

let call_src =
  {|
.entry main
main:
    movi r1, 1
    call fn
    out r1
    halt
fn:
    addi r1, r1, 1
    ret
|}

let test_former_across_calls () =
  let p = Assembler.assemble_exn call_src in
  let bmap = Block_map.build p in
  let n = Block_map.block_count bmap in
  let use = Array.make n 500 and taken = Array.make n 0 in
  let base = { Region_former.default_config with threshold = 100 } in
  (* Default: growth stops at the call. *)
  (match
     Region_former.form base ~block_map:bmap ~use ~taken
       ~owner:(fun _ -> Region_former.Unowned)
       ~seeds:[ 0 ] ~first_id:0
   with
  | [ region ] -> checki "stops at call" 1 (Region.slot_count region)
  | other -> Alcotest.failf "expected one region, got %d" (List.length other));
  (* With across_calls: the callee joins the region. *)
  let config = { base with Region_former.across_calls = true } in
  match
    Region_former.form config ~block_map:bmap ~use ~taken
      ~owner:(fun _ -> Region_former.Unowned)
      ~seeds:[ 0 ] ~first_id:0
  with
  | [ region ] ->
      checki "caller + callee" 2 (Region.slot_count region);
      checkb "call edge role" true
        (region.Region.edges
        = [ { Region.src = 0; dst = 1; role = Region.Always } ]);
      checkb "valid" true (Result.is_ok (Region.validate region))
  | other -> Alcotest.failf "expected one region, got %d" (List.length other)

let test_engine_across_calls_semantics () =
  let src =
    {|
.entry main
main:
    movi r1, 0
    movi r2, 20000
loop:
    call work
    addi r1, r1, 1
    blt r1, r2, loop
    out r5
    halt
work:
    rnd r3, 100
    movi r4, 80
    blt r3, r4, hot
    addi r5, r5, 1
hot:
    ret
|}
  in
  let p = Assembler.assemble_exn src in
  let run regions_across_calls =
    let config =
      { (Engine.config ~threshold:30 ()) with Engine.regions_across_calls }
    in
    Engine.run (Engine.create ~config ~seed:17L p)
  in
  let plain = run false and inlined = run true in
  checkb "same outputs" true (plain.Engine.outputs = inlined.Engine.outputs);
  checkb "same steps" true (plain.Engine.steps = inlined.Engine.steps);
  (* The inlined former must create at least one region spanning a call
     (caller block followed by the callee block). *)
  let bmap = Engine.block_map (Engine.create ~seed:17L p) in
  let spans_call region =
    List.exists
      (fun e ->
        match
          (Block_map.block bmap region.Region.slots.(e.Region.src))
            .Block_map.terminator
        with
        | Block_map.Call_to _ -> true
        | _ -> false)
      region.Region.edges
  in
  checkb "a region spans the call" true
    (List.exists spans_call inlined.Engine.snapshot.Snapshot.regions);
  checkb "no region spans without the flag" false
    (List.exists spans_call plain.Engine.snapshot.Snapshot.regions)

(* Balanced diamond that rejoins: expect a hammock region. *)
let diamond_src =
  {|
.entry a
a:
    rnd r1, 100
    movi r2, 50
    blt r1, r2, t
f:
    addi r3, r3, 1
    jmp j
t:
    addi r4, r4, 1
    jmp j
j:
    out r3
    halt
|}

let test_former_diamond () =
  let p = Assembler.assemble_exn diamond_src in
  let bmap = Block_map.build p in
  let n = Block_map.block_count bmap in
  (* ids: a=0, f=1, t=2, j=3 *)
  let use = Array.make n 1000 in
  let taken = [| 500; 1000; 1000; 0 |] in
  let config = { Region_former.default_config with threshold = 100 } in
  match
    Region_former.form config ~block_map:bmap ~use ~taken
      ~owner:(fun _ -> Region_former.Unowned)
      ~seeds:[ 0 ] ~first_id:0
  with
  | [ region ] ->
      checkb "diamond slots" true (region.Region.slots = [| 0; 2; 1; 3 |]);
      checki "four slots" 4 (Region.slot_count region);
      checki "tail is join" 3 (Region.tail_slot region);
      checkb "valid" true (Result.is_ok (Region.validate region))
  | other -> Alcotest.failf "expected one region, got %d" (List.length other)

let test_former_skips_swallowed_seed () =
  let p = Assembler.assemble_exn chain_src in
  let bmap = Block_map.build p in
  let n = Block_map.block_count bmap in
  let use = Array.make n 500 and taken = Array.make n 500 in
  let config = { Region_former.default_config with threshold = 100 } in
  let regions =
    Region_former.form config ~block_map:bmap ~use ~taken
      ~owner:(fun _ -> Region_former.Unowned)
      ~seeds:[ 0; 2; 4 ] ~first_id:0
  in
  checki "one region covers all seeds" 1 (List.length regions)

(* ------------------------------------------------------------------ *)
(* Optimizer                                                            *)
(* ------------------------------------------------------------------ *)

let test_lower_block () =
  let instrs =
    [| Instr.Movi (r 1, 5); Instr.Nop; Instr.Br (Instr.Eq, r 1, r 2, 0) |]
  in
  match Ir.lower_block instrs with
  | [ Ir.Move (1, Ir.Imm 5); Ir.Branch ] -> ()
  | other -> Alcotest.failf "unexpected lowering (%d ops)" (List.length other)

let test_const_fold () =
  let ops =
    [
      Ir.Move (1, Ir.Imm 6);
      Ir.Move (2, Ir.Imm 7);
      Ir.Arith (Instr.Mul, 3, Ir.Reg 1, Ir.Reg 2);
      Ir.Arith (Instr.Add, 4, Ir.Reg 3, Ir.Imm 1);
    ]
  in
  match Optimizer.const_fold ops with
  | [ _; _; Ir.Move (3, Ir.Imm 42); Ir.Move (4, Ir.Imm 43) ] -> ()
  | other ->
      Alcotest.failf "folding failed: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" Ir.pp_op) other))

let test_const_fold_div_zero_untouched () =
  let ops =
    [ Ir.Move (1, Ir.Imm 0); Ir.Arith (Instr.Div, 2, Ir.Imm 5, Ir.Reg 1) ]
  in
  match Optimizer.const_fold ops with
  | [ _; Ir.Arith (Instr.Div, 2, Ir.Imm 5, Ir.Imm 0) ] -> ()
  | _ -> Alcotest.fail "division by zero must not be folded away"

let test_const_fold_kill_on_load () =
  let ops =
    [
      Ir.Move (1, Ir.Imm 5);
      Ir.Load (1, Ir.Reg 0, 0);
      Ir.Arith (Instr.Add, 2, Ir.Reg 1, Ir.Imm 1);
    ]
  in
  match Optimizer.const_fold ops with
  | [ _; _; Ir.Arith (Instr.Add, 2, Ir.Reg 1, Ir.Imm 1) ] -> ()
  | _ -> Alcotest.fail "load must kill the constant"

let test_dead_def_elim () =
  let ops =
    [
      Ir.Move (1, Ir.Imm 5);      (* dead: overwritten below, no use *)
      Ir.Move (1, Ir.Imm 6);
      Ir.Arith (Instr.Add, 2, Ir.Reg 1, Ir.Imm 1);
    ]
  in
  checki "dead def removed" 2 (List.length (Optimizer.dead_def_elim ops));
  let with_use =
    [
      Ir.Move (1, Ir.Imm 5);
      Ir.Arith (Instr.Add, 2, Ir.Reg 1, Ir.Imm 1);  (* uses r1 *)
      Ir.Move (1, Ir.Imm 6);
    ]
  in
  checki "used def kept" 3 (List.length (Optimizer.dead_def_elim with_use));
  let side_effect = [ Ir.Rnd (1, 10); Ir.Move (1, Ir.Imm 0) ] in
  checki "side effects kept" 2 (List.length (Optimizer.dead_def_elim side_effect))

let test_schedule_parallelism () =
  (* Two independent adds can dual-issue: 1 cycle + latency. *)
  let independent =
    [
      Ir.Arith (Instr.Add, 1, Ir.Imm 1, Ir.Imm 2);
      Ir.Arith (Instr.Add, 2, Ir.Imm 3, Ir.Imm 4);
    ]
  in
  checki "dual issue" 1 (Optimizer.schedule_cycles independent);
  (* A dependent chain serialises. *)
  let chain =
    [
      Ir.Arith (Instr.Add, 1, Ir.Imm 1, Ir.Imm 2);
      Ir.Arith (Instr.Add, 2, Ir.Reg 1, Ir.Imm 1);
      Ir.Arith (Instr.Add, 3, Ir.Reg 2, Ir.Imm 1);
    ]
  in
  checki "chain length" 3 (Optimizer.schedule_cycles chain);
  checki "empty" 0 (Optimizer.schedule_cycles [])

let test_schedule_latency () =
  (* mul (latency 3) feeding an add: 3 + 1 cycles. *)
  let ops =
    [
      Ir.Arith (Instr.Mul, 1, Ir.Imm 3, Ir.Imm 4);
      Ir.Arith (Instr.Add, 2, Ir.Reg 1, Ir.Imm 1);
    ]
  in
  checki "mul latency respected" 4 (Optimizer.schedule_cycles ops)

let test_schedule_memory_order () =
  (* Store then load stay ordered even without register deps. *)
  let ops =
    [ Ir.Store (Ir.Imm 1, Ir.Imm 100, 0); Ir.Load (1, Ir.Imm 100, 0) ]
  in
  checkb "memory serialised" true (Optimizer.schedule_cycles ops >= 2)

let test_optimize_block_improves () =
  let instrs =
    [|
      Instr.Movi (r 1, 6);
      Instr.Movi (r 2, 7);
      Instr.Binop (Instr.Mul, r 3, r 1, r 2);
      Instr.Binopi (Instr.Add, r 4, r 3, 1);
      Instr.Br (Instr.Lt, r 4, r 5, 0);
    |]
  in
  let result = Optimizer.optimize_block instrs in
  checki "ops before" 5 result.Optimizer.ops_before;
  checkb "cycles below naive" true (result.Optimizer.cycles < 5);
  checkb "ops not increased" true
    (result.Optimizer.ops_after <= result.Optimizer.ops_before)

let test_pipelined_region_cycles () =
  (* Pipelined (trace) scheduling never costs more than per-block
     scheduling, and the tail slot costs the same. *)
  let p = Assembler.assemble_exn chain_src in
  let bmap = Block_map.build p in
  let region =
    {
      Region.id = 0;
      kind = Region.Trace;
      slots = [| 0; 2; 4 |];
      edges =
        [
          { Region.src = 0; dst = 1; role = Region.Taken };
          { Region.src = 1; dst = 2; role = Region.Taken };
        ];
      back_edges = [];
      frozen_use = [| 10; 10; 10 |];
      frozen_taken = [| 10; 10; 10 |];
    }
  in
  let code = p.Tpdbt_isa.Program.code in
  let per_block = Optimizer.region_slot_cycles bmap ~code region in
  let pipelined = Optimizer.region_slot_cycles_pipelined bmap ~code region in
  Array.iteri
    (fun slot c ->
      checkb
        (Printf.sprintf "slot %d pipelined <= per-block" slot)
        true
        (pipelined.(slot) <= c))
    per_block;
  checkb "tail slot pays full schedule" true
    (pipelined.(2) = per_block.(2))

(* Property tests over random IR blocks. *)
let ir_ops_gen =
  let open QCheck.Gen in
  let operand = oneof [ map (fun r -> Ir.Reg r) (int_bound 7); map (fun v -> Ir.Imm v) (int_range (-100) 100) ] in
  let binop =
    oneofl
      [ Instr.Add; Instr.Sub; Instr.Mul; Instr.And; Instr.Or; Instr.Xor ]
  in
  let op =
    frequency
      [
        ( 4,
          let* bop = binop in
          let* dst = int_bound 7 in
          let* a = operand in
          let* b = operand in
          return (Ir.Arith (bop, dst, a, b)) );
        ( 2,
          let* dst = int_bound 7 in
          let* src = operand in
          return (Ir.Move (dst, src)) );
        ( 1,
          let* dst = int_bound 7 in
          let* base = operand in
          return (Ir.Load (dst, base, 0)) );
        ( 1,
          let* src = operand in
          let* base = operand in
          return (Ir.Store (src, base, 0)) );
      ]
  in
  list_size (int_range 1 20) op

let ir_arbitrary =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; " (List.map (Format.asprintf "%a" Ir.pp_op) ops))
    ir_ops_gen

let prop_const_fold_idempotent =
  QCheck.Test.make ~name:"const_fold is idempotent" ~count:300 ir_arbitrary
    (fun ops ->
      let once = Optimizer.const_fold ops in
      Optimizer.const_fold once = once)

let prop_dce_idempotent =
  QCheck.Test.make ~name:"dead_def_elim is idempotent" ~count:300 ir_arbitrary
    (fun ops ->
      let once = Optimizer.dead_def_elim ops in
      Optimizer.dead_def_elim once = once)

let prop_passes_never_grow =
  QCheck.Test.make ~name:"passes never add ops" ~count:300 ir_arbitrary
    (fun ops ->
      let n = List.length ops in
      List.length (Optimizer.const_fold ops) = n
      && List.length (Optimizer.dead_def_elim ops) <= n)

let prop_schedule_bounds =
  QCheck.Test.make ~name:"schedule within issue/latency bounds" ~count:300
    ir_arbitrary (fun ops ->
      let cycles = Optimizer.schedule_cycles ops in
      let n = List.length ops in
      let latency_sum =
        List.fold_left (fun acc op -> acc + Ir.latency op) 0 ops
      in
      (* Lower bound: issue width 2.  Upper bound: fully serial. *)
      cycles >= (n + 1) / 2 && cycles <= latency_sum)

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

let run_engine ?(threshold = 50) ?(seed = 42L) src =
  let p = Assembler.assemble_exn src in
  let engine =
    Engine.create ~config:(Engine.config ~threshold ()) ~seed p
  in
  Engine.run engine

let hot_loop_src =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 20000
loop:
    rnd r3, 100
    movi r4, 70
    blt r3, r4, hot
    addi r5, r5, 1
    jmp join
hot:
    addi r6, r6, 1
join:
    addi r1, r1, 1
    blt r1, r2, loop
    out r6
    halt
|}

let test_trace_scheduling_speeds_up () =
  (* With trace scheduling on, the same run costs no more cycles. *)
  let p = Assembler.assemble_exn hot_loop_src in
  let run trace_scheduling =
    let config =
      { (Engine.config ~threshold:50 ()) with Engine.trace_scheduling }
    in
    Engine.run (Engine.create ~config ~seed:42L p)
  in
  let base = run false and pipelined = run true in
  checkb "same outputs" true (base.Engine.outputs = pipelined.Engine.outputs);
  checkb "pipelined not slower" true
    (pipelined.Engine.counters.Perf_model.cycles
    <= base.Engine.counters.Perf_model.cycles)

let test_engine_preserves_semantics () =
  (* The DBT must not change program results: outputs match a plain
     interpreter run with the same seed. *)
  let p = Assembler.assemble_exn hot_loop_src in
  let m = Machine.create ~seed:42L p in
  (match Machine.run m with Ok () -> () | Error _ -> Alcotest.fail "trap");
  let result = run_engine ~threshold:50 ~seed:42L hot_loop_src in
  checkb "same outputs" true (Machine.outputs m = result.Engine.outputs);
  checki "same steps" (Machine.steps m) result.Engine.steps;
  checkb "no error" true (result.Engine.error = None)

let test_engine_semantics_across_thresholds () =
  let reference = run_engine ~threshold:0 hot_loop_src in
  List.iter
    (fun threshold ->
      let result = run_engine ~threshold hot_loop_src in
      checkb
        (Printf.sprintf "outputs at T=%d" threshold)
        true
        (result.Engine.outputs = reference.Engine.outputs))
    [ 1; 7; 100; 1000 ]

let test_engine_profiling_only () =
  let result = run_engine ~threshold:0 hot_loop_src in
  checkb "no regions" true (result.Engine.snapshot.Snapshot.regions = []);
  checki "no optimisation rounds" 0
    result.Engine.counters.Perf_model.optimization_rounds;
  (* AVEP counters: the loop branch executed 20000 times. *)
  let snap = result.Engine.snapshot in
  let bmap = snap.Snapshot.block_map in
  let join_block =
    (* the block ending with `blt r1, r2, loop` *)
    List.find
      (fun b ->
        match b.Block_map.terminator with
        | Block_map.Cond { taken; _ } -> taken = 1
        | _ -> false)
      (List.filter
         (fun b -> b.Block_map.id > 0)
         (Block_map.blocks bmap))
  in
  checki "join use" 20000 snap.Snapshot.use.(join_block.Block_map.id)

let test_engine_forms_regions () =
  let result = run_engine ~threshold:50 hot_loop_src in
  checkb "regions formed" true (result.Engine.snapshot.Snapshot.regions <> []);
  checkb "region entries happened" true
    (result.Engine.counters.Perf_model.region_entries > 0);
  List.iter
    (fun region ->
      checkb "region valid" true (Result.is_ok (Region.validate region)))
    result.Engine.snapshot.Snapshot.regions

let test_engine_freezes_counters () =
  (* Frozen use counts of region members must be near the threshold, far
     below the 20000 executions of the run. *)
  let threshold = 50 in
  let result = run_engine ~threshold hot_loop_src in
  List.iter
    (fun region ->
      Array.iteri
        (fun slot _block ->
          let frozen = region.Region.frozen_use.(slot) in
          checkb
            (Printf.sprintf "frozen use %d plausible" frozen)
            true
            (frozen <= 4 * threshold))
        region.Region.slots)
    result.Engine.snapshot.Snapshot.regions

let test_engine_profiling_ops_scale () =
  let small = run_engine ~threshold:10 hot_loop_src in
  let large = run_engine ~threshold:1000 hot_loop_src in
  let avep = run_engine ~threshold:0 hot_loop_src in
  checkb "ops grow with threshold" true
    (small.Engine.profiling_ops < large.Engine.profiling_ops);
  checkb "optimised run cheaper than profile-only" true
    (large.Engine.profiling_ops < avep.Engine.profiling_ops)

let test_engine_deterministic () =
  let a = run_engine ~threshold:50 hot_loop_src in
  let b = run_engine ~threshold:50 hot_loop_src in
  checkb "same cycles" true
    (a.Engine.counters.Perf_model.cycles = b.Engine.counters.Perf_model.cycles);
  checkb "same ops" true (a.Engine.profiling_ops = b.Engine.profiling_ops);
  checkb "same region count" true
    (List.length a.Engine.snapshot.Snapshot.regions
    = List.length b.Engine.snapshot.Snapshot.regions)

let test_engine_trap_reported () =
  let result =
    run_engine ~threshold:0 "movi r1, 1\nmovi r2, 0\ndiv r3, r1, r2\nhalt"
  in
  match Engine.trap result with
  | Some (Machine.Division_by_zero _) -> ()
  | Some other -> Alcotest.failf "wrong trap: %a" Machine.pp_trap other
  | None -> Alcotest.fail "expected trap"

let test_engine_max_steps () =
  let p = Assembler.assemble_exn "loop:\njmp loop" in
  let config = { (Engine.config ~threshold:0 ()) with max_steps = 1000 } in
  let engine = Engine.create ~config ~seed:1L p in
  let result = Engine.run engine in
  checkb "stopped at budget" true (result.Engine.steps <= 1001);
  match result.Engine.error with
  | Some (Error.Limit_exceeded { max_steps; _ } as e) ->
      checki "budget reported" 1000 max_steps;
      (* Budget exhaustion must stay non-fatal: the sweep harness keeps
         budget-limited partial runs (mcf outlives the default budget). *)
      checkb "limit is non-fatal" false (Error.fatal e)
  | Some other -> Alcotest.failf "wrong error: %s" (Error.to_string other)
  | None -> Alcotest.fail "expected Limit_exceeded"

let simple_loop_10k =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 10000
loop:
    addi r1, r1, 1
    blt r1, r2, loop
    out r1
    halt
|}

let test_engine_loop_backs_counted () =
  let result = run_engine ~threshold:20 simple_loop_10k in
  checkb "loop backs observed" true
    (result.Engine.counters.Perf_model.loop_backs > 1000)

let test_engine_side_exits_on_phase_change () =
  (* A branch that flips direction mid-run: regions formed early must
     take side exits after the flip. *)
  let src =
    {|
.entry main
main:
    movi r1, 0
    movi r2, 20000
    movi r7, 10000
loop:
    blt r1, r7, early
    addi r5, r5, 1
    jmp join
early:
    addi r6, r6, 1
join:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
|}
  in
  let result = run_engine ~threshold:20 src in
  checkb "side exits after phase flip" true
    (result.Engine.counters.Perf_model.side_exits > 1000)

(* -- Adaptive mode (paper §5 extension) ------------------------------ *)

(* A branch that flips direction at iteration 10000 of 40000: a fixed
   translator keeps side-exiting; the adaptive one dissolves and
   re-optimises. *)
let adaptive_src =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 40000
    movi r7, 10000
loop:
    blt r1, r7, early
    addi r5, r5, 1
    jmp join
early:
    addi r6, r6, 1
join:
    addi r1, r1, 1
    blt r1, r2, loop
    out r5
    halt
|}

let run_adaptive ~adaptive src =
  let p = Assembler.assemble_exn src in
  let config = Engine.config ~adaptive ~threshold:20 () in
  Engine.run (Engine.create ~config ~seed:3L p)

let test_adaptive_dissolves () =
  let fixed = run_adaptive ~adaptive:false adaptive_src in
  let adaptive = run_adaptive ~adaptive:true adaptive_src in
  checki "fixed never dissolves" 0
    fixed.Engine.counters.Perf_model.regions_dissolved;
  checkb "adaptive dissolves" true
    (adaptive.Engine.counters.Perf_model.regions_dissolved > 0);
  checkb "adaptive reduces side exits" true
    (adaptive.Engine.counters.Perf_model.side_exits
    < fixed.Engine.counters.Perf_model.side_exits)

let test_adaptive_preserves_semantics () =
  let fixed = run_adaptive ~adaptive:false adaptive_src in
  let adaptive = run_adaptive ~adaptive:true adaptive_src in
  checkb "same outputs" true (fixed.Engine.outputs = adaptive.Engine.outputs);
  checki "same steps" fixed.Engine.steps adaptive.Engine.steps

let test_adaptive_reopt_limit () =
  (* A 75%-taken branch grows a trace whose inherent side-exit rate
     (0.25) exceeds an aggressive dissolve threshold (0.2): every
     re-formed region looks the same, so without the re-opt limit the
     translator would thrash forever.  Dissolutions must stop at the
     limit. *)
  let src =
    {|
.entry main
main:
    movi r1, 0
    movi r2, 40000
loop:
    rnd r3, 4
    movi r4, 3
    blt r3, r4, a
    addi r5, r5, 1
    jmp join
a:
    addi r6, r6, 1
join:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
|}
  in
  let p = Assembler.assemble_exn src in
  let config =
    {
      (Engine.config ~adaptive:true ~threshold:20 ()) with
      Engine.reopt_side_exit_rate = 0.2;
      enable_diamonds = false;
    }
  in
  let result = Engine.run (Engine.create ~config ~seed:3L p) in
  let dissolved = result.Engine.counters.Perf_model.regions_dissolved in
  checkb
    (Printf.sprintf "dissolutions bounded (%d)" dissolved)
    true
    (dissolved > 0 && dissolved <= 60)

let test_adaptive_snapshot_has_fresh_regions () =
  let adaptive = run_adaptive ~adaptive:true adaptive_src in
  (* Surviving regions validate and have monitors reported. *)
  List.iter
    (fun region ->
      checkb "surviving region valid" true
        (Result.is_ok (Region.validate region)))
    adaptive.Engine.snapshot.Snapshot.regions;
  List.iter
    (fun region ->
      checkb "stats exist for surviving regions" true
        (List.mem_assoc region.Region.id adaptive.Engine.region_stats))
    adaptive.Engine.snapshot.Snapshot.regions

let test_continuous_loop_profiling () =
  (* A stable loop: the live loop-back ratio must match the loop's trip
     count even though counters are frozen. *)
  let result = run_adaptive ~adaptive:false simple_loop_10k in
  let live_lps =
    List.filter_map
      (fun (id, stats) ->
        match Snapshot.find_region result.Engine.snapshot id with
        | Some region
          when region.Region.kind = Region.Loop
               && stats.Engine.loop_back_seen > 1000 ->
            Some
              (float_of_int stats.Engine.loop_back_taken
              /. float_of_int stats.Engine.loop_back_seen)
        | Some _ | None -> None)
      result.Engine.region_stats
  in
  checkb "found a live loop" true (live_lps <> []);
  List.iter
    (fun lp ->
      checkb
        (Printf.sprintf "live LP ~ (10000-1)/10000 (got %.4f)" lp)
        true
        (abs_float (lp -. 0.9999) < 0.001))
    live_lps

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_dot_export () =
  let result = run_engine ~threshold:50 hot_loop_src in
  let snap = result.Engine.snapshot in
  let cfg_dot =
    Tpdbt_dbt.Dot.block_map ~use:snap.Snapshot.use ~taken:snap.Snapshot.taken
      snap.Snapshot.block_map
  in
  checkb "digraph header" true (contains cfg_dot "digraph cfg");
  checkb "has nodes" true (contains cfg_dot "b0 [label=");
  checkb "has probability labels" true (contains cfg_dot "T 0.");
  match snap.Snapshot.regions with
  | region :: _ ->
      let region_dot = Tpdbt_dbt.Dot.region region in
      checkb "region digraph" true (contains region_dot "digraph region");
      checkb "entry bold" true (contains region_dot "style=bold")
  | [] -> Alcotest.fail "expected regions"

let test_snapshot_api () =
  let result = run_engine ~threshold:0 hot_loop_src in
  let snap = result.Engine.snapshot in
  checkb "executed blocks nonempty" true (Snapshot.executed_blocks snap <> []);
  checki "profiling ops consistent" result.Engine.profiling_ops
    (Snapshot.profiling_ops snap);
  checkb "freq of bad id" true (Snapshot.block_freq snap (-1) = 0.0);
  checkb "region lookup absent" true (Snapshot.find_region snap 0 = None)

let suite =
  [
    ("block map simple loop", `Quick, test_block_map_simple_loop);
    ("block map lookup", `Quick, test_block_map_lookup);
    ("block map successors", `Quick, test_block_map_successors);
    ("block map call", `Quick, test_block_map_call);
    ("block map covers pcs", `Quick, test_block_map_every_pc_covered);
    ("block map of_blocks", `Quick, test_block_map_of_blocks);
    ("region accessors", `Quick, test_region_accessors);
    ("region validate rejects", `Quick, test_region_validate_rejects);
    ("region duplicated block", `Quick, test_region_duplicated_block);
    ("former loop region", `Quick, test_former_loop_region);
    ("former trace", `Quick, test_former_trace);
    ("former stops at cold", `Quick, test_former_stops_at_cold);
    ("former low prob stops", `Quick, test_former_low_prob_stops);
    ("former duplication", `Quick, test_former_duplication);
    ("former max slots", `Quick, test_former_max_slots);
    ("former across calls", `Quick, test_former_across_calls);
    ("engine across calls semantics", `Quick, test_engine_across_calls_semantics);
    ("former diamond", `Quick, test_former_diamond);
    ("former skips swallowed seed", `Quick, test_former_skips_swallowed_seed);
    ("lower block", `Quick, test_lower_block);
    ("const fold", `Quick, test_const_fold);
    ("const fold div zero", `Quick, test_const_fold_div_zero_untouched);
    ("const fold kill on load", `Quick, test_const_fold_kill_on_load);
    ("dead def elim", `Quick, test_dead_def_elim);
    ("schedule parallelism", `Quick, test_schedule_parallelism);
    ("schedule latency", `Quick, test_schedule_latency);
    ("schedule memory order", `Quick, test_schedule_memory_order);
    ("optimize block improves", `Quick, test_optimize_block_improves);
    QCheck_alcotest.to_alcotest prop_const_fold_idempotent;
    QCheck_alcotest.to_alcotest prop_dce_idempotent;
    QCheck_alcotest.to_alcotest prop_passes_never_grow;
    QCheck_alcotest.to_alcotest prop_schedule_bounds;
    ("pipelined region cycles", `Quick, test_pipelined_region_cycles);
    ("trace scheduling speeds up", `Quick, test_trace_scheduling_speeds_up);
    ("engine preserves semantics", `Quick, test_engine_preserves_semantics);
    ("engine semantics across thresholds", `Quick,
     test_engine_semantics_across_thresholds);
    ("engine profiling only", `Quick, test_engine_profiling_only);
    ("engine forms regions", `Quick, test_engine_forms_regions);
    ("engine freezes counters", `Quick, test_engine_freezes_counters);
    ("engine profiling ops scale", `Quick, test_engine_profiling_ops_scale);
    ("engine deterministic", `Quick, test_engine_deterministic);
    ("engine trap reported", `Quick, test_engine_trap_reported);
    ("engine max steps", `Quick, test_engine_max_steps);
    ("engine loop backs", `Quick, test_engine_loop_backs_counted);
    ("engine side exits on phase change", `Quick,
     test_engine_side_exits_on_phase_change);
    ("adaptive dissolves", `Quick, test_adaptive_dissolves);
    ("adaptive preserves semantics", `Quick, test_adaptive_preserves_semantics);
    ("adaptive reopt limit", `Quick, test_adaptive_reopt_limit);
    ("adaptive snapshot regions", `Quick,
     test_adaptive_snapshot_has_fresh_regions);
    ("continuous loop profiling", `Quick, test_continuous_loop_profiling);
    ("dot export", `Quick, test_dot_export);
    ("snapshot api", `Quick, test_snapshot_api);
  ]
