(* Tests for the experiment harness: tables, the sweep runner, figure
   generators (on a miniature benchmark so the suite stays fast). *)

module Table = Tpdbt_experiments.Table
module Runner = Tpdbt_experiments.Runner
module Figures = Tpdbt_experiments.Figures
module Spec = Tpdbt_workloads.Spec
module Metrics = Tpdbt_profiles.Metrics
module Engine = Tpdbt_dbt.Engine

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------------ *)
(* Table                                                                *)
(* ------------------------------------------------------------------ *)

let sample_table () =
  Table.make ~title:"T" ~columns:[ "a"; "b" ]
  |> fun t ->
  Table.add_row t "row1" [ Some 1.0; Some 2.5 ] |> fun t ->
  Table.add_row t "row2" [ None; Some 0.125 ]

let test_table_render () =
  let text = Table.render ~precision:3 (sample_table ()) in
  checkb "title" true (String.length text > 0);
  checkb "has row1" true
    (String.split_on_char '\n' text |> List.exists (fun l ->
         String.length l >= 4 && String.sub (String.trim l) 0 4 = "row1"));
  checkb "value formatted" true
    (String.split_on_char '\n' text
    |> List.exists (fun l ->
           List.exists (fun w -> w = "2.500") (String.split_on_char ' ' l)))

let test_table_padding () =
  let t = Table.make ~title:"t" ~columns:[ "a"; "b"; "c" ] in
  let t = Table.add_row t "short" [ Some 1.0 ] in
  let t = Table.add_row t "long" [ Some 1.0; Some 2.0; Some 3.0; Some 4.0 ] in
  List.iter
    (fun (_, values) -> checki "3 cells" 3 (List.length values))
    (let { Table.rows; _ } = t in
     rows)

let test_table_csv () =
  let csv = Table.to_csv (sample_table ()) in
  let lines = String.split_on_char '\n' csv in
  checkb "header" true (List.nth lines 1 = ",a,b");
  checkb "row1" true (List.nth lines 2 = "row1,1.000000,2.500000");
  checkb "empty cell" true (List.nth lines 3 = "row2,,0.125000")

let test_table_csv_escaping () =
  let t = Table.make ~title:"a,b \"q\"" ~columns:[ "x" ] in
  let csv = Table.to_csv t in
  checkb "escaped" true
    (String.length csv > 0 && String.get csv 0 = '"')

(* ------------------------------------------------------------------ *)
(* Runner + Figures on a miniature benchmark                            *)
(* ------------------------------------------------------------------ *)

let mini name suite =
  {
    Spec.name;
    suite;
    units =
      [
        Spec.Branch
          { prob = Spec.prob 0.85 ~train:0.6; straight = 2; copies = 2 };
        Spec.Branch
          { prob = Spec.prob 0.2 ~phases:[ (0.2, 0.7) ]; straight = 2; copies = 1 };
        Spec.Loop { trip = Spec.trip 8; jitter = 1; body = 2; copies = 1 };
      ];
    ref_iters = 4000;
    train_iters = 1000;
    ref_seed = 3L;
    train_seed = 4L;
  }

let mini_thresholds = [ ("100", 1); ("1k", 10); ("10k", 100) ]

let mini_sweep =
  lazy
    (Runner.run_many ~thresholds:mini_thresholds
       [ mini "mini-int" `Int; mini "mini-fp" `Fp ])

let mini_data = lazy ((Lazy.force mini_sweep).Runner.data)

let test_runner_structure () =
  let data = Lazy.force mini_data in
  checki "two benchmarks" 2 (List.length data);
  List.iter
    (fun d ->
      checki "three runs" 3 (List.length d.Runner.runs);
      checkb "labels" true
        (List.map (fun r -> r.Runner.label) d.Runner.runs = [ "100"; "1k"; "10k" ]);
      checkb "avep has no regions" true
        (d.Runner.avep.Engine.snapshot.Tpdbt_dbt.Snapshot.regions = []);
      checkb "train flat computed" true (d.Runner.train_flat.Metrics.bp_samples > 0);
      List.iter
        (fun run ->
          checkb "comparison has samples" true
            (run.Runner.comparison.Metrics.bp_samples > 0))
        d.Runner.runs)
    data

let test_runner_accuracy_improves () =
  let data = Lazy.force mini_data in
  List.iter
    (fun d ->
      let sd_of i = (List.nth d.Runner.runs i).Runner.comparison.Metrics.sd_bp in
      checkb
        (Printf.sprintf "%s: sd at 10k <= sd at 100 (%.3f vs %.3f)"
           d.Runner.bench.Spec.name (sd_of 2) (sd_of 0))
        true
        (sd_of 2 <= sd_of 0 +. 1e-9))
    data

let test_figures_structure () =
  let data = Lazy.force mini_data in
  let tables = Figures.all data in
  checki "11 figures" 11 (List.length tables);
  List.iter
    (fun (id, table) ->
      checkb (id ^ " renders") true (String.length (Table.render table) > 0))
    tables;
  let fig8 = List.assoc "fig8" tables in
  checki "fig8 rows: int and fp" 2 (List.length fig8.Table.rows);
  checki "fig8 cols: train + thresholds" 4 (List.length fig8.Table.columns);
  let fig9 = List.assoc "fig9" tables in
  checkb "fig9 rows are INT benchmarks" true
    (List.map fst fig9.Table.rows = [ "mini-int" ]);
  (* Figures 13/14 carry the offline-train extension column. *)
  let fig13 = List.assoc "fig13" tables in
  checkb "fig13 train* column" true (List.hd fig13.Table.columns = "train*");
  let fig14 = List.assoc "fig14" tables in
  checkb "fig14 train* column" true (List.hd fig14.Table.columns = "train*")

let test_train_regions_computed () =
  let data = Lazy.force mini_data in
  List.iter
    (fun d ->
      let c = d.Runner.train_regions in
      checkb "offline train comparison has samples" true
        (c.Metrics.bp_samples > 0))
    data

let test_fig17_base_normalised () =
  let data = Lazy.force mini_data in
  let fig17 = Figures.fig17 data in
  List.iter
    (fun (label, values) ->
      match values with
      | Some base :: _ ->
          Alcotest.check (Alcotest.float 1e-9) (label ^ " base = 1") 1.0 base
      | _ -> Alcotest.fail "missing base column")
    fig17.Table.rows

let test_fig18_train_is_one () =
  let data = Lazy.force mini_data in
  let fig18 = Figures.fig18 data in
  List.iter
    (fun (label, values) ->
      match values with
      | Some train :: rest ->
          Alcotest.check (Alcotest.float 1e-9) (label ^ " train = 1") 1.0 train;
          (* Small thresholds use far fewer profiling ops than training. *)
          (match rest with
          | Some t100 :: _ -> checkb "T=100 below train" true (t100 < 1.0)
          | _ -> Alcotest.fail "missing threshold column")
      | _ -> Alcotest.fail "missing train column")
    fig18.Table.rows

let test_fig18_monotone () =
  (* Profiling operations grow with the threshold. *)
  let data = Lazy.force mini_data in
  let fig18 = Figures.fig18 data in
  List.iter
    (fun (_, values) ->
      let vals = List.filter_map Fun.id values in
      match vals with
      | _train :: rest ->
          let rec ascending = function
            | a :: b :: tl -> a <= b +. 1e-9 && ascending (b :: tl)
            | [ _ ] | [] -> true
          in
          checkb "ops ascending in T" true (ascending rest)
      | [] -> Alcotest.fail "no values")
    fig18.Table.rows

let suite =
  [
    ("table render", `Quick, test_table_render);
    ("table padding", `Quick, test_table_padding);
    ("table csv", `Quick, test_table_csv);
    ("table csv escaping", `Quick, test_table_csv_escaping);
    ("runner structure", `Quick, test_runner_structure);
    ("runner accuracy improves", `Quick, test_runner_accuracy_improves);
    ("figures structure", `Quick, test_figures_structure);
    ("train regions computed", `Quick, test_train_regions_computed);
    ("fig17 base normalised", `Quick, test_fig17_base_normalised);
    ("fig18 train is one", `Quick, test_fig18_train_is_one);
    ("fig18 monotone", `Quick, test_fig18_monotone);
  ]
