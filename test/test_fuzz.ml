(* Differential fuzzing subsystem: generator guarantees, fingerprints,
   the cross-config oracle against the real engine, bug injection +
   shrinking, campaign determinism, corpus persistence, the typed
   rnd-bound trap, program vetting, the JSON round-trip properties
   driven by the fuzz PRNG, and the fuzz CLI. *)

module Prng = Tpdbt_vm.Prng
module Machine = Tpdbt_vm.Machine
module Instr = Tpdbt_isa.Instr
module Reg = Tpdbt_isa.Reg
module Program = Tpdbt_isa.Program
module Encode = Tpdbt_isa.Encode
module Block_map = Tpdbt_dbt.Block_map
module Error = Tpdbt_dbt.Error
module Engine = Tpdbt_dbt.Engine
module Json = Tpdbt_telemetry.Json
module Gen = Tpdbt_fuzz.Gen
module Fingerprint = Tpdbt_fuzz.Fingerprint
module Oracle = Tpdbt_fuzz.Oracle
module Shrink = Tpdbt_fuzz.Shrink
module Driver = Tpdbt_fuzz.Driver

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let r0 = Reg.of_int 0

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec at i = i + n <= m && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_dir f =
  let dir = Filename.temp_file "tpdbt-fuzz" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Generator                                                            *)
(* ------------------------------------------------------------------ *)

let test_generator_deterministic_and_well_formed () =
  for seed = 1 to 30 do
    let gen () =
      Gen.program (Prng.create ~seed:(Int64.of_int seed)) Gen.default
    in
    let p = gen () in
    checkb "same prng state, same program" true (p = gen ());
    (match Block_map.build_result p with
    | Ok _ -> ()
    | Error e ->
        Alcotest.failf "seed %d: generated program rejected: %s" seed
          (Error.to_string e));
    (match p.Program.code.(Array.length p.Program.code - 1) with
    | Instr.Halt | Instr.Ret -> ()
    | _ -> Alcotest.failf "seed %d: last instruction not halt/ret" seed);
    (* Termination by construction: nothing close to the oracle budget. *)
    let m = Machine.create ~mem_words:Oracle.mem_words p in
    (match Machine.run ~max_steps:Oracle.max_steps m with
    | Error _trap -> () (* wild instructions may trap; that is in scope *)
    | Ok () ->
        checkb
          (Printf.sprintf "seed %d halts within budget" seed)
          true (Machine.halted m))
  done

let test_adversarial_string_deterministic () =
  let draw () =
    let prng = Prng.create ~seed:99L in
    List.init 20 (fun _ -> Gen.adversarial_string prng ~max_len:32)
  in
  checkb "same seed, same strings" true (draw () = draw ())

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                         *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_equal_and_diff () =
  let p = Gen.program (Prng.create ~seed:5L) Gen.default in
  let fp () =
    let m = Machine.create ~mem_words:Oracle.mem_words ~seed:3L p in
    let result = Machine.run ~max_steps:Oracle.max_steps m in
    let status = Fingerprint.status_of_run result ~halted:(Machine.halted m) in
    (Fingerprint.of_machine ~status ~mem_words:Oracle.mem_words m, m)
  in
  let a, _ = fp () in
  let b, m = fp () in
  checkb "identical runs fingerprint equal" true (Fingerprint.equal a b);
  checki "no differences" 0 (List.length (Fingerprint.diff a b));
  Machine.set_reg m r0 (Machine.reg m r0 + 1);
  let c =
    Fingerprint.of_machine ~status:a.Fingerprint.status
      ~mem_words:Oracle.mem_words m
  in
  checkb "register change detected" true (not (Fingerprint.equal a c));
  checkb "diff names the register" true
    (List.exists (fun d -> contains d "r0") (Fingerprint.diff a c));
  (match Json.validate (Fingerprint.to_json a) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("fingerprint json: " ^ msg))

(* ------------------------------------------------------------------ *)
(* Oracle on the real engine                                            *)
(* ------------------------------------------------------------------ *)

let test_oracle_clean_on_current_engine () =
  for case = 0 to 39 do
    let prng = Prng.create ~seed:(Int64.of_int (1000 + case)) in
    let guest_seed = Prng.next_int64 prng in
    let p = Gen.program prng Gen.default in
    let v = Oracle.check ~seed:guest_seed p in
    (match v.Oracle.skipped with
    | Some why -> Alcotest.failf "case %d skipped: %s" case why
    | None -> ());
    (match v.Oracle.divergences with
    | [] -> ()
    | d :: _ ->
        Alcotest.failf "case %d diverged: [%s] %s: %s" case d.Oracle.arm
          d.Oracle.kind d.Oracle.detail);
    checkb "checks were performed" true (v.Oracle.checks > 0)
  done

let has_xor p =
  Array.exists
    (function Instr.Binop (Instr.Xor, _, _, _) -> true | _ -> false)
    p.Program.code

(* The acceptance-bar harness: inject a translator bug — "the engine
   mis-executes any program containing xor" — via the oracle's perturb
   hook, and demand that the campaign machinery detects it and shrinks
   the reproducer to a handful of instructions. *)
let test_injected_bug_detected_and_shrunk () =
  let guest_seed = 11L in
  let still_fails p =
    let bug ~arm:_ fp =
      if has_xor p then
        { fp with Fingerprint.steps = fp.Fingerprint.steps + 1 }
      else fp
    in
    let v = Oracle.check ~perturb:bug ~seed:guest_seed p in
    v.Oracle.skipped = None && v.Oracle.divergences <> []
  in
  (* Find a generated program that contains the "buggy" opcode. *)
  let rec find seed =
    if seed > 200 then Alcotest.fail "no xor-bearing program in 200 seeds"
    else
      let p = Gen.program (Prng.create ~seed:(Int64.of_int seed)) Gen.default in
      if has_xor p && still_fails p then p else find (seed + 1)
  in
  let p = find 1 in
  let clean = Oracle.check ~seed:guest_seed p in
  checkb "without the bug the case is clean" true
    (clean.Oracle.divergences = []);
  let shrunk = Shrink.minimize ~still_fails p in
  checkb "shrunk program still fails" true (still_fails shrunk);
  checkb "shrunk program keeps the buggy opcode" true (has_xor shrunk);
  let active = Shrink.active shrunk in
  if active > 10 then
    Alcotest.failf "reproducer not minimal: %d active instructions" active;
  checkb "shrinking reduced the program" true (active < Shrink.active p)

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                      *)
(* ------------------------------------------------------------------ *)

let test_campaign_deterministic_across_jobs () =
  let cfg jobs =
    {
      Driver.budget = 12;
      size = 32;
      seed = 5L;
      jobs = Some jobs;
      corpus_dir = None;
    }
  in
  let s1 = Driver.summary_json (Driver.run (cfg 1)) in
  let s3 = Driver.summary_json (Driver.run (cfg 3)) in
  let s3' = Driver.summary_json (Driver.run (cfg 3)) in
  checks "jobs 1 vs 3" s1 s3;
  checks "repeat run" s3 s3';
  (match Json.validate s1 with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("summary json: " ^ msg));
  checkb "clean engine, clean campaign" true (contains s1 "\"divergent_cases\":0")

let test_campaign_persists_reproducers () =
  with_temp_dir (fun dir ->
      (* Unconditional bug on one arm: every case must diverge, shrink
         and land in the corpus. *)
      let bug ~arm fp =
        if String.equal arm "t2" then
          { fp with Fingerprint.steps = fp.Fingerprint.steps + 1 }
        else fp
      in
      let s =
        Driver.run ~perturb:bug
          {
            Driver.budget = 2;
            size = 24;
            seed = 9L;
            jobs = Some 1;
            corpus_dir = Some dir;
          }
      in
      checki "every case diverges" 2 (List.length s.Driver.failures);
      List.iter
        (fun (f : Driver.failure) ->
          checkb "divergence is on the buggy arm" true
            (List.exists
               (fun (d : Oracle.divergence) -> d.Oracle.arm = "t2")
               f.Driver.divergences);
          if f.Driver.shrunk_active > 10 then
            Alcotest.failf "case %d: reproducer not minimal: %d instrs"
              f.Driver.case f.Driver.shrunk_active;
          checki "three corpus files" 3 (List.length f.Driver.saved);
          List.iter
            (fun path ->
              checkb (path ^ " exists") true (Sys.file_exists path))
            f.Driver.saved;
          (* The .g32 must decode back to the shrunk program, the .json
             must be valid JSON. *)
          List.iter
            (fun path ->
              if Filename.check_suffix path ".g32" then
                match Encode.read_file path with
                | Ok p -> checkb "g32 roundtrip" true (p = f.Driver.shrunk)
                | Error msg -> Alcotest.fail msg
              else if Filename.check_suffix path ".json" then
                match Json.validate (read_file path) with
                | Ok () -> ()
                | Error msg -> Alcotest.fail (path ^ ": " ^ msg))
            f.Driver.saved)
        s.Driver.failures;
      let json = Driver.summary_json s in
      checkb "summary counts the divergences" true
        (contains json "\"divergent_cases\":2"))

(* ------------------------------------------------------------------ *)
(* Typed trap / vetting satellites                                      *)
(* ------------------------------------------------------------------ *)

let test_rnd_bound_trap () =
  let p = Program.make [| Instr.Rnd (r0, 0); Instr.Halt |] in
  let m = Machine.create p in
  (match Machine.run m with
  | Error (Machine.Invalid_rnd_bound { pc = 0; bound = 0 }) -> ()
  | Error trap ->
      Alcotest.failf "wrong trap: %s"
        (Format.asprintf "%a" Machine.pp_trap trap)
  | Ok () -> Alcotest.fail "non-positive rnd bound did not trap");
  (* The engine must surface the same typed trap, not an exception... *)
  let eng = Engine.create ~seed:1L p in
  let res = Engine.run eng in
  (match Engine.trap res with
  | Some (Machine.Invalid_rnd_bound { pc = 0; bound = 0 }) -> ()
  | _ -> Alcotest.fail "engine did not surface the rnd-bound trap");
  (* ... which is exactly what makes the oracle see it as equivalent. *)
  let v = Oracle.check ~seed:1L p in
  checkb "trap identity across all arms" true (v.Oracle.divergences = [])

let test_build_result_vetting () =
  (match Block_map.build_result (Program.make [| Instr.Halt |]) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Error.to_string e));
  (match Block_map.build_result (Program.make [| Instr.Jmp 0 |]) with
  | Ok _ -> () (* jmp at end is fine: no fall-through edge needed *)
  | Error e -> Alcotest.fail (Error.to_string e));
  (match
     Block_map.build_result (Program.make [| Instr.Br (Instr.Eq, r0, r0, 0) |])
   with
  | Error (Error.Invalid_program msg) ->
      checkb "message names the pc" true (contains msg "pc 0")
  | Error e -> Alcotest.fail ("wrong error: " ^ Error.to_string e)
  | Ok _ -> Alcotest.fail "trailing branch accepted");
  match
    Block_map.build_result (Program.make [| Instr.Nop; Instr.Call 0 |])
  with
  | Error (Error.Invalid_program _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Error.to_string e)
  | Ok _ -> Alcotest.fail "trailing call accepted"

(* ------------------------------------------------------------------ *)
(* JSON round-trip properties                                           *)
(* ------------------------------------------------------------------ *)

let test_json_string_roundtrip_property () =
  let prng = Prng.create ~seed:4242L in
  for i = 1 to 1000 do
    let s = Gen.adversarial_string prng ~max_len:40 in
    let q = Json.quote s in
    (match Json.validate q with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "iter %d: quote not valid: %s (%S)" i msg s);
    match Json.parse q with
    | Ok (Json.Str s') ->
        if s' <> s then Alcotest.failf "iter %d: %S roundtripped to %S" i s s'
    | Ok _ -> Alcotest.failf "iter %d: parsed to a non-string" i
    | Error msg -> Alcotest.failf "iter %d: parse failed: %s (%S)" i msg s
  done

let test_json_document_roundtrip_property () =
  let prng = Prng.create ~seed:777L in
  for i = 1 to 200 do
    let k = Gen.adversarial_string prng ~max_len:16 in
    let v = Gen.adversarial_string prng ~max_len:24 in
    let doc =
      Json.obj
        [
          (k, Json.quote v);
          ("list", Json.arr [ Json.quote k; "1"; "null"; "true" ]);
        ]
    in
    (match Json.validate doc with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "iter %d: emitted doc invalid: %s" i msg);
    match Json.parse doc with
    | Ok d -> (
        match Json.member k d with
        | Some (Json.Str v') when v' = v -> ()
        | _ ->
            (* Duplicate keys are legal in our emitter and lookup
               returns the first — only demand the member when the two
               adversarial keys differ. *)
            if k <> "list" then
              Alcotest.failf "iter %d: member %S lost" i k)
    | Error msg -> Alcotest.failf "iter %d: parse failed: %s" i msg
  done

let test_json_deep_nesting () =
  let deep = ref "0" in
  for _ = 1 to 100 do
    deep := Json.arr [ !deep ]
  done;
  (match Json.validate !deep with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("deep array: " ^ msg));
  match Json.parse !deep with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("deep parse: " ^ msg)

(* ------------------------------------------------------------------ *)
(* CLI                                                                  *)
(* ------------------------------------------------------------------ *)

let tpdbt = Filename.concat (Filename.concat ".." "bin") "tpdbt.exe"

let exit_of args =
  match
    Unix.system
      (Filename.quote_command tpdbt args ~stdout:Filename.null
         ~stderr:Filename.null)
  with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> Alcotest.fail "tpdbt killed"

let normalized_help sub =
  let out = Filename.temp_file "tpdbt-help" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      (match
         Unix.system
           (Filename.quote_command tpdbt
              [ sub; "--help=plain" ]
              ~stdout:out ~stderr:Filename.null)
       with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.failf "%s --help failed" sub);
      String.concat " "
        (List.filter
           (fun w -> w <> "")
           (String.split_on_char ' '
              (String.map
                 (function '\n' | '\t' -> ' ' | c -> c)
                 (read_file out)))))

let test_cli_seed_flag_uniform () =
  if not (Sys.file_exists tpdbt) then Alcotest.skip ()
  else
    (* One seed flag, one meaning, one help string — fuzz, chaos and
       faults must all describe --seed identically. *)
    List.iter
      (fun sub ->
        let help = normalized_help sub in
        checkb (sub ^ " documents --seed") true (contains help "--seed=SEED");
        checkb
          (sub ^ " uses the shared seed doc")
          true
          (contains help "PRNG seed for the guest rnd stream."))
      [ "fuzz"; "chaos"; "faults" ]

let test_cli_fuzz_exit_codes_and_determinism () =
  if not (Sys.file_exists tpdbt) then Alcotest.skip ()
  else begin
    checki "zero budget is usage (1)" 1 (exit_of [ "fuzz"; "--budget"; "0" ]);
    with_temp_dir (fun dir ->
        let corpus = Filename.concat dir "corpus" in
        let s1 = Filename.concat dir "s1.json" in
        let s2 = Filename.concat dir "s2.json" in
        let run summary jobs =
          exit_of
            [
              "fuzz"; "--budget"; "5"; "--size"; "24"; "--seed"; "42";
              "--jobs"; jobs; "--corpus"; corpus; "--summary"; summary;
            ]
        in
        checki "clean campaign exits 0" 0 (run s1 "1");
        checki "clean campaign exits 0 (parallel)" 0 (run s2 "3");
        checks "summary byte-identical across jobs" (read_file s1)
          (read_file s2);
        match Json.validate (read_file s1) with
        | Ok () -> ()
        | Error msg -> Alcotest.fail ("cli summary: " ^ msg))
  end

let suite =
  [
    Alcotest.test_case "generator deterministic and well-formed" `Quick
      test_generator_deterministic_and_well_formed;
    Alcotest.test_case "adversarial strings deterministic" `Quick
      test_adversarial_string_deterministic;
    Alcotest.test_case "fingerprint equal and diff" `Quick
      test_fingerprint_equal_and_diff;
    Alcotest.test_case "oracle clean on current engine" `Quick
      test_oracle_clean_on_current_engine;
    Alcotest.test_case "injected bug detected and shrunk" `Quick
      test_injected_bug_detected_and_shrunk;
    Alcotest.test_case "campaign deterministic across jobs" `Quick
      test_campaign_deterministic_across_jobs;
    Alcotest.test_case "campaign persists reproducers" `Quick
      test_campaign_persists_reproducers;
    Alcotest.test_case "rnd bound trap is typed" `Quick test_rnd_bound_trap;
    Alcotest.test_case "build_result vets untrusted programs" `Quick
      test_build_result_vetting;
    Alcotest.test_case "json string roundtrip property" `Quick
      test_json_string_roundtrip_property;
    Alcotest.test_case "json document roundtrip property" `Quick
      test_json_document_roundtrip_property;
    Alcotest.test_case "json deep nesting" `Quick test_json_deep_nesting;
    Alcotest.test_case "cli seed flag uniform" `Quick test_cli_seed_flag_uniform;
    Alcotest.test_case "cli fuzz exit codes and determinism" `Quick
      test_cli_fuzz_exit_codes_and_determinism;
  ]
