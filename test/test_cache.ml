(* Bounded code cache and the shadow-execution divergence oracle:
   victim-order determinism, policy behaviour, behaviour invariance
   under pressure, oracle equivalence on clean runs, silent-corruption
   detection/quarantine, the bounded-quarantine watchdog, and AVEP
   preservation under quarantine across the whole workload suite. *)

module Engine = Tpdbt_dbt.Engine
module Code_cache = Tpdbt_dbt.Code_cache
module Perf_model = Tpdbt_dbt.Perf_model
module Snapshot = Tpdbt_dbt.Snapshot
module Fault = Tpdbt_faults.Fault
module Plan = Tpdbt_faults.Plan
module Spec = Tpdbt_workloads.Spec
module Suite = Tpdbt_workloads.Suite
module Sink = Tpdbt_telemetry.Sink
module Event = Tpdbt_telemetry.Event

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* -- Code_cache unit behaviour ----------------------------------------- *)

let test_cache_accounting () =
  let c = Code_cache.create ~capacity:100 () in
  checkb "bounded" true (Code_cache.bounded c);
  checkb "unbounded variant" false (Code_cache.bounded (Code_cache.create ()));
  checkb "no victims under capacity" true
    (Code_cache.insert c ~now:0 ~ekind:Code_cache.Block ~id:1 ~size:40 = []);
  ignore (Code_cache.insert c ~now:1 ~ekind:Code_cache.Block ~id:2 ~size:40);
  checki "occupancy sums" 80 (Code_cache.used c);
  (* Re-inserting a resident entry replaces its size, never doubles it. *)
  ignore (Code_cache.insert c ~now:2 ~ekind:Code_cache.Block ~id:1 ~size:50);
  checki "reinsert replaces" 90 (Code_cache.used c);
  checki "peak tracks high water" 90 (Code_cache.peak c);
  Code_cache.remove c Code_cache.Block 2;
  checki "remove uncharges" 50 (Code_cache.used c);
  checki "peak sticks after remove" 90 (Code_cache.peak c);
  checki "remove is not eviction" 0 (Code_cache.stats c).Code_cache.evictions;
  checkb "membership" true (Code_cache.mem c Code_cache.Block 1);
  checkb "removed gone" false (Code_cache.mem c Code_cache.Block 2)

let test_cache_create_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "zero capacity rejected" true (raises (fun () ->
      Code_cache.create ~capacity:0 ()));
  checkb "negative hot window rejected" true (raises (fun () ->
      Code_cache.create ~hot_window:(-1) ()))

let test_victim_total_order () =
  (* Equal stamps: blocks before regions, then ascending id — never
     hash-table iteration order. *)
  let c = Code_cache.create ~capacity:10 ~policy:Code_cache.Lru () in
  ignore (Code_cache.insert c ~now:5 ~ekind:Code_cache.Region ~id:7 ~size:3);
  ignore (Code_cache.insert c ~now:5 ~ekind:Code_cache.Block ~id:9 ~size:3);
  ignore (Code_cache.insert c ~now:5 ~ekind:Code_cache.Block ~id:2 ~size:3);
  let victims = Code_cache.insert c ~now:6 ~ekind:Code_cache.Block ~id:1 ~size:9 in
  let shape = List.map (fun v -> (v.Code_cache.ekind, v.Code_cache.id)) victims in
  checkb "victims in (stamp, kind, id) order" true
    (shape
    = [ (Code_cache.Block, 2); (Code_cache.Block, 9); (Code_cache.Region, 7) ]);
  checki "inserted entry survives" 9 (Code_cache.used c)

let test_lru_touch_changes_victim () =
  let c = Code_cache.create ~capacity:100 ~policy:Code_cache.Lru () in
  ignore (Code_cache.insert c ~now:0 ~ekind:Code_cache.Block ~id:1 ~size:40);
  ignore (Code_cache.insert c ~now:1 ~ekind:Code_cache.Block ~id:2 ~size:40);
  Code_cache.touch c ~now:2 Code_cache.Block 1;
  (match Code_cache.insert c ~now:3 ~ekind:Code_cache.Block ~id:3 ~size:40 with
  | [ v ] -> checki "stale entry evicted, touched survives" 2 v.Code_cache.id
  | other -> Alcotest.failf "expected one victim, got %d" (List.length other));
  checkb "touched entry resident" true (Code_cache.mem c Code_cache.Block 1)

let test_flush_all_policy () =
  let c = Code_cache.create ~capacity:10 ~policy:Code_cache.Flush_all () in
  ignore (Code_cache.insert c ~now:0 ~ekind:Code_cache.Block ~id:1 ~size:4);
  ignore (Code_cache.insert c ~now:1 ~ekind:Code_cache.Block ~id:2 ~size:4);
  let victims = Code_cache.insert c ~now:2 ~ekind:Code_cache.Block ~id:3 ~size:4 in
  checki "everything but the newcomer flushed" 2 (List.length victims);
  checki "only the newcomer resident" 4 (Code_cache.used c);
  checki "counted as one flush" 1 (Code_cache.stats c).Code_cache.flushes;
  checki "eight instructions discarded" 8
    (Code_cache.stats c).Code_cache.evicted_instrs

let test_hot_protect_soft_overflow () =
  let c =
    Code_cache.create ~capacity:10 ~policy:Code_cache.Hot_protect
      ~hot_window:100 ()
  in
  ignore (Code_cache.insert c ~now:0 ~ekind:Code_cache.Region ~id:1 ~size:4);
  ignore (Code_cache.insert c ~now:0 ~ekind:Code_cache.Block ~id:2 ~size:4);
  (* The block is never protected: it goes first even though the region
     is older-stamped. *)
  (match Code_cache.insert c ~now:50 ~ekind:Code_cache.Block ~id:3 ~size:4 with
  | [ v ] ->
      checkb "block evicted before hot region" true
        (v.Code_cache.ekind = Code_cache.Block && v.Code_cache.id = 2)
  | other -> Alcotest.failf "expected one victim, got %d" (List.length other));
  (* All remaining candidates hot regions: soft overflow, no victims. *)
  Code_cache.remove c Code_cache.Block 3;
  ignore (Code_cache.insert c ~now:60 ~ekind:Code_cache.Region ~id:4 ~size:4);
  checkb "hot regions never evicted" true
    (Code_cache.insert c ~now:60 ~ekind:Code_cache.Region ~id:5 ~size:4 = []);
  checkb "soft overflow over capacity" true (Code_cache.used c > 10);
  (* Once the window passes, the coldest region is fair game again. *)
  match Code_cache.insert c ~now:300 ~ekind:Code_cache.Block ~id:6 ~size:1 with
  | v :: _ -> checki "stale region evicted after window" 1 v.Code_cache.id
  | [] -> Alcotest.fail "expected evictions once regions went cold"

let test_corruption_marks () =
  let c = Code_cache.create ~capacity:100 () in
  ignore (Code_cache.insert c ~now:0 ~ekind:Code_cache.Region ~id:3 ~size:10);
  checkb "absent region not corruptible" false
    (Code_cache.corrupt_region c 9 ~salt:1L);
  checkb "resident region corrupted" true (Code_cache.corrupt_region c 3 ~salt:5L);
  checkb "mark survives touch" true
    (Code_cache.touch c ~now:1 Code_cache.Region 3;
     Code_cache.corruption c Code_cache.Region 3 = Some 5L);
  ignore (Code_cache.insert c ~now:2 ~ekind:Code_cache.Region ~id:3 ~size:10);
  checkb "reinsert clears the mark" true
    (Code_cache.corruption c Code_cache.Region 3 = None);
  checkb "resident regions sorted" true (Code_cache.resident_regions c = [ 3 ])

let test_policy_names_roundtrip () =
  List.iter
    (fun p ->
      checkb "name roundtrips" true
        (Code_cache.policy_of_name (Code_cache.policy_name p) = Some p))
    Code_cache.all_policies;
  checkb "unknown name rejected" true (Code_cache.policy_of_name "mru" = None)

(* -- engine under cache pressure --------------------------------------- *)

(* A benchmark with enough distinct static code that a quarter-footprint
   cache genuinely thrashes, but small enough to run in milliseconds. *)
let pressure =
  {
    Spec.name = "cache-pressure";
    suite = `Int;
    units =
      [
        Spec.Branch { prob = Spec.prob 0.85 ~train:0.6; straight = 3; copies = 4 };
        Spec.Loop { trip = Spec.trip 8; jitter = 2; body = 3; copies = 3 };
        Spec.Branch { prob = Spec.prob 0.3 ~train:0.5; straight = 2; copies = 3 };
        Spec.Loop { trip = Spec.trip 5; jitter = 1; body = 4; copies = 2 };
      ];
    ref_iters = 4000;
    train_iters = 500;
    ref_seed = 9L;
    train_seed = 10L;
  }

let run_spec ?sink ?faults ?max_steps ?cache_capacity ?cache_policy
    ?cache_backoff ?shadow_sample ?max_quarantines ?(threshold = 20) bench =
  let program, ref_input, _train = Spec.build bench in
  let program = Spec.apply_input program ref_input in
  let config =
    Engine.config ?sink ?faults ?cache_capacity ?cache_policy ?cache_backoff
      ?shadow_sample ?max_quarantines ~threshold ()
  in
  let config =
    match max_steps with
    | None -> config
    | Some max_steps -> { config with Engine.max_steps }
  in
  Engine.run (Engine.create ~config ~seed:ref_input.Spec.seed program)

let test_ample_capacity_is_identity () =
  (* A bounded cache that never fills (backoff 0 so round timing is
     untouched) must reproduce the unbounded run bit for bit. *)
  let base = run_spec pressure in
  let roomy = run_spec ~cache_capacity:1_000_000 ~cache_backoff:0 pressure in
  checkb "no error" true (base.Engine.error = None && roomy.Engine.error = None);
  checki "no evictions" 0 roomy.Engine.counters.Perf_model.cache_evictions;
  checkb "cycles byte-identical" true
    (roomy.Engine.counters.Perf_model.cycles
    = base.Engine.counters.Perf_model.cycles);
  checkb "same outputs" true (roomy.Engine.outputs = base.Engine.outputs);
  checki "same steps" base.Engine.steps roomy.Engine.steps;
  checkb "footprint measured either way" true
    (roomy.Engine.counters.Perf_model.cache_peak_instrs
     = base.Engine.counters.Perf_model.cache_peak_instrs
    && base.Engine.counters.Perf_model.cache_peak_instrs > 0)

let test_pressure_behaviour_invariant_all_policies () =
  let base = run_spec pressure in
  let footprint = base.Engine.counters.Perf_model.cache_peak_instrs in
  checkb "baseline has a footprint" true (footprint > 4);
  let capacity = max 1 (footprint / 4) in
  let total_evictions = ref 0 in
  List.iter
    (fun policy ->
      let r = run_spec ~cache_capacity:capacity ~cache_policy:policy pressure in
      let name = Code_cache.policy_name policy in
      checkb (name ^ ": completes") true (r.Engine.error = None);
      checkb (name ^ ": same outputs") true
        (r.Engine.outputs = base.Engine.outputs);
      checki (name ^ ": same steps") base.Engine.steps r.Engine.steps;
      checkb (name ^ ": eviction cycles charged when evicting") true
        (r.Engine.counters.Perf_model.cache_evictions = 0
        || r.Engine.counters.Perf_model.cycles
           > base.Engine.counters.Perf_model.cycles);
      total_evictions :=
        !total_evictions + r.Engine.counters.Perf_model.cache_evictions)
    Code_cache.all_policies;
  checkb "quarter footprint binds" true (!total_evictions > 0)

let evict_trace buffer =
  List.filter_map
    (fun { Event.step; event } ->
      match event with
      | Event.Cache_evicted { entry_kind; id; size } ->
          Some (step, entry_kind, id, size)
      | _ -> None)
    (Sink.contents buffer)

let test_eviction_deterministic () =
  let base = run_spec pressure in
  let capacity =
    max 1 (base.Engine.counters.Perf_model.cache_peak_instrs / 4)
  in
  let go () =
    let sink, buffer = Sink.memory () in
    let r = run_spec ~sink ~cache_capacity:capacity pressure in
    (r, evict_trace buffer)
  in
  let a, trace_a = go () and b, trace_b = go () in
  checkb "evictions happened" true (trace_a <> []);
  checkb "identical eviction traces" true (trace_a = trace_b);
  checkb "identical cycles" true
    (a.Engine.counters.Perf_model.cycles = b.Engine.counters.Perf_model.cycles);
  checki "identical eviction counts"
    a.Engine.counters.Perf_model.cache_evictions
    b.Engine.counters.Perf_model.cache_evictions

(* -- shadow-execution oracle ------------------------------------------- *)

let test_shadow_clean_equivalence () =
  let base = run_spec pressure in
  let shadowed = run_spec ~shadow_sample:4 pressure in
  checkb "no error" true (shadowed.Engine.error = None);
  checkb "replays happened" true
    (shadowed.Engine.counters.Perf_model.shadow_replays > 0);
  checki "no divergence on a clean run" 0
    shadowed.Engine.counters.Perf_model.shadow_divergences;
  checki "nothing quarantined" 0
    shadowed.Engine.counters.Perf_model.regions_quarantined;
  checkb "same outputs" true (shadowed.Engine.outputs = base.Engine.outputs);
  checki "same steps" base.Engine.steps shadowed.Engine.steps;
  checkb "use counters identical" true
    (shadowed.Engine.snapshot.Snapshot.use = base.Engine.snapshot.Snapshot.use);
  checkb "taken counters identical" true
    (shadowed.Engine.snapshot.Snapshot.taken
    = base.Engine.snapshot.Snapshot.taken);
  checkb "replay cycles charged" true
    (shadowed.Engine.counters.Perf_model.cycles
    > base.Engine.counters.Perf_model.cycles)

(* Salt 0 picks the lowest-numbered resident region — the first one
   formed, i.e. the hottest early loop, which is sure to be entered
   again after the arm fires. *)
let corruption_plan ~step =
  Plan.of_arms ~seed:0L
    [ { Fault.step; kind = Fault.Silent_corruption; salt = 0L } ]

let test_silent_corruption_detected () =
  let clean = run_spec pressure in
  let step = max 1 (clean.Engine.steps / 3) in
  let sink, buffer = Sink.memory () in
  let caught =
    run_spec ~sink ~faults:(corruption_plan ~step) ~shadow_sample:1 pressure
  in
  checkb "run completes" true (caught.Engine.error = None);
  checkb "corruption executed" true
    (caught.Engine.counters.Perf_model.corrupted_entries > 0);
  checkb "oracle flagged it" true
    (caught.Engine.counters.Perf_model.shadow_divergences >= 1);
  checkb "region quarantined" true
    (caught.Engine.counters.Perf_model.regions_quarantined >= 1);
  checkb "guest behaviour untouched" true
    (caught.Engine.outputs = clean.Engine.outputs
    && caught.Engine.steps = clean.Engine.steps);
  let quarantine_events =
    List.filter_map
      (fun { Event.event; _ } ->
        match event with
        | Event.Region_quarantined { preserved_use; _ } -> Some preserved_use
        | _ -> None)
      (Sink.contents buffer)
  in
  checkb "quarantine event carries the preserved profile" true
    (List.exists (fun u -> u > 0) quarantine_events)

let test_silent_corruption_unwatched () =
  (* Oracle off: the corruption executes and nothing notices — this is
     exactly the hole the campaign classifier reports as uncaught. *)
  let clean = run_spec pressure in
  let step = max 1 (clean.Engine.steps / 3) in
  let blind = run_spec ~faults:(corruption_plan ~step) pressure in
  checkb "corruption executed" true
    (blind.Engine.counters.Perf_model.corrupted_entries > 0);
  checki "no divergence seen" 0
    blind.Engine.counters.Perf_model.shadow_divergences;
  checki "nothing quarantined" 0
    blind.Engine.counters.Perf_model.regions_quarantined

let test_watchdog_degrades () =
  let clean = run_spec pressure in
  let step = max 1 (clean.Engine.steps / 3) in
  let sink, buffer = Sink.memory () in
  let r =
    run_spec ~sink ~faults:(corruption_plan ~step) ~shadow_sample:1
      ~max_quarantines:0 pressure
  in
  checkb "degraded run still completes" true (r.Engine.error = None);
  checki "watchdog tripped" 1 r.Engine.counters.Perf_model.watchdog_degraded;
  checkb "degradation announced" true
    (List.exists
       (fun { Event.event; _ } ->
         match event with Event.Engine_degraded _ -> true | _ -> false)
       (Sink.contents buffer));
  checkb "guest behaviour untouched" true
    (r.Engine.outputs = clean.Engine.outputs && r.Engine.steps = clean.Engine.steps)

(* -- quarantine preserves AVEP across the whole suite ------------------- *)

let test_quarantine_preserves_avep_all_workloads () =
  (* Every workload, iteration-scaled so runs halt naturally in tens of
     milliseconds (a step cap would cut optimised and quarantined runs
     at different block boundaries): inject one silent corruption with
     the oracle armed; guest behaviour must be untouched and every
     block's profile must carry at least the clean counts (quarantine
     preserves counters, then profiling resumes). *)
  let quarantines = ref 0 in
  List.iter
    (fun bench ->
      let bench =
        {
          bench with
          Spec.ref_iters = min bench.Spec.ref_iters 1000;
          train_iters = min bench.Spec.train_iters 100;
        }
      in
      let name = bench.Spec.name in
      (* Iteration counts are a poor proxy for run length (FP inner
         loops run thousands of steps per outer iteration), so rescale
         against the measured step count of a probe run. *)
      let bench, clean =
        let probe = run_spec ~threshold:5 bench in
        if probe.Engine.steps <= 600_000 then (bench, probe)
        else
          let ref_iters =
            max 100 (bench.Spec.ref_iters * 600_000 / probe.Engine.steps)
          in
          let bench = { bench with Spec.ref_iters } in
          (bench, run_spec ~threshold:5 bench)
      in
      let step = max 1 (clean.Engine.steps / 5) in
      let faulty =
        run_spec ~threshold:5 ~faults:(corruption_plan ~step) ~shadow_sample:1
          bench
      in
      checkb (name ^ ": same outputs") true
        (faulty.Engine.outputs = clean.Engine.outputs);
      checki (name ^ ": same steps") clean.Engine.steps faulty.Engine.steps;
      checkb (name ^ ": same error") true
        (faulty.Engine.error = clean.Engine.error);
      let cu = clean.Engine.snapshot.Snapshot.use
      and fu = faulty.Engine.snapshot.Snapshot.use
      and ct = clean.Engine.snapshot.Snapshot.taken
      and ft = faulty.Engine.snapshot.Snapshot.taken in
      checki (name ^ ": same block count") (Array.length cu) (Array.length fu);
      let preserved = ref true in
      Array.iteri (fun i c -> if fu.(i) < c then preserved := false) cu;
      Array.iteri (fun i c -> if ft.(i) < c then preserved := false) ct;
      checkb (name ^ ": AVEP counters preserved") true !preserved;
      quarantines :=
        !quarantines + faulty.Engine.counters.Perf_model.regions_quarantined;
      (* And under pressure: a quarter of this workload's translated
         footprint must complete with identical behaviour under every
         eviction policy.  Outputs and steps are threshold-invariant
         (the engine always interprets for architectural state), so
         the cheaper threshold-20 runs with a wide backoff compare
         directly against the threshold-5 clean run. *)
      let capacity =
        max 1 (clean.Engine.counters.Perf_model.cache_peak_instrs / 4)
      in
      List.iter
        (fun policy ->
          let b =
            run_spec ~threshold:20 ~cache_backoff:10_000
              ~cache_capacity:capacity ~cache_policy:policy bench
          in
          let pname = name ^ "/" ^ Code_cache.policy_name policy in
          checkb (pname ^ ": completes") true (b.Engine.error = None);
          checkb (pname ^ ": same outputs") true
            (b.Engine.outputs = clean.Engine.outputs);
          checki (pname ^ ": same steps") clean.Engine.steps b.Engine.steps)
        Code_cache.all_policies)
    Suite.all;
  checkb "quarantines observed across the suite" true (!quarantines > 0)

let suite =
  [
    ("cache accounting", `Quick, test_cache_accounting);
    ("cache create validation", `Quick, test_cache_create_validation);
    ("victim total order", `Quick, test_victim_total_order);
    ("lru touch changes victim", `Quick, test_lru_touch_changes_victim);
    ("flush_all policy", `Quick, test_flush_all_policy);
    ("hot_protect soft overflow", `Quick, test_hot_protect_soft_overflow);
    ("corruption marks", `Quick, test_corruption_marks);
    ("policy names roundtrip", `Quick, test_policy_names_roundtrip);
    ("ample capacity is identity", `Quick, test_ample_capacity_is_identity);
    ( "pressure behaviour invariant",
      `Quick,
      test_pressure_behaviour_invariant_all_policies );
    ("eviction deterministic", `Quick, test_eviction_deterministic);
    ("shadow clean equivalence", `Quick, test_shadow_clean_equivalence);
    ("silent corruption detected", `Quick, test_silent_corruption_detected);
    ("silent corruption unwatched", `Quick, test_silent_corruption_unwatched);
    ("watchdog degrades", `Quick, test_watchdog_degrades);
    ( "quarantine preserves AVEP (26 workloads)",
      `Quick,
      test_quarantine_preserves_avep_all_workloads );
  ]
