(* Robustness of supervised sweeps: engine step deadlines, the
   checkpoint corruption matrix (truncation, bit flips, stale versions,
   empty and garbage-trailed files are classified, re-run and repaired
   byte-identically at every job count), and the chaos harness's
   deterministic survival of combined task/worker/storage faults. *)

module Error = Tpdbt_dbt.Error
module Sup = Tpdbt_parallel.Supervisor
module Runner = Tpdbt_experiments.Runner
module Checkpoint = Tpdbt_experiments.Checkpoint
module Campaign = Tpdbt_experiments.Campaign
module Spec = Tpdbt_workloads.Spec

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let job_counts = [ 1; 2; 4 ]

let mini ?(iters = 3000) name =
  {
    Spec.name;
    suite = `Int;
    units =
      [
        Spec.Branch { prob = Spec.prob 0.8 ~train:0.6; straight = 2; copies = 2 };
        Spec.Loop { trip = Spec.trip 6; jitter = 1; body = 2; copies = 1 };
      ];
    ref_iters = iters;
    train_iters = 800;
    ref_seed = 3L;
    train_seed = 4L;
  }

let mini_thresholds = [ ("100", 1); ("1k", 10) ]

let mini_benches () =
  [
    mini "rob-a";
    mini ~iters:4000 "rob-b";
    mini ~iters:2000 "rob-c";
    mini ~iters:3500 "rob-d";
    mini ~iters:2500 "rob-e";
  ]

let serialize_sweep sweep =
  String.concat "\n" (List.map Checkpoint.data_to_string sweep.Runner.data)

let with_temp_dir f =
  let dir = Filename.temp_file "tpdbt-rob" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> Sys.remove (Filename.concat dir file))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* ------------------------------------------------------------------ *)
(* Engine deadlines                                                     *)
(* ------------------------------------------------------------------ *)

let test_deadline_exceeded () =
  let bench = mini "rob-deadline" in
  (match Runner.run_benchmark_result ~thresholds:mini_thresholds bench with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("clean run failed: " ^ Error.to_string e));
  match
    Runner.run_benchmark_result ~thresholds:mini_thresholds ~deadline:500
      bench
  with
  | Ok _ -> Alcotest.fail "a 500-step deadline should have fired"
  | Error (Error.Deadline_exceeded { steps; deadline }) ->
      checki "recorded deadline" 500 deadline;
      checkb "steps past the deadline" true (steps >= deadline);
      checkb "deadline errors are fatal" true
        (Error.fatal (Error.Deadline_exceeded { steps; deadline }));
      (* ... unlike the cooperative budget, which only truncates. *)
      checkb "budget errors stay non-fatal" false
        (Error.fatal (Error.Limit_exceeded { steps; max_steps = deadline }))
  | Error e -> Alcotest.fail ("wrong error: " ^ Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Checkpoint corruption matrix                                         *)
(* ------------------------------------------------------------------ *)

type damage = Truncate | Bitflip | Stale | Empty | Trailing

let damage_name = function
  | Truncate -> "truncate"
  | Bitflip -> "bitflip"
  | Stale -> "stale"
  | Empty -> "empty"
  | Trailing -> "trailing"

let apply_damage kind file =
  let text = read_file file in
  let len = String.length text in
  match kind with
  | Truncate -> write_file file (String.sub text 0 (len / 2))
  | Bitflip ->
      let b = Bytes.of_string text in
      let i = len / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
      write_file file (Bytes.to_string b)
  | Stale -> (
      match String.index_opt text '\n' with
      | None -> Alcotest.fail "checkpoint has no header line"
      | Some nl ->
          write_file file
            ("TPDBT-CKPT 2" ^ String.sub text nl (len - nl)))
  | Empty -> write_file file ""
  | Trailing -> write_file file (text ^ "junk\n")

let expected_class = function
  | Stale -> "stale"
  | Truncate | Bitflip | Empty | Trailing -> "corrupt"

let class_name = function
  | Checkpoint.Valid _ -> "valid"
  | Checkpoint.Missing -> "missing"
  | Checkpoint.Stale_version _ -> "stale"
  | Checkpoint.Corrupt _ -> "corrupt"

let test_corruption_classified () =
  let bench = mini "rob-classify" in
  with_temp_dir (fun dir ->
      let seed_store () =
        let _ =
          Checkpoint.run_many ~thresholds:mini_thresholds ~dir [ bench ]
        in
        Checkpoint.path ~dir bench
      in
      List.iter
        (fun kind ->
          let file = seed_store () in
          checks "pristine checkpoint is valid" "valid"
            (class_name
               (Checkpoint.classify ~thresholds:mini_thresholds ~dir bench));
          apply_damage kind file;
          checks
            (damage_name kind ^ " classified")
            (expected_class kind)
            (class_name
               (Checkpoint.classify ~thresholds:mini_thresholds ~dir bench));
          checkb
            (damage_name kind ^ " not loadable")
            true
            (Checkpoint.load ~thresholds:mini_thresholds ~dir bench = None);
          Sys.remove file)
        [ Truncate; Bitflip; Stale; Empty; Trailing ];
      checks "no file is missing, not corrupt" "missing"
        (class_name
           (Checkpoint.classify ~thresholds:mini_thresholds ~dir bench)))

let test_data_of_string_rejects () =
  let bench = mini "rob-reject" in
  let data =
    match Runner.run_benchmark_result ~thresholds:mini_thresholds bench with
    | Ok d -> d
    | Error e -> Alcotest.fail (Error.to_string e)
  in
  let text = Checkpoint.data_to_string data in
  let classify s =
    class_name (Checkpoint.data_of_string ~thresholds:mini_thresholds bench s)
  in
  checks "round trip" "valid" (classify text);
  checks "empty string" "corrupt" (classify "");
  checks "whitespace only" "corrupt" (classify " \n \n");
  checks "trailing garbage" "corrupt" (classify (text ^ "junk\n"));
  checks "truncated" "corrupt"
    (classify (String.sub text 0 (String.length text / 2)));
  checks "older version" "stale"
    (classify "TPDBT-CKPT 2\nbench rob-reject\n");
  checks "foreign text" "corrupt" (classify "not a checkpoint at all\n");
  (* The corrupt constructor carries a diagnosable reason. *)
  (match Checkpoint.data_of_string ~thresholds:mini_thresholds bench "" with
  | Checkpoint.Corrupt reason -> checks "empty reason" "empty file" reason
  | _ -> Alcotest.fail "empty input not corrupt");
  match
    Checkpoint.data_of_string ~thresholds:mini_thresholds bench (text ^ "x")
  with
  | Checkpoint.Corrupt reason ->
      checkb "trailing reason mentions garbage" true
        (String.length reason > 0
        && String.sub reason 0 (min 8 (String.length reason)) = "trailing")
  | _ -> Alcotest.fail "trailing input not corrupt"

let test_damaged_store_repaired_across_jobs () =
  (* Four checkpoints, two damaged: the supervised resume must classify
     the damage, re-run exactly the damaged benchmarks, and leave the
     sweep byte-identical to an undisturbed one — at every job count. *)
  let benches = mini_benches () in
  let reference =
    Runner.run_many ~thresholds:mini_thresholds benches
  in
  List.iter
    (fun jobs ->
      with_temp_dir (fun dir ->
          let _ =
            Checkpoint.run_many ~thresholds:mini_thresholds ~dir benches
          in
          apply_damage Bitflip (Checkpoint.path ~dir (List.nth benches 1));
          apply_damage Truncate (Checkpoint.path ~dir (List.nth benches 3));
          let statuses = ref [] in
          let progress n s =
            statuses := (n, Runner.status_name s) :: !statuses
          in
          let sweep, supervision =
            Checkpoint.run_many_supervised ~thresholds:mini_thresholds ~jobs
              ~progress ~dir benches
          in
          checks
            (Printf.sprintf "corrupt entries found at -j %d" jobs)
            "rob-b,rob-d"
            (String.concat "," (List.map fst supervision.Runner.corrupt));
          List.iter
            (fun (n, expect) ->
              checkb
                (Printf.sprintf "%s %s at -j %d" n expect jobs)
                true
                (List.mem (n, expect) !statuses))
            [
              ("rob-a", "resumed");
              ("rob-b", "ok");
              ("rob-c", "resumed");
              ("rob-d", "ok");
            ];
          checki
            (Printf.sprintf "nothing poisoned at -j %d" jobs)
            0
            (List.length supervision.Runner.poisoned);
          checks
            (Printf.sprintf "repaired sweep byte-identical at -j %d" jobs)
            (serialize_sweep reference) (serialize_sweep sweep);
          (* The re-run rewrote valid checkpoints in place. *)
          List.iter
            (fun b ->
              checks
                (b.Spec.name ^ " checkpoint valid again")
                "valid"
                (class_name
                   (Checkpoint.classify ~thresholds:mini_thresholds ~dir b)))
            benches))
    job_counts

let test_save_durable_rename () =
  (* [save] publishes via temp file + fsync + rename + directory
     fsync.  The matrix above covers damaged {e contents}; this covers
     the publication itself: re-saving over an existing checkpoint
     (rename onto an existing name, both fsync paths taken) leaves a
     valid byte-identical file and no temp residue to be mistaken for
     a checkpoint. *)
  with_temp_dir (fun dir ->
      let bench = mini "rob-durable" in
      let sweep =
        Checkpoint.run_many ~thresholds:mini_thresholds ~dir [ bench ]
      in
      let data = List.hd sweep.Runner.data in
      let file = Checkpoint.path ~dir bench in
      let first = read_file file in
      Checkpoint.save ~dir data;
      checks "re-save over existing file is byte-identical" first
        (read_file file);
      checks "still valid after re-save" "valid"
        (class_name
           (Checkpoint.classify ~thresholds:mini_thresholds ~dir bench));
      checkb "no temp residue" true
        (Array.for_all
           (fun f -> not (Filename.check_suffix f ".tmp"))
           (Sys.readdir dir)))

(* ------------------------------------------------------------------ *)
(* Degraded pool composed with checkpoint resume                        *)
(* ------------------------------------------------------------------ *)

let test_degraded_pool_resumes_checkpoints () =
  (* Two failure layers at once: half the store already has
     checkpoints (resume), and every fresh benchmark crashes its
     worker on first attempt — a 2-worker pool drops below 2 live
     workers and degrades to inline execution.  The sweep must still
     converge byte-identically: resumed data untouched, crashed tasks
     retried to completion, nothing poisoned. *)
  let benches = mini_benches () in
  let reference = Runner.run_many ~thresholds:mini_thresholds benches in
  with_temp_dir (fun dir ->
      let seeded = List.filteri (fun i _ -> i < 2) benches in
      let _ = Checkpoint.run_many ~thresholds:mini_thresholds ~dir seeded in
      let resumed = ref 0 in
      let progress _ = function
        | Runner.Resumed -> incr resumed
        | _ -> ()
      in
      (* Only fresh benchmarks become tasks, so this crashes exactly
         the un-checkpointed ones. *)
      let fresh = List.length benches - 2 in
      let run_task ~task:_ ~attempt spec =
        if attempt = 1 then raise Sup.Crash_worker
        else Runner.run_benchmark_result ~thresholds:mini_thresholds spec
      in
      let sweep, supervision =
        Checkpoint.run_many_supervised ~thresholds:mini_thresholds ~jobs:2
          ~progress ~run_task ~dir benches
      in
      let sup = supervision.Runner.sup in
      checki "two benchmarks resumed" 2 !resumed;
      checki "every fresh task crashed a worker" fresh sup.Sup.crashes;
      checkb "pool degraded below two live workers" true sup.Sup.degraded;
      checki "crashes retried, nothing poisoned" 0
        (List.length supervision.Runner.poisoned);
      checks "degraded+resumed sweep byte-identical"
        (serialize_sweep reference) (serialize_sweep sweep);
      List.iter
        (fun b ->
          checks
            (b.Spec.name ^ " checkpoint valid after degraded run")
            "valid"
            (class_name
               (Checkpoint.classify ~thresholds:mini_thresholds ~dir b)))
        benches)

(* ------------------------------------------------------------------ *)
(* Supervised sweep equivalence and chaos determinism                   *)
(* ------------------------------------------------------------------ *)

let test_supervised_matches_plain_sweep () =
  let benches = mini_benches () in
  let reference = Runner.run_many ~thresholds:mini_thresholds benches in
  List.iter
    (fun jobs ->
      let sweep, supervision =
        Runner.run_many_supervised ~thresholds:mini_thresholds ~jobs benches
      in
      checks
        (Printf.sprintf "fault-free supervised sweep identical at -j %d" jobs)
        (serialize_sweep reference) (serialize_sweep sweep);
      checki "one attempt per task" (List.length benches)
        supervision.Runner.sup.Sup.attempts;
      checki "no retries" 0 supervision.Runner.sup.Sup.retries;
      checki "nothing poisoned" 0 supervision.Runner.sup.Sup.poisoned)
    job_counts

let test_chaos_deterministic_across_jobs () =
  (* The acceptance scenario: a worker crash, a checkpoint bit flip, a
     deadline-stalled workload and a kill at an arbitrary seeded guest
     instruction in one sweep.  The summary — poisoned, retried, crash,
     corrupt and resumed-from-snapshot sets included — must be
     byte-identical across -j 1/2/4 and repeated same-seed runs, and
     every non-poisoned benchmark (the resumed kill victim included)
     must match the fault-free sequential reference. *)
  let benches = mini_benches () in
  let run jobs =
    with_temp_dir (fun dir ->
        Campaign.chaos ~jobs ~benches ~thresholds:mini_thresholds ~dir
          ~seed:11L ())
  in
  let reference = run 1 in
  checkb "chaos survived" true (Campaign.chaos_ok reference);
  checki "a workload was poisoned (the stall)" 1
    (List.length reference.Campaign.poisoned_benches);
  checki "a checkpoint was corrupted" 1
    (List.length reference.Campaign.corrupt_checkpoints);
  checkb "a worker crashed" true (reference.Campaign.worker_crashes >= 1);
  checkb "tasks were retried" true (reference.Campaign.retried >= 1);
  checki "the kill victim resumed from its mid-run snapshot" 1
    (List.length reference.Campaign.resumed_from_snapshot);
  (let kill_victim =
     List.find_map
       (fun (n, f) -> if f = Campaign.Kill then Some n else None)
       reference.Campaign.injected_faults
   in
   checkb "the resumed benchmark is the kill victim" true
     (kill_victim = Some (List.hd reference.Campaign.resumed_from_snapshot));
   checkb "the kill victim survived byte-identically" true
     (match kill_victim with
     | Some n -> List.mem n reference.Campaign.survivors
     | None -> false));
  checki "survivors are everyone else"
    (List.length benches - 1)
    (List.length reference.Campaign.survivors);
  List.iter
    (fun jobs ->
      checks
        (Printf.sprintf "chaos summary identical at -j %d" jobs)
        (Campaign.chaos_to_json reference)
        (Campaign.chaos_to_json (run jobs)))
    (List.tl job_counts);
  checks "chaos summary identical on a repeated run"
    (Campaign.chaos_to_json reference)
    (Campaign.chaos_to_json (run 1));
  (* A different seed deals different faults but must still survive. *)
  let other =
    with_temp_dir (fun dir ->
        Campaign.chaos ~jobs:2 ~benches ~thresholds:mini_thresholds ~dir
          ~seed:12L ())
  in
  checkb "other seed survived" true (Campaign.chaos_ok other)

let suite =
  [
    Alcotest.test_case "deadline exceeded" `Quick test_deadline_exceeded;
    Alcotest.test_case "corruption classified" `Quick
      test_corruption_classified;
    Alcotest.test_case "data_of_string rejects damage" `Quick
      test_data_of_string_rejects;
    Alcotest.test_case "damaged store repaired across jobs" `Quick
      test_damaged_store_repaired_across_jobs;
    Alcotest.test_case "save survives durable re-publication" `Quick
      test_save_durable_rename;
    Alcotest.test_case "degraded pool composed with resume" `Quick
      test_degraded_pool_resumes_checkpoints;
    Alcotest.test_case "supervised matches plain sweep" `Quick
      test_supervised_matches_plain_sweep;
    Alcotest.test_case "chaos deterministic across jobs" `Quick
      test_chaos_deterministic_across_jobs;
  ]
