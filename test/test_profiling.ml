(* Tests for the profiling/attribution layer: spans, the call-tree
   profiler and its collapsed-stack/JSON exports, the OpenMetrics
   exposition and its strict parser, stage attribution against the
   perf-model counters, and the perfdiff verdict logic. *)

module Assembler = Tpdbt_isa.Assembler
module Engine = Tpdbt_dbt.Engine
module Perf_model = Tpdbt_dbt.Perf_model
module Event = Tpdbt_telemetry.Event
module Sink = Tpdbt_telemetry.Sink
module Span = Tpdbt_telemetry.Span
module Profiler = Tpdbt_telemetry.Profiler
module Attribution = Tpdbt_telemetry.Attribution
module Openmetrics = Tpdbt_telemetry.Openmetrics
module Metrics = Tpdbt_telemetry.Metrics
module Json = Tpdbt_telemetry.Json
module Perfdiff = Tpdbt_experiments.Perfdiff
module Host_info = Tpdbt_experiments.Host_info

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf = Alcotest.check (Alcotest.float 1e-9)

let hot_loop_src =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 20000
loop:
    rnd r3, 100
    movi r4, 70
    blt r3, r4, hot
    addi r5, r5, 1
    jmp join
hot:
    addi r6, r6, 1
join:
    addi r1, r1, 1
    blt r1, r2, loop
    out r6
    halt
|}

let run_with_sink ?(threshold = 50) ?(seed = 42L) ~sink src =
  let p = Assembler.assemble_exn src in
  let config = Engine.config ~threshold ~sink () in
  Engine.run (Engine.create ~config ~seed p)

let traced ?threshold ?seed src =
  let mem, buffer = Sink.memory () in
  let metrics = Metrics.create () in
  let collector = Sink.collect ~into:metrics in
  let sink = Sink.tee [ mem; collector ] in
  let result = run_with_sink ?threshold ?seed ~sink src in
  sink.Sink.close ();
  Perf_model.record result.Engine.counters metrics;
  (result, Sink.contents buffer, metrics)

(* ------------------------------------------------------------------ *)
(* Span primitives                                                      *)
(* ------------------------------------------------------------------ *)

let test_span_null_is_noop () =
  let t = Span.create Sink.null in
  checkb "disabled on null sink" false (Span.enabled t);
  Span.enter t "a";
  Span.enter t "b";
  checki "null spans track no depth" 0 (Span.depth t);
  Span.leave t "b";
  Span.leave t "a";
  checki "depth still 0" 0 (Span.depth t);
  checki "wrap passes value through" 7 (Span.wrap t "c" (fun () -> 7))

let test_span_emission () =
  let events = ref [] in
  let sink =
    Sink.of_fun (fun ~step event -> events := (step, event) :: !events)
  in
  let clock = ref 100 in
  let t = Span.create ~clock:(fun () -> !clock) sink in
  checkb "enabled on real sink" true (Span.enabled t);
  Span.enter t "outer";
  checki "depth 1" 1 (Span.depth t);
  clock := 150;
  Span.wrap t "inner" (fun () -> clock := 180);
  Span.leave t "outer";
  checki "balanced" 0 (Span.depth t);
  match List.rev !events with
  | [
   (100, Event.Span_begin { span = "outer" });
   (150, Event.Span_begin { span = "inner" });
   (180, Event.Span_end { span = "inner"; wall_ns = w1; _ });
   (180, Event.Span_end { span = "outer"; wall_ns = w2; _ });
  ] ->
      checkb "inner wall non-negative" true (w1 >= 0);
      checkb "outer wall >= inner wall" true (w2 >= w1)
  | l -> Alcotest.failf "unexpected span stream (%d events)" (List.length l)

let test_span_wrap_exception_safe () =
  let events = ref [] in
  let sink = Sink.of_fun (fun ~step:_ event -> events := event :: !events) in
  let t = Span.create sink in
  (try Span.wrap t "boom" (fun () -> failwith "x") with Failure _ -> ());
  checki "span closed on exception" 0 (Span.depth t);
  checki "begin and end emitted" 2 (List.length !events)

(* ------------------------------------------------------------------ *)
(* Profiler: call tree, folded stacks, JSON                             *)
(* ------------------------------------------------------------------ *)

let test_profiler_tree_from_engine () =
  let result, events, _ = traced hot_loop_src in
  let p = Profiler.of_events events in
  let root =
    match Profiler.find p [ "engine.run" ] with
    | Some n -> n
    | None -> Alcotest.fail "no engine.run root"
  in
  checki "engine.run called once" 1 (Profiler.calls root);
  checki "engine.run spans the whole run" result.Engine.steps
    (Profiler.steps root);
  (* Stage_cost leaves hang beneath the open engine.run span and carry
     the deterministic cycle attribution. *)
  let interp =
    match Profiler.find p [ "engine.run"; "interpret" ] with
    | Some n -> n
    | None -> Alcotest.fail "no interpret leaf under engine.run"
  in
  checkb "interpret charged cycles" true (Profiler.cycles interp > 0.0);
  (* Self steps never exceed inclusive steps, anywhere in the tree. *)
  let rec walk n =
    checkb
      ("self <= steps at " ^ Profiler.label n)
      true
      (Profiler.self_steps n <= Profiler.steps n && Profiler.self_steps n >= 0);
    List.iter walk (Profiler.children n)
  in
  List.iter walk (Profiler.roots p)

let test_folded_well_formed () =
  let result, events, _ = traced hot_loop_src in
  let folded = Profiler.to_folded (Profiler.of_events events) in
  checkb "folded non-empty" true (String.length folded > 0);
  let total = ref 0 in
  List.iter
    (fun line ->
      if line <> "" then begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "folded line lacks weight: %s" line
        | Some i ->
            let path = String.sub line 0 i in
            let weight =
              String.sub line (i + 1) (String.length line - i - 1)
            in
            (match int_of_string_opt weight with
            | Some w when w > 0 -> total := !total + w
            | _ -> Alcotest.failf "bad folded weight: %s" line);
            checkb "path non-empty" true (String.length path > 0);
            List.iter
              (fun frame -> checkb "frame non-empty" true (frame <> ""))
              (String.split_on_char ';' path)
      end)
    (String.split_on_char '\n' folded);
  (* Self weights partition the root's inclusive width. *)
  checki "folded weights sum to the run's steps" result.Engine.steps !total

let test_profile_json_valid () =
  let _, events, _ = traced hot_loop_src in
  let json = Profiler.to_json (Profiler.of_events events) in
  (match Json.validate json with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("profile json invalid: " ^ msg));
  let doc = match Json.parse json with Ok v -> v | Error e -> Alcotest.fail e in
  (match Option.bind (Json.member "version" doc) Json.as_number with
  | Some 1.0 -> ()
  | _ -> Alcotest.fail "version != 1");
  match Option.bind (Json.member "roots" doc) Json.as_list with
  | Some (_ :: _) -> ()
  | _ -> Alcotest.fail "no roots in profile json"

let test_profiler_tolerates_interleaved_ends () =
  let mk step event = { Event.step; event } in
  let events =
    [
      mk 0 (Event.Span_begin { span = "a" });
      mk 10 (Event.Span_begin { span = "b" });
      (* "a" ends while "b" is still open: b is closed implicitly *)
      mk 30
        (Event.Span_end
           { span = "a"; wall_ns = 5; minor_words = 0; major_words = 0 });
      (* end with no matching open frame: dropped *)
      mk 40
        (Event.Span_end
           { span = "ghost"; wall_ns = 1; minor_words = 0; major_words = 0 });
    ]
  in
  let p = Profiler.of_events events in
  let a =
    match Profiler.find p [ "a" ] with
    | Some n -> n
    | None -> Alcotest.fail "no a"
  in
  checki "a width" 30 (Profiler.steps a);
  (match Profiler.find p [ "a"; "b" ] with
  | Some b -> checki "b closed implicitly at a's end" 20 (Profiler.steps b)
  | None -> Alcotest.fail "b missing");
  checkb "ghost dropped" true (Profiler.find p [ "ghost" ] = None)

(* ------------------------------------------------------------------ *)
(* Null-sink identity: profiling off must not perturb the engine        *)
(* ------------------------------------------------------------------ *)

let test_null_sink_identity () =
  let quiet = run_with_sink ~sink:Sink.null hot_loop_src in
  let traced_result, _, _ = traced hot_loop_src in
  checki "steps identical" quiet.Engine.steps traced_result.Engine.steps;
  checkb "outputs identical" true
    (quiet.Engine.outputs = traced_result.Engine.outputs);
  Alcotest.check (Alcotest.float 0.0) "cycles byte-identical"
    quiet.Engine.counters.Perf_model.cycles
    traced_result.Engine.counters.Perf_model.cycles;
  checki "profiling ops identical" quiet.Engine.profiling_ops
    traced_result.Engine.profiling_ops

(* ------------------------------------------------------------------ *)
(* OpenMetrics exposition                                               *)
(* ------------------------------------------------------------------ *)

let test_openmetrics_roundtrip () =
  let _, _, metrics = traced hot_loop_src in
  let text = Openmetrics.render metrics in
  (match Openmetrics.validate text with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("exposition rejected: " ^ msg));
  let families = Openmetrics.parse text in
  checkb "has families" true (families <> []);
  (* Every dumped instrument surfaces as exactly one family. *)
  checki "one family per instrument"
    (List.length (Metrics.dump metrics))
    (List.length families);
  (* Histogram invariants survive the round trip. *)
  List.iter
    (fun f ->
      if f.Openmetrics.kind = Openmetrics.Histogram then begin
        let buckets =
          List.filter
            (fun s ->
              List.mem_assoc "le" s.Openmetrics.labels)
            f.Openmetrics.samples
        in
        checkb (f.Openmetrics.family_name ^ " has buckets") true
          (buckets <> []);
        let values = List.map (fun s -> s.Openmetrics.value) buckets in
        checkb "buckets cumulative" true
          (List.for_all2 ( <= )
             (List.filteri (fun i _ -> i < List.length values - 1) values)
             (List.tl values))
      end)
    families

let test_openmetrics_determinism () =
  (* Two identical runs must render byte-identical expositions once the
     wall-clock gauges are dropped. *)
  let render () =
    let _, _, metrics = traced hot_loop_src in
    String.split_on_char '\n' (Openmetrics.render metrics)
    |> List.filter (fun l ->
           (* span wall-clock gauges are the only nondeterministic rows *)
           let has_seconds =
             let n = String.length l in
             let rec scan i =
               i + 7 <= n && (String.sub l i 7 = "seconds" || scan (i + 1))
             in
             scan 0
           in
           not has_seconds)
    |> String.concat "\n"
  in
  checks "deterministic exposition" (render ()) (render ())

let test_openmetrics_rejects_corrupt () =
  let _, _, metrics = traced hot_loop_src in
  let text = Openmetrics.render metrics in
  let reject label doc =
    match Openmetrics.validate doc with
    | Ok () -> Alcotest.fail ("accepted " ^ label)
    | Error _ -> ()
  in
  reject "missing EOF"
    (String.concat "\n"
       (List.filter
          (fun l -> l <> "# EOF")
          (String.split_on_char '\n' text)));
  reject "truncated document" (String.sub text 0 (String.length text / 2));
  reject "junk line" ("junk\n" ^ text);
  reject "empty document" ""

(* ------------------------------------------------------------------ *)
(* Attribution vs the perf-model counters                               *)
(* ------------------------------------------------------------------ *)

let test_attribution_reconciles () =
  let result, events, _ = traced hot_loop_src in
  let a = Attribution.of_events events in
  checkb "attribution non-empty" true (not (Attribution.is_empty a));
  (* The stage charges mirror the exact cycle-model products, so their
     sum differs from the counter only by float summation order. *)
  let total = Attribution.total_cycles a in
  let counter = result.Engine.counters.Perf_model.cycles in
  checkb
    (Printf.sprintf "stage cycles (%f) reconcile with perf.cycles (%f)" total
       counter)
    true
    (Float.abs (total -. counter) <= 1e-6 *. Float.max 1.0 counter);
  (* Executed-stage steps partition the run's guest instructions. *)
  let steps =
    List.fold_left
      (fun acc (r : Attribution.stage_row) -> acc + r.Attribution.steps)
      0 (Attribution.stages a)
  in
  checki "stage steps sum to run steps" result.Engine.steps steps;
  (* Region costs stay within the total. *)
  let region_cycles =
    List.fold_left
      (fun acc (r : Attribution.region_row) -> acc +. r.Attribution.cycles)
      0.0 (Attribution.regions a)
  in
  checkb "region cycles <= total" true (region_cycles <= total +. 1e-6);
  (* CSV export carries one row per stage and per region. *)
  let csv = Attribution.to_csv a in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  checki "csv rows"
    (1 + List.length (Attribution.stages a) + List.length (Attribution.regions a))
    (List.length lines);
  checks "csv header" "kind,name,cycles,steps,count" (List.hd lines)

(* ------------------------------------------------------------------ *)
(* Perfdiff                                                             *)
(* ------------------------------------------------------------------ *)

let test_perfdiff_judge () =
  let j dir ~older ~newer =
    Perfdiff.judge ~tolerance:0.05 dir ~older ~newer
  in
  let check_verdict label expected (_, got) =
    checkb label true (got = expected)
  in
  check_verdict "throughput drop is a regression" Perfdiff.Regression
    (j Perfdiff.Higher_better ~older:100.0 ~newer:90.0);
  check_verdict "throughput gain is an improvement" Perfdiff.Improvement
    (j Perfdiff.Higher_better ~older:100.0 ~newer:120.0);
  check_verdict "small drift is within tolerance" Perfdiff.Within
    (j Perfdiff.Higher_better ~older:100.0 ~newer:96.0);
  check_verdict "cost increase is a regression" Perfdiff.Regression
    (j Perfdiff.Lower_better ~older:10.0 ~newer:11.0);
  check_verdict "cost decrease is an improvement" Perfdiff.Improvement
    (j Perfdiff.Lower_better ~older:10.0 ~newer:9.0);
  check_verdict "zero to zero is within" Perfdiff.Within
    (j Perfdiff.Lower_better ~older:0.0 ~newer:0.0);
  check_verdict "zero to nonzero counts full change" Perfdiff.Regression
    (j Perfdiff.Lower_better ~older:0.0 ~newer:5.0);
  let change, _ = j Perfdiff.Higher_better ~older:100.0 ~newer:90.0 in
  checkf "change is fractional" (-0.1) change

let bench_doc rows =
  Printf.sprintf
    {|{"host":{"cores":4,"ocaml_version":"5.1.1"},"benches":[%s]}|}
    (String.concat ","
       (List.map
          (fun (name, ips, alloc, cycles) ->
            Printf.sprintf
              {|{"name":%S,"guest_ips":%g,"alloc_per_instr":%g,"cycles":%g}|}
              name ips alloc cycles)
          rows))

let test_perfdiff_report () =
  let old_doc =
    bench_doc [ ("gzip", 1e6, 10.0, 5e6); ("mcf", 2e6, 8.0, 9e6) ]
  in
  let new_doc =
    bench_doc [ ("gzip", 8e5, 10.0, 5e6); ("swim", 3e6, 7.0, 1e6) ]
  in
  let report =
    match Perfdiff.of_strings ~tolerance:0.05 old_doc new_doc with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  checki "three deltas for the common bench" 3
    (List.length report.Perfdiff.deltas);
  checkb "gzip ips regressed" true
    (List.exists
       (fun d ->
         d.Perfdiff.bench = "gzip"
         && d.Perfdiff.metric = "guest_ips"
         && d.Perfdiff.verdict = Perfdiff.Regression)
       report.Perfdiff.deltas);
  checkb "mcf missing" true (report.Perfdiff.missing = [ "mcf" ]);
  checkb "swim added" true (report.Perfdiff.added = [ "swim" ]);
  checki "one regression" 1 (List.length (Perfdiff.regressions report));
  let rendered = Perfdiff.render report in
  checkb "render names the regression" true
    (String.length rendered > 0
    &&
    let n = String.length rendered in
    let rec scan i =
      i + 10 <= n && (String.sub rendered i 10 = "REGRESSION" || scan (i + 1))
    in
    scan 0)

let test_perfdiff_rejects_garbage () =
  (match Perfdiff.of_strings ~tolerance:0.05 "{not json" "{}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad old file");
  match Perfdiff.of_strings ~tolerance:0.05 {|{"benches":[{}]}|} "{}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted row without name"

(* ------------------------------------------------------------------ *)
(* Host info                                                            *)
(* ------------------------------------------------------------------ *)

let test_host_info_json () =
  let h = Host_info.capture () in
  checkb "cores positive" true (h.Host_info.cores >= 1);
  checkb "word size sane" true
    (h.Host_info.word_size = 64 || h.Host_info.word_size = 32);
  let json = Host_info.to_json h in
  (match Json.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("host json invalid: " ^ e));
  let doc = match Json.parse json with Ok v -> v | Error e -> Alcotest.fail e in
  (match Option.bind (Json.member "ocaml_version" doc) Json.as_string with
  | Some v -> checks "version matches Sys" Sys.ocaml_version v
  | None -> Alcotest.fail "no ocaml_version");
  match Option.bind (Json.member "cores" doc) Json.as_number with
  | Some c -> checki "cores round-trip" h.Host_info.cores (int_of_float c)
  | None -> Alcotest.fail "no cores"

let suite =
  [
    ("span null sink is a no-op", `Quick, test_span_null_is_noop);
    ("span emission and nesting", `Quick, test_span_emission);
    ("span wrap exception-safe", `Quick, test_span_wrap_exception_safe);
    ("profiler tree from engine run", `Quick, test_profiler_tree_from_engine);
    ("folded stacks well-formed", `Quick, test_folded_well_formed);
    ("profile json valid", `Quick, test_profile_json_valid);
    ( "profiler tolerates interleaved ends",
      `Quick,
      test_profiler_tolerates_interleaved_ends );
    ("null-sink identity", `Quick, test_null_sink_identity);
    ("openmetrics round-trip", `Quick, test_openmetrics_roundtrip);
    ("openmetrics deterministic", `Quick, test_openmetrics_determinism);
    ("openmetrics rejects corrupt", `Quick, test_openmetrics_rejects_corrupt);
    ("attribution reconciles with counters", `Quick, test_attribution_reconciles);
    ("perfdiff judge verdicts", `Quick, test_perfdiff_judge);
    ("perfdiff report", `Quick, test_perfdiff_report);
    ("perfdiff rejects garbage", `Quick, test_perfdiff_rejects_garbage);
    ("host info json", `Quick, test_host_info_json);
  ]
