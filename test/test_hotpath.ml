(* The zero-allocation hot path.  Four contracts pin it down:
   - the hand-split 32-bit-halves PRNG must match a straightforward
     Int64 SplitMix64 reference bit for bit, on every derived draw;
   - the predecoded dispatch table ([Machine.step]) must be
     step-identical to the retained [Instr.t]-matching reference
     decoder ([Machine.step_spec]) over a population of generated
     programs, traps and PRNG draws included;
   - the steady-state interpreter loop must not allocate (a hard
     [Gc.minor_words] budget per million steps — this is the number
     the CI alloc-gate keeps honest end to end);
   - [tpdbt perfdiff] must refuse BENCH files without host metadata
     (exit 2) and must judge only alloc_per_instr under --alloc-only. *)

module Instr = Tpdbt_isa.Instr
module Program = Tpdbt_isa.Program
module Reg = Tpdbt_isa.Reg
module Machine = Tpdbt_vm.Machine
module Prng = Tpdbt_vm.Prng
module Gen = Tpdbt_fuzz.Gen

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let r = Reg.of_int

(* ------------------------------------------------------------------ *)
(* PRNG vs Int64 SplitMix64 reference                                   *)
(* ------------------------------------------------------------------ *)

(* The textbook formulation the split-halves implementation must
   reproduce exactly. *)
let sm64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let seeds =
  [ 0L; 1L; 2L; 42L; -1L; 0x123456789ABCDEFL; Int64.max_int; Int64.min_int ]

let test_prng_matches_reference () =
  List.iter
    (fun seed ->
      let p = Prng.create ~seed and state = ref seed in
      for i = 1 to 10_000 do
        let want = sm64_next state in
        let got = Prng.next_int64 p in
        if got <> want then
          Alcotest.failf "seed %Ld draw %d: got %Lx want %Lx" seed i got want
      done)
    seeds

let test_prng_below_matches_reference () =
  let bounds = [| 1; 2; 3; 7; 10; 100; 12345; 1 lsl 30 |] in
  List.iter
    (fun seed ->
      let p = Prng.create ~seed and state = ref seed in
      for i = 1 to 10_000 do
        let bound = bounds.(i mod Array.length bounds) in
        let z = sm64_next state in
        let want = Int64.to_int (Int64.shift_right_logical z 2) mod bound in
        let got = Prng.below p bound in
        if got <> want then
          Alcotest.failf "seed %Ld draw %d below %d: got %d want %d" seed i
            bound got want
      done)
    seeds

let test_prng_float_matches_reference () =
  List.iter
    (fun seed ->
      let p = Prng.create ~seed and state = ref seed in
      for i = 1 to 10_000 do
        let z = sm64_next state in
        let want =
          float_of_int (Int64.to_int (Int64.shift_right_logical z 11))
          /. 9007199254740992.0
        in
        let got = Prng.float p in
        if got <> want then
          Alcotest.failf "seed %Ld draw %d: got %h want %h" seed i got want
      done)
    seeds

(* ------------------------------------------------------------------ *)
(* Dispatch table vs reference decoder, in lockstep                     *)
(* ------------------------------------------------------------------ *)

(* Generated programs terminate (halt, trap, or fall off the end) well
   under this; see Gen's termination argument. *)
let lockstep_cap = 300_000

let show_result = function
  | Ok Machine.Stepped -> "stepped"
  | Ok (Machine.Branched { taken }) ->
      if taken then "branch-taken" else "branch-not-taken"
  | Ok Machine.Jumped -> "jumped"
  | Ok Machine.Called -> "called"
  | Ok Machine.Returned -> "returned"
  | Ok Machine.Halted -> "halted"
  | Error t -> Format.asprintf "trap %a" Machine.pp_trap t

let lockstep seed prog ~mem_words =
  let fast = Machine.create ~mem_words ~seed prog in
  let spec = Machine.create ~mem_words ~seed prog in
  let steps = ref 0 in
  let running = ref true in
  while !running && !steps < lockstep_cap do
    let ef = Machine.step fast in
    let es = Machine.step_spec spec in
    if ef <> es then
      Alcotest.failf "seed %Ld step %d: table %s vs spec %s" seed !steps
        (show_result ef) (show_result es);
    if Machine.pc fast <> Machine.pc spec then
      Alcotest.failf "seed %Ld step %d: pc %d vs %d" seed !steps
        (Machine.pc fast) (Machine.pc spec);
    incr steps;
    match ef with Ok Machine.Halted | Error _ -> running := false | Ok _ -> ()
  done;
  checkb "terminated under the cap" false !running;
  checki "steps agree" (Machine.steps spec) (Machine.steps fast);
  checkb "halt state agrees" true (Machine.halted fast = Machine.halted spec);
  checkb "traps agree" true
    (Machine.last_trap fast = Machine.last_trap spec);
  List.iter
    (fun reg ->
      checki
        (Printf.sprintf "seed %Ld: %s agrees" seed (Reg.to_string reg))
        (Machine.reg spec reg) (Machine.reg fast reg))
    Reg.all;
  checkb "outputs agree" true (Machine.outputs fast = Machine.outputs spec)

let test_dispatch_table_identity () =
  let mem_words = Gen.default.Gen.mem_words in
  for seed = 1 to 30 do
    let seed = Int64.of_int (seed * 7919) in
    let prog = Gen.program (Prng.create ~seed) Gen.default in
    lockstep seed prog ~mem_words
  done

(* ------------------------------------------------------------------ *)
(* Steady-state allocation budget                                       *)
(* ------------------------------------------------------------------ *)

(* One loop iteration = 5 steps over the ALU / load / store / branch
   mix; [trips] iterations then halt. *)
let tight_loop trips =
  Program.make
    [|
      Instr.Movi (r 0, trips);
      Instr.Movi (r 2, 0);
      Instr.Movi (r 3, 64);
      Instr.Store (r 1, r 3, 0);
      Instr.Load (r 4, r 3, 0);
      Instr.Binopi (Instr.Add, r 1, r 1, 1);
      Instr.Binopi (Instr.Sub, r 0, r 0, 1);
      Instr.Br (Instr.Ne, r 0, r 2, 3);
      Instr.Halt;
    |]

(* The tentpole's contract: interpreting guest code allocates nothing
   per step.  The budget leaves room for GC bookkeeping noise but is
   four orders of magnitude below the old ~9 words/instr. *)
let alloc_budget_words_per_msteps = 10_000.0

let test_steady_state_allocation () =
  let trips = 200_000 in
  let m = Machine.create ~mem_words:1024 ~seed:1L (tight_loop trips) in
  (* Warm through decode-adjacent one-time costs before metering. *)
  for _ = 1 to 100 do
    ignore (Machine.step_code m)
  done;
  let guard = ref 0 in
  let before = Gc.minor_words () in
  while Machine.step_code m <= Machine.ev_returned && !guard < 2_000_000 do
    incr guard
  done;
  let after = Gc.minor_words () in
  checkb "loop ran to the halt" true (Machine.halted m);
  checkb "loop was long enough to meter" true (Machine.steps m > 1_000_000);
  let words = after -. before in
  let per_msteps = words /. (float_of_int (Machine.steps m) /. 1e6) in
  if per_msteps > alloc_budget_words_per_msteps then
    Alcotest.failf "steady state allocates %.0f words per 1M steps (budget %.0f)"
      per_msteps alloc_budget_words_per_msteps

(* ------------------------------------------------------------------ *)
(* perfdiff CLI: host validation and --alloc-only                       *)
(* ------------------------------------------------------------------ *)

let tpdbt = Filename.concat (Filename.concat ".." "bin") "tpdbt.exe"

let exit_of args =
  match
    Unix.system
      (Filename.quote_command tpdbt args ~stdout:Filename.null
         ~stderr:Filename.null)
  with
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> Alcotest.fail "tpdbt killed"

let rec rm_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_tree (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "tpdbt-hotpath" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_tree dir) (fun () -> f dir)

let write_bench ?(host = true) path ~ips ~alloc =
  let oc = open_out path in
  output_string oc
    (Printf.sprintf
       "{%s\"benches\":[{\"name\":\"g\",\"guest_ips\":%g,\
        \"alloc_per_instr\":%g,\"cycles\":100}]}"
       (if host then "\"host\":{\"cores\":1,\"flambda\":false}," else "")
       ips alloc);
  close_out oc

let test_perfdiff_cli_host_and_alloc_only () =
  if not (Sys.file_exists tpdbt) then Alcotest.skip ()
  else
    with_temp_dir (fun dir ->
        let old_json = Filename.concat dir "old.json" in
        let new_json = Filename.concat dir "new.json" in
        let hostless = Filename.concat dir "hostless.json" in
        (* ips regressed badly, alloc unchanged *)
        write_bench old_json ~ips:1000.0 ~alloc:1.0;
        write_bench new_json ~ips:10.0 ~alloc:1.0;
        write_bench ~host:false hostless ~ips:1000.0 ~alloc:1.0;
        checki "missing host in old file is validation (2)" 2
          (exit_of [ "perfdiff"; hostless; new_json ]);
        checki "missing host in new file is validation (2)" 2
          (exit_of [ "perfdiff"; old_json; hostless ]);
        checki "full diff sees the ips regression (3)" 3
          (exit_of [ "perfdiff"; old_json; new_json ]);
        checki "--alloc-only ignores the ips regression (0)" 0
          (exit_of [ "perfdiff"; "--alloc-only"; old_json; new_json ]);
        (* and the converse: an alloc regression is what it fails on *)
        let fat = Filename.concat dir "fat.json" in
        write_bench fat ~ips:1000.0 ~alloc:2.0;
        checki "--alloc-only fails on an alloc regression (3)" 3
          (exit_of [ "perfdiff"; "--alloc-only"; "--tolerance"; "1"; old_json;
                     fat ]))

let suite =
  [
    Alcotest.test_case "prng matches int64 reference" `Quick
      test_prng_matches_reference;
    Alcotest.test_case "prng below matches reference" `Quick
      test_prng_below_matches_reference;
    Alcotest.test_case "prng float matches reference" `Quick
      test_prng_float_matches_reference;
    Alcotest.test_case "dispatch table step-identical to spec" `Quick
      test_dispatch_table_identity;
    Alcotest.test_case "steady-state allocation budget" `Quick
      test_steady_state_allocation;
    Alcotest.test_case "perfdiff host validation and alloc-only" `Quick
      test_perfdiff_cli_host_and_alloc_only;
  ]
