let () =
  Alcotest.run "tpdbt"
    [
      ("isa", Test_isa.suite);
      ("vm", Test_vm.suite);
      ("cfg", Test_cfg.suite);
      ("numerics", Test_numerics.suite);
      ("dbt", Test_dbt.suite);
      ("profiles", Test_profiles.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("workloads", Test_workloads.suite);
      ("experiments", Test_experiments.suite);
      ("faults", Test_faults.suite);
      ("cache", Test_cache.suite);
      ("integration", Test_integration.suite);
      ("telemetry", Test_telemetry.suite);
      ("profiling", Test_profiling.suite);
      ("parallel", Test_parallel.suite);
      ("robustness", Test_robustness.suite);
      ("snapshots", Test_snapshots.suite);
      ("serve", Test_serve.suite);
      ("fuzz", Test_fuzz.suite);
      ("hotpath", Test_hotpath.suite);
    ]
