(* Cross-layer property tests: random benchmark descriptors are
   generated, realised to guest programs, run through the two-phase
   engine at random thresholds, and the system's end-to-end invariants
   are checked:

   - translation never changes program semantics (outputs and steps
     identical to a profiling-only run);
   - every formed region is structurally valid;
   - frozen counters stay near the threshold;
   - NAVEP copy frequencies are non-negative and sum to each block's
     AVEP frequency;
   - profile files round-trip the snapshot;
   - metrics are within their mathematical ranges. *)

module Spec = Tpdbt_workloads.Spec
module Engine = Tpdbt_dbt.Engine
module Snapshot = Tpdbt_dbt.Snapshot
module Region = Tpdbt_dbt.Region
module Block_map = Tpdbt_dbt.Block_map
module Metrics = Tpdbt_profiles.Metrics
module Navep = Tpdbt_profiles.Navep

(* ------------------------------------------------------------------ *)
(* Random benchmark descriptors                                         *)
(* ------------------------------------------------------------------ *)

let unit_gen =
  let open QCheck.Gen in
  let prob_gen =
    let* base = float_range 0.05 0.95 in
    let* phased = bool in
    if phased then
      let* at = float_range 0.1 0.8 in
      let* v = float_range 0.05 0.95 in
      return (Spec.prob base ~phases:[ (at, v) ])
    else return (Spec.prob base)
  in
  let trip_gen =
    let* mean = int_range 2 40 in
    return (Spec.trip mean)
  in
  frequency
    [
      ( 4,
        let* prob = prob_gen in
        let* straight = int_range 1 6 in
        let* copies = int_range 1 3 in
        return (Spec.Branch { prob; straight; copies }) );
      ( 2,
        let* trip = trip_gen in
        let* jitter = int_range 0 2 in
        let* body = int_range 1 4 in
        return (Spec.Loop { trip; jitter; body; copies = 1 }) );
      ( 1,
        let* outer = trip_gen in
        let* inner = trip_gen in
        return
          (Spec.Nest2 { outer; inner; jitter = 1; body = 2; copies = 1 }) );
      ( 1,
        let* prob = prob_gen in
        return (Spec.Call_fn { prob; body = 2; copies = 1 }) );
      ( 1,
        let* trip = trip_gen in
        let* prob = prob_gen in
        return
          (Spec.Loop_branch { trip; jitter = 1; prob; body = 2; copies = 1 })
      );
    ]

let spec_gen =
  let open QCheck.Gen in
  let* units = list_size (int_range 1 5) unit_gen in
  let* iters = int_range 500 4000 in
  let* seed = int_range 1 10_000 in
  return
    {
      Spec.name = "random";
      suite = `Int;
      units;
      ref_iters = iters;
      train_iters = max 100 (iters / 3);
      ref_seed = Int64.of_int seed;
      train_seed = Int64.of_int (seed + 1);
    }

let spec_threshold_gen =
  QCheck.Gen.(
    let* spec = spec_gen in
    let* threshold = oneofl [ 1; 3; 10; 40; 150 ] in
    return (spec, threshold))

let print_spec (spec, threshold) =
  Printf.sprintf "units=%d iters=%d seed=%Ld threshold=%d"
    (List.length spec.Spec.units)
    spec.Spec.ref_iters spec.Spec.ref_seed threshold

let arbitrary =
  QCheck.make ~print:print_spec spec_threshold_gen

let run_pair (spec, threshold) =
  let program, ref_input, _ = Spec.build spec in
  let program = Spec.apply_input program ref_input in
  let run config =
    Engine.run
      (Engine.create ~config ~seed:ref_input.Spec.seed program)
  in
  let inip = run (Engine.config ~threshold ()) in
  let avep = run Engine.profiling_only in
  (inip, avep)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let prop_semantics_preserved =
  QCheck.Test.make ~name:"translation preserves semantics" ~count:40 arbitrary
    (fun input ->
      let inip, avep = run_pair input in
      inip.Engine.error = None && avep.Engine.error = None
      && inip.Engine.outputs = avep.Engine.outputs
      && inip.Engine.steps = avep.Engine.steps)

let prop_regions_valid =
  QCheck.Test.make ~name:"all regions validate" ~count:40 arbitrary
    (fun input ->
      let inip, _ = run_pair input in
      List.for_all
        (fun region -> Result.is_ok (Region.validate region))
        inip.Engine.snapshot.Snapshot.regions)

let prop_frozen_counters_near_threshold =
  QCheck.Test.make ~name:"frozen counters bounded" ~count:25 arbitrary
    (fun ((_, threshold) as input) ->
      let inip, _ = run_pair input in
      (* A block freezes between registration (use = T) and the next
         optimisation trigger; duplicated loop bodies can accumulate
         more before the pool fires, but never more than the global
         trigger allows: use the generous bound T * pool_trigger + slack
         scaled by the hottest loop factor. *)
      let bound = max 200 (threshold * 16 * 45) in
      List.for_all
        (fun region ->
          Array.for_all (fun u -> u <= bound) region.Region.frozen_use)
        inip.Engine.snapshot.Snapshot.regions)

let prop_navep_invariants =
  QCheck.Test.make ~name:"NAVEP frequencies partition AVEP" ~count:25 arbitrary
    (fun input ->
      let inip, avep = run_pair input in
      let navep =
        Navep.build ~inip:inip.Engine.snapshot ~avep:avep.Engine.snapshot
      in
      let bmap = inip.Engine.snapshot.Snapshot.block_map in
      let ok = ref true in
      for block = 0 to Block_map.block_count bmap - 1 do
        let copies = Navep.copies_of_block navep block in
        List.iter
          (fun (c : Navep.copy) ->
            if Navep.freq navep c.Navep.node < -1e-9 then ok := false)
          copies;
        let expected = Snapshot.block_freq avep.Engine.snapshot block in
        if copies <> [] && expected > 0.0 then begin
          let total = Navep.total_block_freq navep block in
          if abs_float (total -. expected) > 1e-6 *. (1.0 +. expected) then
            ok := false
        end
      done;
      !ok)

let prop_metrics_in_range =
  QCheck.Test.make ~name:"metrics are within range" ~count:25 arbitrary
    (fun input ->
      let inip, avep = run_pair input in
      let c =
        Metrics.compare_snapshots ~inip:inip.Engine.snapshot
          ~avep:avep.Engine.snapshot
      in
      let in01 v = v >= 0.0 && v <= 1.0 +. 1e-9 in
      in01 c.Metrics.bp_mismatch && in01 c.Metrics.lp_mismatch
      && c.Metrics.sd_bp >= 0.0 && c.Metrics.sd_bp <= 1.0 +. 1e-9
      && c.Metrics.sd_cp >= 0.0 && c.Metrics.sd_lp >= 0.0)

let prop_profile_io_roundtrip =
  QCheck.Test.make ~name:"profile files roundtrip" ~count:20 arbitrary
    (fun input ->
      let inip, _ = run_pair input in
      let snapshot = inip.Engine.snapshot in
      match
        Tpdbt_profiles.Profile_io.of_string
          (Tpdbt_profiles.Profile_io.to_string snapshot)
      with
      | Error _ -> false
      | Ok loaded ->
          loaded.Snapshot.use = snapshot.Snapshot.use
          && loaded.Snapshot.taken = snapshot.Snapshot.taken
          && List.length loaded.Snapshot.regions
             = List.length snapshot.Snapshot.regions)

let prop_adaptive_semantics =
  QCheck.Test.make ~name:"adaptive mode preserves semantics" ~count:20
    arbitrary (fun (spec, threshold) ->
      let program, ref_input, _ = Spec.build spec in
      let program = Spec.apply_input program ref_input in
      let run config =
        Engine.run (Engine.create ~config ~seed:ref_input.Spec.seed program)
      in
      let fixed = run (Engine.config ~threshold ()) in
      let adaptive = run (Engine.config ~adaptive:true ~threshold ()) in
      fixed.Engine.outputs = adaptive.Engine.outputs
      && fixed.Engine.steps = adaptive.Engine.steps)

let prop_profiling_ops_monotone =
  QCheck.Test.make ~name:"profiling ops grow with threshold" ~count:15
    (QCheck.make ~print:(fun s -> print_spec (s, 0)) spec_gen)
    (fun spec ->
      let program, ref_input, _ = Spec.build spec in
      let program = Spec.apply_input program ref_input in
      let ops threshold =
        let config =
          if threshold = 0 then Engine.profiling_only
          else Engine.config ~threshold ()
        in
        (Engine.run (Engine.create ~config ~seed:ref_input.Spec.seed program))
          .Engine.profiling_ops
      in
      let o10 = ops 10 and o100 = ops 100 and avep = ops 0 in
      o10 <= o100 + 1000 && o100 <= avep + 1000)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_semantics_preserved;
      prop_regions_valid;
      prop_frozen_counters_near_threshold;
      prop_navep_invariants;
      prop_metrics_in_range;
      prop_profile_io_roundtrip;
      prop_adaptive_semantics;
      prop_profiling_ops_monotone;
    ]
