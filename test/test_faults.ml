(* Fault injection, typed recovery and resumable sweeps: plan
   determinism, injector mechanics, machine-level typed traps, engine
   recovery equivalence, and checkpoint byte-identity. *)

module Assembler = Tpdbt_isa.Assembler
module Program = Tpdbt_isa.Program
module Instr = Tpdbt_isa.Instr
module Machine = Tpdbt_vm.Machine
module Engine = Tpdbt_dbt.Engine
module Error = Tpdbt_dbt.Error
module Perf_model = Tpdbt_dbt.Perf_model
module Fault = Tpdbt_faults.Fault
module Plan = Tpdbt_faults.Plan
module Injector = Tpdbt_faults.Injector
module Spec = Tpdbt_workloads.Spec
module Runner = Tpdbt_experiments.Runner
module Checkpoint = Tpdbt_experiments.Checkpoint
module Campaign = Tpdbt_experiments.Campaign

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let hot_loop_src =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 20000
    movi r4, 0
loop:
    addi r1, r1, 1
    rnd r3, 100
    movi r5, 85
    blt r3, r5, taken
    addi r4, r4, 2
    jmp join
taken:
    addi r4, r4, 1
join:
    blt r1, r2, loop
    out r4
    out r1
    halt
|}

let run_with ?faults ?(retry_limit = 3) ~threshold src =
  let p = Assembler.assemble_exn src in
  let config = Engine.config ?faults ~retry_limit ~threshold () in
  Engine.run (Engine.create ~config ~seed:42L p)

(* -- plans ------------------------------------------------------------- *)

let test_plan_deterministic () =
  let make () = Plan.make ~count:16 ~horizon:1_000_000 ~seed:99L () in
  checkb "same seed, same plan" true (Plan.arms (make ()) = Plan.arms (make ()));
  checki "count respected" 16 (Plan.count (make ()));
  let other = Plan.make ~count:16 ~horizon:1_000_000 ~seed:100L () in
  checkb "different seed, different plan" false
    (Plan.arms (make ()) = Plan.arms other);
  let sorted = Plan.arms (make ()) in
  checkb "arms sorted by step" true
    (List.sort (fun a b -> compare a.Fault.step b.Fault.step) sorted = sorted);
  List.iter
    (fun a ->
      checkb "step in horizon" true (a.Fault.step >= 0 && a.Fault.step < 1_000_000))
    sorted

let test_plan_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "empty kinds" true (raises (fun () ->
      Plan.make ~kinds:[] ~horizon:10 ~seed:1L ()));
  checkb "bad horizon" true (raises (fun () ->
      Plan.make ~horizon:0 ~seed:1L ()));
  checkb "negative count" true (raises (fun () ->
      Plan.make ~count:(-1) ~horizon:10 ~seed:1L ()))

(* -- injector ---------------------------------------------------------- *)

let test_injector_mechanics () =
  let arm step kind = { Fault.step; kind; salt = 0L } in
  let plan =
    Plan.of_arms ~seed:0L
      [ arm 10 Fault.Block_corrupt; arm 5 Fault.Retranslate_fail;
        arm 20 Fault.Retranslate_fail ]
  in
  let inj = Injector.create plan in
  checkb "nothing due early" false (Injector.due inj ~step:4);
  checkb "due at first step" true (Injector.due inj ~step:5);
  checkb "wrong kind not taken" true
    (Injector.take inj ~step:5 Fault.Block_corrupt = None);
  (match Injector.take inj ~step:7 Fault.Retranslate_fail with
  | Some a ->
      checki "earliest arm" 5 a.Fault.step;
      Injector.record inj a ~fired_step:7 ~target:3
  | None -> Alcotest.fail "expected an arm");
  checkb "later arm still pending" true
    (Injector.take inj ~step:7 Fault.Retranslate_fail = None);
  let report = Injector.report inj in
  checki "one fired" 1 (List.length report.Fault.fired);
  checki "two unfired" 2 (List.length report.Fault.unfired);
  checki "injected counts targets" 1 (Fault.injected report)

(* -- machine typed traps ----------------------------------------------- *)

let test_machine_poison_trap () =
  let p = Assembler.assemble_exn hot_loop_src in
  let m = Machine.create ~seed:1L p in
  Machine.poison m 3;
  checkb "poisoned queried" true (Machine.poisoned m 3);
  (match Machine.run m with
  | Error (Machine.Illegal_instruction 3) -> ()
  | Error other -> Alcotest.failf "wrong trap: %a" Machine.pp_trap other
  | Ok () -> Alcotest.fail "expected illegal-instruction trap");
  checkb "poison out of range rejected" true
    (try Machine.poison m 100_000; false with Invalid_argument _ -> true)

let test_machine_branch_out_of_range () =
  (* Program.make validates static targets, so model a corrupted code
     image by building the record directly: the machine must trap with
     a typed error rather than crash or jump wild. *)
  let p = { Program.code = [| Instr.Jmp 99 |]; entry = 0; data_init = [] } in
  let m = Machine.create ~seed:1L p in
  match Machine.run m with
  | Error (Machine.Branch_out_of_range { pc = 0; target = 99 }) -> ()
  | Error other -> Alcotest.failf "wrong trap: %a" Machine.pp_trap other
  | Ok () -> Alcotest.fail "expected branch-out-of-range trap"

(* -- engine fault recovery --------------------------------------------- *)

let test_engine_guest_trap_typed () =
  let plan =
    Plan.of_arms ~seed:0L [ { Fault.step = 500; kind = Fault.Guest_trap; salt = 0L } ]
  in
  let result = run_with ~faults:plan ~threshold:20 hot_loop_src in
  (match result.Engine.error with
  | Some (Error.Trap (Machine.Illegal_instruction _)) -> ()
  | Some other -> Alcotest.failf "wrong error: %s" (Error.to_string other)
  | None -> Alcotest.fail "expected a typed guest trap");
  match result.Engine.faults with
  | Some report -> checki "the arm fired" 1 (List.length report.Fault.fired)
  | None -> Alcotest.fail "fault report missing"

let test_engine_recovery_equivalence () =
  (* Recoverable faults must not change guest-visible behaviour. *)
  let clean = run_with ~threshold:20 hot_loop_src in
  checkb "clean run clean" true (clean.Engine.error = None);
  let plan =
    Plan.make ~kinds:Fault.recoverable_kinds ~count:6
      ~horizon:clean.Engine.steps ~seed:7L ()
  in
  let faulty = run_with ~faults:plan ~threshold:20 hot_loop_src in
  checkb "no error" true (faulty.Engine.error = None);
  checkb "same outputs" true (faulty.Engine.outputs = clean.Engine.outputs);
  checki "same steps" clean.Engine.steps faulty.Engine.steps

let test_engine_corruption_keeps_avep_counters () =
  (* Corrupting translations in a profiling-only run retranslates the
     block but must not touch its use/taken counters: the AVEP profile
     of a faulty run equals the clean one exactly. *)
  let clean = run_with ~threshold:0 hot_loop_src in
  let plan =
    Plan.make ~kinds:[ Fault.Block_corrupt ] ~count:5
      ~horizon:clean.Engine.steps ~seed:3L ()
  in
  let faulty = run_with ~faults:plan ~threshold:0 hot_loop_src in
  checkb "no error" true (faulty.Engine.error = None);
  checkb "faults landed" true
    (faulty.Engine.counters.Perf_model.faults_injected > 0);
  checkb "blocks retranslated" true
    (faulty.Engine.counters.Perf_model.blocks_retranslated > 0);
  let snap r = r.Engine.snapshot in
  checkb "use counters identical" true
    ((snap faulty).Tpdbt_dbt.Snapshot.use = (snap clean).Tpdbt_dbt.Snapshot.use);
  checkb "taken counters identical" true
    ((snap faulty).Tpdbt_dbt.Snapshot.taken
    = (snap clean).Tpdbt_dbt.Snapshot.taken)

let test_engine_retry_exhaustion () =
  (* retry_limit 0: the first injected retranslation failure is fatal —
     and fatal means a typed error, not an exception. *)
  let plan =
    Plan.of_arms ~seed:0L
      [ { Fault.step = 0; kind = Fault.Retranslate_fail; salt = 0L } ]
  in
  let result = run_with ~faults:plan ~retry_limit:0 ~threshold:20 hot_loop_src in
  match result.Engine.error with
  | Some (Error.Retranslation_failed { attempts; _ }) ->
      checkb "attempts recorded" true (attempts > 0)
  | Some other -> Alcotest.failf "wrong error: %s" (Error.to_string other)
  | None -> Alcotest.fail "expected Retranslation_failed"

let test_engine_fault_runs_deterministic () =
  let plan () = Plan.make ~count:4 ~horizon:100_000 ~seed:11L () in
  let a = run_with ~faults:(plan ()) ~threshold:20 hot_loop_src in
  let b = run_with ~faults:(plan ()) ~threshold:20 hot_loop_src in
  checkb "same error" true (a.Engine.error = b.Engine.error);
  checkb "same outputs" true (a.Engine.outputs = b.Engine.outputs);
  checki "same steps" a.Engine.steps b.Engine.steps;
  let shots r =
    match r.Engine.faults with
    | Some rep -> List.map (fun s -> (s.Fault.fired_step, s.Fault.target)) rep.Fault.fired
    | None -> []
  in
  checkb "same shots" true (shots a = shots b)

(* -- campaign ---------------------------------------------------------- *)

let mini name =
  {
    Spec.name;
    suite = `Int;
    units =
      [
        Spec.Branch { prob = Spec.prob 0.8 ~train:0.6; straight = 2; copies = 2 };
        Spec.Loop { trip = Spec.trip 6; jitter = 1; body = 2; copies = 1 };
      ];
    ref_iters = 3000;
    train_iters = 800;
    ref_seed = 3L;
    train_seed = 4L;
  }

let test_campaign_no_uncaught () =
  (* shadow_sample 1 arms the oracle: Silent_corruption arms are in the
     default kind mix, and undetected corruption classifies Uncaught. *)
  let campaign =
    Campaign.run ~threshold:5 ~trials:6 ~seed:17L ~shadow_sample:1 (mini "mini")
  in
  checki "all trials ran" 6 (List.length campaign.Campaign.trials);
  checkb "no uncaught exceptions" true (Campaign.ok campaign);
  let { Campaign.recovered; degraded; failed; uncaught } =
    Campaign.tally campaign
  in
  checki "tally covers all trials" 6 (recovered + degraded + failed + uncaught);
  checkb "renders" true
    (String.length (Format.asprintf "%a" Campaign.render campaign) > 0)

let test_campaign_deterministic () =
  let go () = Campaign.run ~threshold:5 ~trials:4 ~seed:23L (mini "mini") in
  let a = go () and b = go () in
  let outcomes c =
    List.map (fun t -> Campaign.outcome_name t.Campaign.outcome) c.Campaign.trials
  in
  checkb "same outcomes" true (outcomes a = outcomes b)

let test_campaign_recoverable_kinds_recover () =
  let campaign =
    Campaign.run ~threshold:5 ~trials:4 ~kinds:Fault.recoverable_kinds
      ~seed:5L (mini "mini")
  in
  List.iter
    (fun t ->
      checkb "trial recovered" true (t.Campaign.outcome = Campaign.Recovered))
    campaign.Campaign.trials

(* -- resumable sweeps -------------------------------------------------- *)

let mini_thresholds = [ ("100", 1); ("1k", 10) ]

let with_temp_dir f =
  let dir = Filename.temp_file "tpdbt-ckpt" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> Sys.remove (Filename.concat dir file))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_checkpoint_roundtrip () =
  let bench = mini "mini-ckpt" in
  let data = Runner.run_benchmark ~thresholds:mini_thresholds bench in
  let text = Checkpoint.data_to_string data in
  match Checkpoint.data_of_string bench text with
  | Checkpoint.Missing | Checkpoint.Stale_version _ ->
      Alcotest.fail "roundtrip misclassified"
  | Checkpoint.Corrupt reason -> Alcotest.fail ("roundtrip rejected: " ^ reason)
  | Checkpoint.Valid (Checkpoint.Suspended _) ->
      Alcotest.fail "finished checkpoint classified as suspended"
  | Checkpoint.Valid (Checkpoint.Finished reloaded) ->
      Alcotest.check Alcotest.string "byte-identical reserialisation" text
        (Checkpoint.data_to_string reloaded);
      checkb "cycles float exact" true
        (reloaded.Runner.avep.Engine.counters.Perf_model.cycles
        = data.Runner.avep.Engine.counters.Perf_model.cycles)

let test_checkpoint_resume_identity () =
  with_temp_dir (fun dir ->
      let benches = [ mini "mini-a"; mini "mini-b" ] in
      let statuses = ref [] in
      let progress n s = statuses := (n, Runner.status_name s) :: !statuses in
      let first =
        Checkpoint.run_many ~thresholds:mini_thresholds ~progress ~dir benches
      in
      checkb "first pass ran everything" true
        (List.for_all (fun (_, s) -> s <> "resumed") !statuses);
      statuses := [];
      let second =
        Checkpoint.run_many ~thresholds:mini_thresholds ~progress ~dir benches
      in
      checkb "second pass resumed everything" true
        (!statuses <> []
        && List.for_all (fun (_, s) -> s = "resumed") !statuses);
      checkb "no failures" true
        (first.Runner.failures = [] && second.Runner.failures = []);
      let serialize sweep =
        String.concat "\n" (List.map Checkpoint.data_to_string sweep.Runner.data)
      in
      Alcotest.check Alcotest.string "resumed sweep byte-identical"
        (serialize first) (serialize second))

let test_checkpoint_rejects_stale () =
  with_temp_dir (fun dir ->
      let bench = mini "mini-stale" in
      let data = Runner.run_benchmark ~thresholds:mini_thresholds bench in
      Checkpoint.save ~dir data;
      checkb "loads under same thresholds" true
        (Checkpoint.load ~thresholds:mini_thresholds ~dir bench <> None);
      checkb "rejected under different thresholds" true
        (Checkpoint.load ~thresholds:[ ("100", 1) ] ~dir bench = None);
      checkb "other bench not found" true
        (Checkpoint.load ~thresholds:mini_thresholds ~dir (mini "other") = None);
      (* Truncate the file: must read as absent, not crash. *)
      let path = Checkpoint.path ~dir bench in
      let text =
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let oc = open_out path in
      output_string oc (String.sub text 0 (String.length text / 2));
      close_out oc;
      checkb "truncated checkpoint treated as absent" true
        (Checkpoint.load ~thresholds:mini_thresholds ~dir bench = None))

let suite =
  [
    ("plan deterministic", `Quick, test_plan_deterministic);
    ("plan validation", `Quick, test_plan_validation);
    ("injector mechanics", `Quick, test_injector_mechanics);
    ("machine poison trap", `Quick, test_machine_poison_trap);
    ("machine branch out of range", `Quick, test_machine_branch_out_of_range);
    ("engine guest trap typed", `Quick, test_engine_guest_trap_typed);
    ("engine recovery equivalence", `Quick, test_engine_recovery_equivalence);
    ( "corruption keeps AVEP counters",
      `Quick,
      test_engine_corruption_keeps_avep_counters );
    ("engine retry exhaustion", `Quick, test_engine_retry_exhaustion);
    ("fault runs deterministic", `Quick, test_engine_fault_runs_deterministic);
    ("campaign no uncaught", `Quick, test_campaign_no_uncaught);
    ("campaign deterministic", `Quick, test_campaign_deterministic);
    ( "campaign recoverable kinds recover",
      `Quick,
      test_campaign_recoverable_kinds_recover );
    ("checkpoint roundtrip", `Quick, test_checkpoint_roundtrip);
    ("checkpoint resume identity", `Quick, test_checkpoint_resume_identity);
    ("checkpoint rejects stale", `Quick, test_checkpoint_rejects_stale);
  ]
