(* Tests for the telemetry subsystem: event stream semantics, metrics
   registry, exporters, and the zero-cost-when-disabled guarantee. *)

module Assembler = Tpdbt_isa.Assembler
module Engine = Tpdbt_dbt.Engine
module Perf_model = Tpdbt_dbt.Perf_model
module Snapshot = Tpdbt_dbt.Snapshot
module Event = Tpdbt_telemetry.Event
module Sink = Tpdbt_telemetry.Sink
module Metrics = Tpdbt_telemetry.Metrics
module Json = Tpdbt_telemetry.Json
module Chrome_trace = Tpdbt_telemetry.Chrome_trace
module Summary = Tpdbt_telemetry.Summary

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let hot_loop_src =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 20000
loop:
    rnd r3, 100
    movi r4, 70
    blt r3, r4, hot
    addi r5, r5, 1
    jmp join
hot:
    addi r6, r6, 1
join:
    addi r1, r1, 1
    blt r1, r2, loop
    out r6
    halt
|}

let run_with_sink ?(threshold = 50) ?(adaptive = false) ?(seed = 42L) ~sink src
    =
  let p = Assembler.assemble_exn src in
  let config = Engine.config ~threshold ~adaptive ~sink () in
  Engine.run (Engine.create ~config ~seed p)

let traced_events ?threshold ?adaptive ?seed src =
  let sink, buffer = Sink.memory () in
  let result = run_with_sink ?threshold ?adaptive ?seed ~sink src in
  (result, Sink.contents buffer)

(* ------------------------------------------------------------------ *)
(* Event stream semantics                                               *)
(* ------------------------------------------------------------------ *)

(* The engine's lifecycle invariants, checked on a worked example:
   every block is translated before it is registered, registered before
   any pool trigger that includes it, regions form only inside an
   optimisation round that a pool trigger opened, and region entries /
   side exits / completions only follow the region's formation. *)
let test_event_ordering () =
  let _result, events = traced_events ~threshold:50 hot_loop_src in
  checkb "events nonempty" true (events <> []);
  let translated = Hashtbl.create 8 in
  let registered = Hashtbl.create 8 in
  let formed = Hashtbl.create 8 in
  let entered = Hashtbl.create 8 in
  let in_optimize = ref false in
  let pool_triggers = ref 0 in
  let prev_step = ref 0 in
  let span_stack = ref [] in
  List.iter
    (fun { Event.step; event } ->
      checkb "steps non-decreasing" true (step >= !prev_step);
      prev_step := step;
      match event with
      | Event.Block_translated { block; _ } ->
          checkb "translated once" false (Hashtbl.mem translated block);
          Hashtbl.replace translated block ()
      | Event.Block_registered { block; use; threshold } ->
          checkb "translated before registered" true
            (Hashtbl.mem translated block);
          checkb "registered once" false (Hashtbl.mem registered block);
          checkb "use at threshold" true (use >= threshold);
          Hashtbl.replace registered block ()
      | Event.Pool_trigger { pool_size; _ } ->
          incr pool_triggers;
          checkb "pool nonempty" true (pool_size > 0)
      | Event.Phase_begin { phase } ->
          if phase = "optimize" then begin
            checkb "optimize not nested" false !in_optimize;
            in_optimize := true
          end
      | Event.Phase_end { phase } ->
          if phase = "optimize" then begin
            checkb "optimize was open" true !in_optimize;
            in_optimize := false
          end
      | Event.Region_formed { region; entry_block; slots; _ } ->
          checkb "formed inside optimisation round" true !in_optimize;
          checkb "entry block was registered or translated" true
            (Hashtbl.mem translated entry_block);
          checkb "slots positive" true (slots > 0);
          Hashtbl.replace formed region ()
      | Event.Region_entry { region } ->
          checkb "entered after formation" true (Hashtbl.mem formed region);
          Hashtbl.replace entered region ()
      | Event.Region_side_exit { region; _ } | Event.Region_completion { region }
        ->
          checkb "exit after entry" true (Hashtbl.mem entered region)
      | Event.Region_dissolved { region; _ } ->
          checkb "dissolved after formation" true (Hashtbl.mem formed region)
      | Event.Fault_injected _ | Event.Recovery _ ->
          checkb "no faults in clean run" true false
      | Event.Cache_evicted _ | Event.Cache_flushed _ ->
          checkb "no cache pressure in unbounded run" true false
      | Event.Shadow_divergence _ | Event.Region_quarantined _
      | Event.Engine_degraded _ ->
          checkb "no divergence in clean run" true false
      | Event.Span_begin { span } -> span_stack := span :: !span_stack
      | Event.Span_end { span; wall_ns; minor_words; major_words } -> (
          (* A single engine's spans are strictly nested: every end
             closes the innermost open span. *)
          checkb "span end has non-negative wall time" true (wall_ns >= 0);
          checkb "span allocation deltas non-negative" true
            (minor_words >= 0 && major_words >= 0);
          match !span_stack with
          | top :: rest ->
              checkb "span end closes the innermost span" true (top = span);
              span_stack := rest
          | [] -> checkb "span end without open span" true false)
      | Event.Stage_cost { cycles; steps; count; _ } ->
          checkb "stage cost emitted inside the run span" true
            (List.mem "engine.run" !span_stack);
          checkb "stage cost totals sane" true
            (cycles >= 0.0 && steps >= 0 && count > 0)
      | Event.Region_cost { region; cycles; instrs } ->
          checkb "region cost for a formed region" true
            (Hashtbl.mem formed region);
          checkb "region cost totals sane" true (cycles >= 0.0 && instrs >= 0)
      | Event.Worker_start _ | Event.Worker_steal _ | Event.Worker_finish _
      | Event.Supervisor_retry _ | Event.Supervisor_give_up _
      | Event.Breaker_open _ | Event.Worker_lost _ | Event.Pool_degraded _
      | Event.Checkpoint_corrupt _ ->
          checkb "no scheduler events from a single engine run" true false)
    events;
  checkb "pool triggered" true (!pool_triggers > 0);
  checkb "regions formed" true (Hashtbl.length formed > 0);
  checkb "regions entered" true (Hashtbl.length entered > 0);
  checkb "optimize rounds balanced" false !in_optimize;
  checkb "spans balanced" true (!span_stack = [])

let test_event_counts_match_counters () =
  (* The event stream and the perf-model counters are two views of the
     same run; their totals must agree. *)
  let result, events = traced_events ~threshold:50 hot_loop_src in
  let count pred = List.length (List.filter pred events) in
  let c = result.Engine.counters in
  checki "region entries" c.Perf_model.region_entries
    (count (fun e ->
         match e.Event.event with Event.Region_entry _ -> true | _ -> false));
  checki "side exits" c.Perf_model.side_exits
    (count (fun e ->
         match e.Event.event with
         | Event.Region_side_exit _ -> true
         | _ -> false));
  checki "completions" c.Perf_model.region_completions
    (count (fun e ->
         match e.Event.event with
         | Event.Region_completion _ -> true
         | _ -> false));
  checki "regions formed" c.Perf_model.regions_formed
    (count (fun e ->
         match e.Event.event with Event.Region_formed _ -> true | _ -> false));
  checki "blocks translated" c.Perf_model.blocks_translated
    (count (fun e ->
         match e.Event.event with
         | Event.Block_translated _ -> true
         | _ -> false));
  checki "optimization rounds" c.Perf_model.optimization_rounds
    (count (fun e ->
         match e.Event.event with Event.Pool_trigger _ -> true | _ -> false))

let adaptive_src =
  {|
.entry main
main:
    movi r1, 0
    movi r2, 40000
    movi r7, 10000
loop:
    blt r1, r7, early
    addi r5, r5, 1
    jmp join
early:
    addi r6, r6, 1
join:
    addi r1, r1, 1
    blt r1, r2, loop
    out r5
    halt
|}

let test_adaptive_dissolution_events () =
  let result, events =
    traced_events ~threshold:20 ~adaptive:true ~seed:3L adaptive_src
  in
  let dissolved =
    List.filter
      (fun e ->
        match e.Event.event with Event.Region_dissolved _ -> true | _ -> false)
      events
  in
  checki "dissolution events match counter"
    result.Engine.counters.Perf_model.regions_dissolved
    (List.length dissolved);
  checkb "at least one dissolution" true (dissolved <> [])

(* ------------------------------------------------------------------ *)
(* Zero-cost-when-disabled: null sink leaves the run untouched          *)
(* ------------------------------------------------------------------ *)

let test_null_sink_result_identical () =
  let base = run_with_sink ~sink:Sink.null hot_loop_src in
  let p = Assembler.assemble_exn hot_loop_src in
  let default_cfg = Engine.config ~threshold:50 () in
  checkb "default config uses the null sink" true
    (Sink.is_null default_cfg.Engine.sink);
  let plain = Engine.run (Engine.create ~config:default_cfg ~seed:42L p) in
  checkb "outputs" true (base.Engine.outputs = plain.Engine.outputs);
  checki "steps" base.Engine.steps plain.Engine.steps;
  checkb "cycles" true
    (base.Engine.counters.Perf_model.cycles
    = plain.Engine.counters.Perf_model.cycles);
  checkb "counters" true (base.Engine.counters = plain.Engine.counters);
  checkb "region stats" true
    (base.Engine.region_stats = plain.Engine.region_stats);
  checkb "use counters" true
    (base.Engine.snapshot.Snapshot.use = plain.Engine.snapshot.Snapshot.use);
  checkb "taken counters" true
    (base.Engine.snapshot.Snapshot.taken = plain.Engine.snapshot.Snapshot.taken)

let test_tracing_does_not_change_result () =
  (* Telemetry observes; it must never steer. *)
  let plain = run_with_sink ~sink:Sink.null hot_loop_src in
  let traced, _events = traced_events hot_loop_src in
  checkb "outputs" true (plain.Engine.outputs = traced.Engine.outputs);
  checki "steps" plain.Engine.steps traced.Engine.steps;
  checkb "cycles" true
    (plain.Engine.counters.Perf_model.cycles
    = traced.Engine.counters.Perf_model.cycles)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                     *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.count" in
  Metrics.incr c;
  Metrics.add c 4;
  checki "counter" 5 (Metrics.counter_value c);
  checki "same instrument" 5 (Metrics.counter_value (Metrics.counter m "a.count"));
  let g = Metrics.gauge m "a.gauge" in
  Metrics.set g 2.5;
  checkb "gauge" true (Metrics.gauge_value g = 2.5);
  let h = Metrics.histogram m "a.hist" ~buckets:[ 1.0; 2.0 ] in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 99.0 ];
  checki "hist count" 4 (Metrics.histogram_count h);
  checkb "hist sum" true (Metrics.histogram_sum h = 102.0);
  (match Metrics.bucket_counts h with
  | [ (1.0, 2); (2.0, 1); (bound, 1) ] -> checkb "inf bound" true (bound = infinity)
  | _ -> Alcotest.fail "unexpected buckets");
  checkb "names sorted" true
    (Metrics.names m = [ "a.count"; "a.gauge"; "a.hist" ]);
  (* Kind clashes are rejected. *)
  checkb "clash rejected" true
    (try
       ignore (Metrics.gauge m "a.count");
       false
     with Invalid_argument _ -> true);
  (* Both dumps are well-formed. *)
  checkb "render has counter" true
    (String.length (Metrics.render m) > 0);
  match Json.validate (Metrics.to_json m) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_collect_sink_metrics () =
  let registry = Metrics.create () in
  let collector = Sink.collect ~into:registry in
  let result = run_with_sink ~threshold:50 ~sink:collector hot_loop_src in
  collector.Sink.close ();
  let counter name = Metrics.counter_value (Metrics.counter registry name) in
  checki "entry counter matches run"
    result.Engine.counters.Perf_model.region_entries
    (counter "events.region_entry");
  checki "formation counter matches run"
    result.Engine.counters.Perf_model.regions_formed
    (counter "events.region_formed");
  let slots = Metrics.histogram registry "region.slots" ~buckets:[ 1.0 ] in
  checki "slots histogram populated"
    result.Engine.counters.Perf_model.regions_formed
    (Metrics.histogram_count slots);
  let rates =
    Metrics.histogram registry "region.side_exit_rate" ~buckets:[ 1.0 ]
  in
  checkb "side-exit rates observed at close" true
    (Metrics.histogram_count rates > 0);
  (* Recording the perf counters lands them beside the event metrics. *)
  Perf_model.record result.Engine.counters registry;
  checki "perf counter recorded"
    result.Engine.counters.Perf_model.region_entries
    (counter "perf.region_entries")

(* ------------------------------------------------------------------ *)
(* Exporters                                                            *)
(* ------------------------------------------------------------------ *)

let test_jsonl_export_valid () =
  let _result, events = traced_events ~threshold:50 hot_loop_src in
  List.iter
    (fun stamped ->
      match Json.validate (Event.to_json stamped) with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "bad JSONL line %S: %s" (Event.to_json stamped) msg)
    events

let test_chrome_trace_valid_json () =
  let _result, events = traced_events ~threshold:50 hot_loop_src in
  let json = Chrome_trace.to_json events in
  (match Json.validate json with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (* Structure spot checks: the b/e async pairs balance per region and
     the B/E phase stack balances. *)
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i =
      i + n <= h && (String.sub haystack i n = needle || go (i + 1))
    in
    go 0
  in
  checkb "has traceEvents" true (contains "\"traceEvents\"" json);
  checkb "has async begin" true (contains "\"ph\":\"b\"" json);
  checkb "has async end" true (contains "\"ph\":\"e\"" json);
  checkb "has duration begin" true (contains "\"ph\":\"B\"" json);
  checkb "has instant" true (contains "\"ph\":\"i\"" json)

let test_json_validator () =
  let ok s = checkb s true (Json.validate s = Ok ()) in
  let bad s = checkb s true (Result.is_error (Json.validate s)) in
  ok {|{"a":1,"b":[true,false,null,-2.5e3],"c":{"d":"x\n"}}|};
  ok {|[]|};
  ok {| 42 |};
  bad {|{"a":1,}|};
  bad {|{'a':1}|};
  bad "{\"a\":1} extra";
  bad {|{"a":01}|};
  bad "";
  bad {|{"unterminated": "|}

let test_summary_renders () =
  let _result, events = traced_events ~threshold:50 hot_loop_src in
  let s = Summary.render events in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  checkb "mentions event counts" true (contains "event counts:");
  checkb "mentions regions" true (contains "regions:");
  checkb "mentions optimisation rounds" true (contains "optimisation rounds:")

let test_memory_sink_limit () =
  let sink, buffer = Sink.memory ~limit:10 () in
  for i = 1 to 25 do
    sink.Sink.emit ~step:i (Event.Region_entry { region = 0 })
  done;
  checki "kept limit" 10 (List.length (Sink.contents buffer));
  checki "dropped rest" 15 (Sink.dropped buffer);
  checkb "kept the oldest" true
    ((List.hd (Sink.contents buffer)).Event.step = 1)

let suite =
  [
    ("event ordering", `Quick, test_event_ordering);
    ("event counts match counters", `Quick, test_event_counts_match_counters);
    ("adaptive dissolution events", `Quick, test_adaptive_dissolution_events);
    ("null sink result identical", `Quick, test_null_sink_result_identical);
    ("tracing does not change result", `Quick,
     test_tracing_does_not_change_result);
    ("metrics registry", `Quick, test_metrics_registry);
    ("collect sink metrics", `Quick, test_collect_sink_metrics);
    ("jsonl export valid", `Quick, test_jsonl_export_valid);
    ("chrome trace valid json", `Quick, test_chrome_trace_valid_json);
    ("json validator", `Quick, test_json_validator);
    ("summary renders", `Quick, test_summary_renders);
    ("memory sink limit", `Quick, test_memory_sink_limit);
  ]
