(** Nestable profiling spans.

    A span brackets a stretch of host work — an optimisation round,
    a region formation, a worker's task — and measures three clocks at
    once: wall time ([Unix.gettimeofday]), words allocated on the minor
    and major heaps ([Gc.quick_stat] deltas), and the caller-supplied
    logical clock that stamps every event (the engine passes its
    guest-instruction counter, so the step width of a span falls out of
    the two stamps).

    Opening a span emits {!Event.Span_begin}; closing it emits
    {!Event.Span_end} carrying the measured deltas.  Like the engine's
    own telemetry, a span set built over {!Sink.null} is detected by
    physical identity and every operation is a no-op — no event, no
    [gettimeofday], no [Gc.quick_stat], no allocation. *)

type t

val create : ?clock:(unit -> int) -> Sink.t -> t
(** [clock] supplies the stamp for the begin/end events (default: a
    constant 0 — fine for schedulers that live outside any engine). *)

val enabled : t -> bool
(** False iff the sink is {!Sink.null}; callers on hot paths can check
    once instead of per operation. *)

val depth : t -> int
(** Number of currently open spans (0 when balanced). *)

val enter : t -> string -> unit
val leave : t -> string -> unit
(** [leave] closes the {e innermost} open span; the label argument is
    documentation (mismatches do not corrupt outer frames).  [leave] on
    an empty stack is a no-op. *)

val wrap : t -> string -> (unit -> 'a) -> 'a
(** [wrap t label f] = [enter]; [f ()]; [leave] — exception-safe. *)
