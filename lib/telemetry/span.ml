type frame = {
  label : string;
  wall0 : float;
  minor0 : float;
  major0 : float;
}

type t = {
  sink : Sink.t;
  clock : unit -> int;
  enabled : bool;
  mutable stack : frame list;
}

let create ?(clock = fun () -> 0) sink =
  { sink; clock; enabled = not (Sink.is_null sink); stack = [] }

let enabled t = t.enabled
let depth t = List.length t.stack

let enter t label =
  if t.enabled then begin
    t.sink.Sink.emit ~step:(t.clock ()) (Event.Span_begin { span = label });
    (* Sample the clocks *after* emitting so the sink's own cost is not
       charged to the span. *)
    let st = Gc.quick_stat () in
    t.stack <-
      {
        label;
        wall0 = Unix.gettimeofday ();
        minor0 = st.Gc.minor_words;
        major0 = st.Gc.major_words;
      }
      :: t.stack
  end

(* Closes the innermost span whatever the label argument says — an
   unbalanced caller loses one frame, never corrupts the rest. *)
let leave t _label =
  if t.enabled then
    match t.stack with
    | [] -> ()
    | f :: rest ->
        let wall = Unix.gettimeofday () in
        let st = Gc.quick_stat () in
        t.stack <- rest;
        let wall_ns =
          let ns = int_of_float ((wall -. f.wall0) *. 1e9) in
          if ns < 0 then 0 else ns
        in
        t.sink.Sink.emit ~step:(t.clock ())
          (Event.Span_end
             {
               span = f.label;
               wall_ns;
               minor_words = int_of_float (st.Gc.minor_words -. f.minor0);
               major_words = int_of_float (st.Gc.major_words -. f.major0);
             })

let wrap t label f =
  if t.enabled then begin
    enter t label;
    match f () with
    | v ->
        leave t label;
        v
    | exception e ->
        leave t label;
        raise e
  end
  else f ()
