(* ------------------------------------------------------------------ *)
(* Exposition                                                           *)
(* ------------------------------------------------------------------ *)

let mangle name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  if mapped = "" then "_"
  else
    match mapped.[0] with
    | '0' .. '9' -> "_" ^ mapped
    | _ -> mapped

let pp_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let pp_bound b = if b = infinity then "+Inf" else pp_value b

let content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8"

let render ?(prefix = "tpdbt_") metrics =
  let buf = Buffer.create 1024 in
  let family name kind = Printf.bprintf buf "# TYPE %s%s %s\n" prefix name kind in
  List.iter
    (fun inst ->
      match inst with
      | `Counter (name, v) ->
          let name = mangle name in
          family name "counter";
          Printf.bprintf buf "%s%s_total %d\n" prefix name v
      | `Gauge (name, v) ->
          let name = mangle name in
          family name "gauge";
          Printf.bprintf buf "%s%s %s\n" prefix name (pp_value v)
      | `Histogram (name, buckets, total, sum) ->
          let name = mangle name in
          family name "histogram";
          let cumulative = ref 0 in
          List.iter
            (fun (bound, count) ->
              cumulative := !cumulative + count;
              Printf.bprintf buf "%s%s_bucket{le=\"%s\"} %d\n" prefix name
                (pp_bound bound) !cumulative)
            buckets;
          Printf.bprintf buf "%s%s_sum %s\n" prefix name (pp_value sum);
          Printf.bprintf buf "%s%s_count %d\n" prefix name total)
    (Metrics.dump metrics);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Strict parser — the exposition's self-check, in the spirit of        *)
(* Json.validate.                                                       *)
(* ------------------------------------------------------------------ *)

type kind = Counter | Gauge | Histogram

type sample = {
  sample_name : string;
  labels : (string * string) list;
  value : float;
}

type family = { family_name : string; kind : kind; samples : sample list }

exception Bad of int * string

let parse text =
  let fail line msg = raise (Bad (line, msg)) in
  let is_name_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let valid_name s =
    s <> ""
    && (match s.[0] with '0' .. '9' -> false | _ -> true)
    && String.for_all is_name_char s
  in
  let parse_float lineno s =
    if s = "+Inf" then infinity
    else if s = "-Inf" then neg_infinity
    else
      match float_of_string_opt s with
      | Some v -> v
      | None -> fail lineno ("bad number: " ^ s)
  in
  (* [name{k="v",...} value] — labels only appear on histogram buckets
     in our exposition, but the grammar is general. *)
  let parse_sample lineno line =
    let name_end = ref 0 in
    let n = String.length line in
    while !name_end < n && is_name_char line.[!name_end] do
      incr name_end
    done;
    let sample_name = String.sub line 0 !name_end in
    if not (valid_name sample_name) then fail lineno "bad sample name";
    let i = ref !name_end in
    let labels = ref [] in
    if !i < n && line.[!i] = '{' then begin
      incr i;
      let rec more () =
        let k0 = !i in
        while !i < n && is_name_char line.[!i] do
          incr i
        done;
        let k = String.sub line k0 (!i - k0) in
        if not (valid_name k) then fail lineno "bad label name";
        if !i + 1 >= n || line.[!i] <> '=' || line.[!i + 1] <> '"' then
          fail lineno "expected =\" after label name";
        i := !i + 2;
        let buf = Buffer.create 8 in
        let rec scan () =
          if !i >= n then fail lineno "unterminated label value"
          else
            match line.[!i] with
            | '"' -> incr i
            | '\\' ->
                if !i + 1 >= n then fail lineno "bad escape";
                (match line.[!i + 1] with
                | '\\' -> Buffer.add_char buf '\\'
                | '"' -> Buffer.add_char buf '"'
                | 'n' -> Buffer.add_char buf '\n'
                | _ -> fail lineno "bad escape");
                i := !i + 2;
                scan ()
            | c ->
                Buffer.add_char buf c;
                incr i;
                scan ()
        in
        scan ();
        labels := (k, Buffer.contents buf) :: !labels;
        if !i < n && line.[!i] = ',' then begin
          incr i;
          more ()
        end
        else if !i < n && line.[!i] = '}' then incr i
        else fail lineno "expected ',' or '}' in labels"
      in
      more ()
    end;
    if !i >= n || line.[!i] <> ' ' then
      fail lineno "expected single space before value";
    incr i;
    let value_str = String.sub line !i (n - !i) in
    if value_str = "" || String.contains value_str ' ' then
      fail lineno "expected exactly one value";
    { sample_name; labels = List.rev !labels; value = parse_float lineno value_str }
  in
  let check_family lineno fam =
    let f = fam.family_name in
    let samples = fam.samples in
    let bad msg = fail lineno (f ^ ": " ^ msg) in
    match fam.kind with
    | Counter -> (
        match samples with
        | [ { sample_name; labels = []; value } ]
          when sample_name = f ^ "_total" ->
            if value < 0.0 then bad "negative counter"
        | _ -> bad "counter needs exactly one bare <name>_total sample")
    | Gauge -> (
        match samples with
        | [ { sample_name; labels = []; _ } ] when sample_name = f -> ()
        | _ -> bad "gauge needs exactly one bare <name> sample")
    | Histogram ->
        let buckets, rest =
          List.partition (fun s -> s.sample_name = f ^ "_bucket") samples
        in
        if buckets = [] then bad "histogram needs buckets";
        let last = ref neg_infinity in
        let prev_count = ref 0.0 in
        List.iter
          (fun b ->
            match b.labels with
            | [ ("le", le) ] ->
                let bound = parse_float lineno le in
                if bound <= !last then bad "bucket bounds not increasing";
                last := bound;
                if b.value < !prev_count then bad "buckets not cumulative";
                prev_count := b.value
            | _ -> bad "bucket needs exactly the le label")
          buckets;
        if !last <> infinity then bad "last bucket must be le=\"+Inf\"";
        let sum, rest =
          List.partition (fun s -> s.sample_name = f ^ "_sum") rest
        in
        let count, rest =
          List.partition (fun s -> s.sample_name = f ^ "_count") rest
        in
        if rest <> [] then bad "unexpected samples";
        (match (sum, count) with
        | [ { labels = []; _ } ], [ { labels = []; value; _ } ] ->
            if value <> !prev_count then bad "count <> +Inf bucket"
        | _ -> bad "histogram needs exactly one _sum and one _count")
  in
  let lines = String.split_on_char '\n' text in
  let nlines = List.length lines in
  (match List.rev lines with
  | "" :: _ -> ()
  | _ -> fail 0 "missing final newline");
  let families = Hashtbl.create 16 in
  let current = ref None in
  let finished = ref [] in
  let eof_seen = ref false in
  let close_current lineno =
    match !current with
    | None -> ()
    | Some fam ->
        let fam = { fam with samples = List.rev fam.samples } in
        check_family lineno fam;
        finished := fam :: !finished;
        current := None
  in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      if line = "" && idx = nlines - 1 then ()
      else if !eof_seen then fail lineno "content after # EOF"
      else if line = "# EOF" then begin
        close_current lineno;
        eof_seen := true
      end
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        close_current lineno;
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind_str ] ->
            if not (valid_name name) then fail lineno "bad family name";
            if Hashtbl.mem families name then
              fail lineno ("duplicate family " ^ name);
            Hashtbl.add families name ();
            let kind =
              match kind_str with
              | "counter" -> Counter
              | "gauge" -> Gauge
              | "histogram" -> Histogram
              | k -> fail lineno ("unknown family type " ^ k)
            in
            current := Some { family_name = name; kind; samples = [] }
        | _ -> fail lineno "malformed # TYPE line"
      end
      else if String.length line >= 1 && line.[0] = '#' then
        fail lineno "only # TYPE and # EOF comment lines are allowed"
      else begin
        let sample = parse_sample lineno line in
        match !current with
        | None -> fail lineno "sample before any # TYPE"
        | Some fam ->
            let ok_prefix =
              sample.sample_name = fam.family_name
              || List.exists
                   (fun suffix ->
                     sample.sample_name = fam.family_name ^ suffix)
                   [ "_total"; "_bucket"; "_sum"; "_count" ]
            in
            if not ok_prefix then
              fail lineno
                (sample.sample_name ^ " does not belong to family "
               ^ fam.family_name);
            current := Some { fam with samples = sample :: fam.samples }
      end)
    lines;
  if not !eof_seen then fail nlines "missing # EOF";
  List.rev !finished

let parse_result text =
  match parse text with
  | families -> Ok families
  | exception Bad (line, msg) ->
      Error (Printf.sprintf "invalid OpenMetrics at line %d: %s" line msg)

let validate text = Result.map (fun _ -> ()) (parse_result text)
