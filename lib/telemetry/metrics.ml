type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array;  (* strictly increasing; implicit +inf after *)
  counts : int array;  (* length = Array.length bounds + 1 *)
  mutable total : int;
  mutable sum : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = (string, instrument) Hashtbl.t

let create () : t = Hashtbl.create 32

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let clash name found want =
  invalid_arg
    (Printf.sprintf "Metrics.%s: %S is already a %s" want name
       (kind_name found))

let counter t name =
  match Hashtbl.find_opt t name with
  | Some (Counter c) -> c
  | Some other -> clash name other "counter"
  | None ->
      let c = { c = 0 } in
      Hashtbl.add t name (Counter c);
      c

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c

let gauge t name =
  match Hashtbl.find_opt t name with
  | Some (Gauge g) -> g
  | Some other -> clash name other "gauge"
  | None ->
      let g = { g = 0.0 } in
      Hashtbl.add t name (Gauge g);
      g

let set g v = g.g <- v
let gauge_value g = g.g

let histogram t name ~buckets =
  match Hashtbl.find_opt t name with
  | Some (Histogram h) -> h
  | Some other -> clash name other "histogram"
  | None ->
      if buckets = [] then invalid_arg "Metrics.histogram: no buckets";
      let bounds = Array.of_list buckets in
      Array.iteri
        (fun i b ->
          if i > 0 && b <= bounds.(i - 1) then
            invalid_arg "Metrics.histogram: bounds not increasing")
        bounds;
      let h =
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          total = 0;
          sum = 0.0;
        }
      in
      Hashtbl.add t name (Histogram h);
      h

let observe h v =
  let n = Array.length h.bounds in
  let rec find i = if i >= n || v <= h.bounds.(i) then i else find (i + 1) in
  let i = find 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum +. v

let histogram_count h = h.total
let histogram_sum h = h.sum

let bucket_counts h =
  List.init
    (Array.length h.counts)
    (fun i ->
      let bound =
        if i < Array.length h.bounds then h.bounds.(i) else infinity
      in
      (bound, h.counts.(i)))

let sorted t =
  Hashtbl.fold (fun name inst acc -> (name, inst) :: acc) t []
  |> List.sort compare

let names t = List.map fst (sorted t)

let pp_bound b = if b = infinity then "+inf" else Printf.sprintf "%g" b

let dump t =
  List.map
    (fun (name, inst) ->
      match inst with
      | Counter c -> `Counter (name, c.c)
      | Gauge g -> `Gauge (name, g.g)
      | Histogram h -> `Histogram (name, bucket_counts h, h.total, h.sum))
    (sorted t)

let render t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, inst) ->
      match inst with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name c.c)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%-40s %g\n" name g.g)
      | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf "%-40s count=%d sum=%g\n" name h.total h.sum);
          List.iter
            (fun (bound, count) ->
              Buffer.add_string buf
                (Printf.sprintf "  le %-10s %d\n" (pp_bound bound) count))
            (bucket_counts h))
    (sorted t);
  Buffer.contents buf

let to_json t =
  let pick f =
    List.filter_map (fun (name, inst) -> f name inst) (sorted t)
  in
  let counters =
    pick (fun name -> function
      | Counter c -> Some (name, string_of_int c.c)
      | _ -> None)
  in
  let gauges =
    pick (fun name -> function
      | Gauge g -> Some (name, Printf.sprintf "%.17g" g.g)
      | _ -> None)
  in
  let histograms =
    pick (fun name -> function
      | Histogram h ->
          let buckets =
            List.map
              (fun (bound, count) ->
                Json.obj
                  [
                    ( "le",
                      if bound = infinity then {|"+inf"|}
                      else Printf.sprintf "%.17g" bound );
                    ("count", string_of_int count);
                  ])
              (bucket_counts h)
          in
          Some
            ( name,
              Json.obj
                [
                  ("count", string_of_int h.total);
                  ("sum", Printf.sprintf "%.17g" h.sum);
                  ("buckets", Json.arr buckets);
                ] )
      | _ -> None)
  in
  Json.obj
    [
      ("counters", Json.obj counters);
      ("gauges", Json.obj gauges);
      ("histograms", Json.obj histograms);
    ]
