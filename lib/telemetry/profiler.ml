type node = {
  label : string;
  mutable calls : int;
  mutable steps : int;
  mutable wall_ns : int;
  mutable minor_words : int;
  mutable major_words : int;
  mutable cycles : float;
  children_tbl : (string, node) Hashtbl.t;
}

type t = { root : node }

let make_node label =
  {
    label;
    calls = 0;
    steps = 0;
    wall_ns = 0;
    minor_words = 0;
    major_words = 0;
    cycles = 0.0;
    children_tbl = Hashtbl.create 4;
  }

let label n = n.label
let calls n = n.calls
let steps n = n.steps
let wall_ns n = n.wall_ns
let minor_words n = n.minor_words
let major_words n = n.major_words
let cycles n = n.cycles

let children n =
  Hashtbl.fold (fun _ c acc -> c :: acc) n.children_tbl []
  |> List.sort (fun a b -> compare a.label b.label)

let self_steps n =
  let kids = List.fold_left (fun acc c -> acc + c.steps) 0 (children n) in
  max 0 (n.steps - kids)

let roots t = children t.root

let find t path =
  let rec go n = function
    | [] -> Some n
    | l :: rest -> (
        match Hashtbl.find_opt n.children_tbl l with
        | Some c -> go c rest
        | None -> None)
  in
  go t.root path

let child_of parent l =
  match Hashtbl.find_opt parent.children_tbl l with
  | Some c -> c
  | None ->
      let c = make_node l in
      Hashtbl.add parent.children_tbl l c;
      c

let of_events events =
  let root = make_node "" in
  (* Open-span stack; the head is the innermost.  Ends are matched by
     label so interleaved streams (worker spans arriving in completion
     order) still account every frame. *)
  let stack = ref [] in
  let top () = match !stack with [] -> root | (n, _) :: _ -> n in
  List.iter
    (fun { Event.step; event } ->
      match event with
      | Event.Span_begin { span } ->
          let n = child_of (top ()) span in
          n.calls <- n.calls + 1;
          stack := (n, step) :: !stack
      | Event.Span_end { span; wall_ns; minor_words; major_words } ->
          if List.exists (fun (n, _) -> n.label = span) !stack then begin
            let rec close = function
              | [] -> []
              | (n, begin_step) :: rest ->
                  if n.label = span then begin
                    n.steps <- n.steps + (step - begin_step);
                    n.wall_ns <- n.wall_ns + wall_ns;
                    n.minor_words <- n.minor_words + minor_words;
                    n.major_words <- n.major_words + major_words;
                    rest
                  end
                  else begin
                    (* An end arrived for an outer frame: close this one
                       implicitly — it still gets its step width. *)
                    n.steps <- n.steps + (step - begin_step);
                    close rest
                  end
            in
            stack := close !stack
          end
      | Event.Stage_cost { stage; cycles; steps; count } ->
          let n = child_of (top ()) stage in
          n.calls <- n.calls + count;
          n.cycles <- n.cycles +. cycles;
          n.steps <- n.steps + steps
      | _ -> ())
    events;
  { root }

let to_folded t =
  let buf = Buffer.create 256 in
  let rec walk path n =
    let path = if path = "" then n.label else path ^ ";" ^ n.label in
    let self = self_steps n in
    if self > 0 then
      Buffer.add_string buf (Printf.sprintf "%s %d\n" path self);
    List.iter (walk path) (children n)
  in
  List.iter (walk "") (roots t);
  Buffer.contents buf

let rec node_json n =
  Json.obj
    [
      ("label", Json.quote n.label);
      ("calls", string_of_int n.calls);
      ("steps", string_of_int n.steps);
      ("self_steps", string_of_int (self_steps n));
      ("wall_ns", string_of_int n.wall_ns);
      ("minor_words", string_of_int n.minor_words);
      ("major_words", string_of_int n.major_words);
      ("cycles", Json.number n.cycles);
      ("children", Json.arr (List.map node_json (children n)));
    ]

let to_json t =
  Json.obj
    [
      ("version", "1");
      ("weight", {|"guest_steps"|});
      ("roots", Json.arr (List.map node_json (roots t)));
    ]
