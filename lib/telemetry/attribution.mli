(** Per-stage and per-region cost attribution.

    Folds the {!Event.Stage_cost} and {!Event.Region_cost} events the
    engine emits at the end of a traced run into two tables: where the
    modeled cycles went by translator stage (interpret, translate,
    optimize, region-exec, ...) and by region.  Everything here is
    deterministic — it comes from the cycle model, not wall time — so
    the tables diff cleanly across runs and [-j] levels, and their
    stage total reconciles with the run's [perf.cycles] counter. *)

type stage_row = { stage : string; cycles : float; steps : int; count : int }
(** [steps] is guest instructions executed under the stage (zero for
    stages that execute none, e.g. translation); [count] the number of
    individual charges. *)

type region_row = { region : int; cycles : float; instrs : int }

type t

val of_events : Event.stamped list -> t

val stages : t -> stage_row list
(** In the engine's emission order. *)

val regions : t -> region_row list
(** Sorted by region id. *)

val is_empty : t -> bool

val total_cycles : t -> float
(** Sum over stages — equal (modulo float summation order) to the
    run's [perf.cycles]. *)

val render : t -> string
(** Both tables with percent-of-total shares, stages sorted by
    descending cycles. *)

val to_csv : t -> string
(** One CSV, [kind,name,cycles,steps,count] — stage rows then region
    rows (for regions, [steps] holds the instruction count). *)
