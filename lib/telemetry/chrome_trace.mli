(** Chrome [trace_event] export.

    Renders a stamped event stream as a JSON object with a
    ["traceEvents"] array loadable in [chrome://tracing] / Perfetto.
    The engine's guest-instruction counter maps directly onto the
    timestamp axis (1 step = 1 microsecond of trace time):

    - {!Event.Phase_begin}/{!Event.Phase_end} become duration events
      ([ph:"B"]/[ph:"E"]) — the run and each optimisation round appear
      as nested spans;
    - each region-entry ... side-exit/completion interval becomes an
      async span ([ph:"b"]/[ph:"e"]) with the region id as the async
      id, so every region gets its own named track;
    - all other events become instant events ([ph:"i"]) carrying their
      payload in [args]. *)

val to_json : ?process_name:string -> Event.stamped list -> string
(** Events must be in emission order (non-decreasing [step]).
    [process_name] (default ["tpdbt"]) labels the trace's single
    process via a metadata event. *)
