(* One trace_event object.  [extra] fields come after the common ones;
   payload (if any) nests under "args". *)
let trace_event ~name ~cat ~ph ~ts ?(extra = []) ?args () =
  let fields =
    [
      ("name", Json.quote name);
      ("cat", Json.quote cat);
      ("ph", Json.quote ph);
      ("ts", string_of_int ts);
      ("pid", "1");
      ("tid", "1");
    ]
    @ extra
    @ match args with None -> [] | Some a -> [ ("args", Json.obj a) ]
  in
  Json.obj fields

let region_name region = Printf.sprintf "region %d" region

let of_stamped { Event.step = ts; event } =
  match event with
  | Event.Phase_begin { phase } ->
      trace_event ~name:phase ~cat:"phase" ~ph:"B" ~ts ()
  | Event.Phase_end { phase } ->
      trace_event ~name:phase ~cat:"phase" ~ph:"E" ~ts ()
  | Event.Region_entry { region } ->
      trace_event ~name:(region_name region) ~cat:"region" ~ph:"b" ~ts
        ~extra:[ ("id", string_of_int region) ]
        ()
  | Event.Region_side_exit { region; slot } ->
      trace_event ~name:(region_name region) ~cat:"region" ~ph:"e" ~ts
        ~extra:[ ("id", string_of_int region) ]
        ~args:[ ("exit", {|"side_exit"|}); ("slot", string_of_int slot) ]
        ()
  | Event.Region_completion { region } ->
      trace_event ~name:(region_name region) ~cat:"region" ~ph:"e" ~ts
        ~extra:[ ("id", string_of_int region) ]
        ~args:[ ("exit", {|"completion"|}) ]
        ()
  | Event.Span_begin { span } ->
      trace_event ~name:span ~cat:"span" ~ph:"B" ~ts ()
  | Event.Span_end { span; wall_ns; minor_words; major_words } ->
      trace_event ~name:span ~cat:"span" ~ph:"E" ~ts
        ~args:
          [
            ("wall_ns", string_of_int wall_ns);
            ("minor_words", string_of_int minor_words);
            ("major_words", string_of_int major_words);
          ]
        ()
  | other ->
      trace_event ~name:(Event.kind_name other) ~cat:"engine" ~ph:"i" ~ts
        ~extra:[ ("s", {|"t"|}) ]
        ~args:(Event.payload other) ()

let to_json ?(process_name = "tpdbt") events =
  let metadata =
    Json.obj
      [
        ("name", {|"process_name"|});
        ("ph", {|"M"|});
        ("pid", "1");
        ("args", Json.obj [ ("name", Json.quote process_name) ]);
      ]
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf {|{"traceEvents":[|};
  Buffer.add_string buf metadata;
  List.iter
    (fun stamped ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (of_stamped stamped))
    events;
  Buffer.add_string buf {|],"displayTimeUnit":"ms"}|};
  Buffer.contents buf
