type region_row = {
  mutable kind : string;
  mutable slots : int;
  mutable formed_at : int;
  mutable entries : int;
  mutable side_exits : int;
  mutable completions : int;
  mutable dissolved_at : int option;
}

let render ?metrics events =
  let kind_counts = Hashtbl.create 16 in
  let regions : (int, region_row) Hashtbl.t = Hashtbl.create 16 in
  let row region =
    match Hashtbl.find_opt regions region with
    | Some r -> r
    | None ->
        let r =
          {
            kind = "?";
            slots = 0;
            formed_at = 0;
            entries = 0;
            side_exits = 0;
            completions = 0;
            dissolved_at = None;
          }
        in
        Hashtbl.add regions region r;
        r
  in
  let pool_fires = ref [] in
  let last_step = ref 0 in
  List.iter
    (fun { Event.step; event } ->
      last_step := step;
      let kind = Event.kind_name event in
      Hashtbl.replace kind_counts kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt kind_counts kind));
      match event with
      | Event.Pool_trigger { pool_size; reason } ->
          pool_fires := (step, pool_size, reason) :: !pool_fires
      | Event.Region_formed { region; kind; slots; _ } ->
          let r = row region in
          r.kind <- Event.region_kind_name kind;
          r.slots <- slots;
          r.formed_at <- step
      | Event.Region_entry { region } ->
          let r = row region in
          r.entries <- r.entries + 1
      | Event.Region_side_exit { region; _ } ->
          let r = row region in
          r.side_exits <- r.side_exits + 1
      | Event.Region_completion { region } ->
          let r = row region in
          r.completions <- r.completions + 1
      | Event.Region_dissolved { region; _ } ->
          (row region).dissolved_at <- Some step
      | _ -> ())
    events;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "run summary: %d events over %d steps\n"
       (List.length events) !last_step);
  Buffer.add_string buf "\nevent counts:\n";
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) kind_counts []
  |> List.sort compare
  |> List.iter (fun (k, n) ->
         Buffer.add_string buf (Printf.sprintf "  %-24s %d\n" k n));
  (match List.rev !pool_fires with
  | [] -> ()
  | fires ->
      Buffer.add_string buf "\noptimisation rounds:\n";
      List.iter
        (fun (step, pool_size, reason) ->
          Buffer.add_string buf
            (Printf.sprintf "  step %-10d pool=%-3d (%s)\n" step pool_size
               (Event.pool_reason_name reason)))
        fires);
  let rows =
    Hashtbl.fold (fun id r acc -> (id, r) :: acc) regions []
    |> List.sort compare
  in
  if rows <> [] then begin
    Buffer.add_string buf
      "\nregions:\n\
      \  id    kind   slots  formed@      entries   side-exits  \
       completions  dissolved@\n";
    List.iter
      (fun (id, r) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-5d %-6s %-6d %-12d %-9d %-11d %-12d %s\n" id
             r.kind r.slots r.formed_at r.entries r.side_exits r.completions
             (match r.dissolved_at with
             | Some s -> string_of_int s
             | None -> "-")))
      rows
  end;
  let attribution = Attribution.of_events events in
  if not (Attribution.is_empty attribution) then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Attribution.render attribution)
  end;
  (match metrics with
  | None -> ()
  | Some m ->
      Buffer.add_string buf "\nmetrics:\n";
      Buffer.add_string buf (Metrics.render m));
  Buffer.contents buf
