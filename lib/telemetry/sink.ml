type t = { emit : step:int -> Event.t -> unit; close : unit -> unit }

let null = { emit = (fun ~step:_ _ -> ()); close = (fun () -> ()) }
let is_null t = t == null
let of_fun emit = { emit; close = (fun () -> ()) }

type buffer = {
  mutable events : Event.stamped list;  (* newest first *)
  mutable count : int;
  limit : int;
  mutable lost : int;
}

let memory ?(limit = 1_000_000) () =
  let buf = { events = []; count = 0; limit; lost = 0 } in
  let emit ~step event =
    if buf.count < buf.limit then begin
      buf.events <- { Event.step; event } :: buf.events;
      buf.count <- buf.count + 1
    end
    else buf.lost <- buf.lost + 1
  in
  ({ emit; close = (fun () -> ()) }, buf)

let contents buf = List.rev buf.events
let dropped buf = buf.lost

let jsonl oc =
  let emit ~step event =
    output_string oc (Event.to_json { Event.step; event });
    output_char oc '\n'
  in
  { emit; close = (fun () -> flush oc) }

let collect ~into:registry =
  (* Per-region entry/side-exit tallies for the side-exit-rate
     distribution, finalised at close. *)
  let entries = Hashtbl.create 16 in
  let side_exits = Hashtbl.create 16 in
  let bump table region =
    Hashtbl.replace table region
      (1 + Option.value ~default:0 (Hashtbl.find_opt table region))
  in
  let slots_hist =
    Metrics.histogram registry "region.slots"
      ~buckets:[ 1.; 2.; 4.; 8.; 16.; 32. ]
  in
  let instrs_hist =
    Metrics.histogram registry "region.instrs"
      ~buckets:[ 4.; 8.; 16.; 32.; 64.; 128.; 256. ]
  in
  (* Open spans, innermost first; ends match by label so interleaved
     scheduler streams still fold (mirrors Profiler's tolerance). *)
  let open_spans = ref [] in
  let add_counter name n = Metrics.add (Metrics.counter registry name) n in
  let add_gauge name v =
    let g = Metrics.gauge registry name in
    Metrics.set g (Metrics.gauge_value g +. v)
  in
  let emit ~step event =
    Metrics.incr (Metrics.counter registry ("events." ^ Event.kind_name event));
    match event with
    | Event.Region_formed { slots; instrs; _ } ->
        Metrics.observe slots_hist (float_of_int slots);
        Metrics.observe instrs_hist (float_of_int instrs)
    | Event.Region_entry { region } -> bump entries region
    | Event.Region_side_exit { region; _ } -> bump side_exits region
    | Event.Span_begin { span } -> open_spans := (span, step) :: !open_spans
    | Event.Span_end { span; wall_ns; minor_words; major_words } ->
        if List.mem_assoc span !open_spans then begin
          let begin_step = List.assoc span !open_spans in
          open_spans := List.remove_assoc span !open_spans;
          let p = "span." ^ span in
          add_counter (p ^ ".count") 1;
          add_counter (p ^ ".steps") (step - begin_step);
          add_counter (p ^ ".minor_words") minor_words;
          add_counter (p ^ ".major_words") major_words;
          add_gauge (p ^ ".seconds") (float_of_int wall_ns *. 1e-9)
        end
    | Event.Stage_cost { stage; cycles; steps; count } ->
        let p = "stage." ^ stage in
        add_counter (p ^ ".count") count;
        add_counter (p ^ ".steps") steps;
        add_gauge (p ^ ".cycles") cycles
    | _ -> ()
  in
  let closed = ref false in
  let close () =
    if not !closed then begin
      closed := true;
      let rate_hist =
        Metrics.histogram registry "region.side_exit_rate"
          ~buckets:[ 0.01; 0.05; 0.1; 0.2; 0.3; 0.5; 0.75; 1.0 ]
      in
      Hashtbl.fold (fun region n acc -> (region, n) :: acc) entries []
      |> List.sort compare
      |> List.iter (fun (region, n) ->
             let exits =
               Option.value ~default:0 (Hashtbl.find_opt side_exits region)
             in
             Metrics.observe rate_hist (float_of_int exits /. float_of_int n))
    end
  in
  { emit; close }

let tee sinks =
  {
    emit = (fun ~step event -> List.iter (fun s -> s.emit ~step event) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }
