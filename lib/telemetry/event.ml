type region_kind = Trace | Loop

type pool_reason = Pool_full | Registered_twice

type recovery_action = Retry | Dissolve | Retranslate

type t =
  | Block_translated of { block : int; size : int }
  | Block_registered of { block : int; use : int; threshold : int }
  | Pool_trigger of { pool_size : int; reason : pool_reason }
  | Region_formed of {
      region : int;
      kind : region_kind;
      slots : int;
      instrs : int;
      entry_block : int;
    }
  | Region_entry of { region : int }
  | Region_side_exit of { region : int; slot : int }
  | Region_completion of { region : int }
  | Region_dissolved of { region : int; entries : int; side_exits : int }
  | Phase_begin of { phase : string }
  | Phase_end of { phase : string }
  | Fault_injected of { fault : string; target : int }
  | Recovery of { action : recovery_action; target : int }
  | Cache_evicted of { entry_kind : string; id : int; size : int }
  | Cache_flushed of { entries : int; instrs : int }
  | Shadow_divergence of { region : int; reg : int }
  | Region_quarantined of { region : int; preserved_use : int }
  | Engine_degraded of { quarantines : int }
  | Worker_start of { worker : int; task : int }
  | Worker_steal of { worker : int; victim : int; task : int }
  | Worker_finish of { worker : int; task : int }
  | Supervisor_retry of {
      task : int;
      attempt : int;
      backoff : int;
      reason : string;
    }
  | Supervisor_give_up of { task : int; attempts : int; reason : string }
  | Breaker_open of { task : int; failures : int }
  | Worker_lost of { worker : int; task : int }
  | Pool_degraded of { live : int }
  | Checkpoint_corrupt of { bench : string; reason : string }
  | Span_begin of { span : string }
  | Span_end of {
      span : string;
      wall_ns : int;
      minor_words : int;
      major_words : int;
    }
  | Stage_cost of { stage : string; cycles : float; steps : int; count : int }
  | Region_cost of { region : int; cycles : float; instrs : int }

type stamped = { step : int; event : t }

let kind_name = function
  | Block_translated _ -> "block_translated"
  | Block_registered _ -> "block_registered"
  | Pool_trigger _ -> "pool_trigger"
  | Region_formed _ -> "region_formed"
  | Region_entry _ -> "region_entry"
  | Region_side_exit _ -> "region_side_exit"
  | Region_completion _ -> "region_completion"
  | Region_dissolved _ -> "region_dissolved"
  | Phase_begin _ -> "phase_begin"
  | Phase_end _ -> "phase_end"
  | Fault_injected _ -> "fault.injected"
  | Recovery { action; _ } -> (
      match action with
      | Retry -> "recovery.retry"
      | Dissolve -> "recovery.dissolve"
      | Retranslate -> "recovery.retranslate")
  | Cache_evicted _ -> "cache.evict"
  | Cache_flushed _ -> "cache.flush"
  | Shadow_divergence _ -> "shadow.divergence"
  | Region_quarantined _ -> "region.quarantined"
  | Engine_degraded _ -> "engine.degraded"
  | Worker_start _ -> "worker.start"
  | Worker_steal _ -> "worker.steal"
  | Worker_finish _ -> "worker.finish"
  | Supervisor_retry _ -> "supervisor.retry"
  | Supervisor_give_up _ -> "supervisor.giveup"
  | Breaker_open _ -> "breaker.open"
  | Worker_lost _ -> "worker.lost"
  | Pool_degraded _ -> "pool.degraded"
  | Checkpoint_corrupt _ -> "checkpoint.corrupt"
  | Span_begin _ -> "span.begin"
  | Span_end _ -> "span.end"
  | Stage_cost _ -> "stage.cost"
  | Region_cost _ -> "region.cost"

let region_kind_name = function Trace -> "trace" | Loop -> "loop"

let recovery_action_name = function
  | Retry -> "retry"
  | Dissolve -> "dissolve"
  | Retranslate -> "retranslate"

let pool_reason_name = function
  | Pool_full -> "pool_full"
  | Registered_twice -> "registered_twice"

(* Payload fields as (key, rendered JSON value) pairs. *)
let payload = function
  | Block_translated { block; size } ->
      [ ("block", string_of_int block); ("size", string_of_int size) ]
  | Block_registered { block; use; threshold } ->
      [
        ("block", string_of_int block);
        ("use", string_of_int use);
        ("threshold", string_of_int threshold);
      ]
  | Pool_trigger { pool_size; reason } ->
      [
        ("pool_size", string_of_int pool_size);
        ("reason", Json.quote (pool_reason_name reason));
      ]
  | Region_formed { region; kind; slots; instrs; entry_block } ->
      [
        ("region", string_of_int region);
        ("region_kind", Json.quote (region_kind_name kind));
        ("slots", string_of_int slots);
        ("instrs", string_of_int instrs);
        ("entry_block", string_of_int entry_block);
      ]
  | Region_entry { region } -> [ ("region", string_of_int region) ]
  | Region_side_exit { region; slot } ->
      [ ("region", string_of_int region); ("slot", string_of_int slot) ]
  | Region_completion { region } -> [ ("region", string_of_int region) ]
  | Region_dissolved { region; entries; side_exits } ->
      [
        ("region", string_of_int region);
        ("entries", string_of_int entries);
        ("side_exits", string_of_int side_exits);
      ]
  | Phase_begin { phase } -> [ ("phase", Json.quote phase) ]
  | Phase_end { phase } -> [ ("phase", Json.quote phase) ]
  | Fault_injected { fault; target } ->
      [ ("fault", Json.quote fault); ("target", string_of_int target) ]
  | Recovery { action; target } ->
      [
        ("action", Json.quote (recovery_action_name action));
        ("target", string_of_int target);
      ]
  | Cache_evicted { entry_kind; id; size } ->
      [
        ("entry_kind", Json.quote entry_kind);
        ("id", string_of_int id);
        ("size", string_of_int size);
      ]
  | Cache_flushed { entries; instrs } ->
      [ ("entries", string_of_int entries); ("instrs", string_of_int instrs) ]
  | Shadow_divergence { region; reg } ->
      [ ("region", string_of_int region); ("reg", string_of_int reg) ]
  | Region_quarantined { region; preserved_use } ->
      [
        ("region", string_of_int region);
        ("preserved_use", string_of_int preserved_use);
      ]
  | Engine_degraded { quarantines } ->
      [ ("quarantines", string_of_int quarantines) ]
  | Worker_start { worker; task } ->
      [ ("worker", string_of_int worker); ("task", string_of_int task) ]
  | Worker_steal { worker; victim; task } ->
      [
        ("worker", string_of_int worker);
        ("victim", string_of_int victim);
        ("task", string_of_int task);
      ]
  | Worker_finish { worker; task } ->
      [ ("worker", string_of_int worker); ("task", string_of_int task) ]
  | Supervisor_retry { task; attempt; backoff; reason } ->
      [
        ("task", string_of_int task);
        ("attempt", string_of_int attempt);
        ("backoff", string_of_int backoff);
        ("reason", Json.quote reason);
      ]
  | Supervisor_give_up { task; attempts; reason } ->
      [
        ("task", string_of_int task);
        ("attempts", string_of_int attempts);
        ("reason", Json.quote reason);
      ]
  | Breaker_open { task; failures } ->
      [ ("task", string_of_int task); ("failures", string_of_int failures) ]
  | Worker_lost { worker; task } ->
      [ ("worker", string_of_int worker); ("task", string_of_int task) ]
  | Pool_degraded { live } -> [ ("live", string_of_int live) ]
  | Checkpoint_corrupt { bench; reason } ->
      [ ("bench", Json.quote bench); ("reason", Json.quote reason) ]
  | Span_begin { span } -> [ ("span", Json.quote span) ]
  | Span_end { span; wall_ns; minor_words; major_words } ->
      [
        ("span", Json.quote span);
        ("wall_ns", string_of_int wall_ns);
        ("minor_words", string_of_int minor_words);
        ("major_words", string_of_int major_words);
      ]
  | Stage_cost { stage; cycles; steps; count } ->
      [
        ("stage", Json.quote stage);
        ("cycles", Json.number cycles);
        ("steps", string_of_int steps);
        ("count", string_of_int count);
      ]
  | Region_cost { region; cycles; instrs } ->
      [
        ("region", string_of_int region);
        ("cycles", Json.number cycles);
        ("instrs", string_of_int instrs);
      ]

let to_json { step; event } =
  let fields =
    ("step", string_of_int step)
    :: ("kind", Json.quote (kind_name event))
    :: payload event
  in
  Json.obj fields

let pp ppf { step; event } =
  Format.fprintf ppf "@[<h>[%d] %s" step (kind_name event);
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%s" k v)
    (payload event);
  Format.fprintf ppf "@]"
