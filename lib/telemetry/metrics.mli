(** Named metrics registry: counters, gauges and fixed-bucket
    histograms.

    The registry subsumes the engine's mutable {e performance-model}
    counters — a run records those totals here next to the
    event-derived distributions (region sizes, side-exit rates) that
    plain counters cannot express.  Lookup by name is idempotent:
    requesting an existing instrument returns it, so independent layers
    can contribute to the same registry without coordination.

    Instruments are cheap mutable cells; the registry is not
    thread-safe (the engine is single-threaded). *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** @raise Invalid_argument if the name is held by another instrument
    kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> string -> buckets:float list -> histogram
(** [buckets] are upper bounds, strictly increasing; an implicit
    [+inf] bucket is appended.  Re-requesting an existing histogram
    ignores [buckets].
    @raise Invalid_argument on empty or non-increasing bounds, or a
    name clash with another instrument kind. *)

val observe : histogram -> float -> unit

val histogram_count : histogram -> int
(** Total number of observations. *)

val histogram_sum : histogram -> float

val bucket_counts : histogram -> (float * int) list
(** [(upper_bound, count)] per bucket, non-cumulative; the final bound
    is [infinity]. *)

val names : t -> string list
(** All registered instrument names, sorted. *)

val dump :
  t ->
  [ `Counter of string * int
  | `Gauge of string * float
  | `Histogram of string * (float * int) list * int * float ]
  list
(** Read-only view of every instrument, sorted by name — the walk the
    exporters ({!Openmetrics}, external dashboards) build on.
    Histograms carry their non-cumulative [(bound, count)] buckets
    (final bound [infinity]), total count and sum. *)

val render : t -> string
(** Human-readable dump, one instrument per line (histograms list
    every bucket, including empty ones), sorted by name — byte-stable
    across runs that observe the same values. *)

val to_json : t -> string
(** One JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{..}}]. *)
