let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let obj fields =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (quote k);
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let arr items =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf v)
    items;
  Buffer.add_char buf ']';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Validator: recursive descent over the grammar of RFC 8259.           *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else fail ("expected " ^ word)
  in
  let hex_digit () =
    match peek () with
    | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
    | _ -> fail "expected hex digit"
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              hex_digit ();
              hex_digit ();
              hex_digit ();
              hex_digit ();
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let digits () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some '0' .. '9' ->
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    if !pos = start then fail "expected digit"
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "expected digit");
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' -> obj_lit ()
    | Some '[' -> arr_lit ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    | None -> fail "unexpected end of input");
    skip_ws ()
  and obj_lit () =
    expect '{';
    skip_ws ();
    (match peek () with
    | Some '}' -> ()
    | _ ->
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          match peek () with
          | Some ',' ->
              advance ();
              members ()
          | _ -> ()
        in
        members ());
    expect '}'
  and arr_lit () =
    expect '[';
    skip_ws ();
    (match peek () with
    | Some ']' -> ()
    | _ ->
        let rec elements () =
          value ();
          match peek () with
          | Some ',' ->
              advance ();
              elements ()
          | _ -> ()
        in
        elements ());
    expect ']'
  in
  match
    value ();
    if !pos <> n then fail "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "invalid JSON at offset %d: %s" at msg)
