let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let obj fields =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (quote k);
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Finite floats only: %.17g round-trips every double and never prints
   the "inf"/"nan" forms JSON forbids for the values we emit. *)
let number f = Printf.sprintf "%.17g" f

let arr items =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf v)
    items;
  Buffer.add_char buf ']';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Validator: recursive descent over the grammar of RFC 8259.           *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else fail ("expected " ^ word)
  in
  let hex_digit () =
    match peek () with
    | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
    | _ -> fail "expected hex digit"
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              hex_digit ();
              hex_digit ();
              hex_digit ();
              hex_digit ();
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let digits () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some '0' .. '9' ->
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    if !pos = start then fail "expected digit"
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "expected digit");
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' -> obj_lit ()
    | Some '[' -> arr_lit ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    | None -> fail "unexpected end of input");
    skip_ws ()
  and obj_lit () =
    expect '{';
    skip_ws ();
    (match peek () with
    | Some '}' -> ()
    | _ ->
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          match peek () with
          | Some ',' ->
              advance ();
              members ()
          | _ -> ()
        in
        members ());
    expect '}'
  and arr_lit () =
    expect '[';
    skip_ws ();
    (match peek () with
    | Some ']' -> ()
    | _ ->
        let rec elements () =
          value ();
          match peek () with
          | Some ',' ->
              advance ();
              elements ()
          | _ -> ()
        in
        elements ());
    expect ']'
  in
  match
    value ();
    if !pos <> n then fail "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "invalid JSON at offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Parser: same grammar, building a document tree.                      *)
(* ------------------------------------------------------------------ *)

type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex_digit () =
    match peek () with
    | Some ('0' .. '9' as c) ->
        advance ();
        Char.code c - Char.code '0'
    | Some ('a' .. 'f' as c) ->
        advance ();
        Char.code c - Char.code 'a' + 10
    | Some ('A' .. 'F' as c) ->
        advance ();
        Char.code c - Char.code 'A' + 10
    | _ -> fail "expected hex digit"
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' ->
              advance ();
              Buffer.add_char buf '"';
              go ()
          | Some '\\' ->
              advance ();
              Buffer.add_char buf '\\';
              go ()
          | Some '/' ->
              advance ();
              Buffer.add_char buf '/';
              go ()
          | Some 'b' ->
              advance ();
              Buffer.add_char buf '\b';
              go ()
          | Some 'f' ->
              advance ();
              Buffer.add_char buf '\012';
              go ()
          | Some 'n' ->
              advance ();
              Buffer.add_char buf '\n';
              go ()
          | Some 'r' ->
              advance ();
              Buffer.add_char buf '\r';
              go ()
          | Some 't' ->
              advance ();
              Buffer.add_char buf '\t';
              go ()
          | Some 'u' ->
              advance ();
              let cp =
                let a = hex_digit () in
                let b = hex_digit () in
                let c = hex_digit () in
                let d = hex_digit () in
                (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d
              in
              (* UTF-8 encode the BMP code point (surrogate pairs are
                 stored as-is; the exporters never emit them). *)
              if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let digits () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some '0' .. '9' ->
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    if !pos = start then fail "expected digit"
  in
  let number () =
    let start = !pos in
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "expected digit");
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    float_of_string (String.sub s start (!pos - start))
  in
  let rec value () =
    skip_ws ();
    let v =
      match peek () with
      | Some '{' -> obj_lit ()
      | Some '[' -> arr_lit ()
      | Some '"' -> Str (string_lit ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> Num (number ())
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
      | None -> fail "unexpected end of input"
    in
    skip_ws ();
    v
  and obj_lit () =
    expect '{';
    skip_ws ();
    let members =
      match peek () with
      | Some '}' -> []
      | _ ->
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | _ -> List.rev ((k, v) :: acc)
          in
          members []
    in
    expect '}';
    Obj members
  and arr_lit () =
    expect '[';
    skip_ws ();
    let elements =
      match peek () with
      | Some ']' -> []
      | _ ->
          let rec elements acc =
            let v = value () in
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | _ -> List.rev (v :: acc)
          in
          elements []
    in
    expect ']';
    Arr elements
  in
  match
    let v = value () in
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "invalid JSON at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let as_number = function Num f -> Some f | _ -> None
let as_string = function Str s -> Some s | _ -> None
let as_list = function Arr vs -> Some vs | _ -> None
