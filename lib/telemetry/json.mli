(** Minimal JSON support for the exporters.

    Emission works over pre-rendered value strings — callers pass
    [string_of_int], [quote]d strings, or nested [obj]/[arr] output —
    which keeps the exporters allocation-light and dependency-free.
    [validate] is a strict RFC 8259 syntax checker used by the tests and
    the [tpdbt trace] self-check; it builds no document tree. *)

val quote : string -> string
(** Quote and escape a string literal. *)

val number : float -> string
(** Render a {e finite} float as a JSON number ([%.17g], which
    round-trips every double). *)

val obj : (string * string) list -> string
(** [obj [(k, v); ...]] renders [{"k":v,...}]; values must already be
    valid JSON text. *)

val arr : string list -> string

val validate : string -> (unit, string) result
(** [Error msg] carries the offset and reason of the first syntax
    error.  Exactly one top-level value is required. *)

(** Parsed document tree — the read side used by [tpdbt perfdiff] to
    compare two [BENCH_*.json] files.  Numbers are doubles; object
    member order is preserved and duplicate keys are kept (lookup
    returns the first). *)
type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of value list
  | Obj of (string * value) list

val parse : string -> (value, string) result
(** Same grammar and strictness as {!validate}, building the tree. *)

val member : string -> value -> value option
(** First member of that name, when the value is an object. *)

val as_number : value -> float option
val as_string : value -> string option
val as_list : value -> value list option
