(** Minimal JSON support for the exporters.

    Emission works over pre-rendered value strings — callers pass
    [string_of_int], [quote]d strings, or nested [obj]/[arr] output —
    which keeps the exporters allocation-light and dependency-free.
    [validate] is a strict RFC 8259 syntax checker used by the tests and
    the [tpdbt trace] self-check; it builds no document tree. *)

val quote : string -> string
(** Quote and escape a string literal. *)

val obj : (string * string) list -> string
(** [obj [(k, v); ...]] renders [{"k":v,...}]; values must already be
    valid JSON text. *)

val arr : string list -> string

val validate : string -> (unit, string) result
(** [Error msg] carries the offset and reason of the first syntax
    error.  Exactly one top-level value is required. *)
