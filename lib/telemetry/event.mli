(** Structured engine events.

    One constructor per observable action of the two-phase translator;
    each is stamped with the engine's guest-instruction counter, which
    serves as the logical clock of the run (the simulated translator has
    no wall clock).  The type is deliberately self-contained — plain
    ints and strings — so the telemetry library has no dependency on the
    engine and any layer can consume the events. *)

type region_kind = Trace | Loop

type pool_reason =
  | Pool_full  (** the candidate pool reached [pool_trigger] blocks *)
  | Registered_twice  (** a registered block reached 2x the threshold *)

type recovery_action =
  | Retry  (** failed retranslation: members re-pooled, trigger decayed *)
  | Dissolve  (** region(s) dissolved back to cold profiling code *)
  | Retranslate  (** a corrupted block will be cold-translated again *)

type t =
  | Block_translated of { block : int; size : int }
      (** first execution: quick cold translation with instrumentation *)
  | Block_registered of { block : int; use : int; threshold : int }
      (** the block's use counter crossed the retranslation threshold *)
  | Pool_trigger of { pool_size : int; reason : pool_reason }
      (** the candidate pool fired; an optimisation round follows *)
  | Region_formed of {
      region : int;
      kind : region_kind;
      slots : int;
      instrs : int;
      entry_block : int;
    }
  | Region_entry of { region : int }
  | Region_side_exit of { region : int; slot : int }
      (** execution left the region through an unanticipated exit *)
  | Region_completion of { region : int }
      (** execution reached the region tail or took a loop back edge *)
  | Region_dissolved of { region : int; entries : int; side_exits : int }
      (** adaptive mode: the region's side-exit rate exceeded the limit *)
  | Phase_begin of { phase : string }
  | Phase_end of { phase : string }
      (** phase transitions; nested ("run" encloses each "optimize") *)
  | Fault_injected of { fault : string; target : int }
      (** the fault injector fired; [fault] is the
          {!Tpdbt_faults.Fault.kind_name} and [target] the victim id
          (block, region or pc; [-1] when no victim was available) *)
  | Recovery of { action : recovery_action; target : int }
      (** the engine's recovery response to an injected fault *)
  | Cache_evicted of { entry_kind : string; id : int; size : int }
      (** the bounded code cache evicted a resident entry;
          [entry_kind] is ["block"] or ["region"], [size] the
          translated guest instructions discarded *)
  | Cache_flushed of { entries : int; instrs : int }
      (** a whole-cache flush (the [Flush_all] policy going over
          capacity, or an injected [Cache_thrash] fault) *)
  | Shadow_divergence of { region : int; reg : int }
      (** the shadow-execution oracle replayed a sampled region entry
          on the cold path and register [reg] disagreed *)
  | Region_quarantined of { region : int; preserved_use : int }
      (** a diverging region was quarantined: dissolved with its
          members' profile counters preserved ([preserved_use] is
          their summed use count) and barred from re-optimisation *)
  | Engine_degraded of { quarantines : int }
      (** the bounded-quarantine watchdog tripped: all regions were
          dropped and the run continues profiling-only *)
  | Worker_start of { worker : int; task : int }
      (** a parallel-sweep worker domain began running a task *)
  | Worker_steal of { worker : int; victim : int; task : int }
      (** the task the worker is about to start was stolen from
          [victim]'s deque *)
  | Worker_finish of { worker : int; task : int }
      (** the task completed (its result reached the collector) *)
  | Supervisor_retry of {
      task : int;
      attempt : int;
      backoff : int;
      reason : string;
    }
      (** a supervised task failed and will be re-attempted (as attempt
          [attempt]) after [backoff] logical ticks *)
  | Supervisor_give_up of { task : int; attempts : int; reason : string }
      (** the retry budget ran out — the task is quarantined *)
  | Breaker_open of { task : int; failures : int }
      (** the task's circuit breaker tripped after [failures]
          consecutive failures — quarantined without burning the rest
          of its retry budget *)
  | Worker_lost of { worker : int; task : int }
      (** a worker domain died running [task]; the attempt was requeued
          on the survivors *)
  | Pool_degraded of { live : int }
      (** fewer than two live workers remain — the sweep continues
          inline on the collector *)
  | Checkpoint_corrupt of { bench : string; reason : string }
      (** a checkpoint file exists but failed validation (CRC, length,
          version, structure); the benchmark re-runs *)
  | Span_begin of { span : string }
      (** a profiling span opened ({!Span.enter}); spans nest and are
          stamped with the same clock as every other event *)
  | Span_end of {
      span : string;
      wall_ns : int;
      minor_words : int;
      major_words : int;
    }
      (** the matching span closed, carrying the measured wall-clock
          nanoseconds and the minor/major heap words allocated while it
          was open ([Gc.quick_stat] deltas); the guest-step width of the
          span is the difference of the two stamps *)
  | Stage_cost of { stage : string; cycles : float; steps : int; count : int }
      (** end-of-run attribution: total modeled [cycles], guest [steps]
          executed and charge [count] of one engine stage (interpret,
          translate, optimize, ...) — deterministic, from the cycle
          model, not wall time *)
  | Region_cost of { region : int; cycles : float; instrs : int }
      (** end-of-run attribution: modeled cycles charged to one region
          (dispatch + slot execution + side-exit penalties) and the
          guest instructions it executed *)

type stamped = { step : int; event : t }
(** [step] is the guest-instruction count when the event fired. *)

val kind_name : t -> string
(** Stable snake_case identifier, e.g. ["region_side_exit"].  Fault
    events use dotted names: ["fault.injected"], ["recovery.retry"],
    ["recovery.dissolve"], ["recovery.retranslate"]; so do the code
    cache and the shadow oracle: ["cache.evict"], ["cache.flush"],
    ["shadow.divergence"], ["region.quarantined"],
    ["engine.degraded"]; and the parallel sweep scheduler:
    ["worker.start"], ["worker.steal"], ["worker.finish"] (stamped
    with a scheduler sequence number, not the guest clock — the
    scheduler runs outside any engine).  The supervision layer adds
    ["supervisor.retry"], ["supervisor.giveup"], ["breaker.open"],
    ["worker.lost"], ["pool.degraded"] and ["checkpoint.corrupt"],
    stamped the same way.  The profiling layer adds ["span.begin"],
    ["span.end"], ["stage.cost"] and ["region.cost"]. *)

val region_kind_name : region_kind -> string
val pool_reason_name : pool_reason -> string
val recovery_action_name : recovery_action -> string

val payload : t -> (string * string) list
(** Constructor-specific fields as [(key, rendered JSON value)] pairs
    — the building block of both exporters. *)

val to_json : stamped -> string
(** One JSON object (single line, no trailing newline):
    [{"step":..,"kind":..,<payload fields>}]. *)

val pp : Format.formatter -> stamped -> unit
