(** Event sinks: where the engine's telemetry goes.

    The engine holds exactly one sink and tests it against {!null} by
    physical equality before constructing any event, so a run with the
    default sink pays nothing — no allocation, no call.  Use {!tee} to
    fan one run out to several consumers (e.g. a JSONL log plus a
    metrics collector). *)

type t = {
  emit : step:int -> Event.t -> unit;
  close : unit -> unit;
      (** flush/finalise; every sink tolerates repeated closes *)
}

val null : t
(** The no-op sink.  This exact value (physical identity) marks
    telemetry as disabled. *)

val is_null : t -> bool

val of_fun : (step:int -> Event.t -> unit) -> t
(** Wrap a callback; [close] is a no-op. *)

type buffer
(** Handle onto a {!memory} sink's storage. *)

val memory : ?limit:int -> unit -> t * buffer
(** Buffer events in memory.  At most [limit] events are kept (default
    1_000_000); later ones are counted but dropped. *)

val contents : buffer -> Event.stamped list
(** Buffered events, oldest first. *)

val dropped : buffer -> int
(** Events discarded once the buffer hit its limit. *)

val jsonl : out_channel -> t
(** Write each event as one JSON line ({!Event.to_json}).  [close]
    flushes but does not close the channel (the caller owns it). *)

val collect : into:Metrics.t -> t
(** Aggregate events into a registry:
    - a counter [events.<kind>] per event kind observed;
    - histogram [region.slots] and [region.instrs] from formation
      events;
    - histogram [region.side_exit_rate], observed per region at
      [close] from the accumulated entry/side-exit events (regions
      with no entries are skipped);
    - per span label, counters [span.<label>.count], [.steps] (stamp
      widths), [.minor_words], [.major_words] and a gauge [.seconds]
      (accumulated wall time — the one nondeterministic instrument);
    - per attribution stage, counters [stage.<stage>.count], [.steps]
      and a gauge [stage.<stage>.cycles]. *)

val tee : t list -> t
(** Forward every event to each sink in order.  [close] closes each. *)
