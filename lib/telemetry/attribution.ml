type stage_row = { stage : string; cycles : float; steps : int; count : int }
type region_row = { region : int; cycles : float; instrs : int }
type t = { stages : stage_row list; regions : region_row list }

let of_events events =
  (* Stages keep first-appearance order (the engine emits them in its
     fixed stage order); regions are keyed and later sorted by id. *)
  let stage_order = ref [] in
  let stage_tbl : (string, stage_row) Hashtbl.t = Hashtbl.create 16 in
  let region_tbl : (int, region_row) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun { Event.event; _ } ->
      match event with
      | Event.Stage_cost { stage; cycles; steps; count } ->
          (match Hashtbl.find_opt stage_tbl stage with
          | Some r ->
              Hashtbl.replace stage_tbl stage
                {
                  r with
                  cycles = r.cycles +. cycles;
                  steps = r.steps + steps;
                  count = r.count + count;
                }
          | None ->
              stage_order := stage :: !stage_order;
              Hashtbl.add stage_tbl stage { stage; cycles; steps; count })
      | Event.Region_cost { region; cycles; instrs } -> (
          match Hashtbl.find_opt region_tbl region with
          | Some r ->
              Hashtbl.replace region_tbl region
                {
                  r with
                  cycles = r.cycles +. cycles;
                  instrs = r.instrs + instrs;
                }
          | None -> Hashtbl.add region_tbl region { region; cycles; instrs })
      | _ -> ())
    events;
  {
    stages =
      List.rev_map (fun s -> Hashtbl.find stage_tbl s) !stage_order;
    regions =
      Hashtbl.fold (fun _ r acc -> r :: acc) region_tbl []
      |> List.sort (fun a b -> compare a.region b.region);
  }

let stages t = t.stages
let regions t = t.regions
let is_empty t = t.stages = [] && t.regions = []
let total_cycles t =
  List.fold_left (fun acc (r : stage_row) -> acc +. r.cycles) 0.0 t.stages

let pct total part = if total > 0.0 then 100.0 *. part /. total else 0.0

let render t =
  let buf = Buffer.create 512 in
  let total = total_cycles t in
  if t.stages <> [] then begin
    Buffer.add_string buf
      "stage attribution (model cycles):\n\
      \  stage            cycles            %        steps        charges\n";
    let rows =
      List.sort
        (fun (a : stage_row) (b : stage_row) ->
          compare (b.cycles, a.stage) (a.cycles, b.stage))
        t.stages
    in
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  %-16s %-17.0f %5.1f  %11d  %13d\n" r.stage
             r.cycles (pct total r.cycles) r.steps r.count))
      rows;
    Buffer.add_string buf
      (Printf.sprintf "  %-16s %-17.0f %5.1f\n" "total" total 100.0)
  end;
  if t.regions <> [] then begin
    Buffer.add_string buf
      "\nregion costs (model cycles):\n\
      \  region           cycles            %       instrs\n";
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  %-16d %-17.0f %5.1f  %11d\n" r.region r.cycles
             (pct total r.cycles) r.instrs))
      t.regions
  end;
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "kind,name,cycles,steps,count\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "stage,%s,%.17g,%d,%d\n" r.stage r.cycles r.steps
           r.count))
    t.stages;
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "region,%d,%.17g,%d,\n" r.region r.cycles r.instrs))
    t.regions;
  Buffer.contents buf
