(** Human-readable run summary.

    Condenses a stamped event stream into the story of the run: how
    much cold translation happened, when the pool fired, what regions
    were formed and how they behaved.  Intended for terminal output
    after [tpdbt trace]; the machine-readable forms are the JSONL log
    and {!Metrics.to_json}. *)

val render : ?metrics:Metrics.t -> Event.stamped list -> string
(** Events must be in emission order.  Includes per-event-kind totals,
    the step of each optimisation round, a per-region table (kind,
    slots, entries, side exits, completions, dissolution) and — when
    the stream carries {!Event.Stage_cost}/{!Event.Region_cost} events
    — the {!Attribution} cost tables.  [metrics], when given, appends
    the registry dump ({!Metrics.render}, histogram buckets
    included). *)
