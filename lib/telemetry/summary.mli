(** Human-readable run summary.

    Condenses a stamped event stream into the story of the run: how
    much cold translation happened, when the pool fired, what regions
    were formed and how they behaved.  Intended for terminal output
    after [tpdbt trace]; the machine-readable forms are the JSONL log
    and {!Metrics.to_json}. *)

val render : Event.stamped list -> string
(** Events must be in emission order.  Includes per-event-kind totals,
    the step of each optimisation round, and a per-region table
    (kind, slots, entries, side exits, completions, dissolution). *)
