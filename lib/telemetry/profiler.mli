(** Span aggregation: fold a stamped event stream into a per-label
    call tree.

    {!Event.Span_begin}/{!Event.Span_end} pairs become tree nodes —
    same label under the same parent merges — accumulating call count,
    guest-step width (difference of the two stamps), wall nanoseconds
    and allocated words (from the end event's payload).
    {!Event.Stage_cost} events become leaf children of whichever span
    is open when they fire, carrying the deterministic cycle-model
    attribution.  Everything else in the stream is ignored.

    Ends are matched by label, not position: interleaved streams (a
    scheduler's worker spans finish in completion order) still account
    every frame; an end with no matching open frame is dropped.

    Exports: collapsed-stack text ([root;child;leaf N] per line,
    weighted by {e self} guest steps — deterministic, so flamegraphs
    diff cleanly across runs) and a JSON profile for tooling. *)

type t
type node

val of_events : Event.stamped list -> t

val roots : t -> node list
(** Top-level spans, sorted by label — as are [children] everywhere. *)

val find : t -> string list -> node option
(** [find t ["engine.run"; "interpret"]] walks labels from the root. *)

val label : node -> string
val calls : node -> int

val steps : node -> int
(** Inclusive guest-step width of all merged instances. *)

val self_steps : node -> int
(** [steps] minus the children's — never negative. *)

val wall_ns : node -> int
val minor_words : node -> int
val major_words : node -> int

val cycles : node -> float
(** Modeled cycles; nonzero only on {!Event.Stage_cost} leaves. *)

val children : node -> node list

val to_folded : t -> string
(** Brendan-Gregg collapsed-stack text, one [path;to;node N] line per
    node with positive self weight, ready for [flamegraph.pl] or
    speedscope. *)

val to_json : t -> string
(** [{"version":1,"weight":"guest_steps","roots":[...]}]; every node
    carries label, calls, steps, self_steps, wall_ns, minor_words,
    major_words, cycles and children.  Wall time is the only
    nondeterministic field. *)
