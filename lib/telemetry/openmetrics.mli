(** OpenMetrics / Prometheus text exposition of a {!Metrics} registry.

    The scrape format ROADMAP item 5's [tpdbt serve] will speak, and
    the third artefact of [tpdbt profile].  Rendering is deterministic:
    families are sorted by (mangled) metric name, histogram buckets are
    emitted cumulatively with a final [le="+Inf"], counters become
    [<name>_total], and the document ends with [# EOF].  Values are
    printed as integers when exact, [%.17g] otherwise, so equal
    registries render byte-identically.

    [parse]/[validate] form a strict self-check mirroring
    {!Json.validate}: every exposition the CLI writes is re-parsed
    before it is reported as written. *)

val content_type : string
(** The OpenMetrics 1.0 media type, for HTTP-ish transports ([tpdbt
    serve] echoes it next to the exposition body). *)

val render : ?prefix:string -> Metrics.t -> string
(** Metric names are mangled to the exposition charset (every
    character outside [[a-zA-Z0-9_]] becomes ['_'] — dots in registry
    names become underscores) and prefixed with [prefix] (default
    ["tpdbt_"]). *)

type kind = Counter | Gauge | Histogram

type sample = {
  sample_name : string;
  labels : (string * string) list;
  value : float;
}

type family = { family_name : string; kind : kind; samples : sample list }

val parse : string -> family list
(** @raise Bad on the first violation: missing [# TYPE] or [# EOF],
    duplicate families, samples outside their family, non-cumulative
    or unsorted histogram buckets, a [_count] disagreeing with the
    [+Inf] bucket, malformed names, labels or numbers. *)

exception Bad of int * string
(** Line number and reason. *)

val parse_result : string -> (family list, string) result
val validate : string -> (unit, string) result
