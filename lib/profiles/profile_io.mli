(** Profile files.

    The paper's workflow (§4): "After the information for INIP(T),
    INIP(train) and AVEP are collected into files, we use an off-line
    tool to analyze the data."  This module is that file format — a
    line-oriented text serialisation of {!Tpdbt_dbt.Snapshot.t}
    (block structure, use/taken counters, regions with frozen counters)
    — so profiles can be collected by one `tpdbt profile` invocation and
    analysed by another.

    The format is versioned and self-describing; [load] rejects files
    whose structure is inconsistent (bad block extents, region slots out
    of range, truncated sections, negative or non-numeric counters,
    hostile element counts) with a typed
    {!Tpdbt_dbt.Error.Corrupt_profile} carrying the 1-based line number
    (0 = end of file) and the field that failed validation.  I/O
    failures surface as {!Tpdbt_dbt.Error.Io_error}. *)

val save : string -> Tpdbt_dbt.Snapshot.t -> unit
(** Write a profile file.
    @raise Sys_error on I/O failure. *)

val load : string -> (Tpdbt_dbt.Snapshot.t, Tpdbt_dbt.Error.t) result

val to_string : Tpdbt_dbt.Snapshot.t -> string
val of_string : string -> (Tpdbt_dbt.Snapshot.t, Tpdbt_dbt.Error.t) result
