module Snapshot = Tpdbt_dbt.Snapshot
module Block_map = Tpdbt_dbt.Block_map
module Region = Tpdbt_dbt.Region
module Error = Tpdbt_dbt.Error

let magic = "TPDBT-PROFILE 1"

let term_to_string = function
  | Block_map.Cond { taken; fallthrough } ->
      Printf.sprintf "cond %d %d" taken fallthrough
  | Block_map.Goto b -> Printf.sprintf "goto %d" b
  | Block_map.Call_to { callee; retsite } ->
      Printf.sprintf "call %d %d" callee retsite
  | Block_map.Return -> "return"
  | Block_map.Stop -> "stop"
  | Block_map.Fallthrough b -> Printf.sprintf "fall %d" b

let term_of_words = function
  | [ "cond"; a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some taken, Some fallthrough -> Ok (Block_map.Cond { taken; fallthrough })
      | _ -> Error "bad cond")
  | [ "goto"; a ] -> (
      match int_of_string_opt a with
      | Some b -> Ok (Block_map.Goto b)
      | None -> Error "bad goto")
  | [ "call"; a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some callee, Some retsite -> Ok (Block_map.Call_to { callee; retsite })
      | _ -> Error "bad call")
  | [ "return" ] -> Ok Block_map.Return
  | [ "stop" ] -> Ok Block_map.Stop
  | [ "fall"; a ] -> (
      match int_of_string_opt a with
      | Some b -> Ok (Block_map.Fallthrough b)
      | None -> Error "bad fall")
  | _ -> Error "bad terminator"

let role_to_char = function
  | Region.Taken -> 'T'
  | Region.Not_taken -> 'N'
  | Region.Always -> 'A'

let role_of_string = function
  | "T" -> Ok Region.Taken
  | "N" -> Ok Region.Not_taken
  | "A" -> Ok Region.Always
  | s -> Error ("bad role " ^ s)

let to_string (snapshot : Snapshot.t) =
  let buf = Buffer.create 4096 in
  let bmap = snapshot.Snapshot.block_map in
  let n = Block_map.block_count bmap in
  Buffer.add_string buf (magic ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "blocks %d entry %d\n" n (Block_map.entry_block bmap));
  for id = 0 to n - 1 do
    let b = Block_map.block bmap id in
    Buffer.add_string buf
      (Printf.sprintf "block %d %d %d %s\n" id b.Block_map.start_pc
         b.Block_map.end_pc
         (term_to_string b.Block_map.terminator))
  done;
  Buffer.add_string buf "counters\n";
  for id = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%d %d %d\n" id snapshot.Snapshot.use.(id)
         snapshot.Snapshot.taken.(id))
  done;
  Buffer.add_string buf
    (Printf.sprintf "regions %d\n" (List.length snapshot.Snapshot.regions));
  List.iter
    (fun r ->
      let kind = match r.Region.kind with Region.Trace -> "trace" | Region.Loop -> "loop" in
      Buffer.add_string buf
        (Printf.sprintf "region %d %s %d\n" r.Region.id kind
           (Array.length r.Region.slots));
      Array.iteri
        (fun slot block ->
          Buffer.add_string buf
            (Printf.sprintf "slot %d %d %d %d\n" slot block
               r.Region.frozen_use.(slot) r.Region.frozen_taken.(slot)))
        r.Region.slots;
      let emit_edge tag e =
        Buffer.add_string buf
          (Printf.sprintf "%s %d %d %c\n" tag e.Region.src e.Region.dst
             (role_to_char e.Region.role))
      in
      List.iter (emit_edge "edge") r.Region.edges;
      List.iter (emit_edge "back") r.Region.back_edges)
    snapshot.Snapshot.regions;
  Buffer.contents buf

exception Bad of Error.t

(* A counter / block / region count larger than this is treated as
   corruption rather than handed to [Array.make] (a hostile header could
   otherwise ask for gigabytes or raise [Invalid_argument]). *)
let max_count = 1_000_000

let of_string text =
  (* Lines carry their 1-based position in the original text so errors
     point at the offending line; blank lines are skipped but keep the
     numbering.  Line 0 means "at end of file". *)
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let fail ~line ~field reason =
    raise (Bad (Error.Corrupt_profile { line; field; reason }))
  in
  let int_exn ~line ~field s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail ~line ~field ("not an integer: " ^ s)
  in
  let count_exn ~line ~field s =
    let v = int_exn ~line ~field s in
    if v < 0 then fail ~line ~field (Printf.sprintf "negative count %d" v);
    if v > max_count then
      fail ~line ~field (Printf.sprintf "count %d exceeds limit %d" v max_count);
    v
  in
  let eol_line rest = match rest with [] -> 0 | (line, _) :: _ -> line in
  try
    match lines with
    | (_, header) :: rest when header = magic -> (
        match rest with
        | (bline, blocks_line) :: rest ->
            let nblocks, entry =
              match String.split_on_char ' ' blocks_line with
              | [ "blocks"; n; "entry"; e ] ->
                  ( count_exn ~line:bline ~field:"blocks" n,
                    int_exn ~line:bline ~field:"entry" e )
              | _ -> fail ~line:bline ~field:"blocks" "bad blocks header"
            in
            (* blocks *)
            let rec read_blocks i acc rest =
              if i = nblocks then (List.rev acc, rest)
              else
                match rest with
                | (line, text) :: rest -> (
                    match String.split_on_char ' ' text with
                    | "block" :: id :: start_pc :: end_pc :: term_words ->
                        let id = int_exn ~line ~field:"block.id" id in
                        let start_pc =
                          int_exn ~line ~field:"block.start_pc" start_pc
                        in
                        let end_pc = int_exn ~line ~field:"block.end_pc" end_pc in
                        let terminator =
                          match term_of_words term_words with
                          | Ok t -> t
                          | Error msg -> fail ~line ~field:"block.terminator" msg
                        in
                        let b =
                          {
                            Block_map.id;
                            start_pc;
                            end_pc;
                            size = end_pc - start_pc + 1;
                            terminator;
                          }
                        in
                        read_blocks (i + 1) (b :: acc) rest
                    | _ -> fail ~line ~field:"block" "expected block line")
                | [] ->
                    fail ~line:0 ~field:"block"
                      (Printf.sprintf "truncated: %d of %d blocks" i nblocks)
            in
            let blocks, rest = read_blocks 0 [] rest in
            let bmap =
              match Block_map.of_blocks ~entry_block:entry blocks with
              | Ok m -> m
              | Error msg -> fail ~line:bline ~field:"blocks" msg
            in
            (* counters *)
            let rest =
              match rest with
              | (_, "counters") :: rest -> rest
              | _ ->
                  fail ~line:(eol_line rest) ~field:"counters"
                    "expected counters header"
            in
            let use = Array.make nblocks 0 and taken = Array.make nblocks 0 in
            let rec read_counters i rest =
              if i = nblocks then rest
              else
                match rest with
                | (line, text) :: rest -> (
                    match String.split_on_char ' ' text with
                    | [ id; u; t ] ->
                        let id = int_exn ~line ~field:"counter.id" id in
                        if id < 0 || id >= nblocks then
                          fail ~line ~field:"counter.id"
                            (Printf.sprintf "block id %d out of range [0,%d)" id
                               nblocks);
                        let u = int_exn ~line ~field:"counter.use" u in
                        let t = int_exn ~line ~field:"counter.taken" t in
                        if u < 0 then
                          fail ~line ~field:"counter.use"
                            (Printf.sprintf "negative counter %d" u);
                        if t < 0 then
                          fail ~line ~field:"counter.taken"
                            (Printf.sprintf "negative counter %d" t);
                        if t > u then
                          fail ~line ~field:"counter.taken"
                            (Printf.sprintf "taken %d exceeds use %d" t u);
                        use.(id) <- u;
                        taken.(id) <- t;
                        read_counters (i + 1) rest
                    | _ -> fail ~line ~field:"counter" "bad counter line")
                | [] ->
                    fail ~line:0 ~field:"counter"
                      (Printf.sprintf "truncated: %d of %d counters" i nblocks)
            in
            let rest = read_counters 0 rest in
            (* regions *)
            let nregions, rest =
              match rest with
              | (line, text) :: rest -> (
                  match String.split_on_char ' ' text with
                  | [ "regions"; n ] ->
                      (count_exn ~line ~field:"regions" n, rest)
                  | _ -> fail ~line ~field:"regions" "expected regions header")
              | [] -> fail ~line:0 ~field:"regions" "truncated before regions"
            in
            let read_region rest =
              match rest with
              | (rline, text) :: rest -> (
                  match String.split_on_char ' ' text with
                  | [ "region"; id; kind; nslots ] ->
                      let id = int_exn ~line:rline ~field:"region.id" id in
                      let kind =
                        match kind with
                        | "trace" -> Region.Trace
                        | "loop" -> Region.Loop
                        | k ->
                            fail ~line:rline ~field:"region.kind"
                              ("bad region kind " ^ k)
                      in
                      let nslots =
                        count_exn ~line:rline ~field:"region.slots" nslots
                      in
                      let slots = Array.make nslots 0 in
                      let frozen_use = Array.make nslots 0 in
                      let frozen_taken = Array.make nslots 0 in
                      let rec read_slots i rest =
                        if i = nslots then rest
                        else
                          match rest with
                          | (line, text) :: rest -> (
                              match String.split_on_char ' ' text with
                              | [ "slot"; slot; block; fu; ft ] ->
                                  let slot =
                                    int_exn ~line ~field:"slot.index" slot
                                  in
                                  if slot <> i then
                                    fail ~line ~field:"slot.index"
                                      (Printf.sprintf "slot %d out of order \
                                                       (expected %d)"
                                         slot i);
                                  let block =
                                    int_exn ~line ~field:"slot.block" block
                                  in
                                  if block < 0 || block >= nblocks then
                                    fail ~line ~field:"slot.block"
                                      (Printf.sprintf
                                         "block id %d out of range [0,%d)"
                                         block nblocks);
                                  let fu =
                                    int_exn ~line ~field:"slot.frozen_use" fu
                                  in
                                  let ft =
                                    int_exn ~line ~field:"slot.frozen_taken" ft
                                  in
                                  if fu < 0 || ft < 0 then
                                    fail ~line ~field:"slot"
                                      "negative frozen counter";
                                  slots.(i) <- block;
                                  frozen_use.(i) <- fu;
                                  frozen_taken.(i) <- ft;
                                  read_slots (i + 1) rest
                              | _ -> fail ~line ~field:"slot" "bad slot line")
                          | [] ->
                              fail ~line:0 ~field:"slot"
                                (Printf.sprintf "truncated: %d of %d slots" i
                                   nslots)
                      in
                      let rest = read_slots 0 rest in
                      (* edges until a non-edge line *)
                      let rec read_edges edges backs rest =
                        match rest with
                        | (line, text) :: tail -> (
                            match String.split_on_char ' ' text with
                            | [ ("edge" | "back") as tag; src; dst; role ] ->
                                let e =
                                  {
                                    Region.src =
                                      int_exn ~line ~field:"edge.src" src;
                                    dst = int_exn ~line ~field:"edge.dst" dst;
                                    role =
                                      (match role_of_string role with
                                      | Ok r -> r
                                      | Error msg ->
                                          fail ~line ~field:"edge.role" msg);
                                  }
                                in
                                if tag = "edge" then
                                  read_edges (e :: edges) backs tail
                                else read_edges edges (e :: backs) tail
                            | _ -> (List.rev edges, List.rev backs, rest))
                        | [] -> (List.rev edges, List.rev backs, [])
                      in
                      let edges, back_edges, rest = read_edges [] [] rest in
                      let region =
                        {
                          Region.id;
                          kind;
                          slots;
                          edges;
                          back_edges;
                          frozen_use;
                          frozen_taken;
                        }
                      in
                      (match Region.validate region with
                      | Ok () -> ()
                      | Error msg ->
                          fail ~line:rline ~field:"region"
                            ("invalid region: " ^ msg));
                      (region, rest)
                  | _ -> fail ~line:rline ~field:"region" "expected region line")
              | [] -> fail ~line:0 ~field:"region" "truncated regions"
            in
            let rec read_regions i acc rest =
              if i = nregions then (List.rev acc, rest)
              else
                let region, rest = read_region rest in
                read_regions (i + 1) (region :: acc) rest
            in
            let regions, rest = read_regions 0 [] rest in
            (match rest with
            | [] -> ()
            | (line, _) :: _ -> fail ~line ~field:"trailer" "trailing garbage");
            Ok { Snapshot.block_map = bmap; use; taken; regions }
        | [] ->
            Error (Error.Corrupt_profile
                     { line = 0; field = "blocks"; reason = "empty profile" }))
    | (line, _) :: _ ->
        Error (Error.Corrupt_profile
                 { line; field = "magic"; reason = "bad magic" })
    | [] ->
        Error (Error.Corrupt_profile
                 { line = 0; field = "magic"; reason = "empty file" })
  with Bad err -> Error err

let save path snapshot =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string snapshot))

let load path =
  match open_in path with
  | exception Sys_error msg -> Error (Error.Io_error msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let len = in_channel_length ic in
          of_string (really_input_string ic len))
