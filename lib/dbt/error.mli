(** Typed error taxonomy for the translator and its tooling.

    Every guest-reachable failure path — a guest trap, a retranslation
    that keeps failing, a region formation that keeps aborting, the
    run watchdog, a desynchronised dispatcher, a corrupt profile file —
    is a constructor here, so callers can match on what went wrong
    instead of parsing exception strings, and so no raw exception
    escapes {!Engine.run} or the sweep runner. *)

type t =
  | Trap of Tpdbt_vm.Machine.trap
      (** the guest trapped (including injected illegal instructions) *)
  | Retranslation_failed of { region : int; block : int; attempts : int }
      (** optimised retranslation of the region rooted at [block]
          failed [attempts] times — past the bounded-retry limit, the
          engine gives up on the run (the IA32EL-style bail-out) *)
  | Region_aborted of { region : int; block : int; attempts : int }
      (** region formation rooted at [block] aborted mid-way more than
          the retry limit allows *)
  | Limit_exceeded of { steps : int; max_steps : int }
      (** the run watchdog: the guest-instruction budget ran out before
          the program halted *)
  | Deadline_exceeded of { steps : int; deadline : int }
      (** the supervisor's cooperative per-task watchdog: the run blew
          through the step deadline the sweep harness imposed on it.
          Unlike {!Limit_exceeded} this is {e fatal} — a deadlined task
          is a stuck task, and the supervision layer retries or
          quarantines it rather than trusting its partial results *)
  | Suspended of { steps : int; deadline : bool }
      (** the run was cooperatively suspended mid-flight — by the
          periodic snapshot trigger ([deadline = false]) or by a
          deadline the configuration turned into a resumable stop
          ([deadline = true]; see {!Engine.config}).  Non-fatal: the
          engine's state at [steps] is sound and a snapshot of it
          resumes to a byte-identical completion *)
  | Dispatch_lost of { pc : int }
      (** the dispatcher lost sync with the block map (control landed
          where no block starts, or a region slot's block was not at
          its expected pc) — an internal invariant violation surfaced
          as data, not as an assertion failure *)
  | Corrupt_profile of { line : int; field : string; reason : string }
      (** a profile file failed load-time validation; [line] is
          1-based, 0 for end-of-file truncation *)
  | Io_error of string
  | Invalid_program of string
      (** a guest image that decodes but cannot be translated — e.g. a
          branch or call as the very last instruction, which leaves a
          block with no fall-through ({!Block_map.build_result}).
          Generated (fuzzed) and hostile inputs land here instead of
          raising [Invalid_argument] out of engine construction. *)

exception Error of t
(** For the few call sites that must raise (e.g. a legacy wrapper);
    everything else passes [t] in a [result]. *)

val fatal : t -> bool
(** Does this error invalidate the run's results?  [Limit_exceeded] and
    [Suspended] are the non-fatal constructors: the run was cut short
    (by its budget, or cooperatively for a snapshot) but everything it
    did compute is sound — the sweep harness keeps the partial run, and
    a suspended run resumes.  Every other constructor is fatal. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
