type policy = Flush_all | Lru | Hot_protect
type entry_kind = Block | Region

type entry = {
  ekind : entry_kind;
  id : int;
  size : int;
  mutable stamp : int;
  mutable corrupt : int64 option;
}

type stats = {
  mutable evictions : int;
  mutable flushes : int;
  mutable evicted_instrs : int;
  mutable peak : int;
}

type t = {
  pol : policy;
  capacity : int option;
  hot_window : int;
  table : (entry_kind * int, entry) Hashtbl.t;
  mutable occupied : int;
  mutable corrupted : int;
      (* resident entries carrying a corruption salt — lets the
         engine's per-region-entry corruption probe short-circuit (no
         hashtable lookup, no key allocation) on the clean common
         case *)
  st : stats;
}

let create ?capacity ?(policy = Lru) ?(hot_window = 10_000) () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Code_cache.create: capacity <= 0"
  | Some _ | None -> ());
  if hot_window < 0 then invalid_arg "Code_cache.create: hot_window < 0";
  {
    pol = policy;
    capacity;
    hot_window;
    table = Hashtbl.create 64;
    occupied = 0;
    corrupted = 0;
    st = { evictions = 0; flushes = 0; evicted_instrs = 0; peak = 0 };
  }

let bounded t = t.capacity <> None
let policy t = t.pol
let used t = t.occupied
let peak t = t.st.peak
let stats t = t.st
let mem t ekind id = Hashtbl.mem t.table (ekind, id)

(* Victim total order: oldest stamp first, blocks before regions at
   equal stamps, then id — never hash-table iteration order. *)
let kind_rank = function Block -> 0 | Region -> 1

let entry_order a b =
  match compare a.stamp b.stamp with
  | 0 -> (
      match compare (kind_rank a.ekind) (kind_rank b.ekind) with
      | 0 -> compare a.id b.id
      | c -> c)
  | c -> c

let drop t e =
  Hashtbl.remove t.table (e.ekind, e.id);
  t.occupied <- t.occupied - e.size;
  if e.corrupt <> None then t.corrupted <- t.corrupted - 1

let evict t e =
  drop t e;
  t.st.evictions <- t.st.evictions + 1;
  t.st.evicted_instrs <- t.st.evicted_instrs + e.size

let residents_sorted ?except t =
  Hashtbl.fold
    (fun _ e acc ->
      match except with Some x when x == e -> acc | Some _ | None -> e :: acc)
    t.table []
  |> List.sort entry_order

let flush_keeping ?except t =
  let victims = residents_sorted ?except t in
  List.iter (evict t) victims;
  if victims <> [] then t.st.flushes <- t.st.flushes + 1;
  victims

let flush t = flush_keeping t

(* Evict the (stamp, kind, id)-least unprotected entry; [None] when
   every candidate is protected (Hot_protect soft overflow). *)
let pick_victim t ~now ~except =
  let protected_ e =
    t.pol = Hot_protect && e.ekind = Region && now - e.stamp <= t.hot_window
  in
  Hashtbl.fold
    (fun _ e best ->
      if e == except || protected_ e then best
      else
        match best with
        | Some b when entry_order b e <= 0 -> best
        | Some _ | None -> Some e)
    t.table None

let insert t ~now ~ekind ~id ~size =
  if size < 0 then invalid_arg "Code_cache.insert: negative size";
  (match Hashtbl.find_opt t.table (ekind, id) with
  | Some old -> drop t old
  | None -> ());
  let e = { ekind; id; size; stamp = now; corrupt = None } in
  Hashtbl.replace t.table (ekind, id) e;
  t.occupied <- t.occupied + size;
  if t.occupied > t.st.peak then t.st.peak <- t.occupied;
  match t.capacity with
  | None -> []
  | Some cap ->
      if t.occupied <= cap then []
      else if t.pol = Flush_all then flush_keeping ~except:e t
      else begin
        let victims = ref [] in
        let exhausted = ref false in
        while t.occupied > cap && not !exhausted do
          match pick_victim t ~now ~except:e with
          | None -> exhausted := true
          | Some v ->
              evict t v;
              victims := v :: !victims
        done;
        List.rev !victims
      end

let touch t ~now ekind id =
  match Hashtbl.find_opt t.table (ekind, id) with
  | Some e -> e.stamp <- now
  | None -> ()

let remove t ekind id =
  match Hashtbl.find_opt t.table (ekind, id) with
  | Some e -> drop t e
  | None -> ()

let resident_regions t =
  Hashtbl.fold
    (fun (ekind, id) _ acc -> if ekind = Region then id :: acc else acc)
    t.table []
  |> List.sort compare

let corrupt_region t id ~salt =
  match Hashtbl.find_opt t.table (Region, id) with
  | Some e ->
      if e.corrupt = None then t.corrupted <- t.corrupted + 1;
      e.corrupt <- Some salt;
      true
  | None -> false

let has_corruption t = t.corrupted > 0

let corruption t ekind id =
  match Hashtbl.find_opt t.table (ekind, id) with
  | Some e -> e.corrupt
  | None -> None

(* Snapshot support: the resident set in the deterministic victim
   order, and the inverse — repopulating a fresh cache without running
   any eviction accounting.  Restored entries keep their stamps and
   corruption salts, so victim selection after a resume is identical to
   an uninterrupted run's. *)

let residents t = residents_sorted t

let restore_entry t ~ekind ~id ~size ~stamp ~corrupt =
  if size < 0 then invalid_arg "Code_cache.restore_entry: negative size";
  (match Hashtbl.find_opt t.table (ekind, id) with
  | Some old -> drop t old
  | None -> ());
  Hashtbl.replace t.table (ekind, id) { ekind; id; size; stamp; corrupt };
  t.occupied <- t.occupied + size;
  if corrupt <> None then t.corrupted <- t.corrupted + 1;
  if t.occupied > t.st.peak then t.st.peak <- t.occupied

let set_stats t ~evictions ~flushes ~evicted_instrs ~peak =
  t.st.evictions <- evictions;
  t.st.flushes <- flushes;
  t.st.evicted_instrs <- evicted_instrs;
  t.st.peak <- peak

let policy_name = function
  | Flush_all -> "flush_all"
  | Lru -> "lru"
  | Hot_protect -> "hot_protect"

let policy_of_name = function
  | "flush_all" -> Some Flush_all
  | "lru" -> Some Lru
  | "hot_protect" -> Some Hot_protect
  | _ -> None

let all_policies = [ Flush_all; Lru; Hot_protect ]
