type params = {
  cold_translate_per_instr : float;
  profiled_exec_per_instr : float;
  profiling_op_cost : float;
  translated_exec_per_instr : float;
  optimize_per_instr : float;
  optimized_dispatch : float;
  side_exit_penalty : float;
  evict_per_instr : float;
  shadow_replay_per_instr : float;
}

let default =
  {
    cold_translate_per_instr = 30.0;
    profiled_exec_per_instr = 6.0;
    profiling_op_cost = 2.0;
    translated_exec_per_instr = 3.0;
    optimize_per_instr = 300.0;
    optimized_dispatch = 2.0;
    side_exit_penalty = 6.0;
    evict_per_instr = 1.0;
    shadow_replay_per_instr = 6.0;
  }

type counters = {
  mutable cycles : float;
  mutable blocks_translated : int;
  mutable regions_formed : int;
  mutable region_entries : int;
  mutable region_completions : int;
  mutable loop_backs : int;
  mutable side_exits : int;
  mutable optimization_rounds : int;
  mutable regions_dissolved : int;
  mutable faults_injected : int;
  mutable retrans_retries : int;
  mutable fault_dissolves : int;
  mutable blocks_retranslated : int;
  mutable cache_evictions : int;
  mutable cache_flushes : int;
  mutable cache_evicted_instrs : int;
  mutable cache_peak_instrs : int;
  mutable shadow_replays : int;
  mutable shadow_divergences : int;
  mutable corrupted_entries : int;
  mutable regions_quarantined : int;
  mutable watchdog_degraded : int;
}

let fresh_counters () =
  {
    cycles = 0.0;
    blocks_translated = 0;
    regions_formed = 0;
    region_entries = 0;
    region_completions = 0;
    loop_backs = 0;
    side_exits = 0;
    optimization_rounds = 0;
    regions_dissolved = 0;
    faults_injected = 0;
    retrans_retries = 0;
    fault_dissolves = 0;
    blocks_retranslated = 0;
    cache_evictions = 0;
    cache_flushes = 0;
    cache_evicted_instrs = 0;
    cache_peak_instrs = 0;
    shadow_replays = 0;
    shadow_divergences = 0;
    corrupted_entries = 0;
    regions_quarantined = 0;
    watchdog_degraded = 0;
  }

let record c registry =
  let module M = Tpdbt_telemetry.Metrics in
  let g = M.gauge registry "perf.cycles" in
  M.set g (M.gauge_value g +. c.cycles);
  List.iter
    (fun (name, v) -> M.add (M.counter registry ("perf." ^ name)) v)
    [
      ("blocks_translated", c.blocks_translated);
      ("regions_formed", c.regions_formed);
      ("region_entries", c.region_entries);
      ("region_completions", c.region_completions);
      ("loop_backs", c.loop_backs);
      ("side_exits", c.side_exits);
      ("optimization_rounds", c.optimization_rounds);
      ("regions_dissolved", c.regions_dissolved);
      ("faults_injected", c.faults_injected);
      ("retrans_retries", c.retrans_retries);
      ("fault_dissolves", c.fault_dissolves);
      ("blocks_retranslated", c.blocks_retranslated);
      ("cache_evictions", c.cache_evictions);
      ("cache_flushes", c.cache_flushes);
      ("cache_evicted_instrs", c.cache_evicted_instrs);
      ("cache_peak_instrs", c.cache_peak_instrs);
      ("shadow_replays", c.shadow_replays);
      ("shadow_divergences", c.shadow_divergences);
      ("corrupted_entries", c.corrupted_entries);
      ("regions_quarantined", c.regions_quarantined);
      ("watchdog_degraded", c.watchdog_degraded);
    ]
