(** The two-phase dynamic binary translator.

    Phase 1 (profiling): every block executes under instrumentation
    that maintains its [use] and [taken] counters.  When a block's [use]
    reaches the retranslation threshold it is registered in the
    candidate pool; once the pool holds [pool_trigger] blocks — or a
    registered block reaches the threshold a second time — the
    optimisation phase runs.

    Phase 2 (optimisation): regions are formed over the candidates from
    their current branch probabilities ({!Region_former}), each member
    block's counters are frozen (they are the INIP(T) data), members are
    retranslated through the optimiser, and subsequent executions that
    enter a region at its entry run as optimised code under the
    performance model.

    A run with [threshold = 0] never optimises: the final counters are
    the AVEP (reference input) or INIP(train) (training input) profile. *)

type config = {
  threshold : int;  (** retranslation threshold T; [<= 0] = never optimise *)
  pool_trigger : int;  (** pool size that triggers the optimisation phase *)
  min_branch_prob : float;
  max_region_slots : int;
  enable_duplication : bool;
  enable_diamonds : bool;
  trace_scheduling : bool;
      (** Schedule regions as traces: result latencies overlap across
          region-internal edges ({!Optimizer.region_slot_cycles_pipelined}).
          Off by default — the ablation studies quantify it. *)
  regions_across_calls : bool;
      (** Let region formation follow call edges into hot callees
          (partial inlining); a [ret] ends the region.  Off by default —
          quantified by the "inlining" ablation. *)
  adaptive : bool;
      (** Paper §5 future work: monitor each region's side-exit rate and
          dissolve regions that keep exiting unexpectedly; their blocks
          return to the profiling phase (counters reset — a fresh,
          phase-aware profile) and can be re-optimised later. *)
  reopt_side_exit_rate : float;
      (** dissolve when side_exits / entries exceeds this (default 0.3) *)
  reopt_min_entries : int;
      (** observe at least this many entries before judging (default 64) *)
  reopt_limit : int;
      (** a block may be dissolved at most this many times (default 3);
          regions containing a block at the limit stop being monitored,
          which prevents dissolve/reform thrashing on inherently
          unstable branches *)
  perf : Perf_model.params;
  max_steps : int;  (** guest-instruction budget for the run *)
  deadline : int option;
      (** Supervision deadline in guest instructions, polled
          cooperatively by the step loop at block granularity.  [None]
          (the default) imposes none.  Unlike [max_steps] — which cuts a
          run short but keeps its sound partial results
          ({!Error.Limit_exceeded}, non-fatal) — blowing the deadline is
          the supervisor declaring the task stuck, and surfaces as the
          {e fatal} {!Error.Deadline_exceeded} so the supervision layer
          retries or quarantines the task instead of trusting it. *)
  snapshot_every : int;
      (** Cooperative snapshot trigger, polled by the step loop at block
          granularity like [deadline]: a positive value stops the run
          with the {e non-fatal} {!Error.Suspended} once that many
          further guest instructions have executed, so the caller can
          {!capture} the engine and later {!run} it (or a {!restore}d
          copy) again.  [0] (the default) disables the trigger at zero
          cost — the poll compares against [max_int]. *)
  suspend_on_deadline : bool;
      (** Turn a blown [deadline] into the resumable {!Error.Suspended}
          (with [deadline = true]) instead of the fatal
          {!Error.Deadline_exceeded}: the supervision layer snapshots
          and re-queues the task rather than re-running it from
          scratch.  Off by default. *)
  sink : Tpdbt_telemetry.Sink.t;
      (** Telemetry sink receiving structured {!Tpdbt_telemetry.Event}s
          stamped with the guest-instruction counter.  Defaults to
          {!Tpdbt_telemetry.Sink.null}, which the engine detects and
          short-circuits — a run with the null sink performs no
          telemetry work at all.  The engine never closes the sink;
          the caller owns it. *)
  faults : Tpdbt_faults.Plan.t option;
      (** Deterministic fault plan ({!Tpdbt_faults.Plan}).  Each arm
          fires at the first matching injection site whose
          guest-instruction step is at or past the arm's step; arms
          that never find a site are reported unfired. *)
  retry_limit : int;
      (** Recovery budget: how many injected retranslation failures /
          formation aborts a single entry block may absorb before the
          run stops with a typed {!Error.t} (default 3). *)
  cache_capacity : int option;
      (** Code-cache budget in translated guest instructions; [None]
          (the default) is unbounded and leaves every cycle count
          byte-identical to an engine without the cache manager.  When
          set, each cold-translated block and each committed region is
          charged its instruction count, and going over budget evicts
          victims per [cache_policy] — a victim block pays cold
          translation again on its next execution, a victim region's
          members fall back to profiled execution with their counters
          preserved and re-enter the candidate pool, so re-forming it
          pays the retranslation cost again ({!Code_cache}). *)
  cache_policy : Code_cache.policy;
      (** Eviction policy under pressure (default {!Code_cache.Lru}). *)
  cache_backoff : int;
      (** Bounded cache only: minimum guest-step gap between
          optimisation rounds (default 1000).  Eviction re-pools whole
          regions at once, which would otherwise re-trigger the
          optimiser after nearly every block execution — the backoff
          keeps the thrash in the cycle model instead of wall-clock
          time.  Ignored (no gap) when the cache is unbounded, so the
          default configuration is unaffected. *)
  shadow_sample : int;
      (** Shadow-execution oracle sampling period: every [N]th entry to
          each region (deterministically, the 1st, [N+1]th, ... by the
          region's own entry count) is replayed block-by-block on the
          cold path and the architectural register state compared.  A
          divergence — only a silently corrupted cache entry produces
          one — quarantines the region: dissolved with its members'
          use/taken counters {e preserved} and barred from
          re-optimisation.  [0] (the default) disables the oracle. *)
  max_quarantines : int;
      (** Bounded-quarantine watchdog: after more than this many
          quarantines (default 4) the engine stops trusting its own
          optimiser — every region is dropped and the run degrades to
          profiling-only (counters kept, no further optimisation). *)
}

val config :
  ?pool_trigger:int ->
  ?adaptive:bool ->
  ?sink:Tpdbt_telemetry.Sink.t ->
  ?faults:Tpdbt_faults.Plan.t ->
  ?retry_limit:int ->
  ?cache_capacity:int ->
  ?cache_policy:Code_cache.policy ->
  ?cache_backoff:int ->
  ?shadow_sample:int ->
  ?max_quarantines:int ->
  ?deadline:int ->
  ?snapshot_every:int ->
  ?suspend_on_deadline:bool ->
  threshold:int ->
  unit ->
  config
(** Defaults: pool trigger 16, min branch prob 0.7, 16 slots,
    duplication and diamonds on, adaptive off (side-exit rate 0.3, min
    entries 64), {!Perf_model.default}, 200M steps, no deadline, no
    snapshot trigger, deadline fatal, null sink, no faults, retry
    limit 3, unbounded cache (LRU when bounded), shadow oracle off,
    watchdog at 4 quarantines. *)

val profiling_only : config
(** [threshold = 0]: collect AVEP / INIP(train) profiles. *)

type region_stats = {
  entries : int;  (** times the dispatcher entered the region *)
  side_exits : int;  (** unanticipated exits *)
  loop_back_taken : int;  (** continuous loop profiling: back edges taken *)
  loop_back_seen : int;  (** ... out of this many latch executions *)
}

type result = {
  snapshot : Snapshot.t;
  counters : Perf_model.counters;
  steps : int;  (** guest instructions executed *)
  profiling_ops : int;
  outputs : int list;
  region_stats : (int * region_stats) list;
      (** per surviving region, by region id.  [loop_back_taken /
          loop_back_seen] is the {e continuously} measured loop-back
          probability (the lightweight instrumentation of paper §5 /
          [21]), available even though the region's profile counters are
          frozen. *)
  error : Error.t option;
      (** [None] for a clean halt.  Guest traps, exhausted recovery
          budgets, a blown step budget ({!Error.Limit_exceeded}) and
          dispatcher confusion after corruption all land here as typed
          errors instead of exceptions. *)
  faults : Tpdbt_faults.Fault.report option;
      (** Present iff the run was configured with a fault plan: which
          arms fired (and on what victim) and which never found a
          site. *)
}

val trap : result -> Tpdbt_vm.Machine.trap option
(** Convenience: the guest trap, when [error] is [Some (Trap _)]. *)

type t

val create :
  ?config:config -> ?mem_words:int -> seed:int64 -> Tpdbt_isa.Program.t -> t
(** [config] defaults to [config ~threshold:1000 ()]. *)

val run :
  ?checkpoint_every:int ->
  ?on_checkpoint:(steps:int -> Snapshot.t -> unit) ->
  t ->
  result
(** Run to halt, trap or step budget, then snapshot.

    If [checkpoint_every] is given (in guest instructions),
    [on_checkpoint] is called at block boundaries roughly that often
    with the number of instructions executed and a copy of the current
    cumulative profile — the raw material for phase analysis
    ([Tpdbt_profiles.Phases]). *)

val block_map : t -> Block_map.t

val machine : t -> Tpdbt_vm.Machine.t
(** The guest machine the engine drives.  After {!run} this is the
    end-of-run architectural state — registers, memory, outputs — which
    is what the differential-fuzzing fingerprint and the superoptimizer
    miner compare against a pure-interpreter reference. *)

val suspended : result -> bool
(** [true] iff [result.error] is {!Error.Suspended} — the run stopped
    cooperatively and the engine can be {!capture}d and resumed. *)

(** {2 Mid-run images}

    A suspended engine ({!Error.Suspended}, via [snapshot_every] or
    [suspend_on_deadline]) can be re-{!run} in place, or {!capture}d
    into a plain-data {!image} and later {!restore}d — in this process
    or another — such that resuming and running to completion yields
    results byte-identical (cycle totals, outputs, counters, fault
    shots, eviction statistics) to the uninterrupted run.

    The image holds every piece of {e evolving} state: the machine
    image, profile counters, per-block translation states, regions in
    formation order with their monitor counters, the candidate pool in
    its exact order, the fault injector's cursor, the code cache's
    resident set with stamps, and the performance counters.  State that
    is a {e pure function} of the program and the config — the block
    map, region slot cycles, the dispatcher's entry map — is not
    stored; {!restore} recomputes it, so it cannot drift from the
    captured data.  [restore] must therefore be given the same program
    and an equivalent config, which the serialized form
    ({!Exec_snapshot}) enforces with a config digest. *)

type image = {
  ex_machine : Tpdbt_vm.Machine.image;
  ex_use : int array;
  ex_taken : int array;
  ex_state : int array;  (** 0 = cold, 1 = registered, 2 = optimised *)
  ex_touched : bool array;
  ex_dissolve : int array;
  ex_regions : Region.t list;  (** formation order, oldest first *)
  ex_monitors : (int * (int * int * int * int * bool)) list;
      (** region id -> (entries, side exits, loop-backs taken,
          loop-backs seen, disabled), ascending id *)
  ex_next_region_id : int;
  ex_pool : int list;  (** exact pool order *)
  ex_pool_trigger_now : int;
  ex_fault_fails : int array;
  ex_quarantined : bool array;
  ex_quarantine_count : int;
  ex_degraded : bool;
  ex_last_round_step : int;
  ex_cache : (int * int * int * int * int64 option) list;
      (** (kind rank, id, size, stamp, corruption salt) in the cache's
          deterministic victim order; kind rank 0 = block, 1 = region *)
  ex_cache_stats : int * int * int * int;
      (** evictions, flushes, evicted instrs, peak *)
  ex_counters : Perf_model.counters;
  ex_pending : Tpdbt_faults.Fault.arm list;
  ex_fired : Tpdbt_faults.Fault.shot list;
}

val capture : t -> image
(** Deep-copy the engine's evolving state.  Meaningful only between
    {!run} calls (the counters are mirrored at the end of each run) —
    in practice, after a run stopped with {!Error.Suspended}. *)

val restore : ?config:config -> Tpdbt_isa.Program.t -> image -> t
(** Rebuild an engine from a {!capture}d image.  [program] and [config]
    must match the ones the captured engine ran under — the resumed
    run's determinism guarantee holds only then.
    @raise Invalid_argument if the image is inconsistent with the
    program (array lengths vs block count, out-of-range block ids,
    malformed cache entries or block states). *)
