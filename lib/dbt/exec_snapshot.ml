module Machine = Tpdbt_vm.Machine
module Fault = Tpdbt_faults.Fault

(* Version 1: deterministic text serialisation of a mid-run engine
   image, CRC-guarded with the same crash-consistency scheme as the
   checkpoint store (magic line, then "crc <hex> <len>", then exactly
   <len> payload bytes).  Floats travel as %h so they round-trip
   bit-exactly; the config and program are not stored, only digests —
   restore recomputes all derived state from the caller's copies and
   the digests guard against resuming under the wrong ones. *)
let magic = "TPDBT-SNAP 1"
let magic_prefix = "TPDBT-SNAP "

type parsed = {
  sn_config_digest : string;
  sn_program_digest : string;
  sn_image : Engine.image;
}

type classified =
  | Snapshot of parsed
  | Stale_version of string
  | Corrupt of string

(* ---- CRC32 ------------------------------------------------------------- *)

(* Table-driven CRC32 (IEEE 802.3, reflected), local so the format
   stays dependency-free — the same idiom as the checkpoint store. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor (Int32.shift_right_logical !c 1) 0xEDB88320l
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let crc_hex s = Printf.sprintf "%08lx" (crc32 s)

(* ---- digests ----------------------------------------------------------- *)

(* Everything that steers execution; the suspension machinery itself
   (deadline, snapshot_every, suspend_on_deadline) is deliberately
   excluded so a resume may re-arm its own triggers, and so are the
   sink (observation only) and the fault plan (the image carries the
   injector's full cursor instead). *)
let config_digest (c : Engine.config) =
  let p = c.Engine.perf in
  crc_hex
    (Printf.sprintf
       "%d %d %h %d %b %b %b %b %b %h %d %d %h %h %h %h %h %h %h %h %h %d %d \
        %s %s %d %d %d"
       c.Engine.threshold c.Engine.pool_trigger c.Engine.min_branch_prob
       c.Engine.max_region_slots c.Engine.enable_duplication
       c.Engine.enable_diamonds c.Engine.trace_scheduling
       c.Engine.regions_across_calls c.Engine.adaptive
       c.Engine.reopt_side_exit_rate c.Engine.reopt_min_entries
       c.Engine.reopt_limit p.Perf_model.cold_translate_per_instr
       p.Perf_model.profiled_exec_per_instr p.Perf_model.profiling_op_cost
       p.Perf_model.translated_exec_per_instr p.Perf_model.optimize_per_instr
       p.Perf_model.optimized_dispatch p.Perf_model.side_exit_penalty
       p.Perf_model.evict_per_instr p.Perf_model.shadow_replay_per_instr
       c.Engine.max_steps c.Engine.retry_limit
       (match c.Engine.cache_capacity with
       | None -> "-"
       | Some n -> string_of_int n)
       (Code_cache.policy_name c.Engine.cache_policy)
       c.Engine.cache_backoff c.Engine.shadow_sample c.Engine.max_quarantines)

let program_digest (p : Tpdbt_isa.Program.t) =
  (* The program is pure immutable data (no closures, no cycles), so
     an unshared marshal of it is a canonical byte string. *)
  Digest.to_hex (Digest.string (Marshal.to_string p [ Marshal.No_sharing ]))

(* ---- serialisation ----------------------------------------------------- *)

let role_code = function
  | Region.Taken -> "t"
  | Region.Not_taken -> "n"
  | Region.Always -> "a"

let counters_to_line (c : Perf_model.counters) =
  Printf.sprintf
    "counters %h %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d \
     %d"
    c.Perf_model.cycles c.blocks_translated c.regions_formed c.region_entries
    c.region_completions c.loop_backs c.side_exits c.optimization_rounds
    c.regions_dissolved c.faults_injected c.retrans_retries c.fault_dissolves
    c.blocks_retranslated c.cache_evictions c.cache_flushes
    c.cache_evicted_instrs c.cache_peak_instrs c.shadow_replays
    c.shadow_divergences c.corrupted_entries c.regions_quarantined
    c.watchdog_degraded

let payload ~config_digest:cd ~program_digest:pd (im : Engine.image) =
  let buf = Buffer.create 16384 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let add_ints name a =
    Buffer.add_string buf name;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int (Array.length a));
    Array.iter
      (fun v ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (string_of_int v))
      a;
    Buffer.add_char buf '\n'
  in
  let add_bools name a = add_ints name (Array.map (fun b -> if b then 1 else 0) a) in
  let add_arm (a : Fault.arm) =
    add "arm %d %s %Ld" a.Fault.step (Fault.kind_name a.Fault.kind) a.Fault.salt
  in
  add "config %s" cd;
  add "program %s" pd;
  let m = im.Engine.ex_machine in
  add "mem_words %d" m.Machine.im_mem_words;
  add_ints "regs" m.Machine.im_regs;
  add "mem %d%s"
    (Array.length m.Machine.im_mem)
    (String.concat ""
       (Array.to_list
          (Array.map
             (fun (a, v) -> Printf.sprintf " %d %d" a v)
             m.Machine.im_mem)));
  add "pc %d" m.Machine.im_pc;
  add_ints "ret" m.Machine.im_ret_stack;
  let ph, pl, pzh, pzl = m.Machine.im_prng in
  add "prng %d %d %d %d" ph pl pzh pzl;
  add_ints "outputs" m.Machine.im_outputs;
  add "msteps %d" m.Machine.im_steps;
  add "halted %d" (if m.Machine.im_halted then 1 else 0);
  add "poisoned %d%s"
    (List.length m.Machine.im_poisoned)
    (String.concat ""
       (List.map (fun p -> " " ^ string_of_int p) m.Machine.im_poisoned));
  add_ints "use" im.Engine.ex_use;
  add_ints "taken" im.Engine.ex_taken;
  add_ints "bstate" im.Engine.ex_state;
  add_bools "touched" im.Engine.ex_touched;
  add_ints "dissolve" im.Engine.ex_dissolve;
  add "regions %d" (List.length im.Engine.ex_regions);
  List.iter
    (fun (r : Region.t) ->
      add "region %d %s" r.Region.id
        (match r.Region.kind with Region.Trace -> "trace" | Region.Loop -> "loop");
      add_ints "slots" r.Region.slots;
      let edges name es =
        add "%s %d%s" name (List.length es)
          (String.concat ""
             (List.map
                (fun (e : Region.edge) ->
                  Printf.sprintf " %d %d %s" e.Region.src e.Region.dst
                    (role_code e.Region.role))
                es))
      in
      edges "edges" r.Region.edges;
      edges "back" r.Region.back_edges;
      add_ints "fuse" r.Region.frozen_use;
      add_ints "ftaken" r.Region.frozen_taken;
      let e, s, lt, ls, dis =
        match List.assoc_opt r.Region.id im.Engine.ex_monitors with
        | Some mon -> mon
        | None -> invalid_arg "Exec_snapshot: region without monitor"
      in
      add "monitor %d %d %d %d %d" e s lt ls (if dis then 1 else 0))
    im.Engine.ex_regions;
  add "next_region %d" im.Engine.ex_next_region_id;
  add "pool %d%s"
    (List.length im.Engine.ex_pool)
    (String.concat ""
       (List.map (fun b -> " " ^ string_of_int b) im.Engine.ex_pool));
  add "pool_trigger %d" im.Engine.ex_pool_trigger_now;
  add_ints "fault_fails" im.Engine.ex_fault_fails;
  add_bools "quarantined" im.Engine.ex_quarantined;
  add "qcount %d" im.Engine.ex_quarantine_count;
  add "degraded %d" (if im.Engine.ex_degraded then 1 else 0);
  add "last_round %d" im.Engine.ex_last_round_step;
  add "cache %d" (List.length im.Engine.ex_cache);
  List.iter
    (fun (rank, id, size, stamp, corrupt) ->
      add "centry %d %d %d %d %s" rank id size stamp
        (match corrupt with None -> "-" | Some s -> Int64.to_string s))
    im.Engine.ex_cache;
  let ev, fl, ei, pk = im.Engine.ex_cache_stats in
  add "cache_stats %d %d %d %d" ev fl ei pk;
  Buffer.add_string buf (counters_to_line im.Engine.ex_counters ^ "\n");
  add "pending %d" (List.length im.Engine.ex_pending);
  List.iter add_arm im.Engine.ex_pending;
  add "fired %d" (List.length im.Engine.ex_fired);
  List.iter
    (fun (s : Fault.shot) ->
      add "shot %d %s %Ld %d %d" s.Fault.arm.Fault.step
        (Fault.kind_name s.Fault.arm.Fault.kind)
        s.Fault.arm.Fault.salt s.Fault.fired_step s.Fault.target)
    im.Engine.ex_fired;
  add "end";
  Buffer.contents buf

let to_string ~config ~program image =
  let p =
    payload ~config_digest:(config_digest config)
      ~program_digest:(program_digest program) image
  in
  Printf.sprintf "%s\ncrc %s %d\n%s" magic (crc_hex p) (String.length p) p

(* ---- parsing ----------------------------------------------------------- *)

exception Malformed of string

let parse_payload text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let cursor = ref 0 in
  let next () =
    if !cursor >= Array.length lines then
      raise (Malformed "payload ends mid-record")
    else (
      incr cursor;
      lines.(!cursor - 1))
  in
  let int_exn s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> raise (Malformed (Printf.sprintf "not an integer: %S" s))
  in
  let words () = String.split_on_char ' ' (next ()) in
  let tagged tag =
    match words () with
    | t :: rest when t = tag -> rest
    | _ -> raise (Malformed (Printf.sprintf "bad %s line" tag))
  in
  let tagged1 tag =
    match tagged tag with
    | [ v ] -> v
    | _ -> raise (Malformed (Printf.sprintf "bad %s line" tag))
  in
  let int1 tag = int_exn (tagged1 tag) in
  let bool1 tag =
    match int1 tag with
    | 0 -> false
    | 1 -> true
    | _ -> raise (Malformed (Printf.sprintf "bad %s flag" tag))
  in
  let counted tag =
    match tagged tag with
    | n :: rest when List.length rest = int_exn n -> rest
    | _ -> raise (Malformed (Printf.sprintf "bad %s line" tag))
  in
  let int_array tag = Array.of_list (List.map int_exn (counted tag)) in
  let bool_array tag =
    Array.map
      (function
        | 0 -> false
        | 1 -> true
        | _ -> raise (Malformed (Printf.sprintf "bad %s flag" tag)))
      (int_array tag)
  in
  let pairs tag =
    match tagged tag with
    | n :: rest when List.length rest = 2 * int_exn n ->
        let rec go = function
          | [] -> []
          | a :: v :: rest -> (int_exn a, int_exn v) :: go rest
          | _ -> raise (Malformed (Printf.sprintf "bad %s line" tag))
        in
        go rest
    | _ -> raise (Malformed (Printf.sprintf "bad %s line" tag))
  in
  let role_of = function
    | "t" -> Region.Taken
    | "n" -> Region.Not_taken
    | "a" -> Region.Always
    | s -> raise (Malformed (Printf.sprintf "bad edge role %S" s))
  in
  let edge_list tag =
    match tagged tag with
    | n :: rest when List.length rest = 3 * int_exn n ->
        let rec go = function
          | [] -> []
          | s :: d :: r :: rest ->
              { Region.src = int_exn s; dst = int_exn d; role = role_of r }
              :: go rest
          | _ -> raise (Malformed (Printf.sprintf "bad %s line" tag))
        in
        go rest
    | _ -> raise (Malformed (Printf.sprintf "bad %s line" tag))
  in
  let kind_of_name name =
    match Fault.kind_of_name name with
    | Some k -> k
    | None -> raise (Malformed (Printf.sprintf "unknown fault kind %S" name))
  in
  let int64_exn s =
    match Int64.of_string_opt s with
    | Some v -> v
    | None -> raise (Malformed (Printf.sprintf "not an int64: %S" s))
  in
  try
    let sn_config_digest = tagged1 "config" in
    let sn_program_digest = tagged1 "program" in
    let im_mem_words = int1 "mem_words" in
    let im_regs = int_array "regs" in
    let im_mem = Array.of_list (pairs "mem") in
    let im_pc = int1 "pc" in
    let im_ret_stack = int_array "ret" in
    let im_prng =
      match tagged "prng" with
      | [ a; b; c; d ] -> (int_exn a, int_exn b, int_exn c, int_exn d)
      | _ -> raise (Malformed "bad prng line")
    in
    let im_outputs = int_array "outputs" in
    let im_steps = int1 "msteps" in
    let im_halted = bool1 "halted" in
    let im_poisoned = List.map int_exn (counted "poisoned") in
    let ex_use = int_array "use" in
    let ex_taken = int_array "taken" in
    let ex_state = int_array "bstate" in
    let ex_touched = bool_array "touched" in
    let ex_dissolve = int_array "dissolve" in
    let nregions = int1 "regions" in
    if nregions < 0 then raise (Malformed "negative region count");
    let with_monitors =
      List.init nregions (fun _ ->
          let id, kind =
            match tagged "region" with
            | [ id; "trace" ] -> (int_exn id, Region.Trace)
            | [ id; "loop" ] -> (int_exn id, Region.Loop)
            | _ -> raise (Malformed "bad region line")
          in
          let slots = int_array "slots" in
          let edges = edge_list "edges" in
          let back_edges = edge_list "back" in
          let frozen_use = int_array "fuse" in
          let frozen_taken = int_array "ftaken" in
          let monitor =
            match tagged "monitor" with
            | [ e; s; lt; ls; d ] ->
                ( int_exn e,
                  int_exn s,
                  int_exn lt,
                  int_exn ls,
                  match int_exn d with
                  | 0 -> false
                  | 1 -> true
                  | _ -> raise (Malformed "bad monitor flag") )
            | _ -> raise (Malformed "bad monitor line")
          in
          let r =
            {
              Region.id;
              kind;
              slots;
              edges;
              back_edges;
              frozen_use;
              frozen_taken;
            }
          in
          (match Region.validate r with
          | Ok () -> ()
          | Error reason ->
              raise (Malformed (Printf.sprintf "region %d: %s" id reason)));
          (r, (id, monitor)))
    in
    let ex_regions = List.map fst with_monitors in
    let ex_monitors = List.sort compare (List.map snd with_monitors) in
    let ex_next_region_id = int1 "next_region" in
    let ex_pool = List.map int_exn (counted "pool") in
    let ex_pool_trigger_now = int1 "pool_trigger" in
    let ex_fault_fails = int_array "fault_fails" in
    let ex_quarantined = bool_array "quarantined" in
    let ex_quarantine_count = int1 "qcount" in
    let ex_degraded = bool1 "degraded" in
    let ex_last_round_step = int1 "last_round" in
    let ncache = int1 "cache" in
    if ncache < 0 then raise (Malformed "negative cache count");
    let ex_cache =
      List.init ncache (fun _ ->
          match tagged "centry" with
          | [ rank; id; size; stamp; salt ] ->
              ( int_exn rank,
                int_exn id,
                int_exn size,
                int_exn stamp,
                if salt = "-" then None else Some (int64_exn salt) )
          | _ -> raise (Malformed "bad centry line"))
    in
    let ex_cache_stats =
      match tagged "cache_stats" with
      | [ e; f; i; p ] -> (int_exn e, int_exn f, int_exn i, int_exn p)
      | _ -> raise (Malformed "bad cache_stats line")
    in
    let ex_counters =
      match words () with
      | [
          "counters"; cy; a; b; c; d; e; f; g; h; i; j; k; l; m; n; o; p; q;
          r; s; u; v;
        ] -> (
          match float_of_string_opt cy with
          | None -> raise (Malformed "bad cycles value")
          | Some cycles ->
              {
                Perf_model.cycles;
                blocks_translated = int_exn a;
                regions_formed = int_exn b;
                region_entries = int_exn c;
                region_completions = int_exn d;
                loop_backs = int_exn e;
                side_exits = int_exn f;
                optimization_rounds = int_exn g;
                regions_dissolved = int_exn h;
                faults_injected = int_exn i;
                retrans_retries = int_exn j;
                fault_dissolves = int_exn k;
                blocks_retranslated = int_exn l;
                cache_evictions = int_exn m;
                cache_flushes = int_exn n;
                cache_evicted_instrs = int_exn o;
                cache_peak_instrs = int_exn p;
                shadow_replays = int_exn q;
                shadow_divergences = int_exn r;
                corrupted_entries = int_exn s;
                regions_quarantined = int_exn u;
                watchdog_degraded = int_exn v;
              })
      | _ -> raise (Malformed "bad counters line")
    in
    let npending = int1 "pending" in
    if npending < 0 then raise (Malformed "negative pending count");
    let ex_pending =
      List.init npending (fun _ ->
          match tagged "arm" with
          | [ step; kind; salt ] ->
              {
                Fault.step = int_exn step;
                kind = kind_of_name kind;
                salt = int64_exn salt;
              }
          | _ -> raise (Malformed "bad arm line"))
    in
    let nfired = int1 "fired" in
    if nfired < 0 then raise (Malformed "negative fired count");
    let ex_fired =
      List.init nfired (fun _ ->
          match tagged "shot" with
          | [ step; kind; salt; fired_step; target ] ->
              {
                Fault.arm =
                  {
                    Fault.step = int_exn step;
                    kind = kind_of_name kind;
                    salt = int64_exn salt;
                  };
                fired_step = int_exn fired_step;
                target = int_exn target;
              }
          | _ -> raise (Malformed "bad shot line"))
    in
    (match next () with
    | "end" -> ()
    | _ -> raise (Malformed "missing end marker"));
    if not (!cursor = Array.length lines - 1 && lines.(!cursor) = "") then
      raise (Malformed "trailing garbage after end marker");
    Snapshot
      {
        sn_config_digest;
        sn_program_digest;
        sn_image =
          {
            Engine.ex_machine =
              {
                Machine.im_mem_words;
                im_regs;
                im_mem;
                im_pc;
                im_ret_stack;
                im_prng;
                im_outputs;
                im_steps;
                im_halted;
                im_poisoned;
              };
            ex_use;
            ex_taken;
            ex_state;
            ex_touched;
            ex_dissolve;
            ex_regions;
            ex_monitors;
            ex_next_region_id;
            ex_pool;
            ex_pool_trigger_now;
            ex_fault_fails;
            ex_quarantined;
            ex_quarantine_count;
            ex_degraded;
            ex_last_round_step;
            ex_cache;
            ex_cache_stats;
            ex_counters;
            ex_pending;
            ex_fired;
          };
      }
  with Malformed reason -> Corrupt reason

let split_line s pos =
  match String.index_from_opt s pos '\n' with
  | None -> None
  | Some i -> Some (String.sub s pos (i - pos), i + 1)

let of_string text =
  if String.trim text = "" then Corrupt "empty file"
  else
    match split_line text 0 with
    | None -> Corrupt "missing newline after magic"
    | Some (line1, p1) -> (
        if String.equal line1 magic then
          match split_line text p1 with
          | None -> Corrupt "missing crc header"
          | Some (line2, p2) -> (
              match String.split_on_char ' ' line2 with
              | [ "crc"; hex; len ] -> (
                  match int_of_string_opt len with
                  | None -> Corrupt "malformed crc header"
                  | Some len when len < 0 -> Corrupt "malformed crc header"
                  | Some len ->
                      let avail = String.length text - p2 in
                      if avail < len then
                        Corrupt
                          (Printf.sprintf "truncated: %d of %d payload bytes"
                             avail len)
                      else if avail > len then
                        Corrupt
                          (Printf.sprintf
                             "trailing garbage: %d bytes past the payload"
                             (avail - len))
                      else
                        let p = String.sub text p2 len in
                        let actual = crc_hex p in
                        if not (String.equal actual hex) then
                          Corrupt
                            (Printf.sprintf
                               "crc mismatch: header %s, payload %s" hex actual)
                        else parse_payload p)
              | _ -> Corrupt "malformed crc header")
        else if
          String.length line1 >= String.length magic_prefix
          && String.equal (String.sub line1 0 (String.length magic_prefix))
               magic_prefix
        then Stale_version line1
        else Corrupt "unrecognised header")

(* ---- restore ----------------------------------------------------------- *)

let restore ~config ~program parsed =
  let cd = config_digest config in
  let pd = program_digest program in
  if not (String.equal cd parsed.sn_config_digest) then
    Error
      (Printf.sprintf "config mismatch: snapshot taken under %s, resuming under %s"
         parsed.sn_config_digest cd)
  else if not (String.equal pd parsed.sn_program_digest) then
    Error
      (Printf.sprintf
         "program mismatch: snapshot taken under %s, resuming under %s"
         parsed.sn_program_digest pd)
  else
    match Engine.restore ~config program parsed.sn_image with
    | t -> Ok t
    | exception Invalid_argument reason -> Error reason

(* ---- info -------------------------------------------------------------- *)

type info = {
  steps : int;
  halted : bool;
  pc : int;
  blocks : int;
  optimized_blocks : int;
  regions : int;
  pool : int;
  cache_entries : int;
  quarantines : int;
  degraded : bool;
  pending_faults : int;
  fired_faults : int;
  cycles : float;
  config_digest : string;
  program_digest : string;
}

let info parsed =
  let im = parsed.sn_image in
  {
    steps = im.Engine.ex_machine.Machine.im_steps;
    halted = im.Engine.ex_machine.Machine.im_halted;
    pc = im.Engine.ex_machine.Machine.im_pc;
    blocks = Array.length im.Engine.ex_use;
    optimized_blocks =
      Array.fold_left (fun n s -> if s = 2 then n + 1 else n) 0
        im.Engine.ex_state;
    regions = List.length im.Engine.ex_regions;
    pool = List.length im.Engine.ex_pool;
    cache_entries = List.length im.Engine.ex_cache;
    quarantines = im.Engine.ex_quarantine_count;
    degraded = im.Engine.ex_degraded;
    pending_faults = List.length im.Engine.ex_pending;
    fired_faults = List.length im.Engine.ex_fired;
    cycles = im.Engine.ex_counters.Perf_model.cycles;
    config_digest = parsed.sn_config_digest;
    program_digest = parsed.sn_program_digest;
  }
