(** Static basic-block discovery for a guest program.

    G32 control flow is fully static except for [ret], so the block
    boundaries a dynamic translator would discover incrementally can be
    computed up front.  Doing so keeps block identities stable across
    runs with different inputs and thresholds, which is what lets the
    paper compare INIP(T), AVEP and INIP(train) block by block.

    Leaders: the program entry, every static branch/call target, every
    call return site, and every instruction following a block
    terminator.  A block also ends (with a fall-through edge) just
    before the next leader. *)

type terminator =
  | Cond of { taken : int; fallthrough : int }
      (** Conditional branch; successors are block ids. *)
  | Goto of int
  | Call_to of { callee : int; retsite : int }
  | Return  (** dynamic successor *)
  | Stop  (** halt *)
  | Fallthrough of int  (** block cut by a leader; unconditional edge *)

type block = {
  id : int;
  start_pc : int;
  end_pc : int;  (** inclusive *)
  size : int;  (** instruction count *)
  terminator : terminator;
}

type t

val build : Tpdbt_isa.Program.t -> t
(** Discover the block map of a program.
    @raise Invalid_argument when the last instruction is a branch or
    call (no fall-through instruction exists for its not-taken edge /
    return site).  Untrusted programs — decoded files, fuzz-generated
    images — must go through {!build_result} instead. *)

val build_result : Tpdbt_isa.Program.t -> (t, Error.t) result
(** Total variant of {!build}: the branch/call-at-end-of-code shape is
    refused as {!Error.Invalid_program} instead of raising.  This is
    the vetting step the CLI and the fuzz oracle run before
    {!Engine.create} on any program that did not come from the
    assembler-checked workload suite. *)

val of_blocks : entry_block:int -> block list -> (t, string) result
(** Reconstruct a block map from serialised blocks (see
    [Tpdbt_profiles.Profile_io]).  The blocks must be sorted by id,
    contiguous from 0, and cover [0 .. max end_pc] without gaps or
    overlaps. *)

val block_count : t -> int

val block : t -> int -> block
(** Constructor-contract accessor: callers must hold an id obtained
    from this map ([0 <= id < block_count]) — the engine only ever
    passes ids it read back from the map or from arrays sized by
    [block_count], so the exception is unreachable from guest input.
    Use {!block_opt} when the id comes from anywhere less trusted.
    @raise Invalid_argument on a bad id. *)

val block_opt : t -> int -> block option
(** Total variant of {!block}: [None] on a bad id. *)

val blocks : t -> block list
(** In block-id order (i.e. ascending start pc). *)

val block_at : t -> int -> int option
(** [block_at t pc] is the id of the block {e starting} at [pc]. *)

val id_at : t -> int -> int
(** Allocation-free {!block_at}: the id of the block starting at [pc],
    or [-1] when [pc] is out of range or mid-block.  The engine's
    dispatch loop calls this once per block executed. *)

val block_containing : t -> int -> int option
(** Id of the block whose pc range contains [pc]. *)

val successors : t -> int -> int list
(** Static successor block ids ([Return]/[Stop] have none). *)

val entry_block : t -> int
(** Block id of the program entry. *)

val pp_block : Format.formatter -> block -> unit
