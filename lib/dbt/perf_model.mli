(** Cycle-cost parameters for the simulated translator (paper §4.4).

    IA32EL has no interpreter: cold code is translated quickly with
    instrumentation, so the profiling phase pays per-instruction
    execution cost plus a counter-update cost, while optimised regions
    execute at the scheduler-determined cost with a penalty for
    unanticipated side exits.  One-off costs are charged for the quick
    translation of each block and for retranslating region members. *)

type params = {
  cold_translate_per_instr : float;
      (** one-off, first time a block is reached *)
  profiled_exec_per_instr : float;
      (** per instruction while a block still carries instrumentation *)
  profiling_op_cost : float;  (** per use/taken counter update *)
  translated_exec_per_instr : float;
      (** per instruction for an optimised block executed outside its
          region (side entry) — instrumentation removed *)
  optimize_per_instr : float;
      (** one-off retranslation cost per region-member instruction *)
  optimized_dispatch : float;  (** entering a region from the dispatcher *)
  side_exit_penalty : float;
      (** leaving a region through an unanticipated exit *)
}

val default : params
(** cold 30, profiled 6, op 2, translated 3, optimise 300, dispatch 2,
    side exit 6 — calibrated so the Fig 17 threshold sweep reproduces
    the paper's shape (optimum at mid thresholds). *)

type counters = {
  mutable cycles : float;
  mutable blocks_translated : int;
  mutable regions_formed : int;
  mutable region_entries : int;
  mutable region_completions : int;
  mutable loop_backs : int;
  mutable side_exits : int;
  mutable optimization_rounds : int;
  mutable regions_dissolved : int;
      (** adaptive mode: regions dissolved for excessive side exits *)
  mutable faults_injected : int;
      (** injected faults that found a victim (fault campaigns) *)
  mutable retrans_retries : int;
      (** recovery: retranslation retries after injected failures *)
  mutable fault_dissolves : int;
      (** recovery: regions dissolved because of corruption or an
          aborted formation *)
  mutable blocks_retranslated : int;
      (** recovery: corrupted blocks whose translation was discarded *)
}

val fresh_counters : unit -> counters

val record : counters -> Tpdbt_telemetry.Metrics.t -> unit
(** Accumulate a run's counters into a metrics registry under [perf.*]
    names ([perf.cycles] as a gauge, the rest as counters).  Recording
    several runs into the same registry sums them, so a sweep can
    aggregate its whole fleet of runs into one registry. *)
