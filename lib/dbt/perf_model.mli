(** Cycle-cost parameters for the simulated translator (paper §4.4).

    IA32EL has no interpreter: cold code is translated quickly with
    instrumentation, so the profiling phase pays per-instruction
    execution cost plus a counter-update cost, while optimised regions
    execute at the scheduler-determined cost with a penalty for
    unanticipated side exits.  One-off costs are charged for the quick
    translation of each block and for retranslating region members. *)

type params = {
  cold_translate_per_instr : float;
      (** one-off, first time a block is reached *)
  profiled_exec_per_instr : float;
      (** per instruction while a block still carries instrumentation *)
  profiling_op_cost : float;  (** per use/taken counter update *)
  translated_exec_per_instr : float;
      (** per instruction for an optimised block executed outside its
          region (side entry) — instrumentation removed *)
  optimize_per_instr : float;
      (** one-off retranslation cost per region-member instruction *)
  optimized_dispatch : float;  (** entering a region from the dispatcher *)
  side_exit_penalty : float;
      (** leaving a region through an unanticipated exit *)
  evict_per_instr : float;
      (** per translated instruction discarded when the bounded code
          cache ({!Code_cache}) evicts an entry — unlinking, patching
          the dispatch tables *)
  shadow_replay_per_instr : float;
      (** per guest instruction replayed on the cold path by the
          shadow-execution oracle at a sampled region entry *)
}

val default : params
(** cold 30, profiled 6, op 2, translated 3, optimise 300, dispatch 2,
    side exit 6 — calibrated so the Fig 17 threshold sweep reproduces
    the paper's shape (optimum at mid thresholds).  Cache churn: evict
    1, shadow replay 6 (the cold path re-executes at profiled speed). *)

type counters = {
  mutable cycles : float;
  mutable blocks_translated : int;
  mutable regions_formed : int;
  mutable region_entries : int;
  mutable region_completions : int;
  mutable loop_backs : int;
  mutable side_exits : int;
  mutable optimization_rounds : int;
  mutable regions_dissolved : int;
      (** adaptive mode: regions dissolved for excessive side exits *)
  mutable faults_injected : int;
      (** injected faults that found a victim (fault campaigns) *)
  mutable retrans_retries : int;
      (** recovery: retranslation retries after injected failures *)
  mutable fault_dissolves : int;
      (** recovery: regions dissolved because of corruption or an
          aborted formation *)
  mutable blocks_retranslated : int;
      (** recovery: corrupted blocks whose translation was discarded *)
  mutable cache_evictions : int;
      (** bounded code cache: entries (blocks or regions) evicted *)
  mutable cache_flushes : int;
      (** whole-cache flushes ([Flush_all] policy or [Cache_thrash]) *)
  mutable cache_evicted_instrs : int;
      (** translated guest instructions discarded by eviction *)
  mutable cache_peak_instrs : int;
      (** high-water cache occupancy — the run's translated footprint;
          tracked even with an unbounded cache, so a sweep can size a
          bounded cache relative to it *)
  mutable shadow_replays : int;
      (** shadow oracle: sampled region entries replayed and compared *)
  mutable shadow_divergences : int;
      (** shadow oracle: replays whose architectural state diverged *)
  mutable corrupted_entries : int;
      (** entries into a silently-corrupted region — executions that
          would have produced wrong results on a real translator *)
  mutable regions_quarantined : int;
      (** regions quarantined after a shadow divergence (members keep
          their AVEP counters and are never re-optimised) *)
  mutable watchdog_degraded : int;
      (** 1 if the bounded-quarantine watchdog degraded the run to
          profiling-only, else 0 *)
}

val fresh_counters : unit -> counters

val record : counters -> Tpdbt_telemetry.Metrics.t -> unit
(** Accumulate a run's counters into a metrics registry under [perf.*]
    names ([perf.cycles] as a gauge, the rest as counters).  Recording
    several runs into the same registry sums them, so a sweep can
    aggregate its whole fleet of runs into one registry. *)
