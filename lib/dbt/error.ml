type t =
  | Trap of Tpdbt_vm.Machine.trap
  | Retranslation_failed of { region : int; block : int; attempts : int }
  | Region_aborted of { region : int; block : int; attempts : int }
  | Limit_exceeded of { steps : int; max_steps : int }
  | Deadline_exceeded of { steps : int; deadline : int }
  | Suspended of { steps : int; deadline : bool }
  | Dispatch_lost of { pc : int }
  | Corrupt_profile of { line : int; field : string; reason : string }
  | Io_error of string
  | Invalid_program of string

exception Error of t

(* Budget exhaustion describes a run that was cut short, not one that
   went wrong: several ref workloads legitimately outlive the default
   budget, and the sweep harness has always kept their partial runs.
   Everything else ends the run. *)
let fatal = function Limit_exceeded _ | Suspended _ -> false | _ -> true

let pp ppf = function
  | Trap trap -> Format.fprintf ppf "trap: %a" Tpdbt_vm.Machine.pp_trap trap
  | Retranslation_failed { region; block; attempts } ->
      Format.fprintf ppf
        "retranslation of region %d (entry block %d) failed %d times" region
        block attempts
  | Region_aborted { region; block; attempts } ->
      Format.fprintf ppf
        "formation of region %d (entry block %d) aborted %d times" region block
        attempts
  | Limit_exceeded { steps; max_steps } ->
      Format.fprintf ppf
        "run watchdog: %d guest instructions executed without halting (budget \
         %d)"
        steps max_steps
  | Deadline_exceeded { steps; deadline } ->
      Format.fprintf ppf
        "task deadline: %d guest instructions executed past the supervisor's \
         step budget (%d)"
        steps deadline
  | Suspended { steps; deadline } ->
      Format.fprintf ppf
        "suspended after %d guest instructions (%s) — resumable from the \
         snapshot"
        steps
        (if deadline then "deadline" else "snapshot trigger")
  | Dispatch_lost { pc } ->
      Format.fprintf ppf "dispatcher lost sync with the block map at pc %d" pc
  | Corrupt_profile { line; field; reason } ->
      if line = 0 then
        Format.fprintf ppf "corrupt profile: %s (%s) at end of file" reason
          field
      else
        Format.fprintf ppf "corrupt profile: %s (%s) at line %d" reason field
          line
  | Io_error msg -> Format.fprintf ppf "i/o error: %s" msg
  | Invalid_program msg -> Format.fprintf ppf "invalid program: %s" msg

let to_string t = Format.asprintf "%a" pp t

let () =
  Printexc.register_printer (function
    | Error t -> Some ("Tpdbt_dbt.Error.Error: " ^ to_string t)
    | _ -> None)
