module Instr = Tpdbt_isa.Instr
module Program = Tpdbt_isa.Program

type terminator =
  | Cond of { taken : int; fallthrough : int }
  | Goto of int
  | Call_to of { callee : int; retsite : int }
  | Return
  | Stop
  | Fallthrough of int

type block = {
  id : int;
  start_pc : int;
  end_pc : int;
  size : int;
  terminator : terminator;
}

type t = {
  blocks : block array;
  id_of_pc : int array;  (** pc -> containing block id *)
  entry_block : int;
}

let leaders (p : Program.t) =
  let n = Array.length p.Program.code in
  let is_leader = Array.make n false in
  is_leader.(p.Program.entry) <- true;
  Array.iteri
    (fun pc instr ->
      match instr with
      | Instr.Br (_, _, _, t) ->
          is_leader.(t) <- true;
          if pc + 1 < n then is_leader.(pc + 1) <- true
      | Instr.Jmp t ->
          is_leader.(t) <- true;
          if pc + 1 < n then is_leader.(pc + 1) <- true
      | Instr.Call t ->
          is_leader.(t) <- true;
          if pc + 1 < n then is_leader.(pc + 1) <- true
      | Instr.Ret | Instr.Halt -> if pc + 1 < n then is_leader.(pc + 1) <- true
      | Instr.Movi _ | Instr.Mov _ | Instr.Binop _ | Instr.Binopi _
      | Instr.Load _ | Instr.Store _ | Instr.Rnd _ | Instr.Out _ | Instr.Nop
        ->
          ())
    p.Program.code;
  is_leader

let build (p : Program.t) =
  let n = Array.length p.Program.code in
  let is_leader = leaders p in
  (* Block start pcs in ascending order; instruction 0 starts a block even
     if nothing branches to it (it may be dead, which is harmless). *)
  is_leader.(0) <- true;
  let starts = ref [] in
  for pc = n - 1 downto 0 do
    if is_leader.(pc) then starts := pc :: !starts
  done;
  let starts = Array.of_list !starts in
  let nblocks = Array.length starts in
  let id_of_start = Hashtbl.create 64 in
  Array.iteri (fun id start -> Hashtbl.replace id_of_start start id) starts;
  let block_of_start start = Hashtbl.find id_of_start start in
  let blocks =
    Array.mapi
      (fun id start ->
        let next_start = if id + 1 < nblocks then starts.(id + 1) else n in
        (* The block runs up to the terminator or the instruction before
           the next leader, whichever comes first. *)
        let rec find_end pc =
          if pc >= next_start - 1 then next_start - 1
          else if Instr.is_terminator p.Program.code.(pc) then pc
          else find_end (pc + 1)
        in
        let end_pc = find_end start in
        let terminator =
          (match p.Program.code.(end_pc) with
          | (Instr.Br _ | Instr.Call _) when end_pc + 1 >= n ->
              invalid_arg
                "Block_map.build: branch/call at end of code needs a \
                 fall-through instruction"
          | _ -> ());
          match p.Program.code.(end_pc) with
          | Instr.Br (_, _, _, t) ->
              Cond
                {
                  taken = block_of_start t;
                  fallthrough = block_of_start (end_pc + 1);
                }
          | Instr.Jmp t -> Goto (block_of_start t)
          | Instr.Call t ->
              Call_to
                {
                  callee = block_of_start t;
                  retsite = block_of_start (end_pc + 1);
                }
          | Instr.Ret -> Return
          | Instr.Halt -> Stop
          | Instr.Movi _ | Instr.Mov _ | Instr.Binop _ | Instr.Binopi _
          | Instr.Load _ | Instr.Store _ | Instr.Rnd _ | Instr.Out _
          | Instr.Nop ->
              (* Cut by the next leader; falling off the end of the code
                 array stops the machine. *)
              if end_pc + 1 >= n then Stop
              else Fallthrough (block_of_start (end_pc + 1))
        in
        { id; start_pc = start; end_pc; size = end_pc - start + 1; terminator })
      starts
  in
  let id_of_pc = Array.make n 0 in
  Array.iter
    (fun b ->
      for pc = b.start_pc to b.end_pc do
        id_of_pc.(pc) <- b.id
      done)
    blocks;
  { blocks; id_of_pc; entry_block = block_of_start p.Program.entry }

(* The one program shape [build] rejects: a taken-or-not branch (or a
   call, whose return site is the next pc) as the very last instruction
   has no fall-through block to point at.  [Program.make] accepts such
   images — the interpreter handles them by halting off the end — so a
   decoded or generated program must be vetted here before engine
   construction, with the refusal as a typed error. *)
let build_result (p : Program.t) =
  let n = Array.length p.Program.code in
  match p.Program.code.(n - 1) with
  | Instr.Br _ | Instr.Call _ ->
      Error
        (Error.Invalid_program
           (Printf.sprintf
              "branch/call at end of code (pc %d) needs a fall-through \
               instruction"
              (n - 1)))
  | _ -> Ok (build p)

let of_blocks ~entry_block blocks =
  let arr = Array.of_list blocks in
  let n = Array.length arr in
  let ok = ref true in
  let reason = ref "" in
  let fail msg =
    ok := false;
    if !reason = "" then reason := msg
  in
  if n = 0 then fail "no blocks";
  Array.iteri
    (fun i b ->
      if b.id <> i then fail "ids not contiguous";
      if b.size <> b.end_pc - b.start_pc + 1 || b.size <= 0 then
        fail "bad block extent";
      if i > 0 && b.start_pc <> arr.(i - 1).end_pc + 1 then
        fail "blocks not contiguous in pc")
    arr;
  if n > 0 && arr.(0).start_pc <> 0 then fail "first block must start at 0";
  if entry_block < 0 || entry_block >= n then fail "entry block out of range";
  if not !ok then Error ("Block_map.of_blocks: " ^ !reason)
  else begin
    let code_len = arr.(n - 1).end_pc + 1 in
    let id_of_pc = Array.make code_len 0 in
    Array.iter
      (fun b ->
        for pc = b.start_pc to b.end_pc do
          id_of_pc.(pc) <- b.id
        done)
      arr;
    Ok { blocks = arr; id_of_pc; entry_block }
  end

let block_count t = Array.length t.blocks

let block t id =
  if id < 0 || id >= Array.length t.blocks then
    invalid_arg (Printf.sprintf "Block_map.block: bad id %d" id)
  else t.blocks.(id)

let block_opt t id =
  if id < 0 || id >= Array.length t.blocks then None else Some t.blocks.(id)

let blocks t = Array.to_list t.blocks

let block_at t pc =
  if pc < 0 || pc >= Array.length t.id_of_pc then None
  else
    let id = t.id_of_pc.(pc) in
    if t.blocks.(id).start_pc = pc then Some id else None

(* Allocation-free [block_at] for the dispatch loop. *)
let id_at t pc =
  if pc < 0 || pc >= Array.length t.id_of_pc then -1
  else
    let id = t.id_of_pc.(pc) in
    if t.blocks.(id).start_pc = pc then id else -1

let block_containing t pc =
  if pc < 0 || pc >= Array.length t.id_of_pc then None
  else Some t.id_of_pc.(pc)

let successors t id =
  match (block t id).terminator with
  | Cond { taken; fallthrough } ->
      if taken = fallthrough then [ taken ] else [ taken; fallthrough ]
  | Goto b | Fallthrough b -> [ b ]
  | Call_to { callee; retsite = _ } -> [ callee ]
  | Return | Stop -> []

let entry_block t = t.entry_block

let pp_terminator ppf = function
  | Cond { taken; fallthrough } ->
      Format.fprintf ppf "cond(taken->B%d, fall->B%d)" taken fallthrough
  | Goto b -> Format.fprintf ppf "goto B%d" b
  | Call_to { callee; retsite } ->
      Format.fprintf ppf "call B%d (ret site B%d)" callee retsite
  | Return -> Format.pp_print_string ppf "return"
  | Stop -> Format.pp_print_string ppf "halt"
  | Fallthrough b -> Format.fprintf ppf "fallthrough B%d" b

let pp_block ppf b =
  Format.fprintf ppf "B%d [%d..%d] %a" b.id b.start_pc b.end_pc pp_terminator
    b.terminator
