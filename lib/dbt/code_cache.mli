(** Bounded code cache: the budget and eviction policy for every
    translated block and optimised region the engine keeps.

    The paper's IA32EL model translates once and keeps everything; a
    production translator cannot — code-cache capacity and flush policy
    are a first-order design axis.  This module owns the accounting:
    each resident {e entry} (a translated block or an optimised region)
    is charged its size in {e translated guest instructions} against a
    configurable capacity.  Inserting past the capacity evicts victims
    according to the policy; the engine turns each victim back into
    cold (block) or profiling (region) code and re-pays translation
    when it is next needed, charging the churn through
    {!Perf_model.params.evict_per_instr}.

    An unbounded cache ([capacity = None], the default) never evicts
    and never stamps, so the classic always-resident behaviour — and
    its byte-identical figures — is the zero-cost default.  Peak
    occupancy is tracked either way: it is how a sweep measures a
    workload's translated footprint before shrinking the cache
    relative to it.

    Everything here is deterministic: victims are selected by a total
    order (stamp, then entry kind, then id), never by hash-table
    iteration order. *)

type policy =
  | Flush_all  (** over capacity: evict every other entry (full flush) *)
  | Lru  (** evict least-recently-used entries until within capacity *)
  | Hot_protect
      (** LRU over blocks and {e cold} regions only: a region entered
          within the last [hot_window] guest instructions is never
          evicted.  If every candidate is protected the cache soft
          overflows rather than evict hot code — the dampener against
          eviction/retranslation thrash. *)

type entry_kind = Block | Region

type entry = {
  ekind : entry_kind;
  id : int;  (** block id or region id *)
  size : int;  (** translated guest instructions *)
  mutable stamp : int;  (** guest step of last insert/touch *)
  mutable corrupt : int64 option;
      (** silent-corruption salt ({!corrupt_region}); [None] = clean *)
}

type stats = {
  mutable evictions : int;  (** victims evicted (entries, not instrs) *)
  mutable flushes : int;  (** whole-cache flushes (policy or injected) *)
  mutable evicted_instrs : int;  (** translated instructions discarded *)
  mutable peak : int;  (** high-water occupancy in instructions *)
}

type t

val create : ?capacity:int -> ?policy:policy -> ?hot_window:int -> unit -> t
(** [capacity] in translated guest instructions; omitted = unbounded.
    [policy] defaults to [Lru], [hot_window] to [10_000] guest
    instructions.
    @raise Invalid_argument if [capacity <= 0] or [hot_window < 0]. *)

val bounded : t -> bool
val policy : t -> policy
val used : t -> int
val peak : t -> int
val stats : t -> stats
val mem : t -> entry_kind -> int -> bool

val insert : t -> now:int -> ekind:entry_kind -> id:int -> size:int -> entry list
(** Make [(ekind, id)] resident with the given size, stamped [now],
    evicting victims as the policy demands until the cache is within
    capacity again.  Returns the victims (never including the entry
    just inserted) in eviction order; the caller must de-install each
    one.  Re-inserting a resident entry updates its size and stamp.
    A single entry larger than the whole capacity stays resident
    alone — the cache soft overflows rather than refuse code the
    engine is about to run. *)

val touch : t -> now:int -> entry_kind -> int -> unit
(** Refresh the recency stamp of a resident entry (region entry /
    block dispatch).  Unknown entries are ignored.  The engine only
    calls this when {!bounded} — stamps are meaningless without a
    capacity. *)

val remove : t -> entry_kind -> int -> unit
(** De-install without eviction accounting — for dissolution and
    quarantine, where the region is leaving for its own reasons. *)

val flush : t -> entry list
(** Evict everything (counted as one flush plus per-entry evictions) —
    the [Cache_thrash] fault and the [Flush_all] policy share this.
    Returns the victims in deterministic (stamp, kind, id) order. *)

val resident_regions : t -> int list
(** Ids of resident region entries, ascending — the deterministic
    victim pool for silent-corruption injection. *)

val corrupt_region : t -> int -> salt:int64 -> bool
(** Mark a resident region's translated code as silently corrupted
    (no trap, wrong results).  Returns [false] if the region is not
    resident.  The mark survives {!touch} and is cleared by eviction,
    {!remove} or re-{!insert}. *)

val corruption : t -> entry_kind -> int -> int64 option

val has_corruption : t -> bool
(** [true] iff any resident entry carries a corruption salt.  O(1) —
    the fast path that lets the engine skip the per-region-entry
    {!corruption} lookup (which allocates its key) on clean caches,
    which is every run without a [Silent_corruption] fault. *)

val residents : t -> entry list
(** Every resident entry in the deterministic victim order (stamp,
    kind, id) — the cache's complete contents, for mid-run snapshots. *)

val restore_entry :
  t ->
  ekind:entry_kind ->
  id:int ->
  size:int ->
  stamp:int ->
  corrupt:int64 option ->
  unit
(** Reinstall one {!residents} entry into a fresh cache, preserving its
    stamp and corruption salt, without any eviction accounting.
    @raise Invalid_argument if [size < 0]. *)

val set_stats :
  t -> evictions:int -> flushes:int -> evicted_instrs:int -> peak:int -> unit
(** Overwrite the eviction statistics — the snapshot counterpart of
    {!restore_entry}, so a resumed run's final stats match an
    uninterrupted run's. *)

val policy_name : policy -> string
(** ["flush_all"], ["lru"], ["hot_protect"]. *)

val policy_of_name : string -> policy option
val all_policies : policy list
