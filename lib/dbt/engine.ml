module Machine = Tpdbt_vm.Machine
module Event = Tpdbt_telemetry.Event
module Sink = Tpdbt_telemetry.Sink
module Fault = Tpdbt_faults.Fault
module Injector = Tpdbt_faults.Injector

type config = {
  threshold : int;
  pool_trigger : int;
  min_branch_prob : float;
  max_region_slots : int;
  enable_duplication : bool;
  enable_diamonds : bool;
  trace_scheduling : bool;
  regions_across_calls : bool;
  adaptive : bool;
  reopt_side_exit_rate : float;
  reopt_min_entries : int;
  reopt_limit : int;
  perf : Perf_model.params;
  max_steps : int;
  sink : Sink.t;
  faults : Tpdbt_faults.Plan.t option;
  retry_limit : int;
}

let config ?(pool_trigger = 16) ?(adaptive = false) ?(sink = Sink.null) ?faults
    ?(retry_limit = 3) ~threshold () =
  {
    threshold;
    pool_trigger;
    min_branch_prob = 0.7;
    max_region_slots = 16;
    enable_duplication = true;
    enable_diamonds = true;
    trace_scheduling = false;
    regions_across_calls = false;
    adaptive;
    reopt_side_exit_rate = 0.3;
    reopt_min_entries = 64;
    reopt_limit = 3;
    perf = Perf_model.default;
    max_steps = 200_000_000;
    sink;
    faults;
    retry_limit;
  }

let profiling_only = config ~threshold:0 ()

type region_stats = {
  entries : int;
  side_exits : int;
  loop_back_taken : int;
  loop_back_seen : int;
}

type result = {
  snapshot : Snapshot.t;
  counters : Perf_model.counters;
  steps : int;
  profiling_ops : int;
  outputs : int list;
  region_stats : (int * region_stats) list;
  error : Error.t option;
  faults : Fault.report option;
}

let trap result =
  match result.error with Some (Error.Trap t) -> Some t | Some _ | None -> None

type block_state = Cold | Registered | Optimized

(* Mutable per-region runtime monitor (adaptive mode + continuous loop
   profiling). *)
type monitor = {
  mutable m_entries : int;
  mutable m_side_exits : int;
  mutable m_lb_taken : int;
  mutable m_lb_seen : int;
  mutable m_disabled : bool;
      (* adaptive mode: set once a member block has hit the
         re-optimisation limit — the region is then kept for good,
         preventing dissolve/reform thrashing on inherently unstable
         (near-50%) branches *)
}

type t = {
  cfg : config;
  program : Tpdbt_isa.Program.t;
  machine : Machine.t;
  bmap : Block_map.t;
  use : int array;
  taken : int array;
  state : block_state array;
  touched : bool array;
  dissolve_count : int array;  (* per block, adaptive mode *)
  region_entry : int array;  (* block id -> region id, or -1 *)
  regions : (int, Region.t * float array) Hashtbl.t;  (* id -> region, slot cycles *)
  monitors : (int, monitor) Hashtbl.t;  (* region id -> runtime stats *)
  mutable regions_rev : Region.t list;
  mutable next_region_id : int;
  mutable pool : int list;
  mutable pool_size : int;
  mutable pool_trigger_now : int;
      (* effective pool trigger: decays (halves) after an injected
         retranslation failure so the retry happens promptly, and is
         restored to the configured value by a clean optimisation
         round *)
  fault_fails : int array;
      (* per block: injected retranslation failures / formation aborts
         of regions rooted there — the bounded-retry budget *)
  inj : Injector.t option;
  counters : Perf_model.counters;
  mutable error : Error.t option;
  trace : bool;
      (* telemetry enabled?  Checked before constructing any event, so
         the default null sink costs nothing on the hot paths. *)
}

let create ?config:(cfg = config ~threshold:1000 ()) ?mem_words ~seed program =
  let machine = Machine.create ?mem_words ~seed program in
  let bmap = Block_map.build program in
  let n = Block_map.block_count bmap in
  {
    cfg;
    program;
    machine;
    bmap;
    use = Array.make n 0;
    taken = Array.make n 0;
    state = Array.make n Cold;
    touched = Array.make n false;
    dissolve_count = Array.make n 0;
    region_entry = Array.make n (-1);
    regions = Hashtbl.create 32;
    monitors = Hashtbl.create 32;
    regions_rev = [];
    next_region_id = 0;
    pool = [];
    pool_size = 0;
    pool_trigger_now = cfg.pool_trigger;
    fault_fails = Array.make n 0;
    inj = Option.map Injector.create cfg.faults;
    counters = Perf_model.fresh_counters ();
    error = None;
    trace = not (Sink.is_null cfg.sink);
  }

let block_map t = t.bmap

(* Call only under [if t.trace then ...] so disabled telemetry never
   allocates an event. *)
let emit t event = t.cfg.sink.Sink.emit ~step:(Machine.steps t.machine) event

(* Outcome of executing one block on the machine. *)
type exec_outcome =
  | Flowed  (* unconditional control transfer or plain fallthrough *)
  | Took of bool  (* conditional branch outcome *)
  | Finished  (* machine halted *)
  | Trapped of Machine.trap

(* Execute the instructions of block [b]; the machine must be at its
   start.  Returns the outcome of the block's last instruction. *)
let exec_block t (b : Block_map.block) =
  let rec go remaining =
    match Machine.step t.machine with
    | Error trap -> Trapped trap
    | Ok event -> (
        match event with
        | Machine.Halted -> Finished
        | Machine.Branched { taken } ->
            (* The terminator is the block's last instruction. *)
            Took taken
        | Machine.Jumped | Machine.Called | Machine.Returned -> Flowed
        | Machine.Stepped -> if remaining = 1 then Flowed else go (remaining - 1))
  in
  go b.Block_map.size

(* ------------------------------------------------------------------ *)
(* Optimisation phase                                                   *)
(* ------------------------------------------------------------------ *)

(* Injected retranslation failure: the region is not installed.  Its
   members keep their profiles and return to the candidate pool, and
   the pool trigger decays so the retry fires promptly; past the retry
   budget the engine gives up with a typed error (the IA32EL-style
   bail-out). *)
let recover_retranslation_failure t inj arm (r : Region.t) =
  let step = Machine.steps t.machine in
  let entry = Region.entry_block r in
  Injector.record inj arm ~fired_step:step ~target:r.Region.id;
  t.counters.Perf_model.faults_injected <-
    t.counters.Perf_model.faults_injected + 1;
  if t.trace then
    emit t
      (Event.Fault_injected
         { fault = Fault.kind_name Fault.Retranslate_fail; target = r.Region.id });
  t.fault_fails.(entry) <- t.fault_fails.(entry) + 1;
  if t.fault_fails.(entry) > t.cfg.retry_limit then
    t.error <-
      Some
        (Error.Retranslation_failed
           { region = r.Region.id; block = entry; attempts = t.fault_fails.(entry) })
  else begin
    t.pool_trigger_now <- max 1 (t.pool_trigger_now / 2);
    t.counters.Perf_model.retrans_retries <-
      t.counters.Perf_model.retrans_retries + 1;
    if t.trace then
      emit t (Event.Recovery { action = Event.Retry; target = r.Region.id });
    Array.iter
      (fun b ->
        if t.state.(b) <> Optimized then begin
          t.state.(b) <- Registered;
          if not (List.mem b t.pool) then begin
            t.pool <- b :: t.pool;
            t.pool_size <- t.pool_size + 1
          end
        end)
      r.Region.slots
  end

(* Injected formation abort: the half-built region is thrown away and
   its members return to cold profiling code with fresh counters (the
   dissolution recovery path); past the retry budget the engine gives
   up with a typed error. *)
let recover_region_abort t inj arm (r : Region.t) =
  let step = Machine.steps t.machine in
  let entry = Region.entry_block r in
  Injector.record inj arm ~fired_step:step ~target:r.Region.id;
  t.counters.Perf_model.faults_injected <-
    t.counters.Perf_model.faults_injected + 1;
  if t.trace then
    emit t
      (Event.Fault_injected
         { fault = Fault.kind_name Fault.Region_abort; target = r.Region.id });
  t.fault_fails.(entry) <- t.fault_fails.(entry) + 1;
  if t.fault_fails.(entry) > t.cfg.retry_limit then
    t.error <-
      Some
        (Error.Region_aborted
           { region = r.Region.id; block = entry; attempts = t.fault_fails.(entry) })
  else begin
    t.counters.Perf_model.fault_dissolves <-
      t.counters.Perf_model.fault_dissolves + 1;
    if t.trace then
      emit t (Event.Recovery { action = Event.Dissolve; target = r.Region.id });
    Array.iter
      (fun b ->
        if t.state.(b) <> Optimized then begin
          t.state.(b) <- Cold;
          t.use.(b) <- 0;
          t.taken.(b) <- 0
        end)
      r.Region.slots
  end

let optimize t =
  if t.trace then emit t (Event.Phase_begin { phase = "optimize" });
  t.counters.Perf_model.optimization_rounds <-
    t.counters.Perf_model.optimization_rounds + 1;
  let seeds =
    List.sort (fun a b -> compare t.use.(b) t.use.(a)) t.pool
  in
  (* Clear the pool before committing regions: recovery from an
     injected retranslation failure re-pools the failed region's
     members, and those must survive to the next round. *)
  t.pool <- [];
  t.pool_size <- 0;
  let former_cfg =
    {
      Region_former.threshold = t.cfg.threshold;
      min_branch_prob = t.cfg.min_branch_prob;
      max_slots = t.cfg.max_region_slots;
      enable_duplication = t.cfg.enable_duplication;
      enable_diamonds = t.cfg.enable_diamonds;
      across_calls = t.cfg.regions_across_calls;
    }
  in
  let owner b =
    match t.state.(b) with
    | Optimized -> Region_former.Owned
    | Cold | Registered -> Region_former.Unowned
  in
  let new_regions =
    Region_former.form former_cfg ~block_map:t.bmap ~use:t.use ~taken:t.taken
      ~owner ~seeds ~first_id:t.next_region_id
  in
  let commit r =
      let slot_cycles =
        let code = t.program.Tpdbt_isa.Program.code in
        if t.cfg.trace_scheduling then
          Optimizer.region_slot_cycles_pipelined t.bmap ~code r
        else Optimizer.region_slot_cycles t.bmap ~code r
      in
      Hashtbl.replace t.regions r.Region.id (r, slot_cycles);
      Hashtbl.replace t.monitors r.Region.id
        {
          m_entries = 0;
          m_side_exits = 0;
          m_lb_taken = 0;
          m_lb_seen = 0;
          m_disabled = false;
        };
      t.regions_rev <- r :: t.regions_rev;
      t.counters.Perf_model.regions_formed <-
        t.counters.Perf_model.regions_formed + 1;
      if t.trace then begin
        let instrs =
          Array.fold_left
            (fun acc block ->
              acc + (Block_map.block t.bmap block).Block_map.size)
            0 r.Region.slots
        in
        emit t
          (Event.Region_formed
             {
               region = r.Region.id;
               kind =
                 (match r.Region.kind with
                 | Region.Trace -> Event.Trace
                 | Region.Loop -> Event.Loop);
               slots = Array.length r.Region.slots;
               instrs;
               entry_block = Region.entry_block r;
             })
      end;
      (* Retranslation cost: proportional to region size in instructions. *)
      Array.iter
        (fun block ->
          let size = (Block_map.block t.bmap block).Block_map.size in
          t.counters.Perf_model.cycles <-
            t.counters.Perf_model.cycles
            +. (float_of_int size *. t.cfg.perf.Perf_model.optimize_per_instr))
        r.Region.slots;
      (* Freeze members; record the region entry for dispatch. *)
      Array.iter (fun block -> t.state.(block) <- Optimized) r.Region.slots;
      let entry = Region.entry_block r in
      if t.region_entry.(entry) < 0 then t.region_entry.(entry) <- r.Region.id
  in
  let clean_round = ref true in
  List.iter
    (fun r ->
      t.next_region_id <- t.next_region_id + 1;
      if t.error = None then begin
        let step = Machine.steps t.machine in
        match t.inj with
        | None -> commit r
        | Some inj -> (
            match Injector.take inj ~step Fault.Region_abort with
            | Some arm -> recover_region_abort t inj arm r
            | None -> (
                match Injector.take inj ~step Fault.Retranslate_fail with
                | Some arm ->
                    clean_round := false;
                    recover_retranslation_failure t inj arm r
                | None -> commit r))
      end)
    new_regions;
  if !clean_round then t.pool_trigger_now <- t.cfg.pool_trigger;
  if t.trace then emit t (Event.Phase_end { phase = "optimize" })

(* Adaptive mode: dissolve a region whose side-exit rate shows that its
   frozen profile no longer matches execution (the paper's §5
   "monitoring region side exits to trigger retranslation").  Member
   blocks not shared with a surviving region return to the profiling
   phase with fresh counters, so their next profile reflects the new
   phase; the dispatcher's entry map is rebuilt from the survivors. *)
let dissolve t (region : Region.t) =
  Array.iter
    (fun b -> t.dissolve_count.(b) <- t.dissolve_count.(b) + 1)
    region.Region.slots;
  Hashtbl.remove t.regions region.Region.id;
  Hashtbl.remove t.monitors region.Region.id;
  t.regions_rev <-
    List.filter (fun r -> r.Region.id <> region.Region.id) t.regions_rev;
  t.counters.Perf_model.regions_dissolved <-
    t.counters.Perf_model.regions_dissolved + 1;
  let still_member = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (r, _) ->
      Array.iter (fun b -> Hashtbl.replace still_member b ()) r.Region.slots)
    t.regions;
  Array.iter
    (fun b ->
      if not (Hashtbl.mem still_member b) then begin
        t.state.(b) <- Cold;
        t.use.(b) <- 0;
        t.taken.(b) <- 0
      end)
    region.Region.slots;
  Array.fill t.region_entry 0 (Array.length t.region_entry) (-1);
  List.iter
    (fun r ->
      let entry = Region.entry_block r in
      if t.region_entry.(entry) < 0 then t.region_entry.(entry) <- r.Region.id)
    (List.rev t.regions_rev)

(* ------------------------------------------------------------------ *)
(* Dispatch loop                                                        *)
(* ------------------------------------------------------------------ *)

(* Execute block [bid] outside any region, with profiling if it is not
   yet optimised.  Returns the outcome. *)
let exec_single t bid =
  let b = Block_map.block t.bmap bid in
  let perf = t.cfg.perf in
  if not t.touched.(bid) then begin
    t.touched.(bid) <- true;
    if t.trace then
      emit t (Event.Block_translated { block = bid; size = b.Block_map.size });
    t.counters.Perf_model.blocks_translated <-
      t.counters.Perf_model.blocks_translated + 1;
    t.counters.Perf_model.cycles <-
      t.counters.Perf_model.cycles
      +. (float_of_int b.Block_map.size
         *. perf.Perf_model.cold_translate_per_instr)
  end;
  let outcome = exec_block t b in
  (match t.state.(bid) with
  | Optimized ->
      (* Side entry to an optimised block: instrumentation removed. *)
      t.counters.Perf_model.cycles <-
        t.counters.Perf_model.cycles
        +. (float_of_int b.Block_map.size
           *. perf.Perf_model.translated_exec_per_instr)
  | Cold | Registered ->
      t.use.(bid) <- t.use.(bid) + 1;
      let ops =
        match outcome with
        | Took true ->
            t.taken.(bid) <- t.taken.(bid) + 1;
            2
        | Took false | Flowed | Finished | Trapped _ -> 1
      in
      t.counters.Perf_model.cycles <-
        t.counters.Perf_model.cycles
        +. (float_of_int b.Block_map.size
           *. perf.Perf_model.profiled_exec_per_instr)
        +. (float_of_int ops *. perf.Perf_model.profiling_op_cost);
      if t.cfg.threshold > 0 then begin
        (match t.state.(bid) with
        | Cold ->
            if t.use.(bid) >= t.cfg.threshold then begin
              t.state.(bid) <- Registered;
              t.pool <- bid :: t.pool;
              t.pool_size <- t.pool_size + 1;
              if t.trace then
                emit t
                  (Event.Block_registered
                     {
                       block = bid;
                       use = t.use.(bid);
                       threshold = t.cfg.threshold;
                     })
            end
        | Registered | Optimized -> ());
        let registered_twice =
          match t.state.(bid) with
          | Registered -> t.use.(bid) >= 2 * t.cfg.threshold
          | Cold | Optimized -> false
        in
        if t.pool_size > 0 && (registered_twice || t.pool_size >= t.pool_trigger_now)
        then begin
          if t.trace then
            emit t
              (Event.Pool_trigger
                 {
                   pool_size = t.pool_size;
                   reason =
                     (if registered_twice then Event.Registered_twice
                      else Event.Pool_full);
                 });
          optimize t
        end
      end);
  outcome

(* Execute inside region [rid] starting at its entry.  Returns the
   outcome that ended region execution. *)
let exec_region t rid =
  let region, slot_cycles = Hashtbl.find t.regions rid in
  let mon = Hashtbl.find t.monitors rid in
  let perf = t.cfg.perf in
  let tail = Region.tail_slot region in
  t.counters.Perf_model.region_entries <-
    t.counters.Perf_model.region_entries + 1;
  if t.trace then emit t (Event.Region_entry { region = rid });
  mon.m_entries <- mon.m_entries + 1;
  t.counters.Perf_model.cycles <-
    t.counters.Perf_model.cycles +. perf.Perf_model.optimized_dispatch;
  let rec at_slot slot =
    let bid = region.Region.slots.(slot) in
    let b = Block_map.block t.bmap bid in
    if Machine.pc t.machine <> b.Block_map.start_pc then begin
      (* The region's layout no longer matches execution — surface a
         typed error instead of dying on an assertion. *)
      t.error <- Some (Error.Dispatch_lost { pc = Machine.pc t.machine });
      Finished
    end
    else
    let outcome = exec_block t b in
    t.counters.Perf_model.cycles <-
      t.counters.Perf_model.cycles +. slot_cycles.(slot);
    match outcome with
    | Finished | Trapped _ -> outcome
    | Flowed | Took _ ->
        let role =
          match outcome with
          | Took true -> Some Region.Taken
          | Took false -> Some Region.Not_taken
          | Flowed -> (
              match b.Block_map.terminator with
              | Block_map.Goto _ | Block_map.Fallthrough _
              | Block_map.Call_to _ ->
                  (* A Call_to edge can be region-internal when formed
                     with regions_across_calls (partial inlining). *)
                  Some Region.Always
              | Block_map.Cond _ | Block_map.Return | Block_map.Stop -> None)
          | Finished | Trapped _ -> None
        in
        let matching =
          match role with
          | None -> None
          | Some role ->
              List.find_opt
                (fun e -> e.Region.role = role)
                (Region.out_edges region slot)
        in
        let has_back_edge =
          List.exists (fun e -> e.Region.src = slot) region.Region.back_edges
        in
        (match matching with
        | Some e when e.Region.dst = 0 && region.Region.kind = Region.Loop ->
            t.counters.Perf_model.loop_backs <-
              t.counters.Perf_model.loop_backs + 1;
            (* Continuous loop profiling: the latch executed and looped. *)
            mon.m_lb_seen <- mon.m_lb_seen + 1;
            mon.m_lb_taken <- mon.m_lb_taken + 1;
            at_slot 0
        | Some e -> at_slot e.Region.dst
        | None ->
            if has_back_edge then mon.m_lb_seen <- mon.m_lb_seen + 1;
            if has_back_edge || slot = tail then begin
              t.counters.Perf_model.region_completions <-
                t.counters.Perf_model.region_completions + 1;
              if t.trace then emit t (Event.Region_completion { region = rid })
            end
            else begin
              t.counters.Perf_model.side_exits <-
                t.counters.Perf_model.side_exits + 1;
              mon.m_side_exits <- mon.m_side_exits + 1;
              if t.trace then
                emit t (Event.Region_side_exit { region = rid; slot });
              t.counters.Perf_model.cycles <-
                t.counters.Perf_model.cycles
                +. perf.Perf_model.side_exit_penalty;
              if
                t.cfg.adaptive && (not mon.m_disabled)
                && mon.m_entries >= t.cfg.reopt_min_entries
                && float_of_int mon.m_side_exits
                   > t.cfg.reopt_side_exit_rate *. float_of_int mon.m_entries
              then begin
                let over_limit =
                  Array.exists
                    (fun b -> t.dissolve_count.(b) >= t.cfg.reopt_limit)
                    region.Region.slots
                in
                if over_limit then mon.m_disabled <- true
                else begin
                  if t.trace then
                    emit t
                      (Event.Region_dissolved
                         {
                           region = rid;
                           entries = mon.m_entries;
                           side_exits = mon.m_side_exits;
                         });
                  dissolve t region
                end
              end
            end;
            outcome)
  in
  at_slot 0

(* Injected corruption of block [bid]'s translated code.  The
   translation is discarded (the next execution pays the cold
   translation again) and any region holding the block is dissolved
   back to cold profiling code via the adaptive-dissolution path. *)
let corrupt_block t bid =
  t.counters.Perf_model.faults_injected <-
    t.counters.Perf_model.faults_injected + 1;
  if t.trace then
    emit t
      (Event.Fault_injected
         { fault = Fault.kind_name Fault.Block_corrupt; target = bid });
  t.touched.(bid) <- false;
  t.counters.Perf_model.blocks_retranslated <-
    t.counters.Perf_model.blocks_retranslated + 1;
  let owners =
    Hashtbl.fold
      (fun _ (r, _) acc ->
        if Array.exists (fun b -> b = bid) r.Region.slots then r :: acc
        else acc)
      t.regions []
  in
  List.iter
    (fun r ->
      t.counters.Perf_model.fault_dissolves <-
        t.counters.Perf_model.fault_dissolves + 1;
      if t.trace then
        emit t (Event.Recovery { action = Event.Dissolve; target = r.Region.id });
      dissolve t r)
    owners;
  if t.trace then
    emit t (Event.Recovery { action = Event.Retranslate; target = bid })

(* Faults whose site is the dispatch loop: guest traps (poison the
   instruction about to execute) and block corruption (pick a
   translated victim from the arm's salt). *)
let inject_dispatch_faults t inj =
  let step = Machine.steps t.machine in
  (match Injector.take inj ~step Fault.Guest_trap with
  | None -> ()
  | Some arm ->
      let pc = Machine.pc t.machine in
      Machine.poison t.machine pc;
      t.counters.Perf_model.faults_injected <-
        t.counters.Perf_model.faults_injected + 1;
      Injector.record inj arm ~fired_step:step ~target:pc;
      if t.trace then
        emit t
          (Event.Fault_injected
             { fault = Fault.kind_name Fault.Guest_trap; target = pc }));
  match Injector.take inj ~step Fault.Block_corrupt with
  | None -> ()
  | Some arm ->
      let n = Array.length t.touched in
      let start =
        if n = 0 then 0
        else
          Int64.to_int
            (Int64.rem (Int64.logand arm.Fault.salt Int64.max_int)
               (Int64.of_int n))
      in
      let victim = ref (-1) in
      let i = ref 0 in
      while !victim < 0 && !i < n do
        let b = (start + !i) mod n in
        if t.touched.(b) then victim := b;
        incr i
      done;
      Injector.record inj arm ~fired_step:step ~target:!victim;
      if !victim >= 0 then corrupt_block t !victim

let current_snapshot t =
  {
    Snapshot.block_map = t.bmap;
    use = Array.copy t.use;
    taken = Array.copy t.taken;
    regions = List.rev t.regions_rev;
  }

let run ?(checkpoint_every = 0) ?(on_checkpoint = fun ~steps:_ _ -> ()) t =
  if t.trace then emit t (Event.Phase_begin { phase = "run" });
  let next_checkpoint = ref checkpoint_every in
  let rec loop () =
    if Machine.halted t.machine then ()
    else if t.error <> None then ()
    else if Machine.steps t.machine >= t.cfg.max_steps then
      t.error <-
        Some
          (Error.Limit_exceeded
             { steps = Machine.steps t.machine; max_steps = t.cfg.max_steps })
    else begin
      (match t.inj with
      | Some inj when Injector.due inj ~step:(Machine.steps t.machine) ->
          inject_dispatch_faults t inj
      | Some _ | None -> ());
      let pc = Machine.pc t.machine in
      match Block_map.block_at t.bmap pc with
      | None ->
          (* Control landed mid-block: the dispatcher and the block map
             disagree.  Stop with a typed error instead of asserting. *)
          t.error <- Some (Error.Dispatch_lost { pc })
      | Some bid -> (
          let rid = t.region_entry.(bid) in
          let outcome =
            if rid >= 0 && t.state.(bid) = Optimized then exec_region t rid
            else exec_single t bid
          in
          if checkpoint_every > 0 && Machine.steps t.machine >= !next_checkpoint
          then begin
            on_checkpoint ~steps:(Machine.steps t.machine) (current_snapshot t);
            next_checkpoint := Machine.steps t.machine + checkpoint_every
          end;
          match outcome with
          | Trapped trap -> t.error <- Some (Error.Trap trap)
          | Finished -> ()
          | Flowed | Took _ -> loop ())
    end
  in
  loop ();
  if t.trace then emit t (Event.Phase_end { phase = "run" });
  let snapshot = current_snapshot t in
  let region_stats =
    Hashtbl.fold
      (fun id mon acc ->
        ( id,
          {
            entries = mon.m_entries;
            side_exits = mon.m_side_exits;
            loop_back_taken = mon.m_lb_taken;
            loop_back_seen = mon.m_lb_seen;
          } )
        :: acc)
      t.monitors []
    |> List.sort compare
  in
  {
    snapshot;
    counters = t.counters;
    steps = Machine.steps t.machine;
    profiling_ops = Snapshot.profiling_ops snapshot;
    outputs = Machine.outputs t.machine;
    region_stats;
    error = t.error;
    faults = Option.map Injector.report t.inj;
  }
