module Machine = Tpdbt_vm.Machine
module Event = Tpdbt_telemetry.Event
module Sink = Tpdbt_telemetry.Sink
module Span = Tpdbt_telemetry.Span
module Fault = Tpdbt_faults.Fault
module Injector = Tpdbt_faults.Injector

type config = {
  threshold : int;
  pool_trigger : int;
  min_branch_prob : float;
  max_region_slots : int;
  enable_duplication : bool;
  enable_diamonds : bool;
  trace_scheduling : bool;
  regions_across_calls : bool;
  adaptive : bool;
  reopt_side_exit_rate : float;
  reopt_min_entries : int;
  reopt_limit : int;
  perf : Perf_model.params;
  max_steps : int;
  deadline : int option;
  snapshot_every : int;
  suspend_on_deadline : bool;
  sink : Sink.t;
  faults : Tpdbt_faults.Plan.t option;
  retry_limit : int;
  cache_capacity : int option;
  cache_policy : Code_cache.policy;
  cache_backoff : int;
  shadow_sample : int;
  max_quarantines : int;
}

let config ?(pool_trigger = 16) ?(adaptive = false) ?(sink = Sink.null) ?faults
    ?(retry_limit = 3) ?cache_capacity ?(cache_policy = Code_cache.Lru)
    ?(cache_backoff = 1000) ?(shadow_sample = 0) ?(max_quarantines = 4)
    ?deadline ?(snapshot_every = 0) ?(suspend_on_deadline = false) ~threshold
    () =
  {
    threshold;
    pool_trigger;
    min_branch_prob = 0.7;
    max_region_slots = 16;
    enable_duplication = true;
    enable_diamonds = true;
    trace_scheduling = false;
    regions_across_calls = false;
    adaptive;
    reopt_side_exit_rate = 0.3;
    reopt_min_entries = 64;
    reopt_limit = 3;
    perf = Perf_model.default;
    max_steps = 200_000_000;
    deadline;
    snapshot_every;
    suspend_on_deadline;
    sink;
    faults;
    retry_limit;
    cache_capacity;
    cache_policy;
    cache_backoff;
    shadow_sample;
    max_quarantines;
  }

let profiling_only = config ~threshold:0 ()

type region_stats = {
  entries : int;
  side_exits : int;
  loop_back_taken : int;
  loop_back_seen : int;
}

type result = {
  snapshot : Snapshot.t;
  counters : Perf_model.counters;
  steps : int;
  profiling_ops : int;
  outputs : int list;
  region_stats : (int * region_stats) list;
  error : Error.t option;
  faults : Fault.report option;
}

let trap result =
  match result.error with Some (Error.Trap t) -> Some t | Some _ | None -> None

type block_state = Cold | Registered | Optimized

(* Attribution stages: fixed indices into the per-stage accumulators
   that mirror every cycle-charge site when telemetry is enabled.  The
   labels are the public vocabulary of the [stage.cost] events. *)
let s_translate = 0
let s_interpret = 1
let s_profile = 2
let s_side_entry = 3
let s_dispatch = 4
let s_region_exec = 5
let s_side_exit = 6
let s_optimize = 7
let s_evict = 8
let s_shadow = 9

let stage_labels =
  [|
    "translate";
    "interpret";
    "profile";
    "side-entry";
    "region-dispatch";
    "region-exec";
    "side-exit";
    "optimize";
    "evict";
    "shadow-replay";
  |]

(* Mutable per-region runtime monitor (adaptive mode + continuous loop
   profiling). *)
type monitor = {
  mutable m_entries : int;
  mutable m_side_exits : int;
  mutable m_lb_taken : int;
  mutable m_lb_seen : int;
  mutable m_disabled : bool;
      (* adaptive mode: set once a member block has hit the
         re-optimisation limit — the region is then kept for good,
         preventing dissolve/reform thrashing on inherently unstable
         (near-50%) branches *)
}

(* Hot-path mirror of one installed region: everything the dispatch
   loop needs, predecoded into flat arrays at commit time so a region
   entry performs no hashtable lookups, no list walks and no
   allocation.  [regions]/[monitors] stay the authoritative store for
   the cold paths (dissolution, eviction, quarantine, reporting);
   [unlink_region] keeps the mirror in sync. *)
type rentry = {
  r_region : Region.t;
  r_mon : monitor;
  r_slot_cycles : float array;
  r_start_pc : int array;  (* per slot: member block's start pc *)
  r_size : int array;  (* per slot: member block's size *)
  (* Per-slot successor slot for each edge role (first matching edge in
     [Region.out_edges] order), -1 when the role has no edge. *)
  r_dst_taken : int array;
  r_dst_not_taken : int array;
  r_dst_always : int array;
  r_always_ok : bool array;
      (* terminator is Goto/Fallthrough/Call_to, i.e. a [Flowed]
         outcome follows the [Always] edge *)
  r_has_back : bool array;  (* slot is the source of a back edge *)
  r_tail : int;
  r_is_loop : bool;
}

type t = {
  cfg : config;
  program : Tpdbt_isa.Program.t;
  machine : Machine.t;
  bmap : Block_map.t;
  code_len : int;
  use : int array;
  taken : int array;
  state : block_state array;
  touched : bool array;
  dissolve_count : int array;  (* per block, adaptive mode *)
  region_entry : int array;  (* block id -> region id, or -1 *)
  regions : (int, Region.t * float array) Hashtbl.t;  (* id -> region, slot cycles *)
  monitors : (int, monitor) Hashtbl.t;  (* region id -> runtime stats *)
  mutable rentries : rentry option array;  (* region id -> hot mirror *)
  mutable regions_rev : Region.t list;
  mutable next_region_id : int;
  mutable pool : int list;
  mutable pool_size : int;
  mutable pool_trigger_now : int;
      (* effective pool trigger: decays (halves) after an injected
         retranslation failure so the retry happens promptly, and is
         restored to the configured value by a clean optimisation
         round *)
  fault_fails : int array;
      (* per block: injected retranslation failures / formation aborts
         of regions rooted there — the bounded-retry budget *)
  cache : Code_cache.t;
  quarantined : bool array;
      (* per block: member of a region the shadow oracle quarantined —
         never registered or re-optimised again, but keeps profiling *)
  mutable quarantine_count : int;
  mutable degraded : bool;
      (* the bounded-quarantine watchdog tripped: profiling-only from
         here on *)
  mutable last_round_step : int;
      (* guest step of the last optimisation round — under a bounded
         cache, rounds are spaced at least [cache_backoff] steps apart
         so eviction-driven re-pooling cannot re-trigger the optimiser
         on every block execution (the thrash stays in the cycle
         model, not in wall-clock) *)
  inj : Injector.t option;
  counters : Perf_model.counters;
  cycles_acc : float array;
      (* single-cell accumulator behind [counters.cycles]: a float
         array stores its element unboxed, where the mutable float
         field of the mixed int/float [counters] record boxes on every
         store.  Every charge site adds here, in the same order as
         before, and [run] mirrors the cell back into the counters at
         the end — the sum (and hence every emitted figure) stays
         bit-identical. *)
  mutable error : Error.t option;
  trace : bool;
      (* telemetry enabled?  Checked before constructing any event, so
         the default null sink costs nothing on the hot paths. *)
  spans : Span.t;
      (* profiling spans over the engine's coarse stages (run, optimize,
         region formation, eviction, shadow replay), stamped with the
         guest clock; no-ops when [trace] is false *)
  stage_cycles : float array;
      (* per-stage mirrors of every cycle charge, indexed by the
         [s_*] stage constants; updated only under [if t.trace] and
         emitted as [Stage_cost] events at the end of the run *)
  stage_steps : int array;
  stage_count : int array;
  region_cost : (int, float ref * int ref) Hashtbl.t;
      (* region id -> (cycles charged, guest instrs executed inside);
         updated only under [if t.trace] *)
}

let create ?config:(cfg = config ~threshold:1000 ()) ?mem_words ~seed program =
  let machine = Machine.create ?mem_words ~seed program in
  let bmap = Block_map.build program in
  let n = Block_map.block_count bmap in
  {
    cfg;
    program;
    machine;
    bmap;
    code_len = Array.length program.Tpdbt_isa.Program.code;
    use = Array.make n 0;
    taken = Array.make n 0;
    state = Array.make n Cold;
    touched = Array.make n false;
    dissolve_count = Array.make n 0;
    region_entry = Array.make n (-1);
    regions = Hashtbl.create 32;
    monitors = Hashtbl.create 32;
    rentries = Array.make 32 None;
    regions_rev = [];
    next_region_id = 0;
    pool = [];
    pool_size = 0;
    pool_trigger_now = cfg.pool_trigger;
    fault_fails = Array.make n 0;
    cache =
      Code_cache.create ?capacity:cfg.cache_capacity ~policy:cfg.cache_policy
        ();
    quarantined = Array.make n false;
    quarantine_count = 0;
    degraded = false;
    (* [- backoff] keeps [steps - last_round_step] overflow-free and
       lets the first round fire immediately. *)
    last_round_step = -cfg.cache_backoff;
    inj = Option.map Injector.create cfg.faults;
    counters = Perf_model.fresh_counters ();
    cycles_acc = Array.make 1 0.0;
    error = None;
    trace = not (Sink.is_null cfg.sink);
    spans = Span.create ~clock:(fun () -> Machine.steps machine) cfg.sink;
    stage_cycles = Array.make (Array.length stage_labels) 0.0;
    stage_steps = Array.make (Array.length stage_labels) 0;
    stage_count = Array.make (Array.length stage_labels) 0;
    region_cost = Hashtbl.create 16;
  }

let block_map t = t.bmap
let machine t = t.machine

(* Call only under [if t.trace then ...] so disabled telemetry never
   allocates an event. *)
let emit t event = t.cfg.sink.Sink.emit ~step:(Machine.steps t.machine) event

(* Mirror a cycle charge into the per-stage attribution accumulators.
   Call only under [if t.trace]; the perf counters stay the single
   source of truth and are updated at the charge site itself. *)
let charge t stage ?(steps = 0) ?(count = 1) cycles =
  t.stage_cycles.(stage) <- t.stage_cycles.(stage) +. cycles;
  t.stage_steps.(stage) <- t.stage_steps.(stage) + steps;
  t.stage_count.(stage) <- t.stage_count.(stage) + count

(* Tally a charge against one region.  Call only under [if t.trace]. *)
let region_charge t rid cycles instrs =
  let cyc, ins =
    match Hashtbl.find_opt t.region_cost rid with
    | Some r -> r
    | None ->
        let r = (ref 0.0, ref 0) in
        Hashtbl.add t.region_cost rid r;
        r
  in
  cyc := !cyc +. cycles;
  ins := !ins + instrs

(* End-of-run attribution: one [Stage_cost] per charged stage (fixed
   stage order) and one [Region_cost] per region (ascending id), all
   emitted while the "engine.run" span is still open so the profiler
   attaches them beneath it. *)
let emit_costs t =
  Array.iteri
    (fun i label ->
      if t.stage_count.(i) > 0 then
        emit t
          (Event.Stage_cost
             {
               stage = label;
               cycles = t.stage_cycles.(i);
               steps = t.stage_steps.(i);
               count = t.stage_count.(i);
             }))
    stage_labels;
  Hashtbl.fold (fun rid (cyc, ins) acc -> (rid, !cyc, !ins) :: acc)
    t.region_cost []
  |> List.sort compare
  |> List.iter (fun (region, cycles, instrs) ->
         emit t (Event.Region_cost { region; cycles; instrs }))

(* Outcome of executing one block on the machine, as an int code so the
   per-block report allocates nothing.  [oc_finished]/[oc_trapped] are
   terminal (the dispatch tests [outcome >= oc_finished]); a trapped
   outcome leaves the trap in [Machine.last_trap]. *)
let oc_flowed = 0 (* unconditional control transfer or plain fallthrough *)
let oc_took_not = 1 (* conditional branch, not taken *)
let oc_took = 2 (* conditional branch, taken *)
let oc_finished = 3 (* machine halted *)
let oc_trapped = 4

(* Execute the instructions of one block of [remaining] instructions;
   the machine must be at its start.  Returns the outcome of the
   block's last instruction (the terminator — any control transfer ends
   the block). *)
let rec exec_block machine remaining =
  let c = Machine.step_code machine in
  if c = Machine.ev_stepped then
    if remaining = 1 then oc_flowed else exec_block machine (remaining - 1)
  else if c = Machine.ev_branch_taken then oc_took
  else if c = Machine.ev_branch_not_taken then oc_took_not
  else if c <= Machine.ev_returned then oc_flowed (* jumped/called/returned *)
  else if c = Machine.ev_halted then oc_finished
  else oc_trapped

(* ------------------------------------------------------------------ *)
(* Region bookkeeping shared by dissolution, eviction and quarantine    *)
(* ------------------------------------------------------------------ *)

let region_instrs t (r : Region.t) =
  Array.fold_left
    (fun acc b -> acc + (Block_map.block t.bmap b).Block_map.size)
    0 r.Region.slots

let set_rentry t rid re =
  let n = Array.length t.rentries in
  if rid >= n then begin
    let bigger = Array.make (max (2 * n) (rid + 1)) None in
    Array.blit t.rentries 0 bigger 0 n;
    t.rentries <- bigger
  end;
  t.rentries.(rid) <- Some re

let build_rentry t (r : Region.t) slot_cycles mon =
  let n = Array.length r.Region.slots in
  let start_pc = Array.make n 0
  and size = Array.make n 0
  and dst_taken = Array.make n (-1)
  and dst_not_taken = Array.make n (-1)
  and dst_always = Array.make n (-1)
  and always_ok = Array.make n false
  and has_back = Array.make n false in
  Array.iteri
    (fun slot bid ->
      let b = Block_map.block t.bmap bid in
      start_pc.(slot) <- b.Block_map.start_pc;
      size.(slot) <- b.Block_map.size;
      (match b.Block_map.terminator with
      | Block_map.Goto _ | Block_map.Fallthrough _ | Block_map.Call_to _ ->
          always_ok.(slot) <- true
      | Block_map.Cond _ | Block_map.Return | Block_map.Stop -> ());
      List.iter
        (fun (e : Region.edge) ->
          let cell =
            match e.Region.role with
            | Region.Taken -> dst_taken
            | Region.Not_taken -> dst_not_taken
            | Region.Always -> dst_always
          in
          if cell.(slot) < 0 then cell.(slot) <- e.Region.dst)
        (Region.out_edges r slot);
      has_back.(slot) <-
        List.exists
          (fun (e : Region.edge) -> e.Region.src = slot)
          r.Region.back_edges)
    r.Region.slots;
  {
    r_region = r;
    r_mon = mon;
    r_slot_cycles = slot_cycles;
    r_start_pc = start_pc;
    r_size = size;
    r_dst_taken = dst_taken;
    r_dst_not_taken = dst_not_taken;
    r_dst_always = dst_always;
    r_always_ok = always_ok;
    r_has_back = has_back;
    r_tail = Region.tail_slot r;
    r_is_loop = r.Region.kind = Region.Loop;
  }

let unlink_region t rid =
  Hashtbl.remove t.regions rid;
  Hashtbl.remove t.monitors rid;
  if rid < Array.length t.rentries then t.rentries.(rid) <- None;
  t.regions_rev <- List.filter (fun r -> r.Region.id <> rid) t.regions_rev

(* Rebuild the dispatcher's entry map from the surviving regions, in
   formation order. *)
let rebuild_region_entries t =
  Array.fill t.region_entry 0 (Array.length t.region_entry) (-1);
  List.iter
    (fun r ->
      let entry = Region.entry_block r in
      if t.region_entry.(entry) < 0 then t.region_entry.(entry) <- r.Region.id)
    (List.rev t.regions_rev)

let still_in_region t =
  let tbl = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ (r, _) ->
      Array.iter (fun b -> Hashtbl.replace tbl b ()) r.Region.slots)
    t.regions;
  fun b -> Hashtbl.mem tbl b

(* A region evicted by the bounded code cache is not gone for cause:
   its members fall back to profiled execution with their counters
   {e preserved} and return to the candidate pool, so a later
   optimisation round can re-form it — paying the retranslation cost
   again.  That churn is exactly what the cache-size sweep measures. *)
let evict_region t rid =
  match Hashtbl.find_opt t.regions rid with
  | None -> ()
  | Some (r, _) ->
      unlink_region t rid;
      let still = still_in_region t in
      Array.iter
        (fun b ->
          if not (still b) then
            if t.quarantined.(b) then t.state.(b) <- Cold
            else begin
              t.state.(b) <- Registered;
              if (not t.degraded) && not (List.mem b t.pool) then begin
                t.pool <- b :: t.pool;
                t.pool_size <- t.pool_size + 1
              end
            end)
        r.Region.slots;
      rebuild_region_entries t

let apply_victims t victims =
  if t.trace && victims <> [] then Span.enter t.spans "engine.evict";
  List.iter
    (fun (v : Code_cache.entry) ->
      t.cycles_acc.(0) <-
        t.cycles_acc.(0)
        +. (float_of_int v.Code_cache.size
           *. t.cfg.perf.Perf_model.evict_per_instr);
      if t.trace then
        charge t s_evict
          (float_of_int v.Code_cache.size
          *. t.cfg.perf.Perf_model.evict_per_instr);
      if t.trace then
        emit t
          (Event.Cache_evicted
             {
               entry_kind =
                 (match v.Code_cache.ekind with
                 | Code_cache.Block -> "block"
                 | Code_cache.Region -> "region");
               id = v.Code_cache.id;
               size = v.Code_cache.size;
             });
      match v.Code_cache.ekind with
      | Code_cache.Block ->
          (* The next execution pays cold translation again. *)
          t.touched.(v.Code_cache.id) <- false
      | Code_cache.Region -> evict_region t v.Code_cache.id)
    victims;
  if t.trace && victims <> [] then Span.leave t.spans "engine.evict"

(* ------------------------------------------------------------------ *)
(* Optimisation phase                                                   *)
(* ------------------------------------------------------------------ *)

(* Injected retranslation failure: the region is not installed.  Its
   members keep their profiles and return to the candidate pool, and
   the pool trigger decays so the retry fires promptly; past the retry
   budget the engine gives up with a typed error (the IA32EL-style
   bail-out). *)
let recover_retranslation_failure t inj arm (r : Region.t) =
  let step = Machine.steps t.machine in
  let entry = Region.entry_block r in
  Injector.record inj arm ~fired_step:step ~target:r.Region.id;
  t.counters.Perf_model.faults_injected <-
    t.counters.Perf_model.faults_injected + 1;
  if t.trace then
    emit t
      (Event.Fault_injected
         { fault = Fault.kind_name Fault.Retranslate_fail; target = r.Region.id });
  t.fault_fails.(entry) <- t.fault_fails.(entry) + 1;
  if t.fault_fails.(entry) > t.cfg.retry_limit then
    t.error <-
      Some
        (Error.Retranslation_failed
           { region = r.Region.id; block = entry; attempts = t.fault_fails.(entry) })
  else begin
    t.pool_trigger_now <- max 1 (t.pool_trigger_now / 2);
    t.counters.Perf_model.retrans_retries <-
      t.counters.Perf_model.retrans_retries + 1;
    if t.trace then
      emit t (Event.Recovery { action = Event.Retry; target = r.Region.id });
    Array.iter
      (fun b ->
        if t.state.(b) <> Optimized then begin
          t.state.(b) <- Registered;
          if not (List.mem b t.pool) then begin
            t.pool <- b :: t.pool;
            t.pool_size <- t.pool_size + 1
          end
        end)
      r.Region.slots
  end

(* Injected formation abort: the half-built region is thrown away and
   its members return to cold profiling code with fresh counters (the
   dissolution recovery path); past the retry budget the engine gives
   up with a typed error. *)
let recover_region_abort t inj arm (r : Region.t) =
  let step = Machine.steps t.machine in
  let entry = Region.entry_block r in
  Injector.record inj arm ~fired_step:step ~target:r.Region.id;
  t.counters.Perf_model.faults_injected <-
    t.counters.Perf_model.faults_injected + 1;
  if t.trace then
    emit t
      (Event.Fault_injected
         { fault = Fault.kind_name Fault.Region_abort; target = r.Region.id });
  t.fault_fails.(entry) <- t.fault_fails.(entry) + 1;
  if t.fault_fails.(entry) > t.cfg.retry_limit then
    t.error <-
      Some
        (Error.Region_aborted
           { region = r.Region.id; block = entry; attempts = t.fault_fails.(entry) })
  else begin
    t.counters.Perf_model.fault_dissolves <-
      t.counters.Perf_model.fault_dissolves + 1;
    if t.trace then
      emit t (Event.Recovery { action = Event.Dissolve; target = r.Region.id });
    Array.iter
      (fun b ->
        if t.state.(b) <> Optimized then begin
          t.state.(b) <- Cold;
          t.use.(b) <- 0;
          t.taken.(b) <- 0
        end)
      r.Region.slots
  end

let optimize t =
  if t.trace then begin
    emit t (Event.Phase_begin { phase = "optimize" });
    Span.enter t.spans "engine.optimize"
  end;
  t.last_round_step <- Machine.steps t.machine;
  t.counters.Perf_model.optimization_rounds <-
    t.counters.Perf_model.optimization_rounds + 1;
  let seeds =
    List.sort (fun a b -> compare t.use.(b) t.use.(a)) t.pool
  in
  (* Clear the pool before committing regions: recovery from an
     injected retranslation failure re-pools the failed region's
     members, and those must survive to the next round. *)
  t.pool <- [];
  t.pool_size <- 0;
  let former_cfg =
    {
      Region_former.threshold = t.cfg.threshold;
      min_branch_prob = t.cfg.min_branch_prob;
      max_slots = t.cfg.max_region_slots;
      enable_duplication = t.cfg.enable_duplication;
      enable_diamonds = t.cfg.enable_diamonds;
      across_calls = t.cfg.regions_across_calls;
    }
  in
  let owner b =
    match t.state.(b) with
    | Optimized -> Region_former.Owned
    | Cold | Registered -> Region_former.Unowned
  in
  let new_regions =
    if t.trace then Span.enter t.spans "engine.region_form";
    let regions =
      Region_former.form former_cfg ~block_map:t.bmap ~use:t.use ~taken:t.taken
        ~owner ~seeds ~first_id:t.next_region_id
    in
    if t.trace then Span.leave t.spans "engine.region_form";
    regions
  in
  let commit r =
      let slot_cycles =
        let code = t.program.Tpdbt_isa.Program.code in
        if t.cfg.trace_scheduling then
          Optimizer.region_slot_cycles_pipelined t.bmap ~code r
        else Optimizer.region_slot_cycles t.bmap ~code r
      in
      Hashtbl.replace t.regions r.Region.id (r, slot_cycles);
      let mon =
        {
          m_entries = 0;
          m_side_exits = 0;
          m_lb_taken = 0;
          m_lb_seen = 0;
          m_disabled = false;
        }
      in
      Hashtbl.replace t.monitors r.Region.id mon;
      set_rentry t r.Region.id (build_rentry t r slot_cycles mon);
      t.regions_rev <- r :: t.regions_rev;
      t.counters.Perf_model.regions_formed <-
        t.counters.Perf_model.regions_formed + 1;
      let instrs = region_instrs t r in
      if t.trace then
        emit t
          (Event.Region_formed
             {
               region = r.Region.id;
               kind =
                 (match r.Region.kind with
                 | Region.Trace -> Event.Trace
                 | Region.Loop -> Event.Loop);
               slots = Array.length r.Region.slots;
               instrs;
               entry_block = Region.entry_block r;
             });
      (* Retranslation cost: proportional to region size in instructions. *)
      Array.iter
        (fun block ->
          let size = (Block_map.block t.bmap block).Block_map.size in
          t.cycles_acc.(0) <-
            t.cycles_acc.(0)
            +. (float_of_int size *. t.cfg.perf.Perf_model.optimize_per_instr);
          if t.trace then
            charge t s_optimize
              (float_of_int size *. t.cfg.perf.Perf_model.optimize_per_instr))
        r.Region.slots;
      (* Freeze members; record the region entry for dispatch. *)
      Array.iter (fun block -> t.state.(block) <- Optimized) r.Region.slots;
      let entry = Region.entry_block r in
      if t.region_entry.(entry) < 0 then t.region_entry.(entry) <- r.Region.id;
      (* Charge the region to the code cache; over capacity, the
         policy's victims are de-installed here and now. *)
      apply_victims t
        (Code_cache.insert t.cache
           ~now:(Machine.steps t.machine)
           ~ekind:Code_cache.Region ~id:r.Region.id ~size:instrs)
  in
  let clean_round = ref true in
  List.iter
    (fun r ->
      t.next_region_id <- t.next_region_id + 1;
      if t.error = None then begin
        let step = Machine.steps t.machine in
        match t.inj with
        | None -> commit r
        | Some inj -> (
            match Injector.take inj ~step Fault.Region_abort with
            | Some arm -> recover_region_abort t inj arm r
            | None -> (
                match Injector.take inj ~step Fault.Retranslate_fail with
                | Some arm ->
                    clean_round := false;
                    recover_retranslation_failure t inj arm r
                | None -> commit r))
      end)
    new_regions;
  if !clean_round then t.pool_trigger_now <- t.cfg.pool_trigger;
  if t.trace then begin
    Span.leave t.spans "engine.optimize";
    emit t (Event.Phase_end { phase = "optimize" })
  end

(* Adaptive mode: dissolve a region whose side-exit rate shows that its
   frozen profile no longer matches execution (the paper's §5
   "monitoring region side exits to trigger retranslation").  Member
   blocks not shared with a surviving region return to the profiling
   phase with fresh counters, so their next profile reflects the new
   phase; the dispatcher's entry map is rebuilt from the survivors. *)
let dissolve t (region : Region.t) =
  Array.iter
    (fun b -> t.dissolve_count.(b) <- t.dissolve_count.(b) + 1)
    region.Region.slots;
  unlink_region t region.Region.id;
  Code_cache.remove t.cache Code_cache.Region region.Region.id;
  t.counters.Perf_model.regions_dissolved <-
    t.counters.Perf_model.regions_dissolved + 1;
  let still = still_in_region t in
  Array.iter
    (fun b ->
      if not (still b) then begin
        t.state.(b) <- Cold;
        t.use.(b) <- 0;
        t.taken.(b) <- 0
      end)
    region.Region.slots;
  rebuild_region_entries t

(* ------------------------------------------------------------------ *)
(* Dispatch loop                                                        *)
(* ------------------------------------------------------------------ *)

(* Execute block [bid] outside any region, with profiling if it is not
   yet optimised.  Returns the outcome. *)
let exec_single t bid =
  let b = Block_map.block t.bmap bid in
  let perf = t.cfg.perf in
  if not t.touched.(bid) then begin
    t.touched.(bid) <- true;
    if t.trace then
      emit t (Event.Block_translated { block = bid; size = b.Block_map.size });
    t.counters.Perf_model.blocks_translated <-
      t.counters.Perf_model.blocks_translated + 1;
    t.cycles_acc.(0) <-
      t.cycles_acc.(0)
      +. (float_of_int b.Block_map.size
         *. perf.Perf_model.cold_translate_per_instr);
    if t.trace then
      charge t s_translate
        (float_of_int b.Block_map.size
        *. perf.Perf_model.cold_translate_per_instr);
    apply_victims t
      (Code_cache.insert t.cache
         ~now:(Machine.steps t.machine)
         ~ekind:Code_cache.Block ~id:bid ~size:b.Block_map.size)
  end
  else if Code_cache.bounded t.cache then
    Code_cache.touch t.cache
      ~now:(Machine.steps t.machine)
      Code_cache.Block bid;
  let steps_before = if t.trace then Machine.steps t.machine else 0 in
  let outcome = exec_block t.machine b.Block_map.size in
  (match t.state.(bid) with
  | Optimized ->
      (* Side entry to an optimised block: instrumentation removed. *)
      t.cycles_acc.(0) <-
        t.cycles_acc.(0)
        +. (float_of_int b.Block_map.size
           *. perf.Perf_model.translated_exec_per_instr);
      if t.trace then
        charge t s_side_entry
          ~steps:(Machine.steps t.machine - steps_before)
          (float_of_int b.Block_map.size
          *. perf.Perf_model.translated_exec_per_instr)
  | Cold | Registered ->
      t.use.(bid) <- t.use.(bid) + 1;
      let ops =
        if outcome = oc_took then begin
          t.taken.(bid) <- t.taken.(bid) + 1;
          2
        end
        else 1
      in
      t.cycles_acc.(0) <-
        t.cycles_acc.(0)
        +. (float_of_int b.Block_map.size
           *. perf.Perf_model.profiled_exec_per_instr)
        +. (float_of_int ops *. perf.Perf_model.profiling_op_cost);
      if t.trace then begin
        charge t s_interpret
          ~steps:(Machine.steps t.machine - steps_before)
          (float_of_int b.Block_map.size
          *. perf.Perf_model.profiled_exec_per_instr);
        charge t s_profile ~count:ops
          (float_of_int ops *. perf.Perf_model.profiling_op_cost)
      end;
      if t.cfg.threshold > 0 && not t.degraded then begin
        (match t.state.(bid) with
        | Cold ->
            if t.use.(bid) >= t.cfg.threshold && not t.quarantined.(bid)
            then begin
              t.state.(bid) <- Registered;
              t.pool <- bid :: t.pool;
              t.pool_size <- t.pool_size + 1;
              if t.trace then
                emit t
                  (Event.Block_registered
                     {
                       block = bid;
                       use = t.use.(bid);
                       threshold = t.cfg.threshold;
                     })
            end
        | Registered | Optimized -> ());
        let registered_twice =
          match t.state.(bid) with
          | Registered -> t.use.(bid) >= 2 * t.cfg.threshold
          | Cold | Optimized -> false
        in
        let backoff_ok =
          (not (Code_cache.bounded t.cache))
          || Machine.steps t.machine - t.last_round_step >= t.cfg.cache_backoff
        in
        if
          t.pool_size > 0 && backoff_ok
          && (registered_twice || t.pool_size >= t.pool_trigger_now)
        then begin
          if t.trace then
            emit t
              (Event.Pool_trigger
                 {
                   pool_size = t.pool_size;
                   reason =
                     (if registered_twice then Event.Registered_twice
                      else Event.Pool_full);
                 });
          optimize t
        end
      end);
  outcome

(* ------------------------------------------------------------------ *)
(* Quarantine and the bounded-quarantine watchdog                       *)
(* ------------------------------------------------------------------ *)

(* Too many quarantines: the optimiser itself is suspect.  Drop every
   region (profile counters preserved), empty the pool, and run
   profiling-only for the rest of the run — degraded but correct. *)
let degrade t =
  t.degraded <- true;
  t.counters.Perf_model.watchdog_degraded <- 1;
  let rs =
    Hashtbl.fold (fun _ (r, _) acc -> r :: acc) t.regions []
    |> List.sort (fun a b -> compare a.Region.id b.Region.id)
  in
  List.iter
    (fun (r : Region.t) ->
      unlink_region t r.Region.id;
      Code_cache.remove t.cache Code_cache.Region r.Region.id;
      Array.iter
        (fun b -> if t.state.(b) = Optimized then t.state.(b) <- Cold)
        r.Region.slots)
    rs;
  t.pool <- [];
  t.pool_size <- 0;
  rebuild_region_entries t;
  if t.trace then
    emit t (Event.Engine_degraded { quarantines = t.quarantine_count })

(* Shadow divergence: the region's translated code produced wrong
   architectural state.  Quarantine it — dissolve with the members'
   use/taken counters {e preserved} (they are real executions; the
   AVEP profile must survive) and bar the members from ever being
   registered or re-optimised again. *)
let quarantine t rid (region : Region.t) =
  let preserved_use =
    Array.fold_left (fun acc b -> acc + t.use.(b)) 0 region.Region.slots
  in
  unlink_region t rid;
  Code_cache.remove t.cache Code_cache.Region rid;
  t.counters.Perf_model.regions_quarantined <-
    t.counters.Perf_model.regions_quarantined + 1;
  t.quarantine_count <- t.quarantine_count + 1;
  let still = still_in_region t in
  Array.iter
    (fun b ->
      t.quarantined.(b) <- true;
      if not (still b) then t.state.(b) <- Cold)
    region.Region.slots;
  rebuild_region_entries t;
  if t.trace then
    emit t (Event.Region_quarantined { region = rid; preserved_use });
  if t.quarantine_count > t.cfg.max_quarantines then degrade t

(* Shadow-execution oracle: replay what the region just executed
   block-by-block on the cold path and compare architectural state.
   The interpreter {e is} the cold path here, so the replay is charged
   as cycles and the reference register file is the machine's own; the
   translated side's registers differ exactly when the region's cached
   code image carries a silent corruption, whose salt perturbs one
   register — the wrong-result execution the oracle exists to catch. *)
let shadow_check t rid ~steps_before =
  if t.trace then Span.enter t.spans "engine.shadow_replay";
  let perf = t.cfg.perf in
  let replayed = Machine.steps t.machine - steps_before in
  t.counters.Perf_model.shadow_replays <-
    t.counters.Perf_model.shadow_replays + 1;
  t.cycles_acc.(0) <-
    t.cycles_acc.(0)
    +. (float_of_int replayed *. perf.Perf_model.shadow_replay_per_instr);
  if t.trace then
    charge t s_shadow
      (float_of_int replayed *. perf.Perf_model.shadow_replay_per_instr);
  let reference =
    Array.of_list
      (List.map (fun r -> Machine.reg t.machine r) Tpdbt_isa.Reg.all)
  in
  let translated = Array.copy reference in
  (match Code_cache.corruption t.cache Code_cache.Region rid with
  | None -> ()
  | Some salt ->
      let nregs = Array.length translated in
      let idx =
        Int64.to_int
          (Int64.rem (Int64.logand salt Int64.max_int) (Int64.of_int nregs))
      in
      (* [lor 1] keeps the perturbation nonzero for every salt. *)
      let delta = 1 lor Int64.to_int (Int64.logand salt 0xffffL) in
      translated.(idx) <- translated.(idx) lxor delta);
  let diverged = ref (-1) in
  Array.iteri
    (fun i v -> if !diverged < 0 && v <> reference.(i) then diverged := i)
    translated;
  (if !diverged >= 0 then begin
     t.counters.Perf_model.shadow_divergences <-
       t.counters.Perf_model.shadow_divergences + 1;
     if t.trace then
       emit t (Event.Shadow_divergence { region = rid; reg = !diverged });
     match Hashtbl.find_opt t.regions rid with
     | Some (region, _) -> quarantine t rid region
     | None -> ()
   end);
  if t.trace then Span.leave t.spans "engine.shadow_replay"

(* Execute from slot [slot] of the region mirrored by [re], following
   the predecoded per-slot dispatch arrays.  Top-level recursion (not
   an inner closure) and flat array reads keep a steady-state region
   pass allocation-free. *)
let rec region_at_slot t rid re slot =
  if Machine.pc t.machine <> re.r_start_pc.(slot) then begin
    (* The region's layout no longer matches execution — surface a
       typed error instead of dying on an assertion. *)
    t.error <- Some (Error.Dispatch_lost { pc = Machine.pc t.machine });
    oc_finished
  end
  else begin
    let steps_before = if t.trace then Machine.steps t.machine else 0 in
    let outcome = exec_block t.machine re.r_size.(slot) in
    t.cycles_acc.(0) <- t.cycles_acc.(0) +. re.r_slot_cycles.(slot);
    if t.trace then begin
      let slot_steps = Machine.steps t.machine - steps_before in
      charge t s_region_exec ~steps:slot_steps re.r_slot_cycles.(slot);
      region_charge t rid re.r_slot_cycles.(slot) slot_steps
    end;
    if outcome >= oc_finished then outcome
    else begin
      (* First matching out edge for the outcome's role; [Flowed] only
         follows [Always] when the terminator is an unconditional
         transfer (a Call_to edge can be region-internal when formed
         with regions_across_calls — partial inlining). *)
      let dst =
        if outcome = oc_took then re.r_dst_taken.(slot)
        else if outcome = oc_took_not then re.r_dst_not_taken.(slot)
        else if re.r_always_ok.(slot) then re.r_dst_always.(slot)
        else -1
      in
      let mon = re.r_mon in
      if dst = 0 && re.r_is_loop then begin
        t.counters.Perf_model.loop_backs <-
          t.counters.Perf_model.loop_backs + 1;
        (* Continuous loop profiling: the latch executed and looped. *)
        mon.m_lb_seen <- mon.m_lb_seen + 1;
        mon.m_lb_taken <- mon.m_lb_taken + 1;
        region_at_slot t rid re 0
      end
      else if dst >= 0 then region_at_slot t rid re dst
      else begin
        if re.r_has_back.(slot) then mon.m_lb_seen <- mon.m_lb_seen + 1;
        if re.r_has_back.(slot) || slot = re.r_tail then begin
          t.counters.Perf_model.region_completions <-
            t.counters.Perf_model.region_completions + 1;
          if t.trace then emit t (Event.Region_completion { region = rid })
        end
        else begin
          t.counters.Perf_model.side_exits <-
            t.counters.Perf_model.side_exits + 1;
          mon.m_side_exits <- mon.m_side_exits + 1;
          if t.trace then emit t (Event.Region_side_exit { region = rid; slot });
          t.cycles_acc.(0) <-
            t.cycles_acc.(0) +. t.cfg.perf.Perf_model.side_exit_penalty;
          if t.trace then begin
            charge t s_side_exit t.cfg.perf.Perf_model.side_exit_penalty;
            region_charge t rid t.cfg.perf.Perf_model.side_exit_penalty 0
          end;
          if
            t.cfg.adaptive && (not mon.m_disabled)
            && mon.m_entries >= t.cfg.reopt_min_entries
            && float_of_int mon.m_side_exits
               > t.cfg.reopt_side_exit_rate *. float_of_int mon.m_entries
          then begin
            let over_limit =
              Array.exists
                (fun b -> t.dissolve_count.(b) >= t.cfg.reopt_limit)
                re.r_region.Region.slots
            in
            if over_limit then mon.m_disabled <- true
            else begin
              if t.trace then
                emit t
                  (Event.Region_dissolved
                     {
                       region = rid;
                       entries = mon.m_entries;
                       side_exits = mon.m_side_exits;
                     });
              dissolve t re.r_region
            end
          end
        end;
        outcome
      end
    end
  end

(* Execute inside region [rid] starting at its entry.  Returns the
   outcome that ended region execution. *)
let exec_region_body t rid re =
  let mon = re.r_mon in
  t.counters.Perf_model.region_entries <-
    t.counters.Perf_model.region_entries + 1;
  if t.trace then emit t (Event.Region_entry { region = rid });
  mon.m_entries <- mon.m_entries + 1;
  t.cycles_acc.(0) <-
    t.cycles_acc.(0) +. t.cfg.perf.Perf_model.optimized_dispatch;
  if t.trace then begin
    charge t s_dispatch t.cfg.perf.Perf_model.optimized_dispatch;
    region_charge t rid t.cfg.perf.Perf_model.optimized_dispatch 0
  end;
  region_at_slot t rid re 0

(* Region dispatch: look the region up defensively (a bounded cache may
   have evicted it between the dispatcher reading [region_entry] and
   this call firing — e.g. a [Cache_thrash] flush in the same step),
   decide {e before} execution whether this entry is shadow-sampled
   (the decision depends only on the monitor's entry count, so it is
   deterministic and independent of the oracle's own effects), run the
   body, then replay-and-compare on the sampled entries. *)
let exec_region t rid =
  match if rid < Array.length t.rentries then t.rentries.(rid) else None with
  | Some re ->
      let steps_before = Machine.steps t.machine in
      if Code_cache.bounded t.cache then
        Code_cache.touch t.cache ~now:steps_before Code_cache.Region rid;
      if
        Code_cache.has_corruption t.cache
        && Code_cache.corruption t.cache Code_cache.Region rid <> None
      then
        t.counters.Perf_model.corrupted_entries <-
          t.counters.Perf_model.corrupted_entries + 1;
      let sampled =
        t.cfg.shadow_sample > 0
        && re.r_mon.m_entries mod t.cfg.shadow_sample = 0
      in
      let outcome = exec_region_body t rid re in
      if sampled && t.error = None && outcome <> oc_trapped then
        shadow_check t rid ~steps_before;
      outcome
  | None ->
      t.error <- Some (Error.Dispatch_lost { pc = Machine.pc t.machine });
      oc_finished

(* Injected corruption of block [bid]'s translated code.  The
   translation is discarded (the next execution pays the cold
   translation again) and any region holding the block is dissolved
   back to cold profiling code via the adaptive-dissolution path. *)
let corrupt_block t bid =
  t.counters.Perf_model.faults_injected <-
    t.counters.Perf_model.faults_injected + 1;
  if t.trace then
    emit t
      (Event.Fault_injected
         { fault = Fault.kind_name Fault.Block_corrupt; target = bid });
  t.touched.(bid) <- false;
  Code_cache.remove t.cache Code_cache.Block bid;
  t.counters.Perf_model.blocks_retranslated <-
    t.counters.Perf_model.blocks_retranslated + 1;
  let owners =
    Hashtbl.fold
      (fun _ (r, _) acc ->
        if Array.exists (fun b -> b = bid) r.Region.slots then r :: acc
        else acc)
      t.regions []
  in
  List.iter
    (fun r ->
      t.counters.Perf_model.fault_dissolves <-
        t.counters.Perf_model.fault_dissolves + 1;
      if t.trace then
        emit t (Event.Recovery { action = Event.Dissolve; target = r.Region.id });
      dissolve t r)
    owners;
  if t.trace then
    emit t (Event.Recovery { action = Event.Retranslate; target = bid })

(* Faults whose site is the dispatch loop: guest traps (poison the
   instruction about to execute), block corruption (pick a translated
   victim from the arm's salt), silent corruption of a resident region
   and whole-cache thrash. *)
let inject_dispatch_faults t inj =
  let step = Machine.steps t.machine in
  (match Injector.take inj ~step Fault.Guest_trap with
  | None -> ()
  | Some arm ->
      let pc = Machine.pc t.machine in
      (* The pc can sit past the last instruction (fallthrough off the
         end halts the machine on its next step) — poisoning it would
         raise Invalid_argument, so the arm fires with no victim. *)
      if pc >= 0 && pc < Tpdbt_isa.Program.length t.program then begin
        Machine.poison t.machine pc;
        t.counters.Perf_model.faults_injected <-
          t.counters.Perf_model.faults_injected + 1;
        Injector.record inj arm ~fired_step:step ~target:pc;
        if t.trace then
          emit t
            (Event.Fault_injected
               { fault = Fault.kind_name Fault.Guest_trap; target = pc })
      end
      else Injector.record inj arm ~fired_step:step ~target:(-1));
  (match Injector.take inj ~step Fault.Silent_corruption with
  | None -> ()
  | Some arm -> (
      match Code_cache.resident_regions t.cache with
      | [] -> Injector.record inj arm ~fired_step:step ~target:(-1)
      | regions ->
          let n = List.length regions in
          let pick =
            Int64.to_int
              (Int64.rem (Int64.logand arm.Fault.salt Int64.max_int)
                 (Int64.of_int n))
          in
          let victim = List.nth regions pick in
          ignore
            (Code_cache.corrupt_region t.cache victim ~salt:arm.Fault.salt);
          t.counters.Perf_model.faults_injected <-
            t.counters.Perf_model.faults_injected + 1;
          Injector.record inj arm ~fired_step:step ~target:victim;
          if t.trace then
            emit t
              (Event.Fault_injected
                 {
                   fault = Fault.kind_name Fault.Silent_corruption;
                   target = victim;
                 })));
  (match Injector.take inj ~step Fault.Cache_thrash with
  | None -> ()
  | Some arm -> (
      match Code_cache.flush t.cache with
      | [] -> Injector.record inj arm ~fired_step:step ~target:(-1)
      | victims ->
          let n = List.length victims in
          let instrs =
            List.fold_left (fun acc v -> acc + v.Code_cache.size) 0 victims
          in
          t.counters.Perf_model.faults_injected <-
            t.counters.Perf_model.faults_injected + 1;
          Injector.record inj arm ~fired_step:step ~target:n;
          if t.trace then begin
            emit t
              (Event.Fault_injected
                 { fault = Fault.kind_name Fault.Cache_thrash; target = n });
            emit t (Event.Cache_flushed { entries = n; instrs })
          end;
          apply_victims t victims));
  match Injector.take inj ~step Fault.Block_corrupt with
  | None -> ()
  | Some arm ->
      let n = Array.length t.touched in
      let start =
        if n = 0 then 0
        else
          Int64.to_int
            (Int64.rem (Int64.logand arm.Fault.salt Int64.max_int)
               (Int64.of_int n))
      in
      let victim = ref (-1) in
      let i = ref 0 in
      while !victim < 0 && !i < n do
        let b = (start + !i) mod n in
        if t.touched.(b) then victim := b;
        incr i
      done;
      Injector.record inj arm ~fired_step:step ~target:!victim;
      if !victim >= 0 then corrupt_block t !victim

let current_snapshot t =
  {
    Snapshot.block_map = t.bmap;
    use = Array.copy t.use;
    taken = Array.copy t.taken;
    regions = List.rev t.regions_rev;
  }

let run ?(checkpoint_every = 0) ?(on_checkpoint = fun ~steps:_ _ -> ()) t =
  if t.trace then begin
    emit t (Event.Phase_begin { phase = "run" });
    Span.enter t.spans "engine.run"
  end;
  t.cycles_acc.(0) <- t.counters.Perf_model.cycles;
  (* A suspension is a resumable stop, not a verdict: re-entering [run]
     clears it and continues from exactly where the loop left off. *)
  (match t.error with
  | Some (Error.Suspended _) -> t.error <- None
  | Some _ | None -> ());
  let next_checkpoint = ref checkpoint_every in
  (* The supervisor's cooperative watchdog: polled per block, like
     every other dispatch-time check — a deadlined task stops itself
     instead of wedging its worker domain.  Hoisted to a plain int so
     the poll is one comparison, no option match. *)
  let deadline_step =
    match t.cfg.deadline with Some d -> d | None -> max_int
  in
  (* Cooperative snapshot trigger, same shape as the deadline poll: one
     int comparison per dispatched block, [max_int] (never fires, no
     allocation) when disabled.  The step at which it fires is fixed at
     entry — [run] returns [Suspended] there and the caller snapshots
     and re-enters, so the trigger period is measured from the resume
     point. *)
  let snapshot_step =
    if t.cfg.snapshot_every > 0 then
      Machine.steps t.machine + t.cfg.snapshot_every
    else max_int
  in
  let rec loop () =
    if Machine.halted t.machine then ()
    else
      match t.error with
      | Some _ -> ()
      | None ->
          if Machine.steps t.machine >= deadline_step then
            t.error <-
              (if t.cfg.suspend_on_deadline then
                 Some
                   (Error.Suspended
                      { steps = Machine.steps t.machine; deadline = true })
               else
                 Some
                   (Error.Deadline_exceeded
                      {
                        steps = Machine.steps t.machine;
                        deadline = Option.get t.cfg.deadline;
                      }))
          else if Machine.steps t.machine >= snapshot_step then
            t.error <-
              Some
                (Error.Suspended
                   { steps = Machine.steps t.machine; deadline = false })
          else if Machine.steps t.machine >= t.cfg.max_steps then
            t.error <-
              Some
                (Error.Limit_exceeded
                   {
                     steps = Machine.steps t.machine;
                     max_steps = t.cfg.max_steps;
                   })
          else begin
            (match t.inj with
            | Some inj when Injector.due inj ~step:(Machine.steps t.machine) ->
                inject_dispatch_faults t inj
            | Some _ | None -> ());
            let pc = Machine.pc t.machine in
            let bid = Block_map.id_at t.bmap pc in
            if bid < 0 then
              if pc < 0 || pc >= t.code_len then begin
                (* Fallthrough past the last instruction: when the
                   final block ends in a plain instruction (legal —
                   fuzz-generated images end this way once shrinking
                   nops out the halt), the machine halts on its next
                   step, charging nothing.  Take that step so the end
                   state is bit-identical to the interpreter's. *)
                ignore (Machine.step_code t.machine);
                loop ()
              end
              else
                (* Control landed mid-block: the dispatcher and the
                   block map disagree.  Stop with a typed error instead
                   of asserting. *)
                t.error <- Some (Error.Dispatch_lost { pc })
            else begin
              let rid = t.region_entry.(bid) in
              let outcome =
                if
                  rid >= 0
                  &&
                  match t.state.(bid) with
                  | Optimized -> true
                  | Cold | Registered -> false
                then exec_region t rid
                else exec_single t bid
              in
              if
                checkpoint_every > 0
                && Machine.steps t.machine >= !next_checkpoint
              then begin
                on_checkpoint
                  ~steps:(Machine.steps t.machine)
                  (current_snapshot t);
                next_checkpoint := Machine.steps t.machine + checkpoint_every
              end;
              if outcome = oc_trapped then
                match Machine.last_trap t.machine with
                | Some trap -> t.error <- Some (Error.Trap trap)
                | None -> t.error <- Some (Error.Dispatch_lost { pc })
              else if outcome = oc_finished then ()
              else loop ()
            end
          end
  in
  loop ();
  t.counters.Perf_model.cycles <- t.cycles_acc.(0);
  if t.trace then begin
    (* Attribution first, inside the still-open run span, so the
       profiler hangs the stage costs beneath "engine.run". *)
    emit_costs t;
    Span.leave t.spans "engine.run";
    emit t (Event.Phase_end { phase = "run" })
  end;
  (* The cache keeps the authoritative eviction tally (the engine may
     trigger it from several sites); mirror it into the perf counters
     once, here, so the result is self-contained. *)
  let cs = Code_cache.stats t.cache in
  t.counters.Perf_model.cache_evictions <- cs.Code_cache.evictions;
  t.counters.Perf_model.cache_flushes <- cs.Code_cache.flushes;
  t.counters.Perf_model.cache_evicted_instrs <- cs.Code_cache.evicted_instrs;
  t.counters.Perf_model.cache_peak_instrs <- cs.Code_cache.peak;
  let snapshot = current_snapshot t in
  let region_stats =
    Hashtbl.fold
      (fun id mon acc ->
        ( id,
          {
            entries = mon.m_entries;
            side_exits = mon.m_side_exits;
            loop_back_taken = mon.m_lb_taken;
            loop_back_seen = mon.m_lb_seen;
          } )
        :: acc)
      t.monitors []
    |> List.sort compare
  in
  {
    snapshot;
    counters = t.counters;
    steps = Machine.steps t.machine;
    profiling_ops = Snapshot.profiling_ops snapshot;
    outputs = Machine.outputs t.machine;
    region_stats;
    error = t.error;
    faults = Option.map Injector.report t.inj;
  }

let suspended (r : result) =
  match r.error with Some (Error.Suspended _) -> true | Some _ | None -> false

(* ------------------------------------------------------------------ *)
(* Mid-run images (snapshot / suspend / resume)                        *)
(* ------------------------------------------------------------------ *)

(* The complete evolving state of an engine between two [run] calls, as
   plain data: the machine image plus every translation, profiling,
   cache, recovery and fault-injection structure.  Derived state — the
   block map, per-region slot cycles, the hot region mirrors and the
   dispatcher's entry map — is deliberately absent: [restore] recomputes
   it from the program and the config, exactly as the original run did,
   so it cannot drift from the captured data. *)
type image = {
  ex_machine : Machine.image;
  ex_use : int array;
  ex_taken : int array;
  ex_state : int array;  (* 0 = Cold, 1 = Registered, 2 = Optimized *)
  ex_touched : bool array;
  ex_dissolve : int array;
  ex_regions : Region.t list;  (* formation order, oldest first *)
  ex_monitors : (int * (int * int * int * int * bool)) list;
      (* region id -> (entries, side_exits, lb_taken, lb_seen,
         disabled), ascending id *)
  ex_next_region_id : int;
  ex_pool : int list;  (* exact pool order — the optimiser's seed order *)
  ex_pool_trigger_now : int;
  ex_fault_fails : int array;
  ex_quarantined : bool array;
  ex_quarantine_count : int;
  ex_degraded : bool;
  ex_last_round_step : int;
  ex_cache : (int * int * int * int * int64 option) list;
      (* (kind rank, id, size, stamp, corruption salt) in the cache's
         deterministic victim order *)
  ex_cache_stats : int * int * int * int;
      (* evictions, flushes, evicted_instrs, peak *)
  ex_counters : Perf_model.counters;
  ex_pending : Fault.arm list;
  ex_fired : Fault.shot list;
}

let block_state_code = function Cold -> 0 | Registered -> 1 | Optimized -> 2

let block_state_of_code = function
  | 0 -> Cold
  | 1 -> Registered
  | 2 -> Optimized
  | c -> invalid_arg (Printf.sprintf "Engine.restore: bad block state %d" c)

(* Capture is only meaningful between [run] calls (typically after a
   [Suspended] stop): [run] has mirrored [cycles_acc] back into the
   counters, so the counters copy is complete. *)
let capture t =
  let pending, fired =
    match t.inj with Some inj -> Injector.cursor inj | None -> ([], [])
  in
  let cs = Code_cache.stats t.cache in
  {
    ex_machine = Machine.capture t.machine;
    ex_use = Array.copy t.use;
    ex_taken = Array.copy t.taken;
    ex_state = Array.map block_state_code t.state;
    ex_touched = Array.copy t.touched;
    ex_dissolve = Array.copy t.dissolve_count;
    ex_regions = List.rev t.regions_rev;
    ex_monitors =
      Hashtbl.fold
        (fun rid m acc ->
          ( rid,
            (m.m_entries, m.m_side_exits, m.m_lb_taken, m.m_lb_seen,
             m.m_disabled) )
          :: acc)
        t.monitors []
      |> List.sort compare;
    ex_next_region_id = t.next_region_id;
    ex_pool = t.pool;
    ex_pool_trigger_now = t.pool_trigger_now;
    ex_fault_fails = Array.copy t.fault_fails;
    ex_quarantined = Array.copy t.quarantined;
    ex_quarantine_count = t.quarantine_count;
    ex_degraded = t.degraded;
    ex_last_round_step = t.last_round_step;
    ex_cache =
      List.map
        (fun (e : Code_cache.entry) ->
          ( (match e.Code_cache.ekind with
            | Code_cache.Block -> 0
            | Code_cache.Region -> 1),
            e.Code_cache.id,
            e.Code_cache.size,
            e.Code_cache.stamp,
            e.Code_cache.corrupt ))
        (Code_cache.residents t.cache);
    ex_cache_stats =
      ( cs.Code_cache.evictions,
        cs.Code_cache.flushes,
        cs.Code_cache.evicted_instrs,
        cs.Code_cache.peak );
    ex_counters = { t.counters with Perf_model.cycles = t.counters.Perf_model.cycles };
    ex_pending = pending;
    ex_fired = fired;
  }

let restore ?config:(cfg = config ~threshold:1000 ()) program image =
  let machine = Machine.restore program image.ex_machine in
  let bmap = Block_map.build program in
  let n = Block_map.block_count bmap in
  let check_len label a =
    if Array.length a <> n then
      invalid_arg
        (Printf.sprintf
           "Engine.restore: %s has %d entries, block map has %d blocks" label
           (Array.length a) n)
  in
  check_len "use" image.ex_use;
  check_len "taken" image.ex_taken;
  check_len "state" image.ex_state;
  check_len "touched" image.ex_touched;
  check_len "dissolve" image.ex_dissolve;
  check_len "fault_fails" image.ex_fault_fails;
  check_len "quarantined" image.ex_quarantined;
  List.iter
    (fun b ->
      if b < 0 || b >= n then
        invalid_arg (Printf.sprintf "Engine.restore: pooled block %d" b))
    image.ex_pool;
  let counters =
    {
      image.ex_counters with
      Perf_model.cycles = image.ex_counters.Perf_model.cycles;
    }
  in
  let t =
    {
      cfg;
      program;
      machine;
      bmap;
      code_len = Array.length program.Tpdbt_isa.Program.code;
      use = Array.copy image.ex_use;
      taken = Array.copy image.ex_taken;
      state = Array.map block_state_of_code image.ex_state;
      touched = Array.copy image.ex_touched;
      dissolve_count = Array.copy image.ex_dissolve;
      region_entry = Array.make n (-1);
      regions = Hashtbl.create 32;
      monitors = Hashtbl.create 32;
      rentries = Array.make 32 None;
      regions_rev = List.rev image.ex_regions;
      next_region_id = image.ex_next_region_id;
      pool = image.ex_pool;
      pool_size = List.length image.ex_pool;
      pool_trigger_now = image.ex_pool_trigger_now;
      fault_fails = Array.copy image.ex_fault_fails;
      cache =
        Code_cache.create ?capacity:cfg.cache_capacity
          ~policy:cfg.cache_policy ();
      quarantined = Array.copy image.ex_quarantined;
      quarantine_count = image.ex_quarantine_count;
      degraded = image.ex_degraded;
      last_round_step = image.ex_last_round_step;
      inj =
        (if image.ex_pending = [] && image.ex_fired = [] then
           Option.map Injector.create cfg.faults
         else
           Some
             (Injector.of_cursor ~pending:image.ex_pending
                ~fired:image.ex_fired));
      counters;
      cycles_acc = Array.make 1 counters.Perf_model.cycles;
      error = None;
      trace = not (Sink.is_null cfg.sink);
      spans = Span.create ~clock:(fun () -> Machine.steps machine) cfg.sink;
      stage_cycles = Array.make (Array.length stage_labels) 0.0;
      stage_steps = Array.make (Array.length stage_labels) 0;
      stage_count = Array.make (Array.length stage_labels) 0;
      region_cost = Hashtbl.create 16;
    }
  in
  (* Reinstall the regions: slot cycles and the hot mirrors are pure
     functions of (region, program, config), recomputed exactly as the
     optimiser's commit computed them. *)
  List.iter
    (fun (r : Region.t) ->
      Array.iter
        (fun b ->
          if b < 0 || b >= n then
            invalid_arg
              (Printf.sprintf "Engine.restore: region %d references block %d"
                 r.Region.id b))
        r.Region.slots;
      let slot_cycles =
        let code = program.Tpdbt_isa.Program.code in
        if cfg.trace_scheduling then
          Optimizer.region_slot_cycles_pipelined bmap ~code r
        else Optimizer.region_slot_cycles bmap ~code r
      in
      Hashtbl.replace t.regions r.Region.id (r, slot_cycles);
      let e, s, lt, ls, disabled =
        match List.assoc_opt r.Region.id image.ex_monitors with
        | Some m -> m
        | None ->
            invalid_arg
              (Printf.sprintf "Engine.restore: region %d has no monitor"
                 r.Region.id)
      in
      let mon =
        {
          m_entries = e;
          m_side_exits = s;
          m_lb_taken = lt;
          m_lb_seen = ls;
          m_disabled = disabled;
        }
      in
      Hashtbl.replace t.monitors r.Region.id mon;
      set_rentry t r.Region.id (build_rentry t r slot_cycles mon))
    image.ex_regions;
  rebuild_region_entries t;
  let evictions, flushes, evicted_instrs, peak = image.ex_cache_stats in
  List.iter
    (fun (rank, id, size, stamp, corrupt) ->
      let ekind =
        match rank with
        | 0 -> Code_cache.Block
        | 1 -> Code_cache.Region
        | r ->
            invalid_arg
              (Printf.sprintf "Engine.restore: bad cache entry kind %d" r)
      in
      Code_cache.restore_entry t.cache ~ekind ~id ~size ~stamp ~corrupt)
    image.ex_cache;
  Code_cache.set_stats t.cache ~evictions ~flushes ~evicted_instrs ~peak;
  t
