(** Serialized mid-run engine images — the wire/disk format behind
    suspend/resume.

    An {!Engine.image} travels as deterministic text: a magic line
    ([TPDBT-SNAP 1]), a [crc <hex> <len>] header, then exactly [len]
    payload bytes.  Floats are printed with [%h] so cycle totals
    round-trip bit-exactly; the whole payload is guarded by the same
    CRC32 scheme as the checkpoint store, so truncation, bit flips and
    trailing garbage are {e detected} ({!classified}) rather than
    parsed into wrong state.

    The config and program are {e not} stored — only digests of them.
    {!restore} recomputes every piece of derived state (block map,
    slot cycles, dispatch tables) from the caller's program and
    config, and the digests refuse a resume under different ones,
    which would silently break the byte-identity guarantee. *)

type parsed = {
  sn_config_digest : string;
  sn_program_digest : string;
  sn_image : Engine.image;
}

type classified =
  | Snapshot of parsed
  | Stale_version of string  (** a [TPDBT-SNAP] file of another version *)
  | Corrupt of string  (** damage, with the detection reason *)

val config_digest : Engine.config -> string
(** CRC32 over every config field that steers execution.  The
    suspension triggers ([deadline], [snapshot_every],
    [suspend_on_deadline]), the telemetry sink and the fault plan are
    excluded: a resume may re-arm its own triggers and sink, and the
    image carries the injector's full cursor. *)

val program_digest : Tpdbt_isa.Program.t -> string

val to_string : config:Engine.config -> program:Tpdbt_isa.Program.t ->
  Engine.image -> string
(** @raise Invalid_argument if the image lists a region without a
    monitor entry (it cannot have come from {!Engine.capture}). *)

val of_string : string -> classified
(** Total: never raises.  Validates the magic, the CRC header, the
    payload grammar and each region's structure
    ({!Region.validate}). *)

val restore :
  config:Engine.config ->
  program:Tpdbt_isa.Program.t ->
  parsed ->
  (Engine.t, string) result
(** Digest checks, then {!Engine.restore}; its [Invalid_argument]
    (image inconsistent with the program) comes back as [Error]. *)

type info = {
  steps : int;  (** guest instructions executed before suspension *)
  halted : bool;
  pc : int;
  blocks : int;
  optimized_blocks : int;
  regions : int;
  pool : int;  (** candidate-pool occupancy *)
  cache_entries : int;
  quarantines : int;
  degraded : bool;
  pending_faults : int;
  fired_faults : int;
  cycles : float;
  config_digest : string;
  program_digest : string;
}

val info : parsed -> info
(** Summary of a parsed snapshot, for [tpdbt snapshot info]. *)
