module Instr = Tpdbt_isa.Instr
module Program = Tpdbt_isa.Program
module Reg = Tpdbt_isa.Reg

type trap =
  | Division_by_zero of int
  | Memory_fault of { pc : int; addr : int }
  | Return_without_call of int
  | Call_stack_overflow of int
  | Illegal_instruction of int
  | Branch_out_of_range of { pc : int; target : int }
  | Invalid_rnd_bound of { pc : int; bound : int }

type event =
  | Stepped
  | Branched of { taken : bool }
  | Jumped
  | Called
  | Returned
  | Halted

type t = {
  prog : Program.t;
  code : Instr.t array;
  regs : int array;
  memory : int array;
  mutable pc : int;
  mutable call_stack : int list;
  mutable call_depth : int;
  prng : Prng.t;
  mutable outputs_rev : int list;
  mutable steps : int;
  mutable halted : bool;
  mutable trap : trap option;
  mutable has_poison : bool;
  poisoned : (int, unit) Hashtbl.t;
      (* pcs whose code word has been corrupted (fault injection);
         executing one raises [Illegal_instruction] *)
}

let max_call_depth = 4096

let create ?(mem_words = 1 lsl 20) ?(seed = 1L) prog =
  let memory = Array.make mem_words 0 in
  List.iter
    (fun (addr, value) ->
      if addr < 0 || addr >= mem_words then
        invalid_arg
          (Printf.sprintf "Machine.create: data binding at %d outside memory"
             addr)
      else memory.(addr) <- value)
    prog.Program.data_init;
  {
    prog;
    code = prog.Program.code;
    regs = Array.make Reg.count 0;
    memory;
    pc = prog.Program.entry;
    call_stack = [];
    call_depth = 0;
    prng = Prng.create ~seed;
    outputs_rev = [];
    steps = 0;
    halted = false;
    trap = None;
    has_poison = false;
    poisoned = Hashtbl.create 4;
  }

let program t = t.prog
let pc t = t.pc
let halted t = t.halted
let steps t = t.steps
let reg t r = t.regs.(Reg.to_int r)

(* Normalise to signed 32-bit two's complement. *)
let wrap32 v = ((v land 0xFFFFFFFF) lxor 0x80000000) - 0x80000000

let set_reg t r v = t.regs.(Reg.to_int r) <- wrap32 v

let mem t addr =
  if addr < 0 || addr >= Array.length t.memory then
    invalid_arg (Printf.sprintf "Machine.mem: address %d out of range" addr)
  else t.memory.(addr)

let set_mem t addr v =
  if addr < 0 || addr >= Array.length t.memory then
    invalid_arg (Printf.sprintf "Machine.set_mem: address %d out of range" addr)
  else t.memory.(addr) <- wrap32 v

let outputs t = List.rev t.outputs_rev

let poison t pc =
  if pc < 0 || pc >= Array.length t.code then
    invalid_arg (Printf.sprintf "Machine.poison: pc %d out of range" pc);
  t.has_poison <- true;
  Hashtbl.replace t.poisoned pc ()

let poisoned t pc = t.has_poison && Hashtbl.mem t.poisoned pc

let eval_binop op a b ~pc =
  match op with
  | Instr.Add -> Ok (a + b)
  | Instr.Sub -> Ok (a - b)
  | Instr.Mul -> Ok (a * b)
  | Instr.Div -> if b = 0 then Error (Division_by_zero pc) else Ok (a / b)
  | Instr.Rem -> if b = 0 then Error (Division_by_zero pc) else Ok (a mod b)
  | Instr.And -> Ok (a land b)
  | Instr.Or -> Ok (a lor b)
  | Instr.Xor -> Ok (a lxor b)
  | Instr.Shl -> Ok (a lsl (b land 31))
  | Instr.Shr -> Ok (a asr (b land 31))

let step t =
  if t.halted then
    match t.trap with None -> Ok Halted | Some trap -> Error trap
  else if t.pc < 0 || t.pc >= Array.length t.code then begin
    (* Falling off the end of the code array stops the machine. *)
    t.halted <- true;
    Ok Halted
  end
  else begin
    let pc = t.pc in
    let instr = t.code.(pc) in
    t.steps <- t.steps + 1;
    let regs = t.regs in
    let fail trap =
      t.halted <- true;
      t.trap <- Some trap;
      Error trap
    in
    let continue event =
      t.pc <- pc + 1;
      Ok event
    in
    let transfer_to target event =
      (* Explicit control transfers must land inside the code image;
         plain fallthrough past the last instruction still halts. *)
      if target < 0 || target >= Array.length t.code then
        fail (Branch_out_of_range { pc; target })
      else begin
        t.pc <- target;
        Ok event
      end
    in
    if t.has_poison && Hashtbl.mem t.poisoned pc then
      fail (Illegal_instruction pc)
    else
    match instr with
    | Instr.Movi (rd, imm) ->
        regs.(Reg.to_int rd) <- wrap32 imm;
        continue Stepped
    | Instr.Mov (rd, rs) ->
        regs.(Reg.to_int rd) <- regs.(Reg.to_int rs);
        continue Stepped
    | Instr.Binop (op, rd, rs1, rs2) -> (
        match eval_binop op regs.(Reg.to_int rs1) regs.(Reg.to_int rs2) ~pc with
        | Ok v ->
            regs.(Reg.to_int rd) <- wrap32 v;
            continue Stepped
        | Error trap -> fail trap)
    | Instr.Binopi (op, rd, rs, imm) -> (
        match eval_binop op regs.(Reg.to_int rs) imm ~pc with
        | Ok v ->
            regs.(Reg.to_int rd) <- wrap32 v;
            continue Stepped
        | Error trap -> fail trap)
    | Instr.Load (rd, base, off) ->
        let addr = regs.(Reg.to_int base) + off in
        if addr < 0 || addr >= Array.length t.memory then
          fail (Memory_fault { pc; addr })
        else begin
          regs.(Reg.to_int rd) <- t.memory.(addr);
          continue Stepped
        end
    | Instr.Store (rsrc, base, off) ->
        let addr = regs.(Reg.to_int base) + off in
        if addr < 0 || addr >= Array.length t.memory then
          fail (Memory_fault { pc; addr })
        else begin
          t.memory.(addr) <- regs.(Reg.to_int rsrc);
          continue Stepped
        end
    | Instr.Br (c, rs1, rs2, target) ->
        let taken =
          Instr.eval_cond c regs.(Reg.to_int rs1) regs.(Reg.to_int rs2)
        in
        if taken then transfer_to target (Branched { taken = true })
        else begin
          t.pc <- pc + 1;
          Ok (Branched { taken = false })
        end
    | Instr.Jmp target -> transfer_to target Jumped
    | Instr.Call target ->
        if t.call_depth >= max_call_depth then fail (Call_stack_overflow pc)
        else if target < 0 || target >= Array.length t.code then
          fail (Branch_out_of_range { pc; target })
        else begin
          t.call_stack <- (pc + 1) :: t.call_stack;
          t.call_depth <- t.call_depth + 1;
          t.pc <- target;
          Ok Called
        end
    | Instr.Ret -> (
        match t.call_stack with
        | [] -> fail (Return_without_call pc)
        | ret :: rest ->
            t.call_stack <- rest;
            t.call_depth <- t.call_depth - 1;
            t.pc <- ret;
            Ok Returned)
    | Instr.Rnd (rd, bound) ->
        (* A non-positive bound is a guest bug, not a caller bug: it
           must trap like a division by zero, never leak the PRNG's
           [Invalid_argument] out of [step]. *)
        if bound <= 0 then fail (Invalid_rnd_bound { pc; bound })
        else begin
          regs.(Reg.to_int rd) <- Prng.below t.prng bound;
          continue Stepped
        end
    | Instr.Out rs ->
        t.outputs_rev <- regs.(Reg.to_int rs) :: t.outputs_rev;
        continue Stepped
    | Instr.Halt ->
        t.halted <- true;
        Ok Halted
    | Instr.Nop -> continue Stepped
  end

let run ?(max_steps = max_int) t =
  let rec loop remaining =
    if remaining = 0 || t.halted then Ok ()
    else
      match step t with
      | Ok Halted -> Ok ()
      | Ok (Stepped | Branched _ | Jumped | Called | Returned) ->
          loop (remaining - 1)
      | Error trap -> Error trap
  in
  loop max_steps

let pp_trap ppf = function
  | Division_by_zero pc -> Format.fprintf ppf "division by zero at pc %d" pc
  | Memory_fault { pc; addr } ->
      Format.fprintf ppf "memory fault at pc %d (address %d)" pc addr
  | Return_without_call pc ->
      Format.fprintf ppf "ret without matching call at pc %d" pc
  | Call_stack_overflow pc ->
      Format.fprintf ppf "call-stack overflow at pc %d" pc
  | Illegal_instruction pc ->
      Format.fprintf ppf "illegal instruction at pc %d" pc
  | Branch_out_of_range { pc; target } ->
      Format.fprintf ppf "branch at pc %d to out-of-range target %d" pc target
  | Invalid_rnd_bound { pc; bound } ->
      Format.fprintf ppf "rnd with non-positive bound %d at pc %d" bound pc
