module Instr = Tpdbt_isa.Instr
module Program = Tpdbt_isa.Program
module Reg = Tpdbt_isa.Reg

type trap =
  | Division_by_zero of int
  | Memory_fault of { pc : int; addr : int }
  | Return_without_call of int
  | Call_stack_overflow of int
  | Illegal_instruction of int
  | Branch_out_of_range of { pc : int; target : int }
  | Invalid_rnd_bound of { pc : int; bound : int }

type event =
  | Stepped
  | Branched of { taken : bool }
  | Jumped
  | Called
  | Returned
  | Halted

(* Int event codes returned by [step_code].  Profiling-mode
   interpretation is the phase the paper argues must be nearly free, so
   the per-step report to the engine is an immediate int, not an
   allocated [event] variant.  Codes 0..5 are "still running" (the
   engine tests [c <= ev_returned]); 6..7 are terminal. *)
let ev_stepped = 0
let ev_branch_not_taken = 1
let ev_branch_taken = 2
let ev_jumped = 3
let ev_called = 4
let ev_returned = 5
let ev_halted = 6
let ev_trapped = 7

(* Flat opcode tags for the predecoded dispatch table.  Dense 0..36 so
   the match in [step_code] compiles to a jump table. *)
let op_movi = 0
let op_mov = 1
let op_load = 2
let op_store = 3
let op_jmp = 4
let op_call = 5
let op_ret = 6
let op_rnd = 7
let op_out = 8
let op_halt = 9
let op_nop = 10
(* 11..20: Binop Add..Shr · 21..30: Binopi Add..Shr · 31..36: Br Eq..Gt *)

let binop_tag = function
  | Instr.Add -> 11
  | Instr.Sub -> 12
  | Instr.Mul -> 13
  | Instr.Div -> 14
  | Instr.Rem -> 15
  | Instr.And -> 16
  | Instr.Or -> 17
  | Instr.Xor -> 18
  | Instr.Shl -> 19
  | Instr.Shr -> 20

let cond_tag = function
  | Instr.Eq -> 31
  | Instr.Ne -> 32
  | Instr.Lt -> 33
  | Instr.Ge -> 34
  | Instr.Le -> 35
  | Instr.Gt -> 36

type t = {
  prog : Program.t;
  code : Instr.t array;
  code_len : int;
  (* Predecoded instruction stream: parallel int arrays indexed by pc.
     [dec_a]/[dec_b]/[dec_c] are register indices, [dec_imm] the
     immediate/offset/target.  Movi immediates are pre-wrapped to 32
     bits at decode time (wrap32 is idempotent). *)
  dec_op : int array;
  dec_a : int array;
  dec_b : int array;
  dec_c : int array;
  dec_imm : int array;
  regs : int array;
  memory : int array;
  mem_len : int;
  mutable pc : int;
  ret_stack : int array;  (* return addresses, [0 .. call_depth) live *)
  mutable call_depth : int;
  prng : Prng.t;
  mutable out_buf : int array;  (* grow-by-doubling output log *)
  mutable out_len : int;
  mutable steps : int;
  mutable halted : bool;
  mutable trap : trap option;
  mutable has_poison : bool;
  poisoned : (int, unit) Hashtbl.t;
      (* pcs whose code word has been corrupted (fault injection);
         executing one raises [Illegal_instruction] *)
}

let max_call_depth = 4096

(* Normalise to signed 32-bit two's complement. *)
let wrap32 v = ((v land 0xFFFFFFFF) lxor 0x80000000) - 0x80000000

let decode code =
  let n = Array.length code in
  let dec_op = Array.make n 0
  and dec_a = Array.make n 0
  and dec_b = Array.make n 0
  and dec_c = Array.make n 0
  and dec_imm = Array.make n 0 in
  for pc = 0 to n - 1 do
    (match code.(pc) with
    | Instr.Movi (rd, imm) ->
        dec_op.(pc) <- op_movi;
        dec_a.(pc) <- Reg.to_int rd;
        dec_imm.(pc) <- wrap32 imm
    | Instr.Mov (rd, rs) ->
        dec_op.(pc) <- op_mov;
        dec_a.(pc) <- Reg.to_int rd;
        dec_b.(pc) <- Reg.to_int rs
    | Instr.Binop (op, rd, rs1, rs2) ->
        dec_op.(pc) <- binop_tag op;
        dec_a.(pc) <- Reg.to_int rd;
        dec_b.(pc) <- Reg.to_int rs1;
        dec_c.(pc) <- Reg.to_int rs2
    | Instr.Binopi (op, rd, rs, imm) ->
        dec_op.(pc) <- binop_tag op + 10;
        dec_a.(pc) <- Reg.to_int rd;
        dec_b.(pc) <- Reg.to_int rs;
        dec_imm.(pc) <- imm
    | Instr.Load (rd, base, off) ->
        dec_op.(pc) <- op_load;
        dec_a.(pc) <- Reg.to_int rd;
        dec_b.(pc) <- Reg.to_int base;
        dec_imm.(pc) <- off
    | Instr.Store (rsrc, base, off) ->
        dec_op.(pc) <- op_store;
        dec_a.(pc) <- Reg.to_int rsrc;
        dec_b.(pc) <- Reg.to_int base;
        dec_imm.(pc) <- off
    | Instr.Br (c, rs1, rs2, target) ->
        dec_op.(pc) <- cond_tag c;
        dec_a.(pc) <- Reg.to_int rs1;
        dec_b.(pc) <- Reg.to_int rs2;
        dec_imm.(pc) <- target
    | Instr.Jmp target ->
        dec_op.(pc) <- op_jmp;
        dec_imm.(pc) <- target
    | Instr.Call target ->
        dec_op.(pc) <- op_call;
        dec_imm.(pc) <- target
    | Instr.Ret -> dec_op.(pc) <- op_ret
    | Instr.Rnd (rd, bound) ->
        dec_op.(pc) <- op_rnd;
        dec_a.(pc) <- Reg.to_int rd;
        dec_imm.(pc) <- bound
    | Instr.Out rs ->
        dec_op.(pc) <- op_out;
        dec_a.(pc) <- Reg.to_int rs
    | Instr.Halt -> dec_op.(pc) <- op_halt
    | Instr.Nop -> dec_op.(pc) <- op_nop)
  done;
  (dec_op, dec_a, dec_b, dec_c, dec_imm)

let create ?(mem_words = 1 lsl 20) ?(seed = 1L) prog =
  let memory = Array.make mem_words 0 in
  List.iter
    (fun (addr, value) ->
      if addr < 0 || addr >= mem_words then
        invalid_arg
          (Printf.sprintf "Machine.create: data binding at %d outside memory"
             addr)
      else memory.(addr) <- value)
    prog.Program.data_init;
  let code = prog.Program.code in
  let dec_op, dec_a, dec_b, dec_c, dec_imm = decode code in
  {
    prog;
    code;
    code_len = Array.length code;
    dec_op;
    dec_a;
    dec_b;
    dec_c;
    dec_imm;
    regs = Array.make Reg.count 0;
    memory;
    mem_len = mem_words;
    pc = prog.Program.entry;
    ret_stack = Array.make max_call_depth 0;
    call_depth = 0;
    prng = Prng.create ~seed;
    out_buf = Array.make 64 0;
    out_len = 0;
    steps = 0;
    halted = false;
    trap = None;
    has_poison = false;
    poisoned = Hashtbl.create 4;
  }

let program t = t.prog
let pc t = t.pc
let halted t = t.halted
let steps t = t.steps
let last_trap t = t.trap
let reg t r = t.regs.(Reg.to_int r)
let set_reg t r v = t.regs.(Reg.to_int r) <- wrap32 v

let mem t addr =
  if addr < 0 || addr >= t.mem_len then
    invalid_arg (Printf.sprintf "Machine.mem: address %d out of range" addr)
  else t.memory.(addr)

let set_mem t addr v =
  if addr < 0 || addr >= t.mem_len then
    invalid_arg (Printf.sprintf "Machine.set_mem: address %d out of range" addr)
  else t.memory.(addr) <- wrap32 v

let outputs t = Array.to_list (Array.sub t.out_buf 0 t.out_len)

let poison t pc =
  if pc < 0 || pc >= t.code_len then
    invalid_arg (Printf.sprintf "Machine.poison: pc %d out of range" pc);
  t.has_poison <- true;
  Hashtbl.replace t.poisoned pc ()

let poisoned t pc = t.has_poison && Hashtbl.mem t.poisoned pc

let push_out t v =
  if t.out_len = Array.length t.out_buf then begin
    let bigger = Array.make (2 * t.out_len) 0 in
    Array.blit t.out_buf 0 bigger 0 t.out_len;
    t.out_buf <- bigger
  end;
  t.out_buf.(t.out_len) <- v;
  t.out_len <- t.out_len + 1

(* Halting with a trap is the one place a step may allocate: the typed
   trap value is constructed once, at the end of the run. *)
let trapped t tr =
  t.halted <- true;
  t.trap <- Some tr;
  ev_trapped

(* Taken-branch helper shared by the six [Br] arms: explicit control
   transfers must land inside the code image. *)
let take t pc target =
  if target < 0 || target >= t.code_len then
    trapped t (Branch_out_of_range { pc; target })
  else begin
    t.pc <- target;
    ev_branch_taken
  end

let step_code t =
  if t.halted then
    match t.trap with None -> ev_halted | Some _ -> ev_trapped
  else
    let pc = t.pc in
    if pc < 0 || pc >= t.code_len then begin
      (* Falling off the end of the code array stops the machine. *)
      t.halted <- true;
      ev_halted
    end
    else begin
      t.steps <- t.steps + 1;
      if t.has_poison && Hashtbl.mem t.poisoned pc then
        trapped t (Illegal_instruction pc)
      else begin
        let regs = t.regs in
        (* Unsafe accesses below are in range by construction: [pc] was
           bounds-checked against [code_len] above and the decode
           arrays are code-length; register operands come out of
           [Reg.to_int] at decode time, and [regs] has [Reg.count]
           elements; memory addresses are explicitly checked against
           [mem_len] before each access. *)
        let a = Array.unsafe_get t.dec_a pc
        and b = Array.unsafe_get t.dec_b pc
        and c = Array.unsafe_get t.dec_c pc
        and imm = Array.unsafe_get t.dec_imm pc in
        match Array.unsafe_get t.dec_op pc with
        | 0 (* movi *) ->
            Array.unsafe_set regs a imm;
            t.pc <- pc + 1;
            ev_stepped
        | 1 (* mov *) ->
            Array.unsafe_set regs a (Array.unsafe_get regs b);
            t.pc <- pc + 1;
            ev_stepped
        | 2 (* load *) ->
            let addr = Array.unsafe_get regs b + imm in
            if addr < 0 || addr >= t.mem_len then
              trapped t (Memory_fault { pc; addr })
            else begin
              Array.unsafe_set regs a (Array.unsafe_get t.memory addr);
              t.pc <- pc + 1;
              ev_stepped
            end
        | 3 (* store *) ->
            let addr = Array.unsafe_get regs b + imm in
            if addr < 0 || addr >= t.mem_len then
              trapped t (Memory_fault { pc; addr })
            else begin
              Array.unsafe_set t.memory addr (Array.unsafe_get regs a);
              t.pc <- pc + 1;
              ev_stepped
            end
        | 4 (* jmp *) ->
            if imm < 0 || imm >= t.code_len then
              trapped t (Branch_out_of_range { pc; target = imm })
            else begin
              t.pc <- imm;
              ev_jumped
            end
        | 5 (* call *) ->
            if t.call_depth >= max_call_depth then
              trapped t (Call_stack_overflow pc)
            else if imm < 0 || imm >= t.code_len then
              trapped t (Branch_out_of_range { pc; target = imm })
            else begin
              t.ret_stack.(t.call_depth) <- pc + 1;
              t.call_depth <- t.call_depth + 1;
              t.pc <- imm;
              ev_called
            end
        | 6 (* ret *) ->
            if t.call_depth = 0 then trapped t (Return_without_call pc)
            else begin
              t.call_depth <- t.call_depth - 1;
              t.pc <- t.ret_stack.(t.call_depth);
              ev_returned
            end
        | 7 (* rnd *) ->
            (* A non-positive bound is a guest bug, not a caller bug: it
               must trap like a division by zero, never leak the PRNG's
               [Invalid_argument] out of the step. *)
            if imm <= 0 then trapped t (Invalid_rnd_bound { pc; bound = imm })
            else begin
              Array.unsafe_set regs a (Prng.below t.prng imm);
              t.pc <- pc + 1;
              ev_stepped
            end
        | 8 (* out *) ->
            push_out t (Array.unsafe_get regs a);
            t.pc <- pc + 1;
            ev_stepped
        | 9 (* halt *) ->
            t.halted <- true;
            ev_halted
        | 10 (* nop *) ->
            t.pc <- pc + 1;
            ev_stepped
        | 11 (* add *) ->
            Array.unsafe_set regs a
              (wrap32 (Array.unsafe_get regs b + Array.unsafe_get regs c));
            t.pc <- pc + 1;
            ev_stepped
        | 12 (* sub *) ->
            Array.unsafe_set regs a
              (wrap32 (Array.unsafe_get regs b - Array.unsafe_get regs c));
            t.pc <- pc + 1;
            ev_stepped
        | 13 (* mul *) ->
            Array.unsafe_set regs a
              (wrap32 (Array.unsafe_get regs b * Array.unsafe_get regs c));
            t.pc <- pc + 1;
            ev_stepped
        | 14 (* div *) ->
            let d = Array.unsafe_get regs c in
            if d = 0 then trapped t (Division_by_zero pc)
            else begin
              Array.unsafe_set regs a (wrap32 (Array.unsafe_get regs b / d));
              t.pc <- pc + 1;
              ev_stepped
            end
        | 15 (* rem *) ->
            let d = Array.unsafe_get regs c in
            if d = 0 then trapped t (Division_by_zero pc)
            else begin
              Array.unsafe_set regs a (wrap32 (Array.unsafe_get regs b mod d));
              t.pc <- pc + 1;
              ev_stepped
            end
        | 16 (* and *) ->
            Array.unsafe_set regs a
              (Array.unsafe_get regs b land Array.unsafe_get regs c);
            t.pc <- pc + 1;
            ev_stepped
        | 17 (* or *) ->
            Array.unsafe_set regs a
              (Array.unsafe_get regs b lor Array.unsafe_get regs c);
            t.pc <- pc + 1;
            ev_stepped
        | 18 (* xor *) ->
            Array.unsafe_set regs a
              (Array.unsafe_get regs b lxor Array.unsafe_get regs c);
            t.pc <- pc + 1;
            ev_stepped
        | 19 (* shl *) ->
            Array.unsafe_set regs a
              (wrap32
                 (Array.unsafe_get regs b lsl (Array.unsafe_get regs c land 31)));
            t.pc <- pc + 1;
            ev_stepped
        | 20 (* shr *) ->
            Array.unsafe_set regs a
              (wrap32
                 (Array.unsafe_get regs b asr (Array.unsafe_get regs c land 31)));
            t.pc <- pc + 1;
            ev_stepped
        | 21 (* addi *) ->
            Array.unsafe_set regs a (wrap32 (Array.unsafe_get regs b + imm));
            t.pc <- pc + 1;
            ev_stepped
        | 22 (* subi *) ->
            Array.unsafe_set regs a (wrap32 (Array.unsafe_get regs b - imm));
            t.pc <- pc + 1;
            ev_stepped
        | 23 (* muli *) ->
            Array.unsafe_set regs a (wrap32 (Array.unsafe_get regs b * imm));
            t.pc <- pc + 1;
            ev_stepped
        | 24 (* divi *) ->
            if imm = 0 then trapped t (Division_by_zero pc)
            else begin
              Array.unsafe_set regs a (wrap32 (Array.unsafe_get regs b / imm));
              t.pc <- pc + 1;
              ev_stepped
            end
        | 25 (* remi *) ->
            if imm = 0 then trapped t (Division_by_zero pc)
            else begin
              Array.unsafe_set regs a
                (wrap32 (Array.unsafe_get regs b mod imm));
              t.pc <- pc + 1;
              ev_stepped
            end
        | 26 (* andi *) ->
            Array.unsafe_set regs a (wrap32 (Array.unsafe_get regs b land imm));
            t.pc <- pc + 1;
            ev_stepped
        | 27 (* ori *) ->
            Array.unsafe_set regs a (wrap32 (Array.unsafe_get regs b lor imm));
            t.pc <- pc + 1;
            ev_stepped
        | 28 (* xori *) ->
            Array.unsafe_set regs a (wrap32 (Array.unsafe_get regs b lxor imm));
            t.pc <- pc + 1;
            ev_stepped
        | 29 (* shli *) ->
            Array.unsafe_set regs a
              (wrap32 (Array.unsafe_get regs b lsl (imm land 31)));
            t.pc <- pc + 1;
            ev_stepped
        | 30 (* shri *) ->
            Array.unsafe_set regs a
              (wrap32 (Array.unsafe_get regs b asr (imm land 31)));
            t.pc <- pc + 1;
            ev_stepped
        | 31 (* beq *) ->
            if Array.unsafe_get regs a = Array.unsafe_get regs b then
              take t pc imm
            else begin
              t.pc <- pc + 1;
              ev_branch_not_taken
            end
        | 32 (* bne *) ->
            if Array.unsafe_get regs a <> Array.unsafe_get regs b then
              take t pc imm
            else begin
              t.pc <- pc + 1;
              ev_branch_not_taken
            end
        | 33 (* blt *) ->
            if Array.unsafe_get regs a < Array.unsafe_get regs b then
              take t pc imm
            else begin
              t.pc <- pc + 1;
              ev_branch_not_taken
            end
        | 34 (* bge *) ->
            if Array.unsafe_get regs a >= Array.unsafe_get regs b then
              take t pc imm
            else begin
              t.pc <- pc + 1;
              ev_branch_not_taken
            end
        | 35 (* ble *) ->
            if Array.unsafe_get regs a <= Array.unsafe_get regs b then
              take t pc imm
            else begin
              t.pc <- pc + 1;
              ev_branch_not_taken
            end
        | _ (* 36, bgt *) ->
            if Array.unsafe_get regs a > Array.unsafe_get regs b then
              take t pc imm
            else begin
              t.pc <- pc + 1;
              ev_branch_not_taken
            end
      end
    end

let step t =
  match step_code t with
  | 0 -> Ok Stepped
  | 1 -> Ok (Branched { taken = false })
  | 2 -> Ok (Branched { taken = true })
  | 3 -> Ok Jumped
  | 4 -> Ok Called
  | 5 -> Ok Returned
  | 6 -> Ok Halted
  | _ -> ( match t.trap with Some tr -> Error tr | None -> assert false)

(* Reference decoder: the pre-dispatch-table interpreter, matching
   directly on [Instr.t].  Kept as the executable specification the
   dispatch table is differentially tested against
   (test/test_hotpath.ml); not used on any hot path. *)

let eval_binop op a b ~pc =
  match op with
  | Instr.Add -> Ok (a + b)
  | Instr.Sub -> Ok (a - b)
  | Instr.Mul -> Ok (a * b)
  | Instr.Div -> if b = 0 then Error (Division_by_zero pc) else Ok (a / b)
  | Instr.Rem -> if b = 0 then Error (Division_by_zero pc) else Ok (a mod b)
  | Instr.And -> Ok (a land b)
  | Instr.Or -> Ok (a lor b)
  | Instr.Xor -> Ok (a lxor b)
  | Instr.Shl -> Ok (a lsl (b land 31))
  | Instr.Shr -> Ok (a asr (b land 31))

let step_spec t =
  if t.halted then
    match t.trap with None -> Ok Halted | Some trap -> Error trap
  else if t.pc < 0 || t.pc >= t.code_len then begin
    t.halted <- true;
    Ok Halted
  end
  else begin
    let pc = t.pc in
    let instr = t.code.(pc) in
    t.steps <- t.steps + 1;
    let regs = t.regs in
    let fail trap =
      t.halted <- true;
      t.trap <- Some trap;
      Error trap
    in
    let continue event =
      t.pc <- pc + 1;
      Ok event
    in
    let transfer_to target event =
      (* Explicit control transfers must land inside the code image;
         plain fallthrough past the last instruction still halts. *)
      if target < 0 || target >= t.code_len then
        fail (Branch_out_of_range { pc; target })
      else begin
        t.pc <- target;
        Ok event
      end
    in
    if t.has_poison && Hashtbl.mem t.poisoned pc then
      fail (Illegal_instruction pc)
    else
      match instr with
      | Instr.Movi (rd, imm) ->
          regs.(Reg.to_int rd) <- wrap32 imm;
          continue Stepped
      | Instr.Mov (rd, rs) ->
          regs.(Reg.to_int rd) <- regs.(Reg.to_int rs);
          continue Stepped
      | Instr.Binop (op, rd, rs1, rs2) -> (
          match
            eval_binop op regs.(Reg.to_int rs1) regs.(Reg.to_int rs2) ~pc
          with
          | Ok v ->
              regs.(Reg.to_int rd) <- wrap32 v;
              continue Stepped
          | Error trap -> fail trap)
      | Instr.Binopi (op, rd, rs, imm) -> (
          match eval_binop op regs.(Reg.to_int rs) imm ~pc with
          | Ok v ->
              regs.(Reg.to_int rd) <- wrap32 v;
              continue Stepped
          | Error trap -> fail trap)
      | Instr.Load (rd, base, off) ->
          let addr = regs.(Reg.to_int base) + off in
          if addr < 0 || addr >= t.mem_len then fail (Memory_fault { pc; addr })
          else begin
            regs.(Reg.to_int rd) <- t.memory.(addr);
            continue Stepped
          end
      | Instr.Store (rsrc, base, off) ->
          let addr = regs.(Reg.to_int base) + off in
          if addr < 0 || addr >= t.mem_len then fail (Memory_fault { pc; addr })
          else begin
            t.memory.(addr) <- regs.(Reg.to_int rsrc);
            continue Stepped
          end
      | Instr.Br (c, rs1, rs2, target) ->
          let taken =
            Instr.eval_cond c regs.(Reg.to_int rs1) regs.(Reg.to_int rs2)
          in
          if taken then transfer_to target (Branched { taken = true })
          else begin
            t.pc <- pc + 1;
            Ok (Branched { taken = false })
          end
      | Instr.Jmp target -> transfer_to target Jumped
      | Instr.Call target ->
          if t.call_depth >= max_call_depth then fail (Call_stack_overflow pc)
          else if target < 0 || target >= t.code_len then
            fail (Branch_out_of_range { pc; target })
          else begin
            t.ret_stack.(t.call_depth) <- pc + 1;
            t.call_depth <- t.call_depth + 1;
            t.pc <- target;
            Ok Called
          end
      | Instr.Ret ->
          if t.call_depth = 0 then fail (Return_without_call pc)
          else begin
            t.call_depth <- t.call_depth - 1;
            t.pc <- t.ret_stack.(t.call_depth);
            Ok Returned
          end
      | Instr.Rnd (rd, bound) ->
          (* A non-positive bound is a guest bug, not a caller bug: it
             must trap like a division by zero, never leak the PRNG's
             [Invalid_argument] out of [step]. *)
          if bound <= 0 then fail (Invalid_rnd_bound { pc; bound })
          else begin
            regs.(Reg.to_int rd) <- Prng.below t.prng bound;
            continue Stepped
          end
      | Instr.Out rs ->
          push_out t regs.(Reg.to_int rs);
          continue Stepped
      | Instr.Halt ->
          t.halted <- true;
          Ok Halted
      | Instr.Nop -> continue Stepped
  end

(* ------------------------------------------------------------------ *)
(* Mid-run images (snapshot / resume)                                  *)
(* ------------------------------------------------------------------ *)

(* Everything that evolves during a run, as plain data.  Memory is
   stored sparsely (only non-zero words) because the default data
   memory is 2^20 words and guest working sets are tiny.  The program
   itself is NOT part of the image: resume rebuilds it from the same
   source the original run used, and the decode arrays are derived. *)
type image = {
  im_mem_words : int;
  im_regs : int array;
  im_mem : (int * int) array;  (* non-zero words, ascending address *)
  im_pc : int;
  im_ret_stack : int array;  (* live prefix, bottom first *)
  im_prng : int * int * int * int;
  im_outputs : int array;
  im_steps : int;
  im_halted : bool;
  im_poisoned : int list;  (* ascending *)
}

let capture t =
  let nonzero = ref 0 in
  for i = 0 to t.mem_len - 1 do
    if t.memory.(i) <> 0 then incr nonzero
  done;
  let mem = Array.make !nonzero (0, 0) in
  let k = ref 0 in
  for i = 0 to t.mem_len - 1 do
    if t.memory.(i) <> 0 then begin
      mem.(!k) <- (i, t.memory.(i));
      incr k
    end
  done;
  {
    im_mem_words = t.mem_len;
    im_regs = Array.copy t.regs;
    im_mem = mem;
    im_pc = t.pc;
    im_ret_stack = Array.sub t.ret_stack 0 t.call_depth;
    im_prng = Prng.state t.prng;
    im_outputs = Array.sub t.out_buf 0 t.out_len;
    im_steps = t.steps;
    im_halted = t.halted;
    im_poisoned =
      List.sort compare
        (Hashtbl.fold (fun pc () acc -> pc :: acc) t.poisoned []);
  }

let restore prog image =
  let t = create ~mem_words:image.im_mem_words prog in
  if Array.length image.im_regs <> Reg.count then
    invalid_arg "Machine.restore: register file has wrong size";
  Array.blit image.im_regs 0 t.regs 0 Reg.count;
  (* [create] applied the program's data bindings; the image holds the
     complete non-zero memory contents, so start from all zeroes. *)
  Array.fill t.memory 0 t.mem_len 0;
  Array.iter
    (fun (addr, v) ->
      if addr < 0 || addr >= t.mem_len then
        invalid_arg "Machine.restore: memory address out of range";
      t.memory.(addr) <- v)
    image.im_mem;
  t.pc <- image.im_pc;
  let depth = Array.length image.im_ret_stack in
  if depth > max_call_depth then
    invalid_arg "Machine.restore: call stack deeper than the machine's";
  Array.blit image.im_ret_stack 0 t.ret_stack 0 depth;
  t.call_depth <- depth;
  Prng.set t.prng image.im_prng;
  let n = Array.length image.im_outputs in
  if n > Array.length t.out_buf then t.out_buf <- Array.make n 0;
  Array.blit image.im_outputs 0 t.out_buf 0 n;
  t.out_len <- n;
  t.steps <- image.im_steps;
  t.halted <- image.im_halted;
  List.iter (fun pc -> poison t pc) image.im_poisoned;
  t

let run ?(max_steps = max_int) t =
  let rec loop remaining =
    if remaining = 0 || t.halted then Ok ()
    else
      let c = step_code t in
      if c <= ev_returned then loop (remaining - 1)
      else if c = ev_halted then Ok ()
      else match t.trap with Some trap -> Error trap | None -> Ok ()
  in
  loop max_steps

let pp_trap ppf = function
  | Division_by_zero pc -> Format.fprintf ppf "division by zero at pc %d" pc
  | Memory_fault { pc; addr } ->
      Format.fprintf ppf "memory fault at pc %d (address %d)" pc addr
  | Return_without_call pc ->
      Format.fprintf ppf "ret without matching call at pc %d" pc
  | Call_stack_overflow pc ->
      Format.fprintf ppf "call-stack overflow at pc %d" pc
  | Illegal_instruction pc ->
      Format.fprintf ppf "illegal instruction at pc %d" pc
  | Branch_out_of_range { pc; target } ->
      Format.fprintf ppf "branch at pc %d to out-of-range target %d" pc target
  | Invalid_rnd_bound { pc; bound } ->
      Format.fprintf ppf "rnd with non-positive bound %d at pc %d" bound pc
