(** Guest machine state and single-step interpreter.

    The machine holds the program, 16 registers, a word-addressed data
    memory, a call stack (separate from data memory, so guest code cannot
    corrupt return addresses), the deterministic PRNG backing [rnd], and
    an output log.  Values are 32-bit two's-complement integers; all
    arithmetic wraps at 32 bits.

    {!step} executes exactly one instruction and reports what kind of
    control transfer (if any) it performed — the dynamic binary
    translator layers its block discovery and profiling on top of these
    events. *)

type trap =
  | Division_by_zero of int  (** pc of the faulting instruction *)
  | Memory_fault of { pc : int; addr : int }
  | Return_without_call of int
  | Call_stack_overflow of int
  | Illegal_instruction of int
      (** the instruction at this pc was poisoned ({!poison}) — the
          model of corrupted code memory *)
  | Branch_out_of_range of { pc : int; target : int }
      (** an explicit control transfer (branch taken, jmp, call) left
          the code image *)
  | Invalid_rnd_bound of { pc : int; bound : int }
      (** [rnd] executed with a bound [<= 0] — an out-of-range operand
          a generated (fuzzed) program can carry, surfaced as a typed
          trap instead of the PRNG's [Invalid_argument] *)

type event =
  | Stepped  (** straight-line instruction *)
  | Branched of { taken : bool }  (** conditional branch *)
  | Jumped
  | Called
  | Returned
  | Halted

(** {2 Int event codes}

    The allocation-free counterpart of {!event}, returned by
    {!step_code}.  Codes [0..5] mean the machine is still running
    ([c <= ev_returned]); [ev_halted]/[ev_trapped] are terminal.  After
    [ev_trapped], {!last_trap} holds the trap. *)

val ev_stepped : int
val ev_branch_not_taken : int
val ev_branch_taken : int
val ev_jumped : int
val ev_called : int
val ev_returned : int
val ev_halted : int
val ev_trapped : int

type t

val create : ?mem_words:int -> ?seed:int64 -> Tpdbt_isa.Program.t -> t
(** Fresh machine at the program entry.  [mem_words] defaults to [2^20];
    [seed] defaults to [1L].  Initial data bindings from the program are
    applied.
    @raise Invalid_argument if a data binding is outside memory. *)

val program : t -> Tpdbt_isa.Program.t
val pc : t -> int
val halted : t -> bool
val steps : t -> int
(** Number of instructions executed so far. *)

val reg : t -> Tpdbt_isa.Reg.t -> int
val set_reg : t -> Tpdbt_isa.Reg.t -> int -> unit
val mem : t -> int -> int
(** @raise Invalid_argument on out-of-range address. *)

val set_mem : t -> int -> int -> unit
val outputs : t -> int list
(** Values emitted by [out], oldest first. *)

val poison : t -> int -> unit
(** Corrupt the instruction at this pc: executing it henceforth traps
    with {!Illegal_instruction}.  Fault injection uses this to model a
    corrupted code word.
    @raise Invalid_argument if the pc is outside the code image. *)

val poisoned : t -> int -> bool

val step_code : t -> int
(** Execute one instruction and report it as an int event code
    ({!ev_stepped} … {!ev_trapped}).  This is the hot-path entry point:
    instructions are predecoded into flat int dispatch tables at
    {!create} time and a steady-state step allocates nothing.  After
    [ev_halted] (or [ev_trapped]) the machine no longer advances;
    further calls return the same code. *)

val last_trap : t -> trap option
(** The trap that halted the machine, if any — the out-of-band channel
    for {!step_code}'s [ev_trapped]. *)

val step : t -> (event, trap) result
(** Execute one instruction.  After [Ok Halted] (or an error) the machine
    no longer advances; further [step] calls return [Ok Halted] /
    the same trap.  Equivalent to {!step_code} plus an allocated
    report; cold callers only. *)

val step_spec : t -> (event, trap) result
(** Reference decoder: executes one instruction by matching directly on
    [Instr.t], with no dispatch table.  The executable specification
    {!step_code} is differentially tested against; identical observable
    semantics, slower and allocating. *)

val run : ?max_steps:int -> t -> (unit, trap) result
(** Step until halt (or trap).  [max_steps] (default [max_int]) bounds
    the number of instructions; exceeding it returns [Ok ()] with the
    machine still runnable (check {!halted}). *)

(** {2 Mid-run images}

    A complete, plain-data copy of everything that evolves during a
    run: registers, (sparse) data memory, pc, the live call stack, the
    PRNG limbs, the output log, the step count and any poisoned pcs.
    The program is {e not} captured — {!restore} pairs an image with
    the same program the original run used, and a restored machine then
    produces exactly the byte-for-byte run an uninterrupted machine
    would.  Powers the engine's snapshot/suspend/resume subsystem. *)

type image = {
  im_mem_words : int;  (** data memory size the machine was created with *)
  im_regs : int array;
  im_mem : (int * int) array;  (** non-zero words, ascending address *)
  im_pc : int;
  im_ret_stack : int array;  (** live prefix, bottom first *)
  im_prng : int * int * int * int;  (** {!Prng.state} *)
  im_outputs : int array;
  im_steps : int;
  im_halted : bool;
  im_poisoned : int list;  (** ascending *)
}

val capture : t -> image
(** Deterministic copy of the machine's mutable state; the machine is
    not disturbed and can keep running. *)

val restore : Tpdbt_isa.Program.t -> image -> t
(** Fresh machine continuing exactly where {!capture} left off.  The
    program must be the one the captured machine was running.
    @raise Invalid_argument if the image is structurally invalid
    (register-file size, out-of-range memory address or poisoned pc,
    over-deep call stack, bad PRNG limbs). *)

val pp_trap : Format.formatter -> trap -> unit
