(** Guest machine state and single-step interpreter.

    The machine holds the program, 16 registers, a word-addressed data
    memory, a call stack (separate from data memory, so guest code cannot
    corrupt return addresses), the deterministic PRNG backing [rnd], and
    an output log.  Values are 32-bit two's-complement integers; all
    arithmetic wraps at 32 bits.

    {!step} executes exactly one instruction and reports what kind of
    control transfer (if any) it performed — the dynamic binary
    translator layers its block discovery and profiling on top of these
    events. *)

type trap =
  | Division_by_zero of int  (** pc of the faulting instruction *)
  | Memory_fault of { pc : int; addr : int }
  | Return_without_call of int
  | Call_stack_overflow of int
  | Illegal_instruction of int
      (** the instruction at this pc was poisoned ({!poison}) — the
          model of corrupted code memory *)
  | Branch_out_of_range of { pc : int; target : int }
      (** an explicit control transfer (branch taken, jmp, call) left
          the code image *)
  | Invalid_rnd_bound of { pc : int; bound : int }
      (** [rnd] executed with a bound [<= 0] — an out-of-range operand
          a generated (fuzzed) program can carry, surfaced as a typed
          trap instead of the PRNG's [Invalid_argument] *)

type event =
  | Stepped  (** straight-line instruction *)
  | Branched of { taken : bool }  (** conditional branch *)
  | Jumped
  | Called
  | Returned
  | Halted

type t

val create : ?mem_words:int -> ?seed:int64 -> Tpdbt_isa.Program.t -> t
(** Fresh machine at the program entry.  [mem_words] defaults to [2^20];
    [seed] defaults to [1L].  Initial data bindings from the program are
    applied.
    @raise Invalid_argument if a data binding is outside memory. *)

val program : t -> Tpdbt_isa.Program.t
val pc : t -> int
val halted : t -> bool
val steps : t -> int
(** Number of instructions executed so far. *)

val reg : t -> Tpdbt_isa.Reg.t -> int
val set_reg : t -> Tpdbt_isa.Reg.t -> int -> unit
val mem : t -> int -> int
(** @raise Invalid_argument on out-of-range address. *)

val set_mem : t -> int -> int -> unit
val outputs : t -> int list
(** Values emitted by [out], oldest first. *)

val poison : t -> int -> unit
(** Corrupt the instruction at this pc: executing it henceforth traps
    with {!Illegal_instruction}.  Fault injection uses this to model a
    corrupted code word.
    @raise Invalid_argument if the pc is outside the code image. *)

val poisoned : t -> int -> bool

val step : t -> (event, trap) result
(** Execute one instruction.  After [Ok Halted] (or an error) the machine
    no longer advances; further [step] calls return [Ok Halted] /
    the same trap. *)

val run : ?max_steps:int -> t -> (unit, trap) result
(** Step until halt (or trap).  [max_steps] (default [max_int]) bounds
    the number of instructions; exceeding it returns [Ok ()] with the
    machine still runnable (check {!halted}). *)

val pp_trap : Format.formatter -> trap -> unit
