(** Deterministic pseudo-random stream (SplitMix64).

    The guest-visible [rnd] instruction draws from this stream, so a run
    is fully determined by the program, its initial data, and the seed.
    Distinct inputs of a synthetic benchmark use distinct seeds. *)

type t

val create : seed:int64 -> t
val copy : t -> t

val state : t -> int * int * int * int
(** [(hi, lo, zhi, zlo)] — the two 32-bit state limbs followed by the
    two limbs of the last drawn value.  Together with {!of_state} this
    round-trips the generator exactly, for mid-run snapshots. *)

val of_state : int * int * int * int -> t
(** Rebuild a generator from {!state} output.
    @raise Invalid_argument if any limb is outside [0, 2^32). *)

val set : t -> int * int * int * int -> unit
(** Overwrite an existing generator in place with {!state} output.
    @raise Invalid_argument if any limb is outside [0, 2^32). *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val below : t -> int -> int
(** [below t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)
