(* SplitMix64 (Steele, Lea, Flood 2014), carried in two 32-bit halves
   held in immediate-int fields.  The original implementation kept the
   state in a [mutable int64], which boxes on every store and on every
   intermediate of the mixing function — ~25 allocated words per draw.
   [rnd] executes on the guest hot path, so the stream is produced here
   with plain int arithmetic instead: 16-bit limb multiplication gives
   the exact low 64 bits of each product, and a differential test
   (test/test_hotpath.ml) pins the stream bit-for-bit against the
   boxed-Int64 reference. *)

type t = {
  mutable hi : int;  (* state, top 32 bits *)
  mutable lo : int;  (* state, low 32 bits *)
  mutable zhi : int;  (* last drawn value, top 32 bits *)
  mutable zlo : int;  (* last drawn value, low 32 bits *)
}

let mask32 = 0xFFFFFFFF

let create ~seed =
  {
    hi = Int64.to_int (Int64.shift_right_logical seed 32);
    lo = Int64.to_int (Int64.logand seed 0xFFFFFFFFL);
    zhi = 0;
    zlo = 0;
  }

let copy t = { hi = t.hi; lo = t.lo; zhi = t.zhi; zlo = t.zlo }
let state t = (t.hi, t.lo, t.zhi, t.zlo)

let of_state (hi, lo, zhi, zlo) =
  if
    hi lor lo lor zhi lor zlo < 0
    || hi > mask32 || lo > mask32 || zhi > mask32 || zlo > mask32
  then invalid_arg "Prng.of_state: limbs must fit 32 bits";
  { hi; lo; zhi; zlo }

let set t s =
  let s = of_state s in
  t.hi <- s.hi;
  t.lo <- s.lo;
  t.zhi <- s.zhi;
  t.zlo <- s.zlo

(* One SplitMix64 round: advance the state by the golden-ratio constant
   and mix it into [zhi]/[zlo].  Allocation-free. *)
let advance t =
  (* state += 0x9E3779B97F4A7C15 *)
  let lo = t.lo + 0x7F4A7C15 in
  let hi = (t.hi + 0x9E3779B9 + (lo lsr 32)) land mask32 in
  let lo = lo land mask32 in
  t.hi <- hi;
  t.lo <- lo;
  (* z ^= z >>> 30 *)
  let zlo = lo lxor (((hi lsl 2) land mask32) lor (lo lsr 30)) in
  let zhi = hi lxor (hi lsr 30) in
  (* z *= 0xBF58476D1CE4E5B9 (low 64 bits, 16-bit limbs) *)
  let a0 = zlo land 0xFFFF
  and a1 = zlo lsr 16
  and a2 = zhi land 0xFFFF
  and a3 = zhi lsr 16 in
  let t0 = a0 * 0xE5B9 in
  let t1 = (a0 * 0x1CE4) + (a1 * 0xE5B9) + (t0 lsr 16) in
  let t2 = (a0 * 0x476D) + (a1 * 0x1CE4) + (a2 * 0xE5B9) + (t1 lsr 16) in
  let t3 =
    (a0 * 0xBF58) + (a1 * 0x476D) + (a2 * 0x1CE4) + (a3 * 0xE5B9) + (t2 lsr 16)
  in
  let zlo = (t0 land 0xFFFF) lor ((t1 land 0xFFFF) lsl 16) in
  let zhi = (t2 land 0xFFFF) lor ((t3 land 0xFFFF) lsl 16) in
  (* z ^= z >>> 27 *)
  let zlo = zlo lxor (((zhi lsl 5) land mask32) lor (zlo lsr 27)) in
  let zhi = zhi lxor (zhi lsr 27) in
  (* z *= 0x94D049BB133111EB *)
  let a0 = zlo land 0xFFFF
  and a1 = zlo lsr 16
  and a2 = zhi land 0xFFFF
  and a3 = zhi lsr 16 in
  let t0 = a0 * 0x11EB in
  let t1 = (a0 * 0x1331) + (a1 * 0x11EB) + (t0 lsr 16) in
  let t2 = (a0 * 0x49BB) + (a1 * 0x1331) + (a2 * 0x11EB) + (t1 lsr 16) in
  let t3 =
    (a0 * 0x94D0) + (a1 * 0x49BB) + (a2 * 0x1331) + (a3 * 0x11EB) + (t2 lsr 16)
  in
  let zlo = (t0 land 0xFFFF) lor ((t1 land 0xFFFF) lsl 16) in
  let zhi = (t2 land 0xFFFF) lor ((t3 land 0xFFFF) lsl 16) in
  (* z ^= z >>> 31 *)
  t.zlo <- zlo lxor (((zhi lsl 1) land mask32) lor (zlo lsr 31));
  t.zhi <- zhi lxor (zhi lsr 31)

let next_int64 t =
  advance t;
  Int64.logor (Int64.shift_left (Int64.of_int t.zhi) 32) (Int64.of_int t.zlo)

let below t bound =
  if bound <= 0 then invalid_arg "Prng.below: bound must be positive";
  advance t;
  (* z >>> 2, exactly as [Int64.to_int (z >>> 2)] of the reference *)
  ((t.zhi lsl 30) lor (t.zlo lsr 2)) mod bound

let float t =
  advance t;
  (* z >>> 11: 53 bits, exact in both int and float *)
  float_of_int ((t.zhi lsl 21) lor (t.zlo lsr 11)) /. 9007199254740992.0
(* 2^53 *)
