exception Crash_worker

type policy = {
  max_attempts : int;
  breaker_after : int;
  backoff_base : int;
  backoff_cap : int;
  seed : int64;
}

let default_policy =
  {
    max_attempts = 4;
    breaker_after = 3;
    backoff_base = 1;
    backoff_cap = 8;
    seed = 0x7D0B_5EEDL;
  }

type 'b outcome = Done of 'b | Poisoned of { attempts : int; reason : string }

type event =
  | Attempt of { task : int; attempt : int }
  | Task_done of { task : int; attempt : int; seconds : float }
  | Retry of { task : int; attempt : int; backoff : int; reason : string }
  | Gave_up of { task : int; attempts : int; reason : string }
  | Breaker_opened of { task : int; failures : int }
  | Worker_lost of { worker : int; task : int }
  | Degraded of { live : int }

type stats = {
  jobs : int;
  tasks : int;
  attempts : int;
  retries : int;
  poisoned : int;
  crashes : int;
  degraded : bool;
  busy : float;
  elapsed : float;
}

(* ---- deterministic backoff -------------------------------------------- *)

(* SplitMix64 finaliser: a cheap, well-mixed hash so the jitter is a
   pure function of (seed, task, attempt) — no PRNG state to thread,
   no wall-clock, identical schedule on every run and job count. *)
let mix64 x =
  let open Int64 in
  let x = add x 0x9E3779B97F4A7C15L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

let backoff policy ~task ~attempt =
  let exp = min policy.backoff_cap (policy.backoff_base lsl (attempt - 1)) in
  let h =
    mix64
      (Int64.logxor policy.seed
         (Int64.of_int (((task + 1) * 0x10001) + (attempt * 0x61))))
  in
  let jitter =
    Int64.to_int (Int64.logand h 0xFFFFL) mod (policy.backoff_base + 1)
  in
  max 1 (exp + jitter)

(* ---- shared job queue -------------------------------------------------- *)

(* Unlike [Pool]'s static per-worker deques, supervised execution needs
   a queue that grows at runtime (retries, crash requeues), so workers
   draw from one shared blocking queue.  Contention is still one lock
   operation per attempt — negligible against full engine runs. *)
type job = { j_task : int; j_attempt : int }

type jq = {
  q_lock : Mutex.t;
  q_cond : Condition.t;
  q_jobs : job Queue.t;
  mutable q_closed : bool;
}

let jq_create () =
  {
    q_lock = Mutex.create ();
    q_cond = Condition.create ();
    q_jobs = Queue.create ();
    q_closed = false;
  }

let jq_push q j =
  Mutex.lock q.q_lock;
  Queue.push j q.q_jobs;
  Condition.signal q.q_cond;
  Mutex.unlock q.q_lock

let jq_take q =
  Mutex.lock q.q_lock;
  while Queue.is_empty q.q_jobs && not q.q_closed do
    Condition.wait q.q_cond q.q_lock
  done;
  let r =
    if Queue.is_empty q.q_jobs then None else Some (Queue.pop q.q_jobs)
  in
  Mutex.unlock q.q_lock;
  r

let jq_close_capture q =
  Mutex.lock q.q_lock;
  q.q_closed <- true;
  let leftover = List.of_seq (Queue.to_seq q.q_jobs) in
  Queue.clear q.q_jobs;
  Condition.broadcast q.q_cond;
  Mutex.unlock q.q_lock;
  leftover

(* ---- collector channel ------------------------------------------------- *)

type 'b exec = Exec_ok of 'b | Exec_failed of string | Exec_crashed

type 'b msg =
  | Msg_start of { task : int; attempt : int }
  | Msg_done of { task : int; attempt : int; exec : 'b exec; seconds : float }
  | Msg_crash of { worker : int; task : int; attempt : int; seconds : float }

type 'b channel = {
  ch_lock : Mutex.t;
  ch_cond : Condition.t;
  ch_q : 'b msg Queue.t;
}

let send ch msg =
  Mutex.lock ch.ch_lock;
  Queue.push msg ch.ch_q;
  Condition.signal ch.ch_cond;
  Mutex.unlock ch.ch_lock

let receive_batch ch into =
  Mutex.lock ch.ch_lock;
  while Queue.is_empty ch.ch_q do
    Condition.wait ch.ch_cond ch.ch_lock
  done;
  Queue.transfer ch.ch_q into;
  Mutex.unlock ch.ch_lock

(* ---- workers ----------------------------------------------------------- *)

let exec_task f ~attempt x =
  try Exec_ok (f ~attempt x) with
  | Crash_worker -> Exec_crashed
  | e -> Exec_failed (Printexc.to_string e)

let worker_loop ~queue ~channel ~f ~tasks w =
  let rec loop () =
    match jq_take queue with
    | None -> ()
    | Some { j_task = task; j_attempt = attempt } -> (
        send channel (Msg_start { task; attempt });
        let t0 = Unix.gettimeofday () in
        let exec = exec_task f ~attempt tasks.(task) in
        let seconds = Unix.gettimeofday () -. t0 in
        match exec with
        | Exec_crashed ->
            (* The worker "dies": it reports the loss and its domain
               returns.  Because a dead worker never takes from the
               queue again, the requeued attempt is automatically
               excluded from it. *)
            send channel (Msg_crash { worker = w; task; attempt; seconds })
        | _ ->
            send channel (Msg_done { task; attempt; exec; seconds });
            loop ())
  in
  loop ()

(* ---- the supervisor ---------------------------------------------------- *)

let run ?jobs ?(policy = default_policy) ?failed ?(on_event = fun _ -> ())
    ?(on_result = fun _ _ -> ()) f tasks =
  let n = Array.length tasks in
  let requested =
    match jobs with Some j -> j | None -> Pool.default_jobs ()
  in
  let jobs = max 0 (min requested n) in
  let t0 = Unix.gettimeofday () in
  let results = Array.make n None in
  let attempts = Array.make n 0 in
  let failures = Array.make n 0 in
  let unresolved = ref n in
  (* The logical clock: one tick per attempt whose completion the
     collector has processed.  Backoff delays are expressed in ticks
     and the clock fast-forwards when nothing is runnable, so the
     retry schedule costs no wall-clock time and replays identically
     at every job count. *)
  let tick = ref 0 in
  let delayed = ref [] in
  let inline_q = Queue.create () in
  let total_attempts = ref 0 in
  let retries = ref 0 in
  let poisoned = ref 0 in
  let crashes = ref 0 in
  let busy = ref 0.0 in
  let degraded = ref false in
  let inline = ref (jobs <= 1) in
  let live = ref (if jobs <= 1 then 0 else jobs) in
  let in_flight = ref 0 in
  let queue = jq_create () in
  let channel =
    {
      ch_lock = Mutex.create ();
      ch_cond = Condition.create ();
      ch_q = Queue.create ();
    }
  in
  let domains =
    if jobs <= 1 then [||]
    else
      Array.init jobs (fun w ->
          Domain.spawn (fun () -> worker_loop ~queue ~channel ~f ~tasks w))
  in
  let schedule task =
    attempts.(task) <- attempts.(task) + 1;
    incr total_attempts;
    incr in_flight;
    let job = { j_task = task; j_attempt = attempts.(task) } in
    if !inline then Queue.push job inline_q else jq_push queue job
  in
  let resolve task outcome =
    results.(task) <- Some outcome;
    decr unresolved;
    match outcome with
    | Done v -> on_result task v
    | Poisoned _ -> incr poisoned
  in
  let give_up task reason =
    on_event (Gave_up { task; attempts = attempts.(task); reason });
    resolve task (Poisoned { attempts = attempts.(task); reason })
  in
  let schedule_retry ~due task =
    delayed := List.sort compare ((due, task) :: !delayed)
  in
  let release_due () =
    let due, later = List.partition (fun (d, _) -> d <= !tick) !delayed in
    delayed := later;
    List.iter (fun (_, task) -> schedule task) due
  in
  let handle_failure task attempt reason =
    failures.(task) <- failures.(task) + 1;
    if failures.(task) >= policy.breaker_after then begin
      on_event (Breaker_opened { task; failures = failures.(task) });
      resolve task (Poisoned { attempts = attempts.(task); reason })
    end
    else if attempts.(task) >= policy.max_attempts then give_up task reason
    else begin
      let b = backoff policy ~task ~attempt in
      incr retries;
      on_event (Retry { task; attempt = attempt + 1; backoff = b; reason });
      schedule_retry ~due:(!tick + b) task
    end
  in
  let handle_crash ~worker task =
    incr crashes;
    on_event (Worker_lost { worker; task });
    if not !inline then begin
      live := !live - 1;
      if !live < 2 then begin
        (* Graceful degradation: with fewer than two live workers the
           pool is no longer worth its coordination cost (and may be
           empty).  Capture whatever is still queued and run it — and
           every later retry — on the collector itself. *)
        degraded := true;
        inline := true;
        on_event (Degraded { live = !live });
        let leftover = jq_close_capture queue in
        (* the captured jobs stay in flight — they just run here now *)
        List.iter (fun j -> Queue.push j inline_q) leftover
      end
    end;
    (* A crash consumes an attempt number — that bounds a task that
       kills every worker it touches — but not a failure count: the
       breaker judges the task, and a lost worker is the harness's
       fault, not the task's. *)
    if attempts.(task) >= policy.max_attempts then
      give_up task "worker crashed"
    else schedule_retry ~due:!tick task
  in
  let complete task attempt exec seconds =
    incr tick;
    decr in_flight;
    busy := !busy +. seconds;
    match exec with
    | Exec_ok v -> (
        match (match failed with Some g -> g task v | None -> None) with
        | None ->
            on_event (Task_done { task; attempt; seconds });
            resolve task (Done v)
        | Some reason -> handle_failure task attempt reason)
    | Exec_failed reason -> handle_failure task attempt reason
    | Exec_crashed -> assert false
  in
  let complete_crash ~worker task seconds =
    incr tick;
    decr in_flight;
    busy := !busy +. seconds;
    handle_crash ~worker task
  in
  let run_inline { j_task = task; j_attempt = attempt } =
    on_event (Attempt { task; attempt });
    let ta = Unix.gettimeofday () in
    let exec = exec_task f ~attempt tasks.(task) in
    let seconds = Unix.gettimeofday () -. ta in
    match exec with
    | Exec_crashed -> complete_crash ~worker:0 task seconds
    | _ -> complete task attempt exec seconds
  in
  let batch = Queue.create () in
  let process = function
    | Msg_start { task; attempt } -> on_event (Attempt { task; attempt })
    | Msg_done { task; attempt; exec; seconds } ->
        complete task attempt exec seconds
    | Msg_crash { worker; task; attempt = _; seconds } ->
        complete_crash ~worker task seconds
  in
  for task = 0 to n - 1 do
    schedule task
  done;
  while !unresolved > 0 do
    release_due ();
    if not (Queue.is_empty inline_q) then run_inline (Queue.pop inline_q)
    else if (not !inline) && !in_flight > 0 then begin
      receive_batch channel batch;
      Queue.iter process batch;
      Queue.clear batch
    end
    else begin
      match !delayed with
      | (due, _) :: _ ->
          (* Nothing runnable: fast-forward the logical clock to the
             next delayed retry instead of sleeping. *)
          tick := max !tick due;
          release_due ()
      | [] ->
          (* Degraded with a live straggler: its completion is the only
             thing left to wait for. *)
          receive_batch channel batch;
          Queue.iter process batch;
          Queue.clear batch
    end
  done;
  if Array.length domains > 0 then begin
    ignore (jq_close_capture queue);
    Array.iter Domain.join domains
  end;
  let outcomes =
    Array.map (function Some o -> o | None -> assert false) results
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  ( outcomes,
    {
      jobs = max 1 jobs;
      tasks = n;
      attempts = !total_attempts;
      retries = !retries;
      poisoned = !poisoned;
      crashes = !crashes;
      degraded = !degraded;
      busy = !busy;
      elapsed;
    } )
