(** Fault-tolerant job supervision over a domain pool.

    {!Pool.map} computes an array map and dies with the first (lowest
    task index) exception; that is the right contract for trusted
    workloads, and the wrong one for long campaigns where a single
    stuck or crashing task should not cost hours of finished work.
    [Supervisor.run] wraps the same worker-domain machinery in a job
    system: every task is attempted, failures are retried on a
    deterministic backoff schedule, persistently failing tasks are
    quarantined as {!Poisoned} instead of aborting the sweep, and the
    pool itself degrades gracefully when worker domains are lost.

    {2 Supervision model}

    - {e Retry with backoff.}  A failed attempt (the task raised, or
      the [failed] classifier rejected its value) is retried up to
      [max_attempts] times.  The delay between attempts is exponential
      with deterministic jitter, measured on a {e logical} clock — one
      tick per completed attempt, fast-forwarded when the pool is idle
      — so the schedule is seeded, reproducible, and costs no
      wall-clock time.
    - {e Circuit breaker.}  After [breaker_after] consecutive failures
      the task's breaker opens and it is quarantined immediately,
      before its retry budget runs out.
    - {e Worker loss.}  A task that raises {!Crash_worker} takes its
      worker domain down with it (the deterministic stand-in for a
      segfaulting or wedged domain).  The crash is caught, the attempt
      is requeued — the dead worker, which no longer draws from the
      queue, is automatically excluded — and a crash consumes an
      attempt number (so a task that kills every worker it touches
      still terminates as {!Poisoned}) but {e not} a breaker count:
      losing a worker is the harness's fault, not the task's.
    - {e Graceful degradation.}  When fewer than two live workers
      remain, the pool stops pretending to be parallel: queued jobs
      and all later retries run inline on the collector domain, and
      the run completes sequentially rather than aborting.

    {2 Determinism}

    As in {!Pool}, callbacks run on the calling domain only and
    results are keyed by task index.  Because retry/poison decisions
    depend only on what [f ~attempt] does for each [(task, attempt)]
    pair — never on scheduling — the outcome array and the
    [attempts]/[retries]/[poisoned]/[crashes] counts are identical at
    every job count and across repeated runs with the same seed.  Only
    [degraded], [busy] and [elapsed] (and callback arrival order) are
    scheduling-dependent. *)

exception Crash_worker
(** Raised {e by a task} to kill the worker domain executing it — the
    test/chaos stand-in for a worker lost to the OS.  The supervisor
    catches it at the worker boundary; it never escapes {!run}. *)

type policy = {
  max_attempts : int;  (** total attempts per task, including the first *)
  breaker_after : int;
      (** consecutive failures that open the task's circuit breaker *)
  backoff_base : int;  (** first retry delay, in logical ticks *)
  backoff_cap : int;  (** ceiling on the exponential delay *)
  seed : int64;  (** seeds the deterministic backoff jitter *)
}

val default_policy : policy
(** 4 attempts, breaker at 3 consecutive failures, backoff 1 tick
    doubling to a cap of 8. *)

type 'b outcome =
  | Done of 'b
  | Poisoned of { attempts : int; reason : string }
      (** quarantined: retry budget exhausted or breaker opened;
          [reason] is the last failure's description *)

type event =
  | Attempt of { task : int; attempt : int }  (** execution began *)
  | Task_done of { task : int; attempt : int; seconds : float }
  | Retry of { task : int; attempt : int; backoff : int; reason : string }
      (** the failed task will be re-attempted (as attempt [attempt])
          after [backoff] logical ticks *)
  | Gave_up of { task : int; attempts : int; reason : string }
      (** retry budget exhausted — the task is poisoned *)
  | Breaker_opened of { task : int; failures : int }
      (** circuit breaker tripped — the task is poisoned *)
  | Worker_lost of { worker : int; task : int }
      (** [task]'s attempt crashed worker [worker]; the attempt is
          requeued on the surviving workers *)
  | Degraded of { live : int }
      (** fewer than two live workers remain — execution continues
          inline on the collector *)

type stats = {
  jobs : int;  (** worker domains initially spawned (1 if sequential) *)
  tasks : int;
  attempts : int;  (** executions started, over all tasks *)
  retries : int;  (** re-attempts scheduled after failures *)
  poisoned : int;  (** tasks quarantined *)
  crashes : int;  (** worker losses absorbed *)
  degraded : bool;  (** did the pool fall back to inline execution? *)
  busy : float;  (** summed seconds inside attempts *)
  elapsed : float;  (** wall-clock seconds for the whole run *)
}

val run :
  ?jobs:int ->
  ?policy:policy ->
  ?failed:(int -> 'b -> string option) ->
  ?on_event:(event -> unit) ->
  ?on_result:(int -> 'b -> unit) ->
  (attempt:int -> 'a -> 'b) ->
  'a array ->
  'b outcome array * stats
(** [run f tasks] executes every task under supervision and returns
    one {!outcome} per task, in task order — the call never raises on
    task failure.  [f ~attempt x] receives the 1-based attempt number
    so tasks can vary deterministically across retries (fault plans
    key on it).

    [failed task v] classifies a value that {e returned} as a failure
    anyway (e.g. a sweep run that ended in a fatal typed error);
    [Some reason] triggers the same retry/breaker path as a raise.

    [on_event] and [on_result] run on the calling domain only;
    [on_result task v] fires once per [Done] task as it resolves.
    [jobs] defaults to {!Pool.default_jobs}[ ()], clamped to the task
    count; [jobs <= 1] runs inline with no domains spawned, through
    the identical supervision state machine. *)
